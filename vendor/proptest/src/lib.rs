//! Offline stand-in for the `proptest` crate (see `vendor/README.md`).
//!
//! Implements the strategy combinators and the `proptest!` runner macro
//! this workspace uses. Cases are generated from a deterministic RNG
//! seeded from the test name, so failures replay identically; there is no
//! shrinking — a failing case reports its inputs via `Debug` where
//! available and otherwise by case number.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use rand::distributions::{Distribution, SampleUniform, Standard};
    use rand::rngs::StdRng;
    use rand::Rng as _;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A generator of test values.
    ///
    /// `sample` returns `None` when the drawn value was rejected by a
    /// filter; the runner retries (bounded) without consuming a case.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one (possibly rejected) value.
        fn sample(&self, rng: &mut StdRng) -> Option<Self::Value>;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Maps through a partial function; `None` rejects the draw.
        /// The `reason` is carried for diagnostics parity with upstream.
        fn prop_filter_map<O, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> Option<O>,
        {
            FilterMap { inner: self, f, reason }
        }

        /// Keeps only values satisfying `f`.
        fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, f, reason }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn sample(&self, rng: &mut StdRng) -> Option<V> {
            (**self).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut StdRng) -> Option<S::Value> {
            (**self).sample(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> Option<T> {
            Some(self.0.clone())
        }
    }

    /// The `any::<T>()` strategy over a type's whole domain.
    pub struct Any<T> {
        _marker: PhantomData<T>,
    }

    /// Uniform values over the full domain of `T`.
    pub fn any<T>() -> Any<T>
    where
        Standard: Distribution<T>,
    {
        Any { _marker: PhantomData }
    }

    impl<T> Strategy for Any<T>
    where
        Standard: Distribution<T>,
    {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> Option<T> {
            Some(rng.gen())
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut StdRng) -> Option<O> {
            self.inner.sample(rng).map(&self.f)
        }
    }

    /// See [`Strategy::prop_filter_map`].
    pub struct FilterMap<S, F> {
        inner: S,
        f: F,
        #[allow(dead_code)]
        reason: &'static str,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut StdRng) -> Option<O> {
            self.inner.sample(rng).and_then(&self.f)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        f: F,
        #[allow(dead_code)]
        reason: &'static str,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn sample(&self, rng: &mut StdRng) -> Option<S::Value> {
            self.inner.sample(rng).filter(|v| (self.f)(v))
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<V> {
        variants: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Builds the union; panics if `variants` is empty.
        pub fn new(variants: Vec<BoxedStrategy<V>>) -> Union<V> {
            assert!(!variants.is_empty(), "prop_oneof! needs at least one variant");
            Union { variants }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut StdRng) -> Option<V> {
            let pick = rng.gen_range(0..self.variants.len());
            self.variants[pick].sample(rng)
        }
    }

    impl<T: SampleUniform> Strategy for Range<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> Option<T> {
            Some(rng.gen_range(self.clone()))
        }
    }

    impl<T: SampleUniform> Strategy for RangeInclusive<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> Option<T> {
            Some(rng.gen_range(self.clone()))
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut StdRng) -> Option<Self::Value> {
                    let ($($name,)+) = self;
                    Some(($($name.sample(rng)?,)+))
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);

    /// A size specification for [`crate::collection::vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        pub(crate) min: usize,
        /// Inclusive upper bound.
        pub(crate) max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    /// See [`crate::collection::vec`].
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Option<Vec<S::Value>> {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::{SizeRange, Strategy, VecStrategy};

    /// A `Vec` whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod test_runner {
    //! Case-count configuration and the failure type.

    /// Runner configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required per property.
        pub cases: u32,
        /// Maximum rejected draws tolerated across the whole run.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256, max_global_rejects: 65_536 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases, ..Default::default() }
        }
    }

    /// A failed property (from `prop_assert!`-family macros).
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }
}

/// Deterministic per-test RNG: seeded from the test's name so every run
/// and every machine replays the same cases.
pub fn rng_for(test_name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests. Supports the upstream form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0u8..32, v in proptest::collection::vec(any::<bool>(), 0..8)) {
///         prop_assert!(x < 32);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
            let __strategies = ($($strat,)+);
            let mut __rejects: u32 = 0;
            let mut __case: u32 = 0;
            while __case < __config.cases {
                let __drawn =
                    $crate::strategy::Strategy::sample(&__strategies, &mut __rng);
                let ($($arg,)+) = match __drawn {
                    Some(v) => v,
                    None => {
                        __rejects += 1;
                        assert!(
                            __rejects <= __config.max_global_rejects,
                            "proptest {}: too many rejected draws ({})",
                            stringify!($name),
                            __rejects
                        );
                        continue;
                    }
                };
                let __outcome: ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!(
                        "proptest {} failed at case #{}: {}",
                        stringify!($name),
                        __case,
                        e
                    );
                }
                __case += 1;
            }
        }
        $crate::__proptest_items!(($cfg); $($rest)*);
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!($($fmt)*),
            ));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {
        match (&$lhs, &$rhs) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `{} == {}` ({:?} vs {:?})",
                    stringify!($lhs),
                    stringify!($rhs),
                    l,
                    r
                );
            }
        }
    };
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {
        match (&$lhs, &$rhs) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `{} == {}` ({:?} vs {:?}): {}",
                    stringify!($lhs),
                    stringify!($rhs),
                    l,
                    r,
                    format!($($fmt)+)
                );
            }
        }
    };
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {
        match (&$lhs, &$rhs) {
            (l, r) => {
                $crate::prop_assert!(
                    *l != *r,
                    "assertion failed: `{} != {}` (both {:?})",
                    stringify!($lhs),
                    stringify!($rhs),
                    l
                );
            }
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Kind {
        A,
        B(u8),
    }

    fn kind() -> impl Strategy<Value = Kind> {
        prop_oneof![
            Just(Kind::A),
            (0u8..16).prop_map(Kind::B),
            (0u8..32).prop_filter_map("small only", |v| (v < 8).then_some(Kind::B(v))),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples(x in 0u8..32, (lo, hi) in (0i64..50, 50i64..100)) {
            prop_assert!(x < 32);
            prop_assert!(lo < hi);
        }

        #[test]
        fn vec_lengths_respect_bounds(v in crate::collection::vec(any::<bool>(), 2..6)) {
            prop_assert!((2..6).contains(&v.len()), "len {}", v.len());
        }

        #[test]
        fn oneof_and_filter_map(k in kind()) {
            if let Kind::B(v) = k {
                prop_assert!(v < 16);
            }
        }
    }

    #[test]
    fn deterministic_rng_per_name() {
        use rand::RngCore as _;
        let mut a = crate::rng_for("x");
        let mut b = crate::rng_for("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::rng_for("y");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
