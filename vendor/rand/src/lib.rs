//! Offline stand-in for the `rand` crate (see `vendor/README.md`).
//!
//! Implements the subset of the rand 0.8 API this workspace uses:
//! [`Rng`], [`RngCore`], [`SeedableRng`], [`rngs::StdRng`], and
//! [`seq::SliceRandom`]. Streams are deterministic per seed but do not
//! match upstream `rand` bit-for-bit.

/// A low-level source of randomness.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (expanded with SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

/// SplitMix64: used to expand small seeds into full generator state.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of `T` from the standard distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        use distributions::Distribution as _;
        distributions::Standard.sample(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `0.0..=1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[inline]
fn unit_f64(bits: u64) -> f64 {
    // 53 mantissa bits -> uniform in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[inline]
fn unit_f32(bits: u64) -> f32 {
    ((bits >> 40) as u32) as f32 * (1.0 / (1u64 << 24) as f32)
}

pub mod distributions {
    //! The standard distribution and uniform range sampling.

    use super::{unit_f32, unit_f64, Rng, RngCore};
    use std::ops::{Range, RangeInclusive};

    /// A distribution over `T`.
    pub trait Distribution<T> {
        /// Samples one value.
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution over the whole domain of a type.
    pub struct Standard;

    macro_rules! impl_standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<bool> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            unit_f64(rng.next_u64())
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            unit_f32(rng.next_u64())
        }
    }

    /// A range that can be sampled uniformly.
    ///
    /// Blanket-implemented for `Range<T>`/`RangeInclusive<T>` over one
    /// generic impl each (like upstream rand) so the element type of an
    /// unsuffixed literal range is inferred from the call site.
    pub trait SampleRange<T> {
        /// Samples one value from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    /// Types `gen_range` can sample.
    pub trait SampleUniform: PartialOrd + Copy {
        /// Uniform draw from `lo..hi` (exclusive) or `lo..=hi`.
        fn sample_between<R: RngCore + ?Sized>(
            lo: Self,
            hi: Self,
            inclusive: bool,
            rng: &mut R,
        ) -> Self;
    }

    /// Lemire-style unbiased sampling of `0..span` over u64.
    fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
        debug_assert!(span > 0);
        // Rejection zone keeps the draw unbiased.
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let v = rng.next_u64();
            if v <= zone {
                return v % span;
            }
        }
    }

    macro_rules! impl_uniform_int {
        ($($t:ty => $wide:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_between<R: RngCore + ?Sized>(
                    lo: $t,
                    hi: $t,
                    inclusive: bool,
                    rng: &mut R,
                ) -> $t {
                    let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                    let draw = if inclusive {
                        if span == u64::MAX {
                            return rng.next_u64() as $t;
                        }
                        below(rng, span + 1)
                    } else {
                        assert!(span > 0, "cannot sample empty range");
                        below(rng, span)
                    };
                    (lo as $wide).wrapping_add(draw as $wide) as $t
                }
            }
        )*};
    }
    impl_uniform_int!(
        u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
        i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
    );

    macro_rules! impl_uniform_float {
        ($($t:ty => $unit:path),*) => {$(
            impl SampleUniform for $t {
                fn sample_between<R: RngCore + ?Sized>(
                    lo: $t,
                    hi: $t,
                    _inclusive: bool,
                    rng: &mut R,
                ) -> $t {
                    assert!(lo < hi, "cannot sample empty range");
                    lo + (hi - lo) * $unit(rng.next_u64())
                }
            }
        )*};
    }
    impl_uniform_float!(f32 => unit_f32, f64 => unit_f64);

    impl<T: SampleUniform> SampleRange<T> for Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            assert!(self.start < self.end, "cannot sample empty range");
            T::sample_between(self.start, self.end, false, rng)
        }
    }

    impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let (lo, hi) = self.into_inner();
            assert!(lo <= hi, "cannot sample empty range");
            T::sample_between(lo, hi, true, rng)
        }
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{splitmix64, RngCore, SeedableRng};

    /// The standard generator: xoshiro256++ (fast, high-quality, and — in
    /// this offline stand-in — deliberately implementation-defined, like
    /// upstream `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn from_state(mut seed: u64) -> StdRng {
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut seed);
            }
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            StdRng::from_state(state)
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related extensions.

    use super::Rng;

    /// Random selection and shuffling over slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// A uniformly random element, or `None` if the slice is empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                // UFCS with `Self = &mut R`, which is Sized as `gen_range`
                // requires even when `R` itself is not.
                let mut rng = rng;
                self.get(Rng::gen_range(&mut rng, 0..self.len()))
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            let mut rng = rng;
            for i in (1..self.len()).rev() {
                self.swap(i, Rng::gen_range(&mut rng, 0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(-64i64..64);
            assert!((-64..64).contains(&v));
            let w = rng.gen_range(3u8..=9);
            assert!((3..=9).contains(&w));
            let f = rng.gen_range(0.25f32..1.0);
            assert!((0.25..1.0).contains(&f));
        }
    }

    #[test]
    fn range_sampling_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.2)).count();
        assert!((1500..2500).contains(&hits), "got {hits}");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = StdRng::seed_from_u64(9);
        let xs = [1, 2, 3, 4];
        assert!(xs.choose(&mut rng).is_some());
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut ys = (0..50).collect::<Vec<_>>();
        let orig = ys.clone();
        ys.shuffle(&mut rng);
        assert_ne!(ys, orig);
        ys.sort_unstable();
        assert_eq!(ys, orig);
    }
}
