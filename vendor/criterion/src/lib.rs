//! Offline stand-in for the `criterion` crate (see `vendor/README.md`): a
//! wall-clock micro-benchmark harness exposing the Criterion macro and
//! builder surface this workspace uses.
//!
//! Behaviour:
//!
//! * run via `cargo bench` (argv contains `--bench`): each benchmark is
//!   calibrated to ~`measurement_time / sample_size` and timed, printing a
//!   mean-per-iteration line;
//! * run via `cargo test` (no `--bench` flag): each closure executes once
//!   as a smoke test, so benches stay compiled and correct without
//!   slowing the test suite.

use std::fmt;
use std::time::{Duration, Instant};

/// Throughput annotation; recorded and echoed, not used for statistics.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A parameterised benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id carrying only the parameter value.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId { id: parameter.to_string() }
    }

    /// A `function/parameter` id.
    pub fn new<S: Into<String>, P: fmt::Display>(function: S, parameter: P) -> BenchmarkId {
        BenchmarkId { id: format!("{}/{}", function.into(), parameter) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

/// The timing loop handle passed to benchmark closures.
pub struct Bencher {
    mode: Mode,
    /// (iterations, elapsed) of the measured pass, if any.
    measured: Option<(u64, Duration)>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Smoke: run the closure once.
    Test,
    /// Measure: calibrate then time.
    Bench { target: Duration },
}

impl Bencher {
    /// Runs `f` under the harness, timing it in bench mode.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        match self.mode {
            Mode::Test => {
                std::hint::black_box(f());
            }
            Mode::Bench { target } => {
                // Calibration pass: estimate per-iteration cost.
                let start = Instant::now();
                std::hint::black_box(f());
                let once = start.elapsed().max(Duration::from_nanos(1));
                let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
                let start = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box(f());
                }
                self.measured = Some((iters, start.elapsed()));
            }
        }
    }
}

/// The top-level harness state.
pub struct Criterion {
    mode: Mode,
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let args: Vec<String> = std::env::args().collect();
        let bench_mode = args.iter().any(|a| a == "--bench");
        // `cargo bench -- <filter>`: first free arg filters benchmark ids.
        let filter =
            args.iter().skip(1).find(|a| !a.starts_with('-') && !a.ends_with("criterion")).cloned();
        Criterion {
            mode: if bench_mode {
                Mode::Bench { target: Duration::from_millis(200) }
            } else {
                Mode::Test
            },
            sample_size: 100,
            filter,
        }
    }
}

impl Criterion {
    /// Sets the nominal sample count (scales the per-bench time budget).
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id, None, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string(), throughput: None }
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, throughput: Option<Throughput>, mut f: F) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher { mode: self.mode, measured: None };
        f(&mut bencher);
        if let Mode::Bench { .. } = self.mode {
            match bencher.measured {
                Some((iters, elapsed)) => {
                    let per_iter = elapsed.as_secs_f64() / iters as f64;
                    let rate = throughput
                        .map(|t| match t {
                            Throughput::Elements(n) => {
                                format!("  ({:.3} Melem/s)", n as f64 / per_iter / 1e6)
                            }
                            Throughput::Bytes(n) => {
                                format!("  ({:.3} MiB/s)", n as f64 / per_iter / (1 << 20) as f64)
                            }
                        })
                        .unwrap_or_default();
                    println!(
                        "bench {id:<40} {:>12.3} µs/iter  [{iters} iters]{rate}",
                        per_iter * 1e6
                    );
                }
                None => println!("bench {id:<40} (no measurement: closure never called iter)"),
            }
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benches.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into().id);
        let throughput = self.throughput;
        self.criterion.run(&id, throughput, f);
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I, P, F>(&mut self, id: I, input: &P, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher, &P),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `main` for a bench target (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_closure_once() {
        let mut criterion = Criterion { mode: Mode::Test, sample_size: 10, filter: None };
        let mut calls = 0;
        criterion.bench_function("smoke", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
    }

    #[test]
    fn bench_mode_measures() {
        let mut criterion = Criterion {
            mode: Mode::Bench { target: Duration::from_millis(5) },
            sample_size: 10,
            filter: None,
        };
        let mut group = criterion.benchmark_group("g");
        group.throughput(Throughput::Elements(4));
        group.bench_function("work", |b| b.iter(|| std::hint::black_box(3u64 * 7)));
        group.bench_with_input(BenchmarkId::from_parameter(16), &16usize, |b, n| {
            b.iter(|| (0..*n).sum::<usize>())
        });
        group.finish();
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut criterion =
            Criterion { mode: Mode::Test, sample_size: 10, filter: Some("keep".into()) };
        let mut calls = 0;
        criterion.bench_function("skip_this", |b| b.iter(|| calls += 1));
        criterion.bench_function("keep_this", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
    }
}
