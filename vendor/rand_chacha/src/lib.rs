//! Offline stand-in for `rand_chacha` (see `vendor/README.md`): a genuine
//! ChaCha stream cipher core with 8 double-rounds behind the
//! [`ChaCha8Rng`] name. Seeding expands the `u64` with SplitMix64, so the
//! stream is deterministic per seed but does not match upstream
//! `rand_chacha` bit-for-bit.

use rand::{RngCore, SeedableRng};

/// The ChaCha8 pseudo-random generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key + counter + nonce state (words 4..16 of the ChaCha matrix).
    state: [u32; 16],
    /// Buffered output block.
    block: [u32; 16],
    /// Next unread word in `block` (16 = exhausted).
    cursor: usize,
}

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds (column + diagonal).
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self.block.iter_mut().zip(working.iter().zip(&self.state)) {
            *out = w.wrapping_add(*s);
        }
        // 64-bit block counter in words 12..14.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.cursor = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let w = self.block[self.cursor];
        self.cursor += 1;
        w
    }

    /// Exports the complete generator state as 33 words: the 16 ChaCha
    /// matrix words, the 16 buffered output words, and the buffer cursor.
    /// Feed the result to [`ChaCha8Rng::from_words`] to clone the stream
    /// across a serialisation boundary (campaign snapshots persist
    /// scheduler RNGs this way).
    pub fn export_words(&self) -> Vec<u32> {
        let mut words = Vec::with_capacity(33);
        words.extend_from_slice(&self.state);
        words.extend_from_slice(&self.block);
        words.push(self.cursor as u32);
        words
    }

    /// Rebuilds a generator from [`ChaCha8Rng::export_words`] output.
    /// Returns `None` if the slice is not 33 words or the cursor is out of
    /// range.
    pub fn from_words(words: &[u32]) -> Option<ChaCha8Rng> {
        if words.len() != 33 || words[32] > 16 {
            return None;
        }
        let mut state = [0u32; 16];
        let mut block = [0u32; 16];
        state.copy_from_slice(&words[..16]);
        block.copy_from_slice(&words[16..32]);
        Some(ChaCha8Rng { state, block, cursor: words[32] as usize })
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> ChaCha8Rng {
        let mut sm = seed;
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        for i in 0..4 {
            let x = splitmix(&mut sm);
            state[4 + i * 2] = x as u32;
            state[5 + i * 2] = (x >> 32) as u32;
        }
        // Counter = 0, nonce from one more SplitMix draw.
        let nonce = splitmix(&mut sm);
        state[12] = 0;
        state[13] = 0;
        state[14] = nonce as u32;
        state[15] = (nonce >> 32) as u32;
        ChaCha8Rng { state, block: [0; 16], cursor: 16 }
    }
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(0x7E_117A);
        let mut b = ChaCha8Rng::seed_from_u64(0x7E_117A);
        for _ in 0..200 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(0x7E_117B);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn export_import_resumes_the_exact_stream() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        // Leave the cursor mid-block so the buffered words matter.
        for _ in 0..5 {
            rng.next_u32();
        }
        let words = rng.export_words();
        let mut clone = ChaCha8Rng::from_words(&words).expect("valid state");
        for _ in 0..100 {
            assert_eq!(rng.next_u64(), clone.next_u64());
        }
        assert!(ChaCha8Rng::from_words(&words[..32]).is_none(), "short state rejected");
        let mut bad = words;
        bad[32] = 17;
        assert!(ChaCha8Rng::from_words(&bad).is_none(), "cursor out of range rejected");
    }

    #[test]
    fn words_look_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut ones = 0u32;
        for _ in 0..1024 {
            ones += rng.next_u32().count_ones();
        }
        // 1024 * 32 / 2 = 16384 expected set bits; allow wide slack.
        assert!((15000..18000).contains(&ones), "got {ones}");
    }

    #[test]
    fn usable_through_rand_traits() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let v = rng.gen_range(0..10usize);
        assert!(v < 10);
        let _: bool = rng.gen();
    }
}
