//! Offline stand-in for the `crossbeam` crate (see `vendor/README.md`):
//! only the multi-producer multi-consumer unbounded channel is provided,
//! built on `Mutex<VecDeque>` + `Condvar`. Disconnect semantics match
//! crossbeam's: `send` fails once every receiver is gone, `recv` fails
//! once the queue is drained and every sender is gone.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned when all receivers have disconnected; carries the
    /// unsent message back.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            // Like upstream: the payload may not be Debug.
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned when the channel is empty and all senders have
    /// disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    impl<T> Sender<T> {
        /// Enqueues a message, failing if every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            let mut queue = self.shared.queue.lock().expect("channel poisoned");
            queue.push_back(value);
            drop(queue);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.queue.lock().expect("channel poisoned");
            loop {
                if let Some(value) = queue.pop_front() {
                    return Ok(value);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self.shared.ready.wait(queue).expect("channel poisoned");
            }
        }

        /// Non-blocking receive; `None` when currently empty.
        pub fn try_recv(&self) -> Option<T> {
            self.shared.queue.lock().expect("channel poisoned").pop_front()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake all blocked receivers so they observe
                // the disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_within_single_thread() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            for i in 0..10 {
                assert_eq!(rx.recv(), Ok(i));
            }
        }

        #[test]
        fn recv_errors_after_all_senders_drop() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_errors_after_all_receivers_drop() {
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert_eq!(tx.send(7), Err(SendError(7)));
        }

        #[test]
        fn work_queue_across_threads() {
            let (job_tx, job_rx) = unbounded::<u32>();
            let (res_tx, res_rx) = unbounded::<u32>();
            let workers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = job_rx.clone();
                    let tx = res_tx.clone();
                    std::thread::spawn(move || {
                        while let Ok(v) = rx.recv() {
                            tx.send(v * 2).unwrap();
                        }
                    })
                })
                .collect();
            for i in 0..100 {
                job_tx.send(i).unwrap();
            }
            let mut results: Vec<u32> = (0..100).map(|_| res_rx.recv().unwrap()).collect();
            results.sort_unstable();
            assert_eq!(results, (0..100).map(|i| i * 2).collect::<Vec<_>>());
            drop(job_tx);
            for w in workers {
                w.join().unwrap();
            }
        }
    }
}
