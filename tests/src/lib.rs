//! Shared helpers for the ChatFuzz integration tests.

use std::sync::Arc;

use chatfuzz::campaign::DutFactory;
use chatfuzz_rtl::{Boom, BoomConfig, Dut, Rocket, RocketConfig};

/// A standard buggy-Rocket factory for campaign tests.
pub fn rocket_factory() -> DutFactory {
    Arc::new(|| Box::new(Rocket::new(RocketConfig::default())) as Box<dyn Dut>)
}

/// A standard BOOM factory for campaign tests.
pub fn boom_factory() -> DutFactory {
    Arc::new(|| Box::new(Boom::new(BoomConfig::default())) as Box<dyn Dut>)
}
