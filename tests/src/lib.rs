//! Shared helpers for the ChatFuzz integration tests.

use chatfuzz_rtl::{Dut, Rocket, RocketConfig};

/// A standard buggy-Rocket factory for campaign tests.
pub fn rocket_factory() -> impl Fn() -> Box<dyn Dut> + Sync {
    || Box::new(Rocket::new(RocketConfig::default())) as Box<dyn Dut>
}
