//! Shared helpers for the ChatFuzz integration tests.

use std::sync::Arc;

use chatfuzz::campaign::{CampaignBuilder, CampaignReport, DutFactory, StopCondition};
use chatfuzz_baselines::InputGenerator;
use chatfuzz_rtl::{Boom, BoomConfig, Dut, Rocket, RocketConfig};

/// A standard buggy-Rocket factory for campaign tests.
pub fn rocket_factory() -> DutFactory {
    Arc::new(|| Box::new(Rocket::new(RocketConfig::default())) as Box<dyn Dut>)
}

/// A standard BOOM factory for campaign tests.
pub fn boom_factory() -> DutFactory {
    Arc::new(|| Box::new(Boom::new(BoomConfig::default())) as Box<dyn Dut>)
}

/// Runs one generator against a factory to a test budget — the one-liner
/// campaign most integration tests need.
pub fn run_budget(
    factory: &DutFactory,
    generator: impl InputGenerator + 'static,
    tests: usize,
    batch_size: usize,
    workers: usize,
) -> CampaignReport {
    CampaignBuilder::from_factory(Arc::clone(factory))
        .batch_size(batch_size)
        .workers(workers)
        .generator(generator)
        .build()
        .run_until(&[StopCondition::Tests(tests)])
}
