//! Integration: the campaign orchestrator — fault injection (a spool
//! worker SIGKILLed mid-lease is revoked, reassigned, and costs the
//! fleet nothing observable), and the determinism law (a 1-worker fleet
//! with merge cadence = ∞ is canonically identical to a plain campaign).

use std::collections::HashMap;
use std::process::Command;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use chatfuzz::campaign::{CampaignBuilder, CampaignSnapshot, StopCondition};
use chatfuzz::persist::Recovery;
use chatfuzz::report;
use chatfuzz::shard::{shard_seed, ShardSpec};
use chatfuzz_coverage::Space;
use chatfuzz_evolve::{EvolveConfig, EvolveGenerator};
use chatfuzz_orchestrate::{
    FleetConfig, LeaseBuilder, LeaseId, LocalPoolTransport, OrchestrateError, Orchestrator,
    SpoolTransport, SpoolWorker, Transport, TransportEvent, WorkOrder, WorkerStatus,
};
use chatfuzz_tests::rocket_factory;

const CAMPAIGN: &str = "rocket-evolve";
const BATCH: usize = 8;

/// The canonical lease template for this file: a single *stateful* arm
/// (the evolutionary corpus), so a checkpoint resume continues the RNG
/// and corpus streams bit for bit — the property the fault-injection
/// equality below leans on. Orchestrator, spool workers, and reference
/// fleets must all build leases through this one function.
fn evolve_template() -> LeaseBuilder {
    Arc::new(|spec: ShardSpec| {
        CampaignBuilder::from_factory(rocket_factory())
            .batch_size(BATCH)
            .workers(2)
            .generator(EvolveGenerator::new(EvolveConfig { seed: spec.seed, ..Default::default() }))
    })
}

fn fleet_config(base_seed: u64, fan_out: usize, lease_tests: usize, total: usize) -> FleetConfig {
    let space = rocket_factory()().space().clone();
    FleetConfig {
        fan_out,
        lease_tests,
        total_tests: total,
        checkpoint_every: 2,
        heartbeat_deadline: Duration::from_secs(2),
        ..FleetConfig::new(CAMPAIGN, base_seed, space, evolve_template())
    }
}

/// Worker role for the fault-injection test: a no-op under plain
/// `cargo test`, a spool worker when spawned with `CHATFUZZ_SPOOL_DIR`.
#[test]
fn role_spool_worker() {
    let Some(worker) = SpoolWorker::from_env() else {
        return;
    };
    let space = rocket_factory()().space().clone();
    worker.register(CAMPAIGN, space, evolve_template()).serve();
}

/// Drives a fleet to completion over any transport, invoking `tick` with
/// the orchestrator after every step (the SIGKILL hook).
fn run_fleet<T: chatfuzz_orchestrate::Transport>(
    orchestrator: &mut Orchestrator<T>,
    campaign: usize,
    mut tick: impl FnMut(&mut Orchestrator<T>),
) -> CampaignSnapshot {
    let deadline = Instant::now() + Duration::from_secs(300);
    while !orchestrator.is_done() {
        assert!(Instant::now() < deadline, "fleet did not converge in time");
        orchestrator.step().expect("orchestrator step");
        tick(orchestrator);
        if !orchestrator.is_done() {
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    orchestrator.shutdown();
    orchestrator.final_snapshot(campaign).expect("finished campaign").clone()
}

/// Acceptance: SIGKILL a spool worker mid-lease. The orchestrator must
/// revoke the orphaned lease (visible in `OrchestratorStatus`), reassign
/// it, and still produce the exact result of a loss-free fleet with the
/// same budget — the kill costs at most one checkpoint interval of
/// wall-clock, never any fleet state.
#[test]
fn sigkilled_spool_worker_is_revoked_reassigned_and_costs_nothing() {
    let base_seed = 41;
    // 2 generations: each adds 2 leases x 96 tests to the pool.
    let config = fleet_config(base_seed, 2, 96, 384);

    // Loss-free reference: the same fleet shape over in-process workers.
    let ckpt = std::env::temp_dir().join(format!("chatfuzz-it-orch-ref-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&ckpt);
    let mut reference = Orchestrator::new(LocalPoolTransport::new(2, &ckpt));
    let ref_id = reference.register(config.clone());
    let loss_free = run_fleet(&mut reference, ref_id, |_| {});
    assert_eq!(loss_free.tests_run(), 384);

    // The spool fleet: two real worker processes (this test binary
    // re-spawned), one of which gets SIGKILLed mid-lease.
    let spool = std::env::temp_dir().join(format!("chatfuzz-it-orch-spool-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&spool);
    let exe = std::env::current_exe().expect("test binary path");
    let transport = SpoolTransport::new(&spool).expect("spool directories").spawn_workers(
        2,
        exe,
        ["role_spool_worker", "--exact", "--nocapture"].map(String::from),
    );
    let mut orchestrator = Orchestrator::new(transport);
    let campaign = orchestrator.register(config);

    let mut killed = false;
    let mut saw_survivor = false;
    let merged = run_fleet(&mut orchestrator, campaign, |orchestrator| {
        let status = orchestrator.status();
        if killed {
            // The post-kill fleet view: one dead worker, one live one.
            saw_survivor |=
                status.workers.iter().any(|w| !w.alive) && status.workers.iter().any(|w| w.alive);
            return;
        }
        // Kill the first worker seen heartbeating on a lease.
        if let Some(worker) = status.workers.iter().find(|w| w.alive && w.lease.is_some()) {
            let killed_ok = Command::new("kill")
                .args(["-9", &worker.id.to_string()])
                .status()
                .expect("spawn kill")
                .success();
            assert!(killed_ok, "SIGKILL delivered");
            killed = true;
        }
    });
    assert!(killed, "a worker heartbeated and was killed");
    assert!(saw_survivor, "status showed the dead worker alongside the survivor");

    let status = orchestrator.status();
    assert!(
        status.campaigns[0].revoked_leases >= 1,
        "the orphaned lease was revoked and reassigned (status: {:?})",
        status.campaigns[0]
    );
    // The kill must be invisible in the result: same pooled coverage,
    // same canonical report as the loss-free fleet.
    assert_eq!(merged.tests_run(), loss_free.tests_run());
    let ours = merged.coverage();
    let theirs = loss_free.coverage();
    assert!(
        ours.is_subset_of(theirs) && theirs.is_subset_of(ours),
        "killed fleet coverage diverged from the loss-free fleet"
    );
    assert_eq!(
        report::json_canonical(&merged.report()),
        report::json_canonical(&loss_free.report()),
        "killed fleet report diverged from the loss-free fleet"
    );

    let _ = std::fs::remove_dir_all(&ckpt);
    let _ = std::fs::remove_dir_all(&spool);
}

/// Determinism law: a 1-worker, 1-lease fleet whose merge cadence is ∞
/// (lease budget = total budget, so exactly one generation and no
/// mid-flight merge) is canonically identical to the plain campaign with
/// the same derived seed.
#[test]
fn one_worker_fleet_with_infinite_cadence_is_a_plain_campaign() {
    let base_seed = 11;
    let total = 128;

    let ckpt = std::env::temp_dir().join(format!("chatfuzz-it-orch-one-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&ckpt);
    let mut orchestrator = Orchestrator::new(LocalPoolTransport::new(1, &ckpt));
    let campaign = orchestrator.register(fleet_config(base_seed, 1, total, total));
    let orchestrated = run_fleet(&mut orchestrator, campaign, |_| {});
    assert_eq!(orchestrated.tests_run(), total);
    let status = orchestrator.status();
    assert_eq!(status.campaigns[0].generation, 0, "cadence ∞ means a single generation");
    assert_eq!(status.campaigns[0].revoked_leases, 0);

    let mut plain =
        (evolve_template())(ShardSpec { index: 0, shards: 1, seed: shard_seed(base_seed, 0) })
            .build();
    plain.run_until(&[StopCondition::Tests(total)]);
    let plain_snapshot = plain.snapshot();

    assert_eq!(
        report::json_canonical(&orchestrated.report()),
        report::json_canonical(&plain_snapshot.report()),
        "orchestrated single-lease run is the plain campaign"
    );
    assert_eq!(
        orchestrated.generator_states(),
        plain_snapshot.generator_states(),
        "generator state carried through the orchestrator bit for bit"
    );
    let _ = std::fs::remove_dir_all(&ckpt);
}

/// A hand-driven transport: the test pushes events and reads dispatches
/// through a shared handle, so orchestrator bookkeeping can be stepped
/// through deterministically (the public-API twin of the orchestrator's
/// internal `NullTransport`).
#[derive(Clone, Default)]
struct ManualTransport(Arc<Mutex<ManualState>>);

#[derive(Default)]
struct ManualState {
    dispatched: Vec<WorkOrder>,
    events: Vec<TransportEvent>,
    checkpoints: HashMap<(LeaseId, u32), CampaignSnapshot>,
    revoked: Vec<(LeaseId, u32)>,
}

impl ManualTransport {
    fn take_dispatched(&self) -> Vec<WorkOrder> {
        std::mem::take(&mut self.0.lock().unwrap().dispatched)
    }

    fn push_event(&self, event: TransportEvent) {
        self.0.lock().unwrap().events.push(event);
    }

    fn insert_checkpoint(&self, lease: LeaseId, attempt: u32, snapshot: CampaignSnapshot) {
        self.0.lock().unwrap().checkpoints.insert((lease, attempt), snapshot);
    }

    fn revoked(&self) -> Vec<(LeaseId, u32)> {
        self.0.lock().unwrap().revoked.clone()
    }
}

impl Transport for ManualTransport {
    fn dispatch(&mut self, order: WorkOrder) -> Result<(), OrchestrateError> {
        self.0.lock().unwrap().dispatched.push(order);
        Ok(())
    }

    fn poll(&mut self) -> Vec<TransportEvent> {
        std::mem::take(&mut self.0.lock().unwrap().events)
    }

    fn checkpoint(&self, lease: LeaseId, attempt: u32, _space: &Arc<Space>) -> Recovery {
        match self.0.lock().unwrap().checkpoints.get(&(lease, attempt)) {
            Some(snapshot) => Recovery::found(snapshot.clone()),
            None => Recovery::default(),
        }
    }

    fn revoke(&mut self, lease: LeaseId, attempt: u32) {
        self.0.lock().unwrap().revoked.push((lease, attempt));
    }

    fn workers(&self) -> Vec<WorkerStatus> {
        Vec::new()
    }

    fn shutdown(&mut self) {}
}

/// Runs one work order to completion exactly as a worker would.
fn run_order(order: &WorkOrder) -> CampaignSnapshot {
    let mut builder = (order.build)(order.spec);
    if let Some(resume) = order.resume.clone() {
        builder = builder.resume(resume);
    }
    let mut campaign = builder.build();
    campaign.run_until(&[order.stop]);
    campaign.snapshot()
}

/// Race pin: a worker failure report that arrives *after* the lease (and
/// its whole generation) completed must lose the race — no revocation,
/// no reissue, and the merge sees the completed snapshots, not a zombie
/// re-run. The merged result is identical to a fleet that never saw the
/// stale failure.
#[test]
fn failure_racing_the_last_completion_does_not_revoke_or_zombie_the_merge() {
    let run = |inject_stale_failure: bool| {
        let transport = ManualTransport::default();
        let mut orchestrator = Orchestrator::new(transport.clone());
        // 2 leases x 32 tests = the whole 64-test budget in one generation.
        let campaign = orchestrator.register(fleet_config(7, 2, 32, 64));
        orchestrator.step().expect("dispatch");
        let orders = transport.take_dispatched();
        assert_eq!(orders.len(), 2);
        for order in &orders {
            transport.push_event(TransportEvent::Completed {
                lease: order.lease,
                attempt: order.attempt,
                snapshot: Box::new(run_order(order)),
            });
        }
        if inject_stale_failure {
            // The dying gasp of lease 0's worker lands in the same poll
            // batch, after the completion it raced.
            transport.push_event(TransportEvent::Failed {
                lease: orders[0].lease,
                attempt: orders[0].attempt,
                detail: "worker exited after reporting its result".into(),
            });
        }
        orchestrator.step().expect("absorb and merge");
        assert!(orchestrator.is_done(), "the generation covered the whole budget");
        let status = orchestrator.status();
        assert_eq!(status.campaigns[0].revoked_leases, 0, "stale failure must not revoke");
        assert!(transport.revoked().is_empty(), "no revocation reached the transport");
        assert!(transport.take_dispatched().is_empty(), "no zombie reissue was dispatched");
        orchestrator.final_snapshot(campaign).expect("finished campaign").clone()
    };

    let clean = run(false);
    let raced = run(true);
    assert_eq!(raced.tests_run(), 64);
    assert_eq!(
        report::json_canonical(&raced.report()),
        report::json_canonical(&clean.report()),
        "the stale failure must be invisible in the merged result"
    );
}

/// Status-accounting pins for the two orchestrator bugfixes: in-flight
/// tests count each attempt's delta from its own resume point (a reissue
/// from a checkpoint *behind* the pooled base neither keeps the dead
/// attempt's high-water mark nor has its progress clamped away), and
/// `tests_per_sec` runs on active lease time, so it freezes once the
/// campaign finishes instead of decaying while the orchestrator idles.
#[test]
fn status_counts_per_attempt_deltas_and_active_time() {
    let transport = ManualTransport::default();
    let mut orchestrator = Orchestrator::new(transport.clone());
    // fan-out 1, 32-test cadence, 64 total: two generations.
    let campaign = orchestrator.register(fleet_config(13, 1, 32, 64));
    orchestrator.step().expect("dispatch generation 0");
    let orders = transport.take_dispatched();
    assert_eq!(orders.len(), 1);
    transport.push_event(TransportEvent::Completed {
        lease: orders[0].lease,
        attempt: 0,
        snapshot: Box::new(run_order(&orders[0])),
    });
    orchestrator.step().expect("merge generation 0");
    let status = orchestrator.status();
    assert_eq!(status.campaigns[0].tests_run, 32, "generation 0 pooled 32 tests");
    assert_eq!(status.campaigns[0].generation, 1);

    // Generation 1 runs from base 32 toward 64. Its worker heartbeats at
    // 40 absolute tests, then dies; the only checkpoint on record sits at
    // 16 tests — *behind* the base.
    let gen1 = transport.take_dispatched();
    assert_eq!(gen1.len(), 1);
    let behind_base = {
        let mut campaign = (gen1[0].build)(gen1[0].spec).build();
        campaign.run_until(&[StopCondition::Tests(16)]);
        campaign.snapshot()
    };
    assert_eq!(behind_base.tests_run(), 16);
    transport.insert_checkpoint(gen1[0].lease, 0, behind_base);
    transport.push_event(TransportEvent::Heartbeat {
        lease: gen1[0].lease,
        attempt: 0,
        tests_run: 40,
        worker: 1,
    });
    orchestrator.step().expect("heartbeat step");
    assert_eq!(
        orchestrator.status().campaigns[0].tests_run,
        40,
        "base 32 plus the live attempt's 8-test delta"
    );

    transport.push_event(TransportEvent::Failed {
        lease: gen1[0].lease,
        attempt: 0,
        detail: "worker crashed".into(),
    });
    orchestrator.step().expect("reissue step");
    let status = orchestrator.status();
    assert_eq!(status.campaigns[0].revoked_leases, 1);
    assert_eq!(
        status.campaigns[0].tests_run, 32,
        "the dead attempt's high-water mark must not linger: the reissue resumed from a \
         16-test checkpoint, which retains nothing beyond the 32-test base"
    );
    let reissues = transport.take_dispatched();
    assert_eq!(reissues.len(), 1);
    assert_eq!(reissues[0].attempt, 1);
    assert_eq!(reissues[0].resume.as_ref().map(CampaignSnapshot::tests_run), Some(16));

    // The new attempt's progress counts from *its* resume point (16),
    // not from the base: 20 absolute tests are 4 tests of live delta.
    transport.push_event(TransportEvent::Heartbeat {
        lease: gen1[0].lease,
        attempt: 1,
        tests_run: 20,
        worker: 2,
    });
    orchestrator.step().expect("post-reissue heartbeat");
    assert_eq!(
        orchestrator.status().campaigns[0].tests_run,
        36,
        "base 32 plus the reissued attempt's 4-test delta past its own resume point"
    );

    transport.push_event(TransportEvent::Completed {
        lease: gen1[0].lease,
        attempt: 1,
        snapshot: Box::new(run_order(&reissues[0])),
    });
    orchestrator.step().expect("final merge");
    assert!(orchestrator.is_done());
    let fin = orchestrator.final_snapshot(campaign).expect("finished campaign");
    assert_eq!(fin.tests_run(), 64);

    // Throughput runs on banked active lease time: once the campaign is
    // done the clock is stopped, so the rate must not decay while the
    // orchestrator sits idle (the old wall-clock denominator kept
    // growing).
    let rate = orchestrator.status().campaigns[0].tests_per_sec;
    assert!(rate > 0.0, "a finished campaign reports a positive rate");
    std::thread::sleep(Duration::from_millis(30));
    assert_eq!(
        orchestrator.status().campaigns[0].tests_per_sec,
        rate,
        "tests_per_sec is frozen once the campaign finishes"
    );
}
