//! Integration: the campaign orchestrator — fault injection (a spool
//! worker SIGKILLed mid-lease is revoked, reassigned, and costs the
//! fleet nothing observable), and the determinism law (a 1-worker fleet
//! with merge cadence = ∞ is canonically identical to a plain campaign).

use std::process::Command;
use std::sync::Arc;
use std::time::{Duration, Instant};

use chatfuzz::campaign::{CampaignBuilder, CampaignSnapshot, StopCondition};
use chatfuzz::report;
use chatfuzz::shard::{shard_seed, ShardSpec};
use chatfuzz_evolve::{EvolveConfig, EvolveGenerator};
use chatfuzz_orchestrate::{
    FleetConfig, LeaseBuilder, LocalPoolTransport, Orchestrator, SpoolTransport, SpoolWorker,
};
use chatfuzz_tests::rocket_factory;

const CAMPAIGN: &str = "rocket-evolve";
const BATCH: usize = 8;

/// The canonical lease template for this file: a single *stateful* arm
/// (the evolutionary corpus), so a checkpoint resume continues the RNG
/// and corpus streams bit for bit — the property the fault-injection
/// equality below leans on. Orchestrator, spool workers, and reference
/// fleets must all build leases through this one function.
fn evolve_template() -> LeaseBuilder {
    Arc::new(|spec: ShardSpec| {
        CampaignBuilder::from_factory(rocket_factory())
            .batch_size(BATCH)
            .workers(2)
            .generator(EvolveGenerator::new(EvolveConfig { seed: spec.seed, ..Default::default() }))
    })
}

fn fleet_config(base_seed: u64, fan_out: usize, lease_tests: usize, total: usize) -> FleetConfig {
    let space = rocket_factory()().space().clone();
    FleetConfig {
        fan_out,
        lease_tests,
        total_tests: total,
        checkpoint_every: 2,
        heartbeat_deadline: Duration::from_secs(2),
        ..FleetConfig::new(CAMPAIGN, base_seed, space, evolve_template())
    }
}

/// Worker role for the fault-injection test: a no-op under plain
/// `cargo test`, a spool worker when spawned with `CHATFUZZ_SPOOL_DIR`.
#[test]
fn role_spool_worker() {
    let Some(worker) = SpoolWorker::from_env() else {
        return;
    };
    let space = rocket_factory()().space().clone();
    worker.register(CAMPAIGN, space, evolve_template()).serve();
}

/// Drives a fleet to completion over any transport, invoking `tick` with
/// the orchestrator after every step (the SIGKILL hook).
fn run_fleet<T: chatfuzz_orchestrate::Transport>(
    orchestrator: &mut Orchestrator<T>,
    campaign: usize,
    mut tick: impl FnMut(&mut Orchestrator<T>),
) -> CampaignSnapshot {
    let deadline = Instant::now() + Duration::from_secs(300);
    while !orchestrator.is_done() {
        assert!(Instant::now() < deadline, "fleet did not converge in time");
        orchestrator.step().expect("orchestrator step");
        tick(orchestrator);
        if !orchestrator.is_done() {
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    orchestrator.shutdown();
    orchestrator.final_snapshot(campaign).expect("finished campaign").clone()
}

/// Acceptance: SIGKILL a spool worker mid-lease. The orchestrator must
/// revoke the orphaned lease (visible in `OrchestratorStatus`), reassign
/// it, and still produce the exact result of a loss-free fleet with the
/// same budget — the kill costs at most one checkpoint interval of
/// wall-clock, never any fleet state.
#[test]
fn sigkilled_spool_worker_is_revoked_reassigned_and_costs_nothing() {
    let base_seed = 41;
    // 2 generations: each adds 2 leases x 96 tests to the pool.
    let config = fleet_config(base_seed, 2, 96, 384);

    // Loss-free reference: the same fleet shape over in-process workers.
    let ckpt = std::env::temp_dir().join(format!("chatfuzz-it-orch-ref-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&ckpt);
    let mut reference = Orchestrator::new(LocalPoolTransport::new(2, &ckpt));
    let ref_id = reference.register(config.clone());
    let loss_free = run_fleet(&mut reference, ref_id, |_| {});
    assert_eq!(loss_free.tests_run(), 384);

    // The spool fleet: two real worker processes (this test binary
    // re-spawned), one of which gets SIGKILLed mid-lease.
    let spool = std::env::temp_dir().join(format!("chatfuzz-it-orch-spool-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&spool);
    let exe = std::env::current_exe().expect("test binary path");
    let transport = SpoolTransport::new(&spool).expect("spool directories").spawn_workers(
        2,
        exe,
        ["role_spool_worker", "--exact", "--nocapture"].map(String::from),
    );
    let mut orchestrator = Orchestrator::new(transport);
    let campaign = orchestrator.register(config);

    let mut killed = false;
    let mut saw_survivor = false;
    let merged = run_fleet(&mut orchestrator, campaign, |orchestrator| {
        let status = orchestrator.status();
        if killed {
            // The post-kill fleet view: one dead worker, one live one.
            saw_survivor |=
                status.workers.iter().any(|w| !w.alive) && status.workers.iter().any(|w| w.alive);
            return;
        }
        // Kill the first worker seen heartbeating on a lease.
        if let Some(worker) = status.workers.iter().find(|w| w.alive && w.lease.is_some()) {
            let killed_ok = Command::new("kill")
                .args(["-9", &worker.id.to_string()])
                .status()
                .expect("spawn kill")
                .success();
            assert!(killed_ok, "SIGKILL delivered");
            killed = true;
        }
    });
    assert!(killed, "a worker heartbeated and was killed");
    assert!(saw_survivor, "status showed the dead worker alongside the survivor");

    let status = orchestrator.status();
    assert!(
        status.campaigns[0].revoked_leases >= 1,
        "the orphaned lease was revoked and reassigned (status: {:?})",
        status.campaigns[0]
    );
    // The kill must be invisible in the result: same pooled coverage,
    // same canonical report as the loss-free fleet.
    assert_eq!(merged.tests_run(), loss_free.tests_run());
    let ours = merged.coverage();
    let theirs = loss_free.coverage();
    assert!(
        ours.is_subset_of(theirs) && theirs.is_subset_of(ours),
        "killed fleet coverage diverged from the loss-free fleet"
    );
    assert_eq!(
        report::json_canonical(&merged.report()),
        report::json_canonical(&loss_free.report()),
        "killed fleet report diverged from the loss-free fleet"
    );

    let _ = std::fs::remove_dir_all(&ckpt);
    let _ = std::fs::remove_dir_all(&spool);
}

/// Determinism law: a 1-worker, 1-lease fleet whose merge cadence is ∞
/// (lease budget = total budget, so exactly one generation and no
/// mid-flight merge) is canonically identical to the plain campaign with
/// the same derived seed.
#[test]
fn one_worker_fleet_with_infinite_cadence_is_a_plain_campaign() {
    let base_seed = 11;
    let total = 128;

    let ckpt = std::env::temp_dir().join(format!("chatfuzz-it-orch-one-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&ckpt);
    let mut orchestrator = Orchestrator::new(LocalPoolTransport::new(1, &ckpt));
    let campaign = orchestrator.register(fleet_config(base_seed, 1, total, total));
    let orchestrated = run_fleet(&mut orchestrator, campaign, |_| {});
    assert_eq!(orchestrated.tests_run(), total);
    let status = orchestrator.status();
    assert_eq!(status.campaigns[0].generation, 0, "cadence ∞ means a single generation");
    assert_eq!(status.campaigns[0].revoked_leases, 0);

    let mut plain =
        (evolve_template())(ShardSpec { index: 0, shards: 1, seed: shard_seed(base_seed, 0) })
            .build();
    plain.run_until(&[StopCondition::Tests(total)]);
    let plain_snapshot = plain.snapshot();

    assert_eq!(
        report::json_canonical(&orchestrated.report()),
        report::json_canonical(&plain_snapshot.report()),
        "orchestrated single-lease run is the plain campaign"
    );
    assert_eq!(
        orchestrated.generator_states(),
        plain_snapshot.generator_states(),
        "generator state carried through the orchestrator bit for bit"
    );
    let _ = std::fs::remove_dir_all(&ckpt);
}
