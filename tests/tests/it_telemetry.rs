//! Integration: the telemetry layer's neutrality contract and exporters.
//!
//! The contract under test is the PR-9 invariant: a campaign with a
//! fully enabled `TelemetrySink` — metrics firing, events ringing,
//! traces streaming — produces results `json_canonical`-**bit-identical**
//! to the same campaign with no sink at all. Telemetry observes the
//! campaign; it never participates in it.
//!
//! Three angles:
//!
//! 1. **In-process proptest** — random seeds, batch sizes, and budgets
//!    over the two-arm bandit campaign, instrumented vs bare: report,
//!    snapshot (which embeds scheduler state), and a re-split both match.
//! 2. **Cross-process, under an active fault plan** — fault decisions
//!    are consumed per persist op, so if telemetry added or consumed
//!    even one op the schedules would diverge. Two child victims run
//!    the same auto-checkpointing campaign under the same
//!    `CHATFUZZ_FAULT_PLAN` (torn writes + transient io errors), one
//!    with a globally installed sink and a live JSONL trace, one
//!    without; their reports and recovery summaries must match byte
//!    for byte.
//! 3. **Exporter sanity** — the Prometheus rendering carries the
//!    canonical metric names with plausible values, and the JSONL trace
//!    is a file of complete, parseable lines.

use std::path::PathBuf;
use std::process::{Command, Stdio};

use chatfuzz::campaign::{CampaignBuilder, CampaignSnapshot, StopCondition};
use chatfuzz::faults::{self, FaultConfig};
use chatfuzz::persist::load_latest_valid;
use chatfuzz::report;
use chatfuzz_baselines::{RandomRegression, Ucb1};
use chatfuzz_evolve::{EvolveConfig, EvolveGenerator};
use chatfuzz_telemetry::{names, TelemetrySink};
use chatfuzz_tests::rocket_factory;
use proptest::prelude::*;

const ENV_ROLE: &str = "CHATFUZZ_IT_ROLE";
const ENV_CKPT: &str = "CHATFUZZ_IT_CKPT";
const ENV_OUT: &str = "CHATFUZZ_IT_OUT";
const ENV_TELEMETRY: &str = "CHATFUZZ_IT_TELEMETRY";

/// Artefacts land under `target/it-telemetry/` (same convention as
/// `it_faults`): stable and repo-relative for CI upload on failure.
fn artefact_root() -> PathBuf {
    let exe = std::env::current_exe().expect("test binary path");
    exe.ancestors().nth(3).expect("target dir").join("it-telemetry")
}

/// The two-arm bandit campaign both halves of every comparison run.
fn build_two_arm(
    seed: u64,
    batch: usize,
    sink: TelemetrySink,
) -> chatfuzz::campaign::Campaign<'static> {
    CampaignBuilder::from_factory(rocket_factory())
        .batch_size(batch)
        .workers(2)
        .generator(RandomRegression::new(seed, 16))
        .generator(EvolveGenerator::new(EvolveConfig { seed, ..Default::default() }))
        .scheduler(Ucb1::new(0.5).cost_normalised())
        .telemetry(sink)
        .build()
}

/// Snapshot JSON minus its wall-clock fields (and the checksum that
/// covers them): wall time differs between *any* two runs, telemetry or
/// not, so the neutrality comparison is over everything else — coverage,
/// history, scheduler state, generator state, mismatch log.
fn wall_free_snapshot(snapshot: &chatfuzz::campaign::CampaignSnapshot) -> String {
    let mut out = chatfuzz::snapshot_json(snapshot);
    for key in ["\"checksum\":\"", "\"wall_nanos\":"] {
        let mut res = String::with_capacity(out.len());
        let mut rest = out.as_str();
        while let Some(pos) = rest.find(key) {
            res.push_str(&rest[..pos]);
            let tail = &rest[pos + key.len()..];
            let end = if key.ends_with('"') {
                tail.find('"').map_or(tail.len(), |i| i + 1)
            } else {
                tail.find(|c: char| !c.is_ascii_digit()).unwrap_or(tail.len())
            };
            let mut tail = &tail[end..];
            if let Some(stripped) = tail.strip_prefix(',') {
                tail = stripped;
            }
            rest = tail;
        }
        res.push_str(rest);
        out = res;
    }
    out
}

fn run_two_arm(seed: u64, batch: usize, tests: usize, sink: TelemetrySink) -> (String, String) {
    let mut campaign = build_two_arm(seed, batch, sink);
    let report = campaign.run_until(&[StopCondition::Tests(tests)]);
    (report::json_canonical(&report), wall_free_snapshot(&campaign.snapshot()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// An installed sink must not perturb coverage, snapshots, or
    /// scheduler state: the snapshot JSON embeds all three.
    #[test]
    fn instrumented_campaigns_are_bit_identical_to_bare(
        seed in 0u64..1000,
        batch_pow in 3u32..6, // batch sizes 8, 16, 32
        batches in 2usize..5,
    ) {
        let batch = 1usize << batch_pow;
        let tests = batch * batches;
        let (bare_report, bare_snapshot) = run_two_arm(seed, batch, tests, TelemetrySink::disabled());
        let sink = TelemetrySink::enabled();
        let (inst_report, inst_snapshot) = run_two_arm(seed, batch, tests, sink.clone());
        prop_assert_eq!(bare_report, inst_report, "report diverged under telemetry");
        prop_assert_eq!(bare_snapshot, inst_snapshot, "snapshot (incl. scheduler state) diverged");
        // And the sink actually saw the run — this is not a vacuous pass.
        prop_assert_eq!(sink.counter_value(names::CAMPAIGN_TESTS), tests as u64);
        prop_assert!(sink.drain_events().iter().any(|e| e.kind == "batch"));
    }
}

/// Child role: an auto-checkpointing campaign under the parent's
/// `CHATFUZZ_FAULT_PLAN`, followed by a recovery pass over its own
/// checkpoint. Writes `json_canonical(report)` plus the recovery
/// summary to `CHATFUZZ_IT_OUT`. With `CHATFUZZ_IT_TELEMETRY=1` the
/// whole run is instrumented: a sink installed process-globally (so
/// persist and fault hooks fire) and attached to the campaign, with a
/// live JSONL trace — the maximally invasive configuration.
#[test]
fn role_neutrality_victim() {
    if std::env::var(ENV_ROLE).as_deref() != Ok("role_neutrality_victim") {
        return;
    }
    let ckpt = PathBuf::from(std::env::var(ENV_CKPT).expect("checkpoint path"));
    let out = PathBuf::from(std::env::var(ENV_OUT).expect("output path"));
    let sink = if std::env::var(ENV_TELEMETRY).as_deref() == Ok("1") {
        let sink = TelemetrySink::enabled();
        sink.trace_to(&ckpt.with_extension("trace.jsonl")).expect("trace file");
        chatfuzz_telemetry::install_global(sink.clone());
        sink
    } else {
        TelemetrySink::disabled()
    };
    let mut campaign = CampaignBuilder::from_factory(rocket_factory())
        .batch_size(8)
        .workers(2)
        .generator(RandomRegression::new(29, 16))
        .telemetry(sink.clone())
        .auto_checkpoint(&ckpt, 1)
        .build();
    let report = campaign.run_until(&[StopCondition::Tests(48)]);
    let space = rocket_factory()().space().clone();
    let recovery = load_latest_valid(&ckpt, &space);
    let _ = sink.flush_trace();
    std::fs::write(&out, format!("{}\n{}\n", report::json_canonical(&report), recovery.summary()))
        .expect("write victim output");
}

fn run_neutrality_victim(
    case_dir: &std::path::Path,
    plan: &FaultConfig,
    telemetry: bool,
) -> String {
    std::fs::create_dir_all(case_dir).expect("case dir");
    let ckpt = case_dir.join("ckpt.json");
    let out = case_dir.join("out.txt");
    let exe = std::env::current_exe().expect("test binary path");
    let status = Command::new(exe)
        .arg("role_neutrality_victim")
        .arg("--exact")
        .arg("--nocapture")
        .env(ENV_ROLE, "role_neutrality_victim")
        .env(ENV_CKPT, &ckpt)
        .env(ENV_OUT, &out)
        .env(ENV_TELEMETRY, if telemetry { "1" } else { "0" })
        .env(faults::ENV_VAR, plan.env_value())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("run victim");
    assert!(status.success(), "neutrality victim (telemetry={telemetry}) must finish");
    // The recovery summary names quarantined files by absolute path;
    // normalise the per-victim case directory out before comparing.
    std::fs::read_to_string(&out)
        .expect("victim output")
        .replace(&case_dir.display().to_string(), "<case>")
}

/// The cross-process half of the neutrality law: under one shared fault
/// schedule — whose decisions are consumed one per persist op — the
/// instrumented and bare victims must emit byte-identical reports *and*
/// recovery summaries. If telemetry routed even a single write through
/// the faultable choke point, the op counters would shift and the
/// outputs would split.
#[test]
fn neutrality_holds_under_an_active_fault_plan() {
    let root = artefact_root().join("neutrality");
    let _ = std::fs::remove_dir_all(&root);
    // Tear the *final* checkpoint (6 batches × 1 write each): an earlier
    // tear would be papered over by the next rewrite, but the last one
    // survives to recovery, which must quarantine it and fall back
    // through the lineage — in both victims, identically.
    let plan = FaultConfig { torn_at_op: 6, torn_keep_bytes: 25, ..FaultConfig::benign(31) };
    let bare = run_neutrality_victim(&root.join("bare"), &plan, false);
    let instrumented = run_neutrality_victim(&root.join("instrumented"), &plan, true);
    assert_eq!(bare, instrumented, "telemetry shifted the fault schedule or the campaign result");
    // The torn op must actually have fired for this test to mean
    // anything: the shared summary line records the quarantined corpse.
    assert!(
        bare.lines().nth(1).is_some_and(|s| s.contains("quarantined")),
        "the fault plan was expected to tear a checkpoint: {bare}"
    );
    // The instrumented victim's trace survived as complete JSONL lines.
    let trace = std::fs::read_to_string(root.join("instrumented").join("ckpt.trace.jsonl"))
        .expect("instrumented victim leaves a trace");
    assert!(!trace.is_empty());
    for line in trace.lines() {
        assert!(line.starts_with("{\"ts_us\":") && line.ends_with('}'), "torn trace line: {line}");
    }
    assert!(
        trace.lines().any(|l| l.contains("\"kind\":\"fault_injected\"")),
        "fault injections must appear on the instrumented timeline"
    );
    let _ = std::fs::remove_dir_all(&root);
}

/// Exporter sanity: after a short instrumented campaign the Prometheus
/// rendering exposes the canonical names with plausible values, and a
/// trace file holds the timeline.
#[test]
fn exporters_render_the_campaign() {
    let root = artefact_root().join("exporters");
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("exporter dir");
    let sink = TelemetrySink::enabled();
    sink.trace_to(&root.join("campaign.trace.jsonl")).expect("trace file");
    let mut campaign = build_two_arm(17, 16, sink.clone());
    campaign.run_until(&[StopCondition::Tests(64)]);
    let flushed = sink.flush_trace().expect("flush trace");
    assert!(flushed > 0, "the campaign must have emitted timeline events");

    let prom = sink.render_prometheus();
    for name in [
        names::CAMPAIGN_TESTS,
        names::CAMPAIGN_CYCLES,
        names::CAMPAIGN_COVERAGE_BINS,
        names::CAMPAIGN_BATCH_LATENCY_US,
        names::EVENTS_DROPPED,
    ] {
        assert!(prom.contains(name), "prometheus dump is missing {name}:\n{prom}");
    }
    assert!(prom.contains(&format!("{} 64", names::CAMPAIGN_TESTS)), "{prom}");
    assert!(
        prom.contains(&format!("{}_bucket", names::CAMPAIGN_BATCH_LATENCY_US)),
        "histograms render cumulative buckets:\n{prom}"
    );

    let dump = root.join("metrics.prom");
    sink.write_prometheus(&dump).expect("atomic dump");
    assert_eq!(std::fs::read_to_string(&dump).expect("dump readable"), prom);

    let trace = std::fs::read_to_string(root.join("campaign.trace.jsonl")).expect("trace");
    assert!(trace.lines().count() >= 4, "one event per batch at least");
    assert!(trace.lines().all(|l| l.starts_with("{\"ts_us\":") && l.ends_with('}')));
    let _ = std::fs::remove_dir_all(&root);
}

/// A resumed campaign continues bit-identically whether or not the
/// original (or the resumption) was instrumented — snapshots never
/// carry telemetry state.
#[test]
fn snapshots_are_telemetry_free() {
    let seed = 23;
    let half = |sink: TelemetrySink| {
        let mut campaign = build_two_arm(seed, 16, sink);
        campaign.run_until(&[StopCondition::Tests(48)]);
        campaign.snapshot()
    };
    let bare: CampaignSnapshot = half(TelemetrySink::disabled());
    let instrumented = half(TelemetrySink::enabled());
    assert_eq!(wall_free_snapshot(&bare), wall_free_snapshot(&instrumented));

    // Cross-resume: bare half resumed under an instrumented sink vs the
    // other way round.
    let resume = |snapshot: CampaignSnapshot, sink: TelemetrySink| {
        let mut campaign = CampaignBuilder::from_factory(rocket_factory())
            .batch_size(16)
            .workers(2)
            .generator(RandomRegression::new(seed, 16))
            .generator(EvolveGenerator::new(EvolveConfig { seed, ..Default::default() }))
            .scheduler(Ucb1::new(0.5).cost_normalised())
            .telemetry(sink)
            .resume(snapshot)
            .build();
        report::json_canonical(&campaign.run_until(&[StopCondition::Tests(96)]))
    };
    assert_eq!(
        resume(bare, TelemetrySink::enabled()),
        resume(instrumented, TelemetrySink::disabled()),
        "resumption must not depend on who was instrumented"
    );
}
