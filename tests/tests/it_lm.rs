//! Integration: the ChatFuzz LM as a first-class campaign arm.
//!
//! * Property tests: the KV-cached incremental sampler
//!   (`Gpt::generate_into`) is **token-identical** to the naive
//!   full-forward sampler across prompt lengths (including window
//!   slides), temperatures, and top-k settings; batched sampling equals
//!   sequential sampling.
//! * Durability: an LM+evolve+random campaign snapshot — policy weights,
//!   Adam moments, refreshed prompt pool, RNG streams — round-trips
//!   byte-exactly through the persisted v4 JSON, and the acceptance
//!   centrepiece SIGKILLs an auto-checkpointing `[random, evolve, lm]`
//!   campaign under a windowed cost-normalised UCB1 and resumes it in a
//!   fresh process, bit-identical (`report::json_canonical`, wall clock
//!   excluded) to an uninterrupted run.
//! * Corpus coupling: the LM arm's prompt pool picks up the evolve arm's
//!   retained seeds through the campaign's cross-arm exchange.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use chatfuzz::campaign::{Campaign, CampaignBuilder, CampaignSnapshot, StopCondition};
use chatfuzz::generator::{LmGenerator, LmGeneratorConfig};
use chatfuzz::persist::{load_snapshot, parse_snapshot, snapshot_json};
use chatfuzz::report;
use chatfuzz_baselines::{InputGenerator, RandomRegression, Ucb1};
use chatfuzz_corpus::{CorpusConfig, CorpusGenerator};
use chatfuzz_evolve::{EvolveConfig, EvolveGenerator};
use chatfuzz_lm::{Gpt, GptConfig, KvCache, Tokenizer};
use chatfuzz_rl::PpoConfig;
use chatfuzz_tests::rocket_factory;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const SEED: u64 = 41;
const BATCH: usize = 16;
const WORKERS: usize = 4;

const ENV_ROLE: &str = "CHATFUZZ_LM_ROLE";
const ENV_SNAPSHOT: &str = "CHATFUZZ_LM_SNAPSHOT";
const ENV_OUT: &str = "CHATFUZZ_LM_OUT";
const ENV_TOTAL: &str = "CHATFUZZ_LM_TOTAL";

/// The deterministic LM arm every process in these tests rebuilds
/// identically: tiny GPT, BPE tokenizer trained on a seeded corpus,
/// online PPO on. All accumulated state (weights, moments, prompt pool,
/// RNG) rides in the snapshot; only these construction parameters must
/// match across processes.
fn lm_generator() -> LmGenerator {
    let mut corpus = CorpusGenerator::new(CorpusConfig { seed: SEED, ..Default::default() });
    let programs = corpus.generate_words(24);
    let tokenizer = Tokenizer::train(&programs, 160);
    let mut rng = ChaCha8Rng::seed_from_u64(SEED);
    let policy = Gpt::new(GptConfig::tiny(tokenizer.vocab_size() as usize), &mut rng);
    let ppo =
        PpoConfig { max_new_tokens: 10, epochs: 1, lr: 1e-3, top_k: 12, ..Default::default() };
    let total_bins = rocket_factory()().space().total_bins();
    let cfg = LmGeneratorConfig {
        seed: SEED ^ 0x17a0,
        online_training: true,
        total_bins,
        samples_per_input: 1,
        ..Default::default()
    };
    LmGenerator::new(tokenizer, policy, ppo, programs, cfg)
}

/// The `[random, evolve, chatfuzz]` campaign under a windowed
/// cost-normalised UCB1. The random arm is feedback-free, so
/// `consumed_random` fast-forwards it past inputs an earlier process ran;
/// the evolve and LM arms need no fast-forward — their whole state rides
/// in the snapshot and is restored by `import_state` on resume.
fn build_campaign(
    consumed_random: usize,
    resume: Option<CampaignSnapshot>,
    checkpoint: Option<&Path>,
) -> Campaign<'static> {
    let mut random = RandomRegression::new(SEED, 16);
    if consumed_random > 0 {
        let _ = random.next_batch(consumed_random);
    }
    let mut builder = CampaignBuilder::from_factory(rocket_factory())
        .batch_size(BATCH)
        .workers(WORKERS)
        .generator(random)
        .generator(EvolveGenerator::new(EvolveConfig { seed: SEED, ..Default::default() }))
        .generator(lm_generator())
        .scheduler(Ucb1::new(0.5).cost_normalised().windowed(8));
    if let Some(snapshot) = resume {
        builder = builder.resume(snapshot);
    }
    if let Some(path) = checkpoint {
        builder = builder.auto_checkpoint(path, 1);
    }
    builder.build()
}

fn spawn_role(role: &str, envs: &[(&str, &str)]) -> Child {
    let exe = std::env::current_exe().expect("test binary path");
    let mut cmd = Command::new(exe);
    cmd.arg(role).arg("--exact").arg("--nocapture");
    cmd.env(ENV_ROLE, role);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.stdout(Stdio::null()).stderr(Stdio::null());
    cmd.spawn().expect("spawn role child")
}

struct KillOnDrop(Child);

impl Drop for KillOnDrop {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Child role: run the LM campaign indefinitely with per-batch
/// auto-checkpointing until the parent kills this process.
#[test]
fn role_lm_victim() {
    if std::env::var(ENV_ROLE).as_deref() != Ok("role_lm_victim") {
        return;
    }
    let path = PathBuf::from(std::env::var(ENV_SNAPSHOT).expect("snapshot path"));
    let mut campaign = build_campaign(0, None, Some(&path));
    campaign.run_until(&[StopCondition::Tests(usize::MAX)]);
}

/// Child role: resume from the surviving checkpoint in this fresh
/// process and write the canonical report.
#[test]
fn role_lm_resumer() {
    if std::env::var(ENV_ROLE).as_deref() != Ok("role_lm_resumer") {
        return;
    }
    let path = PathBuf::from(std::env::var(ENV_SNAPSHOT).expect("snapshot path"));
    let out = PathBuf::from(std::env::var(ENV_OUT).expect("out path"));
    let total: usize = std::env::var(ENV_TOTAL).expect("total").parse().expect("total number");

    let space = rocket_factory()().space().clone();
    let snapshot = load_snapshot(&path, &space).expect("load checkpoint");
    let consumed_random = snapshot.report().generator_stats[0].tests;
    let mut campaign = build_campaign(consumed_random, Some(snapshot), None);
    let report = campaign.run_until(&[StopCondition::Tests(total)]);
    std::fs::write(out, report::json_canonical(&report)).expect("write canonical report");
}

fn wait_for_checkpoint(path: &Path, min_tests: usize) -> CampaignSnapshot {
    let space = rocket_factory()().space().clone();
    let deadline = Instant::now() + Duration::from_secs(180);
    loop {
        if let Ok(snapshot) = load_snapshot(path, &space) {
            if snapshot.tests_run() >= min_tests {
                return snapshot;
            }
        }
        assert!(Instant::now() < deadline, "victim produced no usable checkpoint in time");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// SIGKILL the LM campaign mid-run; resume from its last auto-checkpoint
/// in a fresh process; the final report is bit-identical to one
/// uninterrupted run — the model-carrying variant of the PR-2/PR-4
/// durability law. Weights, optimiser moments, prompt pool, and every
/// RNG stream must survive, or the continuations diverge.
#[test]
fn killed_lm_campaign_resumes_bit_identically() {
    let dir = std::env::temp_dir().join(format!("chatfuzz-it-lm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    let snapshot_path = dir.join("checkpoint.json");
    let out_path = dir.join("resumed-report.json");

    let mut victim = KillOnDrop(spawn_role(
        "role_lm_victim",
        &[(ENV_SNAPSHOT, snapshot_path.to_str().unwrap())],
    ));
    // Past 4 batches every arm (windowed UCB1 pulls each once first) has
    // produced at least one batch, so the checkpoint carries real model
    // state, corpus state, and window contents.
    let taken = wait_for_checkpoint(&snapshot_path, 4 * BATCH);
    victim.0.kill().expect("kill victim");
    let _ = victim.0.wait();

    // Re-read: the victim may have checkpointed again before dying.
    let space = rocket_factory()().space().clone();
    let survived = load_snapshot(&snapshot_path, &space).expect("surviving checkpoint");
    assert!(survived.tests_run() >= taken.tests_run());
    let lm_state = survived.generator_states()[2].as_ref().expect("LM arm exports state");
    let model = lm_state.model.as_ref().expect("LM state carries the model half");
    assert!(!model.params.is_empty(), "checkpoint carries policy weights");
    let total = survived.tests_run() + 4 * BATCH;

    let status = spawn_role(
        "role_lm_resumer",
        &[
            (ENV_SNAPSHOT, snapshot_path.to_str().unwrap()),
            (ENV_OUT, out_path.to_str().unwrap()),
            (ENV_TOTAL, &total.to_string()),
        ],
    )
    .wait()
    .expect("resumer exit");
    assert!(status.success(), "resumer failed");
    let resumed = std::fs::read_to_string(&out_path).expect("resumed report");

    let expected = report::json_canonical(
        &build_campaign(0, None, None).run_until(&[StopCondition::Tests(total)]),
    );
    assert_eq!(resumed, expected, "resumed LM campaign diverged from the uninterrupted run");
    let _ = std::fs::remove_dir_all(&dir);
}

/// In-process half of the same law, without subprocess timing: snapshot
/// mid-run, rebuild generators, resume, and match the uninterrupted run.
#[test]
fn lm_snapshot_resumes_in_process_identically() {
    let total = 8 * BATCH;
    let expected = build_campaign(0, None, None).run_until(&[StopCondition::Tests(total)]);

    let mut first = build_campaign(0, None, None);
    for _ in 0..4 {
        first.step_batch();
    }
    let snapshot = first.snapshot();
    let consumed_random = snapshot.report().generator_stats[0].tests;
    drop(first);

    let report = build_campaign(consumed_random, Some(snapshot), None)
        .run_until(&[StopCondition::Tests(total)]);
    assert_eq!(report::json_canonical(&report), report::json_canonical(&expected));
}

/// The cross-arm loop actually closes: once the evolve arm retains
/// seeds, the LM arm's prompt pool carries them (on top of its static
/// training corpus).
#[test]
fn lm_prompt_pool_absorbs_evolve_seeds_through_the_campaign() {
    let mut campaign = build_campaign(0, None, None);
    campaign.run_until(&[StopCondition::Tests(6 * BATCH)]);
    let snapshot = campaign.snapshot();
    let evolve_seeds = snapshot.generator_states()[1]
        .as_ref()
        .and_then(|g| g.corpus.as_ref())
        .map(|c| c.seeds.len())
        .unwrap_or(0);
    assert!(evolve_seeds > 0, "evolve retained seeds in 6 batches");
    let lm_pool = snapshot.generator_states()[2]
        .as_ref()
        .and_then(|g| g.model.as_ref())
        .map(|m| m.prompt_pool.len())
        .unwrap_or(0);
    assert_eq!(
        lm_pool, evolve_seeds,
        "the LM prompt pool mirrors the evolve corpus through the exchange"
    );
}

/// A model-carrying snapshot round-trips byte-exactly through the
/// persisted v4 JSON: weights and moments travel as f32-bit hex blobs,
/// so nothing is disturbed by a decimal detour.
#[test]
fn model_snapshot_round_trips_bit_exactly() {
    let mut campaign = build_campaign(0, None, None);
    campaign.run_until(&[StopCondition::Tests(4 * BATCH)]);
    let snapshot = campaign.snapshot();

    let doc = snapshot_json(&snapshot);
    let space = rocket_factory()().space().clone();
    let parsed = parse_snapshot(&doc, &space).expect("round trip parses");
    assert_eq!(snapshot_json(&parsed), doc, "byte-exact re-serialisation");
    assert_eq!(parsed.generator_states(), snapshot.generator_states());
    assert_eq!(parsed.scheduler_state(), snapshot.scheduler_state());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The KV-cached sampler is pinned token-for-token equal to the
    /// naive full-forward sampler — across prompt lengths (0 = BOS-only;
    /// long prompts force the context window to slide), temperatures,
    /// and top-k settings, under the same RNG stream.
    #[test]
    fn kv_cached_sampling_equals_naive_sampling(
        seed in 0u64..5_000,
        prompt_len in 0usize..70,
        max_new in 1usize..40,
        temp in 0.05f32..2.0,
        top_k in 1usize..24,
    ) {
        let vocab = 24usize;
        let mut init = ChaCha8Rng::seed_from_u64(seed);
        let model = Gpt::new(GptConfig::tiny(vocab), &mut init);
        let prompt: Vec<u32> = (0..prompt_len).map(|i| ((seed as usize + i) % vocab) as u32).collect();

        let naive = model.generate(
            &prompt, max_new, temp, top_k, &mut ChaCha8Rng::seed_from_u64(seed ^ 0xdead),
        );
        let mut cache = KvCache::new(*model.config());
        let mut cached = Vec::new();
        model.generate_into(
            &prompt, max_new, temp, top_k,
            &mut ChaCha8Rng::seed_from_u64(seed ^ 0xdead), &mut cache, &mut cached,
        );
        prop_assert_eq!(cached, naive);
    }

    /// Batched multi-sequence sampling through one shared arena equals
    /// sequential sampling — the RNG is consumed in sequence order.
    #[test]
    fn batched_sampling_equals_sequential(seed in 0u64..2_000, n in 1usize..6) {
        let vocab = 20usize;
        let mut init = ChaCha8Rng::seed_from_u64(seed);
        let model = Gpt::new(GptConfig::tiny(vocab), &mut init);
        let prompts: Vec<Vec<u32>> =
            (0..n).map(|i| vec![1, (2 + i as u32) % vocab as u32]).collect();

        let mut cache = KvCache::new(*model.config());
        let mut outs = Vec::new();
        model.generate_batch_into(
            &prompts, 16, 0.9, 8, &mut ChaCha8Rng::seed_from_u64(seed), &mut cache, &mut outs,
        );
        let mut reference_rng = ChaCha8Rng::seed_from_u64(seed);
        for (prompt, out) in prompts.iter().zip(&outs) {
            let naive = model.generate(prompt, 16, 0.9, 8, &mut reference_rng);
            prop_assert_eq!(out, &naive);
        }
    }
}
