//! Integration: the actor/learner split of the LM campaign arm.
//!
//! * Equality law (proptest): with a publish cadence of 1 and an
//!   unbounded replay batch, the actor/learner generator is
//!   **token-identical** to the serialized in-line trainer under the
//!   same RNG — same sampled token sequences every batch, same weights
//!   and optimiser moments after every published epoch.
//! * Durability: SIGKILL an auto-checkpointing actor/learner LM campaign
//!   mid-publish-interval; a fresh process resumes from the surviving v4
//!   checkpoint (publish epoch, batches-since-publish counter, pending
//!   learner queue) bit-identically (`report::json_canonical`).
//! * Federated merge: two shards' pending rollout queues union
//!   fingerprint-deduped, publish epochs take the cross-shard maximum,
//!   and corpus seeds a later shard contributed re-enter as
//!   reward-weighted replay rollouts — no more shard-0-wins model state.
//! * Fleet status: the orchestrator surfaces the published weight epoch
//!   of model-backed arms per campaign.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use chatfuzz::campaign::{Campaign, CampaignBuilder, CampaignSnapshot, StopCondition};
use chatfuzz::generator::{LmGenerator, LmGeneratorConfig};
use chatfuzz::persist::load_snapshot;
use chatfuzz::report;
use chatfuzz::shard::{shard_seed, ShardSpec, ShardedOutcome};
use chatfuzz_baselines::{Feedback, InputGenerator, PendingRollout};
use chatfuzz_corpus::{CorpusConfig, CorpusGenerator};
use chatfuzz_evolve::{EvolveConfig, EvolveGenerator};
use chatfuzz_lm::{Gpt, GptConfig, Tokenizer};
use chatfuzz_orchestrate::{FleetConfig, LeaseBuilder, LocalPoolTransport, Orchestrator};
use chatfuzz_rl::PpoConfig;
use chatfuzz_tests::rocket_factory;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

const SEED: u64 = 47;
const BATCH: usize = 16;
const WORKERS: usize = 4;

const ENV_ROLE: &str = "CHATFUZZ_AL_ROLE";
const ENV_SNAPSHOT: &str = "CHATFUZZ_AL_SNAPSHOT";
const ENV_OUT: &str = "CHATFUZZ_AL_OUT";
const ENV_TOTAL: &str = "CHATFUZZ_AL_TOTAL";

/// Publish cadence of the durability/fleet campaigns: small enough that
/// checkpoints regularly land *inside* a publish interval (non-empty
/// learner queue, non-zero batches-since-publish), so resume exercises
/// the new v4 state, not just the trivial boundary.
const PUBLISH_EVERY: usize = 3;
const LEARNER_BATCH: usize = 8;

/// The deterministic actor/learner LM arm every process in these tests
/// rebuilds identically; only accumulated state rides in snapshots.
fn lm_generator(seed: u64, publish_every: usize, learner_batch: usize) -> LmGenerator {
    let mut corpus = CorpusGenerator::new(CorpusConfig { seed, ..Default::default() });
    let programs = corpus.generate_words(24);
    let tokenizer = Tokenizer::train(&programs, 160);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let policy = Gpt::new(GptConfig::tiny(tokenizer.vocab_size() as usize), &mut rng);
    let ppo =
        PpoConfig { max_new_tokens: 10, epochs: 1, lr: 1e-3, top_k: 12, ..Default::default() };
    let total_bins = rocket_factory()().space().total_bins();
    let cfg = LmGeneratorConfig {
        seed: seed ^ 0x17a0,
        online_training: true,
        total_bins,
        samples_per_input: 1,
        publish_every,
        learner_batch,
        ..Default::default()
    };
    LmGenerator::new(tokenizer, policy, ppo, programs, cfg)
}

/// The `[evolve, chatfuzz]` campaign shard these tests run: the evolve
/// arm feeds the LM prompt pool through the cross-arm exchange (and, in
/// the sharded merge, the replay rollouts).
fn build_campaign(
    seed: u64,
    resume: Option<CampaignSnapshot>,
    checkpoint: Option<&Path>,
) -> Campaign<'static> {
    let mut builder = CampaignBuilder::from_factory(rocket_factory())
        .batch_size(BATCH)
        .workers(WORKERS)
        .generator(EvolveGenerator::new(EvolveConfig { seed, ..Default::default() }))
        .generator(lm_generator(seed, PUBLISH_EVERY, LEARNER_BATCH));
    if let Some(snapshot) = resume {
        builder = builder.resume(snapshot);
    }
    if let Some(path) = checkpoint {
        builder = builder.auto_checkpoint(path, 1);
    }
    builder.build()
}

fn spawn_role(role: &str, envs: &[(&str, &str)]) -> Child {
    let exe = std::env::current_exe().expect("test binary path");
    let mut cmd = Command::new(exe);
    cmd.arg(role).arg("--exact").arg("--nocapture");
    cmd.env(ENV_ROLE, role);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.stdout(Stdio::null()).stderr(Stdio::null());
    cmd.spawn().expect("spawn role child")
}

struct KillOnDrop(Child);

impl Drop for KillOnDrop {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Child role: run the actor/learner campaign indefinitely with
/// per-batch auto-checkpointing until the parent kills this process.
#[test]
fn role_al_victim() {
    if std::env::var(ENV_ROLE).as_deref() != Ok("role_al_victim") {
        return;
    }
    let path = PathBuf::from(std::env::var(ENV_SNAPSHOT).expect("snapshot path"));
    let mut campaign = build_campaign(SEED, None, Some(&path));
    campaign.run_until(&[StopCondition::Tests(usize::MAX)]);
}

/// Child role: resume from the surviving checkpoint in a fresh process
/// and write the canonical report.
#[test]
fn role_al_resumer() {
    if std::env::var(ENV_ROLE).as_deref() != Ok("role_al_resumer") {
        return;
    }
    let path = PathBuf::from(std::env::var(ENV_SNAPSHOT).expect("snapshot path"));
    let out = PathBuf::from(std::env::var(ENV_OUT).expect("out path"));
    let total: usize = std::env::var(ENV_TOTAL).expect("total").parse().expect("total number");

    let space = rocket_factory()().space().clone();
    let snapshot = load_snapshot(&path, &space).expect("load checkpoint");
    let mut campaign = build_campaign(SEED, Some(snapshot), None);
    let report = campaign.run_until(&[StopCondition::Tests(total)]);
    std::fs::write(out, report::json_canonical(&report)).expect("write canonical report");
}

fn wait_for_checkpoint(path: &Path, min_tests: usize) -> CampaignSnapshot {
    let space = rocket_factory()().space().clone();
    let deadline = Instant::now() + Duration::from_secs(180);
    loop {
        if let Ok(snapshot) = load_snapshot(path, &space) {
            if snapshot.tests_run() >= min_tests {
                return snapshot;
            }
        }
        assert!(Instant::now() < deadline, "victim produced no usable checkpoint in time");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Acceptance centrepiece: SIGKILL the actor/learner campaign mid-run;
/// resume from its last auto-checkpoint in a fresh process; the final
/// report is bit-identical to one uninterrupted run. On top of the
/// serialized-trainer law (it_lm.rs) this rides on the v4 fields: the
/// publish epoch, the batches-since-publish counter, and the pending
/// learner queue must all survive, or the resumed process publishes at
/// different boundaries and the continuations diverge.
#[test]
fn killed_actor_learner_campaign_resumes_bit_identically() {
    let dir = std::env::temp_dir().join(format!("chatfuzz-it-al-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    let snapshot_path = dir.join("checkpoint.json");
    let out_path = dir.join("resumed-report.json");

    let mut victim = KillOnDrop(spawn_role(
        "role_al_victim",
        &[(ENV_SNAPSHOT, snapshot_path.to_str().unwrap())],
    ));
    // Past 4 batches both arms have produced batches and the LM arm has
    // crossed at least one publish boundary.
    let taken = wait_for_checkpoint(&snapshot_path, 4 * BATCH);
    victim.0.kill().expect("kill victim");
    let _ = victim.0.wait();

    // Re-read: the victim may have checkpointed again before dying.
    let space = rocket_factory()().space().clone();
    let survived = load_snapshot(&snapshot_path, &space).expect("surviving checkpoint");
    assert!(survived.tests_run() >= taken.tests_run());
    let lm_state = survived.generator_states()[1].as_ref().expect("LM arm exports state");
    let model = lm_state.model.as_ref().expect("LM state carries the model half");
    assert!(!model.params.is_empty(), "checkpoint carries policy weights");
    let total = survived.tests_run() + 4 * BATCH;

    let status = spawn_role(
        "role_al_resumer",
        &[
            (ENV_SNAPSHOT, snapshot_path.to_str().unwrap()),
            (ENV_OUT, out_path.to_str().unwrap()),
            (ENV_TOTAL, &total.to_string()),
        ],
    )
    .wait()
    .expect("resumer exit");
    assert!(status.success(), "resumer failed");
    let resumed = std::fs::read_to_string(&out_path).expect("resumed report");

    let expected = report::json_canonical(
        &build_campaign(SEED, None, None).run_until(&[StopCondition::Tests(total)]),
    );
    assert_eq!(
        resumed, expected,
        "resumed actor/learner campaign diverged from the uninterrupted run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// In-process half of the same law, pinned to land *inside* a publish
/// interval: the snapshot is taken where the learner queue is non-empty,
/// so the resumed generator must restore the pending rollouts and the
/// cadence counter — not just the weights — to continue identically.
#[test]
fn actor_learner_snapshot_resumes_mid_interval_identically() {
    let total = 8 * BATCH;
    let expected = build_campaign(SEED, None, None).run_until(&[StopCondition::Tests(total)]);

    let mut first = build_campaign(SEED, None, None);
    let mut mid_interval = None;
    for _ in 0..5 {
        first.step_batch();
        let snapshot = first.snapshot();
        let model = snapshot.generator_states()[1]
            .as_ref()
            .and_then(|g| g.model.clone())
            .expect("LM model state");
        if !model.learner_queue.is_empty() {
            assert!(model.batches_since_publish > 0, "a pending queue means a started interval");
            mid_interval = Some((snapshot, model));
        }
    }
    let (snapshot, model) =
        mid_interval.expect("5 batches under cadence 3 land inside an interval at least once");
    assert!(
        model.batches_since_publish < PUBLISH_EVERY as u64,
        "the snapshot sits strictly inside a publish interval"
    );
    drop(first);

    let report =
        build_campaign(SEED, Some(snapshot), None).run_until(&[StopCondition::Tests(total)]);
    assert_eq!(report::json_canonical(&report), report::json_canonical(&expected));
}

/// Federated merge: shard 0 keeps its weights, but the merged model
/// state pools what the other shard learned — pending rollouts union
/// fingerprint-deduped, prompt pools union, publish epochs take the
/// maximum, and every corpus seed shard 1 contributed re-enters as a
/// reward-weighted replay rollout (`prompt_len == 1`: the whole program
/// is replay-credited to the policy at the next publish boundary).
#[test]
fn sharded_merge_pools_rollouts_prompt_pools_and_epochs() {
    let snapshot_for = |shard: usize| {
        let mut campaign = build_campaign(shard_seed(SEED, shard), None, None);
        // Stop inside a publish interval so both shards carry pending
        // rollouts into the merge (4 batches, cadence 3).
        campaign.run_until(&[StopCondition::Tests(4 * BATCH)]);
        campaign.snapshot()
    };
    let s0 = snapshot_for(0);
    let s1 = snapshot_for(1);
    let lm_model = |s: &CampaignSnapshot| {
        s.generator_states()[1].as_ref().and_then(|g| g.model.clone()).expect("LM model state")
    };
    let (m0, m1) = (lm_model(&s0), lm_model(&s1));
    assert!(!m0.learner_queue.is_empty(), "shard 0 carries pending rollouts");
    assert!(!m1.learner_queue.is_empty(), "shard 1 carries pending rollouts");

    let corpus_len = |s: &CampaignSnapshot| {
        s.generator_states()[0]
            .as_ref()
            .and_then(|g| g.corpus.as_ref())
            .map_or(0, |c| c.seeds.len())
    };
    assert!(corpus_len(&s1) > 0, "shard 1 retained corpus seeds to contribute");

    let merged =
        ShardedOutcome::new(vec![s0.clone(), s1.clone()]).expect("mergeable").merged_snapshot();
    let mm = lm_model(&merged);

    // Weights stay shard 0's wholesale.
    assert_eq!(mm.params, m0.params, "merged weights are shard 0's, never averaged");
    assert_eq!(mm.opt_m, m0.opt_m);
    assert_eq!(mm.opt_steps, m0.opt_steps);
    // Epoch and cadence counters are cross-shard maxima.
    assert_eq!(mm.publish_epoch, m0.publish_epoch.max(m1.publish_epoch));
    assert_eq!(mm.batches_since_publish, m0.batches_since_publish.max(m1.batches_since_publish));
    // The queue keeps shard 0's rollouts in arrival order and absorbs
    // shard 1's.
    assert_eq!(&mm.learner_queue[..m0.learner_queue.len()], &m0.learner_queue[..]);
    let contains = |queue: &[PendingRollout], r: &PendingRollout| queue.iter().any(|q| q == r);
    for rollout in &m1.learner_queue {
        assert!(contains(&mm.learner_queue, rollout), "shard 1 rollouts survive the merge");
    }
    // Seeds shard 1 contributed to the merged corpus re-enter as replay
    // rollouts beyond the plain queue union.
    let merged_corpus = corpus_len(&merged);
    let union: Vec<&PendingRollout> = {
        let mut u: Vec<&PendingRollout> = Vec::new();
        for r in m0.learner_queue.iter().chain(&m1.learner_queue) {
            if !u.contains(&r) {
                u.push(r);
            }
        }
        u
    };
    let contributed = merged_corpus - corpus_len(&s0);
    assert!(contributed > 0, "the merge absorbed fresh shard-1 seeds");
    let replays = &mm.learner_queue[union.len()..];
    assert_eq!(replays.len(), contributed, "one replay rollout per contributed seed");
    for replay in replays {
        assert_eq!(replay.prompt_len, 1, "replays credit the whole program past BOS");
        assert!(replay.tokens.len() > 1, "replays carry a non-empty generation");
    }
    // Prompt pools union.
    assert!(mm.prompt_pool.len() >= m0.prompt_pool.len().max(m1.prompt_pool.len()));
    // A 1-shard merge stays byte-identical: no synthetic state appears.
    let solo = ShardedOutcome::new(vec![s0.clone()]).expect("mergeable").merged_snapshot();
    assert_eq!(lm_model(&solo), m0, "1-shard merge leaves model state untouched");
}

/// Fleet status surfaces the published weight epoch of model-backed
/// arms: after an orchestrated actor/learner campaign finishes, the
/// status panel reports the pooled snapshot's publish epoch by arm name.
#[test]
fn orchestrated_fleet_reports_weight_epochs() {
    let template: LeaseBuilder = Arc::new(|spec: ShardSpec| {
        CampaignBuilder::from_factory(rocket_factory())
            .batch_size(BATCH)
            .workers(2)
            .generator(EvolveGenerator::new(EvolveConfig { seed: spec.seed, ..Default::default() }))
            .generator(lm_generator(spec.seed, 1, LEARNER_BATCH))
    });
    let space = rocket_factory()().space().clone();
    let total = 4 * BATCH;
    let config = FleetConfig {
        fan_out: 2,
        lease_tests: total / 2,
        total_tests: total,
        ..FleetConfig::new("rocket-al", SEED, space, template)
    };
    let ckpt = std::env::temp_dir().join(format!("chatfuzz-it-al-fleet-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&ckpt);
    let mut orchestrator = Orchestrator::new(LocalPoolTransport::new(2, &ckpt));
    let campaign = orchestrator.register(config);
    let deadline = Instant::now() + Duration::from_secs(300);
    while !orchestrator.is_done() {
        assert!(Instant::now() < deadline, "fleet did not converge in time");
        orchestrator.step().expect("orchestrator step");
        if !orchestrator.is_done() {
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    orchestrator.shutdown();

    let fin = orchestrator.final_snapshot(campaign).expect("finished campaign").clone();
    let epoch = fin.generator_states()[1]
        .as_ref()
        .and_then(|g| g.model.as_ref())
        .map(|m| m.publish_epoch)
        .expect("pooled LM model state");
    assert!(epoch >= 1, "a cadence-1 campaign published at least once");
    let status = orchestrator.status();
    assert_eq!(
        status.campaigns[0].weight_epochs,
        vec![("chatfuzz".to_string(), epoch)],
        "status reports the pooled snapshot's publish epoch for the model-backed arm"
    );
    let _ = std::fs::remove_dir_all(&ckpt);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The equality baseline the whole split hangs on: with cadence 1
    /// and an unbounded replay batch, the actor/learner generator is
    /// token-identical to the serialized in-line trainer under the same
    /// RNG — the sampled token sequences match every batch, and the
    /// weights and optimiser moments match after every published epoch.
    #[test]
    fn published_epochs_match_the_serialized_trainer(
        seed in 0u64..1_000,
        rounds in 1usize..4,
        batch in 2usize..5,
    ) {
        let mut serialized = lm_generator(seed, 0, 0);
        let mut actor = lm_generator(seed, 1, 0);
        let total_bins = rocket_factory()().space().total_bins();
        for round in 0..rounds {
            let a = serialized.next_batch(batch);
            let b = actor.next_batch(batch);
            prop_assert_eq!(&a, &b, "sampled byte images diverged in round {}", round);
            // Token identity is stronger than byte identity: compare the
            // pending token sequences directly.
            let sa = serialized.export_state().expect("serialized state");
            let sb = actor.export_state().expect("actor state");
            let (ma, mb) = (sa.model.as_ref().unwrap(), sb.model.as_ref().unwrap());
            prop_assert_eq!(&ma.pending, &mb.pending, "token sequences diverged");
            prop_assert_eq!(&sa.rng_words, &sb.rng_words, "RNG consumption diverged");
            let feedback: Vec<Feedback> = (0..batch)
                .map(|i| Feedback {
                    standalone: (i * 3 + round) % 7,
                    incremental: (i + round) % 3,
                    mux_covered: i % 2,
                    total_after: 10 + round,
                    total_bins,
                    cov_fingerprint: (seed ^ (round as u64) << 8 ^ i as u64) | 1,
                    mismatched: (i + round) % 5 == 0,
                })
                .collect();
            serialized.observe(&a, &feedback);
            actor.observe(&b, &feedback);
            // Cadence 1 published right here: the trained weights match
            // the serialized trainer's bit for bit.
            let sa = serialized.export_state().expect("serialized state");
            let sb = actor.export_state().expect("actor state");
            let (ma, mb) = (sa.model.unwrap(), sb.model.unwrap());
            prop_assert_eq!(&ma.params, &mb.params, "published weights diverged");
            prop_assert_eq!(&ma.opt_m, &mb.opt_m, "first moments diverged");
            prop_assert_eq!(&ma.opt_v, &mb.opt_v, "second moments diverged");
            prop_assert_eq!(ma.opt_steps, mb.opt_steps, "optimiser step counts diverged");
            prop_assert_eq!(mb.publish_epoch, (round + 1) as u64, "one publish per batch");
            prop_assert!(mb.learner_queue.is_empty(), "the queue drains at the boundary");
        }
    }
}
