//! Integration: sharded campaigns — union semantics, monotonicity in the
//! shard count, 1-shard equivalence with a plain campaign, and the
//! cross-process worker protocol (8-shard smoke run spawning this very
//! test binary as the worker).

use std::sync::Arc;

use chatfuzz::campaign::{Campaign, CampaignBuilder, StopCondition};
use chatfuzz::report;
use chatfuzz::shard::{
    shard_seed, InProcessRunner, ProcessShardRunner, ShardSpec, ShardedCampaign, WorkerRequest,
};
use chatfuzz_baselines::RandomRegression;
use chatfuzz_coverage::CovMap;
use chatfuzz_evolve::{EvolveConfig, EvolveGenerator};
use chatfuzz_tests::rocket_factory;

const SHARD_TESTS: usize = 64;
const BATCH: usize = 16;

/// The canonical shard campaign both the in-process runner and the
/// cross-process worker build: every comparison in this file relies on
/// them being the same function.
fn build_shard(spec: ShardSpec) -> (Campaign<'static>, Vec<StopCondition>) {
    let campaign = CampaignBuilder::from_factory(rocket_factory())
        .batch_size(BATCH)
        .workers(2)
        .generator(RandomRegression::new(spec.seed, 16))
        .build();
    (campaign, vec![StopCondition::Tests(SHARD_TESTS)])
}

fn in_process(shards: usize, base_seed: u64) -> ShardedCampaign<impl chatfuzz::ShardRunner> {
    ShardedCampaign::new(InProcessRunner::new(build_shard), shards, base_seed)
}

/// Worker role for the cross-process test: a no-op under plain
/// `cargo test`, a shard worker when spawned with the `CHATFUZZ_SHARD_*`
/// environment.
#[test]
fn role_shard_worker() {
    let Some(request) = WorkerRequest::from_env() else {
        return;
    };
    let (mut campaign, stops) = build_shard(request.spec);
    campaign.run_until(&stops);
    request.fulfil(&campaign.snapshot()).expect("write shard snapshot");
}

/// The merged coverage map is exactly the union of the shard maps.
#[test]
fn merged_map_is_the_union_of_shard_maps() {
    let outcome = in_process(3, 17).run().expect("shards run");
    let merged = outcome.merged_coverage();
    let explicit =
        CovMap::union(outcome.shard_snapshots().iter().map(|s| s.coverage())).expect("non-empty");
    assert!(merged.is_subset_of(&explicit) && explicit.is_subset_of(&merged));
    assert_eq!(merged.covered_bins(), explicit.covered_bins());
    // Every shard is contained; no shard alone reaches the union unless
    // the shards fully overlap (they don't at these budgets).
    for s in outcome.shard_snapshots() {
        assert!(s.coverage().is_subset_of(&merged));
    }
    // The merged snapshot's calculator carries the same union.
    assert_eq!(outcome.merged_snapshot().coverage().covered_bins(), merged.covered_bins());
}

/// Adding shards never loses coverage: shard seeds are independent of
/// the shard count, so the N-shard union is a subset of the M-shard
/// union for N ≤ M.
#[test]
fn merged_coverage_is_monotone_in_shard_count() {
    let base_seed = 23;
    let mut last_bins = 0usize;
    let mut last_map: Option<CovMap> = None;
    for shards in [1usize, 2, 4] {
        let outcome = in_process(shards, base_seed).run().expect("shards run");
        let map = outcome.merged_coverage();
        assert!(
            map.covered_bins() >= last_bins,
            "{shards} shards covered {} bins, fewer than the previous count's {last_bins}",
            map.covered_bins()
        );
        if let Some(previous) = &last_map {
            assert!(
                previous.is_subset_of(&map),
                "coverage of {shards} shards must contain the smaller run's"
            );
        }
        last_bins = map.covered_bins();
        last_map = Some(map);
    }
}

/// A 1-shard sharded campaign reports exactly what a plain campaign
/// with the same (derived) seed reports — sharding adds no accounting
/// noise. Canonical form: wall clock excluded.
#[test]
fn one_shard_equals_a_plain_campaign() {
    let base_seed = 9;
    let outcome = in_process(1, base_seed).run().expect("shard runs");
    let sharded = report::json_canonical(&outcome.merged_report());

    let (mut plain, stops) =
        build_shard(ShardSpec { index: 0, shards: 1, seed: shard_seed(base_seed, 0) });
    let plain_report = plain.run_until(&stops);
    assert_eq!(sharded, report::json_canonical(&plain_report));
}

/// The corpus-carrying shard campaign: random + evolve arms, so shard
/// snapshots carry `Some` corpus state for the evolve slot.
fn build_evolve_shard(spec: ShardSpec) -> (Campaign<'static>, Vec<StopCondition>) {
    let campaign = CampaignBuilder::from_factory(rocket_factory())
        .batch_size(BATCH)
        .workers(2)
        .generator(RandomRegression::new(spec.seed, 16))
        .generator(EvolveGenerator::new(EvolveConfig { seed: spec.seed, ..Default::default() }))
        .build();
    (campaign, vec![StopCondition::Tests(SHARD_TESTS * 2)])
}

/// Merging corpus-carrying shard snapshots unions the corpora as a
/// fingerprint-deduped set: every shard seed is represented exactly
/// once, and the merged snapshot resumes with the pooled corpus.
#[test]
fn merged_snapshot_unions_corpora_fingerprint_deduped() {
    let sharded = ShardedCampaign::new(InProcessRunner::new(build_evolve_shard), 3, 29);
    let outcome = sharded.run().expect("shards run");
    for s in outcome.shard_snapshots() {
        let state = s.generator_states()[1].as_ref().expect("evolve arm exports state");
        let corpus = state.corpus.as_ref().expect("evolve state carries a corpus");
        assert!(!corpus.seeds.is_empty(), "every shard retained seeds");
    }
    let merged = outcome.merged_snapshot();
    assert!(merged.generator_states()[0].is_none(), "random arm stays state-free");
    let pooled = merged.generator_states()[1]
        .clone()
        .expect("merged state present")
        .corpus
        .expect("merged corpus present");

    // Union: every shard fingerprint appears in the pool…
    let pool: std::collections::HashSet<u64> = pooled.seeds.iter().map(|s| s.fingerprint).collect();
    let mut expected = std::collections::HashSet::new();
    for s in outcome.shard_snapshots() {
        for seed in &s.generator_states()[1].as_ref().unwrap().corpus.as_ref().unwrap().seeds {
            assert!(pool.contains(&seed.fingerprint), "shard seed lost in the merge");
            expected.insert(seed.fingerprint);
        }
    }
    // …exactly once (dedupe), and nothing else got in.
    assert_eq!(pool.len(), pooled.seeds.len(), "no duplicate fingerprints");
    assert_eq!(pool, expected, "pool is exactly the union");
    // Discovery counters stay unique, so resumed eviction is
    // deterministic.
    let mut found: Vec<u64> = pooled.seeds.iter().map(|s| s.found_at).collect();
    found.sort_unstable();
    found.dedup();
    assert_eq!(found.len(), pooled.seeds.len(), "found_at re-stamped uniquely");

    // The merged snapshot resumes with the pooled corpus intact.
    let tests_so_far = merged.tests_run();
    let mut resumed = CampaignBuilder::from_factory(rocket_factory())
        .batch_size(BATCH)
        .workers(2)
        .generator(RandomRegression::new(99, 16))
        .generator(EvolveGenerator::new(EvolveConfig { seed: 99, ..Default::default() }))
        .resume(merged)
        .build();
    let report = resumed.run_until(&[StopCondition::Tests(tests_so_far + 2 * BATCH)]);
    assert_eq!(report.tests_run, tests_so_far + 2 * BATCH);
    let after = resumed.snapshot();
    let corpus_after = after.generator_states()[1]
        .as_ref()
        .and_then(|g| g.corpus.as_ref())
        .expect("corpus survives the resume");
    assert!(
        corpus_after.seeds.len() >= pooled.seeds.len().min(256),
        "resumed corpus keeps the pooled seeds"
    );
}

/// The 1-shard-identity law holds for corpus-carrying snapshots too: a
/// 1-shard merge is the plain campaign, corpus included.
#[test]
fn one_shard_identity_holds_with_a_corpus() {
    let base_seed = 13;
    let outcome = ShardedCampaign::new(InProcessRunner::new(build_evolve_shard), 1, base_seed)
        .run()
        .expect("shard runs");
    let merged = outcome.merged_snapshot();

    let (mut plain, stops) =
        build_evolve_shard(ShardSpec { index: 0, shards: 1, seed: shard_seed(base_seed, 0) });
    plain.run_until(&stops);
    let plain_snapshot = plain.snapshot();

    assert_eq!(
        report::json_canonical(&merged.report()),
        report::json_canonical(&plain_snapshot.report()),
        "1-shard merged report is the plain report"
    );
    assert_eq!(
        merged.generator_states(),
        plain_snapshot.generator_states(),
        "1-shard merged state is the plain state, bit for bit"
    );
}

/// Acceptance smoke: an 8-shard run through real worker sub-processes
/// (this test binary re-spawned per shard) merges to the same coverage
/// set — and the same canonical report — as the equivalent in-process
/// run.
#[test]
fn eight_shard_cross_process_matches_in_process() {
    let base_seed = 5;

    let reference = in_process(8, base_seed).run().expect("in-process shards");

    let exe = std::env::current_exe().expect("test binary path");
    let dir = std::env::temp_dir().join(format!("chatfuzz-it-shard-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let space = rocket_factory()().space().clone();
    let runner = ProcessShardRunner::new(exe, &dir, Arc::clone(&space))
        .arg("role_shard_worker")
        .arg("--exact")
        .arg("--nocapture");
    let outcome = ShardedCampaign::new(runner, 8, base_seed).run().expect("cross-process shards");

    assert_eq!(outcome.shards(), 8);
    let ours = outcome.merged_coverage();
    let theirs = reference.merged_coverage();
    assert!(ours.is_subset_of(&theirs) && theirs.is_subset_of(&ours), "coverage sets differ");
    assert_eq!(
        report::json_canonical(&outcome.merged_report()),
        report::json_canonical(&reference.merged_report()),
        "cross-process merge diverged from the in-process merge"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
