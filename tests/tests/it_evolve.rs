//! Integration: the evolutionary corpus arm end to end.
//!
//! * Property tests: every mutant decodes, mutation is deterministic per
//!   RNG state, and a corpus-carrying snapshot round-trips bit-exactly
//!   through the persisted JSON form.
//! * The acceptance centrepiece: a campaign running the evolve arm under
//!   a cost-normalised UCB1 scheduler is SIGKILLed mid-run and resumed
//!   from its auto-checkpoint in a fresh process, bit-identical
//!   (`report::json_canonical`, wall clock excluded) to an uninterrupted
//!   run — retained seeds, pick counters, mutation RNG stream, and
//!   bandit state all restored.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use chatfuzz::campaign::{Campaign, CampaignBuilder, CampaignSnapshot, StopCondition};
use chatfuzz::persist::{load_snapshot, parse_snapshot, snapshot_json};
use chatfuzz::report;
use chatfuzz_baselines::{random_instr, InputGenerator, RandomRegression, Ucb1};
use chatfuzz_evolve::{mutate::mutate, EvolveConfig, EvolveGenerator};
use chatfuzz_isa::{decode, encode, Instr};
use chatfuzz_tests::rocket_factory;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const SEED: u64 = 77;
const BATCH: usize = 16;
const WORKERS: usize = 4;

const ENV_ROLE: &str = "CHATFUZZ_EVOLVE_ROLE";
const ENV_SNAPSHOT: &str = "CHATFUZZ_EVOLVE_SNAPSHOT";
const ENV_OUT: &str = "CHATFUZZ_EVOLVE_OUT";
const ENV_TOTAL: &str = "CHATFUZZ_EVOLVE_TOTAL";

fn evolve_config() -> EvolveConfig {
    EvolveConfig { seed: SEED, ..Default::default() }
}

/// The deterministic evolve+random campaign under test. The random arm
/// is feedback-free, so `consumed_random` fast-forwards it past inputs
/// an earlier process ran; the evolve arm needs no fast-forward — its
/// whole state (corpus, RNG) rides in the snapshot and is restored by
/// `import_state` on resume.
fn build_campaign(
    consumed_random: usize,
    resume: Option<CampaignSnapshot>,
    checkpoint: Option<&Path>,
) -> Campaign<'static> {
    let mut random = RandomRegression::new(SEED, 16);
    if consumed_random > 0 {
        let _ = random.next_batch(consumed_random);
    }
    let mut builder = CampaignBuilder::from_factory(rocket_factory())
        .batch_size(BATCH)
        .workers(WORKERS)
        .generator(random)
        .generator(EvolveGenerator::new(evolve_config()))
        .scheduler(Ucb1::new(0.5).cost_normalised());
    if let Some(snapshot) = resume {
        builder = builder.resume(snapshot);
    }
    if let Some(path) = checkpoint {
        builder = builder.auto_checkpoint(path, 1);
    }
    builder.build()
}

fn spawn_role(role: &str, envs: &[(&str, &str)]) -> Child {
    let exe = std::env::current_exe().expect("test binary path");
    let mut cmd = Command::new(exe);
    cmd.arg(role).arg("--exact").arg("--nocapture");
    cmd.env(ENV_ROLE, role);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.stdout(Stdio::null()).stderr(Stdio::null());
    cmd.spawn().expect("spawn role child")
}

struct KillOnDrop(Child);

impl Drop for KillOnDrop {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Child role: run the evolve campaign indefinitely with per-batch
/// auto-checkpointing until the parent kills this process.
#[test]
fn role_evolve_victim() {
    if std::env::var(ENV_ROLE).as_deref() != Ok("role_evolve_victim") {
        return;
    }
    let path = PathBuf::from(std::env::var(ENV_SNAPSHOT).expect("snapshot path"));
    let mut campaign = build_campaign(0, None, Some(&path));
    campaign.run_until(&[StopCondition::Tests(usize::MAX)]);
}

/// Child role: resume from the surviving checkpoint in this fresh
/// process and write the canonical report.
#[test]
fn role_evolve_resumer() {
    if std::env::var(ENV_ROLE).as_deref() != Ok("role_evolve_resumer") {
        return;
    }
    let path = PathBuf::from(std::env::var(ENV_SNAPSHOT).expect("snapshot path"));
    let out = PathBuf::from(std::env::var(ENV_OUT).expect("out path"));
    let total: usize = std::env::var(ENV_TOTAL).expect("total").parse().expect("total number");

    let space = rocket_factory()().space().clone();
    let snapshot = load_snapshot(&path, &space).expect("load checkpoint");
    let consumed_random = snapshot.report().generator_stats[0].tests;
    let mut campaign = build_campaign(consumed_random, Some(snapshot), None);
    let report = campaign.run_until(&[StopCondition::Tests(total)]);
    std::fs::write(out, report::json_canonical(&report)).expect("write canonical report");
}

fn wait_for_checkpoint(path: &Path, min_tests: usize) -> CampaignSnapshot {
    let space = rocket_factory()().space().clone();
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        if let Ok(snapshot) = load_snapshot(path, &space) {
            if snapshot.tests_run() >= min_tests {
                return snapshot;
            }
        }
        assert!(Instant::now() < deadline, "victim produced no usable checkpoint in time");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// SIGKILL the evolve campaign mid-run; resume from its last
/// auto-checkpoint in a fresh process; the final report is bit-identical
/// to one uninterrupted run — the corpus-carrying variant of the PR-2
/// durability law.
#[test]
fn killed_evolve_campaign_resumes_bit_identically() {
    let dir = std::env::temp_dir().join(format!("chatfuzz-it-evolve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    let snapshot_path = dir.join("checkpoint.json");
    let out_path = dir.join("resumed-report.json");

    let mut victim = KillOnDrop(spawn_role(
        "role_evolve_victim",
        &[(ENV_SNAPSHOT, snapshot_path.to_str().unwrap())],
    ));
    let taken = wait_for_checkpoint(&snapshot_path, 3 * BATCH);
    victim.0.kill().expect("kill victim");
    let _ = victim.0.wait();

    // Re-read: the victim may have checkpointed again before dying.
    let space = rocket_factory()().space().clone();
    let survived = load_snapshot(&snapshot_path, &space).expect("surviving checkpoint");
    assert!(survived.tests_run() >= taken.tests_run());
    // By now the evolve arm has seeds; the resume must carry them.
    assert!(
        survived
            .generator_states()
            .iter()
            .flatten()
            .any(|g| g.corpus.as_ref().is_some_and(|c| !c.seeds.is_empty())),
        "checkpoint carries a non-empty corpus"
    );
    let total = survived.tests_run() + 4 * BATCH;

    let status = spawn_role(
        "role_evolve_resumer",
        &[
            (ENV_SNAPSHOT, snapshot_path.to_str().unwrap()),
            (ENV_OUT, out_path.to_str().unwrap()),
            (ENV_TOTAL, &total.to_string()),
        ],
    )
    .wait()
    .expect("resumer exit");
    assert!(status.success(), "resumer failed");
    let resumed = std::fs::read_to_string(&out_path).expect("resumed report");

    let expected = report::json_canonical(
        &build_campaign(0, None, None).run_until(&[StopCondition::Tests(total)]),
    );
    assert_eq!(resumed, expected, "resumed evolve campaign diverged from the uninterrupted run");
    let _ = std::fs::remove_dir_all(&dir);
}

/// In-process half of the same law, without subprocess timing: snapshot
/// mid-run, rebuild generators, resume, and match the uninterrupted run.
#[test]
fn evolve_snapshot_resumes_in_process_identically() {
    let total = 8 * BATCH;
    let expected = build_campaign(0, None, None).run_until(&[StopCondition::Tests(total)]);

    let mut first = build_campaign(0, None, None);
    for _ in 0..4 {
        first.step_batch();
    }
    let snapshot = first.snapshot();
    assert!(
        snapshot.generator_states().iter().flatten().any(|g| g.corpus.is_some()),
        "evolve arm exports corpus state"
    );
    let consumed_random = snapshot.report().generator_stats[0].tests;
    drop(first);

    let report = build_campaign(consumed_random, Some(snapshot), None)
        .run_until(&[StopCondition::Tests(total)]);
    assert_eq!(report::json_canonical(&report), report::json_canonical(&expected));
}

/// The evolve arm actually pays: against the same budget, a pure evolve
/// campaign reaches the uniform-random arm's final coverage in fewer
/// tests (the bench tracks the full comparison; this is the cheap
/// regression guard).
#[test]
fn evolve_reaches_random_plateau_coverage_in_fewer_tests() {
    let budget = 20 * BATCH;
    let random = chatfuzz_tests::run_budget(
        &rocket_factory(),
        RandomRegression::new(SEED, 16),
        budget,
        BATCH,
        WORKERS,
    );
    let evolve = chatfuzz_tests::run_budget(
        &rocket_factory(),
        EvolveGenerator::new(evolve_config()),
        budget,
        BATCH,
        WORKERS,
    );
    let target = random.final_coverage_pct;
    let evolve_tests = evolve
        .tests_to_reach(target)
        .expect("evolve reaches the random plateau within the same budget");
    let random_tests = random.tests_to_reach(target).expect("random reaches its own plateau");
    assert!(
        evolve_tests < random_tests,
        "evolve needed {evolve_tests} tests to reach {target:.2}%, random needed {random_tests}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every mutant decodes: arbitrary seed programs put through
    /// arbitrary havoc settings (with splicing partners) only ever
    /// produce encodable — hence decodable — instructions.
    #[test]
    fn every_mutant_decodes(seed in 0u64..10_000, len in 1usize..40, ops in 1usize..10) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut instrs: Vec<Instr> = (0..len).map(|_| random_instr(&mut rng)).collect();
        let partner: Vec<Instr> = (0..len).map(|_| random_instr(&mut rng)).collect();
        for _ in 0..8 {
            mutate(&mut rng, &mut instrs, Some(&partner), ops, 64);
            for instr in &instrs {
                let word = encode(instr).expect("mutant encodes");
                prop_assert_eq!(decode(word).expect("mutant decodes"), *instr);
            }
        }
    }

    /// Mutation — and the whole generator driven through feedback — is
    /// deterministic per seed.
    #[test]
    fn evolve_generator_is_deterministic(seed in 0u64..1000, rounds in 1usize..4) {
        let run = || {
            let mut g = EvolveGenerator::new(EvolveConfig { seed, ..Default::default() });
            let mut out = Vec::new();
            for round in 0..rounds {
                let batch = g.next_batch(8);
                let feedback: Vec<chatfuzz_baselines::Feedback> = (0..8)
                    .map(|i| chatfuzz_baselines::Feedback {
                        incremental: (i + round) % 3,
                        cov_fingerprint: (round * 100 + i) as u64 + 1,
                        ..Default::default()
                    })
                    .collect();
                g.observe(&batch, &feedback);
                out.extend(batch);
            }
            out
        };
        prop_assert_eq!(run(), run());
    }

    /// A corpus-carrying snapshot round-trips bit-exactly through the
    /// persisted JSON form: re-serialising the parsed snapshot
    /// reproduces the document, and the corpus state survives intact.
    #[test]
    fn corpus_snapshot_round_trips_bit_exactly(seed in 0u64..500, batches in 2usize..5) {
        let mut campaign = CampaignBuilder::from_factory(rocket_factory())
            .batch_size(BATCH)
            .workers(2)
            .generator(RandomRegression::new(seed, 16))
            .generator(EvolveGenerator::new(EvolveConfig { seed, ..Default::default() }))
            .scheduler(Ucb1::new(0.7))
            .build();
        campaign.run_until(&[StopCondition::Tests(batches * BATCH)]);
        let snapshot = campaign.snapshot();

        let doc = snapshot_json(&snapshot);
        let space = rocket_factory()().space().clone();
        let parsed = parse_snapshot(&doc, &space).expect("round trip parses");
        prop_assert_eq!(snapshot_json(&parsed), doc, "byte-exact re-serialisation");
        prop_assert_eq!(parsed.generator_states(), snapshot.generator_states());
        prop_assert_eq!(parsed.scheduler_state(), snapshot.scheduler_state());
    }
}
