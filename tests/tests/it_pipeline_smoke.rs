//! Integration: the full three-step pipeline trains end-to-end and the
//! resulting generator fuzzes productively.

use chatfuzz::fuzz::{run_campaign, CampaignConfig};
use chatfuzz::generator::{LmGenerator, LmGeneratorConfig};
use chatfuzz::pipeline::{train_chatfuzz, ModelScale, PipelineConfig};
use chatfuzz_baselines::{InputGenerator, RandomRegression};
use chatfuzz_rl::PpoConfig;
use chatfuzz_tests::rocket_factory;

fn smoke_config(seed: u64) -> PipelineConfig {
    // Down-scaled from `quick` so the whole integration test stays fast.
    let mut cfg = PipelineConfig::quick(seed);
    cfg.scale = ModelScale::Tiny;
    cfg.corpus_functions = 48;
    cfg.lm_train.steps = 40;
    cfg.cleanup_iters = 2;
    cfg.cleanup_batch = 4;
    cfg.optimize_iters = 1;
    cfg.optimize_batch = 4;
    cfg
}

#[test]
fn pipeline_then_campaign_end_to_end() {
    let factory = rocket_factory();
    let (model, report) = train_chatfuzz(&smoke_config(7), &factory);
    assert!(!report.lm_curve.is_empty());
    assert!(!report.cleanup_curve.is_empty());
    assert!(!report.optimize_curve.is_empty());

    let ppo = PpoConfig { max_new_tokens: 24, temperature: 0.9, top_k: 24, ..Default::default() };
    let gcfg = LmGeneratorConfig {
        seed: 7,
        total_bins: factory().space().total_bins(),
        samples_per_input: 2,
        ..Default::default()
    };
    let mut generator =
        LmGenerator::new(model.tokenizer, model.policy, ppo, model.prompt_pool, gcfg);
    let cfg = CampaignConfig {
        total_tests: 64,
        batch_size: 16,
        workers: 4,
        history_every: 32,
        ..Default::default()
    };
    let report = run_campaign(&mut generator, &rocket_factory(), &cfg);
    assert_eq!(report.tests_run, 64);
    assert!(
        report.final_coverage_pct > 30.0,
        "even a lightly-trained generator covers substantially: {:.2}%",
        report.final_coverage_pct
    );
}

/// The generator abstraction is interchangeable: the same campaign code
/// drives a baseline and the LM generator.
#[test]
fn generators_are_interchangeable() {
    let cfg = CampaignConfig {
        total_tests: 32,
        batch_size: 16,
        workers: 2,
        detect_mismatches: false,
        history_every: 32,
        ..Default::default()
    };
    let mut random = RandomRegression::new(1, 16);
    let a = run_campaign(&mut random, &rocket_factory(), &cfg);
    assert_eq!(a.generator, "random");
    assert_eq!(a.tests_run, 32);

    // Feedback plumbing: the generator sees exactly one Feedback per input.
    struct Counting(usize, usize);
    impl InputGenerator for Counting {
        fn name(&self) -> &str {
            "counting"
        }
        fn next_batch(&mut self, n: usize) -> Vec<Vec<u8>> {
            self.0 += n;
            (0..n).map(|_| 0x0000_0013u32.to_le_bytes().to_vec()).collect()
        }
        fn observe(&mut self, batch: &[Vec<u8>], feedback: &[chatfuzz_baselines::Feedback]) {
            assert_eq!(batch.len(), feedback.len());
            self.1 += feedback.len();
        }
    }
    let mut counting = Counting(0, 0);
    let b = run_campaign(&mut counting, &rocket_factory(), &cfg);
    assert_eq!(b.tests_run, 32);
    assert_eq!(counting.0, 32);
    assert_eq!(counting.1, 32);
}
