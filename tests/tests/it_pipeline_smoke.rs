//! Integration: the full three-step pipeline trains end-to-end and the
//! resulting generator fuzzes productively.

use chatfuzz::generator::{LmGenerator, LmGeneratorConfig};
use chatfuzz::pipeline::{train_chatfuzz, ModelScale, PipelineConfig};
use chatfuzz_baselines::{InputGenerator, RandomRegression};
use chatfuzz_rl::PpoConfig;
use chatfuzz_tests::{rocket_factory, run_budget};

fn smoke_config(seed: u64) -> PipelineConfig {
    // Down-scaled from `quick` so the whole integration test stays fast.
    let mut cfg = PipelineConfig::quick(seed);
    cfg.scale = ModelScale::Tiny;
    cfg.corpus_functions = 48;
    cfg.lm_train.steps = 40;
    cfg.cleanup_iters = 2;
    cfg.cleanup_batch = 4;
    cfg.optimize_iters = 1;
    cfg.optimize_batch = 4;
    cfg
}

#[test]
fn pipeline_then_campaign_end_to_end() {
    let factory = rocket_factory();
    let (model, report) = train_chatfuzz(&smoke_config(7), &factory);
    assert!(!report.lm_curve.is_empty());
    assert!(!report.cleanup_curve.is_empty());
    assert!(!report.optimize_curve.is_empty());

    let ppo = PpoConfig { max_new_tokens: 24, temperature: 0.9, top_k: 24, ..Default::default() };
    let gcfg = LmGeneratorConfig {
        seed: 7,
        total_bins: factory().space().total_bins(),
        samples_per_input: 2,
        ..Default::default()
    };
    let generator = LmGenerator::new(model.tokenizer, model.policy, ppo, model.prompt_pool, gcfg);
    let report = run_budget(&rocket_factory(), generator, 64, 16, 4);
    assert_eq!(report.tests_run, 64);
    assert!(
        report.final_coverage_pct > 30.0,
        "even a lightly-trained generator covers substantially: {:.2}%",
        report.final_coverage_pct
    );
}

/// The generator abstraction is interchangeable: the same campaign code
/// drives a baseline and the LM generator.
#[test]
fn generators_are_interchangeable() {
    let a = run_budget(&rocket_factory(), RandomRegression::new(1, 16), 32, 16, 2);
    assert_eq!(a.generator, "random");
    assert_eq!(a.tests_run, 32);

    // Feedback plumbing: the generator sees exactly one Feedback per
    // input. The campaign owns its generator, so the counters live behind
    // a shared handle.
    let counting = std::sync::Arc::new(std::sync::Mutex::new((0usize, 0usize)));
    struct Counting(std::sync::Arc<std::sync::Mutex<(usize, usize)>>);
    impl InputGenerator for Counting {
        fn name(&self) -> &str {
            "counting"
        }
        fn next_batch(&mut self, n: usize) -> Vec<Vec<u8>> {
            self.0.lock().unwrap().0 += n;
            (0..n).map(|_| 0x0000_0013u32.to_le_bytes().to_vec()).collect()
        }
        fn observe(&mut self, batch: &[Vec<u8>], feedback: &[chatfuzz_baselines::Feedback]) {
            assert_eq!(batch.len(), feedback.len());
            self.0.lock().unwrap().1 += feedback.len();
        }
    }
    let b = run_budget(&rocket_factory(), Counting(std::sync::Arc::clone(&counting)), 32, 16, 2);
    assert_eq!(b.tests_run, 32);
    assert_eq!(*counting.lock().unwrap(), (32, 32));
}
