//! Integration: end-to-end determinism — identical seeds give identical
//! campaigns, traces, coverage and mismatch counts across the whole stack.

use chatfuzz::harness::{wrap, HarnessConfig};
use chatfuzz_baselines::{MutatorConfig, TheHuzz};
use chatfuzz_corpus::{CorpusConfig, CorpusGenerator};
use chatfuzz_isa::encode_program;
use chatfuzz_rtl::{Boom, BoomConfig, Dut, Rocket, RocketConfig};
use chatfuzz_softcore::{SoftCore, SoftCoreConfig};
use chatfuzz_tests::{rocket_factory, run_budget};
use proptest::prelude::*;

#[test]
fn campaigns_replay_bit_identically() {
    let run = |workers: usize| {
        let generator = TheHuzz::new(MutatorConfig { seed: 77, ..Default::default() });
        run_budget(&rocket_factory(), generator, 96, 32, workers)
    };
    let a = run(2);
    let b = run(6);
    assert_eq!(a.final_coverage_pct, b.final_coverage_pct);
    assert_eq!(a.raw_mismatches, b.raw_mismatches);
    assert_eq!(a.total_cycles, b.total_cycles);
    assert_eq!(
        a.history.iter().map(|p| p.covered_bins).collect::<Vec<_>>(),
        b.history.iter().map(|p| p.covered_bins).collect::<Vec<_>>()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any corpus program, wrapped, produces identical traces on repeated
    /// runs of every simulator (golden, Rocket, BOOM).
    #[test]
    fn simulators_are_deterministic_on_corpus_programs(seed in 0u64..500) {
        let mut corpus = CorpusGenerator::new(CorpusConfig { seed, ..Default::default() });
        let body = encode_program(&corpus.generate_function()).unwrap();
        let image = wrap(&body, HarnessConfig::default());

        let golden = SoftCore::new(SoftCoreConfig::default());
        prop_assert_eq!(golden.run(&image), golden.run(&image));

        let mut rocket = Rocket::new(RocketConfig::default());
        let r1 = rocket.run(&image);
        let r2 = rocket.run(&image);
        prop_assert_eq!(r1.trace, r2.trace);
        prop_assert_eq!(r1.cycles, r2.cycles);
        prop_assert_eq!(r1.coverage.covered_bins(), r2.coverage.covered_bins());

        let mut boom = Boom::new(BoomConfig::default());
        let b1 = boom.run(&image);
        let b2 = boom.run(&image);
        prop_assert_eq!(b1.trace, b2.trace);
        prop_assert_eq!(b1.cycles, b2.cycles);
    }

    /// Corpus programs never desync the wrapped golden/BOOM pair (BOOM is
    /// bug-free, so the *entire corpus surface* must be divergence-free).
    #[test]
    fn boom_never_diverges_on_corpus(seed in 0u64..300) {
        let mut corpus = CorpusGenerator::new(CorpusConfig { seed, ..Default::default() });
        let body = encode_program(&corpus.generate_function()).unwrap();
        let image = wrap(&body, HarnessConfig::default());
        let golden = SoftCore::new(SoftCoreConfig::default()).run(&image);
        let mut boom = Boom::new(BoomConfig::default());
        let run = boom.run(&image);
        let mismatches = chatfuzz::mismatch::diff_traces(&golden, &run.trace);
        prop_assert!(mismatches.is_empty(), "unexpected divergence: {:?}", mismatches);
    }
}
