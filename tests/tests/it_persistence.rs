//! Integration: durable snapshots across process boundaries.
//!
//! The centrepiece kills a checkpointing campaign mid-run (a real
//! `SIGKILL`, not a cooperative shutdown), resumes from the last
//! snapshot *in a fresh process*, and asserts the final report is
//! bit-identical to an uninterrupted run — the property that makes
//! long coverage-over-time campaigns safe to run on pre-emptible
//! hardware.
//!
//! Child roles re-invoke this very test binary (`--exact <role test>`)
//! with `CHATFUZZ_IT_*` environment variables carrying the work order;
//! the role tests are no-ops under a normal `cargo test`.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use chatfuzz::campaign::{Campaign, CampaignBuilder, CampaignSnapshot, StopCondition};
use chatfuzz::persist::{load_snapshot, parse_snapshot, save_snapshot, snapshot_json};
use chatfuzz::report;
use chatfuzz_baselines::{EpsilonGreedy, InputGenerator, RandomRegression};
use chatfuzz_tests::rocket_factory;
use proptest::prelude::*;

const SEED: u64 = 41;
const BATCH: usize = 16;
const WORKERS: usize = 4;

const ENV_ROLE: &str = "CHATFUZZ_IT_ROLE";
const ENV_SNAPSHOT: &str = "CHATFUZZ_IT_SNAPSHOT";
const ENV_OUT: &str = "CHATFUZZ_IT_OUT";
const ENV_TOTAL: &str = "CHATFUZZ_IT_TOTAL";

/// The deterministic campaign under test. `consumed` fast-forwards the
/// feedback-free generator past inputs an earlier process already ran;
/// `checkpoint` enables the built-in per-batch auto-checkpointing.
fn build_campaign(
    consumed: usize,
    resume: Option<CampaignSnapshot>,
    checkpoint: Option<&Path>,
) -> Campaign<'static> {
    let mut generator = RandomRegression::new(SEED, 16);
    if consumed > 0 {
        let _ = generator.next_batch(consumed);
    }
    let mut builder = CampaignBuilder::from_factory(rocket_factory())
        .batch_size(BATCH)
        .workers(WORKERS)
        .generator(generator);
    if let Some(snapshot) = resume {
        builder = builder.resume(snapshot);
    }
    if let Some(path) = checkpoint {
        builder = builder.auto_checkpoint(path, 1);
    }
    builder.build()
}

fn spawn_role(role: &str, envs: &[(&str, &str)]) -> Child {
    let exe = std::env::current_exe().expect("test binary path");
    let mut cmd = Command::new(exe);
    cmd.arg(role).arg("--exact").arg("--nocapture");
    cmd.env(ENV_ROLE, role);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.stdout(Stdio::null()).stderr(Stdio::null());
    cmd.spawn().expect("spawn role child")
}

/// Kills the child when dropped, so a panicking parent (e.g. the
/// checkpoint-polling deadline) never leaks the infinitely-looping
/// victim process onto the test machine.
struct KillOnDrop(Child);

impl Drop for KillOnDrop {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Child role: run the campaign indefinitely with the built-in
/// auto-checkpointing (atomic temp+rename every batch — no caller-driven
/// `step_batch` loop), until the parent kills this process.
#[test]
fn role_checkpointing_victim() {
    if std::env::var(ENV_ROLE).as_deref() != Ok("role_checkpointing_victim") {
        return;
    }
    let path = PathBuf::from(std::env::var(ENV_SNAPSHOT).expect("snapshot path"));
    let mut campaign = build_campaign(0, None, Some(&path));
    campaign.run_until(&[StopCondition::Tests(usize::MAX)]);
}

/// Child role: load the snapshot, resume in this fresh process, run to
/// the requested total, and write the canonical report.
#[test]
fn role_resumer() {
    if std::env::var(ENV_ROLE).as_deref() != Ok("role_resumer") {
        return;
    }
    let path = PathBuf::from(std::env::var(ENV_SNAPSHOT).expect("snapshot path"));
    let out = PathBuf::from(std::env::var(ENV_OUT).expect("out path"));
    let total: usize = std::env::var(ENV_TOTAL).expect("total").parse().expect("total number");

    let space = rocket_factory()().space().clone();
    let snapshot = load_snapshot(&path, &space).expect("load checkpoint");
    let mut campaign = build_campaign(snapshot.tests_run(), Some(snapshot), None);
    let report = campaign.run_until(&[StopCondition::Tests(total)]);
    std::fs::write(out, report::json_canonical(&report)).expect("write canonical report");
}

fn wait_for_checkpoint(path: &Path, min_tests: usize) -> CampaignSnapshot {
    let space = rocket_factory()().space().clone();
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        // save_snapshot renames atomically, so a readable file is always
        // a complete document.
        if let Ok(snapshot) = load_snapshot(path, &space) {
            if snapshot.tests_run() >= min_tests {
                return snapshot;
            }
        }
        assert!(Instant::now() < deadline, "victim produced no usable checkpoint in time");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Kill a campaign mid-run; resume from its last on-disk checkpoint in a
/// fresh process; the final report is bit-identical (canonical form —
/// wall clock excluded) to one uninterrupted run of the same seed.
#[test]
fn killed_campaign_resumes_bit_identically() {
    let dir = std::env::temp_dir().join(format!("chatfuzz-it-persist-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    let snapshot_path = dir.join("checkpoint.json");
    let out_path = dir.join("resumed-report.json");

    // 1. Start the victim and kill it once it has checkpointed at least
    //    two batches — mid-run, from the victim's point of view.
    let mut victim = KillOnDrop(spawn_role(
        "role_checkpointing_victim",
        &[(ENV_SNAPSHOT, snapshot_path.to_str().unwrap())],
    ));
    let taken = wait_for_checkpoint(&snapshot_path, 2 * BATCH);
    victim.0.kill().expect("kill victim");
    let _ = victim.0.wait();

    // The victim may have checkpointed again between our load and the
    // kill; re-read the file so the resumer and the reference agree on
    // the surviving checkpoint.
    let space = rocket_factory()().space().clone();
    let survived = load_snapshot(&snapshot_path, &space).expect("surviving checkpoint");
    assert!(survived.tests_run() >= taken.tests_run());
    let total = survived.tests_run() + 4 * BATCH;

    // 2. Resume in a fresh process.
    let status = spawn_role(
        "role_resumer",
        &[
            (ENV_SNAPSHOT, snapshot_path.to_str().unwrap()),
            (ENV_OUT, out_path.to_str().unwrap()),
            (ENV_TOTAL, &total.to_string()),
        ],
    )
    .wait()
    .expect("resumer exit");
    assert!(status.success(), "resumer failed");
    let resumed = std::fs::read_to_string(&out_path).expect("resumed report");

    // 3. Uninterrupted reference in this process.
    let expected = report::json_canonical(
        &build_campaign(0, None, None).run_until(&[StopCondition::Tests(total)]),
    );

    assert_eq!(resumed, expected, "resumed campaign diverged from the uninterrupted run");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The same kill/resume flow but staying in-process for the first half —
/// guards the save/load/resume path itself without subprocess timing.
#[test]
fn saved_snapshot_resumes_in_process_identically() {
    let total = 6 * BATCH;
    let expected = build_campaign(0, None, None).run_until(&[StopCondition::Tests(total)]);

    // Checkpoint with `step_batch` + `snapshot`, not `run_until`: a
    // checkpoint is a mid-run state, and must not inject the
    // end-of-session history point `run_until` records.
    let mut first = build_campaign(0, None, None);
    for _ in 0..3 {
        first.step_batch();
    }
    let dir = std::env::temp_dir().join(format!("chatfuzz-it-persist-ip-{}", std::process::id()));
    let path = dir.join("half.json");
    save_snapshot(&path, &first.snapshot()).expect("save");
    drop(first);

    let space = rocket_factory()().space().clone();
    let snapshot = load_snapshot(&path, &space).expect("load");
    let report = build_campaign(snapshot.tests_run(), Some(snapshot), None)
        .run_until(&[StopCondition::Tests(total)]);

    assert_eq!(report::json_canonical(&report), report::json_canonical(&expected));
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Snapshot → JSON → snapshot is the identity, for campaigns of
    /// varying seed, shape, and scheduler state (epsilon-greedy arms and
    /// RNG stream included). Identity is checked at the JSON level: the
    /// round-tripped snapshot re-serialises byte-identically.
    #[test]
    fn snapshot_round_trips_through_json(
        seed in 0u64..1000,
        batches in 1usize..5,
        epsilon in 0.0f64..=0.5,
    ) {
        let mut campaign = CampaignBuilder::from_factory(rocket_factory())
            .batch_size(BATCH)
            .workers(2)
            .generator(RandomRegression::new(seed, 16))
            .generator(RandomRegression::new(seed ^ 0xdead_beef, 24))
            .scheduler(EpsilonGreedy::new(seed, epsilon))
            .build();
        campaign.run_until(&[StopCondition::Tests(batches * BATCH)]);
        let snapshot = campaign.snapshot();

        let doc = snapshot_json(&snapshot);
        let space = rocket_factory()().space().clone();
        let parsed = parse_snapshot(&doc, &space).expect("round trip parses");
        prop_assert_eq!(snapshot_json(&parsed), doc);
        prop_assert_eq!(parsed.tests_run(), snapshot.tests_run());
        prop_assert_eq!(parsed.scheduler_state(), snapshot.scheduler_state());
        prop_assert_eq!(
            parsed.coverage().covered_bins(),
            snapshot.coverage().covered_bins()
        );
    }
}
