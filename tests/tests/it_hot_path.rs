//! Integration: the zero-allocation execution hot path is bit-identical
//! to the naive allocating path.
//!
//! PR 3 introduced three hot-path optimisations — a word-validated decode
//! cache, reusable execution arenas (`Dut::run_into`, `SoftCoreRunner`,
//! `Memory::reset_with_image`), and a precompiled harness. Each keeps an
//! allocating one-shot twin (`Dut::run`, `SoftCore::run`, `wrap`); these
//! tests pin the two paths together bit-for-bit, across buffer reuse,
//! self-modifying code, and whole campaigns.

use chatfuzz::campaign::{CampaignBuilder, StopCondition};
use chatfuzz::harness::{body_offset, wrap, HarnessConfig, PrecompiledHarness};
use chatfuzz::mismatch::diff_traces;
use chatfuzz_baselines::{InputGenerator, RandomRegression};
use chatfuzz_corpus::{CorpusConfig, CorpusGenerator};
use chatfuzz_coverage::Calculator;
use chatfuzz_isa::asm::Assembler;
use chatfuzz_isa::{encode, encode_program, AluOp, BranchCond, Instr, MemWidth, Reg, SystemOp};
use chatfuzz_rtl::{Boom, BoomConfig, BugConfig, Dut, DutRun, Rocket, RocketConfig};
use chatfuzz_softcore::trace::Trace;
use chatfuzz_softcore::{SoftCore, SoftCoreConfig, SoftCoreRunner};
use proptest::prelude::*;
use std::sync::Arc;

fn corpus_image(seed: u64) -> Vec<u8> {
    let mut corpus = CorpusGenerator::new(CorpusConfig { seed, ..Default::default() });
    let body = encode_program(&corpus.generate_function()).unwrap();
    wrap(&body, HarnessConfig::default())
}

fn assert_runs_equal(naive: &DutRun, hot: &DutRun, what: &str) {
    assert_eq!(naive.trace, hot.trace, "{what}: trace diverged");
    assert_eq!(naive.cycles, hot.cycles, "{what}: cycles diverged");
    assert_eq!(naive.coverage.words(), hot.coverage.words(), "{what}: coverage bitmap diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `run_into` with a recycled arena + scratch buffer produces exactly
    /// what a fresh-DUT `run` produces, for a *sequence* of different
    /// programs through the same buffers (so cross-test contamination
    /// would be caught).
    #[test]
    fn rocket_run_into_matches_run_across_reuse(seed in 0u64..400) {
        let mut reused = Rocket::new(RocketConfig::default());
        let mut scratch = DutRun::scratch(reused.space());
        for s in [seed, seed + 1000, seed + 2000] {
            let image = corpus_image(s);
            let naive = Rocket::new(RocketConfig::default()).run(&image);
            reused.run_into(&image, &mut scratch);
            assert_runs_equal(&naive, &scratch, "rocket");
        }
    }

    #[test]
    fn boom_run_into_matches_run_across_reuse(seed in 0u64..400) {
        let mut reused = Boom::new(BoomConfig::default());
        let mut scratch = DutRun::scratch(reused.space());
        for s in [seed, seed + 1000, seed + 2000] {
            let image = corpus_image(s);
            let naive = Boom::new(BoomConfig::default()).run(&image);
            reused.run_into(&image, &mut scratch);
            assert_runs_equal(&naive, &scratch, "boom");
        }
    }

    /// The reusable golden-model arena matches the one-shot simulator.
    #[test]
    fn softcore_runner_matches_one_shot(seed in 0u64..400) {
        let one_shot = SoftCore::new(SoftCoreConfig::default());
        let mut runner = SoftCoreRunner::new(SoftCoreConfig::default());
        let mut trace = Trace::scratch();
        for s in [seed, seed + 1000, seed + 2000] {
            let image = corpus_image(s);
            runner.run_into(&image, &mut trace);
            prop_assert_eq!(&trace, &one_shot.run(&image));
        }
    }

    /// The precompiled harness builds byte-identical images to `wrap`,
    /// including through buffer reuse across differently-sized bodies.
    #[test]
    fn precompiled_harness_matches_wrap(seed in 0u64..500, len in 0usize..48) {
        let mut corpus = CorpusGenerator::new(CorpusConfig { seed, ..Default::default() });
        let mut body = encode_program(&corpus.generate_function()).unwrap();
        body.truncate(len * 4);
        let cfg = HarnessConfig::default();
        let harness = PrecompiledHarness::new(cfg);
        let mut buffer = vec![0xa5; 256]; // dirty buffer: build_into must clear
        harness.build_into(&body, &mut buffer);
        prop_assert_eq!(&buffer, &wrap(&body, cfg));
        prop_assert_eq!(harness.body_offset(), body_offset(cfg));
    }

    /// Mixing the two paths on one DUT instance: a `run` between
    /// `run_into`s must neither disturb nor be disturbed by the arena.
    #[test]
    fn interleaved_run_and_run_into_agree(seed in 0u64..200) {
        let mut dut = Rocket::new(RocketConfig::default());
        let mut scratch = DutRun::scratch(dut.space());
        let a = corpus_image(seed);
        let b = corpus_image(seed + 5000);
        dut.run_into(&a, &mut scratch);
        let first = scratch.clone();
        let one_shot = dut.run(&b);
        assert_runs_equal(&Rocket::new(RocketConfig::default()).run(&b), &one_shot, "mixed run");
        dut.run_into(&a, &mut scratch);
        assert_runs_equal(&first, &scratch, "arena after interleaved run");
    }
}

/// Directed BUG1 regression with the decode cache on the reused arena:
/// the program *executes* an instruction, then stores a new word over it
/// and loops back. The incoherent Rocket I-cache must keep serving the
/// stale instruction (and the decode cache must keep decoding the stale
/// word), while the golden model and the bug-free Rocket execute the
/// patched one.
#[test]
fn bug1_store_over_executed_code_still_reproduces_with_decode_cache() {
    let t0 = Reg::new(5).unwrap();
    let t1 = Reg::new(6).unwrap();
    let t2 = Reg::new(7).unwrap();
    let a0 = Reg::new(10).unwrap();
    let patched =
        encode(&Instr::OpImm { op: AluOp::Add, rd: a0, rs1: a0, imm: 64, word: false }).unwrap();

    let mut asm = Assembler::new();
    asm.push(Instr::Auipc { rd: t0, imm: 0 }); // t0 = base
    asm.label("patch"); // base + 4
    asm.push(Instr::OpImm { op: AluOp::Add, rd: a0, rs1: a0, imm: 1, word: false });
    asm.branch_to(BranchCond::Ne, t2, Reg::X0, "done"); // second pass exits
    asm.push(Instr::OpImm { op: AluOp::Add, rd: t2, rs1: Reg::X0, imm: 1, word: false });
    asm.li(t1, i64::from(patched as i32));
    asm.push(Instr::Store { width: MemWidth::W, rs2: t1, rs1: t0, offset: 4 });
    asm.jal_to(Reg::X0, "patch"); // re-execute the (now patched) slot
    asm.label("done");
    asm.push(Instr::System(SystemOp::Wfi));
    let bytes = asm.assemble_bytes().unwrap();

    let last_a0 = |trace: &Trace| {
        trace
            .records
            .iter()
            .rev()
            .find_map(|r| r.rd_write.filter(|(rd, _)| *rd == a0))
            .map(|(_, v)| v)
    };

    // Golden: second pass executes the patched +64 → a0 = 65.
    let golden = SoftCore::new(SoftCoreConfig::default()).run(&bytes);
    assert_eq!(golden.exit, chatfuzz_softcore::trace::ExitReason::Wfi);
    assert_eq!(last_a0(&golden), Some(65), "golden executes the patched word");

    // Buggy Rocket via the recycled hot path (run a decoy first so the
    // arena and decode cache are warm from an unrelated program).
    let mut buggy = Rocket::new(RocketConfig::default());
    let mut scratch = DutRun::scratch(buggy.space());
    buggy.run_into(&corpus_image(7), &mut scratch);
    buggy.run_into(&bytes, &mut scratch);
    assert_eq!(last_a0(&scratch.trace), Some(2), "BUG1: stale instruction re-executed");
    assert!(
        !diff_traces(&golden, &scratch.trace).is_empty(),
        "BUG1 must still surface as a mismatch"
    );

    // And the hot path agrees with the naive path on the buggy core…
    let naive = Rocket::new(RocketConfig::default()).run(&bytes);
    assert_runs_equal(&naive, &scratch, "bug1 program");

    // …while a fixed Rocket on the hot path matches the golden model.
    let mut fixed = Rocket::new(RocketConfig { bugs: BugConfig::all_off(), ..Default::default() });
    let mut fixed_scratch = DutRun::scratch(fixed.space());
    fixed.run_into(&bytes, &mut fixed_scratch);
    assert_eq!(fixed_scratch.trace, golden, "coherent fetch executes the patched word");
}

/// A whole campaign through the recycling worker loop produces exactly
/// the coverage map, cycle count, and mismatch tally of a hand-rolled
/// naive loop (fresh `wrap` + `Dut::run` + `SoftCore::run` per test) over
/// the same inputs.
#[test]
fn campaign_matches_hand_rolled_naive_loop() {
    const TESTS: usize = 48;
    const BATCH: usize = 16;

    let factory = || Rocket::new(RocketConfig::default());
    let mut campaign = CampaignBuilder::new(move || Box::new(factory()) as Box<dyn Dut>)
        .batch_size(BATCH)
        .workers(3)
        .generator(RandomRegression::new(5, 16))
        .build();
    campaign.run_until(&[StopCondition::Tests(TESTS)]);
    let snapshot = campaign.snapshot();
    let report = campaign.report();
    drop(campaign);

    // Naive replication: same generator stream, allocating paths only.
    let mut generator = RandomRegression::new(5, 16);
    let mut dut = factory();
    let golden = SoftCore::new(SoftCoreConfig::default());
    let mut calculator = Calculator::new(&Arc::clone(dut.space()));
    let mut cycles = 0u64;
    let mut mismatches = 0usize;
    for _ in 0..TESTS / BATCH {
        let batch = generator.next_batch(BATCH);
        let mut covs = Vec::new();
        for body in &batch {
            let image = wrap(body, HarnessConfig::default());
            let run = dut.run(&image);
            let golden_trace = golden.run(&image);
            cycles += run.cycles;
            mismatches += diff_traces(&golden_trace, &run.trace).len();
            covs.push(run.coverage);
        }
        calculator.score_batch(&covs);
    }

    assert_eq!(report.total_cycles, cycles);
    assert_eq!(report.raw_mismatches, mismatches);
    assert_eq!(snapshot.coverage().words(), calculator.total().words());
    assert_eq!(report.final_coverage_pct, calculator.total_percent());
}
