//! Integration: the fault-injection harness end to end.
//!
//! The centrepiece is a **crash-point sweep**: a child process runs a
//! small auto-checkpointing campaign under a seeded
//! [`chatfuzz::faults`] plan that aborts it at *every* persist boundary
//! in turn — after the temp write (the rename never happens) and after
//! the rename — plus a torn-write variant that truncates the checkpoint
//! mid-document before crashing. The parent then recovers with
//! [`load_latest_valid`] (quarantining corpses, falling back through
//! the rotated lineage), resumes, and requires the final report to be
//! `json_canonical`-identical to a loss-free run. A fleet-degradation
//! test quarantines a lease that dies on every attempt and requires the
//! surviving shards to finish the campaign anyway.
//!
//! Child roles re-invoke this test binary (`--exact <role test>`) with
//! the fault plan in `CHATFUZZ_FAULT_PLAN`; the role test is a no-op
//! under a normal `cargo test`. Every artefact (checkpoints, lineage,
//! quarantined corpses, the fault-plan schedule per case) lands under
//! `target/it-faults/` so CI can upload it when a case fails.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

use chatfuzz::campaign::{Campaign, CampaignBuilder, CampaignSnapshot, StopCondition};
use chatfuzz::faults::{self, FaultConfig};
use chatfuzz::persist::{load_latest_valid, Recovery};
use chatfuzz::report;
use chatfuzz::shard::ShardSpec;
use chatfuzz_baselines::{InputGenerator, RandomRegression};
use chatfuzz_orchestrate::{FleetConfig, LeaseBuilder, LocalPoolTransport, Orchestrator};
use chatfuzz_telemetry::TelemetrySink;
use chatfuzz_tests::rocket_factory;

const SEED: u64 = 47;
const BATCH: usize = 8;
const TOTAL: usize = 48;
/// Auto-checkpoints per victim run: one per batch.
const OPS: u64 = (TOTAL / BATCH) as u64;

const ENV_ROLE: &str = "CHATFUZZ_IT_ROLE";
const ENV_CKPT: &str = "CHATFUZZ_IT_CKPT";

/// Everything this suite writes lives under `target/it-faults/` — a
/// stable, repo-relative location CI uploads as an artifact when a
/// sweep case fails (quarantined corpses and the fault-plan seeds that
/// replay them).
fn artefact_root() -> PathBuf {
    let exe = std::env::current_exe().expect("test binary path");
    // target/<profile>/deps/<exe> -> target
    exe.ancestors().nth(3).expect("target dir").join("it-faults")
}

/// The deterministic campaign under test: one feedback-free arm, so a
/// resume fast-forwarded past `consumed` inputs continues the input
/// stream bit for bit.
fn build_campaign(
    consumed: usize,
    resume: Option<CampaignSnapshot>,
    checkpoint: Option<&Path>,
) -> Campaign<'static> {
    let mut generator = RandomRegression::new(SEED, 16);
    if consumed > 0 {
        let _ = generator.next_batch(consumed);
    }
    let mut builder = CampaignBuilder::from_factory(rocket_factory())
        .batch_size(BATCH)
        .workers(2)
        .generator(generator);
    if let Some(snapshot) = resume {
        builder = builder.resume(snapshot);
    }
    if let Some(path) = checkpoint {
        builder = builder.auto_checkpoint(path, 1);
    }
    builder.build()
}

/// Child role: run the checkpointing campaign to completion — except
/// the `CHATFUZZ_FAULT_PLAN` schedule the parent injected crashes this
/// process at one exact persist boundary first.
#[test]
fn role_faulted_victim() {
    if std::env::var(ENV_ROLE).as_deref() != Ok("role_faulted_victim") {
        return;
    }
    let path = PathBuf::from(std::env::var(ENV_CKPT).expect("checkpoint path"));
    let mut campaign = build_campaign(0, None, Some(&path));
    campaign.run_until(&[StopCondition::Tests(TOTAL)]);
}

/// Spawns the victim under `plan`, waits for it to die, and asserts it
/// did NOT exit cleanly — every sweep case is supposed to crash.
fn run_victim_to_crash(case_dir: &Path, plan: &FaultConfig) -> PathBuf {
    let _ = std::fs::remove_dir_all(case_dir);
    std::fs::create_dir_all(case_dir).expect("case dir");
    // The schedule that produced this case's artefacts, for CI upload:
    // `CHATFUZZ_FAULT_PLAN=<contents> cargo test role_faulted_victim`
    // replays the crash bit-exactly.
    std::fs::write(case_dir.join("fault-plan.txt"), plan.env_value()).expect("record plan");
    let ckpt = case_dir.join("ckpt.json");
    let exe = std::env::current_exe().expect("test binary path");
    let status = Command::new(exe)
        .arg("role_faulted_victim")
        .arg("--exact")
        .arg("--nocapture")
        .env(ENV_ROLE, "role_faulted_victim")
        .env(ENV_CKPT, &ckpt)
        .env(faults::ENV_VAR, plan.env_value())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .expect("run victim");
    assert!(
        !status.success(),
        "the fault plan `{}` must crash the victim, not let it finish",
        plan.env_value()
    );
    ckpt
}

/// Recovers from whatever the crash left, resumes in this process, and
/// returns the canonical report (plus the recovery for assertions).
fn recover_and_resume(ckpt: &Path) -> (String, Recovery) {
    let space = rocket_factory()().space().clone();
    let recovery = load_latest_valid(ckpt, &space);
    let consumed = recovery.snapshot.as_ref().map_or(0, CampaignSnapshot::tests_run);
    let mut campaign = build_campaign(consumed, recovery.snapshot.clone(), None);
    let report = campaign.run_until(&[StopCondition::Tests(TOTAL)]);
    (report::json_canonical(&report), recovery)
}

/// The loss-free reference this whole file compares against.
fn reference_report() -> String {
    let mut campaign = build_campaign(0, None, None);
    report::json_canonical(&campaign.run_until(&[StopCondition::Tests(TOTAL)]))
}

/// Crash-point sweep: abort the victim at every persist boundary of the
/// campaign — boundary `2n-1` is after checkpoint n's temp write (the
/// rename never happens; the live file still holds checkpoint n-1) and
/// boundary `2n` is after its rename (checkpoint n is the live file).
/// Every case must recover and finish `json_canonical`-identical to the
/// loss-free run.
#[test]
fn crash_at_every_persist_boundary_resumes_identically() {
    let reference = reference_report();
    let root = artefact_root();
    for boundary in 1..=(2 * OPS) {
        let case_dir = root.join(format!("crash-b{boundary}"));
        let plan = FaultConfig { crash_at_boundary: boundary, ..FaultConfig::benign(SEED) };
        let ckpt = run_victim_to_crash(&case_dir, &plan);
        let (resumed, recovery) = recover_and_resume(&ckpt);
        // A crash between temp write and rename loses nothing but the
        // unrenamed temp file: the lineage head is always a *complete*
        // checkpoint, so nothing needs quarantining.
        assert!(
            recovery.quarantined.is_empty(),
            "boundary {boundary}: atomic renames never leave a torn live file, \
             yet {:?} was quarantined",
            recovery.quarantined
        );
        let op = boundary.div_ceil(2);
        let expect_tests =
            if boundary % 2 == 1 { (op - 1) * BATCH as u64 } else { op * BATCH as u64 };
        assert_eq!(
            recovery.snapshot.as_ref().map_or(0, |s| s.tests_run() as u64),
            expect_tests,
            "boundary {boundary}: recovered checkpoint depth is off"
        );
        assert_eq!(
            resumed, reference,
            "boundary {boundary}: resumed run diverged from the loss-free reference"
        );
        let _ = std::fs::remove_dir_all(&case_dir);
    }
}

/// Torn-write sweep: tear checkpoint n mid-document *and* crash right
/// after its rename, so the live file is a truncated corpse. Recovery
/// must quarantine it (rename, never delete), fall back through the
/// rotated lineage to checkpoint n-1 — or to a from-scratch run when
/// the very first checkpoint tore — and still finish identically.
#[test]
fn torn_checkpoints_are_quarantined_and_lineage_recovers() {
    let reference = reference_report();
    let root = artefact_root();
    for op in 1..=OPS {
        let case_dir = root.join(format!("torn-op{op}"));
        let plan = FaultConfig {
            torn_at_op: op,
            torn_keep_bytes: 25,
            crash_at_boundary: 2 * op,
            ..FaultConfig::benign(SEED)
        };
        let ckpt = run_victim_to_crash(&case_dir, &plan);
        let (resumed, recovery) = recover_and_resume(&ckpt);
        assert_eq!(
            recovery.quarantined.len(),
            1,
            "op {op}: exactly the torn live file is quarantined"
        );
        let corpse = &recovery.quarantined[0];
        assert!(
            corpse.to_string_lossy().contains(".quarantined"),
            "op {op}: corpse parked under a .quarantined name, got {}",
            corpse.display()
        );
        assert!(corpse.exists(), "op {op}: quarantine renames, never deletes");
        assert!(!ckpt.exists(), "op {op}: the torn live file was moved aside");
        let (expect_depth, expect_tests) = if op == 1 {
            (0, 0) // nothing before the first checkpoint: run from scratch
        } else {
            (1, (op - 1) * BATCH as u64)
        };
        if expect_tests > 0 {
            assert_eq!(recovery.fallback_depth, expect_depth, "op {op}");
        }
        assert_eq!(
            recovery.snapshot.as_ref().map_or(0, |s| s.tests_run() as u64),
            expect_tests,
            "op {op}: fallback landed on the wrong lineage entry"
        );
        assert_eq!(
            resumed, reference,
            "op {op}: resumed run diverged from the loss-free reference"
        );
        let _ = std::fs::remove_dir_all(&case_dir);
    }
}

/// Graceful fleet degradation end to end: one shard's lease dies on
/// every attempt (its template panics before the campaign even builds),
/// the crash-loop detector quarantines it, and the surviving shards
/// still complete the campaign with their merged coverage intact. The
/// fleet runs fully instrumented, streaming its timeline to
/// `target/it-faults/fleet-quarantine.trace.jsonl` — left behind for CI
/// upload when the test fails, removed on success — and the quarantine
/// must be visible on it, reason and all.
#[test]
fn a_fleet_with_one_quarantined_lease_still_completes() {
    let fan_out = 3;
    let lease_tests = 32;
    let template: LeaseBuilder = Arc::new(|spec: ShardSpec| {
        if spec.index == 0 {
            panic!("injected: shard 0 always dies");
        }
        CampaignBuilder::from_factory(rocket_factory())
            .batch_size(BATCH)
            .generator(RandomRegression::new(spec.seed, 16))
    });
    let space = rocket_factory()().space().clone();
    let ckpt_dir = artefact_root().join("fleet-quarantine");
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    let trace_path = artefact_root().join("fleet-quarantine.trace.jsonl");
    let _ = std::fs::remove_file(&trace_path);
    let sink = TelemetrySink::enabled();
    sink.trace_to(&trace_path).expect("fleet trace file");
    let mut orchestrator = Orchestrator::new(LocalPoolTransport::new(2, &ckpt_dir));
    let campaign = orchestrator.register(FleetConfig {
        fan_out,
        lease_tests,
        total_tests: (fan_out - 1) * lease_tests,
        heartbeat_deadline: Duration::from_secs(3600),
        telemetry: sink.clone(),
        ..FleetConfig::new("rocket", SEED, space, template.clone())
    });
    orchestrator.run_to_completion().expect("survivors carry the generation");

    let merged = orchestrator.final_snapshot(campaign).expect("merged despite quarantine").clone();
    assert_eq!(
        merged.tests_run(),
        (fan_out - 1) * lease_tests,
        "both surviving shards' budgets merged"
    );
    // Merged coverage is a superset of the surviving shards' union:
    // re-run each survivor's lease deterministically and require the
    // merge to dominate every one of them.
    for index in 1..fan_out {
        let seed = chatfuzz::shard::shard_seed(SEED, index);
        let mut survivor = (template)(ShardSpec { index, shards: fan_out, seed }).build();
        survivor.run_until(&[StopCondition::Tests(lease_tests)]);
        assert!(
            merged.coverage_pct() >= survivor.snapshot().coverage_pct(),
            "shard {index}: merged coverage must dominate the survivor"
        );
    }
    let status = orchestrator.status();
    assert_eq!(status.campaigns[0].quarantined_leases, 1);
    assert!(status.campaigns[0].done);
    // The quarantine carries its *reason* into the status endpoint, even
    // after generation completion clears the live lease list…
    let (lease, reason) =
        status.campaigns[0].quarantine_reasons.first().expect("quarantine records why");
    assert_eq!(lease.index, 0, "shard 0 is the one the fault plan kills");
    assert!(
        reason.contains("injected: shard 0 always dies"),
        "the panic message must survive into the campaign status, got: {reason}"
    );
    // …and onto the exported timeline, alongside the lease bookkeeping.
    sink.flush_trace().expect("flush fleet trace");
    let trace = std::fs::read_to_string(&trace_path).expect("fleet trace exists");
    assert!(
        trace.lines().any(|l| l.contains("\"kind\":\"lease_quarantined\"")),
        "quarantine must appear on the fleet timeline"
    );
    assert!(trace.lines().any(|l| l.contains("\"kind\":\"generation_merge\"")));
    assert_eq!(sink.counter_value(chatfuzz_telemetry::names::FLEET_LEASES_QUARANTINED), 1);
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    let _ = std::fs::remove_file(&trace_path);
}
