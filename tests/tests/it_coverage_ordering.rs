//! Integration: the coverage-quality ordering between input sources holds
//! on a fixed budget (the structural claim behind paper Fig. 2), and the
//! BOOM-vs-Rocket saturation gap is present.

use chatfuzz::campaign::{CampaignBuilder, StopCondition};
use chatfuzz::harness::{wrap, HarnessConfig};
use chatfuzz_baselines::{Feedback, InputGenerator, MutatorConfig, RandomRegression, TheHuzz};
use chatfuzz_corpus::{CorpusConfig, CorpusGenerator};
use chatfuzz_isa::encode_program;
use chatfuzz_rtl::{Dut, Rocket, RocketConfig};
use chatfuzz_tests::{boom_factory, rocket_factory};
use std::sync::Arc;

struct CorpusReplay(CorpusGenerator);

impl InputGenerator for CorpusReplay {
    fn name(&self) -> &str {
        "corpus-replay"
    }
    fn next_batch(&mut self, n: usize) -> Vec<Vec<u8>> {
        self.0.generate(n).into_iter().map(|f| encode_program(&f).unwrap()).collect()
    }
    fn observe(&mut self, _b: &[Vec<u8>], _f: &[Feedback]) {}
}

fn run_quiet(
    factory: &chatfuzz::campaign::DutFactory,
    generator: impl chatfuzz_baselines::InputGenerator + 'static,
    tests: usize,
) -> chatfuzz::campaign::CampaignReport {
    CampaignBuilder::from_factory(Arc::clone(factory))
        .batch_size(32)
        .workers(4)
        .detect_mismatches(false)
        .generator(generator)
        .build()
        .run_until(&[StopCondition::Tests(tests)])
}

/// Entangled corpus inputs > coverage-guided mutation > pure random, on
/// the same Rocket budget.
#[test]
fn input_quality_ordering_on_rocket() {
    let factory = rocket_factory();
    let corpus = CorpusReplay(CorpusGenerator::new(CorpusConfig { seed: 5, ..Default::default() }));
    let corpus_pct = run_quiet(&factory, corpus, 320).final_coverage_pct;
    let thehuzz_pct =
        run_quiet(&factory, TheHuzz::new(MutatorConfig::default()), 320).final_coverage_pct;
    let random_pct = run_quiet(&factory, RandomRegression::new(5, 24), 320).final_coverage_pct;

    assert!(
        corpus_pct > thehuzz_pct,
        "entangled inputs must beat mutation: {corpus_pct:.1} vs {thehuzz_pct:.1}"
    );
    assert!(
        thehuzz_pct > random_pct,
        "coverage guidance must beat random: {thehuzz_pct:.1} vs {random_pct:.1}"
    );
}

/// The same entangled inputs saturate BOOM far higher than Rocket — the
/// paper's 97 % vs 79 % structural gap.
#[test]
fn boom_saturates_higher_than_rocket() {
    let corpus_a =
        CorpusReplay(CorpusGenerator::new(CorpusConfig { seed: 6, ..Default::default() }));
    let corpus_b =
        CorpusReplay(CorpusGenerator::new(CorpusConfig { seed: 6, ..Default::default() }));
    let boom = run_quiet(&boom_factory(), corpus_a, 320);
    let rocket = run_quiet(&rocket_factory(), corpus_b, 320);
    assert!(
        boom.final_coverage_pct > rocket.final_coverage_pct + 5.0,
        "BOOM {:.1}% should clear Rocket {:.1}% by a margin",
        boom.final_coverage_pct,
        rocket.final_coverage_pct
    );
    assert_eq!(boom.raw_mismatches, 0, "BOOM has no injected bugs");
}

/// The harness keeps hostile inputs contained: a campaign of pure garbage
/// still terminates with bounded traces and nonzero coverage.
#[test]
fn garbage_inputs_are_contained() {
    let mut rocket = Rocket::new(RocketConfig::default());
    for seed in 0..8u8 {
        let body: Vec<u8> =
            (0..256).map(|i| (i as u8).wrapping_mul(37).wrapping_add(seed)).collect();
        let image = wrap(&body, HarnessConfig::default());
        let run = rocket.run(&image);
        assert!(run.trace.len() <= 4096);
        assert!(run.coverage.covered_bins() > 0);
    }
}
