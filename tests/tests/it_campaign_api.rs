//! Integration: the campaign session API — determinism across worker
//! counts and entry points, budget stops, and multi-generator scheduling
//! beating (or matching) the best single generator.

use chatfuzz::campaign::{CampaignBuilder, CampaignConfig, StopCondition};
use chatfuzz::generator::{LmGenerator, LmGeneratorConfig};
use chatfuzz_baselines::{EpsilonGreedy, MutatorConfig, RandomRegression, TheHuzz};
use chatfuzz_corpus::{CorpusConfig, CorpusGenerator};
use chatfuzz_lm::{Gpt, GptConfig, Tokenizer};
use chatfuzz_rl::PpoConfig;
use chatfuzz_tests::rocket_factory;
use rand::SeedableRng;
use std::sync::Arc;

const TESTS: usize = 96;

fn session_report(workers: usize) -> chatfuzz::campaign::CampaignReport {
    let mut campaign = CampaignBuilder::from_factory(rocket_factory())
        .batch_size(32)
        .workers(workers)
        .generator(TheHuzz::new(MutatorConfig { seed: 123, ..Default::default() }))
        .build();
    campaign.run_until(&[StopCondition::Tests(TESTS)])
}

/// `run_until` with 1 worker == 8 workers == a builder fed a whole
/// [`CampaignConfig`] block, bit-for-bit on every campaign-level number.
#[test]
fn session_is_deterministic_across_workers_and_entry_points() {
    let one = session_report(1);
    let eight = session_report(8);

    let cfg = CampaignConfig { batch_size: 32, workers: 4, ..Default::default() };
    let config_block = CampaignBuilder::from_factory(rocket_factory())
        .config(cfg)
        .generator(TheHuzz::new(MutatorConfig { seed: 123, ..Default::default() }))
        .build()
        .run_until(&[StopCondition::Tests(TESTS)]);

    for report in [&eight, &config_block] {
        assert_eq!(one.tests_run, report.tests_run);
        assert_eq!(one.final_coverage_pct, report.final_coverage_pct);
        assert_eq!(one.total_cycles, report.total_cycles);
        assert_eq!(one.raw_mismatches, report.raw_mismatches);
        assert_eq!(one.bugs, report.bugs);
        assert_eq!(
            one.history.iter().map(|p| (p.tests, p.covered_bins)).collect::<Vec<_>>(),
            report.history.iter().map(|p| (p.tests, p.covered_bins)).collect::<Vec<_>>(),
        );
    }
}

/// A small untrained LM generator (tiny GPT over corpus prompts) — the
/// third arm of the scheduler shoot-out. Online training off keeps it
/// cheap and deterministic.
fn tiny_lm_generator(seed: u64, total_bins: usize) -> LmGenerator {
    let mut corpus = CorpusGenerator::new(CorpusConfig { seed, ..Default::default() });
    let programs = corpus.generate_words(16);
    let tokenizer = Tokenizer::train(&programs, 128);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let policy = Gpt::new(GptConfig::tiny(tokenizer.vocab_size() as usize), &mut rng);
    let ppo = PpoConfig { max_new_tokens: 24, ..Default::default() };
    let cfg = LmGeneratorConfig {
        seed,
        total_bins,
        samples_per_input: 2,
        online_training: false,
        ..Default::default()
    };
    LmGenerator::new(tokenizer, policy, ppo, programs, cfg)
}

/// The epsilon-greedy bandit over {TheHuzz, random regression, LM
/// generator} reaches at least the coverage of the best single generator
/// on the same Rocket smoke budget — the MABFuzz claim in miniature.
#[test]
fn epsilon_greedy_matches_or_beats_best_single_generator() {
    let factory = rocket_factory();
    let total_bins = factory().space().total_bins();
    let budget = 384usize;

    let run_single = |name: &str| {
        let builder = CampaignBuilder::from_factory(Arc::clone(&factory))
            .batch_size(16)
            .workers(4)
            .detect_mismatches(false);
        let builder = match name {
            "thehuzz" => builder.generator(TheHuzz::new(MutatorConfig::default())),
            "random" => builder.generator(RandomRegression::new(5, 24)),
            "lm" => builder.generator(tiny_lm_generator(9, total_bins)),
            _ => unreachable!(),
        };
        builder.build().run_until(&[StopCondition::Tests(budget)]).final_coverage_pct
    };
    let singles = [run_single("thehuzz"), run_single("random"), run_single("lm")];
    let best_single = singles.iter().copied().fold(f64::MIN, f64::max);

    let mut scheduled = CampaignBuilder::from_factory(Arc::clone(&factory))
        .batch_size(16)
        .workers(4)
        .detect_mismatches(false)
        .generator(TheHuzz::new(MutatorConfig::default()))
        .generator(RandomRegression::new(5, 24))
        .generator(tiny_lm_generator(9, total_bins))
        .scheduler(EpsilonGreedy::new(1, 0.3).with_decay(0.85, 0.05))
        .build();
    let report = scheduled.run_until(&[StopCondition::Tests(budget)]);

    assert_eq!(report.tests_run, budget);
    assert_eq!(report.generator_stats.len(), 3);
    assert!(
        report.generator_stats.iter().all(|s| s.batches > 0),
        "every arm explored: {:?}",
        report.generator_stats
    );
    assert!(
        report.final_coverage_pct >= best_single,
        "scheduled {:.2}% must match or beat best single {:.2}% (singles: {singles:?})",
        report.final_coverage_pct,
        best_single
    );
}
