//! Integration: every injected RocketCore defect is rediscoverable by the
//! differential fuzzing loop — the end-to-end claim of paper §V-B.

use chatfuzz::harness::{wrap, HarnessConfig};
use chatfuzz::mismatch::{classify, diff_traces, KnownBug};
use chatfuzz_baselines::{MutatorConfig, TheHuzz};
use chatfuzz_corpus::{CorpusConfig, CorpusGenerator};
use chatfuzz_isa::encode_program;
use chatfuzz_rtl::{Dut, Rocket, RocketConfig};
use chatfuzz_softcore::{SoftCore, SoftCoreConfig};
use chatfuzz_tests::{rocket_factory, run_budget};

/// Replaying the corpus against the buggy Rocket rediscovers BUG1, BUG2
/// and the tracer findings (the corpus contains SMC, mul/div, AMO-x0 and
/// misaligned/faulting idioms by construction).
#[test]
fn corpus_replay_rediscovers_injected_defects() {
    let mut corpus = CorpusGenerator::new(CorpusConfig { seed: 11, ..Default::default() });
    let mut rocket = Rocket::new(RocketConfig::default());
    let golden = SoftCore::new(SoftCoreConfig::default());
    let mut found = std::collections::BTreeSet::new();
    for body in corpus.generate(400) {
        let image = wrap(&encode_program(&body).unwrap(), HarnessConfig::default());
        let g = golden.run(&image);
        let d = rocket.run(&image);
        for m in diff_traces(&g, &d.trace) {
            if let Some(bug) = classify(&m) {
                found.insert(bug);
            }
        }
        if found.len() == 5 {
            break;
        }
    }
    for expected in [
        KnownBug::Bug1IcacheCoherency,
        KnownBug::Bug2TracerMulDiv,
        KnownBug::Finding1ExceptionPriority,
        KnownBug::Finding2AmoX0,
        KnownBug::Finding3X0Bypass,
    ] {
        assert!(found.contains(&expected), "corpus replay must expose {expected}; found {found:?}");
    }
}

/// A TheHuzz campaign also finds several defects (slower per the paper,
/// but the wide mutation surface hits the tracer bugs quickly).
#[test]
fn thehuzz_campaign_finds_tracer_bugs() {
    let report = run_budget(&rocket_factory(), TheHuzz::new(MutatorConfig::default()), 256, 32, 4);
    assert!(report.raw_mismatches > 0);
    assert!(
        report.bugs.contains(&KnownBug::Bug2TracerMulDiv),
        "mul/div tracer bug should fall quickly: {:?}",
        report.bugs
    );
}

/// With all bug injections disabled there are no mismatches at all, on
/// the same inputs that exposed all five defects above.
#[test]
fn fixed_rocket_is_clean_on_the_same_inputs() {
    use chatfuzz_rtl::BugConfig;
    let mut corpus = CorpusGenerator::new(CorpusConfig { seed: 11, ..Default::default() });
    let mut rocket = Rocket::new(RocketConfig { bugs: BugConfig::all_off(), ..Default::default() });
    let golden = SoftCore::new(SoftCoreConfig::default());
    for body in corpus.generate(120) {
        let image = wrap(&encode_program(&body).unwrap(), HarnessConfig::default());
        let g = golden.run(&image);
        let d = rocket.run(&image);
        let mismatches = diff_traces(&g, &d.trace);
        assert!(mismatches.is_empty(), "clean core must not diverge: {mismatches:?}");
    }
}
