//! Baseline shootout: random regression vs DifuzzRTL-lite vs TheHuzz on
//! the same RocketCore budget (no LM — fast).
//!
//! ```sh
//! cargo run -p chatfuzz-examples --release --example baseline_shootout
//! ```

use chatfuzz::campaign::{CampaignBuilder, StopCondition};
use chatfuzz_baselines::{DifuzzLite, InputGenerator, MutatorConfig, RandomRegression, TheHuzz};
use chatfuzz_examples::banner;
use chatfuzz_rtl::{Dut, Rocket, RocketConfig};

fn main() {
    banner("Coverage race on RocketCore (600 tests each)");
    let mut results: Vec<(String, f64, u64)> = Vec::new();
    let generators: Vec<Box<dyn InputGenerator>> = vec![
        Box::new(RandomRegression::new(7, 24)),
        Box::new(DifuzzLite::new(MutatorConfig::default())),
        Box::new(TheHuzz::new(MutatorConfig::default())),
    ];
    for generator in generators {
        let mut campaign =
            CampaignBuilder::new(|| Box::new(Rocket::new(RocketConfig::default())) as Box<dyn Dut>)
                .batch_size(32)
                .workers(8)
                .detect_mismatches(false) // pure coverage race
                .generator_boxed(generator)
                .build();
        let report = campaign.run_until(&[StopCondition::Tests(600)]);
        println!(
            "  {:<12} {:>6.2}%  ({} sim-cycles)",
            report.generator, report.final_coverage_pct, report.total_cycles
        );
        results.push((report.generator, report.final_coverage_pct, report.total_cycles));
    }

    banner("Ranking");
    results.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    for (i, (name, pct, _)) in results.iter().enumerate() {
        println!("  {}. {:<12} {pct:.2}%", i + 1, name);
    }
    println!("\nThe coverage-guided mutational fuzzers beat random regression;");
    println!("the paper's ChatFuzz beats all three (see `train_pipeline`).");
}
