//! Quickstart: assemble a RISC-V program, run it on the golden model and
//! the RocketCore model, compare the traces, and look at coverage.
//!
//! ```sh
//! cargo run -p chatfuzz-examples --release --example quickstart
//! ```

use chatfuzz::harness::{wrap, HarnessConfig};
use chatfuzz::mismatch::diff_traces;
use chatfuzz_examples::banner;
use chatfuzz_isa::asm::Assembler;
use chatfuzz_isa::{AluOp, BranchCond, Instr, MulDivOp, Reg, SystemOp};
use chatfuzz_rtl::{Dut, Rocket, RocketConfig};
use chatfuzz_softcore::{SoftCore, SoftCoreConfig};

fn main() {
    banner("1. Assemble a small program");
    // sum = 5 + 4 + … + 1; product = sum * 3; then stop.
    let a0 = Reg::new(10).unwrap();
    let a1 = Reg::new(11).unwrap();
    let t0 = Reg::new(5).unwrap();
    let mut asm = Assembler::new();
    asm.li(t0, 5);
    asm.label("loop");
    asm.push(Instr::Op { op: AluOp::Add, rd: a0, rs1: a0, rs2: t0, word: false });
    asm.push(Instr::OpImm { op: AluOp::Add, rd: t0, rs1: t0, imm: -1, word: false });
    asm.branch_to(BranchCond::Ne, t0, Reg::X0, "loop");
    asm.li(a1, 3);
    asm.push(Instr::MulDiv { op: MulDivOp::Mul, rd: a0, rs1: a0, rs2: a1, word: false });
    asm.push(Instr::System(SystemOp::Wfi));
    let body = asm.assemble_bytes().expect("assembles");
    for line in chatfuzz_isa::disasm::disassemble(&body) {
        println!("  {line}");
    }

    banner("2. Wrap it in the fuzzing harness (trap handler + stack)");
    let image = wrap(&body, HarnessConfig::default());
    println!("  harness+body image: {} bytes", image.len());

    banner("3. Run on the golden model (Spike substitute)");
    let golden = SoftCore::new(SoftCoreConfig::default()).run(&image);
    println!("  exit: {}  ({} committed slots)", golden.exit, golden.len());
    let result = golden
        .records
        .iter()
        .rev()
        .find_map(|r| r.rd_write.filter(|(rd, _)| *rd == a0))
        .map(|(_, v)| v);
    println!("  a0 = {result:?} (expect Some(45): (5+4+3+2+1)*3)");

    banner("4. Run on the RocketCore model (bugs injected)");
    let mut rocket = Rocket::new(RocketConfig::default());
    let run = rocket.run(&image);
    println!("  exit: {}  cycles: {}", run.trace.exit, run.cycles);
    println!(
        "  condition coverage from this single program: {:.2}% ({}/{} bins)",
        run.coverage.percent(),
        run.coverage.covered_bins(),
        run.coverage.total_bins()
    );

    banner("5. Differential trace check");
    let mismatches = diff_traces(&golden, &run.trace);
    if mismatches.is_empty() {
        println!("  traces agree — this program does not touch the injected bugs");
    } else {
        for m in &mismatches {
            println!("  MISMATCH: {m}");
        }
    }
    // The mul write-back is one of the injected tracer bugs (BUG2): the
    // multiplication above *does* expose it.
    assert!(
        mismatches.iter().any(|m| chatfuzz::mismatch::classify(m).is_some()),
        "the mul in this program should expose BUG2 in the trace"
    );
    println!("\nDone. See `bug_hunt` for the full differential fuzzing loop.");
}
