//! The full ChatFuzz three-step training pipeline (paper Fig. 1b), then a
//! short fuzzing campaign with the trained generator.
//!
//! ```sh
//! cargo run -p chatfuzz-examples --release --example train_pipeline
//! ```

use chatfuzz::campaign::{CampaignBuilder, DutFactory, StopCondition};
use chatfuzz::generator::{LmGenerator, LmGeneratorConfig};
use chatfuzz::pipeline::{train_chatfuzz, PipelineConfig};
use chatfuzz_examples::banner;
use chatfuzz_rl::PpoConfig;
use chatfuzz_rtl::{Dut, Rocket, RocketConfig};

fn main() {
    banner("Step 0-3: corpus -> tokenizer -> LM -> cleanup RL -> coverage RL");
    let factory: DutFactory =
        std::sync::Arc::new(|| Box::new(Rocket::new(RocketConfig::default())) as Box<dyn Dut>);
    let cfg = PipelineConfig::quick(42);
    let (model, report) = train_chatfuzz(&cfg, &factory);

    println!("\nUnsupervised LM training (step 1):");
    let first = report.lm_curve.first().unwrap();
    let last = report.lm_curve.last().unwrap();
    println!(
        "  cross-entropy {:.3} -> {:.3} over {} steps",
        first.loss,
        last.loss,
        report.lm_curve.len()
    );

    println!("\nCleanup RL with the disassembler reward, Eq. (1) (step 2):");
    for p in &report.cleanup_curve {
        println!(
            "  iter {:>2}: mean reward {:>7.3}   valid instructions {:>5.1}%",
            p.iter,
            p.mean_reward,
            p.valid_fraction * 100.0
        );
    }

    println!("\nCoverage RL against the RocketCore model (step 3):");
    for p in &report.optimize_curve {
        println!(
            "  iter {:>2}: mean reward {:>7.3}   cumulative coverage {:>6.2}%",
            p.iter, p.mean_reward, p.coverage_pct
        );
    }

    banner("Fuzzing with the trained generator (online PPO enabled)");
    let total_bins = factory().space().total_bins();
    let ppo = PpoConfig {
        max_new_tokens: 56,
        lr: 3e-4,
        temperature: 0.9,
        top_k: 24,
        ..Default::default()
    };
    let gcfg = LmGeneratorConfig { seed: 42, total_bins, ..Default::default() };
    let mut generator =
        LmGenerator::new(model.tokenizer, model.policy, ppo, model.prompt_pool, gcfg);
    let mut campaign = CampaignBuilder::from_factory(factory)
        .batch_size(32)
        .workers(8)
        .generator(&mut generator)
        .build();
    let result = campaign.run_until(&[StopCondition::Tests(320)]);
    for p in &result.history {
        println!("  {:>4} tests  {:>6.2}%", p.tests, p.coverage_pct);
    }
    println!(
        "\nfinal coverage {:.2}%, {} raw mismatches, {} defects classified",
        result.final_coverage_pct,
        result.raw_mismatches,
        result.bugs.len()
    );
}
