//! Bug hunt: fuzz the buggy RocketCore with the TheHuzz baseline and watch
//! the Mismatch Detector rediscover the injected paper findings — with
//! live per-batch progress from a campaign observer, and a coverage
//! plateau as the stop condition.
//!
//! ```sh
//! cargo run -p chatfuzz-examples --release --example bug_hunt
//! ```

use chatfuzz::campaign::{BatchOutcome, CampaignBuilder, StopCondition};
use chatfuzz_baselines::{MutatorConfig, TheHuzz};
use chatfuzz_examples::banner;
use chatfuzz_rtl::{Dut, Rocket, RocketConfig};

fn main() {
    banner("Differential fuzzing campaign: TheHuzz vs buggy RocketCore");
    let mut campaign =
        CampaignBuilder::new(|| Box::new(Rocket::new(RocketConfig::default())) as Box<dyn Dut>)
            .batch_size(32)
            .workers(8)
            .generator(TheHuzz::new(MutatorConfig::default()))
            .observer(|outcome: &BatchOutcome| {
                println!(
                    "  batch {:>3}: {:>5} tests  {:>6.2}%  (+{} bins, {} mismatches)",
                    outcome.batch_index,
                    outcome.tests_total,
                    outcome.coverage_pct,
                    outcome.new_bins,
                    outcome.total_mismatches
                );
            })
            .build();
    // Stop at 800 tests — or earlier if coverage stalls for 8 batches.
    let report = campaign.run_until(&[StopCondition::Tests(800), StopCondition::Plateau(8)]);
    if let Some(stop) = &report.stopped_by {
        println!("  stopped by {stop:?}");
    }

    banner("Mismatch report");
    println!(
        "  raw mismatches: {}   unique clusters: {}",
        report.raw_mismatches,
        report.unique_mismatches.len()
    );
    for u in &report.unique_mismatches {
        let tag = u.bug.map(|b| format!("  <= {b}")).unwrap_or_default();
        println!("  [{:>5}x] {}{}", u.count, u.signature, tag);
    }

    banner("Known defects rediscovered");
    for bug in &report.bugs {
        println!("  FOUND: {bug}");
    }
    println!("\n{}/5 injected defects found with {} tests.", report.bugs.len(), report.tests_run);
    println!("The ChatFuzz generator finds the deep ones faster — see `train_pipeline`.");
}
