//! Bug hunt: fuzz the buggy RocketCore with the TheHuzz baseline and watch
//! the Mismatch Detector rediscover the injected paper findings.
//!
//! ```sh
//! cargo run -p chatfuzz-examples --release --example bug_hunt
//! ```

use chatfuzz::fuzz::{run_campaign, CampaignConfig};
use chatfuzz_baselines::{MutatorConfig, TheHuzz};
use chatfuzz_examples::banner;
use chatfuzz_rtl::{Dut, Rocket, RocketConfig};

fn main() {
    banner("Differential fuzzing campaign: TheHuzz vs buggy RocketCore");
    let mut generator = TheHuzz::new(MutatorConfig::default());
    let factory = || Box::new(Rocket::new(RocketConfig::default())) as Box<dyn Dut>;
    let cfg = CampaignConfig {
        total_tests: 800,
        batch_size: 32,
        workers: 8,
        history_every: 100,
        ..Default::default()
    };
    let report = run_campaign(&mut generator, &factory, &cfg);

    banner("Coverage over time");
    for p in &report.history {
        println!(
            "  {:>5} tests  {:>6.2}%  ({} sim-cycles)",
            p.tests, p.coverage_pct, p.sim_cycles
        );
    }

    banner("Mismatch report");
    println!(
        "  raw mismatches: {}   unique clusters: {}",
        report.raw_mismatches,
        report.unique_mismatches.len()
    );
    for u in &report.unique_mismatches {
        let tag = u.bug.map(|b| format!("  <= {b}")).unwrap_or_default();
        println!("  [{:>5}x] {}{}", u.count, u.signature, tag);
    }

    banner("Known defects rediscovered");
    for bug in &report.bugs {
        println!("  FOUND: {bug}");
    }
    println!(
        "\n{}/5 injected defects found with {} tests.",
        report.bugs.len(),
        report.tests_run
    );
    println!("The ChatFuzz generator finds the deep ones faster — see `train_pipeline`.");
}
