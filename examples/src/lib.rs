//! Shared helpers for the ChatFuzz examples (run with
//! `cargo run -p chatfuzz-examples --release --example <name>`).

/// Prints a section banner.
pub fn banner(title: &str) {
    println!("\n==== {title} ====");
}
