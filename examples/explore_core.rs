//! Explore the RocketCore model: elaborate the coverage space, run one
//! targeted program per injected bug, and show exactly how each defect
//! manifests in the differential trace.
//!
//! ```sh
//! cargo run -p chatfuzz-examples --release --example explore_core
//! ```

use chatfuzz::harness::{wrap, HarnessConfig};
use chatfuzz::mismatch::{classify, diff_traces};
use chatfuzz_examples::banner;
use chatfuzz_isa::asm::Assembler;
use chatfuzz_isa::{AluOp, AmoOp, Instr, MemWidth, MulDivOp, Reg, SystemOp};
use chatfuzz_rtl::{Dut, Rocket, RocketConfig};
use chatfuzz_softcore::{SoftCore, SoftCoreConfig};

fn show(name: &str, body: Vec<u8>, rocket: &mut Rocket) {
    banner(name);
    let image = wrap(&body, HarnessConfig::default());
    let golden = SoftCore::new(SoftCoreConfig::default()).run(&image);
    let run = rocket.run(&image);
    let mismatches = diff_traces(&golden, &run.trace);
    if mismatches.is_empty() {
        println!("  (no divergence)");
    }
    for m in &mismatches {
        match classify(m) {
            Some(bug) => println!("  {m}\n    => {bug}"),
            None => println!("  {m}"),
        }
    }
}

fn main() {
    let mut rocket = Rocket::new(RocketConfig::default());
    banner("Design elaboration");
    println!(
        "  {} — {} conditions, {} coverage bins",
        rocket.space().design(),
        rocket.space().len(),
        rocket.space().total_bins()
    );

    let a0 = Reg::new(10).unwrap();
    let a1 = Reg::new(11).unwrap();
    let t0 = Reg::new(5).unwrap();
    let t1 = Reg::new(6).unwrap();

    // BUG1: self-modifying code without fence.i.
    let mut asm = Assembler::new();
    asm.push(Instr::Auipc { rd: t0, imm: 0 });
    let patch = chatfuzz_isa::encode(&Instr::OpImm {
        op: AluOp::Add,
        rd: a0,
        rs1: a0,
        imm: 64,
        word: false,
    })
    .unwrap();
    asm.li(t1, i64::from(patch as i32));
    asm.push(Instr::Store { width: MemWidth::W, rs2: t1, rs1: t0, offset: 16 });
    asm.push(Instr::OpImm { op: AluOp::Add, rd: a0, rs1: a0, imm: 1, word: false });
    asm.push(Instr::System(SystemOp::Wfi));
    show("BUG1 — stale instruction fetch (no fence.i)", asm.assemble_bytes().unwrap(), &mut rocket);

    // BUG2: mul write-back missing from the trace.
    let mut asm = Assembler::new();
    asm.li(a0, 6);
    asm.li(a1, 7);
    asm.push(Instr::MulDiv { op: MulDivOp::Mul, rd: a0, rs1: a0, rs2: a1, word: false });
    asm.push(Instr::System(SystemOp::Wfi));
    show("BUG2 — tracer drops mul/div write-back", asm.assemble_bytes().unwrap(), &mut rocket);

    // Finding 1: misaligned + out-of-PMA access.
    let mut asm = Assembler::new();
    asm.li(t0, 0x3);
    asm.push(Instr::Load { width: MemWidth::W, signed: true, rd: a0, rs1: t0, offset: 0 });
    asm.push(Instr::System(SystemOp::Wfi));
    show("Finding 1 — exception priority inversion", asm.assemble_bytes().unwrap(), &mut rocket);

    // Finding 2: AMO with rd = x0.
    let mut asm = Assembler::new();
    asm.li(t0, 0x8008_0000);
    asm.push(Instr::Amo {
        op: AmoOp::Or,
        width: MemWidth::D,
        rd: Reg::X0,
        rs1: t0,
        rs2: a0,
        aq: false,
        rl: false,
    });
    asm.push(Instr::System(SystemOp::Wfi));
    show("Finding 2 — AMO rd=x0 traced as written", asm.assemble_bytes().unwrap(), &mut rocket);

    // Finding 3: dependent ALU pair into x0.
    let mut asm = Assembler::new();
    asm.push(Instr::OpImm { op: AluOp::Add, rd: a1, rs1: a1, imm: 5, word: false });
    asm.push(Instr::Op { op: AluOp::Add, rd: Reg::X0, rs1: a1, rs2: a1, word: false });
    asm.push(Instr::System(SystemOp::Wfi));
    show("Finding 3 — x0 bypass write traced", asm.assemble_bytes().unwrap(), &mut rocket);

    banner("Done");
    println!("  All five injected defects demonstrated with 5 directed programs.");
}
