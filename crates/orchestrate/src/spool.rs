//! Filesystem-spool transport: the machine-crossing stand-in.
//!
//! Orchestrator and workers share nothing but a directory. The protocol
//! is files, every one written with the same atomic temp+rename dance the
//! `persist` module uses, so a reader never sees a half-written file:
//!
//! ```text
//! spool/
//!   inbox/<lease>.json     work orders, one flat-JSON file each
//!   claimed/<lease>.json   a worker claims an order by renaming it here;
//!                          losing the rename race means another worker won
//!   hb/<lease>.json        heartbeats: {seq, tests, pid}, rewritten per batch
//!   ckpt/<lease>.ckpt.json attempt-scoped auto-checkpoints (persist format)
//!   resume/<lease>.json    pooled snapshots a lease continues from
//!   outbox/<lease>.json    final shard snapshots (persist format)
//!   stop                   shutdown marker: workers drain and exit
//! ```
//!
//! `<lease>` is the attempt-scoped stem `c{campaign}-g{gen}-l{index}-a{attempt}`,
//! so a revoked attempt's late artefacts can never collide with its
//! reissue. The shard half of a work order rides the same four
//! `CHATFUZZ_SHARD_*` keys the subprocess sharding protocol uses,
//! encoded and decoded by [`chatfuzz::shard::proto::Assignment`].

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

use chatfuzz::campaign::{BatchOutcome, StopCondition};
use chatfuzz::faults::FaultPlan;
use chatfuzz::persist::Recovery;
use chatfuzz::shard::proto::Assignment;
use chatfuzz_coverage::Space;

use crate::lease::{artefact_stem, LeaseBuilder, LeaseId, WorkOrder};
use crate::orchestrator::OrchestrateError;
use crate::transport::{Transport, TransportEvent, WorkerStatus};

/// Environment variable carrying the spool root to worker processes.
pub const ENV_SPOOL_DIR: &str = "CHATFUZZ_SPOOL_DIR";

const INBOX: &str = "inbox";
const CLAIMED: &str = "claimed";
const HEARTBEATS: &str = "hb";
const CHECKPOINTS: &str = "ckpt";
const RESUMES: &str = "resume";
const OUTBOX: &str = "outbox";
const TRACES: &str = "trace";
const STOP_MARKER: &str = "stop";

/// Worker-side protocol writes: routed through the env-driven global
/// fault plan, so a worker process under test crashes and tears exactly
/// where its [`chatfuzz::faults::ENV_VAR`] schedule says.
fn atomic_write(path: &Path, contents: &str) -> io::Result<()> {
    atomic_write_with(chatfuzz::faults::active(), path, contents)
}

/// The spool's one write choke point: every protocol file lands through
/// the same faultable temp+rename dance persist uses. `plan` is an
/// explicit orchestrator-side plan (kept off the process-global slot so
/// parallel in-process tests don't fault each other).
fn atomic_write_with(plan: Option<&FaultPlan>, path: &Path, contents: &str) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    chatfuzz::faults::atomic_write_with(plan, path, &tmp, contents.as_bytes())
}

// ---------------------------------------------------------------------------
// Flat JSON: string-to-string maps, the only shape the spool protocol needs.
// ---------------------------------------------------------------------------

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Renders key/value pairs as a one-line JSON object.
fn encode_flat<'a>(pairs: impl IntoIterator<Item = (&'a str, &'a str)>) -> String {
    let mut out = String::from("{");
    for (i, (key, value)) in pairs.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_into(&mut out, key);
        out.push_str("\":\"");
        escape_into(&mut out, value);
        out.push('"');
    }
    out.push('}');
    out
}

fn read_string(chars: &mut std::iter::Peekable<std::str::Chars>) -> Option<String> {
    let mut out = String::new();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                '/' => out.push('/'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'b' => out.push('\u{8}'),
                'f' => out.push('\u{c}'),
                'u' => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        code = code * 16 + chars.next()?.to_digit(16)?;
                    }
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
}

/// Parses a one-line JSON object of string values. `None` on any malformation.
fn decode_flat(text: &str) -> Option<BTreeMap<String, String>> {
    let mut chars = text.chars().peekable();
    let mut map = BTreeMap::new();
    while chars.peek()?.is_whitespace() {
        chars.next();
    }
    if chars.next()? != '{' {
        return None;
    }
    loop {
        while chars.peek()?.is_whitespace() {
            chars.next();
        }
        match chars.next()? {
            '}' => return Some(map),
            '"' => {
                let key = read_string(&mut chars)?;
                while chars.peek()?.is_whitespace() {
                    chars.next();
                }
                if chars.next()? != ':' {
                    return None;
                }
                while chars.peek()?.is_whitespace() {
                    chars.next();
                }
                if chars.next()? != '"' {
                    return None;
                }
                let value = read_string(&mut chars)?;
                map.insert(key, value);
                while chars.peek()?.is_whitespace() {
                    chars.next();
                }
                match chars.next()? {
                    ',' => continue,
                    '}' => return Some(map),
                    _ => return None,
                }
            }
            _ => return None,
        }
    }
}

// ---------------------------------------------------------------------------
// Orchestrator side.
// ---------------------------------------------------------------------------

struct Inflight {
    lease: LeaseId,
    attempt: u32,
    space: Arc<Space>,
    result: PathBuf,
    heartbeat: PathBuf,
    last_seq: u64,
}

struct SpoolChild {
    child: Child,
    alive: bool,
}

/// The orchestrator's end of the spool: writes work orders into `inbox/`,
/// watches `hb/` and `outbox/`, and (optionally) keeps a fleet of worker
/// processes running against the same directory.
pub struct SpoolTransport {
    root: PathBuf,
    program: Option<(PathBuf, Vec<String>)>,
    worker_count: usize,
    children: Vec<SpoolChild>,
    inflight: Vec<Inflight>,
    serving: BTreeMap<u64, LeaseId>,
    faults: Option<Arc<FaultPlan>>,
}

impl SpoolTransport {
    /// Creates the transport over `root`, creating the spool directories.
    pub fn new(root: impl Into<PathBuf>) -> io::Result<SpoolTransport> {
        let root = root.into();
        for dir in [INBOX, CLAIMED, HEARTBEATS, CHECKPOINTS, RESUMES, OUTBOX] {
            std::fs::create_dir_all(root.join(dir))?;
        }
        Ok(SpoolTransport {
            root,
            program: None,
            worker_count: 0,
            children: Vec::new(),
            inflight: Vec::new(),
            serving: BTreeMap::new(),
            faults: None,
        })
    }

    /// Injects an orchestrator-side fault plan: dispatch and shutdown
    /// writes go through it, heartbeat reads are subject to its drop
    /// schedule, and polled event batches to its duplication/reorder
    /// schedule. Worker processes are unaffected — they read
    /// [`chatfuzz::faults::ENV_VAR`] themselves.
    pub fn fault_plan(mut self, plan: Arc<FaultPlan>) -> SpoolTransport {
        self.faults = Some(plan);
        self
    }

    /// Spawn `workers` copies of `program args…` (with [`ENV_SPOOL_DIR`] set
    /// to the spool root) on first dispatch. Without this, the transport
    /// assumes workers are started out of band — possibly on another
    /// machine mounting the same directory.
    pub fn spawn_workers(
        mut self,
        workers: usize,
        program: impl Into<PathBuf>,
        args: impl IntoIterator<Item = String>,
    ) -> SpoolTransport {
        self.program = Some((program.into(), args.into_iter().collect()));
        self.worker_count = workers;
        self
    }

    /// The spool root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn ensure_workers(&mut self) -> Result<(), OrchestrateError> {
        let Some((program, args)) = &self.program else { return Ok(()) };
        while self.children.len() < self.worker_count {
            let child = Command::new(program)
                .args(args)
                .env(ENV_SPOOL_DIR, &self.root)
                .stdout(Stdio::null())
                .stderr(Stdio::null())
                .spawn()
                .map_err(|e| OrchestrateError::Transport {
                    lease: String::new(),
                    detail: format!("spawning spool worker `{}`: {e}", program.display()),
                })?;
            self.children.push(SpoolChild { child, alive: true });
        }
        Ok(())
    }

    fn stem_paths(&self, lease: LeaseId, attempt: u32) -> (PathBuf, PathBuf, PathBuf, PathBuf) {
        let stem = artefact_stem(lease, attempt);
        (
            self.root.join(INBOX).join(format!("{stem}.json")),
            self.root.join(HEARTBEATS).join(format!("{stem}.json")),
            self.root.join(RESUMES).join(format!("{stem}.json")),
            self.root.join(OUTBOX).join(format!("{stem}.json")),
        )
    }
}

impl Transport for SpoolTransport {
    fn dispatch(&mut self, order: WorkOrder) -> Result<(), OrchestrateError> {
        self.ensure_workers()?;
        let (inbox, heartbeat, resume_path, result) = self.stem_paths(order.lease, order.attempt);
        let fail =
            |detail: String| OrchestrateError::Transport { lease: order.lease.to_string(), detail };
        let StopCondition::Tests(stop_tests) = order.stop else {
            return Err(fail(format!("spool leases carry test budgets, not {:?}", order.stop)));
        };
        if let Some(snapshot) = &order.resume {
            chatfuzz::save_snapshot(&resume_path, snapshot)
                .map_err(|e| fail(format!("writing resume snapshot: {e}")))?;
        }
        let checkpoint =
            crate::lease::checkpoint_path(&self.root.join(CHECKPOINTS), order.lease, order.attempt);
        let assignment = Assignment::new(order.spec, &result);
        let shard_pairs = assignment.pairs();
        let lease = order.lease;
        let numbers = [
            ("lease_campaign", lease.campaign.to_string()),
            ("lease_generation", lease.generation.to_string()),
            ("lease_index", lease.index.to_string()),
            ("attempt", order.attempt.to_string()),
            ("stop_tests", stop_tests.to_string()),
            ("ckpt_every", order.checkpoint_every.to_string()),
        ];
        let mut pairs: Vec<(&str, String)> = vec![("campaign", order.campaign.clone())];
        pairs.extend(shard_pairs.iter().map(|(k, v)| (*k, v.clone())));
        pairs.extend(numbers);
        pairs.push(("ckpt_path", checkpoint.display().to_string()));
        pairs.push(("hb_path", heartbeat.display().to_string()));
        if order.resume.is_some() {
            pairs.push(("resume_path", resume_path.display().to_string()));
        }
        let doc = encode_flat(pairs.iter().map(|(k, v)| (*k, v.as_str())));
        atomic_write_with(self.faults.as_deref(), &inbox, &doc)
            .map_err(|e| fail(format!("writing lease file: {e}")))?;
        self.inflight.push(Inflight {
            lease,
            attempt: order.attempt,
            space: order.space,
            result,
            heartbeat,
            last_seq: 0,
        });
        Ok(())
    }

    fn poll(&mut self) -> Vec<TransportEvent> {
        for entry in &mut self.children {
            if entry.alive {
                entry.alive = matches!(entry.child.try_wait(), Ok(None));
            }
        }
        let mut events = Vec::new();
        let mut still_inflight = Vec::new();
        let faults = self.faults.clone();
        for mut entry in self.inflight.drain(..) {
            // A dropped heartbeat is only delayed: the file stays on disk
            // and a later poll (or the next batch's rewrite) delivers it.
            let hb_dropped = faults.as_deref().is_some_and(|plan| plan.drop_heartbeat());
            if let Some(hb) = (!hb_dropped)
                .then(|| std::fs::read_to_string(&entry.heartbeat).ok())
                .flatten()
                .and_then(|text| decode_flat(&text))
            {
                let seq = hb.get("seq").and_then(|s| s.parse::<u64>().ok()).unwrap_or(0);
                if seq > entry.last_seq {
                    entry.last_seq = seq;
                    let worker = hb.get("pid").and_then(|s| s.parse::<u64>().ok()).unwrap_or(0);
                    let tests_run =
                        hb.get("tests").and_then(|s| s.parse::<usize>().ok()).unwrap_or(0);
                    self.serving.insert(worker, entry.lease);
                    events.push(TransportEvent::Heartbeat {
                        lease: entry.lease,
                        attempt: entry.attempt,
                        tests_run,
                        worker,
                    });
                }
            }
            if entry.result.exists() {
                // Results land by atomic rename, so a visible file is a
                // complete file: any load error is a real protocol fault.
                match chatfuzz::load_snapshot(&entry.result, &entry.space) {
                    Ok(snapshot) => {
                        self.serving.retain(|_, l| *l != entry.lease);
                        events.push(TransportEvent::Completed {
                            lease: entry.lease,
                            attempt: entry.attempt,
                            snapshot: Box::new(snapshot),
                        });
                    }
                    Err(e) => events.push(TransportEvent::Failed {
                        lease: entry.lease,
                        attempt: entry.attempt,
                        detail: e.to_string(),
                    }),
                }
            } else {
                still_inflight.push(entry);
            }
        }
        self.inflight = still_inflight;
        if let Some(plan) = &self.faults {
            plan.mangle_events(&mut events);
        }
        events
    }

    fn checkpoint(&self, lease: LeaseId, attempt: u32, space: &Arc<Space>) -> Recovery {
        let path = crate::lease::checkpoint_path(&self.root.join(CHECKPOINTS), lease, attempt);
        let recovery = chatfuzz::load_latest_valid(&path, space);
        crate::transport::log_checkpoint_recovery(lease, attempt, &recovery);
        recovery
    }

    fn sweep_orphans(&mut self) -> usize {
        crate::transport::sweep_tmp_files(
            [INBOX, CLAIMED, HEARTBEATS, CHECKPOINTS, RESUMES, OUTBOX]
                .into_iter()
                .map(|dir| self.root.join(dir)),
        )
    }

    fn revoke(&mut self, lease: LeaseId, attempt: u32) {
        // Withdraw the order if no worker claimed it yet; a claimed order's
        // late result is attempt-stale and the orchestrator discards it.
        let (inbox, ..) = self.stem_paths(lease, attempt);
        let _ = std::fs::remove_file(inbox);
        self.inflight.retain(|e| !(e.lease == lease && e.attempt == attempt));
        self.serving.retain(|_, l| *l != lease);
    }

    fn workers(&self) -> Vec<WorkerStatus> {
        self.children
            .iter()
            .map(|entry| {
                let id = u64::from(entry.child.id());
                WorkerStatus { id, alive: entry.alive, lease: self.serving.get(&id).copied() }
            })
            .collect()
    }

    fn shutdown(&mut self) {
        // Retry past transient injected errors: a missing stop marker
        // would leave the worker fleet spinning forever.
        for _ in 0..4 {
            if atomic_write_with(self.faults.as_deref(), &self.root.join(STOP_MARKER), "stop")
                .is_ok()
            {
                break;
            }
        }
        for entry in &mut self.children {
            let _ = entry.child.wait();
            entry.alive = false;
        }
    }
}

impl Drop for SpoolTransport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ---------------------------------------------------------------------------
// Worker side.
// ---------------------------------------------------------------------------

/// A worker process's end of the spool: claims work orders by renaming
/// them out of `inbox/`, runs them against a registered campaign
/// template, and writes results to `outbox/`.
pub struct SpoolWorker {
    root: PathBuf,
    templates: Vec<(String, LeaseBuilder, Arc<Space>)>,
    poll_interval: Duration,
}

impl SpoolWorker {
    /// Creates a worker over an existing spool directory.
    pub fn new(root: impl Into<PathBuf>) -> SpoolWorker {
        SpoolWorker {
            root: root.into(),
            templates: Vec::new(),
            poll_interval: Duration::from_millis(5),
        }
    }

    /// Creates a worker from [`ENV_SPOOL_DIR`], the way spawned worker
    /// processes find their spool. `None` when the variable is unset —
    /// the caller is not being run as a spool worker.
    pub fn from_env() -> Option<SpoolWorker> {
        std::env::var_os(ENV_SPOOL_DIR).map(SpoolWorker::new)
    }

    /// Registers a campaign template under the name work orders refer to.
    /// A worker may serve any number of tenants.
    pub fn register(
        mut self,
        campaign: impl Into<String>,
        space: Arc<Space>,
        build: LeaseBuilder,
    ) -> SpoolWorker {
        self.templates.push((campaign.into(), build, space));
        self
    }

    /// Serves work orders until the shutdown marker appears. Returns the
    /// number of leases completed.
    pub fn serve(&self) -> usize {
        let mut served = 0;
        loop {
            if self.root.join(STOP_MARKER).exists() {
                return served;
            }
            match self.claim_next() {
                Some(order) => {
                    self.serve_order(&order);
                    served += 1;
                }
                None => std::thread::sleep(self.poll_interval),
            }
        }
    }

    /// Claims the oldest unclaimed work order, if any.
    fn claim_next(&self) -> Option<BTreeMap<String, String>> {
        let mut names: Vec<String> = std::fs::read_dir(self.root.join(INBOX))
            .ok()?
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| n.ends_with(".json"))
            .collect();
        names.sort();
        for name in names {
            let from = self.root.join(INBOX).join(&name);
            let to = self.root.join(CLAIMED).join(&name);
            // The rename is the claim: exactly one worker wins it, losers
            // move on to the next order.
            if std::fs::rename(&from, &to).is_ok() {
                if let Some(map) = std::fs::read_to_string(&to).ok().and_then(|t| decode_flat(&t)) {
                    return Some(map);
                }
            }
        }
        None
    }

    /// Runs one claimed order to completion and publishes the result.
    fn serve_order(&self, order: &BTreeMap<String, String>) {
        let assignment = Assignment::from_lookup(|key| order.get(key).cloned())
            .expect("spool lease carries a shard assignment");
        let campaign = order.get("campaign").expect("spool lease names its campaign");
        let (_, build, space) = self
            .templates
            .iter()
            .find(|(name, ..)| name == campaign)
            .unwrap_or_else(|| panic!("no template registered for campaign `{campaign}`"));
        let field = |key: &str| {
            order
                .get(key)
                .unwrap_or_else(|| panic!("spool lease missing `{key}`"))
                .parse::<u64>()
                .unwrap_or_else(|_| panic!("spool lease field `{key}` is not a number"))
        };
        let stop = StopCondition::Tests(field("stop_tests") as usize);
        let checkpoint_every = field("ckpt_every") as usize;
        let checkpoint = PathBuf::from(order.get("ckpt_path").expect("ckpt_path"));
        let heartbeat = PathBuf::from(order.get("hb_path").expect("hb_path"));
        let attempt = field("attempt");
        let resume = order.get("resume_path").map(|path| {
            chatfuzz::load_snapshot(Path::new(path), space).expect("spool resume snapshot loads")
        });
        let pid = std::process::id();
        let lease = LeaseId {
            campaign: field("lease_campaign") as usize,
            generation: field("lease_generation"),
            index: field("lease_index") as usize,
        };
        // A TelemetrySink handle cannot cross the exec boundary, so the
        // worker falls back to its process-global sink. When one is
        // installed, the lease's timeline lands in an attempt-scoped
        // trace file next to its other artefacts — same stem, so a
        // revoked attempt's late events never mix with its reissue's.
        let sink = chatfuzz_telemetry::global().clone();
        if sink.is_enabled() {
            let stem = artefact_stem(lease, attempt as u32);
            let trace = self.root.join(TRACES).join(format!("{stem}.trace.jsonl"));
            let _ = sink.trace_to(&trace);
            sink.event(
                "lease_serving",
                vec![
                    ("lease", lease.to_string().into()),
                    ("attempt", attempt.into()),
                    ("pid", u64::from(pid).into()),
                ],
            );
        }
        let mut seq: u64 = 0;
        let mut builder = (build)(assignment.spec)
            .telemetry(sink.clone())
            .auto_checkpoint(checkpoint, checkpoint_every)
            .observer(move |outcome: &BatchOutcome| {
                seq += 1;
                if chatfuzz::faults::active().is_some_and(|plan| plan.drop_heartbeat()) {
                    return; // dropped: the next batch's rewrite supersedes it
                }
                let doc = encode_flat([
                    ("seq", seq.to_string().as_str()),
                    ("tests", outcome.tests_total.to_string().as_str()),
                    ("pid", pid.to_string().as_str()),
                    ("attempt", attempt.to_string().as_str()),
                ]);
                let _ = atomic_write(&heartbeat, &doc);
            });
        if let Some(snapshot) = resume {
            builder = builder.resume(snapshot);
        }
        let mut session = builder.build();
        session.run_until(&[stop]);
        chatfuzz::save_snapshot(assignment.out_path(), &session.snapshot())
            .expect("spool result snapshot writes");
        // Drain this lease's timeline before the claim loop moves on —
        // the next order may retarget the trace to a different stem.
        let _ = sink.flush_trace();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_json_round_trips_awkward_strings() {
        let pairs = [
            ("plain", "value".to_string()),
            ("path", "/tmp/a b/c\\d".to_string()),
            ("quoted", "say \"hi\"\n\tdone".to_string()),
            ("control", "\u{1}\u{1f}".to_string()),
        ];
        let doc = encode_flat(pairs.iter().map(|(k, v)| (*k, v.as_str())));
        let map = decode_flat(&doc).expect("encoder output decodes");
        assert_eq!(map.len(), pairs.len());
        for (k, v) in &pairs {
            assert_eq!(map.get(*k), Some(v));
        }
        assert!(decode_flat("{\"unterminated\":\"...").is_none());
        assert!(decode_flat("[]").is_none());
        assert_eq!(decode_flat("{}").map(|m| m.len()), Some(0));
    }

    #[test]
    fn claims_are_exclusive_and_ordered() {
        let dir = std::env::temp_dir().join(format!("chatfuzz-spool-claim-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let transport = SpoolTransport::new(&dir).expect("spool dirs");
        let worker = SpoolWorker::new(&dir);
        assert!(worker.claim_next().is_none(), "empty inbox claims nothing");
        for stem in ["c0-g0-l1-a0", "c0-g0-l0-a0"] {
            atomic_write(
                &transport.root().join(INBOX).join(format!("{stem}.json")),
                &encode_flat([("campaign", stem)]),
            )
            .expect("seed inbox");
        }
        let first = worker.claim_next().expect("first claim");
        assert_eq!(first.get("campaign").map(String::as_str), Some("c0-g0-l0-a0"));
        let second = worker.claim_next().expect("second claim");
        assert_eq!(second.get("campaign").map(String::as_str), Some("c0-g0-l1-a0"));
        assert!(worker.claim_next().is_none(), "both orders are claimed");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn orphaned_tmp_files_are_swept_but_lineage_and_quarantine_survive() {
        let dir = std::env::temp_dir().join(format!("chatfuzz-spool-sweep-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut transport = SpoolTransport::new(&dir).expect("spool dirs");
        // Crash litter in two spool dirs: both the mid-rename shape
        // (`x.json.tmp`) and the pid-suffixed shape (`x.tmp.1234`).
        let ckpts = dir.join(CHECKPOINTS);
        std::fs::write(dir.join(INBOX).join("c0-g0-l0-a0.json.tmp"), "torn").expect("tmp");
        std::fs::write(ckpts.join("c0-g0-l0-a0.ckpt.tmp.1234"), "torn").expect("tmp");
        // Survivors: the live checkpoint, its rotated lineage, and a
        // quarantined corpse — none of which the sweep may touch.
        for keep in ["c0.ckpt.json", "c0.ckpt.json.1", "c0.ckpt.json.quarantined"] {
            std::fs::write(ckpts.join(keep), "{}").expect("survivor");
        }
        assert_eq!(transport.sweep_orphans(), 2, "exactly the two tmp orphans go");
        assert_eq!(transport.sweep_orphans(), 0, "second sweep finds nothing");
        for keep in ["c0.ckpt.json", "c0.ckpt.json.1", "c0.ckpt.json.quarantined"] {
            assert!(ckpts.join(keep).exists(), "{keep} must survive the sweep");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
