//! The orchestrator proper: a registry of tenant campaigns, each split
//! into shard leases and advanced generation by generation.
//!
//! Per generation, every lease runs `lease_tests` more tests on its own
//! worker. When all leases of a generation complete, the orchestrator
//! merges their snapshots with the sharding merge, runs the optional
//! distillation hook, and — unless a stop rule fires — **re-splits the
//! merged snapshot into a new fan-out**, so every shard of the next
//! generation continues from pooled coverage and a pooled corpus rather
//! than its own island. `lease_tests` is therefore the merge cadence:
//! `lease_tests >= total_tests` means one generation and no mid-flight
//! merge at all.
//!
//! Failure is expected, not exceptional: dispatches retry with backoff,
//! a lease that exhausts `max_attempts` (or crash-loops without
//! progress) is *quarantined* — its last-good checkpoint still merges
//! and the generation completes on the survivors — and every recovery's
//! degradation (fallback depth, checksum failures, swept temp files) is
//! surfaced through [`OrchestratorStatus`].

use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use chatfuzz::campaign::{CampaignSnapshot, StopCondition};
use chatfuzz::persist::Recovery;
use chatfuzz::shard::{resplit_snapshot, shard_seed, ShardError, ShardSpec, ShardedOutcome};
use chatfuzz_baselines::ArmStatus;
use chatfuzz_coverage::Space;
use chatfuzz_telemetry::{names, TelemetrySink};

use crate::lease::{DistillHook, LeaseBuilder, LeaseId, LeaseState, WorkOrder};
use crate::transport::{Transport, TransportEvent, WorkerStatus};

/// What can go wrong while orchestrating a fleet.
#[derive(Debug)]
pub enum OrchestrateError {
    /// The transport could not move a work order or result.
    Transport {
        /// Lease the order belonged to ("" when not lease-scoped).
        lease: String,
        /// Human-readable cause.
        detail: String,
    },
    /// Completed shard snapshots refused to merge.
    Merge(ShardError),
    /// A lease burned through its attempt budget without completing.
    LeaseExhausted {
        /// The lease that kept dying.
        lease: String,
        /// Attempts consumed.
        attempts: u32,
        /// Last failure detail (or "missed heartbeat deadline").
        detail: String,
    },
}

impl fmt::Display for OrchestrateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrchestrateError::Transport { lease, detail } if lease.is_empty() => {
                write!(f, "transport: {detail}")
            }
            OrchestrateError::Transport { lease, detail } => {
                write!(f, "transport for lease {lease}: {detail}")
            }
            OrchestrateError::Merge(e) => write!(f, "merging generation results: {e}"),
            OrchestrateError::LeaseExhausted { lease, attempts, detail } => {
                write!(f, "lease {lease} failed {attempts} attempts (last: {detail})")
            }
        }
    }
}

impl std::error::Error for OrchestrateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OrchestrateError::Merge(e) => Some(e),
            _ => None,
        }
    }
}

/// One tenant campaign's fleet shape and budget.
#[derive(Clone)]
pub struct FleetConfig {
    /// Registry name; spool workers look their template up by it.
    pub name: String,
    /// Root of every RNG stream the fleet derives.
    pub base_seed: u64,
    /// Leases per generation.
    pub fan_out: usize,
    /// Tests each lease adds per generation — the merge cadence.
    pub lease_tests: usize,
    /// Stop once the merged snapshot carries at least this many tests.
    pub total_tests: usize,
    /// Stop early once merged coverage reaches this percentage.
    pub coverage_target_pct: Option<f64>,
    /// Batches between worker auto-checkpoints — the crash-loss bound.
    pub checkpoint_every: usize,
    /// A lease whose heartbeat is older than this is revoked and reissued.
    pub heartbeat_deadline: Duration,
    /// Give up on a lease after this many attempts.
    pub max_attempts: u32,
    /// The campaign template instantiated per lease.
    pub build: LeaseBuilder,
    /// Coverage space shared by every lease of the campaign.
    pub space: Arc<Space>,
    /// Optional corpus distillation run on each merged snapshot.
    pub distill: Option<DistillHook>,
    /// Instrumentation sink: lease lifecycle events, heartbeat gaps,
    /// merge durations, and phase counters flow into it, and it is
    /// handed down to every lease campaign the local-pool transport
    /// builds. Strictly observational — a fleet run with any sink (or
    /// the default disabled one) produces bit-identical snapshots.
    pub telemetry: TelemetrySink,
}

impl FleetConfig {
    /// A 4-wide fleet merging every 256 tests up to 1024 total, with a
    /// 2-second heartbeat deadline — override fields as needed.
    pub fn new(
        name: impl Into<String>,
        base_seed: u64,
        space: Arc<Space>,
        build: LeaseBuilder,
    ) -> FleetConfig {
        FleetConfig {
            name: name.into(),
            base_seed,
            fan_out: 4,
            lease_tests: 256,
            total_tests: 1024,
            coverage_target_pct: None,
            checkpoint_every: 4,
            heartbeat_deadline: Duration::from_secs(2),
            max_attempts: 8,
            build,
            space,
            distill: None,
            telemetry: TelemetrySink::disabled(),
        }
    }
}

/// The seed for one lease's shard spec. Generation 0 must stay plain
/// `shard_seed(base, index)` so a 1-wide, 1-generation fleet reproduces a
/// plain sharded campaign bit for bit; later generations salt by
/// generation so re-split streams never repeat.
fn lease_seed(base: u64, generation: u64, index: usize) -> u64 {
    if generation == 0 {
        shard_seed(base, index)
    } else {
        shard_seed(shard_seed(base, generation as usize), index)
    }
}

struct LeaseSlot {
    id: LeaseId,
    attempt: u32,
    state: LeaseState,
    last_progress: Instant,
    /// Absolute tests reported by the latest heartbeat (includes the base).
    tests_run: usize,
    /// Absolute tests at the current attempt's resume point: the
    /// generation base for attempt 0, the resumed checkpoint (which may
    /// sit *behind* the base) for a reissue. In-flight accounting counts
    /// each attempt's delta from here, not from the base, so a reissue
    /// from an early checkpoint neither inherits the dead attempt's
    /// high-water mark nor has its progress clamped away.
    resume_tests: usize,
    result: Option<CampaignSnapshot>,
    /// Consecutive failed attempts that made no progress past their
    /// resume point — the crash-loop detector's counter.
    stalled_attempts: u32,
    /// Set when the lease is quarantined: attempts consumed and the
    /// last failure detail, kept for the all-quarantined error path.
    quarantined: Option<(u32, String)>,
    /// Why the most recent attempt was revoked or quarantined —
    /// "missed heartbeat deadline", a crash-loop verdict, or the
    /// transport's failure detail. Kept (not just counted) so status
    /// renderers can say *what* went wrong, not merely how often.
    last_failure: Option<String>,
}

/// Consecutive zero-progress failures before a lease is declared
/// crash-looping and quarantined without burning the full attempt
/// budget — a worker that dies before its first checkpoint every time
/// will keep dying; retries only delay the generation.
const CRASH_LOOP_LIMIT: u32 = 3;

struct Tenant {
    config: FleetConfig,
    generation: u64,
    /// Pooled snapshot of the last merged generation.
    base: Option<CampaignSnapshot>,
    leases: Vec<LeaseSlot>,
    finished: Option<CampaignSnapshot>,
    revoked: u64,
    /// Leases quarantined over the campaign's lifetime.
    quarantined: u64,
    /// Why each quarantine happened, by lease — quarantine is permanent
    /// degradation, so its reasons outlive the generation's lease list.
    quarantine_log: Vec<(LeaseId, String)>,
    /// Deepest lineage fallback any checkpoint recovery needed.
    max_fallback_depth: usize,
    /// Snapshot checksum failures seen while recovering checkpoints.
    checksum_failures: usize,
    /// Active lease time accumulated over finished generations — the
    /// throughput denominator. Merge, distillation, and idle gaps
    /// between generations are excluded (they happen after the clock
    /// below is banked and before the next generation restarts it).
    active: Duration,
    /// When the current generation's leases were dispatched (`None`
    /// between generations and after the campaign finishes).
    generation_started: Option<Instant>,
}

impl Tenant {
    fn reference(&self) -> Option<&CampaignSnapshot> {
        self.finished.as_ref().or(self.base.as_ref())
    }

    fn base_tests(&self) -> usize {
        self.base.as_ref().map_or(0, CampaignSnapshot::tests_run)
    }

    /// Merged tests plus heartbeat-reported in-flight progress. Each
    /// lease contributes the checkpoint prefix its current attempt
    /// retains beyond the base plus the attempt's own delta past its
    /// resume point — so a lease reissued from a checkpoint behind the
    /// base still shows the progress its live attempt actually made
    /// (the plain `tests_run - base` clamp would report zero until the
    /// attempt re-passed the base).
    fn live_tests(&self) -> usize {
        if let Some(f) = &self.finished {
            return f.tests_run();
        }
        let base = self.base_tests();
        base + self
            .leases
            .iter()
            .map(|slot| {
                slot.resume_tests.saturating_sub(base)
                    + slot.tests_run.saturating_sub(slot.resume_tests)
            })
            .sum::<usize>()
    }

    /// Seconds of active lease time: banked full generations plus the
    /// in-flight generation's span. Excludes merge/distill/idle gaps so
    /// `tests_per_sec` measures fleet throughput, not orchestrator
    /// downtime.
    fn active_secs(&self) -> f64 {
        self.active.as_secs_f64()
            + self.generation_started.map_or(0.0, |since| since.elapsed().as_secs_f64())
    }
}

/// A point-in-time view of one lease for the status API.
#[derive(Debug, Clone)]
pub struct LeaseStatus {
    /// Which lease.
    pub id: LeaseId,
    /// Current attempt number.
    pub attempt: u32,
    /// Lifecycle state.
    pub state: LeaseState,
    /// Absolute tests the serving worker last reported.
    pub tests_run: usize,
    /// The most recent revocation/quarantine reason, if any — heartbeat
    /// miss vs crash loop vs transport failure.
    pub last_failure: Option<String>,
}

/// A point-in-time view of one tenant campaign.
#[derive(Debug, Clone)]
pub struct CampaignStatus {
    /// Registry name.
    pub name: String,
    /// Merge-then-continue generation currently running (or finished at).
    pub generation: u64,
    /// Whether the campaign hit a stop rule.
    pub done: bool,
    /// Pooled coverage as of the last merge (0 until the first merge).
    pub coverage_pct: f64,
    /// Merged tests plus in-flight heartbeat progress.
    pub tests_run: usize,
    /// Fleet-wide throughput over *active lease time* — merge, distill,
    /// and idle gaps between generations are excluded from the
    /// denominator, so the rate reflects what the workers sustain, not
    /// how long the orchestrator sat between generations.
    pub tests_per_sec: f64,
    /// Leases revoked (or failed) and reissued so far.
    pub revoked_leases: u64,
    /// Leases quarantined after exhausting retries or crash-looping —
    /// their shards degraded to a last-good checkpoint (or nothing).
    pub quarantined_leases: u64,
    /// Why each quarantine happened, by lease, over the campaign's whole
    /// lifetime — quarantine is permanent degradation, so its reasons
    /// outlive the generation's lease list (which is cleared on merge).
    pub quarantine_reasons: Vec<(LeaseId, String)>,
    /// Deepest checkpoint-lineage fallback any recovery needed so far
    /// (0 = every recovered checkpoint was the newest file).
    pub max_fallback_depth: usize,
    /// Snapshot checksum failures seen while recovering checkpoints —
    /// corrupted-in-place files stepped over (and quarantined on disk).
    pub checksum_failures: usize,
    /// Per-arm scheduler statistics from the pooled snapshot, by name.
    pub arms: Vec<(String, ArmStatus)>,
    /// Published weight-snapshot epochs of the pooled snapshot's
    /// model-backed arms, by name — the fleet-level actor/learner
    /// version counter (absent for arms without model state).
    pub weight_epochs: Vec<(String, u64)>,
    /// Current generation's leases.
    pub leases: Vec<LeaseStatus>,
}

/// Everything a dashboard needs: per-campaign progress plus fleet health.
#[derive(Debug, Clone)]
pub struct OrchestratorStatus {
    /// One entry per registered campaign.
    pub campaigns: Vec<CampaignStatus>,
    /// Live/dead view of the transport's workers.
    pub workers: Vec<WorkerStatus>,
    /// Orphaned temp files swept from the transport's spool at startup
    /// and at generation boundaries — litter crashed workers left
    /// mid-`temp+rename`.
    pub swept_tmp_files: usize,
}

/// The long-lived coordinator: registry, lease bookkeeping, merge loop.
pub struct Orchestrator<T: Transport> {
    transport: T,
    tenants: Vec<Tenant>,
    swept_tmp_files: usize,
}

impl<T: Transport> Orchestrator<T> {
    /// Wraps a transport; campaigns are registered separately. Sweeps
    /// the transport's orphaned temp files immediately — startup is the
    /// one point the previous incarnation's crash litter is guaranteed
    /// not to be a live in-flight write.
    pub fn new(mut transport: T) -> Orchestrator<T> {
        let swept_tmp_files = transport.sweep_orphans();
        Orchestrator { transport, tenants: Vec::new(), swept_tmp_files }
    }

    /// Registers a campaign and returns its slot (the `campaign` field of
    /// its lease ids). Dispatch happens on the next [`step`](Self::step).
    pub fn register(&mut self, config: FleetConfig) -> usize {
        self.tenants.push(Tenant {
            config,
            generation: 0,
            base: None,
            leases: Vec::new(),
            finished: None,
            revoked: 0,
            quarantined: 0,
            quarantine_log: Vec::new(),
            max_fallback_depth: 0,
            checksum_failures: 0,
            active: Duration::ZERO,
            generation_started: None,
        });
        self.tenants.len() - 1
    }

    /// Every registered campaign hit a stop rule.
    pub fn is_done(&self) -> bool {
        self.tenants.iter().all(|t| t.finished.is_some())
    }

    /// The final merged snapshot of a finished campaign.
    pub fn final_snapshot(&self, campaign: usize) -> Option<&CampaignSnapshot> {
        self.tenants.get(campaign).and_then(|t| t.finished.as_ref())
    }

    /// One bookkeeping pass: dispatch pending generations, drain transport
    /// events, revoke stale leases, merge completed generations.
    pub fn step(&mut self) -> Result<(), OrchestrateError> {
        for index in 0..self.tenants.len() {
            let tenant = &self.tenants[index];
            if tenant.finished.is_none() && tenant.leases.is_empty() {
                self.start_generation(index)?;
            }
        }
        for event in self.transport.poll() {
            self.absorb(event)?;
        }
        self.revoke_stale()?;
        for index in 0..self.tenants.len() {
            let tenant = &self.tenants[index];
            if tenant.finished.is_none()
                && !tenant.leases.is_empty()
                && tenant.leases.iter().all(|slot| slot.state.is_terminal())
            {
                self.finish_generation(index)?;
            }
        }
        Ok(())
    }

    /// Steps until every campaign finishes, then shuts the fleet down.
    pub fn run_to_completion(&mut self) -> Result<(), OrchestrateError> {
        self.run_streaming(|_| {})
    }

    /// Like [`run_to_completion`](Self::run_to_completion), but streams a
    /// status snapshot to `on_status` after every step — the push half of
    /// the status API ([`status`](Self::status) is the poll half).
    pub fn run_streaming(
        &mut self,
        mut on_status: impl FnMut(&OrchestratorStatus),
    ) -> Result<(), OrchestrateError> {
        while !self.is_done() {
            self.step()?;
            on_status(&self.status());
            if !self.is_done() {
                // Idle wall clock (the poll loop's sleeps) goes to the
                // process-global sink: per-tenant attribution would be
                // arbitrary, and the orchestrate binary installs its
                // sink globally anyway.
                let idle = chatfuzz_telemetry::global().now();
                std::thread::sleep(Duration::from_millis(2));
                if let Some(start) = idle {
                    chatfuzz_telemetry::global().counter_add(
                        names::FLEET_PHASE_IDLE_US,
                        start.elapsed().as_micros() as u64,
                    );
                }
            }
        }
        self.transport.shutdown();
        Ok(())
    }

    /// Stops the fleet without waiting for campaigns to finish.
    pub fn shutdown(&mut self) {
        self.transport.shutdown();
    }

    /// A point-in-time view of every campaign and worker.
    pub fn status(&self) -> OrchestratorStatus {
        let campaigns = self
            .tenants
            .iter()
            .map(|tenant| {
                let reference = tenant.reference();
                let arms = reference
                    .map(|snapshot| {
                        let statuses = snapshot.scheduler_state().arm_statuses();
                        // A stateless scheduler (round-robin) tracks no
                        // per-arm state at all; its pull count per arm
                        // *is* the production batch counter, so fall
                        // back to that. A bandit that does track arms
                        // must not have missing slots back-filled from
                        // production counters — the panel would then
                        // disagree with the pull totals the bandit's own
                        // UCB scores use, so an arm the bandit never
                        // pulled reports zero.
                        let stateless = statuses.is_empty();
                        snapshot
                            .generator_stats()
                            .iter()
                            .enumerate()
                            .map(|(slot, stats)| {
                                let status = statuses.get(slot).cloned().unwrap_or(ArmStatus {
                                    pulls: if stateless { stats.batches as u64 } else { 0 },
                                    mean_reward: stats.reward_rate(),
                                    recent_mean_reward: None,
                                    cycles: stats.cycles,
                                });
                                (stats.name.clone(), status)
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                let weight_epochs = reference
                    .map(|snapshot| {
                        snapshot
                            .generator_stats()
                            .iter()
                            .zip(snapshot.generator_states())
                            .filter_map(|(stats, state)| {
                                let model = state.as_ref()?.model.as_ref()?;
                                Some((stats.name.clone(), model.publish_epoch))
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                let tests_run = tenant.live_tests();
                let elapsed = tenant.active_secs();
                if tenant.config.telemetry.is_enabled() {
                    let epochs: &Vec<(String, u64)> = &weight_epochs;
                    if let Some(epoch) = epochs.iter().map(|(_, e)| *e).max() {
                        tenant
                            .config
                            .telemetry
                            .gauge_set(names::CAMPAIGN_LM_PUBLISH_EPOCHS, epoch as i64);
                    }
                }
                CampaignStatus {
                    name: tenant.config.name.clone(),
                    generation: tenant.generation,
                    done: tenant.finished.is_some(),
                    coverage_pct: reference.map_or(0.0, CampaignSnapshot::coverage_pct),
                    tests_run,
                    tests_per_sec: if elapsed > 0.0 { tests_run as f64 / elapsed } else { 0.0 },
                    revoked_leases: tenant.revoked,
                    quarantined_leases: tenant.quarantined,
                    quarantine_reasons: tenant.quarantine_log.clone(),
                    max_fallback_depth: tenant.max_fallback_depth,
                    checksum_failures: tenant.checksum_failures,
                    arms,
                    weight_epochs,
                    leases: tenant
                        .leases
                        .iter()
                        .map(|slot| LeaseStatus {
                            id: slot.id,
                            attempt: slot.attempt,
                            state: slot.state,
                            tests_run: slot.tests_run,
                            last_failure: slot
                                .quarantined
                                .as_ref()
                                .map(|(_, detail)| detail.clone())
                                .or_else(|| slot.last_failure.clone()),
                        })
                        .collect(),
                }
            })
            .collect();
        OrchestratorStatus {
            campaigns,
            workers: self.transport.workers(),
            swept_tmp_files: self.swept_tmp_files,
        }
    }

    /// Issues every lease of the tenant's current generation.
    fn start_generation(&mut self, index: usize) -> Result<(), OrchestrateError> {
        let tenant = &mut self.tenants[index];
        let sink = tenant.config.telemetry.clone();
        let dispatch_span = sink.now();
        if tenant.generation_started.is_none() {
            tenant.generation_started = Some(Instant::now());
        }
        let generation = tenant.generation;
        let config = &tenant.config;
        let base_tests = tenant.base.as_ref().map_or(0, CampaignSnapshot::tests_run);
        let mut orders = Vec::with_capacity(config.fan_out);
        let mut slots = Vec::with_capacity(config.fan_out);
        for fan in 0..config.fan_out {
            let id = LeaseId { campaign: index, generation, index: fan };
            let seed = lease_seed(config.base_seed, generation, fan);
            let spec = ShardSpec { index: fan, shards: config.fan_out, seed };
            let (resume, stop) = match &tenant.base {
                None => (None, StopCondition::Tests(config.lease_tests)),
                Some(base) => {
                    (Some(resplit_snapshot(base, seed)), base.lease_stop(config.lease_tests))
                }
            };
            orders.push(WorkOrder {
                lease: id,
                attempt: 0,
                campaign: config.name.clone(),
                spec,
                resume,
                stop,
                checkpoint_every: config.checkpoint_every,
                build: config.build.clone(),
                space: config.space.clone(),
                telemetry: config.telemetry.clone(),
            });
            slots.push(LeaseSlot {
                id,
                attempt: 0,
                state: LeaseState::Issued,
                last_progress: Instant::now(),
                tests_run: base_tests,
                resume_tests: base_tests,
                result: None,
                stalled_attempts: 0,
                quarantined: None,
                last_failure: None,
            });
        }
        tenant.leases = slots;
        if sink.is_enabled() {
            sink.event(
                "generation_start",
                vec![
                    ("campaign", self.tenants[index].config.name.as_str().into()),
                    ("generation", generation.into()),
                    ("fan_out", self.tenants[index].config.fan_out.into()),
                    ("base_tests", base_tests.into()),
                ],
            );
        }
        for order in orders {
            if sink.is_enabled() {
                sink.counter_add(names::FLEET_LEASES_ISSUED, 1);
                sink.event(
                    "lease_issued",
                    vec![
                        ("lease", order.lease.to_string().into()),
                        ("attempt", order.attempt.into()),
                        ("resume_tests", base_tests.into()),
                    ],
                );
            }
            self.dispatch_with_retry(order)?;
        }
        if sink.is_enabled() {
            let us = dispatch_span.map_or(0, |s| s.elapsed().as_micros() as u64);
            sink.counter_add(names::FLEET_PHASE_DISPATCH_US, us);
        }
        Ok(())
    }

    /// Dispatches a work order, retrying with backoff: transient
    /// transport failures (an injected io error, a briefly-full spool)
    /// must not take the whole fleet down with them.
    fn dispatch_with_retry(&mut self, order: WorkOrder) -> Result<(), OrchestrateError> {
        let mut delay = Duration::from_millis(5);
        for _ in 0..3 {
            if self.transport.dispatch(order.clone()).is_ok() {
                return Ok(());
            }
            std::thread::sleep(delay);
            delay *= 4;
        }
        self.transport.dispatch(order)
    }

    /// Applies one transport event to the lease bookkeeping. Events for a
    /// superseded attempt or an older generation are dropped — that is
    /// what makes revocation safe against zombie workers. Terminal slots
    /// (completed *or* quarantined) ignore everything, which also makes
    /// duplicated and reordered deliveries from a lossy transport
    /// harmless: the first Completed wins, replays bounce off.
    fn absorb(&mut self, event: TransportEvent) -> Result<(), OrchestrateError> {
        match event {
            TransportEvent::Heartbeat { lease, attempt, tests_run, .. } => {
                let sink = self.tenant_sink(lease);
                if let Some(slot) = self.slot_mut(lease, attempt) {
                    if !slot.state.is_terminal() {
                        if sink.is_enabled() && slot.state == LeaseState::Heartbeating {
                            let gap = slot.last_progress.elapsed().as_micros() as u64;
                            sink.observe(names::FLEET_HEARTBEAT_GAP_US, gap);
                        }
                        slot.state = LeaseState::Heartbeating;
                        slot.last_progress = Instant::now();
                        slot.tests_run = slot.tests_run.max(tests_run);
                    }
                }
            }
            TransportEvent::Completed { lease, attempt, snapshot } => {
                let sink = self.tenant_sink(lease);
                if let Some(slot) = self.slot_mut(lease, attempt) {
                    if !slot.state.is_terminal() {
                        slot.state = LeaseState::Completed;
                        slot.tests_run = snapshot.tests_run();
                        slot.result = Some(*snapshot);
                        if sink.is_enabled() {
                            sink.event(
                                "lease_completed",
                                vec![
                                    ("lease", lease.to_string().into()),
                                    ("attempt", attempt.into()),
                                    ("tests", slot.tests_run.into()),
                                ],
                            );
                        }
                    }
                }
            }
            TransportEvent::Failed { lease, attempt, detail } => {
                // A failure racing a completion loses: once the slot is
                // Completed its snapshot is merge material, and reissuing
                // it would re-run a finished lease (and let a zombie
                // attempt into the next merge).
                let live =
                    self.slot_mut(lease, attempt).is_some_and(|slot| !slot.state.is_terminal());
                if live {
                    self.reissue(lease, &detail)?;
                }
            }
        }
        Ok(())
    }

    /// The owning tenant's sink (disabled when the lease is unknown).
    fn tenant_sink(&self, lease: LeaseId) -> TelemetrySink {
        self.tenants
            .get(lease.campaign)
            .map_or_else(TelemetrySink::disabled, |t| t.config.telemetry.clone())
    }

    /// The live slot for a lease, only if `attempt` is its current attempt.
    fn slot_mut(&mut self, lease: LeaseId, attempt: u32) -> Option<&mut LeaseSlot> {
        self.tenants
            .get_mut(lease.campaign)?
            .leases
            .iter_mut()
            .find(|slot| slot.id == lease && slot.attempt == attempt)
    }

    /// Revokes and reissues every in-flight lease whose worker missed the
    /// heartbeat deadline.
    fn revoke_stale(&mut self) -> Result<(), OrchestrateError> {
        let mut stale = Vec::new();
        for tenant in &self.tenants {
            if tenant.finished.is_some() {
                continue;
            }
            for slot in &tenant.leases {
                if !slot.state.is_terminal()
                    && slot.last_progress.elapsed() > tenant.config.heartbeat_deadline
                {
                    stale.push(slot.id);
                }
            }
        }
        for lease in stale {
            self.reissue(lease, "missed heartbeat deadline")?;
        }
        Ok(())
    }

    /// Recovers the freshest checkpoint any attempt of a lease left,
    /// scanning attempts newest-first and each attempt's lineage behind
    /// it, and banks the degradation observed on the way (fallback
    /// depth, checksum failures) into the tenant's counters.
    fn recover_checkpoint(&mut self, lease: LeaseId, last_attempt: u32) -> Recovery {
        let space = self.tenants[lease.campaign].config.space.clone();
        let mut recovery = Recovery::default();
        for attempt in (0..=last_attempt).rev() {
            recovery.absorb(self.transport.checkpoint(lease, attempt, &space));
            if recovery.snapshot.is_some() {
                break;
            }
        }
        let tenant = &mut self.tenants[lease.campaign];
        if recovery.snapshot.is_some() {
            tenant.max_fallback_depth = tenant.max_fallback_depth.max(recovery.fallback_depth);
        }
        tenant.checksum_failures += recovery.checksum_failures;
        if tenant.config.telemetry.is_enabled() {
            tenant.config.telemetry.event(
                "lease_recovery",
                vec![("lease", lease.to_string().into()), ("summary", recovery.summary().into())],
            );
        }
        recovery
    }

    /// Revokes a lease's current attempt and reissues it from the freshest
    /// checkpoint any prior attempt left — or the generation's pooled base
    /// when no checkpoint exists yet. The absolute stop condition is
    /// unchanged, so a reissued lease still lands on the same budget.
    ///
    /// Degradation instead of wedging: a lease that exhausts
    /// `max_attempts`, or crash-loops ([`CRASH_LOOP_LIMIT`] consecutive
    /// failures with zero progress), is quarantined rather than erroring
    /// the whole orchestrator — its last-good checkpoint still merges
    /// and the surviving fan-out carries the generation. Only a
    /// generation with *no* completed lease at all escalates to
    /// [`OrchestrateError::LeaseExhausted`].
    fn reissue(&mut self, lease: LeaseId, detail: &str) -> Result<(), OrchestrateError> {
        let tenant = &mut self.tenants[lease.campaign];
        let config = tenant.config.clone();
        let base = tenant.base.clone();
        let Some(slot) = tenant.leases.iter_mut().find(|slot| slot.id == lease) else {
            return Ok(());
        };
        if slot.state.is_terminal() {
            return Ok(());
        }
        let old_attempt = slot.attempt;
        let next_attempt = old_attempt + 1;
        let stalled =
            if slot.tests_run > slot.resume_tests { 0 } else { slot.stalled_attempts + 1 };
        slot.stalled_attempts = stalled;
        slot.last_failure = Some(detail.to_string());
        let sink = config.telemetry.clone();
        self.transport.revoke(lease, old_attempt);
        if next_attempt >= config.max_attempts || stalled >= CRASH_LOOP_LIMIT {
            let detail = if next_attempt >= config.max_attempts {
                detail.to_string()
            } else {
                format!("crash loop: {stalled} consecutive attempts with no progress ({detail})")
            };
            let recovery = self.recover_checkpoint(lease, old_attempt);
            if sink.is_enabled() {
                sink.counter_add(names::FLEET_LEASES_QUARANTINED, 1);
                sink.event(
                    "lease_quarantined",
                    vec![
                        ("lease", lease.to_string().into()),
                        ("attempts", next_attempt.into()),
                        ("reason", detail.as_str().into()),
                    ],
                );
            }
            let tenant = &mut self.tenants[lease.campaign];
            tenant.quarantined += 1;
            tenant.quarantine_log.push((lease, detail.clone()));
            if let Some(slot) = tenant.leases.iter_mut().find(|slot| slot.id == lease) {
                slot.state = LeaseState::Quarantined;
                slot.quarantined = Some((next_attempt, detail));
                // The shard's last-good checkpoint becomes its merge
                // contribution; with none, the shard contributes nothing
                // (the pooled base already covers its starting point).
                slot.tests_run = recovery.snapshot.as_ref().map_or(0, CampaignSnapshot::tests_run);
                slot.resume_tests = slot.tests_run;
                slot.result = recovery.snapshot;
            }
            return Ok(());
        }
        slot.state = LeaseState::Revoked;
        tenant.revoked += 1;
        if sink.is_enabled() {
            sink.counter_add(names::FLEET_LEASES_REVOKED, 1);
            sink.event(
                "lease_revoked",
                vec![
                    ("lease", lease.to_string().into()),
                    ("attempt", old_attempt.into()),
                    ("reason", detail.into()),
                ],
            );
        }
        // The freshest auto-checkpoint bounds the loss to one checkpoint
        // interval; with none, the lease replays from the pooled base.
        let seed = lease_seed(config.base_seed, lease.generation, lease.index);
        let checkpoint = self.recover_checkpoint(lease, old_attempt).snapshot;
        let resume = checkpoint.or_else(|| base.as_ref().map(|b| resplit_snapshot(b, seed)));
        let stop = match &base {
            Some(b) => b.lease_stop(config.lease_tests),
            None => StopCondition::Tests(config.lease_tests),
        };
        let order = WorkOrder {
            lease,
            attempt: next_attempt,
            campaign: config.name.clone(),
            spec: ShardSpec { index: lease.index, shards: config.fan_out, seed },
            resume,
            stop,
            checkpoint_every: config.checkpoint_every,
            build: config.build.clone(),
            space: config.space.clone(),
            telemetry: config.telemetry.clone(),
        };
        // The new attempt starts over from its resume snapshot: reset
        // the progress counters to that point so the dead attempt's
        // high-water mark does not linger in the in-flight accounting
        // (heartbeats within one attempt still ratchet with `max`).
        let resume_tests = order.resume.as_ref().map_or(0, CampaignSnapshot::tests_run);
        let tenant = &mut self.tenants[lease.campaign];
        if let Some(slot) = tenant.leases.iter_mut().find(|slot| slot.id == lease) {
            slot.attempt = next_attempt;
            slot.state = LeaseState::Issued;
            slot.last_progress = Instant::now();
            slot.tests_run = resume_tests;
            slot.resume_tests = resume_tests;
        }
        if sink.is_enabled() {
            sink.counter_add(names::FLEET_LEASES_ISSUED, 1);
            sink.event(
                "lease_issued",
                vec![
                    ("lease", lease.to_string().into()),
                    ("attempt", next_attempt.into()),
                    ("resume_tests", resume_tests.into()),
                ],
            );
        }
        self.dispatch_with_retry(order)
    }

    /// Merges a terminal generation — every lease completed or
    /// quarantined — and either finishes the campaign or re-splits the
    /// pool into the next generation's leases. Quarantined leases merge
    /// their last-good checkpoint (when one was recovered), so a
    /// degraded generation still pools every shard's salvageable
    /// coverage; a generation where *nothing* completed escalates to
    /// [`OrchestrateError::LeaseExhausted`] instead of merging.
    fn finish_generation(&mut self, index: usize) -> Result<(), OrchestrateError> {
        let tenant = &mut self.tenants[index];
        let sink = tenant.config.telemetry.clone();
        // Bank the generation's active span before the merge/distill
        // work below — that time is orchestrator overhead, not worker
        // throughput, and stays out of the `tests_per_sec` denominator.
        if let Some(since) = tenant.generation_started.take() {
            if sink.is_enabled() {
                sink.counter_add(names::FLEET_PHASE_EXECUTE_US, since.elapsed().as_micros() as u64);
            }
            tenant.active += since.elapsed();
        }
        let merge_span = sink.now();
        if !tenant.leases.iter().any(|slot| slot.state == LeaseState::Completed) {
            let (lease, attempts, detail) = tenant
                .leases
                .iter()
                .find_map(|slot| {
                    let (attempts, detail) = slot.quarantined.clone()?;
                    Some((slot.id.to_string(), attempts, detail))
                })
                .expect("an all-terminal generation with no completion has a quarantined lease");
            return Err(OrchestrateError::LeaseExhausted { lease, attempts, detail });
        }
        let snapshots: Vec<CampaignSnapshot> = tenant
            .leases
            .iter_mut()
            .filter_map(|slot| match slot.state {
                LeaseState::Completed => {
                    Some(slot.result.take().expect("completed leases carry their snapshot"))
                }
                // A quarantined lease's result is its last-good
                // checkpoint — absent when no attempt ever checkpointed.
                LeaseState::Quarantined => slot.result.take(),
                _ => unreachable!("finish_generation runs on terminal leases"),
            })
            .collect();
        let outcome = ShardedOutcome::new(snapshots).map_err(OrchestrateError::Merge)?;
        let mut merged = match &tenant.base {
            None => outcome.merged_snapshot(),
            Some(base) => outcome.merged_snapshot_over_base(base),
        };
        if let Some(distill) = &tenant.config.distill {
            distill(&mut merged);
        }
        tenant.leases.clear();
        let budget_done = merged.tests_run() >= tenant.config.total_tests;
        let target_done =
            tenant.config.coverage_target_pct.is_some_and(|target| merged.coverage_pct() >= target);
        if sink.is_enabled() {
            let merge_us = merge_span.map_or(0, |s| s.elapsed().as_micros() as u64);
            sink.observe(names::FLEET_MERGE_US, merge_us);
            sink.counter_add(names::FLEET_PHASE_MERGE_US, merge_us);
            sink.event(
                "generation_merge",
                vec![
                    ("campaign", tenant.config.name.as_str().into()),
                    ("generation", tenant.generation.into()),
                    ("tests", merged.tests_run().into()),
                    ("coverage_pct", merged.coverage_pct().into()),
                    ("distilled", u64::from(tenant.config.distill.is_some()).into()),
                    ("resplit", u64::from(!(budget_done || target_done)).into()),
                    ("duration_us", merge_us.into()),
                ],
            );
        }
        if budget_done || target_done {
            tenant.finished = Some(merged);
        } else {
            tenant.base = Some(merged);
            tenant.generation += 1;
        }
        // Generation boundary: sweep crash litter before (possibly)
        // dispatching the next fan-out, so a crash-looping fleet never
        // accretes unbounded `*.tmp` debris.
        self.swept_tmp_files += self.transport.sweep_orphans();
        if self.tenants[index].finished.is_none() {
            self.start_generation(index)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::NullTransport;
    use chatfuzz::campaign::CampaignBuilder;
    use chatfuzz_baselines::RandomRegression;
    use chatfuzz_rtl::{Dut, Rocket, RocketConfig};

    fn rocket_space() -> Arc<Space> {
        Rocket::new(RocketConfig::default()).space().clone()
    }

    fn rocket_template() -> LeaseBuilder {
        Arc::new(|spec: ShardSpec| {
            CampaignBuilder::new(|| Box::new(Rocket::new(RocketConfig::default())) as Box<dyn Dut>)
                .batch_size(8)
                .generator(RandomRegression::new(spec.seed, 16))
        })
    }

    fn config(fan_out: usize, lease_tests: usize, total: usize) -> FleetConfig {
        FleetConfig {
            fan_out,
            lease_tests,
            total_tests: total,
            ..FleetConfig::new("rocket", 42, rocket_space(), rocket_template())
        }
    }

    fn run_lease(order: &WorkOrder) -> CampaignSnapshot {
        let mut builder = (order.build)(order.spec);
        if let Some(resume) = order.resume.clone() {
            builder = builder.resume(resume);
        }
        let mut campaign = builder.build();
        campaign.run_until(&[order.stop]);
        campaign.snapshot()
    }

    #[test]
    fn generations_merge_and_resplit_until_the_budget() {
        let mut orchestrator = Orchestrator::new(NullTransport::new());
        let campaign = orchestrator.register(config(2, 32, 128));
        assert!(!orchestrator.is_done());

        let mut generations = 0;
        while !orchestrator.is_done() {
            orchestrator.step().expect("step");
            let orders: Vec<WorkOrder> = orchestrator.transport.dispatched.drain(..).collect();
            if orders.is_empty() {
                panic!("an unfinished campaign always has work in flight");
            }
            generations += 1;
            assert!(generations <= 2, "2 leases x 32 tests gain 64 merged tests per generation");
            for order in &orders {
                assert_eq!(order.campaign, "rocket");
                assert_eq!(order.spec.shards, 2);
                let snapshot = run_lease(order);
                orchestrator.transport.events.push(TransportEvent::Completed {
                    lease: order.lease,
                    attempt: order.attempt,
                    snapshot: Box::new(snapshot),
                });
            }
            orchestrator.step().expect("merge step");
        }
        let fin = orchestrator.final_snapshot(campaign).expect("finished campaign");
        assert_eq!(fin.tests_run(), 128, "two generations of 2x32 pooled tests");
        let status = orchestrator.status();
        assert!(status.campaigns[0].done);
        assert_eq!(status.campaigns[0].tests_run, 128);
        assert_eq!(status.campaigns[0].generation, 1);
        assert_eq!(status.campaigns[0].revoked_leases, 0);
        assert_eq!(status.campaigns[0].arms.len(), 1);
        assert_eq!(status.campaigns[0].arms[0].0, "random");
        assert!(status.campaigns[0].coverage_pct > 0.0);
    }

    #[test]
    fn stale_leases_are_revoked_and_reissued_from_checkpoints() {
        let mut orchestrator = Orchestrator::new(NullTransport::new());
        let fleet =
            FleetConfig { heartbeat_deadline: Duration::from_secs(3600), ..config(2, 32, 64) };
        orchestrator.register(fleet);
        orchestrator.step().expect("dispatch");
        let orders: Vec<WorkOrder> = orchestrator.transport.dispatched.drain(..).collect();
        assert_eq!(orders.len(), 2);

        // Pretend lease 0's worker checkpointed some progress, then died:
        // its reissue must resume from that checkpoint.
        let survivor = run_lease(&orders[1]);
        let checkpoint = {
            let builder = (orders[0].build)(orders[0].spec);
            let mut campaign = builder.build();
            campaign.run_until(&[StopCondition::Tests(16)]);
            campaign.snapshot()
        };
        orchestrator.transport.checkpoints.insert((orders[0].lease, 0), checkpoint.clone());
        orchestrator.transport.events.push(TransportEvent::Completed {
            lease: orders[1].lease,
            attempt: 0,
            snapshot: Box::new(survivor),
        });
        // Collapse the deadline: the next step absorbs the survivor's
        // completion, then finds lease 0 stale and reissues it.
        orchestrator.tenants[0].config.heartbeat_deadline = Duration::from_millis(0);
        std::thread::sleep(Duration::from_millis(2));
        orchestrator.step().expect("revocation step");
        assert_eq!(orchestrator.transport.revoked, vec![(orders[0].lease, 0)]);
        let reissues: Vec<WorkOrder> = orchestrator.transport.dispatched.drain(..).collect();
        assert_eq!(reissues.len(), 1, "only the stale lease is reissued");
        let reissue = &reissues[0];
        assert_eq!(reissue.lease, orders[0].lease);
        assert_eq!(reissue.attempt, 1);
        assert_eq!(reissue.stop, orders[0].stop, "the absolute budget is unchanged");
        assert_eq!(
            reissue.resume.as_ref().map(|s| s.tests_run()),
            Some(16),
            "the reissue continues from the dead worker's checkpoint"
        );
        let status = orchestrator.status();
        assert_eq!(status.campaigns[0].revoked_leases, 1);
        assert!(status.campaigns[0]
            .leases
            .iter()
            .any(|l| l.attempt == 1 && l.state == LeaseState::Issued));

        // A zombie result from the revoked attempt 0 must be ignored…
        let stale_result = run_lease(&orders[0]);
        orchestrator.transport.events.push(TransportEvent::Completed {
            lease: orders[0].lease,
            attempt: 0,
            snapshot: Box::new(stale_result),
        });
        // …while attempt 1's result completes the lease. Freeze staleness
        // first so the reissued lease is not revoked again by the 0ms
        // deadline used to force the first revocation.
        let finished = run_lease(reissue);
        orchestrator.tenants[0].config.heartbeat_deadline = Duration::from_secs(3600);
        orchestrator.transport.events.push(TransportEvent::Heartbeat {
            lease: reissue.lease,
            attempt: 1,
            tests_run: 16,
            worker: 7,
        });
        orchestrator.step().expect("zombie step");
        orchestrator.transport.events.push(TransportEvent::Completed {
            lease: reissue.lease,
            attempt: 1,
            snapshot: Box::new(finished),
        });
        orchestrator.step().expect("completion step");
        assert!(orchestrator.is_done(), "both leases completed despite the revocation");
        assert_eq!(orchestrator.final_snapshot(0).map(|s| s.tests_run()), Some(64));
    }

    /// Bugfix pin: the dashboard must report the pull counts the bandit
    /// actually acts on. With a windowed UCB1, lifetime pulls ride in
    /// `SchedulerState::cursor`, so the per-arm pulls must sum to it —
    /// the old fallback fabricated `stats.batches` for any slot the
    /// scheduler's arm list happened not to cover.
    #[test]
    fn bandit_arm_pulls_match_the_scheduler_not_production_counters() {
        use chatfuzz_baselines::Ucb1;

        let template: LeaseBuilder = Arc::new(|spec: ShardSpec| {
            CampaignBuilder::new(|| Box::new(Rocket::new(RocketConfig::default())) as Box<dyn Dut>)
                .batch_size(8)
                .generator(RandomRegression::new(spec.seed, 16))
                .generator(RandomRegression::new(spec.seed ^ 0x9e37, 16))
                .scheduler(Ucb1::new(1.0).windowed(4))
        });
        let mut orchestrator = Orchestrator::new(NullTransport::new());
        let campaign = orchestrator.register(FleetConfig {
            fan_out: 1,
            lease_tests: 64,
            total_tests: 64,
            ..FleetConfig::new("rocket-ucb", 43, rocket_space(), template)
        });
        orchestrator.step().expect("dispatch");
        let orders: Vec<WorkOrder> = orchestrator.transport.dispatched.drain(..).collect();
        assert_eq!(orders.len(), 1);
        let snapshot = run_lease(&orders[0]);
        orchestrator.transport.events.push(TransportEvent::Completed {
            lease: orders[0].lease,
            attempt: 0,
            snapshot: Box::new(snapshot),
        });
        orchestrator.step().expect("merge step");
        let fin = orchestrator.final_snapshot(campaign).expect("finished campaign");
        let cursor = fin.scheduler_state().cursor;
        assert_eq!(cursor, 8, "64 tests in batches of 8 are 8 bandit pulls");
        let status = orchestrator.status();
        let arms = &status.campaigns[0].arms;
        assert_eq!(arms.len(), 2);
        let total: u64 = arms.iter().map(|(_, arm)| arm.pulls).sum();
        assert_eq!(total, cursor, "dashboard pulls must sum to the bandit's lifetime count");
    }

    #[test]
    fn a_quarantined_lease_degrades_gracefully_and_its_checkpoint_still_merges() {
        let mut orchestrator = Orchestrator::new(NullTransport::new());
        let campaign = orchestrator.register(FleetConfig {
            max_attempts: 2,
            heartbeat_deadline: Duration::from_secs(3600),
            ..config(2, 32, 32)
        });
        orchestrator.step().expect("dispatch");
        let orders: Vec<WorkOrder> = orchestrator.transport.dispatched.drain(..).collect();
        assert_eq!(orders.len(), 2);

        // Lease 1 completes; lease 0 checkpoints 16 tests, then burns
        // its whole attempt budget without ever finishing.
        let survivor = run_lease(&orders[1]);
        let checkpoint = {
            let mut campaign = (orders[0].build)(orders[0].spec).build();
            campaign.run_until(&[StopCondition::Tests(16)]);
            campaign.snapshot()
        };
        orchestrator.transport.checkpoints.insert((orders[0].lease, 0), checkpoint.clone());
        orchestrator.transport.events.push(TransportEvent::Completed {
            lease: orders[1].lease,
            attempt: 0,
            snapshot: Box::new(survivor.clone()),
        });
        orchestrator.transport.events.push(TransportEvent::Failed {
            lease: orders[0].lease,
            attempt: 0,
            detail: "worker died".to_string(),
        });
        orchestrator.step().expect("first failure reissues");
        let reissues: Vec<WorkOrder> = orchestrator.transport.dispatched.drain(..).collect();
        assert_eq!(reissues.len(), 1);
        assert_eq!(reissues[0].attempt, 1);
        orchestrator.transport.events.push(TransportEvent::Failed {
            lease: orders[0].lease,
            attempt: 1,
            detail: "worker died again".to_string(),
        });
        orchestrator
            .step()
            .expect("exhaustion quarantines the lease instead of wedging the generation");

        assert!(orchestrator.is_done(), "the surviving lease completed the campaign");
        let fin = orchestrator.final_snapshot(campaign).expect("merged despite the quarantine");
        assert_eq!(
            fin.tests_run(),
            survivor.tests_run() + checkpoint.tests_run(),
            "the quarantined shard's last-good checkpoint still merges"
        );
        assert!(fin.coverage_pct() >= survivor.coverage_pct());
        assert!(fin.coverage_pct() >= checkpoint.coverage_pct());
        let status = orchestrator.status();
        assert_eq!(status.campaigns[0].quarantined_leases, 1);
        assert_eq!(status.campaigns[0].revoked_leases, 1, "only the first failure reissued");
        assert!(status.campaigns[0].done);
    }

    #[test]
    fn crash_looping_leases_are_quarantined_before_the_attempt_budget() {
        let mut orchestrator = Orchestrator::new(NullTransport::new());
        orchestrator.register(FleetConfig {
            max_attempts: 100,
            heartbeat_deadline: Duration::from_secs(3600),
            ..config(2, 32, 32)
        });
        orchestrator.step().expect("dispatch");
        let orders: Vec<WorkOrder> = orchestrator.transport.dispatched.drain(..).collect();

        // Lease 0 dies over and over with zero progress: the crash-loop
        // detector must give up long before the 100-attempt budget.
        for attempt in 0..CRASH_LOOP_LIMIT {
            orchestrator.transport.events.push(TransportEvent::Failed {
                lease: orders[0].lease,
                attempt,
                detail: "instant crash".to_string(),
            });
            orchestrator.step().expect("crash-looping is not an orchestrator error");
        }
        let status = orchestrator.status();
        assert_eq!(status.campaigns[0].quarantined_leases, 1);
        let slot = status.campaigns[0]
            .leases
            .iter()
            .find(|l| l.id == orders[0].lease)
            .expect("quarantined lease is still visible in status");
        assert_eq!(slot.state, LeaseState::Quarantined);
        assert_eq!(
            status.campaigns[0].revoked_leases,
            u64::from(CRASH_LOOP_LIMIT) - 1,
            "the final failure quarantines instead of reissuing"
        );
    }

    #[test]
    fn lease_attempts_are_bounded() {
        let mut orchestrator = Orchestrator::new(NullTransport::new());
        orchestrator.register(FleetConfig {
            max_attempts: 2,
            heartbeat_deadline: Duration::from_millis(1),
            ..config(1, 8, 8)
        });
        orchestrator.step().expect("dispatch");
        std::thread::sleep(Duration::from_millis(5));
        orchestrator.step().expect("first revocation survives");
        assert_eq!(orchestrator.status().campaigns[0].revoked_leases, 1);
        std::thread::sleep(Duration::from_millis(5));
        let err = orchestrator.step().expect_err("second revocation exhausts the budget");
        assert!(matches!(err, OrchestrateError::LeaseExhausted { attempts: 2, .. }), "{err}");
        assert!(err.to_string().contains("missed heartbeat deadline"), "{err}");
    }
}
