//! The pluggable seam between the orchestrator and its worker fleet.
//!
//! [`Transport`] abstracts "hand this work order to some worker and tell
//! me what happens": the orchestrator never knows whether its workers are
//! threads in this process ([`LocalPoolTransport`]) or separate processes
//! coordinating through a filesystem spool ([`crate::SpoolTransport`]),
//! the machine-crossing stand-in.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use chatfuzz::campaign::{BatchOutcome, CampaignSnapshot};
use chatfuzz::persist::Recovery;
use chatfuzz_coverage::Space;

use crate::lease::{checkpoint_path, LeaseId, WorkOrder};
use crate::orchestrator::OrchestrateError;

/// What a transport reports back about in-flight leases.
///
/// Events are `Clone` because a lossy transport may deliver one more
/// than once — the fault-injection layer duplicates and reorders polled
/// batches, and the orchestrator's absorption must tolerate both.
#[derive(Debug, Clone)]
pub enum TransportEvent {
    /// The worker serving a lease made progress (one batch completed).
    Heartbeat {
        /// Lease being served.
        lease: LeaseId,
        /// Attempt the heartbeat belongs to.
        attempt: u32,
        /// Absolute tests run so far (including any resumed base).
        tests_run: usize,
        /// Transport-scoped worker identity (thread slot or process id).
        worker: u64,
    },
    /// The lease ran to its stop condition; here is the final snapshot.
    Completed {
        /// Lease that finished.
        lease: LeaseId,
        /// Attempt the result belongs to — stale attempts are discarded.
        attempt: u32,
        /// The finished shard snapshot.
        snapshot: Box<CampaignSnapshot>,
    },
    /// The lease crashed or its result could not be recovered.
    Failed {
        /// Lease that failed.
        lease: LeaseId,
        /// Attempt that failed.
        attempt: u32,
        /// Human-readable cause.
        detail: String,
    },
}

/// A worker as the transport sees it.
#[derive(Debug, Clone)]
pub struct WorkerStatus {
    /// Transport-scoped identity (thread slot or OS process id).
    pub id: u64,
    /// Whether the worker can still take or finish work.
    pub alive: bool,
    /// The lease the worker is currently serving, if known.
    pub lease: Option<LeaseId>,
}

/// Moves work orders to workers and progress back to the orchestrator.
pub trait Transport {
    /// Queues a work order for the fleet. Returns once the order is
    /// durably queued, not once a worker picks it up.
    fn dispatch(&mut self, order: WorkOrder) -> Result<(), OrchestrateError>;

    /// Drains everything that happened since the last poll.
    fn poll(&mut self) -> Vec<TransportEvent>;

    /// Recovers the best auto-checkpoint a given attempt left behind,
    /// for reassignment after revocation (or merge after quarantine).
    /// The [`Recovery`] carries what was stepped over on the way —
    /// fallback depth, checksum failures, quarantined files — so the
    /// orchestrator can surface degradation instead of hiding it.
    fn checkpoint(&self, lease: LeaseId, attempt: u32, space: &Arc<Space>) -> Recovery;

    /// Forgets a lease attempt: an undelivered order is withdrawn, and any
    /// late result from the attempt will be dropped by the orchestrator's
    /// attempt check. Default: nothing to withdraw.
    fn revoke(&mut self, _lease: LeaseId, _attempt: u32) {}

    /// Sweeps orphaned temp files a crashed worker left behind
    /// mid-`temp+rename`, returning how many were removed. Called by the
    /// orchestrator at startup and at each generation boundary so a
    /// crash-looping fleet never accretes unbounded litter. Default:
    /// nothing to sweep.
    fn sweep_orphans(&mut self) -> usize {
        0
    }

    /// Live/dead view of the fleet.
    fn workers(&self) -> Vec<WorkerStatus>;

    /// Stops accepting work and winds the fleet down.
    fn shutdown(&mut self);
}

/// In-process fleet: N worker threads fed from a shared queue.
///
/// Heartbeats are emitted per batch through a campaign observer;
/// auto-checkpoints go to disk exactly like the spool transport's, so
/// revocation and reassignment exercise one code path for both.
pub struct LocalPoolTransport {
    job_tx: Option<Sender<WorkOrder>>,
    event_rx: Receiver<TransportEvent>,
    handles: Vec<JoinHandle<()>>,
    serving: Arc<Vec<Mutex<Option<LeaseId>>>>,
    checkpoint_dir: PathBuf,
}

impl LocalPoolTransport {
    /// Spawns `workers` threads; auto-checkpoints land in `checkpoint_dir`.
    pub fn new(workers: usize, checkpoint_dir: impl Into<PathBuf>) -> LocalPoolTransport {
        assert!(workers > 0, "a worker pool needs at least one worker");
        let checkpoint_dir = checkpoint_dir.into();
        let (job_tx, job_rx) = channel::<WorkOrder>();
        let (event_tx, event_rx) = channel::<TransportEvent>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let serving: Arc<Vec<Mutex<Option<LeaseId>>>> =
            Arc::new((0..workers).map(|_| Mutex::new(None)).collect());
        let handles = (0..workers)
            .map(|slot| {
                let job_rx = Arc::clone(&job_rx);
                let event_tx = event_tx.clone();
                let serving = Arc::clone(&serving);
                let dir = checkpoint_dir.clone();
                std::thread::spawn(move || loop {
                    // Take the lock only long enough to receive one job so
                    // idle workers don't starve each other.
                    let order = {
                        let rx = job_rx.lock().expect("job queue lock");
                        rx.recv()
                    };
                    let Ok(order) = order else { break };
                    *serving[slot].lock().expect("serving lock") = Some(order.lease);
                    let event = run_order(order, slot as u64, &dir, &event_tx);
                    let _ = event_tx.send(event);
                    *serving[slot].lock().expect("serving lock") = None;
                })
            })
            .collect();
        LocalPoolTransport { job_tx: Some(job_tx), event_rx, handles, serving, checkpoint_dir }
    }
}

/// Runs one work order to completion on the current thread, streaming
/// heartbeats, and returns the terminal event.
fn run_order(
    order: WorkOrder,
    worker: u64,
    checkpoint_dir: &std::path::Path,
    event_tx: &Sender<TransportEvent>,
) -> TransportEvent {
    let lease = order.lease;
    let attempt = order.attempt;
    let heartbeat_tx = event_tx.clone();
    let outcome = catch_unwind(AssertUnwindSafe(move || {
        let mut builder = (order.build)(order.spec)
            .telemetry(order.telemetry)
            .auto_checkpoint(
                checkpoint_path(checkpoint_dir, lease, attempt),
                order.checkpoint_every,
            )
            .observer(move |outcome: &BatchOutcome| {
                let _ = heartbeat_tx.send(TransportEvent::Heartbeat {
                    lease,
                    attempt,
                    tests_run: outcome.tests_total,
                    worker,
                });
            });
        if let Some(snapshot) = order.resume {
            builder = builder.resume(snapshot);
        }
        let mut campaign = builder.build();
        campaign.run_until(&[order.stop]);
        campaign.snapshot()
    }));
    match outcome {
        Ok(snapshot) => TransportEvent::Completed { lease, attempt, snapshot: Box::new(snapshot) },
        Err(panic) => {
            let detail = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "worker panicked".to_string());
            TransportEvent::Failed { lease, attempt, detail }
        }
    }
}

impl Transport for LocalPoolTransport {
    fn dispatch(&mut self, order: WorkOrder) -> Result<(), OrchestrateError> {
        let tx = self.job_tx.as_ref().ok_or_else(|| OrchestrateError::Transport {
            lease: order.lease.to_string(),
            detail: "transport already shut down".to_string(),
        })?;
        tx.send(order).map_err(|e| OrchestrateError::Transport {
            lease: e.0.lease.to_string(),
            detail: "worker pool hung up".to_string(),
        })
    }

    fn poll(&mut self) -> Vec<TransportEvent> {
        self.event_rx.try_iter().collect()
    }

    fn checkpoint(&self, lease: LeaseId, attempt: u32, space: &Arc<Space>) -> Recovery {
        let recovery = chatfuzz::load_latest_valid(
            &checkpoint_path(&self.checkpoint_dir, lease, attempt),
            space,
        );
        log_checkpoint_recovery(lease, attempt, &recovery);
        recovery
    }

    fn sweep_orphans(&mut self) -> usize {
        sweep_tmp_files([self.checkpoint_dir.clone()])
    }

    fn workers(&self) -> Vec<WorkerStatus> {
        self.handles
            .iter()
            .enumerate()
            .map(|(slot, handle)| WorkerStatus {
                id: slot as u64,
                alive: !handle.is_finished(),
                lease: *self.serving[slot].lock().expect("serving lock"),
            })
            .collect()
    }

    fn shutdown(&mut self) {
        // Closing the job channel lets every worker drain and exit.
        self.job_tx = None;
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for LocalPoolTransport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Logs a checkpoint recovery's one-line [`Recovery::summary`] through
/// the process-global telemetry stream, so neither transport silently
/// absorbs fallback depth or quarantines on the reassignment path. The
/// per-file persist metrics are already banked by `load_latest_valid`
/// itself; this event adds the lease context.
pub(crate) fn log_checkpoint_recovery(lease: LeaseId, attempt: u32, recovery: &Recovery) {
    let sink = chatfuzz_telemetry::global();
    if sink.is_enabled() {
        sink.event(
            "checkpoint_recovery",
            vec![
                ("lease", lease.to_string().into()),
                ("attempt", attempt.into()),
                ("summary", recovery.summary().into()),
            ],
        );
    }
}

/// Removes every orphaned temp file directly inside the given
/// directories and returns the count. Both temp naming schemes in the
/// workspace — persist's `{file}.tmp` and the spool's
/// `{stem}.tmp.{pid}` — contain `.tmp`, while real artefacts
/// (snapshots, lineage rotations, quarantined corpses) never do, so the
/// name test is the whole policy.
pub(crate) fn sweep_tmp_files(dirs: impl IntoIterator<Item = PathBuf>) -> usize {
    let mut swept = 0;
    for dir in dirs {
        let Ok(entries) = std::fs::read_dir(&dir) else { continue };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let is_tmp = name.to_str().is_some_and(|n| n.contains(".tmp"));
            if is_tmp && std::fs::remove_file(entry.path()).is_ok() {
                swept += 1;
            }
        }
    }
    swept
}

/// An always-empty transport for tests that drive the orchestrator's
/// bookkeeping by hand.
#[cfg(test)]
pub(crate) struct NullTransport {
    pub dispatched: Vec<WorkOrder>,
    pub events: Vec<TransportEvent>,
    pub checkpoints: std::collections::HashMap<(LeaseId, u32), CampaignSnapshot>,
    pub revoked: Vec<(LeaseId, u32)>,
}

#[cfg(test)]
impl NullTransport {
    pub fn new() -> NullTransport {
        NullTransport {
            dispatched: Vec::new(),
            events: Vec::new(),
            checkpoints: std::collections::HashMap::new(),
            revoked: Vec::new(),
        }
    }
}

#[cfg(test)]
impl Transport for NullTransport {
    fn dispatch(&mut self, order: WorkOrder) -> Result<(), OrchestrateError> {
        self.dispatched.push(order);
        Ok(())
    }

    fn poll(&mut self) -> Vec<TransportEvent> {
        std::mem::take(&mut self.events)
    }

    fn checkpoint(&self, lease: LeaseId, attempt: u32, _space: &Arc<Space>) -> Recovery {
        match self.checkpoints.get(&(lease, attempt)) {
            Some(snapshot) => Recovery::found(snapshot.clone()),
            None => Recovery::default(),
        }
    }

    fn revoke(&mut self, lease: LeaseId, attempt: u32) {
        self.revoked.push((lease, attempt));
    }

    fn workers(&self) -> Vec<WorkerStatus> {
        Vec::new()
    }

    fn shutdown(&mut self) {}
}
