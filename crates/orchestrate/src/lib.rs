//! Campaign orchestration: elastic worker fleets with leases,
//! merge-then-continue, and a streaming status API.
//!
//! The `shard` module in the core crate scales one campaign across N
//! workers *once*: split, run, merge. This crate makes that loop
//! long-lived and fault-tolerant. An [`Orchestrator`] owns a registry of
//! tenant campaigns ([`FleetConfig`]), splits each into shard **leases**,
//! and hands the leases to workers over a pluggable [`Transport`]:
//!
//! * [`LocalPoolTransport`] — N worker threads in this process, fed from
//!   a shared queue;
//! * [`SpoolTransport`] / [`SpoolWorker`] — separate worker processes
//!   coordinating through a spool directory of atomically-renamed files,
//!   the machine-crossing stand-in (any shared filesystem works).
//!
//! # Lease lifecycle
//!
//! A lease is one shard of one campaign generation, owned by exactly one
//! worker at a time:
//!
//! ```text
//! issued ──► heartbeating ──► completed
//!    │             │
//!    └─────────────┴────────► revoked ──► reissued (attempt + 1)
//!                                │
//!                                └──► quarantined (terminal)
//! ```
//!
//! Workers heartbeat once per batch. A lease whose worker misses its
//! deadline is **revoked** and reissued from the worker's freshest
//! auto-checkpoint, so a SIGKILLed worker costs the fleet at most one
//! checkpoint interval of work. Reissues carry a bumped attempt number
//! and every artefact (heartbeat, checkpoint, result) is attempt-scoped,
//! so a zombie worker finishing a revoked attempt is simply ignored.
//!
//! # Recovery semantics
//!
//! Every failure path degrades gracefully instead of wedging the fleet:
//!
//! * **Checkpoint recovery walks a lineage.** Auto-checkpoints are
//!   written with `persist::save_snapshot_rotated`, keeping the last K
//!   generations behind the live file (`.1`, `.2`, …). Recovery uses
//!   [`chatfuzz::persist::load_latest_valid`]: a torn or
//!   corrupted-in-place file (every snapshot carries a content checksum
//!   since schema v5) is renamed to `*.quarantined` — never deleted —
//!   and the next lineage entry is tried, newest-first, across every
//!   prior attempt, ultimately falling back to the generation's pooled
//!   base.
//! * **Dispatch retries with backoff.** A transient transport error
//!   (a flaky filesystem, an injected io fault) is retried a few times
//!   before it becomes an [`OrchestrateError`].
//! * **Exhausted or crash-looping leases are quarantined.** A lease
//!   that burns `max_attempts`, or keeps dying with zero progress, goes
//!   to the terminal `Quarantined` state: its shard's last-good
//!   checkpoint still merges into the generation, the surviving fan-out
//!   continues, and the next generation re-splits at full width. Only a
//!   generation in which *no* lease completed escalates to
//!   [`OrchestrateError::LeaseExhausted`].
//! * **Lossy delivery is tolerated.** Terminal leases ignore duplicate
//!   and reordered transport events, so an at-least-once transport
//!   cannot double-merge a result.
//! * **Crash litter is swept.** Orphaned `*.tmp` files left by workers
//!   that died mid-`temp+rename` are removed at orchestrator startup
//!   and at every generation boundary.
//!
//! All of it is visible in [`OrchestratorStatus`]: quarantined leases,
//! the deepest lineage fallback used, checksum failures stepped over,
//! and swept temp files.
//!
//! # Merge-then-continue
//!
//! On a configurable cadence (`lease_tests` per generation) the
//! orchestrator collects all shard snapshots, merges them with the
//! sharding merge (coverage unions, corpora pool, counters add once over
//! the shared base), optionally distills the pooled corpus, and
//! re-splits the merged snapshot into a fresh fan-out — every shard of
//! the next generation continues from pooled coverage and a pooled
//! corpus instead of its own island, with freshly decorrelated RNG
//! streams.
//!
//! # Status
//!
//! [`Orchestrator::status`] is the poll API and
//! [`Orchestrator::run_streaming`] the push API; both yield
//! [`OrchestratorStatus`]: per-campaign coverage, throughput, per-arm
//! bandit statistics, lease states, generation number, and live/dead
//! workers. The `orchestrate` binary in the bench crate renders it.
//!
//! ```
//! use std::sync::Arc;
//! use chatfuzz::campaign::CampaignBuilder;
//! use chatfuzz::shard::ShardSpec;
//! use chatfuzz_baselines::RandomRegression;
//! use chatfuzz_orchestrate::{FleetConfig, LocalPoolTransport, Orchestrator};
//! use chatfuzz_rtl::{Dut, Rocket, RocketConfig};
//!
//! let space = Rocket::new(RocketConfig::default()).space().clone();
//! let ckpt = std::env::temp_dir().join(format!("chatfuzz-orch-doc-{}", std::process::id()));
//! let mut orchestrator = Orchestrator::new(LocalPoolTransport::new(2, &ckpt));
//! let fleet = orchestrator.register(FleetConfig {
//!     fan_out: 2,
//!     lease_tests: 32,
//!     total_tests: 64,
//!     ..FleetConfig::new("rocket", 7, space, Arc::new(|spec: ShardSpec| {
//!         CampaignBuilder::new(|| {
//!             Box::new(Rocket::new(RocketConfig::default())) as Box<dyn Dut>
//!         })
//!         .batch_size(8)
//!         .generator(RandomRegression::new(spec.seed, 16))
//!     }))
//! });
//! orchestrator.run_to_completion().expect("fleet completes");
//! let merged = orchestrator.final_snapshot(fleet).expect("final pooled snapshot");
//! assert_eq!(merged.tests_run(), 64);
//! assert!(orchestrator.status().campaigns[0].done);
//! # let _ = std::fs::remove_dir_all(&ckpt);
//! ```

pub mod lease;
pub mod orchestrator;
pub mod spool;
pub mod transport;

pub use lease::{DistillHook, LeaseBuilder, LeaseId, LeaseState, WorkOrder};
pub use orchestrator::{
    CampaignStatus, FleetConfig, LeaseStatus, OrchestrateError, Orchestrator, OrchestratorStatus,
};
pub use spool::{SpoolTransport, SpoolWorker, ENV_SPOOL_DIR};
pub use transport::{LocalPoolTransport, Transport, TransportEvent, WorkerStatus};
