//! Lease identity and the work orders that carry leases to workers.
//!
//! A *lease* is the orchestrator's unit of delegation: one shard of one
//! campaign generation, handed to exactly one worker at a time. Its
//! lifecycle is
//!
//! ```text
//! issued ──► heartbeating ──► completed
//!    │             │
//!    └─────────────┴────────► revoked ──► reissued (attempt + 1)
//!                                │
//!                                └──► quarantined (attempts exhausted
//!                                     or crash-looping; terminal)
//! ```
//!
//! A lease that misses its heartbeat deadline is revoked and reissued
//! under a higher *attempt* number, resuming from the worker's last
//! auto-checkpoint. Results and checkpoints are attempt-scoped, so a
//! zombie worker finishing a revoked attempt cannot corrupt the fleet:
//! its late output is simply ignored. A lease that exhausts its attempt
//! budget (or crash-loops without progress) is *quarantined*: its
//! shard's last-good checkpoint still merges, the rest of the fleet
//! continues, and the degradation is surfaced in status rather than
//! wedging the generation.

use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use chatfuzz::campaign::{CampaignBuilder, CampaignSnapshot, StopCondition};
use chatfuzz::shard::ShardSpec;
use chatfuzz_coverage::Space;
use chatfuzz_telemetry::TelemetrySink;

/// A tenant's campaign template: given a shard spec, produce a fully
/// configured builder (factory, generators, scheduler, batch size). The
/// orchestrator layers resume snapshots, checkpointing, and heartbeat
/// observers on top before building.
pub type LeaseBuilder = Arc<dyn Fn(ShardSpec) -> CampaignBuilder<'static> + Send + Sync>;

/// A hook run on every merged snapshot before it is re-split — the seam
/// where `chatfuzz_evolve::Corpus::distill` plugs in without this crate
/// depending on the evolve crate.
pub type DistillHook = Arc<dyn Fn(&mut CampaignSnapshot) + Send + Sync>;

/// Identifies one lease: campaign slot, generation, fan-out index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LeaseId {
    /// Campaign slot in the orchestrator's registry.
    pub campaign: usize,
    /// Merge-then-continue generation the lease belongs to.
    pub generation: u64,
    /// Fan-out index within the generation.
    pub index: usize,
}

impl fmt::Display for LeaseId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}/g{}/l{}", self.campaign, self.generation, self.index)
    }
}

/// Where a lease is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeaseState {
    /// Dispatched, no heartbeat seen yet for the current attempt.
    Issued,
    /// At least one heartbeat received for the current attempt.
    Heartbeating,
    /// The current attempt returned its final snapshot.
    Completed,
    /// The previous attempt missed its deadline; a reissue is in flight.
    Revoked,
    /// Terminal failure: the lease exhausted its attempt budget or
    /// crash-looped. Its last-good checkpoint (if any) still merges;
    /// no further attempts are issued.
    Quarantined,
}

impl LeaseState {
    /// Whether the lease can change state again. Terminal leases ignore
    /// every further event — including duplicates a lossy transport
    /// redelivers.
    pub fn is_terminal(self) -> bool {
        matches!(self, LeaseState::Completed | LeaseState::Quarantined)
    }
}

impl fmt::Display for LeaseState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LeaseState::Issued => "issued",
            LeaseState::Heartbeating => "heartbeating",
            LeaseState::Completed => "completed",
            LeaseState::Revoked => "revoked",
            LeaseState::Quarantined => "quarantined",
        })
    }
}

/// Everything a worker needs to run one attempt of one lease.
#[derive(Clone)]
pub struct WorkOrder {
    /// The lease being served.
    pub lease: LeaseId,
    /// Reissue counter; results carry it back so stale attempts are ignored.
    pub attempt: u32,
    /// Registry name of the owning campaign (spool workers look their
    /// builder up by this name).
    pub campaign: String,
    /// Shard spec the builder is instantiated with.
    pub spec: ShardSpec,
    /// Pooled snapshot to continue from (`None` for generation 0).
    pub resume: Option<CampaignSnapshot>,
    /// Absolute stop condition scoping the lease.
    pub stop: StopCondition,
    /// Auto-checkpoint cadence in batches — the worker's crash-loss bound.
    pub checkpoint_every: usize,
    /// The tenant's campaign template.
    pub build: LeaseBuilder,
    /// Coverage space, needed to load checkpoints and results.
    pub space: Arc<Space>,
    /// The tenant's telemetry sink, attached to the lease campaign by
    /// in-process transports (out-of-process workers fall back to their
    /// process-global sink — a handle cannot cross an exec boundary).
    pub telemetry: TelemetrySink,
}

impl fmt::Debug for WorkOrder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkOrder")
            .field("lease", &self.lease)
            .field("attempt", &self.attempt)
            .field("campaign", &self.campaign)
            .field("spec", &self.spec)
            .field("resume", &self.resume.is_some())
            .field("stop", &self.stop)
            .field("checkpoint_every", &self.checkpoint_every)
            .finish()
    }
}

/// Canonical file stem for attempt-scoped artefacts of a lease.
pub(crate) fn artefact_stem(lease: LeaseId, attempt: u32) -> String {
    format!("c{}-g{}-l{}-a{}", lease.campaign, lease.generation, lease.index, attempt)
}

/// Attempt-scoped checkpoint path under `dir`.
pub(crate) fn checkpoint_path(dir: &Path, lease: LeaseId, attempt: u32) -> PathBuf {
    dir.join(format!("{}.ckpt.json", artefact_stem(lease, attempt)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_ids_render_and_order() {
        let a = LeaseId { campaign: 0, generation: 2, index: 3 };
        assert_eq!(a.to_string(), "c0/g2/l3");
        let b = LeaseId { campaign: 0, generation: 3, index: 0 };
        assert!(a < b);
        assert_eq!(artefact_stem(a, 1), "c0-g2-l3-a1");
        assert_eq!(
            checkpoint_path(Path::new("/tmp/x"), a, 1),
            PathBuf::from("/tmp/x/c0-g2-l3-a1.ckpt.json")
        );
    }
}
