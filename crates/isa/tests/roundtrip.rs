//! Property tests: every constructible instruction encodes, decodes back to
//! itself, and survives a disassembly round through `decode`.

use chatfuzz_isa::{
    decode, encode, AluOp, AmoOp, BranchCond, CsrOp, CsrSrc, Instr, MemWidth, MulDivOp, Reg,
    SystemOp,
};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(|i| Reg::new(i).unwrap())
}

fn arb_mem_width() -> impl Strategy<Value = MemWidth> {
    prop_oneof![Just(MemWidth::B), Just(MemWidth::H), Just(MemWidth::W), Just(MemWidth::D)]
}

fn arb_amo_width() -> impl Strategy<Value = MemWidth> {
    prop_oneof![Just(MemWidth::W), Just(MemWidth::D)]
}

fn arb_alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Sll),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Xor),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Or),
        Just(AluOp::And),
    ]
}

fn arb_muldiv_op() -> impl Strategy<Value = MulDivOp> {
    prop_oneof![
        Just(MulDivOp::Mul),
        Just(MulDivOp::Mulh),
        Just(MulDivOp::Mulhsu),
        Just(MulDivOp::Mulhu),
        Just(MulDivOp::Div),
        Just(MulDivOp::Divu),
        Just(MulDivOp::Rem),
        Just(MulDivOp::Remu),
    ]
}

fn arb_branch_cond() -> impl Strategy<Value = BranchCond> {
    prop_oneof![
        Just(BranchCond::Eq),
        Just(BranchCond::Ne),
        Just(BranchCond::Lt),
        Just(BranchCond::Ge),
        Just(BranchCond::Ltu),
        Just(BranchCond::Geu),
    ]
}

fn arb_amo_op() -> impl Strategy<Value = AmoOp> {
    prop_oneof![
        Just(AmoOp::Swap),
        Just(AmoOp::Add),
        Just(AmoOp::Xor),
        Just(AmoOp::And),
        Just(AmoOp::Or),
        Just(AmoOp::Min),
        Just(AmoOp::Max),
        Just(AmoOp::Minu),
        Just(AmoOp::Maxu),
    ]
}

fn arb_csr_op() -> impl Strategy<Value = CsrOp> {
    prop_oneof![Just(CsrOp::Rw), Just(CsrOp::Rs), Just(CsrOp::Rc)]
}

/// Generates only encodable instructions (field constraints respected).
fn arb_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (arb_reg(), -0x8_0000i64..0x8_0000).prop_map(|(rd, v)| Instr::Lui { rd, imm: v << 12 }),
        (arb_reg(), -0x8_0000i64..0x8_0000).prop_map(|(rd, v)| Instr::Auipc { rd, imm: v << 12 }),
        (arb_reg(), -0x10_0000i64 / 2..0x10_0000 / 2)
            .prop_map(|(rd, v)| Instr::Jal { rd, offset: v * 2 }),
        (arb_reg(), arb_reg(), -2048i64..=2047).prop_map(|(rd, rs1, offset)| Instr::Jalr {
            rd,
            rs1,
            offset
        }),
        (arb_branch_cond(), arb_reg(), arb_reg(), -2048i64..2048)
            .prop_map(|(cond, rs1, rs2, v)| Instr::Branch { cond, rs1, rs2, offset: v * 2 }),
        (arb_mem_width(), any::<bool>(), arb_reg(), arb_reg(), -2048i64..=2047).prop_map(
            |(width, signed, rd, rs1, offset)| {
                let signed = signed || width == MemWidth::D; // ldu doesn't exist
                Instr::Load { width, signed, rd, rs1, offset }
            }
        ),
        (arb_mem_width(), arb_reg(), arb_reg(), -2048i64..=2047)
            .prop_map(|(width, rs2, rs1, offset)| Instr::Store { width, rs2, rs1, offset }),
        (arb_alu_op(), arb_reg(), arb_reg(), -2048i64..=2047, any::<bool>()).prop_filter_map(
            "valid op-imm",
            |(op, rd, rs1, imm, word)| {
                if !op.has_imm_form() || (word && !op.has_word_form()) {
                    return None;
                }
                let imm =
                    if op.is_shift() { imm.rem_euclid(if word { 32 } else { 64 }) } else { imm };
                Some(Instr::OpImm { op, rd, rs1, imm, word })
            }
        ),
        (arb_alu_op(), arb_reg(), arb_reg(), arb_reg(), any::<bool>()).prop_filter_map(
            "valid op",
            |(op, rd, rs1, rs2, word)| {
                if word && !op.has_word_form() {
                    return None;
                }
                Some(Instr::Op { op, rd, rs1, rs2, word })
            }
        ),
        (arb_muldiv_op(), arb_reg(), arb_reg(), arb_reg(), any::<bool>()).prop_filter_map(
            "valid muldiv",
            |(op, rd, rs1, rs2, word)| {
                if word && !op.has_word_form() {
                    return None;
                }
                Some(Instr::MulDiv { op, rd, rs1, rs2, word })
            }
        ),
        (
            arb_amo_op(),
            arb_amo_width(),
            arb_reg(),
            arb_reg(),
            arb_reg(),
            any::<bool>(),
            any::<bool>()
        )
            .prop_map(|(op, width, rd, rs1, rs2, aq, rl)| Instr::Amo {
                op,
                width,
                rd,
                rs1,
                rs2,
                aq,
                rl
            }),
        (arb_amo_width(), arb_reg(), arb_reg(), any::<bool>(), any::<bool>())
            .prop_map(|(width, rd, rs1, aq, rl)| Instr::LoadReserved { width, rd, rs1, aq, rl }),
        (arb_amo_width(), arb_reg(), arb_reg(), arb_reg(), any::<bool>(), any::<bool>()).prop_map(
            |(width, rd, rs1, rs2, aq, rl)| Instr::StoreConditional { width, rd, rs1, rs2, aq, rl }
        ),
        (arb_csr_op(), arb_reg(), 0u16..0x1000, arb_reg())
            .prop_map(|(op, rd, csr, rs1)| Instr::Csr { op, rd, csr, src: CsrSrc::Reg(rs1) }),
        (arb_csr_op(), arb_reg(), 0u16..0x1000, 0u8..32)
            .prop_map(|(op, rd, csr, imm)| Instr::Csr { op, rd, csr, src: CsrSrc::Imm(imm) }),
        (0u8..16, 0u8..16).prop_map(|(pred, succ)| Instr::Fence { pred, succ }),
        Just(Instr::FenceI),
        prop_oneof![
            Just(SystemOp::Ecall),
            Just(SystemOp::Ebreak),
            Just(SystemOp::Mret),
            Just(SystemOp::Sret),
            Just(SystemOp::Wfi),
        ]
        .prop_map(Instr::System),
        (arb_reg(), arb_reg()).prop_map(|(rs1, rs2)| Instr::SfenceVma { rs1, rs2 }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    /// encode -> decode is the identity on constructible instructions.
    #[test]
    fn encode_decode_roundtrip(instr in arb_instr()) {
        let word = encode(&instr).expect("arb_instr must be encodable");
        let back = decode(word).expect("encoded word must decode");
        prop_assert_eq!(back, instr);
    }

    /// Decoding any word either fails or yields an instruction that
    /// re-encodes to a word that decodes to the same instruction
    /// (idempotence over the canonicalising round).
    #[test]
    fn decode_encode_stabilises(word in any::<u32>()) {
        if let Ok(instr) = decode(word) {
            let canon = encode(&instr).expect("decoded instruction must encode");
            let again = decode(canon).expect("canonical word must decode");
            prop_assert_eq!(again, instr);
        }
    }

    /// Display output is non-empty and stable for valid instructions.
    #[test]
    fn display_never_empty(instr in arb_instr()) {
        prop_assert!(!instr.to_string().is_empty());
    }

    /// The disassembler reward agent agrees with `decode` word by word.
    #[test]
    fn count_valid_invalid_matches_decode(words in proptest::collection::vec(any::<u32>(), 0..64)) {
        let mut bytes = Vec::new();
        for w in &words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        let (valid, invalid) = chatfuzz_isa::count_valid_invalid(&bytes);
        let expect_valid = words.iter().filter(|w| decode(**w).is_ok()).count();
        prop_assert_eq!(valid, expect_valid);
        prop_assert_eq!(invalid, words.len() - expect_valid);
    }
}
