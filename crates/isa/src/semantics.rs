//! Pure architectural semantics shared by every simulator in the workspace.
//!
//! Both the golden-model interpreter (`chatfuzz-softcore`) and the
//! microarchitectural cores (`chatfuzz-rtl`) compute results through these
//! functions. Because there is exactly one implementation of each operation,
//! any trace divergence observed by the mismatch detector must come from the
//! *deliberately injected* RocketCore bugs, never from accidental semantic
//! drift between two hand-written interpreters.

use crate::instr::{AluOp, AmoOp, BranchCond, MemWidth, MulDivOp};

/// Evaluates a register/immediate ALU operation.
///
/// When `word` is set the operation is performed on the low 32 bits and the
/// 32-bit result is sign-extended, matching the `*W` instructions.
///
/// # Examples
///
/// ```
/// use chatfuzz_isa::{semantics::alu, AluOp};
///
/// assert_eq!(alu(AluOp::Add, 1, 2, false), 3);
/// // addw wraps at 32 bits and sign-extends.
/// assert_eq!(alu(AluOp::Add, 0x7fff_ffff, 1, true), 0xffff_ffff_8000_0000);
/// ```
pub fn alu(op: AluOp, a: u64, b: u64, word: bool) -> u64 {
    if word {
        let a32 = a as u32;
        let b32 = b as u32;
        let r32: u32 = match op {
            AluOp::Add => a32.wrapping_add(b32),
            AluOp::Sub => a32.wrapping_sub(b32),
            AluOp::Sll => a32.wrapping_shl(b32 & 0x1f),
            AluOp::Srl => a32.wrapping_shr(b32 & 0x1f),
            AluOp::Sra => ((a32 as i32).wrapping_shr(b32 & 0x1f)) as u32,
            // No *W forms exist for these; fall back to the 64-bit result
            // truncated, which the encoder prevents ever being reachable.
            AluOp::Slt | AluOp::Sltu | AluOp::Xor | AluOp::Or | AluOp::And => {
                return alu(op, a, b, false)
            }
        };
        i64::from(r32 as i32) as u64
    } else {
        match op {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Sll => a.wrapping_shl((b & 0x3f) as u32),
            AluOp::Slt => u64::from((a as i64) < (b as i64)),
            AluOp::Sltu => u64::from(a < b),
            AluOp::Xor => a ^ b,
            AluOp::Srl => a.wrapping_shr((b & 0x3f) as u32),
            AluOp::Sra => ((a as i64).wrapping_shr((b & 0x3f) as u32)) as u64,
            AluOp::Or => a | b,
            AluOp::And => a & b,
        }
    }
}

/// Evaluates an M-extension multiply/divide.
///
/// Implements the spec's division-by-zero and signed-overflow conventions
/// (`div x, MIN, -1 = MIN`, `rem x, MIN, -1 = 0`, `div x, y, 0 = -1`,
/// `rem x, y, 0 = x`).
///
/// # Examples
///
/// ```
/// use chatfuzz_isa::{semantics::muldiv, MulDivOp};
///
/// assert_eq!(muldiv(MulDivOp::Div, 7, 0, false), u64::MAX); // div by zero = -1
/// assert_eq!(muldiv(MulDivOp::Rem, 7, 0, false), 7);
/// ```
pub fn muldiv(op: MulDivOp, a: u64, b: u64, word: bool) -> u64 {
    if word {
        let a32 = a as i32;
        let b32 = b as i32;
        let r32: i32 = match op {
            MulDivOp::Mul => a32.wrapping_mul(b32),
            MulDivOp::Div => {
                if b32 == 0 {
                    -1
                } else {
                    a32.wrapping_div(b32)
                }
            }
            MulDivOp::Divu => {
                if b32 == 0 {
                    -1
                } else {
                    ((a32 as u32) / (b32 as u32)) as i32
                }
            }
            MulDivOp::Rem => {
                if b32 == 0 {
                    a32
                } else {
                    a32.wrapping_rem(b32)
                }
            }
            MulDivOp::Remu => {
                if b32 == 0 {
                    a32
                } else {
                    ((a32 as u32) % (b32 as u32)) as i32
                }
            }
            // No *W forms; unreachable through the encoder.
            MulDivOp::Mulh | MulDivOp::Mulhsu | MulDivOp::Mulhu => return muldiv(op, a, b, false),
        };
        i64::from(r32) as u64
    } else {
        match op {
            MulDivOp::Mul => a.wrapping_mul(b),
            MulDivOp::Mulh => {
                let wide = i128::from(a as i64) * i128::from(b as i64);
                (wide >> 64) as u64
            }
            MulDivOp::Mulhsu => {
                let wide = i128::from(a as i64) * (u128::from(b) as i128);
                (wide >> 64) as u64
            }
            MulDivOp::Mulhu => {
                let wide = u128::from(a) * u128::from(b);
                (wide >> 64) as u64
            }
            MulDivOp::Div => {
                let (a, b) = (a as i64, b as i64);
                if b == 0 {
                    u64::MAX
                } else {
                    a.wrapping_div(b) as u64
                }
            }
            MulDivOp::Divu => a.checked_div(b).unwrap_or(u64::MAX),
            MulDivOp::Rem => {
                let (a, b) = (a as i64, b as i64);
                if b == 0 {
                    a as u64
                } else {
                    a.wrapping_rem(b) as u64
                }
            }
            MulDivOp::Remu => {
                if b == 0 {
                    a
                } else {
                    a % b
                }
            }
        }
    }
}

/// Evaluates a conditional-branch comparison.
///
/// # Examples
///
/// ```
/// use chatfuzz_isa::{semantics::branch_taken, BranchCond};
///
/// assert!(branch_taken(BranchCond::Ltu, 1, u64::MAX));
/// assert!(!branch_taken(BranchCond::Lt, 1, u64::MAX)); // -1 signed
/// ```
pub fn branch_taken(cond: BranchCond, a: u64, b: u64) -> bool {
    match cond {
        BranchCond::Eq => a == b,
        BranchCond::Ne => a != b,
        BranchCond::Lt => (a as i64) < (b as i64),
        BranchCond::Ge => (a as i64) >= (b as i64),
        BranchCond::Ltu => a < b,
        BranchCond::Geu => a >= b,
    }
}

/// Computes the new memory value of an AMO, given the old memory value and
/// the register operand. For `W`-width AMOs both operands are interpreted as
/// 32-bit values and the result is truncated by the caller's store.
pub fn amo(op: AmoOp, old: u64, operand: u64, width: MemWidth) -> u64 {
    match width {
        MemWidth::W => {
            let old32 = old as i32;
            let src32 = operand as i32;
            let r = match op {
                AmoOp::Swap => src32,
                AmoOp::Add => old32.wrapping_add(src32),
                AmoOp::Xor => old32 ^ src32,
                AmoOp::And => old32 & src32,
                AmoOp::Or => old32 | src32,
                AmoOp::Min => old32.min(src32),
                AmoOp::Max => old32.max(src32),
                AmoOp::Minu => ((old32 as u32).min(src32 as u32)) as i32,
                AmoOp::Maxu => ((old32 as u32).max(src32 as u32)) as i32,
            };
            r as u32 as u64
        }
        _ => match op {
            AmoOp::Swap => operand,
            AmoOp::Add => old.wrapping_add(operand),
            AmoOp::Xor => old ^ operand,
            AmoOp::And => old & operand,
            AmoOp::Or => old | operand,
            AmoOp::Min => (old as i64).min(operand as i64) as u64,
            AmoOp::Max => (old as i64).max(operand as i64) as u64,
            AmoOp::Minu => old.min(operand),
            AmoOp::Maxu => old.max(operand),
        },
    }
}

/// Sign- or zero-extends a loaded value of the given width to 64 bits.
pub fn extend_loaded(raw: u64, width: MemWidth, signed: bool) -> u64 {
    match (width, signed) {
        (MemWidth::B, true) => i64::from(raw as u8 as i8) as u64,
        (MemWidth::B, false) => u64::from(raw as u8),
        (MemWidth::H, true) => i64::from(raw as u16 as i16) as u64,
        (MemWidth::H, false) => u64::from(raw as u16),
        (MemWidth::W, true) => i64::from(raw as u32 as i32) as u64,
        (MemWidth::W, false) => u64::from(raw as u32),
        (MemWidth::D, _) => raw,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_reference_values() {
        assert_eq!(alu(AluOp::Sub, 0, 1, false), u64::MAX);
        assert_eq!(alu(AluOp::Slt, u64::MAX, 0, false), 1); // -1 < 0 signed
        assert_eq!(alu(AluOp::Sltu, u64::MAX, 0, false), 0);
        assert_eq!(alu(AluOp::Sra, 0x8000_0000_0000_0000, 63, false), u64::MAX);
        assert_eq!(alu(AluOp::Srl, 0x8000_0000_0000_0000, 63, false), 1);
        // Shift amounts are masked to 6 bits.
        assert_eq!(alu(AluOp::Sll, 1, 64, false), 1);
    }

    #[test]
    fn alu_word_sign_extension() {
        assert_eq!(alu(AluOp::Add, 0xffff_ffff, 1, true), 0);
        assert_eq!(alu(AluOp::Sll, 1, 31, true), 0xffff_ffff_8000_0000);
        assert_eq!(alu(AluOp::Sra, 0x8000_0000, 31, true), u64::MAX);
        // Word shifts mask to 5 bits.
        assert_eq!(alu(AluOp::Sll, 1, 32, true), 1);
    }

    #[test]
    fn division_conventions() {
        assert_eq!(muldiv(MulDivOp::Div, 1, 0, false), u64::MAX);
        assert_eq!(muldiv(MulDivOp::Divu, 1, 0, false), u64::MAX);
        assert_eq!(muldiv(MulDivOp::Rem, 5, 0, false), 5);
        assert_eq!(muldiv(MulDivOp::Remu, 5, 0, false), 5);
        // Signed overflow: MIN / -1 = MIN, MIN % -1 = 0.
        let min = i64::MIN as u64;
        assert_eq!(muldiv(MulDivOp::Div, min, u64::MAX, false), min);
        assert_eq!(muldiv(MulDivOp::Rem, min, u64::MAX, false), 0);
    }

    #[test]
    fn word_division_conventions() {
        let min32 = i64::from(i32::MIN) as u64;
        assert_eq!(muldiv(MulDivOp::Div, min32, u64::MAX, true), min32);
        assert_eq!(muldiv(MulDivOp::Rem, min32, u64::MAX, true), 0);
        assert_eq!(muldiv(MulDivOp::Div, 7, 0, true), u64::MAX);
    }

    #[test]
    fn mulh_variants() {
        assert_eq!(muldiv(MulDivOp::Mulhu, u64::MAX, u64::MAX, false), u64::MAX - 1);
        assert_eq!(muldiv(MulDivOp::Mulh, u64::MAX, u64::MAX, false), 0); // (-1)*(-1)=1
        assert_eq!(muldiv(MulDivOp::Mulhsu, u64::MAX, u64::MAX, false), u64::MAX);
    }

    #[test]
    fn amo_min_max_signedness() {
        assert_eq!(amo(AmoOp::Min, u64::MAX, 1, MemWidth::D), u64::MAX); // -1 < 1
        assert_eq!(amo(AmoOp::Minu, u64::MAX, 1, MemWidth::D), 1);
        assert_eq!(amo(AmoOp::Max, u64::MAX, 1, MemWidth::D), 1);
        assert_eq!(amo(AmoOp::Maxu, u64::MAX, 1, MemWidth::D), u64::MAX);
    }

    #[test]
    fn amo_word_truncation() {
        assert_eq!(amo(AmoOp::Add, 0xffff_ffff, 1, MemWidth::W), 0);
        assert_eq!(amo(AmoOp::Swap, 0, 0x1_2345_6789, MemWidth::W), 0x2345_6789);
    }

    #[test]
    fn load_extension() {
        assert_eq!(extend_loaded(0x80, MemWidth::B, true), 0xffff_ffff_ffff_ff80);
        assert_eq!(extend_loaded(0x80, MemWidth::B, false), 0x80);
        assert_eq!(extend_loaded(0x8000_0000, MemWidth::W, true), 0xffff_ffff_8000_0000);
        assert_eq!(extend_loaded(0x8000_0000, MemWidth::W, false), 0x8000_0000);
    }
}
