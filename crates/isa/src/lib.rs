//! RISC-V RV64IMA+Zicsr+Zifencei instruction-set tooling for ChatFuzz.
//!
//! This crate is the shared substrate of the whole reproduction: it defines
//! the decoded instruction model ([`Instr`]), a binary [`decode`]r and
//! [`encode`]r, a textual disassembler, an [`asm`] program builder used by
//! the corpus generator, the CSR and exception name spaces, and the pure
//! [`semantics`] helpers that both the golden-model simulator and the
//! microarchitectural simulators call into (so that architectural divergence
//! between the two can only originate from deliberately injected bugs).
//!
//! # Examples
//!
//! ```
//! use chatfuzz_isa::{decode, encode, Instr, Reg};
//!
//! // `addi x1, x0, 1`
//! let word = 0x0010_0093;
//! let instr = decode(word).expect("valid instruction");
//! assert_eq!(instr.to_string(), "addi ra, zero, 1");
//! assert_eq!(encode(&instr).unwrap(), word);
//! # let _ = Reg::X0;
//! ```

pub mod asm;
pub mod cache;
pub mod csr;
pub mod decode;
pub mod disasm;
pub mod encode;
pub mod exception;
pub mod instr;
pub mod reg;
pub mod semantics;

pub use cache::{DecodeCache, DEFAULT_DECODE_CACHE_ENTRIES};
pub use csr::{Csr, CSR_LIST};
pub use decode::{decode, decode_program, DecodeError};
pub use encode::{encode, encode_program, EncodeError};
pub use exception::{Exception, Interrupt, PrivLevel};
pub use instr::{AluOp, AmoOp, BranchCond, CsrOp, CsrSrc, Instr, MemWidth, MulDivOp, SystemOp};
pub use reg::Reg;

/// Number of bytes in one (uncompressed) RISC-V instruction word.
pub const INSTR_BYTES: usize = 4;

/// Counts the valid and invalid instruction words in a raw byte stream.
///
/// This is the deterministic "disassembler reward agent" of the paper's
/// model-cleanup training step (Eq. (1)): the reward for a generated test
/// vector is `valid - 5 * invalid`. Trailing bytes that do not fill a whole
/// word count as one invalid instruction.
///
/// # Examples
///
/// ```
/// use chatfuzz_isa::count_valid_invalid;
///
/// let addi = 0x0010_0093u32.to_le_bytes();
/// let junk = 0xffff_ffffu32.to_le_bytes(); // illegal encoding
/// let mut bytes = Vec::new();
/// bytes.extend_from_slice(&addi);
/// bytes.extend_from_slice(&junk);
/// assert_eq!(count_valid_invalid(&bytes), (1, 1));
/// ```
pub fn count_valid_invalid(bytes: &[u8]) -> (usize, usize) {
    let mut valid = 0;
    let mut invalid = 0;
    let mut chunks = bytes.chunks_exact(INSTR_BYTES);
    for chunk in &mut chunks {
        let word = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        if decode(word).is_ok() {
            valid += 1;
        } else {
            invalid += 1;
        }
    }
    if !chunks.remainder().is_empty() {
        invalid += 1;
    }
    (valid, invalid)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_valid_invalid_empty() {
        assert_eq!(count_valid_invalid(&[]), (0, 0));
    }

    #[test]
    fn count_valid_invalid_partial_word_is_invalid() {
        assert_eq!(count_valid_invalid(&[0x93, 0x00]), (0, 1));
    }

    #[test]
    fn count_valid_invalid_mixed() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&0x0010_0093u32.to_le_bytes()); // addi ra, zero, 1
        bytes.extend_from_slice(&0x0000_0000u32.to_le_bytes()); // defined illegal
        bytes.extend_from_slice(&0x0000_00b3u32.to_le_bytes()); // add ra, zero, zero
        assert_eq!(count_valid_invalid(&bytes), (2, 1));
    }
}
