//! Binary instruction encoder (inverse of [`crate::decode`]).

use std::error::Error;
use std::fmt;

use crate::instr::{AluOp, CsrOp, CsrSrc, Instr, MemWidth, SystemOp};
use crate::reg::Reg;

/// Error produced when an [`Instr`] cannot be represented in 32 bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// An immediate or offset does not fit its field.
    ImmOutOfRange {
        /// Which field overflowed (e.g. `"branch offset"`).
        what: &'static str,
        /// The offending value.
        value: i64,
    },
    /// A PC-relative offset is not even (all our targets are 4-byte words,
    /// but the ISA field granularity is 2).
    MisalignedOffset {
        /// Which field was misaligned.
        what: &'static str,
        /// The offending value.
        value: i64,
    },
    /// The operand combination has no encoding (e.g. `subi`, `amoadd.b`).
    InvalidCombination(&'static str),
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::ImmOutOfRange { what, value } => {
                write!(f, "{what} {value} out of range")
            }
            EncodeError::MisalignedOffset { what, value } => {
                write!(f, "{what} {value} not 2-byte aligned")
            }
            EncodeError::InvalidCombination(what) => {
                write!(f, "no encoding for {what}")
            }
        }
    }
}

impl Error for EncodeError {}

fn check_range(what: &'static str, value: i64, bits: u32) -> Result<(), EncodeError> {
    let min = -(1i64 << (bits - 1));
    let max = (1i64 << (bits - 1)) - 1;
    if value < min || value > max {
        return Err(EncodeError::ImmOutOfRange { what, value });
    }
    Ok(())
}

fn check_offset(what: &'static str, value: i64, bits: u32) -> Result<(), EncodeError> {
    check_range(what, value, bits)?;
    if value & 1 != 0 {
        return Err(EncodeError::MisalignedOffset { what, value });
    }
    Ok(())
}

fn r_type(funct7: u32, rs2: Reg, rs1: Reg, funct3: u32, rd: Reg, opcode: u32) -> u32 {
    (funct7 << 25)
        | (u32::from(rs2) << 20)
        | (u32::from(rs1) << 15)
        | (funct3 << 12)
        | (u32::from(rd) << 7)
        | opcode
}

fn i_type(imm: i64, rs1: Reg, funct3: u32, rd: Reg, opcode: u32) -> u32 {
    (((imm as u32) & 0xfff) << 20)
        | (u32::from(rs1) << 15)
        | (funct3 << 12)
        | (u32::from(rd) << 7)
        | opcode
}

fn s_type(imm: i64, rs2: Reg, rs1: Reg, funct3: u32, opcode: u32) -> u32 {
    let imm = imm as u32;
    (((imm >> 5) & 0x7f) << 25)
        | (u32::from(rs2) << 20)
        | (u32::from(rs1) << 15)
        | (funct3 << 12)
        | ((imm & 0x1f) << 7)
        | opcode
}

fn b_type(offset: i64, rs2: Reg, rs1: Reg, funct3: u32, opcode: u32) -> u32 {
    let imm = offset as u32;
    (((imm >> 12) & 0x1) << 31)
        | (((imm >> 5) & 0x3f) << 25)
        | (u32::from(rs2) << 20)
        | (u32::from(rs1) << 15)
        | (funct3 << 12)
        | (((imm >> 1) & 0xf) << 8)
        | (((imm >> 11) & 0x1) << 7)
        | opcode
}

fn u_type(imm: i64, rd: Reg, opcode: u32) -> u32 {
    ((imm as u32) & 0xffff_f000) | (u32::from(rd) << 7) | opcode
}

fn j_type(offset: i64, rd: Reg, opcode: u32) -> u32 {
    let imm = offset as u32;
    (((imm >> 20) & 0x1) << 31)
        | (((imm >> 1) & 0x3ff) << 21)
        | (((imm >> 11) & 0x1) << 20)
        | (((imm >> 12) & 0xff) << 12)
        | (u32::from(rd) << 7)
        | opcode
}

/// Encodes an instruction into its 32-bit word.
///
/// # Errors
///
/// Returns an [`EncodeError`] if an immediate is out of range, an offset is
/// misaligned, or the operand combination has no defined encoding.
///
/// # Examples
///
/// ```
/// use chatfuzz_isa::{encode, Instr, Reg, AluOp};
///
/// let addi = Instr::OpImm { op: AluOp::Add, rd: Reg::RA, rs1: Reg::X0, imm: 1, word: false };
/// assert_eq!(encode(&addi).unwrap(), 0x0010_0093);
/// ```
pub fn encode(instr: &Instr) -> Result<u32, EncodeError> {
    match *instr {
        Instr::Lui { rd, imm } => {
            check_upper_imm("lui immediate", imm)?;
            Ok(u_type(imm, rd, 0x37))
        }
        Instr::Auipc { rd, imm } => {
            check_upper_imm("auipc immediate", imm)?;
            Ok(u_type(imm, rd, 0x17))
        }
        Instr::Jal { rd, offset } => {
            check_offset("jal offset", offset, 21)?;
            Ok(j_type(offset, rd, 0x6f))
        }
        Instr::Jalr { rd, rs1, offset } => {
            check_range("jalr offset", offset, 12)?;
            Ok(i_type(offset, rs1, 0, rd, 0x67))
        }
        Instr::Branch { cond, rs1, rs2, offset } => {
            check_offset("branch offset", offset, 13)?;
            Ok(b_type(offset, rs2, rs1, cond.funct3(), 0x63))
        }
        Instr::Load { width, signed, rd, rs1, offset } => {
            check_range("load offset", offset, 12)?;
            let funct3 = if signed {
                width.funct3()
            } else {
                match width {
                    MemWidth::D => {
                        return Err(EncodeError::InvalidCombination("ldu does not exist"))
                    }
                    w => w.funct3() | 0b100,
                }
            };
            Ok(i_type(offset, rs1, funct3, rd, 0x03))
        }
        Instr::Store { width, rs2, rs1, offset } => {
            check_range("store offset", offset, 12)?;
            Ok(s_type(offset, rs2, rs1, width.funct3(), 0x23))
        }
        Instr::OpImm { op, rd, rs1, imm, word } => encode_op_imm(op, rd, rs1, imm, word),
        Instr::Op { op, rd, rs1, rs2, word } => {
            if word && !op.has_word_form() {
                return Err(EncodeError::InvalidCombination("no *W form for this ALU op"));
            }
            let funct7 = match op {
                AluOp::Sub | AluOp::Sra => 0b010_0000,
                _ => 0,
            };
            let opcode = if word { 0x3b } else { 0x33 };
            Ok(r_type(funct7, rs2, rs1, op.funct3(), rd, opcode))
        }
        Instr::MulDiv { op, rd, rs1, rs2, word } => {
            if word && !op.has_word_form() {
                return Err(EncodeError::InvalidCombination("no *W form for this muldiv op"));
            }
            let opcode = if word { 0x3b } else { 0x33 };
            Ok(r_type(0b000_0001, rs2, rs1, op.funct3(), rd, opcode))
        }
        Instr::Amo { op, width, rd, rs1, rs2, aq, rl } => {
            let funct3 = amo_funct3(width)?;
            Ok(r_type(amo_funct7(op.funct5(), aq, rl), rs2, rs1, funct3, rd, 0x2f))
        }
        Instr::LoadReserved { width, rd, rs1, aq, rl } => {
            let funct3 = amo_funct3(width)?;
            Ok(r_type(amo_funct7(0b00010, aq, rl), Reg::X0, rs1, funct3, rd, 0x2f))
        }
        Instr::StoreConditional { width, rd, rs1, rs2, aq, rl } => {
            let funct3 = amo_funct3(width)?;
            Ok(r_type(amo_funct7(0b00011, aq, rl), rs2, rs1, funct3, rd, 0x2f))
        }
        Instr::Csr { op, rd, csr, src } => {
            if csr > 0xfff {
                return Err(EncodeError::ImmOutOfRange {
                    what: "csr address",
                    value: i64::from(csr),
                });
            }
            let base_f3 = match op {
                CsrOp::Rw => 0b001,
                CsrOp::Rs => 0b010,
                CsrOp::Rc => 0b011,
            };
            let (funct3, field) = match src {
                CsrSrc::Reg(rs1) => (base_f3, u32::from(rs1)),
                CsrSrc::Imm(imm) => {
                    if imm >= 32 {
                        return Err(EncodeError::ImmOutOfRange {
                            what: "csr immediate",
                            value: i64::from(imm),
                        });
                    }
                    (base_f3 | 0b100, u32::from(imm))
                }
            };
            Ok((u32::from(csr) << 20)
                | (field << 15)
                | (funct3 << 12)
                | (u32::from(rd) << 7)
                | 0x73)
        }
        Instr::Fence { pred, succ } => {
            if pred > 0xf || succ > 0xf {
                return Err(EncodeError::ImmOutOfRange {
                    what: "fence set",
                    value: i64::from(pred.max(succ)),
                });
            }
            Ok((u32::from(pred) << 24) | (u32::from(succ) << 20) | 0x0f)
        }
        Instr::FenceI => Ok(0x0000_100f),
        Instr::System(op) => Ok(match op {
            SystemOp::Ecall => 0x0000_0073,
            SystemOp::Ebreak => 0x0010_0073,
            SystemOp::Sret => 0x1020_0073,
            SystemOp::Mret => 0x3020_0073,
            SystemOp::Wfi => 0x1050_0073,
        }),
        Instr::SfenceVma { rs1, rs2 } => Ok(r_type(0b000_1001, rs2, rs1, 0, Reg::X0, 0x73)),
    }
}

fn check_upper_imm(what: &'static str, imm: i64) -> Result<(), EncodeError> {
    if imm & 0xfff != 0 {
        return Err(EncodeError::MisalignedOffset { what, value: imm });
    }
    if i64::from(imm as i32) != imm {
        return Err(EncodeError::ImmOutOfRange { what, value: imm });
    }
    Ok(())
}

fn encode_op_imm(op: AluOp, rd: Reg, rs1: Reg, imm: i64, word: bool) -> Result<u32, EncodeError> {
    if !op.has_imm_form() {
        return Err(EncodeError::InvalidCombination("subi does not exist"));
    }
    if word && !op.has_word_form() {
        return Err(EncodeError::InvalidCombination("no *W form for this ALU-imm op"));
    }
    let opcode = if word { 0x1b } else { 0x13 };
    if op.is_shift() {
        let max = if word { 31 } else { 63 };
        if !(0..=max).contains(&imm) {
            return Err(EncodeError::ImmOutOfRange { what: "shift amount", value: imm });
        }
        let top: u32 = if op == AluOp::Sra { 0b01_0000 } else { 0 };
        // For RV64 the discriminator occupies bits 31:26; the W form keeps a
        // full funct7 with the shamt below it. Both are covered by placing
        // `top << 26`.
        return Ok((top << 26)
            | (((imm as u32) & 0x3f) << 20)
            | (u32::from(rs1) << 15)
            | (op.funct3() << 12)
            | (u32::from(rd) << 7)
            | opcode);
    }
    check_range("ALU immediate", imm, 12)?;
    Ok(i_type(imm, rs1, op.funct3(), rd, opcode))
}

fn amo_funct3(width: MemWidth) -> Result<u32, EncodeError> {
    match width {
        MemWidth::W => Ok(0b010),
        MemWidth::D => Ok(0b011),
        MemWidth::B | MemWidth::H => {
            Err(EncodeError::InvalidCombination("AMO width must be W or D"))
        }
    }
}

fn amo_funct7(funct5: u32, aq: bool, rl: bool) -> u32 {
    (funct5 << 2) | (u32::from(aq) << 1) | u32::from(rl)
}

/// Encodes a sequence of instructions into a little-endian byte stream.
///
/// # Errors
///
/// Returns the first [`EncodeError`] hit, with no partial output.
pub fn encode_program(instrs: &[Instr]) -> Result<Vec<u8>, EncodeError> {
    let mut bytes = Vec::with_capacity(instrs.len() * crate::INSTR_BYTES);
    for instr in instrs {
        bytes.extend_from_slice(&encode(instr)?.to_le_bytes());
    }
    Ok(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode;
    use crate::instr::{AmoOp, BranchCond, MulDivOp};

    #[test]
    fn golden_encode_vectors() {
        let cases: &[(Instr, u32)] = &[
            (
                Instr::OpImm { op: AluOp::Add, rd: Reg::RA, rs1: Reg::X0, imm: 1, word: false },
                0x0010_0093,
            ),
            (Instr::NOP, 0x0000_0013),
            (
                Instr::Branch { cond: BranchCond::Eq, rs1: Reg::RA, rs2: Reg::SP, offset: -4 },
                0xfe20_8ee3,
            ),
            (Instr::Jal { rd: Reg::RA, offset: 4 }, 0x0040_00ef),
            (Instr::FenceI, 0x0000_100f),
            (Instr::System(SystemOp::Mret), 0x3020_0073),
            (
                Instr::Amo {
                    op: AmoOp::Or,
                    width: MemWidth::D,
                    rd: Reg::new(12).unwrap(),
                    rs1: Reg::new(10).unwrap(),
                    rs2: Reg::new(11).unwrap(),
                    aq: false,
                    rl: false,
                },
                0x40b5_362f,
            ),
            (
                Instr::MulDiv {
                    op: MulDivOp::Mul,
                    rd: Reg::new(10).unwrap(),
                    rs1: Reg::new(10).unwrap(),
                    rs2: Reg::new(11).unwrap(),
                    word: false,
                },
                0x02b5_0533,
            ),
        ];
        for (instr, expect) in cases {
            assert_eq!(encode(instr).unwrap(), *expect, "{instr}");
        }
    }

    #[test]
    fn rejects_out_of_range() {
        let i = Instr::OpImm { op: AluOp::Add, rd: Reg::RA, rs1: Reg::X0, imm: 4096, word: false };
        assert!(matches!(encode(&i), Err(EncodeError::ImmOutOfRange { .. })));
        let b = Instr::Branch { cond: BranchCond::Eq, rs1: Reg::X0, rs2: Reg::X0, offset: 4096 };
        assert!(matches!(encode(&b), Err(EncodeError::ImmOutOfRange { .. })));
        let b = Instr::Branch { cond: BranchCond::Eq, rs1: Reg::X0, rs2: Reg::X0, offset: 7 };
        assert!(matches!(encode(&b), Err(EncodeError::MisalignedOffset { .. })));
    }

    #[test]
    fn rejects_invalid_combinations() {
        let subi = Instr::OpImm { op: AluOp::Sub, rd: Reg::RA, rs1: Reg::X0, imm: 0, word: false };
        assert!(matches!(encode(&subi), Err(EncodeError::InvalidCombination(_))));
        let andw =
            Instr::Op { op: AluOp::And, rd: Reg::RA, rs1: Reg::X0, rs2: Reg::X0, word: true };
        assert!(matches!(encode(&andw), Err(EncodeError::InvalidCombination(_))));
        let ldu =
            Instr::Load { width: MemWidth::D, signed: false, rd: Reg::RA, rs1: Reg::X0, offset: 0 };
        assert!(matches!(encode(&ldu), Err(EncodeError::InvalidCombination(_))));
    }

    #[test]
    fn shift_bounds() {
        let ok = Instr::OpImm { op: AluOp::Sll, rd: Reg::RA, rs1: Reg::RA, imm: 63, word: false };
        assert!(encode(&ok).is_ok());
        let bad = Instr::OpImm { op: AluOp::Sll, rd: Reg::RA, rs1: Reg::RA, imm: 64, word: false };
        assert!(encode(&bad).is_err());
        let bad_w = Instr::OpImm { op: AluOp::Sll, rd: Reg::RA, rs1: Reg::RA, imm: 32, word: true };
        assert!(encode(&bad_w).is_err());
    }

    #[test]
    fn lui_alignment() {
        let bad = Instr::Lui { rd: Reg::RA, imm: 0x1001 };
        assert!(matches!(encode(&bad), Err(EncodeError::MisalignedOffset { .. })));
        let ok = Instr::Lui { rd: Reg::RA, imm: -4096 };
        let word = encode(&ok).unwrap();
        assert_eq!(decode(word).unwrap(), ok);
    }

    #[test]
    fn encode_program_roundtrips_via_decode() {
        let program = vec![
            Instr::Lui { rd: Reg::new(10).unwrap(), imm: 0x1000 },
            Instr::NOP,
            Instr::System(SystemOp::Ecall),
        ];
        let bytes = encode_program(&program).unwrap();
        let back: Vec<_> = crate::decode_program(&bytes).into_iter().map(Result::unwrap).collect();
        assert_eq!(back, program);
    }
}
