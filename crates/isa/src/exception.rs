//! Synchronous exceptions, interrupts and privilege levels.

use std::fmt;

/// Machine privilege level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum PrivLevel {
    /// User mode (encoded 0).
    User = 0,
    /// Supervisor mode (encoded 1).
    Supervisor = 1,
    /// Machine mode (encoded 3).
    #[default]
    Machine = 3,
}

impl PrivLevel {
    /// Decodes a 2-bit privilege encoding; `0b10` (hypervisor) maps to
    /// `None`.
    pub fn from_bits(bits: u64) -> Option<PrivLevel> {
        match bits & 0b11 {
            0 => Some(PrivLevel::User),
            1 => Some(PrivLevel::Supervisor),
            3 => Some(PrivLevel::Machine),
            _ => None,
        }
    }

    /// The 2-bit encoding of this level.
    pub fn bits(self) -> u64 {
        self as u64
    }
}

impl fmt::Display for PrivLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PrivLevel::User => "U",
            PrivLevel::Supervisor => "S",
            PrivLevel::Machine => "M",
        })
    }
}

/// A synchronous exception, with its `mcause` encoding and `mtval` value.
///
/// # Examples
///
/// ```
/// use chatfuzz_isa::Exception;
///
/// let e = Exception::LoadAddrMisaligned { addr: 0x8000_0001 };
/// assert_eq!(e.cause(), 4);
/// assert_eq!(e.tval(), 0x8000_0001);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Exception {
    /// Instruction address misaligned (cause 0).
    InstrAddrMisaligned {
        /// The misaligned target PC.
        addr: u64,
    },
    /// Instruction access fault (cause 1).
    InstrAccessFault {
        /// The faulting PC.
        addr: u64,
    },
    /// Illegal instruction (cause 2); `mtval` holds the instruction word.
    IllegalInstr {
        /// The offending instruction word.
        word: u32,
    },
    /// Breakpoint / `ebreak` (cause 3).
    Breakpoint {
        /// PC of the breakpoint.
        addr: u64,
    },
    /// Load address misaligned (cause 4).
    LoadAddrMisaligned {
        /// The misaligned address.
        addr: u64,
    },
    /// Load access fault (cause 5).
    LoadAccessFault {
        /// The faulting address.
        addr: u64,
    },
    /// Store/AMO address misaligned (cause 6).
    StoreAddrMisaligned {
        /// The misaligned address.
        addr: u64,
    },
    /// Store/AMO access fault (cause 7).
    StoreAccessFault {
        /// The faulting address.
        addr: u64,
    },
    /// Environment call from U-mode (cause 8), S-mode (9) or M-mode (11).
    Ecall {
        /// Privilege level the call was made from.
        from: PrivLevel,
    },
}

impl Exception {
    /// The `mcause` code for this exception.
    pub fn cause(&self) -> u64 {
        match self {
            Exception::InstrAddrMisaligned { .. } => 0,
            Exception::InstrAccessFault { .. } => 1,
            Exception::IllegalInstr { .. } => 2,
            Exception::Breakpoint { .. } => 3,
            Exception::LoadAddrMisaligned { .. } => 4,
            Exception::LoadAccessFault { .. } => 5,
            Exception::StoreAddrMisaligned { .. } => 6,
            Exception::StoreAccessFault { .. } => 7,
            Exception::Ecall { from } => match from {
                PrivLevel::User => 8,
                PrivLevel::Supervisor => 9,
                PrivLevel::Machine => 11,
            },
        }
    }

    /// The `mtval` value written when this exception traps.
    pub fn tval(&self) -> u64 {
        match *self {
            Exception::InstrAddrMisaligned { addr }
            | Exception::InstrAccessFault { addr }
            | Exception::Breakpoint { addr }
            | Exception::LoadAddrMisaligned { addr }
            | Exception::LoadAccessFault { addr }
            | Exception::StoreAddrMisaligned { addr }
            | Exception::StoreAccessFault { addr } => addr,
            Exception::IllegalInstr { word } => u64::from(word),
            Exception::Ecall { .. } => 0,
        }
    }

    /// Priority rank among *simultaneously raised* synchronous exceptions;
    /// lower ranks trap first.
    ///
    /// Follows Table 3.7 of the privileged spec. In particular, for a memory
    /// access that is both misaligned and out of the accessible region, the
    /// misaligned exception ranks higher — the exact corner the paper's
    /// Finding 1 shows RocketCore getting wrong.
    pub fn priority_rank(&self) -> u8 {
        match self {
            Exception::Breakpoint { .. } => 0,
            Exception::InstrAccessFault { .. } => 1,
            Exception::IllegalInstr { .. } => 2,
            Exception::InstrAddrMisaligned { .. } => 3,
            Exception::Ecall { .. } => 4,
            Exception::LoadAddrMisaligned { .. } | Exception::StoreAddrMisaligned { .. } => 5,
            Exception::LoadAccessFault { .. } | Exception::StoreAccessFault { .. } => 6,
        }
    }
}

impl fmt::Display for Exception {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Exception::InstrAddrMisaligned { addr } => {
                write!(f, "instruction address misaligned @{addr:#x}")
            }
            Exception::InstrAccessFault { addr } => {
                write!(f, "instruction access fault @{addr:#x}")
            }
            Exception::IllegalInstr { word } => write!(f, "illegal instruction {word:#010x}"),
            Exception::Breakpoint { addr } => write!(f, "breakpoint @{addr:#x}"),
            Exception::LoadAddrMisaligned { addr } => {
                write!(f, "load address misaligned @{addr:#x}")
            }
            Exception::LoadAccessFault { addr } => write!(f, "load access fault @{addr:#x}"),
            Exception::StoreAddrMisaligned { addr } => {
                write!(f, "store address misaligned @{addr:#x}")
            }
            Exception::StoreAccessFault { addr } => write!(f, "store access fault @{addr:#x}"),
            Exception::Ecall { from } => write!(f, "environment call from {from}-mode"),
        }
    }
}

impl std::error::Error for Exception {}

/// An asynchronous interrupt cause (modelled but not raised by default).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Interrupt {
    /// Supervisor software interrupt (cause 1).
    SupervisorSoftware,
    /// Machine software interrupt (cause 3).
    MachineSoftware,
    /// Supervisor timer interrupt (cause 5).
    SupervisorTimer,
    /// Machine timer interrupt (cause 7).
    MachineTimer,
    /// Supervisor external interrupt (cause 9).
    SupervisorExternal,
    /// Machine external interrupt (cause 11).
    MachineExternal,
}

impl Interrupt {
    /// The low bits of the `mcause` code (the interrupt bit excluded).
    pub fn cause(&self) -> u64 {
        match self {
            Interrupt::SupervisorSoftware => 1,
            Interrupt::MachineSoftware => 3,
            Interrupt::SupervisorTimer => 5,
            Interrupt::MachineTimer => 7,
            Interrupt::SupervisorExternal => 9,
            Interrupt::MachineExternal => 11,
        }
    }

    /// The full `mcause` value (interrupt bit set).
    pub fn mcause(&self) -> u64 {
        (1 << 63) | self.cause()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cause_codes_match_spec() {
        assert_eq!(Exception::InstrAddrMisaligned { addr: 0 }.cause(), 0);
        assert_eq!(Exception::IllegalInstr { word: 0 }.cause(), 2);
        assert_eq!(Exception::LoadAddrMisaligned { addr: 0 }.cause(), 4);
        assert_eq!(Exception::StoreAccessFault { addr: 0 }.cause(), 7);
        assert_eq!(Exception::Ecall { from: PrivLevel::User }.cause(), 8);
        assert_eq!(Exception::Ecall { from: PrivLevel::Machine }.cause(), 11);
    }

    #[test]
    fn misaligned_outranks_access_fault() {
        // The spec priority at the heart of the paper's Finding 1.
        let mis = Exception::LoadAddrMisaligned { addr: 1 };
        let fault = Exception::LoadAccessFault { addr: 1 };
        assert!(mis.priority_rank() < fault.priority_rank());
        let mis = Exception::StoreAddrMisaligned { addr: 1 };
        let fault = Exception::StoreAccessFault { addr: 1 };
        assert!(mis.priority_rank() < fault.priority_rank());
    }

    #[test]
    fn priv_level_round_trip() {
        for p in [PrivLevel::User, PrivLevel::Supervisor, PrivLevel::Machine] {
            assert_eq!(PrivLevel::from_bits(p.bits()), Some(p));
        }
        assert_eq!(PrivLevel::from_bits(2), None);
    }

    #[test]
    fn interrupt_mcause_sets_top_bit() {
        assert_eq!(Interrupt::MachineTimer.mcause(), (1 << 63) | 7);
    }
}
