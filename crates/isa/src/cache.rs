//! Decoded-instruction cache for the simulation hot path.
//!
//! Every simulator in the repo fetches a 32-bit word and runs it through
//! [`decode`] once per executed slot — for loop-heavy fuzz inputs that
//! means decoding the *same* word at the *same* PC thousands of times per
//! test. [`DecodeCache`] is a direct-mapped cache indexed by PC that
//! memoises the decode result (success *or* failure).
//!
//! Entries are validated by the raw instruction word, not invalidated by
//! stores: a hit requires both the PC and the fetched word to match the
//! cached entry, so a lookup is bit-for-bit equivalent to calling
//! [`decode`] on the fetched word. This matters for the incoherent-I-cache
//! injection (BUG1): the Rocket model's fetch may legitimately return a
//! *stale* word after self-modifying stores, and the cache reproduces the
//! stale decode exactly because it keys on whatever word the fetch path
//! produced. Self-modifying code, `fence.i`, and cross-test reuse all fall
//! out of the word check — no flush protocol is needed for correctness.

use crate::decode::{decode, DecodeError};
use crate::instr::Instr;

/// Default number of cache entries (covers 4 KiB of aligned code,
/// comfortably more than the harness + generated bodies).
pub const DEFAULT_DECODE_CACHE_ENTRIES: usize = 1024;

/// A PC never produced by an aligned fetch; marks an empty slot.
const EMPTY_PC: u64 = u64::MAX;

#[derive(Debug, Clone, Copy)]
struct Entry {
    pc: u64,
    word: u32,
    result: Result<Instr, DecodeError>,
}

/// Direct-mapped, word-validated decode cache. See the module docs for the
/// equivalence argument.
///
/// The slot array is allocated lazily on the first lookup, so carrying a
/// cache inside cheap-to-build objects (`Hart`, the RTL cores) costs
/// nothing until a program actually executes.
#[derive(Debug, Clone)]
pub struct DecodeCache {
    entries: Vec<Entry>,
    mask: usize,
    enabled: bool,
}

impl DecodeCache {
    /// Creates a cache with `entries` slots (rounded up to a power of
    /// two). The backing storage is not allocated until the first lookup.
    pub fn new(entries: usize) -> DecodeCache {
        let n = entries.max(1).next_power_of_two();
        DecodeCache { entries: Vec::new(), mask: n - 1, enabled: true }
    }

    /// Number of slots (the lazily-allocated backing array's size).
    pub fn slots(&self) -> usize {
        self.mask + 1
    }

    /// Turns caching on or off. Disabled, [`DecodeCache::decode`] is a
    /// plain call to [`decode`] — no storage is allocated and no state is
    /// consulted — which gives benchmarks an exact uncached baseline.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Decodes `word` fetched from `pc`, reusing the cached result when
    /// both the PC and the word match. Guaranteed to return exactly what
    /// [`decode`]`(word)` returns.
    #[inline]
    pub fn decode(&mut self, pc: u64, word: u32) -> Result<Instr, DecodeError> {
        if !self.enabled {
            return decode(word);
        }
        if self.entries.is_empty() {
            let empty = Entry { pc: EMPTY_PC, word: 0, result: Ok(Instr::NOP) };
            self.entries = vec![empty; self.mask + 1];
        }
        let slot = ((pc >> 2) as usize) & self.mask;
        let entry = &mut self.entries[slot];
        if entry.pc == pc && entry.word == word {
            return entry.result;
        }
        let result = decode(word);
        *entry = Entry { pc, word, result };
        result
    }

    /// Drops every entry (not required for correctness — lookups are
    /// word-validated — but useful for measurement and tests).
    pub fn invalidate_all(&mut self) {
        for entry in &mut self.entries {
            entry.pc = EMPTY_PC;
        }
    }
}

impl Default for DecodeCache {
    fn default() -> Self {
        DecodeCache::new(DEFAULT_DECODE_CACHE_ENTRIES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode;
    use crate::instr::{AluOp, SystemOp};
    use crate::reg::Reg;

    #[test]
    fn hit_returns_same_instruction() {
        let mut c = DecodeCache::new(16);
        let word = encode(&Instr::OpImm {
            op: AluOp::Add,
            rd: Reg::new(10).unwrap(),
            rs1: Reg::new(10).unwrap(),
            imm: 1,
            word: false,
        })
        .unwrap();
        let first = c.decode(0x8000_0000, word);
        let second = c.decode(0x8000_0000, word);
        assert_eq!(first, decode(word));
        assert_eq!(second, decode(word));
    }

    #[test]
    fn word_change_at_same_pc_revalidates() {
        // The BUG1-relevant case: the same PC later yields a different
        // word (either a self-modifying store landed, or a stale line was
        // finally refilled). The cache must follow the word, not the PC.
        let mut c = DecodeCache::new(16);
        let w1 = encode(&Instr::System(SystemOp::Wfi)).unwrap();
        let w2 = encode(&Instr::NOP).unwrap();
        assert_eq!(c.decode(0x8000_0000, w1), decode(w1));
        assert_eq!(c.decode(0x8000_0000, w2), decode(w2));
        assert_eq!(c.decode(0x8000_0000, w1), decode(w1));
    }

    #[test]
    fn failures_are_cached_too() {
        let mut c = DecodeCache::new(16);
        assert_eq!(c.decode(0x8000_0000, 0), decode(0));
        assert_eq!(c.decode(0x8000_0000, 0), decode(0));
        assert!(c.decode(0x8000_0000, 0).is_err());
    }

    #[test]
    fn collisions_fall_back_to_decode() {
        let mut c = DecodeCache::new(1); // every pc maps to slot 0
        let w1 = encode(&Instr::NOP).unwrap();
        let w2 = encode(&Instr::System(SystemOp::Wfi)).unwrap();
        for _ in 0..4 {
            assert_eq!(c.decode(0x8000_0000, w1), decode(w1));
            assert_eq!(c.decode(0x8000_0004, w2), decode(w2));
        }
    }

    #[test]
    fn exhaustive_equivalence_on_a_word_sweep() {
        // The cache must be observationally identical to `decode` across
        // hits, misses, collisions, and error words.
        let mut c = DecodeCache::new(8);
        for round in 0..3u64 {
            for i in 0..4096u32 {
                let word = i.wrapping_mul(0x9e37_79b9) ^ (round as u32);
                let pc = 0x8000_0000 + u64::from(i % 64) * 4;
                assert_eq!(c.decode(pc, word), decode(word));
            }
        }
    }

    #[test]
    fn invalidate_all_keeps_equivalence() {
        let mut c = DecodeCache::new(4);
        let w = encode(&Instr::NOP).unwrap();
        assert_eq!(c.decode(0x8000_0000, w), decode(w));
        c.invalidate_all();
        assert_eq!(c.decode(0x8000_0000, w), decode(w));
    }

    #[test]
    fn disabled_cache_is_a_plain_decode() {
        let mut c = DecodeCache::new(64);
        c.set_enabled(false);
        let w = encode(&Instr::NOP).unwrap();
        for _ in 0..3 {
            assert_eq!(c.decode(0x8000_0000, w), decode(w));
            assert_eq!(c.decode(0x8000_0000, 0), decode(0));
        }
        assert!(c.entries.is_empty(), "disabled cache never allocates");
    }

    #[test]
    fn allocation_is_lazy() {
        let c = DecodeCache::new(512);
        assert_eq!(c.slots(), 512);
        assert!(c.entries.is_empty(), "no backing storage before first use");
        let mut c = c;
        c.invalidate_all(); // no-op on an unallocated cache
        let w = encode(&Instr::NOP).unwrap();
        assert_eq!(c.decode(0x8000_0000, w), decode(w));
        assert_eq!(c.entries.len(), 512);
    }
}
