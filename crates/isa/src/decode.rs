//! Binary instruction decoder (RV64IMA+Zicsr+Zifencei).

use std::error::Error;
use std::fmt;

use crate::instr::{AluOp, AmoOp, BranchCond, CsrOp, CsrSrc, Instr, MemWidth, MulDivOp, SystemOp};
use crate::reg::Reg;

/// Error produced when a 32-bit word is not a valid instruction.
///
/// The decoder is the "ISA disassembler" reward agent of the paper: a word
/// either decodes to exactly one [`Instr`] or is rejected with the reason.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The major opcode (bits 6:0) is not implemented/defined.
    UnknownOpcode {
        /// The offending word.
        word: u32,
    },
    /// Opcode is known but a funct/width field selects a reserved encoding.
    ReservedFunct {
        /// The offending word.
        word: u32,
    },
    /// A SYSTEM encoding that is not a recognised privileged instruction.
    BadSystem {
        /// The offending word.
        word: u32,
    },
    /// The all-zeros or all-ones word, defined illegal by the ISA.
    DefinedIllegal {
        /// The offending word.
        word: u32,
    },
}

impl DecodeError {
    /// The word that failed to decode.
    pub fn word(&self) -> u32 {
        match *self {
            DecodeError::UnknownOpcode { word }
            | DecodeError::ReservedFunct { word }
            | DecodeError::BadSystem { word }
            | DecodeError::DefinedIllegal { word } => word,
        }
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnknownOpcode { word } => {
                write!(f, "unknown opcode in word {word:#010x}")
            }
            DecodeError::ReservedFunct { word } => {
                write!(f, "reserved funct field in word {word:#010x}")
            }
            DecodeError::BadSystem { word } => {
                write!(f, "unrecognised SYSTEM encoding {word:#010x}")
            }
            DecodeError::DefinedIllegal { word } => {
                write!(f, "defined-illegal word {word:#010x}")
            }
        }
    }
}

impl Error for DecodeError {}

#[inline]
fn rd(word: u32) -> Reg {
    Reg::from_field(word >> 7)
}

#[inline]
fn rs1(word: u32) -> Reg {
    Reg::from_field(word >> 15)
}

#[inline]
fn rs2(word: u32) -> Reg {
    Reg::from_field(word >> 20)
}

#[inline]
fn funct3(word: u32) -> u32 {
    (word >> 12) & 0x7
}

#[inline]
fn funct7(word: u32) -> u32 {
    word >> 25
}

/// Sign-extended 12-bit I-type immediate.
#[inline]
fn imm_i(word: u32) -> i64 {
    i64::from((word as i32) >> 20)
}

/// Sign-extended 12-bit S-type immediate.
#[inline]
fn imm_s(word: u32) -> i64 {
    let hi = (word as i32) >> 25; // imm[11:5], sign-extended
    let lo = (word >> 7) & 0x1f; // imm[4:0]
    i64::from((hi << 5) | lo as i32)
}

/// Sign-extended 13-bit B-type immediate (bit 0 is zero).
#[inline]
fn imm_b(word: u32) -> i64 {
    let sign = (word as i32) >> 31; // imm[12]
    let b11 = (word >> 7) & 0x1; // imm[11]
    let b10_5 = (word >> 25) & 0x3f; // imm[10:5]
    let b4_1 = (word >> 8) & 0xf; // imm[4:1]
    let value = ((sign as u32 & 0x1) << 12) | (b11 << 11) | (b10_5 << 5) | (b4_1 << 1);
    // Re-sign-extend from bit 12.
    i64::from(((value << 19) as i32) >> 19)
}

/// Sign-extended U-type immediate (`imm[31:12] << 12`).
#[inline]
fn imm_u(word: u32) -> i64 {
    i64::from((word & 0xffff_f000) as i32)
}

/// Sign-extended 21-bit J-type immediate (bit 0 is zero).
#[inline]
fn imm_j(word: u32) -> i64 {
    let sign = (word >> 31) & 0x1; // imm[20]
    let b19_12 = (word >> 12) & 0xff; // imm[19:12]
    let b11 = (word >> 20) & 0x1; // imm[11]
    let b10_1 = (word >> 21) & 0x3ff; // imm[10:1]
    let value = (sign << 20) | (b19_12 << 12) | (b11 << 11) | (b10_1 << 1);
    i64::from(((value << 11) as i32) >> 11)
}

/// Decodes a single 32-bit instruction word.
///
/// # Errors
///
/// Returns a [`DecodeError`] describing why the word is not a valid
/// RV64IMA+Zicsr+Zifencei instruction.
///
/// # Examples
///
/// ```
/// use chatfuzz_isa::{decode, Instr, Reg};
///
/// let instr = decode(0x0000_0533).unwrap(); // add a0, zero, zero
/// assert_eq!(instr.rd(), Some(Reg::new(10).unwrap()));
/// assert!(decode(0xffff_ffff).is_err());
/// ```
pub fn decode(word: u32) -> Result<Instr, DecodeError> {
    if word == 0 || word == u32::MAX {
        return Err(DecodeError::DefinedIllegal { word });
    }
    match word & 0x7f {
        0x37 => Ok(Instr::Lui { rd: rd(word), imm: imm_u(word) }),
        0x17 => Ok(Instr::Auipc { rd: rd(word), imm: imm_u(word) }),
        0x6f => Ok(Instr::Jal { rd: rd(word), offset: imm_j(word) }),
        0x67 => match funct3(word) {
            0 => Ok(Instr::Jalr { rd: rd(word), rs1: rs1(word), offset: imm_i(word) }),
            _ => Err(DecodeError::ReservedFunct { word }),
        },
        0x63 => {
            let cond = match funct3(word) {
                0b000 => BranchCond::Eq,
                0b001 => BranchCond::Ne,
                0b100 => BranchCond::Lt,
                0b101 => BranchCond::Ge,
                0b110 => BranchCond::Ltu,
                0b111 => BranchCond::Geu,
                _ => return Err(DecodeError::ReservedFunct { word }),
            };
            Ok(Instr::Branch { cond, rs1: rs1(word), rs2: rs2(word), offset: imm_b(word) })
        }
        0x03 => {
            let (width, signed) = match funct3(word) {
                0b000 => (MemWidth::B, true),
                0b001 => (MemWidth::H, true),
                0b010 => (MemWidth::W, true),
                0b011 => (MemWidth::D, true),
                0b100 => (MemWidth::B, false),
                0b101 => (MemWidth::H, false),
                0b110 => (MemWidth::W, false),
                _ => return Err(DecodeError::ReservedFunct { word }),
            };
            Ok(Instr::Load { width, signed, rd: rd(word), rs1: rs1(word), offset: imm_i(word) })
        }
        0x23 => {
            let width = match funct3(word) {
                0b000 => MemWidth::B,
                0b001 => MemWidth::H,
                0b010 => MemWidth::W,
                0b011 => MemWidth::D,
                _ => return Err(DecodeError::ReservedFunct { word }),
            };
            Ok(Instr::Store { width, rs2: rs2(word), rs1: rs1(word), offset: imm_s(word) })
        }
        0x13 => decode_op_imm(word, false),
        0x1b => decode_op_imm(word, true),
        0x33 => decode_op(word, false),
        0x3b => decode_op(word, true),
        0x2f => decode_amo(word),
        0x0f => match funct3(word) {
            0b000 => Ok(Instr::Fence {
                pred: ((word >> 24) & 0xf) as u8,
                succ: ((word >> 20) & 0xf) as u8,
            }),
            0b001 => Ok(Instr::FenceI),
            _ => Err(DecodeError::ReservedFunct { word }),
        },
        0x73 => decode_system(word),
        _ => Err(DecodeError::UnknownOpcode { word }),
    }
}

fn decode_op_imm(word: u32, wide: bool) -> Result<Instr, DecodeError> {
    let f3 = funct3(word);
    let (op, imm) = match f3 {
        0b000 => (AluOp::Add, imm_i(word)),
        0b010 if !wide => (AluOp::Slt, imm_i(word)),
        0b011 if !wide => (AluOp::Sltu, imm_i(word)),
        0b100 if !wide => (AluOp::Xor, imm_i(word)),
        0b110 if !wide => (AluOp::Or, imm_i(word)),
        0b111 if !wide => (AluOp::And, imm_i(word)),
        0b001 => {
            // SLLI: RV64 shamt is 6 bits; the W form keeps 5.
            let (top, shamt) = shift_fields(word, wide);
            if top != 0 {
                return Err(DecodeError::ReservedFunct { word });
            }
            (AluOp::Sll, shamt)
        }
        0b101 => {
            let (top, shamt) = shift_fields(word, wide);
            match top {
                0b000000 => (AluOp::Srl, shamt),
                0b010000 => (AluOp::Sra, shamt),
                _ => return Err(DecodeError::ReservedFunct { word }),
            }
        }
        _ => return Err(DecodeError::ReservedFunct { word }),
    };
    Ok(Instr::OpImm { op, rd: rd(word), rs1: rs1(word), imm, word: wide })
}

/// Returns `(discriminator, shamt)` for immediate shifts.
///
/// For RV64 shifts the discriminator is bits 31:26; for `*W` shifts it is
/// bits 31:25 shifted so that `SRAIW`'s bit 30 still lands on `0b010000`.
fn shift_fields(word: u32, wide: bool) -> (u32, i64) {
    if wide {
        // The W-form shamt is 5 bits; funct7's LSB (shamt bit 5 on RV64) is
        // reserved here, so fold it into the discriminator to reject it.
        let f7 = funct7(word);
        (((f7 & 1) << 5) | (f7 >> 1), i64::from((word >> 20) & 0x1f))
    } else {
        (word >> 26, i64::from((word >> 20) & 0x3f))
    }
}

fn decode_op(word: u32, wide: bool) -> Result<Instr, DecodeError> {
    let f3 = funct3(word);
    let f7 = funct7(word);
    if f7 == 0b000_0001 {
        let op = match f3 {
            0b000 => MulDivOp::Mul,
            0b001 if !wide => MulDivOp::Mulh,
            0b010 if !wide => MulDivOp::Mulhsu,
            0b011 if !wide => MulDivOp::Mulhu,
            0b100 => MulDivOp::Div,
            0b101 => MulDivOp::Divu,
            0b110 => MulDivOp::Rem,
            0b111 => MulDivOp::Remu,
            _ => return Err(DecodeError::ReservedFunct { word }),
        };
        return Ok(Instr::MulDiv { op, rd: rd(word), rs1: rs1(word), rs2: rs2(word), word: wide });
    }
    let op = match (f3, f7) {
        (0b000, 0b000_0000) => AluOp::Add,
        (0b000, 0b010_0000) => AluOp::Sub,
        (0b001, 0b000_0000) => AluOp::Sll,
        (0b010, 0b000_0000) if !wide => AluOp::Slt,
        (0b011, 0b000_0000) if !wide => AluOp::Sltu,
        (0b100, 0b000_0000) if !wide => AluOp::Xor,
        (0b101, 0b000_0000) => AluOp::Srl,
        (0b101, 0b010_0000) => AluOp::Sra,
        (0b110, 0b000_0000) if !wide => AluOp::Or,
        (0b111, 0b000_0000) if !wide => AluOp::And,
        _ => return Err(DecodeError::ReservedFunct { word }),
    };
    Ok(Instr::Op { op, rd: rd(word), rs1: rs1(word), rs2: rs2(word), word: wide })
}

fn decode_amo(word: u32) -> Result<Instr, DecodeError> {
    let width = match funct3(word) {
        0b010 => MemWidth::W,
        0b011 => MemWidth::D,
        _ => return Err(DecodeError::ReservedFunct { word }),
    };
    let f7 = funct7(word);
    let funct5 = f7 >> 2;
    let aq = (f7 >> 1) & 1 == 1;
    let rl = f7 & 1 == 1;
    match funct5 {
        0b00010 => {
            if rs2(word) != Reg::X0 {
                return Err(DecodeError::ReservedFunct { word });
            }
            Ok(Instr::LoadReserved { width, rd: rd(word), rs1: rs1(word), aq, rl })
        }
        0b00011 => Ok(Instr::StoreConditional {
            width,
            rd: rd(word),
            rs1: rs1(word),
            rs2: rs2(word),
            aq,
            rl,
        }),
        _ => {
            let op = match funct5 {
                0b00001 => AmoOp::Swap,
                0b00000 => AmoOp::Add,
                0b00100 => AmoOp::Xor,
                0b01100 => AmoOp::And,
                0b01000 => AmoOp::Or,
                0b10000 => AmoOp::Min,
                0b10100 => AmoOp::Max,
                0b11000 => AmoOp::Minu,
                0b11100 => AmoOp::Maxu,
                _ => return Err(DecodeError::ReservedFunct { word }),
            };
            Ok(Instr::Amo { op, width, rd: rd(word), rs1: rs1(word), rs2: rs2(word), aq, rl })
        }
    }
}

fn decode_system(word: u32) -> Result<Instr, DecodeError> {
    match funct3(word) {
        0b000 => match word {
            0x0000_0073 => Ok(Instr::System(SystemOp::Ecall)),
            0x0010_0073 => Ok(Instr::System(SystemOp::Ebreak)),
            0x1020_0073 => Ok(Instr::System(SystemOp::Sret)),
            0x3020_0073 => Ok(Instr::System(SystemOp::Mret)),
            0x1050_0073 => Ok(Instr::System(SystemOp::Wfi)),
            _ if funct7(word) == 0b000_1001 && rd(word) == Reg::X0 => {
                Ok(Instr::SfenceVma { rs1: rs1(word), rs2: rs2(word) })
            }
            _ => Err(DecodeError::BadSystem { word }),
        },
        f3 @ (0b001..=0b011) => {
            let op = csr_op(f3);
            Ok(Instr::Csr {
                op,
                rd: rd(word),
                csr: (word >> 20) as u16,
                src: CsrSrc::Reg(rs1(word)),
            })
        }
        f3 @ (0b101..=0b111) => {
            let op = csr_op(f3 - 0b100);
            Ok(Instr::Csr {
                op,
                rd: rd(word),
                csr: (word >> 20) as u16,
                src: CsrSrc::Imm(((word >> 15) & 0x1f) as u8),
            })
        }
        _ => Err(DecodeError::BadSystem { word }),
    }
}

fn csr_op(f3: u32) -> CsrOp {
    match f3 {
        0b001 => CsrOp::Rw,
        0b010 => CsrOp::Rs,
        _ => CsrOp::Rc,
    }
}

/// Decodes a little-endian byte stream into instructions.
///
/// Each 4-byte word yields either a decoded instruction or the error for
/// that slot, preserving positions (used by the mismatch reports and the
/// disassembler reward).
pub fn decode_program(bytes: &[u8]) -> Vec<Result<Instr, DecodeError>> {
    bytes
        .chunks_exact(crate::INSTR_BYTES)
        .map(|c| decode(u32::from_le_bytes([c[0], c[1], c[2], c[3]])))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Golden vectors checked against `riscv64-unknown-elf-objdump` output.
    #[test]
    fn golden_decode_vectors() {
        let cases: &[(u32, &str)] = &[
            (0x0010_0093, "addi ra, zero, 1"),
            (0xfff0_0213, "addi tp, zero, -1"),
            (0x0000_0533, "add a0, zero, zero"),
            (0x4060_0633, "sub a2, zero, t1"),
            (0x0020_9463, "bne ra, sp, 8"),
            (0xfe20_8ee3, "beq ra, sp, -4"),
            (0x0000_a103, "lw sp, 0(ra)"),
            (0x0020_b023, "sd sp, 0(ra)"),
            (0x0040_00ef, "jal ra, 4"),
            (0x0000_80e7, "jalr ra, 0(ra)"),
            (0x1234_5537, "lui a0, 0x12345"),
            (0x0000_0517, "auipc a0, 0x0"),
            (0x02b5_0533, "mul a0, a0, a1"),
            (0x02b5_4533, "div a0, a0, a1"),
            (0x02b5_053b, "mulw a0, a0, a1"),
            (0x1005_2537, "lui a0, 0x10052"),
            (0x0005_3027, "unknown"), // LOAD-FP opcode region: reserved here
            (0x0330_000f, "fence rw, rw"),
            (0x0000_100f, "fence.i"),
            (0x0000_0073, "ecall"),
            (0x0010_0073, "ebreak"),
            (0x3020_0073, "mret"),
            (0x1020_0073, "sret"),
            (0x1050_0073, "wfi"),
            (0x3400_1573, "csrrw a0, 0x340, zero"),
            (0x3400_2573, "csrrs a0, 0x340, zero"),
            (0x3400_5573, "csrrwi a0, 0x340, 0"),
            (0x1005_252f, "lr.w a0, (a0)"),
            (0x18b5_252f, "sc.w a0, a1, (a0)"),
            (0x40b5_362f, "amoor.d a2, a1, (a0)"),
            (0x0015_1513, "slli a0, a0, 1"),
            (0x4015_5513, "srai a0, a0, 1"),
            (0x03f5_5513, "srli a0, a0, 63"),
            (0x0015_151b, "slliw a0, a0, 1"),
        ];
        for &(word, expect) in cases {
            match decode(word) {
                Ok(instr) => {
                    assert_eq!(instr.to_string(), expect, "word {word:#010x}");
                }
                Err(_) => assert_eq!(expect, "unknown", "word {word:#010x} failed to decode"),
            }
        }
    }

    #[test]
    fn defined_illegal_words() {
        assert!(matches!(decode(0), Err(DecodeError::DefinedIllegal { .. })));
        assert!(matches!(decode(u32::MAX), Err(DecodeError::DefinedIllegal { .. })));
    }

    #[test]
    fn rv64_shamt_bit_accepted_rv32_reserved_for_w() {
        // slli a0, a0, 32 is legal on RV64.
        assert!(decode(0x0205_1513).is_ok());
        // slliw with shamt bit 5 set (funct7 LSB) is reserved.
        assert!(decode(0x0205_151b).is_err());
    }

    #[test]
    fn lr_with_nonzero_rs2_rejected() {
        // lr.w with rs2 = a1 encoded.
        assert!(decode(0x10b5_252f).is_err());
    }

    #[test]
    fn sfence_vma_decodes() {
        // sfence.vma zero, zero = 0x12000073
        assert_eq!(decode(0x1200_0073).unwrap(), Instr::SfenceVma { rs1: Reg::X0, rs2: Reg::X0 });
        // with rd != 0 it is reserved
        assert!(decode(0x1200_00f3).is_err());
    }

    #[test]
    fn branch_offset_sign() {
        if let Instr::Branch { offset, .. } = decode(0xfe20_8ee3).unwrap() {
            assert_eq!(offset, -4);
        } else {
            panic!("expected branch");
        }
    }

    #[test]
    fn jal_offset_ranges() {
        if let Instr::Jal { offset, .. } = decode(0x7fff_f06f).unwrap() {
            assert!(offset > 0);
        } else {
            panic!("expected jal");
        }
        // Negative J immediate.
        if let Instr::Jal { offset, .. } = decode(0xffdf_f06f).unwrap() {
            assert_eq!(offset, -4);
        } else {
            panic!("expected jal");
        }
    }

    #[test]
    fn decode_program_preserves_positions() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&0x0010_0093u32.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        let decoded = decode_program(&bytes);
        assert_eq!(decoded.len(), 2);
        assert!(decoded[0].is_ok());
        assert!(decoded[1].is_err());
    }
}
