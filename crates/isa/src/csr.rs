//! Control and status register (CSR) address space.

use std::fmt;

/// A named CSR address.
///
/// Only the CSRs implemented by the simulators are listed; the decoder
/// accepts any 12-bit address (accessing an unimplemented CSR raises an
/// illegal-instruction exception at runtime, exactly as on hardware).
///
/// # Examples
///
/// ```
/// use chatfuzz_isa::Csr;
///
/// assert_eq!(Csr::MSCRATCH.addr(), 0x340);
/// assert_eq!(Csr::from_addr(0x340), Some(Csr::MSCRATCH));
/// assert_eq!(Csr::MSCRATCH.to_string(), "mscratch");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Csr(u16);

macro_rules! csrs {
    ($(($name:ident, $addr:expr, $text:expr),)*) => {
        impl Csr {
            $(
                #[doc = concat!("The `", $text, "` CSR.")]
                pub const $name: Csr = Csr($addr);
            )*
        }

        /// Every CSR implemented by the simulators, in address order.
        pub const CSR_LIST: &[Csr] = &[$(Csr::$name),*];

        impl Csr {
            /// The CSR's assembler name, or `None` for unlisted addresses.
            pub fn name(self) -> Option<&'static str> {
                match self.0 {
                    $($addr => Some($text),)*
                    _ => None,
                }
            }

            /// Looks an address up among the implemented CSRs.
            pub fn from_addr(addr: u16) -> Option<Csr> {
                match addr {
                    $($addr => Some(Csr($addr)),)*
                    _ => None,
                }
            }
        }
    };
}

csrs! {
    (FFLAGS, 0x001, "fflags"),
    (FRM, 0x002, "frm"),
    (FCSR, 0x003, "fcsr"),
    (CYCLE, 0xc00, "cycle"),
    (TIME, 0xc01, "time"),
    (INSTRET, 0xc02, "instret"),
    (SSTATUS, 0x100, "sstatus"),
    (SIE, 0x104, "sie"),
    (STVEC, 0x105, "stvec"),
    (SCOUNTEREN, 0x106, "scounteren"),
    (SSCRATCH, 0x140, "sscratch"),
    (SEPC, 0x141, "sepc"),
    (SCAUSE, 0x142, "scause"),
    (STVAL, 0x143, "stval"),
    (SIP, 0x144, "sip"),
    (SATP, 0x180, "satp"),
    (MSTATUS, 0x300, "mstatus"),
    (MISA, 0x301, "misa"),
    (MEDELEG, 0x302, "medeleg"),
    (MIDELEG, 0x303, "mideleg"),
    (MIE, 0x304, "mie"),
    (MTVEC, 0x305, "mtvec"),
    (MCOUNTEREN, 0x306, "mcounteren"),
    (MSCRATCH, 0x340, "mscratch"),
    (MEPC, 0x341, "mepc"),
    (MCAUSE, 0x342, "mcause"),
    (MTVAL, 0x343, "mtval"),
    (MIP, 0x344, "mip"),
    (MCYCLE, 0xb00, "mcycle"),
    (MINSTRET, 0xb02, "minstret"),
    (MVENDORID, 0xf11, "mvendorid"),
    (MARCHID, 0xf12, "marchid"),
    (MIMPID, 0xf13, "mimpid"),
    (MHARTID, 0xf14, "mhartid"),
}

impl Csr {
    /// Creates a CSR handle from a raw 12-bit address.
    ///
    /// Unlike [`Csr::from_addr`] this does not require the address to be in
    /// [`CSR_LIST`]; use it when modelling accesses to arbitrary addresses.
    pub fn from_raw(addr: u16) -> Csr {
        Csr(addr & 0xfff)
    }

    /// The 12-bit CSR address.
    pub fn addr(self) -> u16 {
        self.0
    }

    /// The minimum privilege level required to access this CSR
    /// (bits 9:8 of the address, per the privileged spec).
    pub fn required_priv(self) -> u8 {
        ((self.0 >> 8) & 0b11) as u8
    }

    /// Whether the CSR is read-only (address bits 11:10 are `0b11`).
    pub fn is_read_only(self) -> bool {
        (self.0 >> 10) & 0b11 == 0b11
    }
}

impl fmt::Display for Csr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.name() {
            Some(name) => f.write_str(name),
            None => write!(f, "csr{:#x}", self.0),
        }
    }
}

/// Field masks and offsets of `mstatus`/`sstatus` used by the simulators.
pub mod mstatus {
    /// Supervisor interrupt enable.
    pub const SIE: u64 = 1 << 1;
    /// Machine interrupt enable.
    pub const MIE: u64 = 1 << 3;
    /// Supervisor previous interrupt enable.
    pub const SPIE: u64 = 1 << 5;
    /// Machine previous interrupt enable.
    pub const MPIE: u64 = 1 << 7;
    /// Supervisor previous privilege (1 bit).
    pub const SPP: u64 = 1 << 8;
    /// Machine previous privilege (2 bits).
    pub const MPP_MASK: u64 = 0b11 << 11;
    /// Shift of the MPP field.
    pub const MPP_SHIFT: u32 = 11;
    /// Modify-privilege (loads/stores use MPP privilege when set).
    pub const MPRV: u64 = 1 << 17;
    /// Make supervisor-user-memory accessible.
    pub const SUM: u64 = 1 << 18;
    /// Make executable pages readable.
    pub const MXR: u64 = 1 << 19;
    /// Trap virtual memory operations.
    pub const TVM: u64 = 1 << 20;
    /// Timeout wait (trap WFI in S-mode).
    pub const TW: u64 = 1 << 21;
    /// Trap SRET in S-mode.
    pub const TSR: u64 = 1 << 22;
    /// Bits of `mstatus` visible through `sstatus`.
    pub const SSTATUS_MASK: u64 = SIE | SPIE | SPP | SUM | MXR;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addresses_match_privileged_spec() {
        assert_eq!(Csr::MSTATUS.addr(), 0x300);
        assert_eq!(Csr::MEPC.addr(), 0x341);
        assert_eq!(Csr::MCAUSE.addr(), 0x342);
        assert_eq!(Csr::SATP.addr(), 0x180);
        assert_eq!(Csr::MHARTID.addr(), 0xf14);
    }

    #[test]
    fn privilege_field_from_address() {
        assert_eq!(Csr::MSTATUS.required_priv(), 3);
        assert_eq!(Csr::SSTATUS.required_priv(), 1);
        assert_eq!(Csr::CYCLE.required_priv(), 0);
    }

    #[test]
    fn read_only_detection() {
        assert!(Csr::MHARTID.is_read_only());
        assert!(Csr::CYCLE.is_read_only());
        assert!(!Csr::MSTATUS.is_read_only());
    }

    #[test]
    fn list_is_sorted_and_unique_by_address() {
        for pair in CSR_LIST.windows(2) {
            // Not strictly sorted (we group by function), but must be unique.
            assert_ne!(pair[0].addr(), pair[1].addr());
        }
        let mut addrs: Vec<_> = CSR_LIST.iter().map(|c| c.addr()).collect();
        addrs.sort_unstable();
        addrs.dedup();
        assert_eq!(addrs.len(), CSR_LIST.len());
    }

    #[test]
    fn unknown_addresses_display_raw() {
        assert_eq!(Csr::from_raw(0x123).to_string(), "csr0x123");
        assert_eq!(Csr::from_addr(0x123), None);
    }
}
