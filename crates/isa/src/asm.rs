//! A small program builder with labels and `li` expansion.
//!
//! The corpus generator and the directed regression tests build programs
//! through [`Assembler`] rather than computing branch offsets by hand.
//!
//! # Examples
//!
//! ```
//! use chatfuzz_isa::asm::Assembler;
//! use chatfuzz_isa::{AluOp, BranchCond, Instr, Reg};
//!
//! let mut asm = Assembler::new();
//! let a0 = Reg::new(10).unwrap();
//! asm.li(a0, 3);
//! asm.label("loop");
//! asm.push(Instr::OpImm { op: AluOp::Add, rd: a0, rs1: a0, imm: -1, word: false });
//! asm.branch_to(BranchCond::Ne, a0, Reg::X0, "loop");
//! let program = asm.assemble()?;
//! assert!(program.len() >= 3);
//! # Ok::<(), chatfuzz_isa::asm::AsmError>(())
//! ```

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::encode::{encode_program, EncodeError};
use crate::instr::{AluOp, BranchCond, Instr};
use crate::reg::Reg;

/// Error produced while assembling a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A branch or jump referenced a label that was never defined.
    UndefinedLabel(String),
    /// A label was defined twice.
    DuplicateLabel(String),
    /// A resolved instruction could not be encoded (offset out of range, …).
    Encode(EncodeError),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UndefinedLabel(name) => write!(f, "undefined label `{name}`"),
            AsmError::DuplicateLabel(name) => write!(f, "duplicate label `{name}`"),
            AsmError::Encode(e) => write!(f, "encoding failed: {e}"),
        }
    }
}

impl Error for AsmError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AsmError::Encode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EncodeError> for AsmError {
    fn from(e: EncodeError) -> Self {
        AsmError::Encode(e)
    }
}

#[derive(Debug, Clone)]
enum Item {
    Fixed(Instr),
    BranchTo { cond: BranchCond, rs1: Reg, rs2: Reg, label: String },
    JalTo { rd: Reg, label: String },
}

/// Incremental program builder with forward-referencing labels.
#[derive(Debug, Clone, Default)]
pub struct Assembler {
    items: Vec<Item>,
    labels: HashMap<String, usize>,
}

impl Assembler {
    /// Creates an empty assembler.
    pub fn new() -> Assembler {
        Assembler::default()
    }

    /// Number of instruction slots emitted so far.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether no instructions have been emitted.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Appends a fixed instruction.
    pub fn push(&mut self, instr: Instr) -> &mut Assembler {
        self.items.push(Item::Fixed(instr));
        self
    }

    /// Appends a `nop`.
    pub fn nop(&mut self) -> &mut Assembler {
        self.push(Instr::NOP)
    }

    /// Defines a label at the current position.
    ///
    /// # Panics
    ///
    /// Does not panic; duplicate definitions surface as
    /// [`AsmError::DuplicateLabel`] from [`Assembler::assemble`].
    pub fn label(&mut self, name: &str) -> &mut Assembler {
        // Record duplicates with a sentinel so assemble() can report them.
        if self.labels.insert(name.to_string(), self.items.len()).is_some() {
            self.labels.insert(format!("__dup__{name}"), usize::MAX);
        }
        self
    }

    /// Appends a conditional branch to `label`.
    pub fn branch_to(
        &mut self,
        cond: BranchCond,
        rs1: Reg,
        rs2: Reg,
        label: &str,
    ) -> &mut Assembler {
        self.items.push(Item::BranchTo { cond, rs1, rs2, label: label.to_string() });
        self
    }

    /// Appends a `jal` to `label`.
    pub fn jal_to(&mut self, rd: Reg, label: &str) -> &mut Assembler {
        self.items.push(Item::JalTo { rd, label: label.to_string() });
        self
    }

    /// Appends a load-immediate sequence materialising `value` into `rd`.
    ///
    /// Expands to 1–8 instructions depending on the magnitude, following the
    /// standard RV64 `li` recipe (upper build + shift/add chunks).
    pub fn li(&mut self, rd: Reg, value: i64) -> &mut Assembler {
        for instr in expand_li(rd, value) {
            self.push(instr);
        }
        self
    }

    /// Resolves labels and returns the final instruction sequence.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::UndefinedLabel`] / [`AsmError::DuplicateLabel`]
    /// for label problems and [`AsmError::Encode`] if a resolved offset does
    /// not fit its field.
    pub fn assemble(&self) -> Result<Vec<Instr>, AsmError> {
        if let Some(name) = self.labels.keys().find_map(|k| k.strip_prefix("__dup__")) {
            return Err(AsmError::DuplicateLabel(name.to_string()));
        }
        let mut out = Vec::with_capacity(self.items.len());
        for (idx, item) in self.items.iter().enumerate() {
            let instr = match item {
                Item::Fixed(i) => *i,
                Item::BranchTo { cond, rs1, rs2, label } => {
                    let offset = self.offset_to(idx, label)?;
                    Instr::Branch { cond: *cond, rs1: *rs1, rs2: *rs2, offset }
                }
                Item::JalTo { rd, label } => {
                    let offset = self.offset_to(idx, label)?;
                    Instr::Jal { rd: *rd, offset }
                }
            };
            // Validate eagerly so the caller gets the failing slot's error.
            crate::encode(&instr)?;
            out.push(instr);
        }
        Ok(out)
    }

    /// Assembles directly to the little-endian byte image.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Assembler::assemble`].
    pub fn assemble_bytes(&self) -> Result<Vec<u8>, AsmError> {
        Ok(encode_program(&self.assemble()?)?)
    }

    fn offset_to(&self, from: usize, label: &str) -> Result<i64, AsmError> {
        let target = self
            .labels
            .get(label)
            .copied()
            .ok_or_else(|| AsmError::UndefinedLabel(label.to_string()))?;
        Ok((target as i64 - from as i64) * crate::INSTR_BYTES as i64)
    }
}

/// Expands an RV64 `li rd, value` into real instructions.
fn expand_li(rd: Reg, value: i64) -> Vec<Instr> {
    let mut out = Vec::new();
    push_li(&mut out, rd, value);
    out
}

fn push_li(out: &mut Vec<Instr>, rd: Reg, value: i64) {
    if (-2048..=2047).contains(&value) {
        out.push(Instr::OpImm { op: AluOp::Add, rd, rs1: Reg::X0, imm: value, word: false });
        return;
    }
    if i64::from(value as i32) == value {
        // lui + addiw pair covering any signed 32-bit value.
        let hi = ((value.wrapping_add(0x800)) >> 12) << 12;
        let lo = value - hi;
        let hi = i64::from(hi as i32);
        out.push(Instr::Lui { rd, imm: hi });
        if lo != 0 {
            out.push(Instr::OpImm { op: AluOp::Add, rd, rs1: rd, imm: lo, word: true });
        }
        return;
    }
    // General 64-bit case: build the upper part, then shift in 12-bit chunks.
    let low12 = (value << 52) >> 52;
    let rest = value.wrapping_sub(low12) >> 12;
    push_li(out, rd, rest);
    out.push(Instr::OpImm { op: AluOp::Sll, rd, rs1: rd, imm: 12, word: false });
    if low12 != 0 {
        out.push(Instr::OpImm { op: AluOp::Add, rd, rs1: rd, imm: low12, word: false });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chatfuzz_isa_test_eval::eval_li;

    /// A tiny straight-line evaluator sufficient to check `li` expansions.
    mod chatfuzz_isa_test_eval {
        use crate::instr::Instr;
        use crate::semantics::alu;

        pub fn eval_li(instrs: &[Instr], rd: crate::Reg) -> i64 {
            let mut regs = [0u64; 32];
            for i in instrs {
                match *i {
                    Instr::Lui { rd, imm } => regs[rd.index()] = imm as u64,
                    Instr::OpImm { op, rd, rs1, imm, word } => {
                        regs[rd.index()] = alu(op, regs[rs1.index()], imm as u64, word);
                    }
                    _ => panic!("unexpected instruction in li expansion: {i}"),
                }
                regs[0] = 0;
            }
            regs[rd.index()] as i64
        }
    }

    #[test]
    fn li_materialises_exact_values() {
        let rd = Reg::new(10).unwrap();
        for value in [
            0i64,
            1,
            -1,
            2047,
            -2048,
            2048,
            -2049,
            0x7fff_ffff,
            -0x8000_0000,
            0x1234_5678,
            0xdead_beef_u32 as i64,
            0x1234_5678_9abc_def0,
            i64::MAX,
            i64::MIN,
            0x8000_0000_0000_0000_u64 as i64,
            -0x1234_5678_9abc,
        ] {
            let instrs = expand_li(rd, value);
            assert!(!instrs.is_empty());
            assert!(instrs.len() <= 8, "li {value:#x} took {} instrs", instrs.len());
            assert_eq!(eval_li(&instrs, rd), value, "li {value:#x}");
            // Every expansion instruction must encode.
            for i in &instrs {
                crate::encode(i).unwrap();
            }
        }
    }

    #[test]
    fn labels_resolve_backward_and_forward() {
        let mut asm = Assembler::new();
        let _a0 = Reg::new(10).unwrap();
        asm.label("start");
        asm.nop();
        asm.branch_to(BranchCond::Eq, Reg::X0, Reg::X0, "end");
        asm.jal_to(Reg::X0, "start");
        asm.label("end");
        asm.nop();
        let program = asm.assemble().unwrap();
        match program[1] {
            Instr::Branch { offset, .. } => assert_eq!(offset, 8),
            ref other => panic!("expected branch, got {other}"),
        }
        match program[2] {
            Instr::Jal { offset, .. } => assert_eq!(offset, -8),
            ref other => panic!("expected jal, got {other}"),
        }
    }

    #[test]
    fn undefined_label_reported() {
        let mut asm = Assembler::new();
        asm.jal_to(Reg::X0, "nowhere");
        assert_eq!(asm.assemble(), Err(AsmError::UndefinedLabel("nowhere".to_string())));
    }

    #[test]
    fn duplicate_label_reported() {
        let mut asm = Assembler::new();
        asm.label("x").nop();
        asm.label("x").nop();
        assert_eq!(asm.assemble(), Err(AsmError::DuplicateLabel("x".to_string())));
    }

    #[test]
    fn assemble_bytes_matches_encode_program() {
        let mut asm = Assembler::new();
        asm.nop().nop();
        let bytes = asm.assemble_bytes().unwrap();
        assert_eq!(bytes.len(), 8);
        assert_eq!(&bytes[0..4], &0x0000_0013u32.to_le_bytes());
    }
}
