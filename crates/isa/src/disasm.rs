//! Textual disassembly (`Display` for [`Instr`]).

use std::fmt;

use crate::instr::{AluOp, AmoOp, BranchCond, CsrOp, CsrSrc, Instr, MemWidth, MulDivOp, SystemOp};

fn alu_name(op: AluOp) -> &'static str {
    match op {
        AluOp::Add => "add",
        AluOp::Sub => "sub",
        AluOp::Sll => "sll",
        AluOp::Slt => "slt",
        AluOp::Sltu => "sltu",
        AluOp::Xor => "xor",
        AluOp::Srl => "srl",
        AluOp::Sra => "sra",
        AluOp::Or => "or",
        AluOp::And => "and",
    }
}

fn alu_imm_name(op: AluOp, word: bool) -> String {
    let base = match op {
        AluOp::Slt => "slti".to_string(),
        AluOp::Sltu => "sltiu".to_string(),
        other => format!("{}i", alu_name(other)),
    };
    if word {
        format!("{base}w")
    } else {
        base
    }
}

fn muldiv_name(op: MulDivOp) -> &'static str {
    match op {
        MulDivOp::Mul => "mul",
        MulDivOp::Mulh => "mulh",
        MulDivOp::Mulhsu => "mulhsu",
        MulDivOp::Mulhu => "mulhu",
        MulDivOp::Div => "div",
        MulDivOp::Divu => "divu",
        MulDivOp::Rem => "rem",
        MulDivOp::Remu => "remu",
    }
}

fn branch_name(cond: BranchCond) -> &'static str {
    match cond {
        BranchCond::Eq => "beq",
        BranchCond::Ne => "bne",
        BranchCond::Lt => "blt",
        BranchCond::Ge => "bge",
        BranchCond::Ltu => "bltu",
        BranchCond::Geu => "bgeu",
    }
}

fn amo_name(op: AmoOp) -> &'static str {
    match op {
        AmoOp::Swap => "amoswap",
        AmoOp::Add => "amoadd",
        AmoOp::Xor => "amoxor",
        AmoOp::And => "amoand",
        AmoOp::Or => "amoor",
        AmoOp::Min => "amomin",
        AmoOp::Max => "amomax",
        AmoOp::Minu => "amominu",
        AmoOp::Maxu => "amomaxu",
    }
}

fn width_suffix(width: MemWidth) -> &'static str {
    match width {
        MemWidth::B => "b",
        MemWidth::H => "h",
        MemWidth::W => "w",
        MemWidth::D => "d",
    }
}

fn aqrl_suffix(aq: bool, rl: bool) -> &'static str {
    match (aq, rl) {
        (false, false) => "",
        (true, false) => ".aq",
        (false, true) => ".rl",
        (true, true) => ".aqrl",
    }
}

fn fence_set(set: u8) -> String {
    if set == 0 {
        return "0".to_string();
    }
    let mut s = String::new();
    if set & 0b1000 != 0 {
        s.push('i');
    }
    if set & 0b0100 != 0 {
        s.push('o');
    }
    if set & 0b0010 != 0 {
        s.push('r');
    }
    if set & 0b0001 != 0 {
        s.push('w');
    }
    s
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::Lui { rd, imm } => {
                write!(f, "lui {rd}, {:#x}", (imm as u64 >> 12) & 0xf_ffff)
            }
            Instr::Auipc { rd, imm } => {
                write!(f, "auipc {rd}, {:#x}", (imm as u64 >> 12) & 0xf_ffff)
            }
            Instr::Jal { rd, offset } => write!(f, "jal {rd}, {offset}"),
            Instr::Jalr { rd, rs1, offset } => write!(f, "jalr {rd}, {offset}({rs1})"),
            Instr::Branch { cond, rs1, rs2, offset } => {
                write!(f, "{} {rs1}, {rs2}, {offset}", branch_name(cond))
            }
            Instr::Load { width, signed, rd, rs1, offset } => {
                let u = if signed { "" } else { "u" };
                write!(f, "l{}{u} {rd}, {offset}({rs1})", width_suffix(width))
            }
            Instr::Store { width, rs2, rs1, offset } => {
                write!(f, "s{} {rs2}, {offset}({rs1})", width_suffix(width))
            }
            Instr::OpImm { op, rd, rs1, imm, word } => {
                write!(f, "{} {rd}, {rs1}, {imm}", alu_imm_name(op, word))
            }
            Instr::Op { op, rd, rs1, rs2, word } => {
                let w = if word { "w" } else { "" };
                write!(f, "{}{w} {rd}, {rs1}, {rs2}", alu_name(op))
            }
            Instr::MulDiv { op, rd, rs1, rs2, word } => {
                let w = if word { "w" } else { "" };
                write!(f, "{}{w} {rd}, {rs1}, {rs2}", muldiv_name(op))
            }
            Instr::Amo { op, width, rd, rs1, rs2, aq, rl } => {
                write!(
                    f,
                    "{}.{}{} {rd}, {rs2}, ({rs1})",
                    amo_name(op),
                    width_suffix(width),
                    aqrl_suffix(aq, rl)
                )
            }
            Instr::LoadReserved { width, rd, rs1, aq, rl } => {
                write!(f, "lr.{}{} {rd}, ({rs1})", width_suffix(width), aqrl_suffix(aq, rl))
            }
            Instr::StoreConditional { width, rd, rs1, rs2, aq, rl } => {
                write!(f, "sc.{}{} {rd}, {rs2}, ({rs1})", width_suffix(width), aqrl_suffix(aq, rl))
            }
            Instr::Csr { op, rd, csr, src } => {
                let base = match op {
                    CsrOp::Rw => "csrrw",
                    CsrOp::Rs => "csrrs",
                    CsrOp::Rc => "csrrc",
                };
                match src {
                    CsrSrc::Reg(rs1) => write!(f, "{base} {rd}, {csr:#x}, {rs1}"),
                    CsrSrc::Imm(imm) => write!(f, "{base}i {rd}, {csr:#x}, {imm}"),
                }
            }
            Instr::Fence { pred, succ } => {
                write!(f, "fence {}, {}", fence_set(pred), fence_set(succ))
            }
            Instr::FenceI => write!(f, "fence.i"),
            Instr::System(op) => f.write_str(match op {
                SystemOp::Ecall => "ecall",
                SystemOp::Ebreak => "ebreak",
                SystemOp::Mret => "mret",
                SystemOp::Sret => "sret",
                SystemOp::Wfi => "wfi",
            }),
            Instr::SfenceVma { rs1, rs2 } => write!(f, "sfence.vma {rs1}, {rs2}"),
        }
    }
}

/// Disassembles a byte stream into one line per instruction slot.
///
/// Undecodable words render as `.word 0x????????`, mirroring how binutils
/// prints unknown encodings; this output feeds the human-readable mismatch
/// reports.
///
/// # Examples
///
/// ```
/// use chatfuzz_isa::disasm::disassemble;
///
/// let bytes = 0x0010_0093u32.to_le_bytes();
/// assert_eq!(disassemble(&bytes), vec!["addi ra, zero, 1".to_string()]);
/// ```
pub fn disassemble(bytes: &[u8]) -> Vec<String> {
    crate::decode_program(bytes)
        .into_iter()
        .map(|r| match r {
            Ok(instr) => instr.to_string(),
            Err(e) => format!(".word {:#010x}", e.word()),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::Reg;

    #[test]
    fn slti_and_sltiu_spellings() {
        let slti = Instr::OpImm { op: AluOp::Slt, rd: Reg::RA, rs1: Reg::SP, imm: -3, word: false };
        assert_eq!(slti.to_string(), "slti ra, sp, -3");
        let sltiu =
            Instr::OpImm { op: AluOp::Sltu, rd: Reg::RA, rs1: Reg::SP, imm: 3, word: false };
        assert_eq!(sltiu.to_string(), "sltiu ra, sp, 3");
    }

    #[test]
    fn aqrl_suffixes() {
        let amo = Instr::Amo {
            op: AmoOp::Add,
            width: MemWidth::W,
            rd: Reg::RA,
            rs1: Reg::SP,
            rs2: Reg::GP,
            aq: true,
            rl: true,
        };
        assert_eq!(amo.to_string(), "amoadd.w.aqrl ra, gp, (sp)");
    }

    #[test]
    fn fence_sets() {
        let fence = Instr::Fence { pred: 0xf, succ: 0x3 };
        assert_eq!(fence.to_string(), "fence iorw, rw");
        let none = Instr::Fence { pred: 0, succ: 0 };
        assert_eq!(none.to_string(), "fence 0, 0");
    }

    #[test]
    fn unknown_words_render_as_word_directive() {
        let bytes = 0u32.to_le_bytes();
        assert_eq!(disassemble(&bytes), vec![".word 0x00000000".to_string()]);
    }

    #[test]
    fn negative_lui_prints_20_bit_field() {
        let lui = Instr::Lui { rd: Reg::RA, imm: -4096 };
        assert_eq!(lui.to_string(), "lui ra, 0xfffff");
    }
}
