//! The decoded instruction model.

use crate::reg::Reg;

/// Memory access width for loads, stores and atomics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemWidth {
    /// 1 byte.
    B,
    /// 2 bytes.
    H,
    /// 4 bytes.
    W,
    /// 8 bytes.
    D,
}

impl MemWidth {
    /// Access size in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            MemWidth::B => 1,
            MemWidth::H => 2,
            MemWidth::W => 4,
            MemWidth::D => 8,
        }
    }

    /// The `funct3` width field for loads/stores (unsigned bit excluded).
    pub fn funct3(self) -> u32 {
        match self {
            MemWidth::B => 0,
            MemWidth::H => 1,
            MemWidth::W => 2,
            MemWidth::D => 3,
        }
    }
}

/// Integer ALU operation (shared between register and immediate forms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Addition (`add`/`addi`/`addw`/`addiw`).
    Add,
    /// Subtraction (`sub`/`subw`; no immediate form).
    Sub,
    /// Logical left shift.
    Sll,
    /// Signed set-less-than.
    Slt,
    /// Unsigned set-less-than.
    Sltu,
    /// Bitwise exclusive or.
    Xor,
    /// Logical right shift.
    Srl,
    /// Arithmetic right shift.
    Sra,
    /// Bitwise or.
    Or,
    /// Bitwise and.
    And,
}

impl AluOp {
    /// `funct3` of the operation in OP/OP-IMM encodings.
    pub fn funct3(self) -> u32 {
        match self {
            AluOp::Add | AluOp::Sub => 0b000,
            AluOp::Sll => 0b001,
            AluOp::Slt => 0b010,
            AluOp::Sltu => 0b011,
            AluOp::Xor => 0b100,
            AluOp::Srl | AluOp::Sra => 0b101,
            AluOp::Or => 0b110,
            AluOp::And => 0b111,
        }
    }

    /// Whether a 32-bit (`*W`) form of the operation exists.
    pub fn has_word_form(self) -> bool {
        matches!(self, AluOp::Add | AluOp::Sub | AluOp::Sll | AluOp::Srl | AluOp::Sra)
    }

    /// Whether an immediate form of the operation exists.
    pub fn has_imm_form(self) -> bool {
        self != AluOp::Sub
    }

    /// Whether the operation is a shift (immediate form uses a shamt field).
    pub fn is_shift(self) -> bool {
        matches!(self, AluOp::Sll | AluOp::Srl | AluOp::Sra)
    }
}

/// M-extension multiply/divide operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MulDivOp {
    /// Low 64 bits of the product.
    Mul,
    /// High bits, signed × signed.
    Mulh,
    /// High bits, signed × unsigned.
    Mulhsu,
    /// High bits, unsigned × unsigned.
    Mulhu,
    /// Signed division.
    Div,
    /// Unsigned division.
    Divu,
    /// Signed remainder.
    Rem,
    /// Unsigned remainder.
    Remu,
}

impl MulDivOp {
    /// `funct3` of the operation in OP/OP-32 with `funct7 = 0000001`.
    pub fn funct3(self) -> u32 {
        match self {
            MulDivOp::Mul => 0b000,
            MulDivOp::Mulh => 0b001,
            MulDivOp::Mulhsu => 0b010,
            MulDivOp::Mulhu => 0b011,
            MulDivOp::Div => 0b100,
            MulDivOp::Divu => 0b101,
            MulDivOp::Rem => 0b110,
            MulDivOp::Remu => 0b111,
        }
    }

    /// Whether the operation has a `*W` form (`mulw`, `divw`, …).
    pub fn has_word_form(self) -> bool {
        !matches!(self, MulDivOp::Mulh | MulDivOp::Mulhsu | MulDivOp::Mulhu)
    }

    /// Whether the operation is a divide or remainder (multi-cycle in cores).
    pub fn is_div_rem(self) -> bool {
        matches!(self, MulDivOp::Div | MulDivOp::Divu | MulDivOp::Rem | MulDivOp::Remu)
    }
}

/// Conditional-branch comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchCond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than.
    Ltu,
    /// Unsigned greater-or-equal.
    Geu,
}

impl BranchCond {
    /// `funct3` in the BRANCH encoding.
    pub fn funct3(self) -> u32 {
        match self {
            BranchCond::Eq => 0b000,
            BranchCond::Ne => 0b001,
            BranchCond::Lt => 0b100,
            BranchCond::Ge => 0b101,
            BranchCond::Ltu => 0b110,
            BranchCond::Geu => 0b111,
        }
    }
}

/// A-extension read-modify-write operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AmoOp {
    /// Swap.
    Swap,
    /// Add.
    Add,
    /// Exclusive or.
    Xor,
    /// And.
    And,
    /// Or.
    Or,
    /// Signed minimum.
    Min,
    /// Signed maximum.
    Max,
    /// Unsigned minimum.
    Minu,
    /// Unsigned maximum.
    Maxu,
}

impl AmoOp {
    /// The `funct5` field of the AMO encoding.
    pub fn funct5(self) -> u32 {
        match self {
            AmoOp::Swap => 0b00001,
            AmoOp::Add => 0b00000,
            AmoOp::Xor => 0b00100,
            AmoOp::And => 0b01100,
            AmoOp::Or => 0b01000,
            AmoOp::Min => 0b10000,
            AmoOp::Max => 0b10100,
            AmoOp::Minu => 0b11000,
            AmoOp::Maxu => 0b11100,
        }
    }
}

/// Zicsr access operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CsrOp {
    /// Atomic read/write (`csrrw`/`csrrwi`).
    Rw,
    /// Atomic read and set bits (`csrrs`/`csrrsi`).
    Rs,
    /// Atomic read and clear bits (`csrrc`/`csrrci`).
    Rc,
}

/// Source operand of a CSR access: a register or a 5-bit zero-extended
/// immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CsrSrc {
    /// Register form (`csrrw` etc.).
    Reg(Reg),
    /// Immediate form (`csrrwi` etc.), value in `0..32`.
    Imm(u8),
}

/// Privileged / system operation without operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemOp {
    /// Environment call.
    Ecall,
    /// Breakpoint.
    Ebreak,
    /// Return from machine-mode trap.
    Mret,
    /// Return from supervisor-mode trap.
    Sret,
    /// Wait for interrupt.
    Wfi,
}

/// A decoded RV64IMA+Zicsr+Zifencei instruction.
///
/// Instructions are grouped by format rather than given one variant each;
/// this keeps the encoder, decoder and both simulators small and uniform.
///
/// # Examples
///
/// ```
/// use chatfuzz_isa::{Instr, Reg};
///
/// let add = Instr::Op { op: chatfuzz_isa::AluOp::Add, rd: Reg::RA, rs1: Reg::X0, rs2: Reg::X0, word: false };
/// assert_eq!(add.to_string(), "add ra, zero, zero");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// `lui rd, imm` — load upper immediate. `imm` is the already-shifted
    /// 32-bit-aligned value, sign-extended to 64 bits.
    Lui {
        /// Destination register.
        rd: Reg,
        /// Sign-extended `imm[31:12] << 12` value.
        imm: i64,
    },
    /// `auipc rd, imm` — add upper immediate to PC.
    Auipc {
        /// Destination register.
        rd: Reg,
        /// Sign-extended `imm[31:12] << 12` value.
        imm: i64,
    },
    /// `jal rd, offset` — jump and link.
    Jal {
        /// Link register.
        rd: Reg,
        /// PC-relative byte offset (multiple of 2, ±1 MiB).
        offset: i64,
    },
    /// `jalr rd, offset(rs1)` — indirect jump and link.
    Jalr {
        /// Link register.
        rd: Reg,
        /// Base register.
        rs1: Reg,
        /// Signed 12-bit byte offset.
        offset: i64,
    },
    /// Conditional branch `b<cond> rs1, rs2, offset`.
    Branch {
        /// Comparison.
        cond: BranchCond,
        /// Left operand.
        rs1: Reg,
        /// Right operand.
        rs2: Reg,
        /// PC-relative byte offset (multiple of 2, ±4 KiB).
        offset: i64,
    },
    /// Load `l{b,h,w,d}[u] rd, offset(rs1)`.
    Load {
        /// Access width.
        width: MemWidth,
        /// Sign-extend (`true`) or zero-extend the loaded value.
        signed: bool,
        /// Destination register.
        rd: Reg,
        /// Base register.
        rs1: Reg,
        /// Signed 12-bit byte offset.
        offset: i64,
    },
    /// Store `s{b,h,w,d} rs2, offset(rs1)`.
    Store {
        /// Access width.
        width: MemWidth,
        /// Source register.
        rs2: Reg,
        /// Base register.
        rs1: Reg,
        /// Signed 12-bit byte offset.
        offset: i64,
    },
    /// Register–immediate ALU operation (`addi`, `slli`, `addiw`, …).
    OpImm {
        /// Operation; [`AluOp::Sub`] is invalid here.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs1: Reg,
        /// Signed 12-bit immediate, or shift amount for shifts.
        imm: i64,
        /// `true` for the 32-bit `*W` form.
        word: bool,
    },
    /// Register–register ALU operation (`add`, `sub`, `sllw`, …).
    Op {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// Left source register.
        rs1: Reg,
        /// Right source register.
        rs2: Reg,
        /// `true` for the 32-bit `*W` form.
        word: bool,
    },
    /// M-extension multiply/divide (`mul`, `divu`, `remw`, …).
    MulDiv {
        /// Operation.
        op: MulDivOp,
        /// Destination register.
        rd: Reg,
        /// Left source register.
        rs1: Reg,
        /// Right source register.
        rs2: Reg,
        /// `true` for the 32-bit `*W` form.
        word: bool,
    },
    /// A-extension read-modify-write (`amoadd.w`, `amoor.d`, …).
    Amo {
        /// Read-modify-write operation.
        op: AmoOp,
        /// Access width; only [`MemWidth::W`] and [`MemWidth::D`] are valid.
        width: MemWidth,
        /// Destination register (receives the old memory value).
        rd: Reg,
        /// Address register.
        rs1: Reg,
        /// Operand register.
        rs2: Reg,
        /// Acquire ordering bit.
        aq: bool,
        /// Release ordering bit.
        rl: bool,
    },
    /// `lr.{w,d} rd, (rs1)` — load reserved.
    LoadReserved {
        /// Access width (`W` or `D`).
        width: MemWidth,
        /// Destination register.
        rd: Reg,
        /// Address register.
        rs1: Reg,
        /// Acquire ordering bit.
        aq: bool,
        /// Release ordering bit.
        rl: bool,
    },
    /// `sc.{w,d} rd, rs2, (rs1)` — store conditional.
    StoreConditional {
        /// Access width (`W` or `D`).
        width: MemWidth,
        /// Destination register (0 on success, non-zero on failure).
        rd: Reg,
        /// Address register.
        rs1: Reg,
        /// Value register.
        rs2: Reg,
        /// Acquire ordering bit.
        aq: bool,
        /// Release ordering bit.
        rl: bool,
    },
    /// Zicsr access (`csrrw`, `csrrsi`, …).
    Csr {
        /// Access operation.
        op: CsrOp,
        /// Destination register (receives the old CSR value).
        rd: Reg,
        /// CSR address (12 bits).
        csr: u16,
        /// Source operand.
        src: CsrSrc,
    },
    /// `fence pred, succ` — memory ordering fence.
    Fence {
        /// Predecessor set (4 bits: I/O/R/W).
        pred: u8,
        /// Successor set (4 bits: I/O/R/W).
        succ: u8,
    },
    /// `fence.i` — instruction-fetch fence (Zifencei).
    FenceI,
    /// Nullary system instruction (`ecall`, `mret`, `wfi`, …).
    System(SystemOp),
    /// `sfence.vma rs1, rs2` — supervisor address-translation fence.
    SfenceVma {
        /// Address register (0 means all addresses).
        rs1: Reg,
        /// ASID register (0 means all address spaces).
        rs2: Reg,
    },
}

impl Instr {
    /// The canonical `nop` (`addi zero, zero, 0`).
    pub const NOP: Instr =
        Instr::OpImm { op: AluOp::Add, rd: Reg::X0, rs1: Reg::X0, imm: 0, word: false };

    /// The destination register written by this instruction, if any.
    ///
    /// `x0` destinations are reported as `None` except for
    /// [`Instr::StoreConditional`], whose success flag still architecturally
    /// targets `rd` (the register file ignores the write when `rd = x0`).
    pub fn rd(&self) -> Option<Reg> {
        let rd = match *self {
            Instr::Lui { rd, .. }
            | Instr::Auipc { rd, .. }
            | Instr::Jal { rd, .. }
            | Instr::Jalr { rd, .. }
            | Instr::Load { rd, .. }
            | Instr::OpImm { rd, .. }
            | Instr::Op { rd, .. }
            | Instr::MulDiv { rd, .. }
            | Instr::Amo { rd, .. }
            | Instr::LoadReserved { rd, .. }
            | Instr::StoreConditional { rd, .. }
            | Instr::Csr { rd, .. } => rd,
            Instr::Branch { .. }
            | Instr::Store { .. }
            | Instr::Fence { .. }
            | Instr::FenceI
            | Instr::System(_)
            | Instr::SfenceVma { .. } => return None,
        };
        (!rd.is_zero()).then_some(rd)
    }

    /// Source registers read by this instruction, in operand order.
    pub fn sources(&self) -> Vec<Reg> {
        match *self {
            Instr::Lui { .. }
            | Instr::Auipc { .. }
            | Instr::Jal { .. }
            | Instr::Fence { .. }
            | Instr::FenceI
            | Instr::System(_) => Vec::new(),
            Instr::Jalr { rs1, .. } | Instr::Load { rs1, .. } | Instr::OpImm { rs1, .. } => {
                vec![rs1]
            }
            Instr::Branch { rs1, rs2, .. }
            | Instr::Store { rs1, rs2, .. }
            | Instr::Op { rs1, rs2, .. }
            | Instr::MulDiv { rs1, rs2, .. }
            | Instr::Amo { rs1, rs2, .. }
            | Instr::StoreConditional { rs1, rs2, .. }
            | Instr::SfenceVma { rs1, rs2 } => vec![rs1, rs2],
            Instr::LoadReserved { rs1, .. } => vec![rs1],
            Instr::Csr { src, .. } => match src {
                CsrSrc::Reg(rs1) => vec![rs1],
                CsrSrc::Imm(_) => Vec::new(),
            },
        }
    }

    /// Whether this instruction can transfer control (branch/jump/trap/xret).
    pub fn is_control_flow(&self) -> bool {
        matches!(
            self,
            Instr::Jal { .. }
                | Instr::Jalr { .. }
                | Instr::Branch { .. }
                | Instr::System(
                    SystemOp::Ecall | SystemOp::Ebreak | SystemOp::Mret | SystemOp::Sret
                )
        )
    }

    /// Whether this instruction accesses data memory.
    pub fn is_mem(&self) -> bool {
        matches!(
            self,
            Instr::Load { .. }
                | Instr::Store { .. }
                | Instr::Amo { .. }
                | Instr::LoadReserved { .. }
                | Instr::StoreConditional { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nop_has_no_rd_or_sources_effects() {
        assert_eq!(Instr::NOP.rd(), None);
        assert_eq!(Instr::NOP.sources(), vec![Reg::X0]);
    }

    #[test]
    fn rd_hides_x0() {
        let i = Instr::Lui { rd: Reg::X0, imm: 0x1000 };
        assert_eq!(i.rd(), None);
        let i = Instr::Lui { rd: Reg::RA, imm: 0x1000 };
        assert_eq!(i.rd(), Some(Reg::RA));
    }

    #[test]
    fn control_flow_classification() {
        assert!(Instr::Jal { rd: Reg::X0, offset: 8 }.is_control_flow());
        assert!(Instr::System(SystemOp::Ecall).is_control_flow());
        assert!(!Instr::System(SystemOp::Wfi).is_control_flow());
        assert!(!Instr::NOP.is_control_flow());
    }

    #[test]
    fn mem_classification() {
        let ld =
            Instr::Load { width: MemWidth::D, signed: true, rd: Reg::RA, rs1: Reg::SP, offset: 0 };
        assert!(ld.is_mem());
        assert!(!Instr::NOP.is_mem());
    }

    #[test]
    fn alu_word_forms() {
        assert!(AluOp::Add.has_word_form());
        assert!(!AluOp::And.has_word_form());
        assert!(!AluOp::Sub.has_imm_form());
    }

    #[test]
    fn muldiv_word_forms() {
        assert!(MulDivOp::Mul.has_word_form());
        assert!(!MulDivOp::Mulh.has_word_form());
        assert!(MulDivOp::Rem.is_div_rem());
        assert!(!MulDivOp::Mul.is_div_rem());
    }

    #[test]
    fn mem_width_bytes() {
        assert_eq!(MemWidth::B.bytes(), 1);
        assert_eq!(MemWidth::D.bytes(), 8);
    }
}
