//! Integer register file names.

use std::fmt;

/// One of the 32 RISC-V integer registers.
///
/// The wrapper guarantees the index is in `0..32`, so downstream register
/// files can index arrays without bounds checks failing.
///
/// # Examples
///
/// ```
/// use chatfuzz_isa::Reg;
///
/// let sp = Reg::new(2).unwrap();
/// assert_eq!(sp.to_string(), "sp");
/// assert_eq!(sp.index(), 2);
/// assert!(Reg::new(32).is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// The hard-wired zero register `x0`/`zero`.
    pub const X0: Reg = Reg(0);
    /// Return address register `x1`/`ra`.
    pub const RA: Reg = Reg(1);
    /// Stack pointer `x2`/`sp`.
    pub const SP: Reg = Reg(2);
    /// Global pointer `x3`/`gp`.
    pub const GP: Reg = Reg(3);
    /// Thread pointer `x4`/`tp`.
    pub const TP: Reg = Reg(4);

    /// Creates a register from its index, returning `None` if out of range.
    pub fn new(index: u8) -> Option<Reg> {
        (index < 32).then_some(Reg(index))
    }

    /// Creates a register from the low five bits of an encoded field.
    pub fn from_field(bits: u32) -> Reg {
        Reg((bits & 0x1f) as u8)
    }

    /// The register index in `0..32`.
    pub fn index(self) -> usize {
        usize::from(self.0)
    }

    /// Whether this is the hard-wired zero register.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// ABI mnemonic (e.g. `a0`, `s3`, `zero`).
    pub fn abi_name(self) -> &'static str {
        ABI_NAMES[self.index()]
    }

    /// All 32 registers in index order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..32).map(Reg)
    }

    /// Argument registers `a0..=a7` (`x10..=x17`).
    pub fn args() -> impl Iterator<Item = Reg> {
        (10..18).map(Reg)
    }

    /// Saved registers `s0..=s11`.
    pub fn saved() -> impl Iterator<Item = Reg> {
        [8u8, 9].into_iter().chain(18..28).map(Reg)
    }

    /// Temporary registers `t0..=t6`.
    pub fn temps() -> impl Iterator<Item = Reg> {
        [5u8, 6, 7].into_iter().chain(28..32).map(Reg)
    }
}

const ABI_NAMES: [&str; 32] = [
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3", "a4",
    "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11", "t3", "t4",
    "t5", "t6",
];

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abi_name())
    }
}

impl From<Reg> for u32 {
    fn from(reg: Reg) -> u32 {
        u32::from(reg.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_abi() {
        assert_eq!(Reg::X0.to_string(), "zero");
        assert_eq!(Reg::new(10).unwrap().to_string(), "a0");
        assert_eq!(Reg::new(31).unwrap().to_string(), "t6");
        assert_eq!(Reg::new(8).unwrap().to_string(), "s0");
    }

    #[test]
    fn out_of_range_rejected() {
        assert!(Reg::new(32).is_none());
        assert!(Reg::new(255).is_none());
    }

    #[test]
    fn from_field_masks() {
        assert_eq!(Reg::from_field(0xffff_ffe3), Reg::new(3).unwrap());
    }

    #[test]
    fn register_classes_are_disjoint_and_cover() {
        let mut seen = [0u8; 32];
        for r in Reg::args().chain(Reg::saved()).chain(Reg::temps()) {
            seen[r.index()] += 1;
        }
        // zero, ra, sp, gp, tp are in no class.
        assert!(seen.iter().all(|&c| c <= 1));
        assert_eq!(seen.iter().map(|&c| usize::from(c)).sum::<usize>(), 27);
    }

    #[test]
    fn all_yields_32() {
        assert_eq!(Reg::all().count(), 32);
    }
}
