//! Proximal policy optimisation for the ChatFuzz language model.
//!
//! The paper's training steps 2 (disassembler-rewarded cleanup) and 3
//! (coverage-rewarded optimisation) are both PPO runs over the GPT policy,
//! differing only in the reward function supplied by the caller. This
//! crate provides the shared machinery: [`gae`] advantage estimation and
//! the [`PpoTrainer`] (clipped surrogate, value regression, entropy bonus,
//! per-token KL penalty against a frozen reference policy, KL early stop).
//!
//! # Examples
//!
//! ```
//! use chatfuzz_lm::{Gpt, GptConfig};
//! use chatfuzz_rl::{PpoConfig, PpoTrainer};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let policy = Gpt::new(GptConfig::tiny(12), &mut rng);
//! let mut trainer = PpoTrainer::new(policy, PpoConfig { max_new_tokens: 4, ..Default::default() });
//! let tokens = trainer.sample(&[1], &mut rng);
//! let rollout = trainer.score(tokens, 1, 1.0); // caller-supplied reward
//! let stats = trainer.step(&[rollout]);
//! assert!(stats.epochs_run >= 1);
//! ```

pub mod gae;
pub mod ppo;

pub use gae::{gae, normalize};
pub use ppo::{action_logprobs_values, PpoConfig, PpoStats, PpoTrainer, Rollout};
