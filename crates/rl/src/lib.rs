//! Proximal policy optimisation for the ChatFuzz language model.
//!
//! The paper's training steps 2 (disassembler-rewarded cleanup) and 3
//! (coverage-rewarded optimisation) are both PPO runs over the GPT policy,
//! differing only in the reward function supplied by the caller. This
//! crate provides the shared machinery: [`gae`] advantage estimation and
//! the [`PpoTrainer`] (clipped surrogate, value regression, entropy bonus,
//! per-token KL penalty against a frozen reference policy, KL early stop).
//!
//! # Deterministic publish points (PR 7)
//!
//! Under the campaign's actor/learner split the trainer is the
//! **learner**: it never samples on the hot path. Rollouts accumulate in
//! a queue and [`PpoTrainer::step`] runs only at publish boundaries —
//! every `publish_every` observed batches, on a bounded, deterministic
//! replay selection (top-reward, arrival-order ties) — after which the
//! weights are copied to the frozen actor snapshot and the publish epoch
//! increments. Because the boundary is a pure function of the batch
//! count, a resumed campaign replays the same steps on the same rollouts
//! and republishes bit-identical weights. `publish_every == 0` keeps the
//! original serialized train-every-batch loop as the equality baseline.
//!
//! # Examples
//!
//! ```
//! use chatfuzz_lm::{Gpt, GptConfig};
//! use chatfuzz_rl::{PpoConfig, PpoTrainer};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let policy = Gpt::new(GptConfig::tiny(12), &mut rng);
//! let mut trainer = PpoTrainer::new(policy, PpoConfig { max_new_tokens: 4, ..Default::default() });
//! let tokens = trainer.sample(&[1], &mut rng);
//! let rollout = trainer.score(tokens, 1, 1.0); // caller-supplied reward
//! let stats = trainer.step(&[rollout]);
//! assert!(stats.epochs_run >= 1);
//! ```

pub mod gae;
pub mod ppo;

pub use gae::{gae, normalize};
pub use ppo::{action_logprobs_values, PpoConfig, PpoStats, PpoTrainer, Rollout};
