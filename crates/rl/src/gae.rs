//! Generalised advantage estimation (GAE-λ).

/// Computes per-step advantages and returns for one trajectory.
///
/// `rewards[t]` is the reward received after action `t`; `values[t]` is the
/// critic's estimate at the state action `t` was taken from. The episode is
/// assumed to terminate after the last step (bootstrap value 0).
///
/// Returns `(advantages, returns)` where `returns[t] = advantages[t] +
/// values[t]` (the value-function regression target).
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// use chatfuzz_rl::gae::gae;
///
/// let (adv, ret) = gae(&[0.0, 1.0], &[0.5, 0.5], 1.0, 1.0);
/// // delta_1 = 1 - 0.5 = 0.5 ; delta_0 = 0 + 0.5 - 0.5 = 0
/// assert_eq!(adv, vec![0.5, 0.5]);
/// assert_eq!(ret, vec![1.0, 1.0]);
/// ```
pub fn gae(rewards: &[f32], values: &[f32], gamma: f32, lam: f32) -> (Vec<f32>, Vec<f32>) {
    assert_eq!(rewards.len(), values.len(), "one value per reward");
    let n = rewards.len();
    let mut advantages = vec![0.0f32; n];
    let mut acc = 0.0f32;
    for t in (0..n).rev() {
        let next_value = if t + 1 < n { values[t + 1] } else { 0.0 };
        let delta = rewards[t] + gamma * next_value - values[t];
        acc = delta + gamma * lam * acc;
        advantages[t] = acc;
    }
    let returns = advantages.iter().zip(values).map(|(a, v)| a + v).collect();
    (advantages, returns)
}

/// Normalises advantages to zero mean / unit variance (no-op for fewer
/// than two elements or zero variance).
pub fn normalize(advantages: &mut [f32]) {
    if advantages.len() < 2 {
        return;
    }
    let n = advantages.len() as f32;
    let mean: f32 = advantages.iter().sum::<f32>() / n;
    let var: f32 = advantages.iter().map(|a| (a - mean) * (a - mean)).sum::<f32>() / n;
    if var <= 1e-12 {
        return;
    }
    let rstd = 1.0 / var.sqrt();
    for a in advantages {
        *a = (*a - mean) * rstd;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_step_is_reward_minus_value() {
        let (adv, ret) = gae(&[2.0], &[0.5], 0.99, 0.95);
        assert!((adv[0] - 1.5).abs() < 1e-6);
        assert!((ret[0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn hand_computed_three_steps() {
        // gamma = lam = 1: advantage_t = sum of future deltas.
        let rewards = [0.0, 0.0, 1.0];
        let values = [0.2, 0.4, 0.6];
        let (adv, _) = gae(&rewards, &values, 1.0, 1.0);
        // deltas: d0 = 0 + 0.4 - 0.2 = 0.2; d1 = 0 + 0.6 - 0.4 = 0.2; d2 = 1 - 0.6 = 0.4
        assert!((adv[2] - 0.4).abs() < 1e-6);
        assert!((adv[1] - 0.6).abs() < 1e-6);
        assert!((adv[0] - 0.8).abs() < 1e-6);
    }

    #[test]
    fn lam_zero_is_one_step_td() {
        let rewards = [0.0, 1.0];
        let values = [0.5, 0.25];
        let (adv, _) = gae(&rewards, &values, 1.0, 0.0);
        assert!((adv[0] - (-0.25)).abs() < 1e-6); // 0 + 0.25 - 0.5
        assert!((adv[1] - 0.75).abs() < 1e-6);
    }

    #[test]
    fn normalize_zero_means_unit_var() {
        let mut a = vec![1.0, 2.0, 3.0, 4.0];
        normalize(&mut a);
        let mean: f32 = a.iter().sum::<f32>() / 4.0;
        let var: f32 = a.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-6);
        assert!((var - 1.0).abs() < 1e-4);
    }

    #[test]
    fn normalize_handles_degenerate_inputs() {
        let mut one = vec![5.0];
        normalize(&mut one);
        assert_eq!(one, vec![5.0]);
        let mut flat = vec![2.0, 2.0, 2.0];
        normalize(&mut flat);
        assert_eq!(flat, vec![2.0, 2.0, 2.0]);
    }
}
