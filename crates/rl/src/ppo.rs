//! PPO for language models (paper §III-B.2/3).
//!
//! The trainer mirrors the trl recipe the paper builds on: a frozen
//! reference copy of the policy provides per-token KL penalties folded into
//! the reward; advantages come from GAE over the value head; the update is
//! the clipped surrogate objective plus value regression and an entropy
//! bonus, with KL-based early stopping across epochs.

use chatfuzz_autograd::{Adam, AdamConfig, Tape, Tensor};
use chatfuzz_lm::{Gpt, KvCache};
use rand::Rng;

use crate::gae::{gae, normalize};

/// PPO hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct PpoConfig {
    /// Surrogate clip range ε.
    pub clip: f32,
    /// Adam learning rate.
    pub lr: f32,
    /// Optimisation epochs per batch of rollouts.
    pub epochs: usize,
    /// Discount factor.
    pub gamma: f32,
    /// GAE λ.
    pub lam: f32,
    /// Per-token KL penalty coefficient (vs the frozen reference).
    pub kl_coef: f32,
    /// Value-loss weight.
    pub vf_coef: f32,
    /// Entropy-bonus weight.
    pub ent_coef: f32,
    /// Early-stop threshold on mean approximate KL (old‖new).
    pub target_kl: f32,
    /// Sampling temperature during rollouts.
    pub temperature: f32,
    /// Top-k cutoff during rollouts.
    pub top_k: usize,
    /// Maximum generated tokens per rollout.
    pub max_new_tokens: usize,
}

impl Default for PpoConfig {
    fn default() -> Self {
        PpoConfig {
            clip: 0.2,
            lr: 1e-4,
            epochs: 3,
            gamma: 1.0,
            lam: 0.95,
            kl_coef: 0.05,
            vf_coef: 0.5,
            ent_coef: 0.01,
            target_kl: 0.3,
            temperature: 1.0,
            top_k: 32,
            max_new_tokens: 48,
        }
    }
}

/// One scored trajectory.
#[derive(Debug, Clone)]
pub struct Rollout {
    /// Full token sequence (prompt + generated).
    pub tokens: Vec<u32>,
    /// Prompt length (generation starts here).
    pub prompt_len: usize,
    /// Terminal task reward (e.g. the disassembler or coverage score).
    pub reward: f32,
    /// Policy log-probabilities of the generated tokens at collection time.
    pub old_logprobs: Vec<f32>,
    /// Reference-model log-probabilities of the generated tokens.
    pub ref_logprobs: Vec<f32>,
    /// Value-head estimates at each action state.
    pub values: Vec<f32>,
}

impl Rollout {
    /// Number of generated tokens (actions).
    pub fn actions(&self) -> usize {
        self.tokens.len() - self.prompt_len
    }
}

/// Telemetry for one [`PpoTrainer::step`].
#[derive(Debug, Clone, Copy, Default)]
pub struct PpoStats {
    /// Mean terminal task reward of the batch.
    pub mean_reward: f32,
    /// Mean approximate KL(old‖new) after the last epoch.
    pub approx_kl: f32,
    /// Mean clipped-surrogate policy loss.
    pub policy_loss: f32,
    /// Mean value loss.
    pub value_loss: f32,
    /// Mean policy entropy over action positions.
    pub entropy: f32,
    /// Fraction of ratios that hit the clip boundary.
    pub clip_frac: f32,
    /// Epochs actually run (early stop may cut them short).
    pub epochs_run: usize,
}

/// The PPO trainer: owns the policy and its frozen reference.
#[derive(Debug)]
pub struct PpoTrainer {
    policy: Gpt,
    reference: Gpt,
    adam: Adam,
    cfg: PpoConfig,
}

impl PpoTrainer {
    /// Wraps a (pre-trained) policy; the reference model is a frozen copy.
    pub fn new(policy: Gpt, cfg: PpoConfig) -> PpoTrainer {
        let reference = policy.clone();
        PpoTrainer {
            policy,
            reference,
            adam: Adam::new(AdamConfig { lr: cfg.lr, ..Default::default() }),
            cfg,
        }
    }

    /// The current policy.
    pub fn policy(&self) -> &Gpt {
        &self.policy
    }

    /// Mutable access to the policy — checkpoint restores write the
    /// trained weights back through this (the frozen reference model is
    /// deliberately untouched: it is a construction artefact, recreated
    /// identically when the trainer is rebuilt with the same arguments).
    pub fn policy_mut(&mut self) -> &mut Gpt {
        &mut self.policy
    }

    /// The optimiser (moment export for checkpoints).
    pub fn optimizer(&self) -> &Adam {
        &self.adam
    }

    /// Mutable optimiser access (moment restore on resume).
    pub fn optimizer_mut(&mut self) -> &mut Adam {
        &mut self.adam
    }

    /// Consumes the trainer, returning the trained policy.
    pub fn into_policy(self) -> Gpt {
        self.policy
    }

    /// The configuration.
    pub fn config(&self) -> &PpoConfig {
        &self.cfg
    }

    /// Re-freezes the reference model to the current policy (used between
    /// the paper's cleanup and coverage training phases).
    pub fn refresh_reference(&mut self) {
        self.reference = self.policy.clone();
    }

    /// Samples one trajectory from the policy.
    ///
    /// Generation is capped so the *whole* sequence fits the policy's
    /// context window — PPO scoring forwards the full prompt+continuation,
    /// unlike free-running generation which can slide its window.
    pub fn sample<R: Rng>(&self, prompt: &[u32], rng: &mut R) -> Vec<u32> {
        let window = self.policy.config().max_seq;
        let budget = window.saturating_sub(prompt.len()).min(self.cfg.max_new_tokens);
        if budget == 0 {
            return prompt.to_vec();
        }
        self.policy.generate(prompt, budget, self.cfg.temperature, self.cfg.top_k, rng)
    }

    /// KV-cached [`PpoTrainer::sample`]: identical budget clamp, identical
    /// tokens under the same RNG (`Gpt::generate_into` is pinned
    /// token-equal to the naive sampler), but `O(T)` per token through the
    /// reusable cache arena instead of a fresh full forward per token.
    pub fn sample_into<R: Rng>(
        &self,
        prompt: &[u32],
        rng: &mut R,
        cache: &mut KvCache,
        out: &mut Vec<u32>,
    ) {
        let window = self.policy.config().max_seq;
        let budget = window.saturating_sub(prompt.len()).min(self.cfg.max_new_tokens);
        if budget == 0 {
            out.clear();
            out.extend_from_slice(prompt);
            return;
        }
        self.policy.generate_into(
            prompt,
            budget,
            self.cfg.temperature,
            self.cfg.top_k,
            rng,
            cache,
            out,
        );
    }

    /// Builds a scored [`Rollout`] from a sampled sequence and its task
    /// reward, computing old/reference log-probabilities and values.
    ///
    /// # Panics
    ///
    /// Panics if nothing was generated (`tokens.len() <= prompt_len`).
    pub fn score(&self, tokens: Vec<u32>, prompt_len: usize, reward: f32) -> Rollout {
        assert!(tokens.len() > prompt_len, "rollout generated no tokens");
        let (old_logprobs, values) = action_logprobs_values(&self.policy, &tokens, prompt_len);
        let (ref_logprobs, _) = action_logprobs_values(&self.reference, &tokens, prompt_len);
        Rollout { tokens, prompt_len, reward, old_logprobs, ref_logprobs, values }
    }

    /// Runs PPO epochs over a batch of rollouts and updates the policy.
    ///
    /// # Panics
    ///
    /// Panics if `rollouts` is empty.
    pub fn step(&mut self, rollouts: &[Rollout]) -> PpoStats {
        assert!(!rollouts.is_empty(), "empty rollout batch");
        let mut stats = PpoStats {
            mean_reward: rollouts.iter().map(|r| r.reward).sum::<f32>() / rollouts.len() as f32,
            ..Default::default()
        };

        // Per-rollout advantages/returns from KL-shaped rewards.
        let mut shaped: Vec<(Vec<f32>, Vec<f32>)> = Vec::with_capacity(rollouts.len());
        for r in rollouts {
            let n = r.actions();
            let mut rewards = vec![0.0f32; n];
            for (reward, (old, reference)) in
                rewards.iter_mut().zip(r.old_logprobs.iter().zip(&r.ref_logprobs))
            {
                *reward = -self.cfg.kl_coef * (old - reference);
            }
            rewards[n - 1] += r.reward;
            let (mut adv, ret) = gae(&rewards, &r.values, self.cfg.gamma, self.cfg.lam);
            normalize(&mut adv);
            shaped.push((adv, ret));
        }

        for epoch in 0..self.cfg.epochs {
            let mut grads: Option<Vec<Tensor>> = None;
            let mut kl_sum = 0.0;
            let mut pl_sum = 0.0;
            let mut vl_sum = 0.0;
            let mut ent_sum = 0.0;
            let mut clip_hits = 0usize;
            let mut clip_total = 0usize;
            for (r, (adv, ret)) in rollouts.iter().zip(&shaped) {
                let (loss_parts, tape_grads) = self.rollout_loss(r, adv, ret);
                kl_sum += loss_parts.kl;
                pl_sum += loss_parts.policy;
                vl_sum += loss_parts.value;
                ent_sum += loss_parts.entropy;
                clip_hits += loss_parts.clip_hits;
                clip_total += loss_parts.clip_total;
                match &mut grads {
                    Some(acc) => {
                        for (a, g) in acc.iter_mut().zip(&tape_grads) {
                            a.add_assign(g);
                        }
                    }
                    None => grads = Some(tape_grads),
                }
            }
            let mut grads = grads.expect("gradients");
            let scale = 1.0 / rollouts.len() as f32;
            for g in &mut grads {
                g.scale_assign(scale);
            }
            let mut params = self.policy.params_mut();
            self.adam.step(&mut params, &grads);

            let n = rollouts.len() as f32;
            stats.approx_kl = kl_sum / n;
            stats.policy_loss = pl_sum / n;
            stats.value_loss = vl_sum / n;
            stats.entropy = ent_sum / n;
            stats.clip_frac =
                if clip_total == 0 { 0.0 } else { clip_hits as f32 / clip_total as f32 };
            stats.epochs_run = epoch + 1;
            if stats.approx_kl > self.cfg.target_kl {
                break;
            }
        }
        stats
    }

    fn rollout_loss(&self, r: &Rollout, adv: &[f32], ret: &[f32]) -> (LossParts, Vec<Tensor>) {
        let cfg = &self.cfg;
        let input = &r.tokens[..r.tokens.len() - 1];
        let mut tape = Tape::new();
        let fwd = self.policy.forward(&mut tape, input);
        // Action rows: row i predicts token i+1; actions are tokens at
        // indices [prompt_len, len).
        let action_rows: Vec<usize> = (r.prompt_len - 1..r.tokens.len() - 1).collect();
        let next_tokens: Vec<usize> =
            input.iter().enumerate().map(|(i, _)| r.tokens[i + 1] as usize).collect();

        let lp_all = tape.log_softmax(fwd.logits);
        let chosen = tape.select_cols(lp_all, &next_tokens);
        let gen_lp = tape.gather_rows(chosen, &action_rows);

        let old = tape.input(Tensor::new(action_rows.len(), 1, r.old_logprobs.to_vec()));
        let diff = tape.sub(gen_lp, old);
        let ratio = tape.exp(diff);
        let surr1 = tape.row_mul(ratio, adv);
        let clipped = tape.clamp(ratio, 1.0 - cfg.clip, 1.0 + cfg.clip);
        let surr2 = tape.row_mul(clipped, adv);
        let min_surr = tape.min_elem(surr1, surr2);
        let mean_surr = tape.mean_all(min_surr);
        let policy_loss = tape.scale(mean_surr, -1.0);

        // Value regression on action rows.
        let v_gen = tape.gather_rows(fwd.values, &action_rows);
        let target = tape.input(Tensor::new(action_rows.len(), 1, ret.to_vec()));
        let v_err = tape.sub(v_gen, target);
        let v_sq = tape.mul(v_err, v_err);
        let value_loss = tape.mean_all(v_sq);

        // Entropy over action rows.
        let p_all = tape.exp(lp_all);
        let p_lp = tape.mul(p_all, lp_all);
        let vocab = tape.value(lp_all).cols();
        let ones = tape.input(Tensor::full(vocab, 1, 1.0));
        let row_neg_ent = tape.matmul(p_lp, ones);
        let gen_neg_ent = tape.gather_rows(row_neg_ent, &action_rows);
        let mean_neg_ent = tape.mean_all(gen_neg_ent);
        let entropy = tape.scale(mean_neg_ent, -1.0);

        // total = policy + vf*value - ent*entropy
        let v_term = tape.scale(value_loss, cfg.vf_coef);
        let e_term = tape.scale(entropy, -cfg.ent_coef);
        let pv = tape.add(policy_loss, v_term);
        let total = tape.add(pv, e_term);
        tape.backward(total);

        let grads: Vec<Tensor> = fwd
            .params
            .iter()
            .map(|p| {
                tape.grad(*p).cloned().unwrap_or_else(|| {
                    let t = tape.value(*p);
                    Tensor::zeros(t.rows(), t.cols())
                })
            })
            .collect();

        // Diagnostics.
        let gen_lp_v = tape.value(gen_lp);
        let ratio_v = tape.value(ratio);
        // Non-negative "k3" KL estimator: E[exp(d) - 1 - d], d = new - old.
        let mut kl = 0.0;
        for (t, old_lp) in r.old_logprobs.iter().enumerate() {
            let d = gen_lp_v.get(t, 0) - old_lp;
            kl += d.exp() - 1.0 - d;
        }
        kl /= r.old_logprobs.len() as f32;
        let clip_hits =
            ratio_v.data().iter().filter(|&&x| x <= 1.0 - cfg.clip || x >= 1.0 + cfg.clip).count();
        let parts = LossParts {
            kl,
            policy: tape.value(policy_loss).get(0, 0),
            value: tape.value(value_loss).get(0, 0),
            entropy: tape.value(entropy).get(0, 0),
            clip_hits,
            clip_total: ratio_v.len(),
        };
        (parts, grads)
    }
}

struct LossParts {
    kl: f32,
    policy: f32,
    value: f32,
    entropy: f32,
    clip_hits: usize,
    clip_total: usize,
}

/// Per-action log-probabilities and values of `tokens` under `model`
/// (no gradients retained).
pub fn action_logprobs_values(
    model: &Gpt,
    tokens: &[u32],
    prompt_len: usize,
) -> (Vec<f32>, Vec<f32>) {
    assert!(prompt_len >= 1 && tokens.len() > prompt_len, "invalid rollout bounds");
    let input = &tokens[..tokens.len() - 1];
    let mut tape = Tape::new();
    let fwd = model.forward(&mut tape, input);
    let logits = tape.value(fwd.logits);
    let values = tape.value(fwd.values);
    let mut lps = Vec::new();
    let mut vs = Vec::new();
    for row in prompt_len - 1..input.len() {
        let target = tokens[row + 1] as usize;
        let lrow = logits.row(row);
        let max = lrow.iter().cloned().fold(f32::MIN, f32::max);
        let lse = max + lrow.iter().map(|x| (x - max).exp()).sum::<f32>().ln();
        lps.push(lrow[target] - lse);
        vs.push(values.get(row, 0));
    }
    (lps, vs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chatfuzz_lm::GptConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_trainer(seed: u64, cfg: PpoConfig) -> PpoTrainer {
        let mut rng = StdRng::seed_from_u64(seed);
        let policy = Gpt::new(GptConfig::tiny(12), &mut rng);
        PpoTrainer::new(policy, cfg)
    }

    /// Reward sequences for containing token 7: PPO should raise P(7).
    #[test]
    fn ppo_increases_probability_of_rewarded_token() {
        let cfg = PpoConfig {
            lr: 1e-2,
            epochs: 3,
            max_new_tokens: 6,
            kl_coef: 0.0,
            ent_coef: 0.0,
            target_kl: f32::MAX,
            top_k: 12,
            ..Default::default()
        };
        let mut trainer = tiny_trainer(5, cfg);
        let mut rng = StdRng::seed_from_u64(7);
        let prompt = [1u32];
        let reward_of =
            |tokens: &[u32]| tokens[1..].iter().filter(|&&t| t == 7).count() as f32 * 2.0 - 1.0;
        let mean_p7 = |trainer: &PpoTrainer, rng: &mut StdRng| {
            let mut hits = 0usize;
            let mut total = 0usize;
            for _ in 0..40 {
                let toks = trainer.sample(&prompt, rng);
                hits += toks[1..].iter().filter(|&&t| t == 7).count();
                total += toks.len() - 1;
            }
            hits as f32 / total.max(1) as f32
        };
        let before = mean_p7(&trainer, &mut rng);
        for _ in 0..25 {
            let mut rollouts = Vec::new();
            for _ in 0..10 {
                let toks = trainer.sample(&prompt, &mut rng);
                if toks.len() <= 1 {
                    continue;
                }
                let reward = reward_of(&toks);
                rollouts.push(trainer.score(toks, 1, reward));
            }
            if rollouts.is_empty() {
                continue;
            }
            trainer.step(&rollouts);
        }
        let after = mean_p7(&trainer, &mut rng);
        assert!(
            after > (before + 0.08).max(before * 1.5),
            "P(rewarded token) should rise: {before:.3} -> {after:.3}"
        );
    }

    #[test]
    fn sample_into_matches_sample() {
        let trainer = tiny_trainer(9, PpoConfig { max_new_tokens: 12, ..Default::default() });
        let mut cache = KvCache::new(*trainer.policy().config());
        let mut out = Vec::new();
        for prompt in [vec![1u32], vec![1, 4, 7], vec![2; 70]] {
            let naive = trainer.sample(&prompt, &mut StdRng::seed_from_u64(3));
            trainer.sample_into(&prompt, &mut StdRng::seed_from_u64(3), &mut cache, &mut out);
            assert_eq!(out, naive, "prompt of {} tokens diverged", prompt.len());
        }
    }

    #[test]
    fn kl_early_stop_limits_epochs() {
        let cfg = PpoConfig {
            lr: 5e-2, // aggressive: KL blows past target after 1 epoch
            epochs: 8,
            target_kl: 1e-6,
            max_new_tokens: 4,
            ..Default::default()
        };
        let mut trainer = tiny_trainer(2, cfg);
        let mut rng = StdRng::seed_from_u64(3);
        let toks = trainer.sample(&[1], &mut rng);
        let rollout = trainer.score(toks, 1, 1.0);
        let stats = trainer.step(&[rollout]);
        assert!(stats.epochs_run < 8, "early stop expected, ran {}", stats.epochs_run);
    }

    #[test]
    fn score_shapes_are_consistent() {
        let trainer = tiny_trainer(4, PpoConfig::default());
        let mut rng = StdRng::seed_from_u64(4);
        let toks = trainer.sample(&[1, 5], &mut rng);
        let n = toks.len();
        let r = trainer.score(toks, 2, 0.5);
        assert_eq!(r.actions(), n - 2);
        assert_eq!(r.old_logprobs.len(), r.actions());
        assert_eq!(r.ref_logprobs.len(), r.actions());
        assert_eq!(r.values.len(), r.actions());
        // Fresh trainer: reference == policy, so ref logprobs match.
        for (a, b) in r.old_logprobs.iter().zip(&r.ref_logprobs) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn stats_reported_sanely() {
        let mut trainer = tiny_trainer(6, PpoConfig { max_new_tokens: 4, ..Default::default() });
        let mut rng = StdRng::seed_from_u64(6);
        let toks = trainer.sample(&[1], &mut rng);
        let rollout = trainer.score(toks, 1, 2.0);
        let stats = trainer.step(&[rollout]);
        assert!((stats.mean_reward - 2.0).abs() < 1e-6);
        assert!(stats.entropy >= 0.0, "entropy of a softmax is non-negative");
        assert!(stats.epochs_run >= 1);
    }

    #[test]
    #[should_panic(expected = "empty rollout batch")]
    fn step_rejects_empty_batch() {
        let mut trainer = tiny_trainer(7, PpoConfig::default());
        trainer.step(&[]);
    }
}
