//! ISA-aware random instruction generation (TheHuzz's seed generator).
//!
//! TheHuzz "can identify valid instructions from the ISA" but has "no
//! well-defined feedback to determine a meaningful sequence" (paper §II-A):
//! every instruction is individually valid, operands are uniform random,
//! and there is no data-flow relationship between consecutive instructions.

use chatfuzz_isa::{
    AluOp, AmoOp, BranchCond, CsrOp, CsrSrc, Instr, MemWidth, MulDivOp, Reg, SystemOp, CSR_LIST,
};
use rand::seq::SliceRandom;
use rand::Rng;

fn reg<R: Rng>(rng: &mut R) -> Reg {
    Reg::new(rng.gen_range(0..32)).expect("in range")
}

/// Samples one encodable instruction with uniform random operands.
pub fn random_instr<R: Rng>(rng: &mut R) -> Instr {
    match rng.gen_range(0..100) {
        0..=24 => {
            // Register-immediate ALU.
            let ops = [
                AluOp::Add,
                AluOp::Slt,
                AluOp::Sltu,
                AluOp::Xor,
                AluOp::Or,
                AluOp::And,
                AluOp::Sll,
                AluOp::Srl,
                AluOp::Sra,
            ];
            let op = *ops.choose(rng).expect("non-empty");
            let word = op.has_word_form() && rng.gen_bool(0.2);
            let imm = if op.is_shift() {
                rng.gen_range(0..if word { 32 } else { 64 })
            } else {
                rng.gen_range(-2048..=2047)
            };
            Instr::OpImm { op, rd: reg(rng), rs1: reg(rng), imm, word }
        }
        25..=44 => {
            // Register-register ALU.
            let ops = [
                AluOp::Add,
                AluOp::Sub,
                AluOp::Sll,
                AluOp::Slt,
                AluOp::Sltu,
                AluOp::Xor,
                AluOp::Srl,
                AluOp::Sra,
                AluOp::Or,
                AluOp::And,
            ];
            let op = *ops.choose(rng).expect("non-empty");
            let word = op.has_word_form() && rng.gen_bool(0.2);
            Instr::Op { op, rd: reg(rng), rs1: reg(rng), rs2: reg(rng), word }
        }
        45..=54 => {
            let width = *[MemWidth::B, MemWidth::H, MemWidth::W, MemWidth::D]
                .choose(rng)
                .expect("non-empty");
            let signed = width == MemWidth::D || rng.gen_bool(0.5);
            Instr::Load {
                width,
                signed,
                rd: reg(rng),
                rs1: reg(rng),
                offset: rng.gen_range(-2048..=2047),
            }
        }
        55..=62 => {
            let width = *[MemWidth::B, MemWidth::H, MemWidth::W, MemWidth::D]
                .choose(rng)
                .expect("non-empty");
            Instr::Store {
                width,
                rs2: reg(rng),
                rs1: reg(rng),
                offset: rng.gen_range(-2048..=2047),
            }
        }
        63..=72 => {
            let conds = [
                BranchCond::Eq,
                BranchCond::Ne,
                BranchCond::Lt,
                BranchCond::Ge,
                BranchCond::Ltu,
                BranchCond::Geu,
            ];
            Instr::Branch {
                cond: *conds.choose(rng).expect("non-empty"),
                rs1: reg(rng),
                rs2: reg(rng),
                offset: i64::from(rng.gen_range(-64i32..64)) * 2,
            }
        }
        73..=76 => Instr::Jal { rd: reg(rng), offset: i64::from(rng.gen_range(-128i32..128)) * 2 },
        77..=79 => Instr::Jalr { rd: reg(rng), rs1: reg(rng), offset: rng.gen_range(-2048..=2047) },
        80..=85 => {
            let ops = [
                MulDivOp::Mul,
                MulDivOp::Mulh,
                MulDivOp::Mulhsu,
                MulDivOp::Mulhu,
                MulDivOp::Div,
                MulDivOp::Divu,
                MulDivOp::Rem,
                MulDivOp::Remu,
            ];
            let op = *ops.choose(rng).expect("non-empty");
            let word = op.has_word_form() && rng.gen_bool(0.2);
            Instr::MulDiv { op, rd: reg(rng), rs1: reg(rng), rs2: reg(rng), word }
        }
        86..=89 => {
            let width = if rng.gen_bool(0.5) { MemWidth::W } else { MemWidth::D };
            match rng.gen_range(0..3) {
                0 => Instr::LoadReserved {
                    width,
                    rd: reg(rng),
                    rs1: reg(rng),
                    aq: rng.gen(),
                    rl: rng.gen(),
                },
                1 => Instr::StoreConditional {
                    width,
                    rd: reg(rng),
                    rs1: reg(rng),
                    rs2: reg(rng),
                    aq: rng.gen(),
                    rl: rng.gen(),
                },
                _ => {
                    let ops = [
                        AmoOp::Swap,
                        AmoOp::Add,
                        AmoOp::Xor,
                        AmoOp::And,
                        AmoOp::Or,
                        AmoOp::Min,
                        AmoOp::Max,
                        AmoOp::Minu,
                        AmoOp::Maxu,
                    ];
                    Instr::Amo {
                        op: *ops.choose(rng).expect("non-empty"),
                        width,
                        rd: reg(rng),
                        rs1: reg(rng),
                        rs2: reg(rng),
                        aq: rng.gen(),
                        rl: rng.gen(),
                    }
                }
            }
        }
        90..=93 => {
            // CSR access: usually a real CSR, sometimes a wild address.
            let csr = if rng.gen_bool(0.7) {
                CSR_LIST.choose(rng).expect("non-empty").addr()
            } else {
                rng.gen_range(0..0x1000)
            };
            let op = *[CsrOp::Rw, CsrOp::Rs, CsrOp::Rc].choose(rng).expect("non-empty");
            let src = if rng.gen_bool(0.5) {
                CsrSrc::Reg(reg(rng))
            } else {
                CsrSrc::Imm(rng.gen_range(0..32))
            };
            Instr::Csr { op, rd: reg(rng), csr, src }
        }
        94..=95 => {
            Instr::Lui { rd: reg(rng), imm: i64::from(rng.gen_range(-0x8_0000i32..0x8_0000)) << 12 }
        }
        96 => Instr::Auipc {
            rd: reg(rng),
            imm: i64::from(rng.gen_range(-0x8_0000i32..0x8_0000)) << 12,
        },
        97 => {
            if rng.gen_bool(0.5) {
                Instr::Fence { pred: rng.gen_range(0..16), succ: rng.gen_range(0..16) }
            } else {
                Instr::FenceI
            }
        }
        _ => {
            let ops =
                [SystemOp::Ecall, SystemOp::Ebreak, SystemOp::Mret, SystemOp::Sret, SystemOp::Wfi];
            Instr::System(*ops.choose(rng).expect("non-empty"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chatfuzz_isa::{decode, encode};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn always_encodable_and_roundtrips() {
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..4096 {
            let instr = random_instr(&mut rng);
            let word = encode(&instr).unwrap_or_else(|e| panic!("{instr}: {e}"));
            assert_eq!(decode(word).unwrap(), instr);
        }
    }

    #[test]
    fn covers_many_instruction_classes() {
        let mut rng = StdRng::seed_from_u64(78);
        let mut classes = std::collections::HashSet::new();
        for _ in 0..2048 {
            classes.insert(std::mem::discriminant(&random_instr(&mut rng)));
        }
        assert!(classes.len() >= 12, "only {} classes sampled", classes.len());
    }
}
