//! The generator interface the fuzzing loop drives.

/// Per-input coverage feedback handed back to a generator after its batch
/// was simulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Feedback {
    /// Coverage bins attained by this input alone.
    pub standalone: usize,
    /// Bins newly attained relative to the previous batch's total.
    pub incremental: usize,
    /// Control-register (mux-select) bins attained by this input alone —
    /// the DifuzzRTL-style signal.
    pub mux_covered: usize,
    /// Cumulative campaign bins covered after folding this input in.
    /// Gives generators (and schedulers) global-progress context without a
    /// side channel; `0` when the caller does not track campaign totals.
    pub total_after: usize,
    /// The coverage space's fixed bin count (denominator for
    /// [`Feedback::total_after`]); `0` when unknown.
    pub total_bins: usize,
    /// Content hash of this input's standalone coverage set
    /// (`CovMap::content_hash`); `0` when the caller does not compute it.
    /// The evolutionary corpus dedupes retained seeds on this value.
    pub cov_fingerprint: u64,
    /// Whether the mismatch detector recorded at least one golden/DUT
    /// divergence for this input. Mismatch-triggering inputs are corpus
    /// keepers even when they add no coverage.
    pub mismatched: bool,
}

impl Feedback {
    /// Campaign coverage percentage after this input, when known.
    pub fn total_percent(&self) -> Option<f64> {
        (self.total_bins > 0).then(|| 100.0 * self.total_after as f64 / self.total_bins as f64)
    }
}

/// One retained corpus seed in serialisable form: the encoded instruction
/// words plus the statistics the scheduling/energy model needs. All
/// fields are integers so snapshots round-trip bit-exactly.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CorpusSeedState {
    /// Encoded instruction words (always individually decodable).
    pub words: Vec<u32>,
    /// Coverage fingerprint the seed was retained under
    /// ([`Feedback::cov_fingerprint`], or a byte hash when unknown).
    pub fingerprint: u64,
    /// Coverage bins this seed first reached when discovered.
    pub new_bins: u64,
    /// Mux-select bins the seed attained standalone.
    pub mux_bins: u64,
    /// Whether the seed triggered a golden/DUT mismatch.
    pub mismatch: bool,
    /// Times the seed has been picked as a mutation parent.
    pub picks: u64,
    /// Discovery counter (monotone per corpus) for deterministic
    /// tie-breaking.
    pub found_at: u64,
}

/// The serialisable corpus half of a [`GeneratorState`]: the retained
/// seed store of an evolutionary arm. The owning generator's RNG stream
/// rides in [`GeneratorState::rng_words`], not here.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CorpusState {
    /// Next discovery counter ([`CorpusSeedState::found_at`] source).
    pub next_found_at: u64,
    /// Retained seeds, in insertion order.
    pub seeds: Vec<CorpusSeedState>,
}

/// One not-yet-observed sample of a model-backed generator: the full
/// token sequence of a generation plus where the prompt ends. Rides in
/// [`ModelState::pending`] so a snapshot taken between `next_batch` and
/// `observe` loses no rollout.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ModelSample {
    /// Prompt + generated tokens.
    pub tokens: Vec<u32>,
    /// Prompt length in tokens (generation starts here).
    pub prompt_len: usize,
}

/// One rollout queued for the learner of an actor/learner LM arm: a
/// completed, reward-stamped sample awaiting the next publish boundary.
/// Unlike a fully scored `Rollout`, only the (tokens, prompt boundary,
/// reward) triple is kept — log-probabilities and values are recomputed
/// deterministically from the policy weights when the learner consumes
/// the queue, so snapshots stay small and bit-exact.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PendingRollout {
    /// Prompt + generated tokens.
    pub tokens: Vec<u32>,
    /// Prompt length in tokens (generation starts here).
    pub prompt_len: usize,
    /// Terminal task reward (coverage-shaped); persisted as a raw bit
    /// pattern so the queue round-trips exactly.
    pub reward: f32,
}

/// The serialisable model half of a [`GeneratorState`]: everything an
/// online-trained language-model arm accumulates beyond its construction
/// parameters. All floating-point payloads are raw `f32`s; the persist
/// layer stores them as hex bit patterns so nothing passes through a
/// decimal representation.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ModelState {
    /// Whether the tokenizer uses learned BPE framing (`true`) or fixed
    /// byte parcels (`false`).
    pub bpe: bool,
    /// Tokenizer merge pairs in learned order (the whole learned state;
    /// expansions are rebuilt from these on import).
    pub merges: Vec<(u32, u32)>,
    /// Policy weight tensors, flattened row-major, in the model's
    /// canonical parameter order.
    pub params: Vec<Vec<f32>>,
    /// Adam first moments, aligned with `params` (empty before the first
    /// optimiser step — moments are allocated lazily).
    pub opt_m: Vec<Vec<f32>>,
    /// Adam second moments, aligned with `params`.
    pub opt_v: Vec<Vec<f32>>,
    /// Adam step counter (bias correction depends on it).
    pub opt_steps: u64,
    /// The current prompt pool as instruction-word programs — the static
    /// corpus plus whatever the cross-arm seed exchange has folded in.
    pub prompt_pool: Vec<Vec<u32>>,
    /// Samples produced by the last `next_batch` whose feedback has not
    /// arrived yet, grouped per input.
    pub pending: Vec<Vec<ModelSample>>,
    /// Number of weight snapshots published so far by an actor/learner
    /// arm (the actor's frozen-snapshot version); `0` for the serialized
    /// in-line trainer, which publishes implicitly every batch.
    pub publish_epoch: u64,
    /// Observed batches since the last publish boundary — together with
    /// the (construction-time) publish cadence this pins exactly where in
    /// the actor/learner cycle a resume lands.
    pub batches_since_publish: u64,
    /// Reward-stamped rollouts the learner has accepted but not yet
    /// trained on (drained at every publish boundary). Empty for the
    /// serialized in-line trainer.
    pub learner_queue: Vec<PendingRollout>,
}

/// The serialisable state of a stateful generator, produced by
/// [`InputGenerator::export_state`] and restored by
/// [`InputGenerator::import_state`]. Like `SchedulerState`, construction
/// *parameters* are not part of the state — resume rebuilds the generator
/// with the same constructor arguments and imports the accumulated state.
///
/// A generator carries a corpus ([`CorpusState`]), a model
/// ([`ModelState`]), both, or neither — `None` halves simply don't apply
/// to that generator kind.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GeneratorState {
    /// [`InputGenerator::name`] of the exporting generator; import
    /// asserts it matches so state never crosses generator kinds.
    pub generator: String,
    /// Exact RNG stream state (`ChaCha8Rng::export_words`), so sampling,
    /// seed selection, and mutation continue bit-for-bit after a resume.
    pub rng_words: Vec<u32>,
    /// Evolutionary corpus (retained seeds), when the generator keeps one.
    pub corpus: Option<CorpusState>,
    /// Model state (weights, optimiser moments, prompt pool), when the
    /// generator trains one online.
    pub model: Option<ModelState>,
}

/// A source of fuzzing inputs with coverage feedback.
///
/// Implemented by the baselines in this crate, the evolutionary corpus
/// generator in `chatfuzz_evolve`, and the ChatFuzz LM generator in the
/// `chatfuzz` crate.
pub trait InputGenerator: Send {
    /// Short generator name for reports.
    fn name(&self) -> &str;

    /// Produces the next batch of test inputs (little-endian instruction
    /// images loaded at the DUT's RAM base).
    fn next_batch(&mut self, n: usize) -> Vec<Vec<u8>>;

    /// Receives per-input coverage feedback for the batch most recently
    /// returned by [`InputGenerator::next_batch`].
    fn observe(&mut self, batch: &[Vec<u8>], feedback: &[Feedback]);

    /// Exports the generator's accumulated state (corpus and/or model,
    /// plus its RNG stream) for a campaign snapshot. Returns `None` for
    /// stateless generators — the default.
    fn export_state(&self) -> Option<GeneratorState> {
        None
    }

    /// Restores state previously produced by
    /// [`InputGenerator::export_state`], so retained seeds, trained
    /// weights, and the RNG stream survive a checkpoint/resume cycle. The
    /// default ignores the state (stateless generators have nothing to
    /// restore).
    ///
    /// # Panics
    ///
    /// Stateful implementations panic if the state was exported by a
    /// different generator kind.
    fn import_state(&mut self, state: &GeneratorState) {
        let _ = state;
    }

    /// The published weight-snapshot version of an actor/learner arm
    /// (how many times its learner has published new weights for the
    /// actors to sample from). `None` for generators without a
    /// versioned model — the default. Fleet dashboards surface this so
    /// an orchestrated LM campaign shows how far training has advanced
    /// across merges.
    fn weight_epoch(&self) -> Option<u64> {
        None
    }

    /// A counter that changes whenever this generator's shareable seed
    /// set changes ([`InputGenerator::contribute_seeds`] would return
    /// something different). The campaign skips the whole cross-arm
    /// exchange — no cloning — while every arm's revision is unchanged.
    /// Stateless generators stay at `0`.
    fn seeds_revision(&self) -> u64 {
        0
    }

    /// Appends this generator's shareable seeds — decoded instruction-word
    /// programs other arms may prompt or mutate from — to `out`. The
    /// campaign calls this when some arm's
    /// [`InputGenerator::seeds_revision`] moved and offers the pooled
    /// result to every arm through [`InputGenerator::absorb_seeds`]. The
    /// default contributes nothing.
    fn contribute_seeds(&self, out: &mut Vec<Vec<u32>>) {
        let _ = out;
    }

    /// Receives the campaign's pooled cross-arm seeds (everything the
    /// arms contributed this batch, in generator order). Implementations
    /// must be deterministic — resume-exactness depends on it — and must
    /// not consume their sampling RNG here. The default ignores the pool.
    fn absorb_seeds(&mut self, seeds: &[Vec<u32>]) {
        let _ = seeds;
    }
}

impl<G: InputGenerator + ?Sized> InputGenerator for &mut G {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn next_batch(&mut self, n: usize) -> Vec<Vec<u8>> {
        (**self).next_batch(n)
    }

    fn observe(&mut self, batch: &[Vec<u8>], feedback: &[Feedback]) {
        (**self).observe(batch, feedback)
    }

    fn export_state(&self) -> Option<GeneratorState> {
        (**self).export_state()
    }

    fn import_state(&mut self, state: &GeneratorState) {
        (**self).import_state(state)
    }

    fn weight_epoch(&self) -> Option<u64> {
        (**self).weight_epoch()
    }

    fn seeds_revision(&self) -> u64 {
        (**self).seeds_revision()
    }

    fn contribute_seeds(&self, out: &mut Vec<Vec<u32>>) {
        (**self).contribute_seeds(out)
    }

    fn absorb_seeds(&mut self, seeds: &[Vec<u32>]) {
        (**self).absorb_seeds(seeds)
    }
}

impl<G: InputGenerator + ?Sized> InputGenerator for Box<G> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn next_batch(&mut self, n: usize) -> Vec<Vec<u8>> {
        (**self).next_batch(n)
    }

    fn observe(&mut self, batch: &[Vec<u8>], feedback: &[Feedback]) {
        (**self).observe(batch, feedback)
    }

    fn export_state(&self) -> Option<GeneratorState> {
        (**self).export_state()
    }

    fn import_state(&mut self, state: &GeneratorState) {
        (**self).import_state(state)
    }

    fn weight_epoch(&self) -> Option<u64> {
        (**self).weight_epoch()
    }

    fn seeds_revision(&self) -> u64 {
        (**self).seeds_revision()
    }

    fn contribute_seeds(&self, out: &mut Vec<Vec<u32>>) {
        (**self).contribute_seeds(out)
    }

    fn absorb_seeds(&mut self, seeds: &[Vec<u32>]) {
        (**self).absorb_seeds(seeds)
    }
}
