//! The generator interface the fuzzing loop drives.

/// Per-input coverage feedback handed back to a generator after its batch
/// was simulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Feedback {
    /// Coverage bins attained by this input alone.
    pub standalone: usize,
    /// Bins newly attained relative to the previous batch's total.
    pub incremental: usize,
    /// Control-register (mux-select) bins attained by this input alone —
    /// the DifuzzRTL-style signal.
    pub mux_covered: usize,
}

/// A source of fuzzing inputs with coverage feedback.
///
/// Implemented by the baselines in this crate and by the ChatFuzz LM
/// generator in the `chatfuzz` crate.
pub trait InputGenerator: Send {
    /// Short generator name for reports.
    fn name(&self) -> &str;

    /// Produces the next batch of test inputs (little-endian instruction
    /// images loaded at the DUT's RAM base).
    fn next_batch(&mut self, n: usize) -> Vec<Vec<u8>>;

    /// Receives per-input coverage feedback for the batch most recently
    /// returned by [`InputGenerator::next_batch`].
    fn observe(&mut self, batch: &[Vec<u8>], feedback: &[Feedback]);
}
