//! The generator interface the fuzzing loop drives.

/// Per-input coverage feedback handed back to a generator after its batch
/// was simulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Feedback {
    /// Coverage bins attained by this input alone.
    pub standalone: usize,
    /// Bins newly attained relative to the previous batch's total.
    pub incremental: usize,
    /// Control-register (mux-select) bins attained by this input alone —
    /// the DifuzzRTL-style signal.
    pub mux_covered: usize,
    /// Cumulative campaign bins covered after folding this input in.
    /// Gives generators (and schedulers) global-progress context without a
    /// side channel; `0` when the caller does not track campaign totals.
    pub total_after: usize,
    /// The coverage space's fixed bin count (denominator for
    /// [`Feedback::total_after`]); `0` when unknown.
    pub total_bins: usize,
    /// Content hash of this input's standalone coverage set
    /// (`CovMap::content_hash`); `0` when the caller does not compute it.
    /// The evolutionary corpus dedupes retained seeds on this value.
    pub cov_fingerprint: u64,
    /// Whether the mismatch detector recorded at least one golden/DUT
    /// divergence for this input. Mismatch-triggering inputs are corpus
    /// keepers even when they add no coverage.
    pub mismatched: bool,
}

impl Feedback {
    /// Campaign coverage percentage after this input, when known.
    pub fn total_percent(&self) -> Option<f64> {
        (self.total_bins > 0).then(|| 100.0 * self.total_after as f64 / self.total_bins as f64)
    }
}

/// One retained corpus seed in serialisable form: the encoded instruction
/// words plus the statistics the scheduling/energy model needs. All
/// fields are integers so snapshots round-trip bit-exactly.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CorpusSeedState {
    /// Encoded instruction words (always individually decodable).
    pub words: Vec<u32>,
    /// Coverage fingerprint the seed was retained under
    /// ([`Feedback::cov_fingerprint`], or a byte hash when unknown).
    pub fingerprint: u64,
    /// Coverage bins this seed first reached when discovered.
    pub new_bins: u64,
    /// Mux-select bins the seed attained standalone.
    pub mux_bins: u64,
    /// Whether the seed triggered a golden/DUT mismatch.
    pub mismatch: bool,
    /// Times the seed has been picked as a mutation parent.
    pub picks: u64,
    /// Discovery counter (monotone per corpus) for deterministic
    /// tie-breaking.
    pub found_at: u64,
}

/// The serialisable state of a corpus-carrying generator, produced by
/// [`InputGenerator::export_corpus`] and restored by
/// [`InputGenerator::import_corpus`]. Like `SchedulerState`, construction
/// *parameters* are not part of the state — resume rebuilds the generator
/// with the same constructor arguments and imports the accumulated state.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CorpusState {
    /// [`InputGenerator::name`] of the exporting generator; import
    /// asserts it matches so corpora never cross generator kinds.
    pub generator: String,
    /// Exact RNG stream state (`ChaCha8Rng::export_words`), so seed
    /// selection and mutation continue bit-for-bit after a resume.
    pub rng_words: Vec<u32>,
    /// Next discovery counter ([`CorpusSeedState::found_at`] source).
    pub next_found_at: u64,
    /// Retained seeds, in insertion order.
    pub seeds: Vec<CorpusSeedState>,
}

/// A source of fuzzing inputs with coverage feedback.
///
/// Implemented by the baselines in this crate, the evolutionary corpus
/// generator in `chatfuzz_evolve`, and the ChatFuzz LM generator in the
/// `chatfuzz` crate.
pub trait InputGenerator: Send {
    /// Short generator name for reports.
    fn name(&self) -> &str;

    /// Produces the next batch of test inputs (little-endian instruction
    /// images loaded at the DUT's RAM base).
    fn next_batch(&mut self, n: usize) -> Vec<Vec<u8>>;

    /// Receives per-input coverage feedback for the batch most recently
    /// returned by [`InputGenerator::next_batch`].
    fn observe(&mut self, batch: &[Vec<u8>], feedback: &[Feedback]);

    /// Exports the generator's evolutionary corpus (plus its RNG stream)
    /// for a campaign snapshot. Returns `None` for generators that keep
    /// no corpus — the default.
    fn export_corpus(&self) -> Option<CorpusState> {
        None
    }

    /// Restores state previously produced by
    /// [`InputGenerator::export_corpus`], so retained seeds (and the
    /// mutation RNG stream) survive a checkpoint/resume cycle. The
    /// default ignores the state (corpus-free generators have nothing to
    /// restore).
    ///
    /// # Panics
    ///
    /// Corpus-carrying implementations panic if the state was exported by
    /// a different generator kind.
    fn import_corpus(&mut self, state: &CorpusState) {
        let _ = state;
    }
}

impl<G: InputGenerator + ?Sized> InputGenerator for &mut G {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn next_batch(&mut self, n: usize) -> Vec<Vec<u8>> {
        (**self).next_batch(n)
    }

    fn observe(&mut self, batch: &[Vec<u8>], feedback: &[Feedback]) {
        (**self).observe(batch, feedback)
    }

    fn export_corpus(&self) -> Option<CorpusState> {
        (**self).export_corpus()
    }

    fn import_corpus(&mut self, state: &CorpusState) {
        (**self).import_corpus(state)
    }
}

impl<G: InputGenerator + ?Sized> InputGenerator for Box<G> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn next_batch(&mut self, n: usize) -> Vec<Vec<u8>> {
        (**self).next_batch(n)
    }

    fn observe(&mut self, batch: &[Vec<u8>], feedback: &[Feedback]) {
        (**self).observe(batch, feedback)
    }

    fn export_corpus(&self) -> Option<CorpusState> {
        (**self).export_corpus()
    }

    fn import_corpus(&mut self, state: &CorpusState) {
        (**self).import_corpus(state)
    }
}
