//! The generator interface the fuzzing loop drives.

/// Per-input coverage feedback handed back to a generator after its batch
/// was simulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Feedback {
    /// Coverage bins attained by this input alone.
    pub standalone: usize,
    /// Bins newly attained relative to the previous batch's total.
    pub incremental: usize,
    /// Control-register (mux-select) bins attained by this input alone —
    /// the DifuzzRTL-style signal.
    pub mux_covered: usize,
    /// Cumulative campaign bins covered after folding this input in.
    /// Gives generators (and schedulers) global-progress context without a
    /// side channel; `0` when the caller does not track campaign totals.
    pub total_after: usize,
    /// The coverage space's fixed bin count (denominator for
    /// [`Feedback::total_after`]); `0` when unknown.
    pub total_bins: usize,
}

impl Feedback {
    /// Campaign coverage percentage after this input, when known.
    pub fn total_percent(&self) -> Option<f64> {
        (self.total_bins > 0).then(|| 100.0 * self.total_after as f64 / self.total_bins as f64)
    }
}

/// A source of fuzzing inputs with coverage feedback.
///
/// Implemented by the baselines in this crate and by the ChatFuzz LM
/// generator in the `chatfuzz` crate.
pub trait InputGenerator: Send {
    /// Short generator name for reports.
    fn name(&self) -> &str;

    /// Produces the next batch of test inputs (little-endian instruction
    /// images loaded at the DUT's RAM base).
    fn next_batch(&mut self, n: usize) -> Vec<Vec<u8>>;

    /// Receives per-input coverage feedback for the batch most recently
    /// returned by [`InputGenerator::next_batch`].
    fn observe(&mut self, batch: &[Vec<u8>], feedback: &[Feedback]);
}

impl<G: InputGenerator + ?Sized> InputGenerator for &mut G {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn next_batch(&mut self, n: usize) -> Vec<Vec<u8>> {
        (**self).next_batch(n)
    }

    fn observe(&mut self, batch: &[Vec<u8>], feedback: &[Feedback]) {
        (**self).observe(batch, feedback)
    }
}

impl<G: InputGenerator + ?Sized> InputGenerator for Box<G> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn next_batch(&mut self, n: usize) -> Vec<Vec<u8>> {
        (**self).next_batch(n)
    }

    fn observe(&mut self, batch: &[Vec<u8>], feedback: &[Feedback]) {
        (**self).observe(batch, feedback)
    }
}
