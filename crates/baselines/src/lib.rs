//! Baseline input generators the paper compares against.
//!
//! * [`TheHuzz`] — a reimplementation of TheHuzz's published design
//!   (USENIX Security '22, paper reference [9]): ISA-aware random seed
//!   generation plus coverage-guided mutation with the documented operators
//!   (bit/byte flips, instruction swap/delete/clone, operand tweaks).
//! * [`RandomRegression`] — uniform random instruction words (the classic
//!   constrained-random baseline).
//! * [`DifuzzLite`] — the same mutation engine guided only by the
//!   control-register (mux-select) coverage subset, DifuzzRTL-style.
//!
//! All generators implement [`InputGenerator`], the interface the fuzzing
//! loop drives; the ChatFuzz LM generator in the `chatfuzz` crate
//! implements the same trait.

pub mod gen;
pub mod random_instr;
pub mod schedule;

pub use gen::{
    CorpusSeedState, CorpusState, Feedback, GeneratorState, InputGenerator, ModelSample,
    ModelState, PendingRollout,
};
pub use random_instr::random_instr;
pub use schedule::{
    ArmState, ArmStatus, EpsilonGreedy, RoundRobin, Scheduler, SchedulerState, Ucb1,
};

use chatfuzz_isa::{decode, encode, INSTR_BYTES};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Configuration shared by the mutational baselines.
#[derive(Debug, Clone, Copy)]
pub struct MutatorConfig {
    /// RNG seed.
    pub seed: u64,
    /// Instructions per generated test.
    pub program_len: usize,
    /// Maximum seeds retained in the pool.
    pub pool_size: usize,
    /// Probability of emitting a fresh random seed instead of a mutant.
    pub fresh_seed_rate: f64,
    /// Mutations applied per mutant.
    pub mutations: usize,
}

impl Default for MutatorConfig {
    fn default() -> Self {
        MutatorConfig {
            seed: 0x7E_117A,
            program_len: 24,
            pool_size: 64,
            fresh_seed_rate: 0.2,
            mutations: 3,
        }
    }
}

#[derive(Debug, Clone)]
struct PoolEntry {
    bytes: Vec<u8>,
    score: usize,
}

/// TheHuzz-style coverage-guided mutational fuzzer.
#[derive(Debug)]
pub struct TheHuzz {
    cfg: MutatorConfig,
    rng: ChaCha8Rng,
    pool: Vec<PoolEntry>,
}

impl TheHuzz {
    /// Creates the fuzzer with an empty seed pool.
    pub fn new(cfg: MutatorConfig) -> TheHuzz {
        TheHuzz { cfg, rng: ChaCha8Rng::seed_from_u64(cfg.seed), pool: Vec::new() }
    }

    /// Current pool occupancy.
    pub fn pool_len(&self) -> usize {
        self.pool.len()
    }

    /// An ISA-aware random program: valid instructions, random operands.
    fn random_seed(&mut self) -> Vec<u8> {
        let mut bytes = Vec::with_capacity(self.cfg.program_len * INSTR_BYTES);
        for _ in 0..self.cfg.program_len {
            let instr = random_instr(&mut self.rng);
            let word = encode(&instr).expect("random_instr is encodable");
            bytes.extend_from_slice(&word.to_le_bytes());
        }
        bytes
    }

    /// Applies one of TheHuzz's documented mutation operators in place.
    fn mutate_once(&mut self, bytes: &mut Vec<u8>) {
        if bytes.len() < INSTR_BYTES {
            *bytes = self.random_seed();
            return;
        }
        let words = bytes.len() / INSTR_BYTES;
        let slot = self.rng.gen_range(0..words) * INSTR_BYTES;
        match self.rng.gen_range(0..6) {
            // Bit flip.
            0 => {
                let bit = self.rng.gen_range(0..32);
                bytes[slot + bit / 8] ^= 1 << (bit % 8);
            }
            // Byte flip.
            1 => {
                let byte = self.rng.gen_range(0..INSTR_BYTES);
                bytes[slot + byte] ^= 0xff;
            }
            // Swap two instructions.
            2 => {
                let other = self.rng.gen_range(0..words) * INSTR_BYTES;
                for i in 0..INSTR_BYTES {
                    bytes.swap(slot + i, other + i);
                }
            }
            // Delete an instruction.
            3 => {
                if words > 1 {
                    bytes.drain(slot..slot + INSTR_BYTES);
                }
            }
            // Clone an instruction.
            4 => {
                let copied: Vec<u8> = bytes[slot..slot + INSTR_BYTES].to_vec();
                let insert_at = self.rng.gen_range(0..=words) * INSTR_BYTES;
                for (i, b) in copied.into_iter().enumerate() {
                    bytes.insert(insert_at + i, b);
                }
            }
            // Replace with a fresh valid instruction.
            _ => {
                let word = encode(&random_instr(&mut self.rng)).expect("random_instr is encodable");
                bytes[slot..slot + INSTR_BYTES].copy_from_slice(&word.to_le_bytes());
            }
        }
    }
}

impl InputGenerator for TheHuzz {
    fn name(&self) -> &str {
        "thehuzz"
    }

    fn next_batch(&mut self, n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|_| {
                if self.pool.is_empty() || self.rng.gen_bool(self.cfg.fresh_seed_rate) {
                    self.random_seed()
                } else {
                    // Weighted toward higher-scoring seeds: pick the best of
                    // two random pool entries.
                    let a = self.rng.gen_range(0..self.pool.len());
                    let b = self.rng.gen_range(0..self.pool.len());
                    let pick = if self.pool[a].score >= self.pool[b].score { a } else { b };
                    let mut bytes = self.pool[pick].bytes.clone();
                    for _ in 0..self.cfg.mutations {
                        self.mutate_once(&mut bytes);
                    }
                    bytes
                }
            })
            .collect()
    }

    fn observe(&mut self, batch: &[Vec<u8>], feedback: &[Feedback]) {
        for (bytes, fb) in batch.iter().zip(feedback) {
            if fb.incremental > 0 {
                self.pool.push(PoolEntry { bytes: bytes.clone(), score: fb.incremental });
            }
        }
        self.pool.sort_by_key(|e| std::cmp::Reverse(e.score));
        self.pool.truncate(self.cfg.pool_size);
    }
}

/// Pure random regression: uniform random words, no feedback.
#[derive(Debug)]
pub struct RandomRegression {
    rng: ChaCha8Rng,
    program_len: usize,
}

impl RandomRegression {
    /// Creates the generator.
    pub fn new(seed: u64, program_len: usize) -> RandomRegression {
        RandomRegression { rng: ChaCha8Rng::seed_from_u64(seed), program_len }
    }
}

impl InputGenerator for RandomRegression {
    fn name(&self) -> &str {
        "random"
    }

    fn next_batch(&mut self, n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|_| {
                let mut bytes = Vec::with_capacity(self.program_len * INSTR_BYTES);
                for _ in 0..self.program_len {
                    bytes.extend_from_slice(&self.rng.gen::<u32>().to_le_bytes());
                }
                bytes
            })
            .collect()
    }

    fn observe(&mut self, _batch: &[Vec<u8>], _feedback: &[Feedback]) {}
}

/// DifuzzRTL-style variant: TheHuzz's engine steered by control-register
/// (mux-select) coverage only.
#[derive(Debug)]
pub struct DifuzzLite {
    inner: TheHuzz,
    best_mux: usize,
}

impl DifuzzLite {
    /// Creates the generator.
    pub fn new(cfg: MutatorConfig) -> DifuzzLite {
        DifuzzLite { inner: TheHuzz::new(cfg), best_mux: 0 }
    }
}

impl InputGenerator for DifuzzLite {
    fn name(&self) -> &str {
        "difuzz-lite"
    }

    fn next_batch(&mut self, n: usize) -> Vec<Vec<u8>> {
        self.inner.next_batch(n)
    }

    fn observe(&mut self, batch: &[Vec<u8>], feedback: &[Feedback]) {
        // Re-score: an input is interesting iff it advances the
        // control-register coverage frontier.
        let rescored: Vec<Feedback> = feedback
            .iter()
            .map(|fb| {
                let interesting = fb.mux_covered > self.best_mux;
                self.best_mux = self.best_mux.max(fb.mux_covered);
                Feedback { incremental: usize::from(interesting), ..*fb }
            })
            .collect();
        self.inner.observe(batch, &rescored);
    }
}

/// Fraction of decodable instruction words in a byte image (diagnostic).
pub fn valid_fraction(bytes: &[u8]) -> f64 {
    let words: Vec<_> = bytes.chunks_exact(INSTR_BYTES).collect();
    if words.is_empty() {
        return 0.0;
    }
    let valid = words
        .iter()
        .filter(|c| decode(u32::from_le_bytes([c[0], c[1], c[2], c[3]])).is_ok())
        .count();
    valid as f64 / words.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thehuzz_seeds_are_fully_valid() {
        let mut fuzzer = TheHuzz::new(MutatorConfig::default());
        for input in fuzzer.next_batch(16) {
            assert_eq!(valid_fraction(&input), 1.0, "ISA-aware seeds decode entirely");
        }
    }

    #[test]
    fn random_regression_is_mostly_invalid() {
        let mut generator = RandomRegression::new(1, 64);
        let batch = generator.next_batch(8);
        let avg: f64 = batch.iter().map(|b| valid_fraction(b)).sum::<f64>() / batch.len() as f64;
        assert!(avg < 0.5, "uniform random words are mostly illegal ({avg:.2})");
    }

    #[test]
    fn feedback_grows_and_bounds_pool() {
        let cfg = MutatorConfig { pool_size: 4, ..Default::default() };
        let mut fuzzer = TheHuzz::new(cfg);
        let batch = fuzzer.next_batch(8);
        let feedback: Vec<Feedback> = (0..8)
            .map(|i| Feedback { standalone: 10, incremental: i, ..Default::default() })
            .collect();
        fuzzer.observe(&batch, &feedback);
        // i=0 gives incremental 0 -> not pooled; 7 pooled, truncated to 4.
        assert_eq!(fuzzer.pool_len(), 4);
        // Pool keeps the best scores.
        assert!(fuzzer.pool.iter().all(|e| e.score >= 4));
    }

    #[test]
    fn mutants_derive_from_pool() {
        let cfg = MutatorConfig { fresh_seed_rate: 0.0, mutations: 1, ..Default::default() };
        let mut fuzzer = TheHuzz::new(cfg);
        let seed = fuzzer.random_seed();
        fuzzer.observe(
            std::slice::from_ref(&seed),
            &[Feedback { standalone: 1, incremental: 1, ..Default::default() }],
        );
        let mutants = fuzzer.next_batch(4);
        for m in &mutants {
            // One mutation changes at most one instruction slot (plus
            // length-changing ops).
            let len_delta = (m.len() as i64 - seed.len() as i64).unsigned_abs();
            assert!(len_delta <= INSTR_BYTES as u64);
        }
    }

    #[test]
    fn determinism_per_seed() {
        let mut a = TheHuzz::new(MutatorConfig::default());
        let mut b = TheHuzz::new(MutatorConfig::default());
        assert_eq!(a.next_batch(4), b.next_batch(4));
        let mut c = RandomRegression::new(9, 8);
        let mut d = RandomRegression::new(9, 8);
        assert_eq!(c.next_batch(4), d.next_batch(4));
    }

    #[test]
    fn difuzz_lite_pools_on_mux_frontier_only() {
        let cfg = MutatorConfig::default();
        let mut fuzzer = DifuzzLite::new(cfg);
        let batch = fuzzer.next_batch(3);
        let feedback = vec![
            Feedback { standalone: 5, incremental: 100, mux_covered: 2, ..Default::default() },
            // no advance:
            Feedback { standalone: 5, incremental: 100, mux_covered: 2, ..Default::default() },
            Feedback { standalone: 5, incremental: 0, mux_covered: 9, ..Default::default() },
        ];
        fuzzer.observe(&batch, &feedback);
        assert_eq!(fuzzer.inner.pool_len(), 2, "first and third advance the frontier");
    }
}
