//! Generator scheduling for multi-generator campaigns.
//!
//! MABFuzz (Gohil et al., 2023) frames the choice of *which* input
//! generator runs the next batch as a multi-armed bandit over an
//! incremental-coverage reward, and shows the bandit beats any fixed
//! generator. The campaign layer drives a [`Scheduler`] once per batch:
//! [`Scheduler::pick`] selects the generator, then [`Scheduler::update`]
//! reports the new-bins-per-test reward the batch earned.
//!
//! Arms in this codebase are *non-stationary*: the evolve arm's payoff
//! decays as its corpus saturates and the LM arm's rises as online PPO
//! converges. [`EpsilonGreedy::windowed`] / [`Ucb1::windowed`] switch the
//! exploitation estimate to a sliding window over each arm's most recent
//! rewards; the window contents ride in [`SchedulerState`] so resumed
//! campaigns score arms identically.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Accumulated statistics of one bandit arm, in serialisable form.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ArmState {
    /// Batches this arm has produced.
    pub pulls: u64,
    /// Sum of observed rewards.
    pub total_reward: f64,
    /// Simulated DUT cycles this arm's batches consumed (the cost signal
    /// cost-normalising schedulers divide by).
    pub cycles: u64,
    /// The sliding reward window (oldest first), populated only by
    /// windowed schedulers. Riding in the state keeps non-stationary
    /// resume exact: the restored bandit scores arms over the same recent
    /// rewards the live one saw.
    pub recent_rewards: Vec<f64>,
    /// Per-entry cycle costs matching `recent_rewards`.
    pub recent_cycles: Vec<u64>,
}

/// The serialisable state of a [`Scheduler`], produced by
/// [`Scheduler::export_state`] and restored by
/// [`Scheduler::import_state`].
///
/// The struct is a superset of every in-tree scheduler's state: fields a
/// scheduler does not use stay at their `Default` values. Construction
/// *parameters* (epsilon decay rate, floor, seed) are not part of the
/// state — the resume pattern is "rebuild the scheduler with the same
/// constructor arguments, then import the accumulated state", mirroring
/// how campaign generators are rebuilt on resume.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SchedulerState {
    /// [`Scheduler::name`] of the exporting scheduler; import asserts it
    /// matches so epsilon-greedy state is never fed to a round-robin.
    pub scheduler: String,
    /// Round-robin position (next arm to pick).
    pub cursor: u64,
    /// Current (possibly decayed) exploration rate.
    pub epsilon: f64,
    /// Exact RNG stream state (`ChaCha8Rng::export_words`), so the
    /// explore/exploit decision sequence continues bit-for-bit after a
    /// resume. Empty for deterministic schedulers.
    pub rng_words: Vec<u32>,
    /// Per-arm statistics, indexed like the campaign's generator line-up.
    pub arms: Vec<ArmState>,
}

/// One arm's bandit statistics condensed for status display — what a
/// fleet dashboard shows per generator without knowing which scheduler
/// produced the numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct ArmStatus {
    /// Batches the arm has produced.
    pub pulls: u64,
    /// Lifetime mean reward per batch (0 for an unpulled arm).
    pub mean_reward: f64,
    /// Mean over the sliding reward window, when the scheduler keeps one
    /// (the non-stationary estimate windowed bandits actually act on).
    pub recent_mean_reward: Option<f64>,
    /// Simulated DUT cycles the arm's batches consumed.
    pub cycles: u64,
}

impl SchedulerState {
    /// Per-arm status summaries, indexed like the campaign's generator
    /// line-up. Works on any persisted [`SchedulerState`] — live session,
    /// snapshot, or merged fleet — since every in-tree scheduler records
    /// pulls, rewards, and cycle costs in the shared [`ArmState`] form.
    pub fn arm_statuses(&self) -> Vec<ArmStatus> {
        self.arms
            .iter()
            .map(|arm| ArmStatus {
                pulls: arm.pulls,
                mean_reward: if arm.pulls == 0 { 0.0 } else { arm.total_reward / arm.pulls as f64 },
                recent_mean_reward: (!arm.recent_rewards.is_empty()).then(|| {
                    arm.recent_rewards.iter().sum::<f64>() / arm.recent_rewards.len() as f64
                }),
                cycles: arm.cycles,
            })
            .collect()
    }
}

/// Picks which generator produces each batch of a campaign.
///
/// Implementations must be deterministic given their construction
/// parameters and the observed reward sequence; campaign replays rely on
/// it.
pub trait Scheduler: Send {
    /// Short scheduler name for reports.
    fn name(&self) -> &str;

    /// Chooses the generator (in `0..arms`) for the next batch.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `arms == 0`.
    fn pick(&mut self, arms: usize) -> usize;

    /// Reports the reward (newly covered bins per test) earned by the
    /// batch the chosen `arm` just produced.
    fn update(&mut self, arm: usize, reward: f64);

    /// Like [`Scheduler::update`], with the batch's simulated-cycle cost
    /// attached. Cost-aware schedulers ([`Ucb1`] with cost normalisation)
    /// override this; the default forwards to `update` and drops the
    /// cost. The campaign loop always calls this variant.
    fn update_costed(&mut self, arm: usize, reward: f64, cycles: u64) {
        let _ = cycles;
        self.update(arm, reward);
    }

    /// Exports the scheduler's accumulated state for a campaign snapshot.
    fn export_state(&self) -> SchedulerState;

    /// Restores state previously produced by [`Scheduler::export_state`],
    /// so arm statistics (and the decision RNG stream) survive a
    /// checkpoint/resume cycle.
    ///
    /// # Panics
    ///
    /// Panics if the state was exported by a different scheduler kind or
    /// is otherwise malformed (e.g. a corrupt RNG blob).
    fn import_state(&mut self, state: &SchedulerState);
}

/// Cycles through the generators in order — the fair baseline, and a
/// no-op for single-generator campaigns.
#[derive(Debug, Default)]
pub struct RoundRobin {
    next: usize,
}

impl RoundRobin {
    /// Creates the scheduler starting at generator 0.
    pub fn new() -> RoundRobin {
        RoundRobin::default()
    }
}

impl Scheduler for RoundRobin {
    fn name(&self) -> &str {
        "round-robin"
    }

    fn pick(&mut self, arms: usize) -> usize {
        assert!(arms > 0, "no generators to schedule");
        let pick = self.next % arms;
        self.next = (pick + 1) % arms;
        pick
    }

    fn update(&mut self, _arm: usize, _reward: f64) {}

    fn export_state(&self) -> SchedulerState {
        SchedulerState {
            scheduler: self.name().to_string(),
            cursor: self.next as u64,
            ..Default::default()
        }
    }

    fn import_state(&mut self, state: &SchedulerState) {
        assert_eq!(state.scheduler, self.name(), "scheduler state kind mismatch");
        self.next = state.cursor as usize;
    }
}

#[derive(Debug, Clone, Default)]
struct ArmStats {
    pulls: usize,
    total_reward: f64,
    cycles: u64,
    /// Sliding (reward, cycles) window, oldest first; only filled by
    /// windowed schedulers.
    recent: Vec<(f64, u64)>,
}

impl ArmStats {
    /// Records one observation, keeping at most `window` recent entries
    /// when a window is configured.
    fn record(&mut self, reward: f64, cycles: u64, window: Option<usize>) {
        self.pulls += 1;
        self.total_reward += reward;
        self.cycles += cycles;
        if let Some(w) = window {
            self.recent.push((reward, cycles));
            if self.recent.len() > w {
                let excess = self.recent.len() - w;
                self.recent.drain(..excess);
            }
        }
    }

    /// Mean observed reward — lifetime, or over the sliding window when
    /// one is configured (so the estimate tracks a decaying arm instead
    /// of averaging over its glory days).
    fn mean(&self, window: Option<usize>) -> f64 {
        if self.pulls == 0 {
            return f64::INFINITY; // force one exploratory pull of every arm
        }
        match window {
            Some(_) if !self.recent.is_empty() => {
                self.recent.iter().map(|(r, _)| r).sum::<f64>() / self.recent.len() as f64
            }
            _ => self.total_reward / self.pulls as f64,
        }
    }

    fn export(&self) -> ArmState {
        ArmState {
            pulls: self.pulls as u64,
            total_reward: self.total_reward,
            cycles: self.cycles,
            recent_rewards: self.recent.iter().map(|(r, _)| *r).collect(),
            recent_cycles: self.recent.iter().map(|(_, c)| *c).collect(),
        }
    }

    fn import(state: &ArmState) -> ArmStats {
        assert_eq!(
            state.recent_rewards.len(),
            state.recent_cycles.len(),
            "reward/cycle windows disagree in length"
        );
        ArmStats {
            pulls: state.pulls as usize,
            total_reward: state.total_reward,
            cycles: state.cycles,
            recent: state
                .recent_rewards
                .iter()
                .copied()
                .zip(state.recent_cycles.iter().copied())
                .collect(),
        }
    }
}

/// Epsilon-greedy bandit over the incremental-coverage reward, à la
/// MABFuzz: with probability `epsilon` explore a uniformly random
/// generator, otherwise exploit the best observed mean reward. Epsilon
/// decays multiplicatively so late batches concentrate on the winner
/// while coverage-frontier shifts can still be picked up.
///
/// [`EpsilonGreedy::windowed`] switches the exploitation estimate to a
/// sliding window over the most recent rewards — the right choice when
/// arms are non-stationary (the evolve arm's payoff decays as its corpus
/// saturates; the LM arm's rises as online PPO converges).
#[derive(Debug)]
pub struct EpsilonGreedy {
    epsilon: f64,
    decay: f64,
    floor: f64,
    window: Option<usize>,
    rng: ChaCha8Rng,
    arms: Vec<ArmStats>,
}

impl EpsilonGreedy {
    /// Creates the bandit with a fixed exploration rate.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is outside `0.0..=1.0`.
    pub fn new(seed: u64, epsilon: f64) -> EpsilonGreedy {
        assert!((0.0..=1.0).contains(&epsilon), "epsilon out of range: {epsilon}");
        EpsilonGreedy {
            epsilon,
            decay: 1.0,
            floor: 0.0,
            window: None,
            rng: ChaCha8Rng::seed_from_u64(seed),
            arms: Vec::new(),
        }
    }

    /// Multiplies epsilon by `decay` after every pick, never dropping
    /// below `floor`.
    ///
    /// # Panics
    ///
    /// Panics if `decay` or `floor` is outside `0.0..=1.0`.
    pub fn with_decay(mut self, decay: f64, floor: f64) -> EpsilonGreedy {
        assert!((0.0..=1.0).contains(&decay), "decay out of range: {decay}");
        assert!((0.0..=1.0).contains(&floor), "floor out of range: {floor}");
        self.decay = decay;
        self.floor = floor;
        self
    }

    /// Exploits the mean of each arm's last `window` rewards instead of
    /// its lifetime mean (non-stationary arms). The window contents ride
    /// in [`ArmState`], so a resumed bandit scores identically.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn windowed(mut self, window: usize) -> EpsilonGreedy {
        assert!(window > 0, "reward window must be positive");
        self.window = Some(window);
        self
    }

    /// Mean observed reward per arm (diagnostics; windowed when the
    /// bandit is).
    pub fn means(&self) -> Vec<f64> {
        self.arms.iter().map(|a| if a.pulls == 0 { 0.0 } else { a.mean(self.window) }).collect()
    }
}

impl Scheduler for EpsilonGreedy {
    fn name(&self) -> &str {
        "epsilon-greedy"
    }

    fn pick(&mut self, arms: usize) -> usize {
        assert!(arms > 0, "no generators to schedule");
        if self.arms.len() < arms {
            self.arms.resize(arms, ArmStats::default());
        }
        let explore = self.rng.gen_bool(self.epsilon);
        self.epsilon = (self.epsilon * self.decay).max(self.floor);
        if explore {
            return self.rng.gen_range(0..arms);
        }
        // Exploit: best mean, unpulled arms first (mean = +inf), lowest
        // index breaking ties for determinism.
        (0..arms)
            .max_by(|&a, &b| {
                self.arms[a]
                    .mean(self.window)
                    .partial_cmp(&self.arms[b].mean(self.window))
                    .expect("rewards are never NaN")
                    .then(b.cmp(&a)) // prefer the lower index on ties
            })
            .expect("arms > 0")
    }

    fn update(&mut self, arm: usize, reward: f64) {
        self.update_costed(arm, reward, 0);
    }

    fn update_costed(&mut self, arm: usize, reward: f64, cycles: u64) {
        assert!(reward.is_finite(), "non-finite reward: {reward}");
        if self.arms.len() <= arm {
            self.arms.resize(arm + 1, ArmStats::default());
        }
        self.arms[arm].record(reward, cycles, self.window);
    }

    fn export_state(&self) -> SchedulerState {
        SchedulerState {
            scheduler: self.name().to_string(),
            cursor: 0,
            epsilon: self.epsilon,
            rng_words: self.rng.export_words(),
            arms: self.arms.iter().map(ArmStats::export).collect(),
        }
    }

    fn import_state(&mut self, state: &SchedulerState) {
        assert_eq!(state.scheduler, self.name(), "scheduler state kind mismatch");
        assert!((0.0..=1.0).contains(&state.epsilon), "epsilon out of range: {}", state.epsilon);
        self.epsilon = state.epsilon;
        self.rng = ChaCha8Rng::from_words(&state.rng_words).expect("corrupt scheduler RNG state");
        self.arms = state.arms.iter().map(ArmStats::import).collect();
    }
}

/// UCB1 bandit: deterministic optimism-under-uncertainty over the
/// incremental-coverage reward. Each pick maximises
/// `mean + c·sqrt(ln(total_pulls) / pulls)`, with every arm pulled once
/// first (lowest index first). Needs no RNG, so resume-exactness reduces
/// to restoring the arm statistics.
///
/// With [`Ucb1::cost_normalised`], the exploitation term becomes reward
/// *per simulated kilocycle* instead of per batch — a generator whose
/// long-running tests buy the same coverage as a cheap generator's short
/// tests loses the comparison, which is the right call when the budget
/// is simulator time rather than test count (the cycle costs arrive via
/// [`Scheduler::update_costed`]).
#[derive(Debug)]
pub struct Ucb1 {
    c: f64,
    cost_normalised: bool,
    window: Option<usize>,
    total_pulls: u64,
    arms: Vec<ArmStats>,
}

/// Cycles per cost unit for [`Ucb1::cost_normalised`] (rewards become
/// "new bins per test per kilocycle", keeping the magnitudes near the
/// plain per-test rewards).
const UCB_COST_UNIT: f64 = 1000.0;

impl Ucb1 {
    /// Creates the bandit with exploration constant `c` (the classic
    /// UCB1 uses `sqrt(2)`; larger explores more).
    ///
    /// # Panics
    ///
    /// Panics if `c` is negative or not finite.
    pub fn new(c: f64) -> Ucb1 {
        assert!(c.is_finite() && c >= 0.0, "UCB exploration constant out of range: {c}");
        Ucb1 { c, cost_normalised: false, window: None, total_pulls: 0, arms: Vec::new() }
    }

    /// Normalises each arm's exploitation term by its simulated-cycle
    /// cost (reward per kilocycle) instead of per batch.
    pub fn cost_normalised(mut self) -> Ucb1 {
        self.cost_normalised = true;
        self
    }

    /// Exploits over a sliding window of each arm's last `window` rewards
    /// (and cycle costs, when cost-normalised) instead of its lifetime
    /// statistics, so the bandit tracks non-stationary arms. The
    /// exploration bonus keeps using lifetime pull counts — every arm is
    /// still pulled once first, and starvation still raises the bonus.
    /// The window contents ride in [`ArmState`] for exact resume.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn windowed(mut self, window: usize) -> Ucb1 {
        assert!(window > 0, "reward window must be positive");
        self.window = Some(window);
        self
    }

    /// The exploitation (mean) term of one arm.
    fn exploit(&self, a: &ArmStats) -> f64 {
        if a.pulls == 0 {
            return f64::INFINITY;
        }
        let (reward, pulls, cycles) = match self.window {
            Some(_) if !a.recent.is_empty() => (
                a.recent.iter().map(|(r, _)| r).sum::<f64>(),
                a.recent.len() as f64,
                a.recent.iter().map(|(_, c)| c).sum::<u64>(),
            ),
            _ => (a.total_reward, a.pulls as f64, a.cycles),
        };
        if self.cost_normalised {
            // Reward per kilocycle; an arm that somehow reported zero
            // cost falls back to the per-pull mean rather than dividing
            // by zero.
            if cycles == 0 {
                reward / pulls
            } else {
                reward * UCB_COST_UNIT / cycles as f64
            }
        } else {
            reward / pulls
        }
    }

    /// The full UCB score of one arm.
    fn score(&self, a: &ArmStats) -> f64 {
        if a.pulls == 0 {
            return f64::INFINITY;
        }
        let bonus = self.c * ((self.total_pulls.max(1) as f64).ln() / a.pulls as f64).sqrt();
        self.exploit(a) + bonus
    }
}

impl Scheduler for Ucb1 {
    fn name(&self) -> &str {
        if self.cost_normalised {
            "ucb1-cost"
        } else {
            "ucb1"
        }
    }

    fn pick(&mut self, arms: usize) -> usize {
        assert!(arms > 0, "no generators to schedule");
        if self.arms.len() < arms {
            self.arms.resize(arms, ArmStats::default());
        }
        // Highest score wins; unpulled arms score +inf; the lowest index
        // breaks ties so the decision sequence is fully deterministic.
        (0..arms)
            .max_by(|&a, &b| {
                self.score(&self.arms[a])
                    .partial_cmp(&self.score(&self.arms[b]))
                    .expect("UCB scores are never NaN")
                    .then(b.cmp(&a))
            })
            .expect("arms > 0")
    }

    fn update(&mut self, arm: usize, reward: f64) {
        self.update_costed(arm, reward, 0);
    }

    fn update_costed(&mut self, arm: usize, reward: f64, cycles: u64) {
        assert!(reward.is_finite(), "non-finite reward: {reward}");
        if self.arms.len() <= arm {
            self.arms.resize(arm + 1, ArmStats::default());
        }
        self.total_pulls += 1;
        self.arms[arm].record(reward, cycles, self.window);
    }

    fn export_state(&self) -> SchedulerState {
        SchedulerState {
            scheduler: self.name().to_string(),
            // UCB1 keeps no RNG and no epsilon; the total pull count
            // rides in `cursor`.
            cursor: self.total_pulls,
            arms: self.arms.iter().map(ArmStats::export).collect(),
            ..Default::default()
        }
    }

    fn import_state(&mut self, state: &SchedulerState) {
        assert_eq!(state.scheduler, self.name(), "scheduler state kind mismatch");
        self.total_pulls = state.cursor;
        self.arms = state.arms.iter().map(ArmStats::import).collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_cycles() {
        let mut rr = RoundRobin::new();
        let picks: Vec<usize> = (0..7).map(|_| rr.pick(3)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2, 0]);
        assert_eq!(rr.pick(1), 0, "single generator always picks 0");
    }

    #[test]
    fn epsilon_greedy_tries_every_arm_then_exploits() {
        let mut eg = EpsilonGreedy::new(1, 0.0); // pure exploitation
        let first: Vec<usize> = (0..3)
            .map(|_| {
                let arm = eg.pick(3);
                // Arm 1 pays, the others do not.
                eg.update(arm, if arm == 1 { 2.0 } else { 0.0 });
                arm
            })
            .collect();
        let mut sorted = first.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2], "every arm explored once: {first:?}");
        for _ in 0..10 {
            let arm = eg.pick(3);
            assert_eq!(arm, 1, "exploits the rewarded arm");
            eg.update(arm, 2.0);
        }
    }

    #[test]
    fn epsilon_greedy_explores_at_positive_epsilon() {
        let mut eg = EpsilonGreedy::new(7, 0.5);
        let mut seen = [false; 4];
        for _ in 0..200 {
            let arm = eg.pick(4);
            seen[arm] = true;
            eg.update(arm, if arm == 0 { 1.0 } else { 0.0 });
        }
        assert!(seen.iter().all(|&s| s), "exploration reaches every arm: {seen:?}");
    }

    #[test]
    fn epsilon_decay_reaches_floor() {
        let mut eg = EpsilonGreedy::new(3, 1.0).with_decay(0.5, 0.1);
        for _ in 0..10 {
            let arm = eg.pick(2);
            eg.update(arm, 0.0);
        }
        assert!((eg.epsilon - 0.1).abs() < 1e-12, "epsilon settled at the floor");
    }

    #[test]
    fn arm_statuses_summarise_any_scheduler_state() {
        let mut ucb = Ucb1::new(0.5).cost_normalised().windowed(4);
        for i in 0..12u64 {
            let arm = ucb.pick(2);
            ucb.update_costed(arm, (i % 3) as f64, 100 + i);
        }
        let statuses = ucb.export_state().arm_statuses();
        assert_eq!(statuses.len(), 2);
        assert_eq!(statuses.iter().map(|s| s.pulls).sum::<u64>(), 12);
        for (status, arm) in statuses.iter().zip(&ucb.export_state().arms) {
            assert!(status.pulls > 0, "UCB1 initialises every arm");
            assert!((status.mean_reward - arm.total_reward / arm.pulls as f64).abs() < 1e-12);
            assert_eq!(status.cycles, arm.cycles);
            let recent = status.recent_mean_reward.expect("windowed scheduler keeps a window");
            let expect = arm.recent_rewards.iter().sum::<f64>() / arm.recent_rewards.len() as f64;
            assert!((recent - expect).abs() < 1e-12);
        }

        // Unpulled arms summarise to zeros, not NaNs; unwindowed
        // schedulers report no recent mean.
        let statuses = RoundRobin::new().export_state().arm_statuses();
        assert!(statuses.is_empty());
        let state = SchedulerState { arms: vec![ArmState::default()], ..Default::default() };
        let statuses = state.arm_statuses();
        assert_eq!(statuses[0].pulls, 0);
        assert_eq!(statuses[0].mean_reward, 0.0);
        assert_eq!(statuses[0].recent_mean_reward, None);
    }

    #[test]
    fn round_robin_state_round_trips() {
        let mut rr = RoundRobin::new();
        rr.pick(3);
        rr.pick(3);
        let state = rr.export_state();
        let mut restored = RoundRobin::new();
        restored.import_state(&state);
        assert_eq!(restored.pick(3), rr.pick(3));
        assert_eq!(restored.export_state(), rr.export_state());
    }

    #[test]
    fn epsilon_greedy_state_round_trips_mid_stream() {
        let mut eg = EpsilonGreedy::new(9, 0.4).with_decay(0.9, 0.05);
        for i in 0..20 {
            let arm = eg.pick(3);
            eg.update(arm, (i % 4) as f64);
        }
        let state = eg.export_state();
        assert_eq!(state.arms.iter().map(|a| a.pulls).sum::<u64>(), 20);

        // Rebuild with the same constructor parameters, import, and the
        // decision stream (epsilon decay, RNG draws, exploitation order)
        // must continue identically.
        let mut restored = EpsilonGreedy::new(9, 0.4).with_decay(0.9, 0.05);
        restored.import_state(&state);
        for i in 0..50 {
            let a = eg.pick(3);
            let b = restored.pick(3);
            assert_eq!(a, b, "pick {i} diverged after state import");
            eg.update(a, (i % 5) as f64);
            restored.update(b, (i % 5) as f64);
        }
        assert_eq!(eg.export_state(), restored.export_state());
    }

    #[test]
    fn ucb1_tries_every_arm_then_exploits_the_payer() {
        let mut ucb = Ucb1::new(0.1);
        let first: Vec<usize> = (0..3)
            .map(|_| {
                let arm = ucb.pick(3);
                ucb.update(arm, if arm == 2 { 3.0 } else { 0.0 });
                arm
            })
            .collect();
        assert_eq!(first, vec![0, 1, 2], "one exploratory pull per arm, in index order");
        let mut wins = 0;
        for _ in 0..20 {
            let arm = ucb.pick(3);
            if arm == 2 {
                wins += 1;
            }
            ucb.update(arm, if arm == 2 { 3.0 } else { 0.0 });
        }
        assert!(wins >= 15, "UCB1 concentrates on the paying arm (got {wins}/20)");
    }

    #[test]
    fn ucb1_optimism_revisits_starved_arms() {
        // A large exploration constant forces periodic revisits even of a
        // zero-reward arm.
        let mut ucb = Ucb1::new(10.0);
        let mut seen = [false; 3];
        for _ in 0..30 {
            let arm = ucb.pick(3);
            seen[arm] = true;
            ucb.update(arm, if arm == 0 { 1.0 } else { 0.0 });
        }
        assert!(seen.iter().all(|&s| s), "exploration bonus reaches every arm: {seen:?}");
    }

    #[test]
    fn ucb1_cost_normalisation_prefers_the_cheap_arm() {
        // Equal reward per batch, but arm 0 spends 10× the cycles; the
        // cost-normalised bandit must concentrate on arm 1.
        let mut ucb = Ucb1::new(0.05).cost_normalised();
        for _ in 0..4 {
            let arm = ucb.pick(2);
            ucb.update_costed(arm, 1.0, if arm == 0 { 10_000 } else { 1_000 });
        }
        let mut cheap = 0;
        for _ in 0..20 {
            let arm = ucb.pick(2);
            if arm == 1 {
                cheap += 1;
            }
            ucb.update_costed(arm, 1.0, if arm == 0 { 10_000 } else { 1_000 });
        }
        assert!(cheap >= 15, "cost normalisation favours the cheap arm (got {cheap}/20)");

        // The plain bandit sees the two arms as identical and (with ties
        // broken by index) keeps pulling arm 0.
        let mut plain = Ucb1::new(0.0);
        for _ in 0..2 {
            let arm = plain.pick(2);
            plain.update_costed(arm, 1.0, if arm == 0 { 10_000 } else { 1_000 });
        }
        assert_eq!(plain.pick(2), 0, "without cost normalisation the tie goes to index order");
    }

    #[test]
    fn ucb1_state_round_trips_mid_stream() {
        let mut ucb = Ucb1::new(1.5).cost_normalised();
        for i in 0..20 {
            let arm = ucb.pick(3);
            ucb.update_costed(arm, (i % 4) as f64, 100 + i);
        }
        let state = ucb.export_state();
        assert_eq!(state.scheduler, "ucb1-cost");
        assert_eq!(state.cursor, 20, "total pulls ride in cursor");
        assert_eq!(state.arms.iter().map(|a| a.pulls).sum::<u64>(), 20);
        assert!(state.arms.iter().any(|a| a.cycles > 0), "cycle costs exported");

        // Rebuild with the same constructor parameters, import, and the
        // (deterministic) decision stream must continue identically.
        let mut restored = Ucb1::new(1.5).cost_normalised();
        restored.import_state(&state);
        for i in 0..50u64 {
            let a = ucb.pick(3);
            let b = restored.pick(3);
            assert_eq!(a, b, "pick {i} diverged after state import");
            ucb.update_costed(a, (i % 5) as f64, 50 + i);
            restored.update_costed(b, (i % 5) as f64, 50 + i);
        }
        assert_eq!(ucb.export_state(), restored.export_state());
    }

    #[test]
    #[should_panic(expected = "scheduler state kind mismatch")]
    fn ucb1_import_rejects_cost_variant_mismatch() {
        let state = Ucb1::new(1.0).export_state();
        Ucb1::new(1.0).cost_normalised().import_state(&state);
    }

    #[test]
    fn update_costed_accumulates_cycles_in_epsilon_greedy_state() {
        let mut eg = EpsilonGreedy::new(1, 0.0);
        let arm = eg.pick(2);
        eg.update_costed(arm, 1.0, 500);
        eg.update_costed(arm, 1.0, 700);
        let state = eg.export_state();
        assert_eq!(state.arms[arm].cycles, 1200);
        let mut restored = EpsilonGreedy::new(1, 0.0);
        restored.import_state(&state);
        assert_eq!(restored.export_state(), state);
    }

    #[test]
    #[should_panic(expected = "scheduler state kind mismatch")]
    fn import_rejects_foreign_state() {
        let state = RoundRobin::new().export_state();
        EpsilonGreedy::new(1, 0.1).import_state(&state);
    }

    /// Arm 0 pays 1.0 for a while, then dries up; arm 1 pays a steady
    /// 0.3. The windowed bandit abandons the decayed arm as soon as its
    /// recent window empties of reward; the lifetime-mean bandit keeps
    /// clinging to its historical average.
    #[test]
    fn windowed_bandit_abandons_a_decayed_arm() {
        let reward = |arm: usize, t: usize| -> f64 {
            if arm == 0 {
                if t < 12 {
                    1.0
                } else {
                    0.0
                }
            } else {
                0.3
            }
        };
        let mut lifetime = EpsilonGreedy::new(1, 0.0);
        let mut windowed = EpsilonGreedy::new(1, 0.0).windowed(4);
        for t in 0..24 {
            let arm = lifetime.pick(2);
            lifetime.update(arm, reward(arm, t));
            let arm = windowed.pick(2);
            windowed.update(arm, reward(arm, t));
        }
        assert_eq!(windowed.pick(2), 1, "windowed mean tracks the payoff shift");
        assert_eq!(lifetime.pick(2), 0, "lifetime mean still clings to the decayed arm");
    }

    #[test]
    fn windowed_ucb1_abandons_a_decayed_arm() {
        let reward = |arm: usize, t: usize| -> f64 {
            if arm == 0 {
                if t < 12 {
                    1.0
                } else {
                    0.0
                }
            } else {
                0.3
            }
        };
        let mut ucb = Ucb1::new(0.0).windowed(4);
        for t in 0..24 {
            let arm = ucb.pick(2);
            ucb.update(arm, reward(arm, t));
        }
        assert_eq!(ucb.pick(2), 1, "windowed UCB1 moves off the decayed arm");
    }

    #[test]
    fn windowed_state_round_trips_mid_stream() {
        let mut ucb = Ucb1::new(1.2).cost_normalised().windowed(3);
        for i in 0..20u64 {
            let arm = ucb.pick(3);
            ucb.update_costed(arm, (i % 4) as f64, 100 + i);
        }
        let state = ucb.export_state();
        assert!(
            state.arms.iter().all(|a| a.recent_rewards.len() <= 3),
            "window bound holds in the exported state"
        );
        assert!(
            state.arms.iter().any(|a| !a.recent_rewards.is_empty()),
            "recent rewards are exported"
        );

        let mut restored = Ucb1::new(1.2).cost_normalised().windowed(3);
        restored.import_state(&state);
        for i in 0..40u64 {
            let a = ucb.pick(3);
            let b = restored.pick(3);
            assert_eq!(a, b, "pick {i} diverged after windowed state import");
            ucb.update_costed(a, ((i + 1) % 5) as f64, 50 + i);
            restored.update_costed(b, ((i + 1) % 5) as f64, 50 + i);
        }
        assert_eq!(ucb.export_state(), restored.export_state());

        let mut eg = EpsilonGreedy::new(5, 0.3).windowed(4);
        for i in 0..15 {
            let arm = eg.pick(2);
            eg.update(arm, (i % 3) as f64);
        }
        let state = eg.export_state();
        let mut restored = EpsilonGreedy::new(5, 0.3).windowed(4);
        restored.import_state(&state);
        for i in 0..30 {
            let a = eg.pick(2);
            let b = restored.pick(2);
            assert_eq!(a, b, "pick {i} diverged after windowed state import");
            eg.update(a, (i % 4) as f64);
            restored.update(b, (i % 4) as f64);
        }
        assert_eq!(eg.export_state(), restored.export_state());
    }

    #[test]
    #[should_panic(expected = "reward window must be positive")]
    fn windowed_rejects_zero() {
        let _ = Ucb1::new(1.0).windowed(0);
    }

    #[test]
    fn deterministic_given_seed_and_rewards() {
        let run = || {
            let mut eg = EpsilonGreedy::new(11, 0.3);
            (0..50)
                .map(|i| {
                    let arm = eg.pick(3);
                    eg.update(arm, (i % 3) as f64);
                    arm
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
