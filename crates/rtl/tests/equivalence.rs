//! The central soundness property of the reproduction: with every injected
//! defect disabled, both microarchitectural cores are **trace-equivalent**
//! to the golden model on arbitrary programs. Any mismatch the fuzzer later
//! reports is therefore attributable to the injected RocketCore bugs alone.

use chatfuzz_isa::{encode_program, AluOp, BranchCond, Instr, MemWidth, MulDivOp, Reg, SystemOp};
use chatfuzz_rtl::dut::Dut;
use chatfuzz_rtl::{Boom, BoomConfig, BugConfig, Rocket, RocketConfig};
use chatfuzz_softcore::{SoftCore, SoftCoreConfig};
use proptest::prelude::*;

fn reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(|i| Reg::new(i).unwrap())
}

/// Generates self-contained instructions whose control flow stays within a
/// small window (so programs are interesting but bounded); memory accesses
/// may still fault wildly, which is part of what must stay equivalent.
fn interesting_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (reg(), -0x800i64..0x800).prop_map(|(rd, v)| Instr::Lui { rd, imm: v << 12 }),
        (reg(), reg(), -64i64..=63, any::<bool>()).prop_filter_map(
            "imm alu",
            |(rd, rs1, imm, word)| Some(Instr::OpImm { op: AluOp::Add, rd, rs1, imm, word })
        ),
        (reg(), reg(), reg()).prop_map(|(rd, rs1, rs2)| Instr::Op {
            op: AluOp::Xor,
            rd,
            rs1,
            rs2,
            word: false
        }),
        (reg(), reg(), reg()).prop_map(|(rd, rs1, rs2)| Instr::MulDiv {
            op: MulDivOp::Mul,
            rd,
            rs1,
            rs2,
            word: false
        }),
        (reg(), reg(), reg()).prop_map(|(rd, rs1, rs2)| Instr::MulDiv {
            op: MulDivOp::Div,
            rd,
            rs1,
            rs2,
            word: false
        }),
        (reg(), reg(), -16i64..16).prop_map(|(rd, rs1, o)| Instr::Load {
            width: MemWidth::D,
            signed: true,
            rd,
            rs1,
            offset: o * 8
        }),
        (reg(), reg(), -16i64..16).prop_map(|(rs2, rs1, o)| Instr::Store {
            width: MemWidth::W,
            rs2,
            rs1,
            offset: o * 4
        }),
        (reg(), reg(), 1i64..8).prop_map(|(rs1, rs2, o)| Instr::Branch {
            cond: BranchCond::Ne,
            rs1,
            rs2,
            offset: o * 4
        }),
        (reg(), 1i64..8).prop_map(|(rd, o)| Instr::Jal { rd, offset: o * 4 }),
        (reg(), reg(), reg()).prop_map(|(rd, rs1, rs2)| Instr::Amo {
            op: chatfuzz_isa::AmoOp::Add,
            width: MemWidth::D,
            rd,
            rs1,
            rs2,
            aq: false,
            rl: false
        }),
        (reg(), reg()).prop_map(|(rd, rs1)| Instr::Csr {
            op: chatfuzz_isa::CsrOp::Rs,
            rd,
            csr: 0x340,
            src: chatfuzz_isa::CsrSrc::Reg(rs1)
        }),
        Just(Instr::FenceI),
        Just(Instr::System(SystemOp::Ecall)),
    ]
}

fn program() -> impl Strategy<Value = Vec<Instr>> {
    proptest::collection::vec(interesting_instr(), 1..48).prop_map(|mut v| {
        v.push(Instr::System(SystemOp::Wfi));
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Bug-free Rocket == golden model, on arbitrary bounded programs.
    #[test]
    fn bugfree_rocket_trace_equals_golden(instrs in program()) {
        let bytes = encode_program(&instrs).unwrap();
        let golden = SoftCore::new(SoftCoreConfig::default()).run(&bytes);
        let mut rocket = Rocket::new(RocketConfig {
            bugs: BugConfig::all_off(),
            ..Default::default()
        });
        let run = rocket.run(&bytes);
        prop_assert_eq!(run.trace, golden);
    }

    /// BOOM (never buggy) == golden model.
    #[test]
    fn boom_trace_equals_golden(instrs in program()) {
        let bytes = encode_program(&instrs).unwrap();
        let golden = SoftCore::new(SoftCoreConfig::default()).run(&bytes);
        let mut boom = Boom::new(BoomConfig::default());
        let run = boom.run(&bytes);
        prop_assert_eq!(run.trace, golden);
    }

    /// The buggy Rocket's *architectural* divergence is limited to the
    /// injected surface: on programs with no stores near the PC (no
    /// self-modifying code) and no simultaneous misaligned+faulting
    /// accesses, register write-back values agree even with all bugs on —
    /// modulo the trace-only omissions (BUG2/F2/F3), which only ever
    /// *remove or add x0* records, never change values of real registers.
    #[test]
    fn buggy_rocket_never_corrupts_nonx0_values(instrs in program()) {
        let bytes = encode_program(&instrs).unwrap();
        let golden = SoftCore::new(SoftCoreConfig::default()).run(&bytes);
        let mut rocket = Rocket::new(RocketConfig {
            bugs: BugConfig::all_on(),
            ..Default::default()
        });
        let run = rocket.run(&bytes);
        // Compare slot-aligned non-x0 write-backs until first divergence in
        // PC (after which BUG1 may legitimately change the stream).
        for (g, r) in golden.records.iter().zip(&run.trace.records) {
            if g.pc != r.pc || g.word != r.word {
                break;
            }
            if let (Some((gr, gv)), Some((rr, rv))) = (g.rd_write, r.rd_write) {
                if !gr.is_zero() && !rr.is_zero() {
                    prop_assert_eq!(gr, rr);
                    prop_assert_eq!(gv, rv);
                }
            }
        }
    }

    /// Coverage maps from repeated runs of the same program are identical
    /// (the whole simulator is deterministic).
    #[test]
    fn rocket_runs_are_deterministic(instrs in program()) {
        let bytes = encode_program(&instrs).unwrap();
        let mut rocket = Rocket::new(RocketConfig::default());
        let a = rocket.run(&bytes);
        let b = rocket.run(&bytes);
        prop_assert_eq!(a.trace, b.trace);
        prop_assert_eq!(a.coverage.covered_bins(), b.coverage.covered_bins());
        prop_assert_eq!(a.cycles, b.cycles);
    }
}
