//! The BOOM-like superscalar out-of-order core model.
//!
//! Reuses the cache/predictor/mul-div units and the shared [`ArchExec`]
//! datapath, and adds out-of-order machinery conditions: register renaming
//! (free-list pressure), re-order-buffer occupancy, dual-issue pairing,
//! load/store-queue forwarding, and mispredict-flush recovery. No bugs are
//! injected: the paper evaluates BOOM for coverage only.
//!
//! Compared to the Rocket model, a much smaller share of BOOM's registered
//! conditions is structurally unreachable on this bare-metal testbench,
//! which is why its coverage saturates far higher (the paper reports
//! 97.02 % for BOOM vs ~79 % for RocketCore).

use std::sync::Arc;

use chatfuzz_coverage::{cover, CondId, PointKind, Space, SpaceBuilder};
use chatfuzz_isa::{decode, DecodeCache, Instr, Reg, SystemOp};
use chatfuzz_softcore::mem::{Memory, DEFAULT_RAM_BASE, DEFAULT_RAM_SIZE};
use chatfuzz_softcore::trace::{CommitRecord, ExitReason, Trace, TrapRecord};

use crate::arch::{ArchExec, ArchOutcome};
use crate::core_ids::{CoreIds, DeepIds, DeepState};
use crate::dcache::{DCache, DCacheConfig};
use crate::dut::{Dut, DutRun};
use crate::icache::{ICache, ICacheConfig};
use crate::muldiv::{MulDiv, MulDivConfig};
use crate::predictor::{Predictor, PredictorConfig};
use crate::tracer::{Tracer, TracerBugs};

/// BOOM model configuration.
#[derive(Debug, Clone, Copy)]
pub struct BoomConfig {
    /// I-cache geometry (always coherent on BOOM).
    pub icache: ICacheConfig,
    /// D-cache geometry.
    pub dcache: DCacheConfig,
    /// Predictor sizing.
    pub predictor: PredictorConfig,
    /// Mul/div latencies.
    pub muldiv: MulDivConfig,
    /// Re-order buffer entries.
    pub rob_entries: u32,
    /// Physical registers (free list = `phys_regs` − 32 − in-flight).
    pub phys_regs: u32,
    /// Load/store queue entries.
    pub lsq_entries: usize,
    /// RAM base (= reset PC).
    pub ram_base: u64,
    /// RAM size.
    pub ram_size: u64,
    /// Committed-slot budget.
    pub max_steps: usize,
    /// Trap budget.
    pub max_traps: usize,
    /// Flush cycles per trap or mispredict recovery.
    pub flush_penalty: u64,
    /// Structurally unreachable conditions to elaborate.
    pub dead_conds: usize,
}

impl Default for BoomConfig {
    fn default() -> Self {
        BoomConfig {
            icache: ICacheConfig { sets: 8, ways: 2, coherent: true, ..Default::default() },
            dcache: DCacheConfig { sets: 8, ways: 2, ..Default::default() },
            predictor: PredictorConfig {
                btb_entries: 8,
                bht_entries: 16,
                ras_depth: 2,
                mispredict_penalty: 7,
            },
            muldiv: MulDivConfig::default(),
            rob_entries: 16,
            phys_regs: 48,
            lsq_entries: 4,
            ram_base: DEFAULT_RAM_BASE,
            ram_size: DEFAULT_RAM_SIZE,
            max_steps: 4096,
            max_traps: 64,
            flush_penalty: 7,
            dead_conds: 2,
        }
    }
}

#[derive(Debug)]
struct OooIds {
    dual_issue: CondId,
    issue_dep_stall: CondId,
    rob_half_full: CondId,
    rob_full: CondId,
    freelist_low: CondId,
    rename_realias: CondId,
    lsq_forward: CondId,
    lsq_full: CondId,
    flush_recovery: CondId,
    long_latency_shadow: CondId,
}

/// The BOOM-like DUT.
#[derive(Debug)]
pub struct Boom {
    cfg: BoomConfig,
    space: Arc<Space>,
    ids: CoreIds,
    deep: DeepIds,
    ooo: OooIds,
    icache: ICache,
    dcache: DCache,
    predictor: Predictor,
    muldiv: MulDiv,
    tracer: Tracer,
    /// Word-validated decode cache for the hot path (hits bit-identical
    /// to re-decoding; `run` skips it to stay the pre-PR-3 baseline).
    decode_cache: DecodeCache,
    /// Reusable architectural arena for [`Dut::run_into`].
    arena: Option<ArchExec>,
}

impl Boom {
    /// Elaborates the design and its coverage space.
    pub fn new(cfg: BoomConfig) -> Boom {
        let mut b = SpaceBuilder::new("boom");
        let icache =
            ICache::new(ICacheConfig { coherent: true, ..cfg.icache }, "boom.icache", &mut b);
        let dcache = DCache::new(cfg.dcache, "boom.dcache", &mut b);
        let predictor = Predictor::new(cfg.predictor, "boom.bpu", &mut b);
        let muldiv = MulDiv::new(cfg.muldiv, "boom.muldiv", &mut b);
        let tracer = Tracer::new(TracerBugs::all_off(), "boom.tracer", &mut b);
        let ids = CoreIds::register("boom", cfg.dead_conds, &mut b);
        let deep = DeepIds::register("boom", &mut b);
        let c = |b: &mut SpaceBuilder, n: &str| {
            b.register(format!("boom.ooo.{n}"), PointKind::Condition)
        };
        let ooo = OooIds {
            dual_issue: c(&mut b, "dual_issue"),
            issue_dep_stall: c(&mut b, "issue_dep_stall"),
            rob_half_full: c(&mut b, "rob_half_full"),
            rob_full: c(&mut b, "rob_full"),
            freelist_low: c(&mut b, "freelist_low"),
            rename_realias: c(&mut b, "rename_realias"),
            lsq_forward: c(&mut b, "lsq_forward"),
            lsq_full: c(&mut b, "lsq_full"),
            flush_recovery: c(&mut b, "flush_recovery"),
            long_latency_shadow: c(&mut b, "long_latency_shadow"),
        };
        let space = b.build();
        Boom {
            cfg,
            space,
            ids,
            deep,
            ooo,
            icache,
            dcache,
            predictor,
            muldiv,
            tracer,
            decode_cache: DecodeCache::default(),
            arena: None,
        }
    }

    /// The configuration this core was elaborated with.
    pub fn config(&self) -> &BoomConfig {
        &self.cfg
    }
}

impl Dut for Boom {
    fn name(&self) -> &str {
        "boom"
    }

    fn space(&self) -> &Arc<Space> {
        &self.space
    }

    fn run(&mut self, program: &[u8]) -> DutRun {
        // One-shot path: fresh arena + result per call (the benchmark
        // baseline); `run_into` is the recycled hot path.
        let mut out = DutRun::scratch(&self.space);
        let mut mem = Memory::new(self.cfg.ram_base, self.cfg.ram_size);
        let image_len = program.len().min(self.cfg.ram_size as usize);
        mem.load_image(self.cfg.ram_base, &program[..image_len]);
        let mut arch = ArchExec::new(mem, false);
        self.run_inner(&mut arch, &mut out, false);
        out
    }

    fn run_into(&mut self, program: &[u8], out: &mut DutRun) {
        out.reset_for(&self.space);
        let mut arch = self.arena.take().unwrap_or_else(|| {
            ArchExec::new(Memory::new(self.cfg.ram_base, self.cfg.ram_size), false)
        });
        let image_len = program.len().min(self.cfg.ram_size as usize);
        arch.mem.reset_with_image(self.cfg.ram_base, &program[..image_len]);
        arch.reset();
        self.run_inner(&mut arch, out, true);
        self.arena = Some(arch);
    }
}

impl Boom {
    /// The shared execution loop. `arch` must be reset with the program
    /// image loaded; `out` must be empty (scratch or `reset_for`).
    fn run_inner(&mut self, arch: &mut ArchExec, out: &mut DutRun, use_decode_cache: bool) {
        self.icache.reset();
        self.dcache.reset();
        self.predictor.reset();
        self.muldiv.reset();
        self.tracer.reset();
        let DutRun { trace, coverage: cov, cycles: out_cycles } = out;
        let Trace { records, exit: out_exit } = trace;

        let mut pc = self.cfg.ram_base;
        let mut cycles: u64 = 0;
        let mut traps = 0usize;
        // OoO bookkeeping.
        let mut rob_occ: u32 = 0;
        let mut last_rd: Option<Reg> = None;
        let mut last_was_paired = false;
        let mut rename_epoch: [u8; 32] = [0; 32];
        let mut recent_stores = [0u64; 4];
        let mut recent_len = 0usize;
        let mut lsq_occ: usize = 0;
        let mut shadow_until: u64 = 0;
        let mut deep = DeepState::new();

        for _ in 0..self.cfg.max_steps {
            self.ids.tick_dead(cov);
            arch.csrs.tick_cycle(1);

            let fetch_exc = if !pc.is_multiple_of(4) {
                Some(chatfuzz_isa::Exception::InstrAddrMisaligned { addr: pc })
            } else if !arch.mem.in_ram(pc, 4) {
                Some(chatfuzz_isa::Exception::InstrAccessFault { addr: pc })
            } else {
                None
            };

            macro_rules! trap_path {
                ($e:expr, $word:expr, $instr:expr) => {{
                    let e = $e;
                    let from = arch.csrs.priv_level;
                    let delegated = arch.csrs.delegated_to_s(e.cause());
                    let vec = if delegated { arch.csrs.stvec() } else { arch.csrs.mtvec() };
                    if vec == 0 {
                        self.ids.cover_trap(&e, from, delegated, true, cov);
                        *out_exit = ExitReason::UnhandledTrap(e);
                        *out_cycles = cycles;
                        return;
                    }
                    self.ids.cover_trap(&e, from, delegated, false, cov);
                    arch.reservation = None;
                    let (to, handler_pc) = arch.csrs.take_trap(&e, pc);
                    cover!(cov, self.ooo.flush_recovery, true);
                    deep.on_trap(&self.deep, to == chatfuzz_isa::PrivLevel::Supervisor, cov);
                    rob_occ = 0;
                    lsq_occ = 0;
                    cycles += self.cfg.flush_penalty;
                    let record = CommitRecord {
                        pc,
                        word: $word,
                        priv_level: from,
                        rd_write: None,
                        mem: None,
                        trap: Some(TrapRecord { exception: e, from, to, handler_pc }),
                    };
                    let record = self.tracer.emit(record, $instr, None, cov);
                    records.push(record);
                    traps += 1;
                    if traps > self.cfg.max_traps {
                        *out_exit = ExitReason::TrapStorm;
                        *out_cycles = cycles;
                        return;
                    }
                    last_rd = None;
                    pc = handler_pc;
                    continue;
                }};
            }

            if let Some(e) = fetch_exc {
                trap_path!(e, 0u32, None);
            }

            let predicted = self.predictor.predict(pc, cov);
            let (word, ic_cycles) = self.icache.fetch(pc, &arch.mem, cov);
            cycles += ic_cycles;

            let decoded =
                if use_decode_cache { self.decode_cache.decode(pc, word) } else { decode(word) };
            let instr = match decoded {
                Ok(i) => {
                    self.ids.cover_decode(Ok(&i), cov);
                    i
                }
                Err(_) => {
                    self.ids.cover_decode(Err(()), cov);
                    trap_path!(chatfuzz_isa::Exception::IllegalInstr { word }, word, None);
                }
            };

            // ---- Rename / dispatch ----
            let sources = instr.sources();
            let dep_on_last = last_rd.is_some_and(|r| sources.contains(&r));
            cover!(cov, self.ooo.issue_dep_stall, dep_on_last);
            let pair =
                !dep_on_last && !last_was_paired && !instr.is_mem() && !instr.is_control_flow();
            if cover!(cov, self.ooo.dual_issue, pair) {
                // Second slot of a pair issues for free.
            } else {
                cycles += 1;
            }
            last_was_paired = pair;
            if let Some(rd) = instr.rd() {
                let idx = rd.index();
                cover!(cov, self.ooo.rename_realias, rename_epoch[idx] > 0);
                rename_epoch[idx] = rename_epoch[idx].wrapping_add(1);
            }
            rob_occ = (rob_occ + 1).min(self.cfg.rob_entries);
            cover!(cov, self.ooo.rob_half_full, rob_occ >= self.cfg.rob_entries / 2);
            if cover!(cov, self.ooo.rob_full, rob_occ >= self.cfg.rob_entries) {
                cycles += 1;
                rob_occ = self.cfg.rob_entries / 2; // drain burst
            }
            let in_flight = rob_occ;
            cover!(
                cov,
                self.ooo.freelist_low,
                self.cfg.phys_regs.saturating_sub(32 + in_flight) < 4
            );
            cover!(cov, self.ooo.long_latency_shadow, cycles < shadow_until);

            let muldiv_ops = match instr {
                Instr::MulDiv { op, rs1, rs2, word: w, .. } => {
                    Some((op, w, arch.reg(rs1), arch.reg(rs2)))
                }
                _ => None,
            };
            let from_priv = arch.csrs.priv_level;

            let outcome = arch.execute(instr, pc, word);
            let (next_pc, record, halt) = match outcome {
                ArchOutcome::Next(record) => (pc.wrapping_add(4), record, None),
                ArchOutcome::Jump { target, record } => (target, record, None),
                ArchOutcome::Halt(reason, record) => (pc.wrapping_add(4), record, Some(reason)),
                ArchOutcome::Trap(e) => {
                    if matches!(e, chatfuzz_isa::Exception::IllegalInstr { .. }) {
                        match instr {
                            Instr::Csr { .. } => self.ids.cover_illegal_system(true, cov),
                            Instr::System(SystemOp::Mret | SystemOp::Sret) => {
                                self.ids.cover_illegal_system(false, cov)
                            }
                            _ => {}
                        }
                    }
                    trap_path!(e, word, Some(&instr));
                }
            };
            arch.csrs.tick_instret();

            if let Some((op, w, a, b_)) = muldiv_ops {
                let lat = self.muldiv.issue(op, w, a, b_, cycles, cov);
                // OoO hides part of the latency; younger ops pile up in
                // the ROB behind the long-latency op.
                shadow_until = cycles + lat;
                cycles += lat / 4;
                rob_occ = (rob_occ + (lat / 4) as u32).min(self.cfg.rob_entries);
            }
            if let Some(mem_eff) = record.mem {
                if arch.mem.in_ram(mem_eff.addr, u64::from(mem_eff.bytes)) {
                    let is_amo = matches!(instr, Instr::Amo { .. });
                    let access = self.dcache.access(mem_eff.addr, mem_eff.is_store, is_amo, cov);
                    cycles += access.cycles / 2; // partially hidden by OoO
                    if !access.hit {
                        rob_occ = (rob_occ + 3).min(self.cfg.rob_entries);
                    }
                    lsq_occ = (lsq_occ + 1).min(self.cfg.lsq_entries + 1);
                    if cover!(cov, self.ooo.lsq_full, lsq_occ > self.cfg.lsq_entries) {
                        cycles += 1;
                        lsq_occ = self.cfg.lsq_entries / 2;
                    }
                    if mem_eff.is_store {
                        if recent_len == recent_stores.len() {
                            recent_stores.rotate_left(1);
                            recent_stores[recent_len - 1] = mem_eff.addr;
                        } else {
                            recent_stores[recent_len] = mem_eff.addr;
                            recent_len += 1;
                        }
                        self.icache.on_store(mem_eff.addr, u64::from(mem_eff.bytes), cov);
                    } else {
                        cover!(
                            cov,
                            self.ooo.lsq_forward,
                            recent_stores[..recent_len].contains(&mem_eff.addr)
                        );
                    }
                } else if mem_eff.is_store {
                    self.icache.on_store(mem_eff.addr, u64::from(mem_eff.bytes), cov);
                }
            } else {
                lsq_occ = lsq_occ.saturating_sub(1);
            }
            if matches!(instr, Instr::FenceI) {
                cycles += self.icache.flush(cov);
            }
            match instr {
                Instr::Branch { .. } => {
                    let taken = next_pc != pc.wrapping_add(4);
                    let res = self.predictor.resolve_branch(pc, taken, next_pc, predicted, cov);
                    if res.mispredicted {
                        cover!(cov, self.ooo.flush_recovery, true);
                        rob_occ = 0;
                    }
                    cycles += res.cycles;
                }
                Instr::Jal { rd, .. } => {
                    let res = self.predictor.resolve_jump(
                        pc,
                        next_pc,
                        rd == Reg::RA,
                        false,
                        predicted,
                        cov,
                    );
                    cycles += res.cycles;
                }
                Instr::Jalr { rd, rs1, .. } => {
                    let is_ret = rs1 == Reg::RA && rd == Reg::X0;
                    let res = self.predictor.resolve_jump(
                        pc,
                        next_pc,
                        rd == Reg::RA,
                        is_ret,
                        predicted,
                        cov,
                    );
                    if res.mispredicted {
                        cover!(cov, self.ooo.flush_recovery, true);
                        rob_occ = 0;
                    }
                    cycles += res.cycles;
                }
                Instr::System(SystemOp::Mret | SystemOp::Sret) => {
                    self.ids.cover_xret(from_priv, arch.csrs.priv_level, cov);
                    cover!(cov, self.ooo.flush_recovery, true);
                    rob_occ = 0;
                    cycles += self.cfg.flush_penalty;
                }
                _ => {}
            }

            self.ids.cover_retire(&instr, &record, next_pc, arch.reservation.is_some(), cov);
            let taken_backward = match instr {
                Instr::Branch { offset, .. } if offset < 0 && next_pc != pc.wrapping_add(4) => {
                    Some(pc)
                }
                _ => None,
            };
            let mem_line = record.mem.map(|m| m.addr / 64);
            deep.on_retire(&self.deep, &instr, record.priv_level, taken_backward, mem_line, cov);
            let final_record = self.tracer.emit(record, Some(&instr), None, cov);
            records.push(final_record);
            rob_occ = rob_occ.saturating_sub(1);
            last_rd = instr.rd();

            if let Some(reason) = halt {
                *out_exit = reason;
                *out_cycles = cycles;
                return;
            }
            pc = next_pc;
        }
        *out_exit = ExitReason::BudgetExhausted;
        *out_cycles = cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chatfuzz_isa::asm::Assembler;
    use chatfuzz_isa::{AluOp, BranchCond};
    use chatfuzz_softcore::{SoftCore, SoftCoreConfig};

    fn a(i: u8) -> Reg {
        Reg::new(i).unwrap()
    }

    #[test]
    fn boom_is_trace_equivalent_to_golden() {
        // BOOM has no injected bugs: traces must match the golden model.
        let mut asm = Assembler::new();
        asm.li(a(10), 25);
        asm.label("loop");
        asm.push(Instr::OpImm { op: AluOp::Add, rd: a(10), rs1: a(10), imm: -1, word: false });
        asm.push(Instr::MulDiv {
            op: chatfuzz_isa::MulDivOp::Mul,
            rd: a(11),
            rs1: a(10),
            rs2: a(10),
            word: false,
        });
        asm.branch_to(BranchCond::Ne, a(10), Reg::X0, "loop");
        asm.push(Instr::System(SystemOp::Wfi));
        let bytes = asm.assemble_bytes().unwrap();
        let golden = SoftCore::new(SoftCoreConfig::default()).run(&bytes);
        let run = Boom::new(BoomConfig::default()).run(&bytes);
        assert_eq!(run.trace, golden);
    }

    #[test]
    fn boom_self_modifying_code_is_coherent() {
        // The same SMC program that trips Rocket's BUG1 runs correctly on
        // BOOM (coherent I-cache).
        let t0 = a(5);
        let t1 = a(6);
        let mut asm = Assembler::new();
        asm.push(Instr::Auipc { rd: t0, imm: 0 });
        let new_word = chatfuzz_isa::encode(&Instr::OpImm {
            op: AluOp::Add,
            rd: a(10),
            rs1: a(10),
            imm: 64,
            word: false,
        })
        .unwrap();
        asm.li(t1, i64::from(new_word as i32));
        asm.push(Instr::Store { width: chatfuzz_isa::MemWidth::W, rs2: t1, rs1: t0, offset: 16 });
        asm.push(Instr::OpImm { op: AluOp::Add, rd: a(10), rs1: a(10), imm: 1, word: false });
        asm.push(Instr::System(SystemOp::Wfi));
        let bytes = asm.assemble_bytes().unwrap();
        let golden = SoftCore::new(SoftCoreConfig::default()).run(&bytes);
        let run = Boom::new(BoomConfig::default()).run(&bytes);
        assert_eq!(run.trace, golden);
    }

    #[test]
    fn boom_space_differs_from_rocket_space() {
        let boom = Boom::new(BoomConfig::default());
        let rocket = crate::rocket::Rocket::new(crate::rocket::RocketConfig::default());
        assert_ne!(boom.space().fingerprint(), rocket.space().fingerprint());
        assert!(boom.space().len() > 100);
    }

    #[test]
    fn dual_issue_condition_fires_on_independent_ops() {
        let mut asm = Assembler::new();
        asm.push(Instr::OpImm { op: AluOp::Add, rd: a(10), rs1: Reg::X0, imm: 1, word: false });
        asm.push(Instr::OpImm { op: AluOp::Add, rd: a(11), rs1: Reg::X0, imm: 2, word: false });
        asm.push(Instr::System(SystemOp::Wfi));
        let mut boom = Boom::new(BoomConfig::default());
        let run = boom.run(&asm.assemble_bytes().unwrap());
        // Find the dual_issue condition by name and check the true bin.
        let id = boom
            .space()
            .iter()
            .find(|(_, name, _)| *name == "boom.ooo.dual_issue")
            .map(|(id, _, _)| id)
            .unwrap();
        assert!(run.coverage.is_covered(id, true));
    }
}
