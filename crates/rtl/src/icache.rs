//! Instruction-cache model.
//!
//! The cache holds *actual line bytes* copied from RAM at refill time. With
//! `coherent = false` (the RocketCore configuration) stores do **not**
//! invalidate or update cached lines — only `fence.i` does — so a program
//! that modifies instruction memory without `fence.i` can fetch **stale
//! instructions**. That is the paper's BUG1 (CWE-1202): the golden model's
//! fetch is always coherent, so the two traces diverge.

use chatfuzz_coverage::{cover, CondId, CovMap, PointKind, SpaceBuilder};
use chatfuzz_softcore::mem::Memory;

/// Instruction-cache geometry and behaviour.
#[derive(Debug, Clone, Copy)]
pub struct ICacheConfig {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes (power of two, ≥ 4).
    pub line_bytes: u64,
    /// Extra cycles charged on a miss.
    pub miss_penalty: u64,
    /// Whether stores snoop/invalidate matching lines (BUG1 = `false`).
    pub coherent: bool,
}

impl Default for ICacheConfig {
    fn default() -> Self {
        ICacheConfig { sets: 16, ways: 2, line_bytes: 32, miss_penalty: 8, coherent: false }
    }
}

#[derive(Debug, Clone)]
struct Line {
    tag: u64,
    valid: bool,
    data: Vec<u8>,
}

#[derive(Debug)]
struct Ids {
    hit_way: Vec<CondId>,
    miss_refill: CondId,
    evict_valid: CondId,
    flush_had_lines: CondId,
    snoop_invalidate: CondId,
    stale_fetch: CondId,
    lru_way: CondId,
}

/// The instruction cache (data-carrying, optionally incoherent).
#[derive(Debug)]
pub struct ICache {
    cfg: ICacheConfig,
    lines: Vec<Line>, // sets * ways
    lru: Vec<u8>,     // per set: way last used
    ids: Ids,
}

impl ICache {
    /// Builds the cache and registers its coverage points.
    pub fn new(cfg: ICacheConfig, prefix: &str, b: &mut SpaceBuilder) -> ICache {
        assert!(cfg.sets.is_power_of_two() && cfg.line_bytes.is_power_of_two());
        assert!(cfg.line_bytes >= 4 && cfg.ways >= 1);
        let ids = Ids {
            hit_way: b.register_array(&format!("{prefix}.hit_way"), cfg.ways, PointKind::Condition),
            miss_refill: b.register(format!("{prefix}.miss_refill"), PointKind::Condition),
            evict_valid: b.register(format!("{prefix}.evict_valid"), PointKind::Condition),
            flush_had_lines: b.register(format!("{prefix}.flush_had_lines"), PointKind::Condition),
            snoop_invalidate: b
                .register(format!("{prefix}.snoop_invalidate"), PointKind::Condition),
            stale_fetch: b.register(format!("{prefix}.stale_vs_ram"), PointKind::Condition),
            lru_way: b.register(format!("{prefix}.replace_way1"), PointKind::MuxSelect),
        };
        let lines = (0..cfg.sets * cfg.ways)
            .map(|_| Line { tag: 0, valid: false, data: vec![0; cfg.line_bytes as usize] })
            .collect();
        ICache { cfg, lines, lru: vec![0; cfg.sets], ids }
    }

    fn set_index(&self, addr: u64) -> usize {
        ((addr / self.cfg.line_bytes) as usize) & (self.cfg.sets - 1)
    }

    fn tag_of(&self, addr: u64) -> u64 {
        addr / self.cfg.line_bytes / self.cfg.sets as u64
    }

    /// Fetches the 32-bit word at `pc` (must be in RAM and 4-aligned — the
    /// core checks PMA/alignment first). Returns `(word, extra_cycles)`.
    ///
    /// On a hit the word comes from the **cached** line bytes; on a miss the
    /// line is refilled from RAM. The `stale_vs_ram` condition observes
    /// whether a hit returned bytes differing from RAM (only possible in the
    /// incoherent configuration after self-modifying stores).
    pub fn fetch(&mut self, pc: u64, ram: &Memory, cov: &mut CovMap) -> (u32, u64) {
        let set = self.set_index(pc);
        let tag = self.tag_of(pc);
        let offset = (pc % self.cfg.line_bytes) as usize;
        let mut hit_way = None;
        for way in 0..self.cfg.ways {
            let line = &self.lines[set * self.cfg.ways + way];
            if cover!(cov, self.ids.hit_way[way], line.valid && line.tag == tag) {
                hit_way = Some(way);
            }
        }
        if let Some(way) = hit_way {
            let line = &self.lines[set * self.cfg.ways + way];
            let d = &line.data[offset..offset + 4];
            let word = u32::from_le_bytes([d[0], d[1], d[2], d[3]]);
            let fresh = ram.read_raw(pc, 4) as u32;
            cover!(cov, self.ids.stale_fetch, word != fresh);
            cov.hit(self.ids.miss_refill, false);
            self.lru[set] = way as u8;
            return (word, 0);
        }
        cov.hit(self.ids.miss_refill, true);
        // Refill: pick the non-LRU way (pseudo-LRU for 2 ways; round-robin
        // beyond).
        let victim =
            if self.cfg.ways == 1 { 0 } else { (self.lru[set] as usize + 1) % self.cfg.ways };
        cover!(cov, self.ids.lru_way, victim == 1);
        let line_base = pc - (pc % self.cfg.line_bytes);
        {
            let line = &mut self.lines[set * self.cfg.ways + victim];
            cov.hit(self.ids.evict_valid, line.valid);
            line.tag = tag;
            line.valid = true;
            for i in 0..self.cfg.line_bytes {
                // Lines may straddle the end of RAM; fetch PMA was already
                // checked for the word itself, pad the tail with zeros.
                line.data[i as usize] = if ram.in_ram(line_base + i, 1) {
                    ram.read_raw(line_base + i, 1) as u8
                } else {
                    0
                };
            }
        }
        self.lru[set] = victim as u8;
        let line = &self.lines[set * self.cfg.ways + victim];
        let d = &line.data[offset..offset + 4];
        (u32::from_le_bytes([d[0], d[1], d[2], d[3]]), self.cfg.miss_penalty)
    }

    /// Observes a store. Coherent caches invalidate matching lines; the
    /// RocketCore configuration does nothing (BUG1).
    pub fn on_store(&mut self, addr: u64, bytes: u64, cov: &mut CovMap) {
        if !self.cfg.coherent {
            return;
        }
        let first = addr / self.cfg.line_bytes;
        let last = (addr + bytes.max(1) - 1) / self.cfg.line_bytes;
        for line_no in first..=last {
            let byte_addr = line_no * self.cfg.line_bytes;
            let set = self.set_index(byte_addr);
            let tag = self.tag_of(byte_addr);
            for way in 0..self.cfg.ways {
                let line = &mut self.lines[set * self.cfg.ways + way];
                if cover!(cov, self.ids.snoop_invalidate, line.valid && line.tag == tag) {
                    line.valid = false;
                }
            }
        }
    }

    /// `fence.i`: invalidates everything. Returns the flush cycle cost.
    pub fn flush(&mut self, cov: &mut CovMap) -> u64 {
        let had = self.lines.iter().any(|l| l.valid);
        cover!(cov, self.ids.flush_had_lines, had);
        for line in &mut self.lines {
            line.valid = false;
        }
        self.cfg.miss_penalty
    }

    /// Whether any line is currently valid.
    pub fn any_valid(&self) -> bool {
        self.lines.iter().any(|l| l.valid)
    }

    /// Power-on reset: invalidates all lines without re-registering the
    /// coverage points (condition ids stay valid for the same space).
    pub fn reset(&mut self) {
        for line in &mut self.lines {
            line.valid = false;
        }
        self.lru.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chatfuzz_softcore::mem::DEFAULT_RAM_BASE;

    fn setup(coherent: bool) -> (ICache, Memory, CovMap) {
        let mut b = SpaceBuilder::new("icache-test");
        let cache = ICache::new(ICacheConfig { coherent, ..Default::default() }, "ic", &mut b);
        let space = b.build();
        let mem = Memory::new(DEFAULT_RAM_BASE, 1 << 16);
        let cov = CovMap::new(&space);
        (cache, mem, cov)
    }

    #[test]
    fn miss_then_hit() {
        let (mut ic, mut mem, mut cov) = setup(false);
        mem.load_image(DEFAULT_RAM_BASE, &0x1111_2222u32.to_le_bytes());
        let (w1, c1) = ic.fetch(DEFAULT_RAM_BASE, &mem, &mut cov);
        assert_eq!(w1, 0x1111_2222);
        assert!(c1 > 0, "first fetch misses");
        let (w2, c2) = ic.fetch(DEFAULT_RAM_BASE, &mem, &mut cov);
        assert_eq!(w2, 0x1111_2222);
        assert_eq!(c2, 0, "second fetch hits");
    }

    #[test]
    fn incoherent_cache_serves_stale_bytes_until_fence_i() {
        let (mut ic, mut mem, mut cov) = setup(false);
        mem.load_image(DEFAULT_RAM_BASE, &0xaaaa_aaaau32.to_le_bytes());
        let (w, _) = ic.fetch(DEFAULT_RAM_BASE, &mem, &mut cov);
        assert_eq!(w, 0xaaaa_aaaa);
        // Self-modifying store, no fence.i.
        mem.write_raw(DEFAULT_RAM_BASE, 4, 0xbbbb_bbbb);
        ic.on_store(DEFAULT_RAM_BASE, 4, &mut cov);
        let (stale, _) = ic.fetch(DEFAULT_RAM_BASE, &mem, &mut cov);
        assert_eq!(stale, 0xaaaa_aaaa, "BUG1: stale fetch");
        // fence.i restores coherence.
        ic.flush(&mut cov);
        let (fresh, _) = ic.fetch(DEFAULT_RAM_BASE, &mem, &mut cov);
        assert_eq!(fresh, 0xbbbb_bbbb);
    }

    #[test]
    fn coherent_cache_snoops_stores() {
        let (mut ic, mut mem, mut cov) = setup(true);
        mem.load_image(DEFAULT_RAM_BASE, &0xaaaa_aaaau32.to_le_bytes());
        ic.fetch(DEFAULT_RAM_BASE, &mem, &mut cov);
        mem.write_raw(DEFAULT_RAM_BASE, 4, 0xbbbb_bbbb);
        ic.on_store(DEFAULT_RAM_BASE, 4, &mut cov);
        let (w, _) = ic.fetch(DEFAULT_RAM_BASE, &mem, &mut cov);
        assert_eq!(w, 0xbbbb_bbbb, "snooped line was invalidated");
    }

    #[test]
    fn conflicting_lines_evict() {
        let (mut ic, mut mem, mut cov) = setup(false);
        // Three addresses mapping to the same set (sets=16, line=32B):
        let stride = 16 * 32;
        for i in 0..3u64 {
            mem.write_raw(DEFAULT_RAM_BASE + i * stride, 4, 0x100 + i);
        }
        for i in 0..3u64 {
            let (w, _) = ic.fetch(DEFAULT_RAM_BASE + i * stride, &mem, &mut cov);
            assert_eq!(w, (0x100 + i) as u32);
        }
        // The set holds 2 ways; a third fill must have evicted a valid line.
        assert!(cov.is_covered(ic.ids.evict_valid, true));
        // Refetching the first address misses again (it was evicted).
        let (_, cycles) = ic.fetch(DEFAULT_RAM_BASE, &mem, &mut cov);
        assert!(cycles > 0);
    }

    #[test]
    fn flush_reports_emptiness() {
        let (mut ic, mem, mut cov) = setup(false);
        assert!(!ic.any_valid());
        ic.flush(&mut cov);
        let _ = ic.fetch(DEFAULT_RAM_BASE, &mem, &mut cov);
        assert!(ic.any_valid());
        ic.flush(&mut cov);
        assert!(!ic.any_valid());
    }
}
