//! The device-under-test interface consumed by the fuzzing loop.

use std::sync::Arc;

use chatfuzz_coverage::{CovMap, Space};
use chatfuzz_softcore::trace::Trace;

/// Result of simulating one test input on a DUT.
#[derive(Debug, Clone)]
pub struct DutRun {
    /// Architectural commit trace (possibly perturbed by injected bugs).
    pub trace: Trace,
    /// Condition coverage observed during the run.
    pub coverage: CovMap,
    /// Simulated cycles consumed.
    pub cycles: u64,
}

impl DutRun {
    /// An empty result buffer over `space`, for the [`Dut::run_into`]
    /// reuse API. Every field is fully overwritten by a run.
    pub fn scratch(space: &Arc<Space>) -> DutRun {
        DutRun { trace: Trace::scratch(), coverage: CovMap::new(space), cycles: 0 }
    }

    /// Prepares this buffer for reuse by a run over `space`: clears the
    /// trace records (keeping capacity), clears or — on a space change —
    /// rebuilds the coverage map, and zeroes the cycle count.
    pub fn reset_for(&mut self, space: &Arc<Space>) {
        self.trace.records.clear();
        if self.coverage.space().fingerprint() == space.fingerprint() {
            self.coverage.clear();
        } else {
            self.coverage = CovMap::new(space);
        }
        self.cycles = 0;
    }
}

/// A simulatable design under test.
///
/// Implemented by the Rocket-like and BOOM-like cores; the fuzzing loop
/// holds DUTs as trait objects so campaigns are generic over the target.
pub trait Dut: Send {
    /// Human-readable design name (`"rocket"`, `"boom"`).
    fn name(&self) -> &str;

    /// The design's elaborated coverage space.
    fn space(&self) -> &Arc<Space>;

    /// Resets the design and runs one program image (loaded at the RAM
    /// base), returning trace + coverage + timing.
    fn run(&mut self, program: &[u8]) -> DutRun;

    /// [`Dut::run`] into a caller-owned scratch buffer — the
    /// allocation-free hot path. Implementations must leave `out` exactly
    /// as [`Dut::run`] would have returned it; the in-tree cores recycle
    /// their internal execution arena as well and are property-tested
    /// bit-identical to [`Dut::run`]. The default just delegates, so
    /// third-party DUTs stay correct without opting in.
    fn run_into(&mut self, program: &[u8], out: &mut DutRun) {
        *out = self.run(program);
    }
}
