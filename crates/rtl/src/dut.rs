//! The device-under-test interface consumed by the fuzzing loop.

use std::sync::Arc;

use chatfuzz_coverage::{CovMap, Space};
use chatfuzz_softcore::trace::Trace;

/// Result of simulating one test input on a DUT.
#[derive(Debug, Clone)]
pub struct DutRun {
    /// Architectural commit trace (possibly perturbed by injected bugs).
    pub trace: Trace,
    /// Condition coverage observed during the run.
    pub coverage: CovMap,
    /// Simulated cycles consumed.
    pub cycles: u64,
}

/// A simulatable design under test.
///
/// Implemented by the Rocket-like and BOOM-like cores; the fuzzing loop
/// holds DUTs as trait objects so campaigns are generic over the target.
pub trait Dut: Send {
    /// Human-readable design name (`"rocket"`, `"boom"`).
    fn name(&self) -> &str;

    /// The design's elaborated coverage space.
    fn space(&self) -> &Arc<Space>;

    /// Resets the design and runs one program image (loaded at the RAM
    /// base), returning trace + coverage + timing.
    fn run(&mut self, program: &[u8]) -> DutRun;
}
