//! Microarchitectural RTL-style simulators of the paper's two targets.
//!
//! The paper fuzzes Chipyard's RocketCore and BOOM through Synopsys VCS,
//! collecting *condition coverage* as fuzzer feedback and architectural
//! traces for differential bug detection. This crate is that substrate,
//! rebuilt in Rust:
//!
//! * [`rocket::Rocket`] — an in-order, 5-stage-style core with an
//!   (incoherent!) I-cache, BTB/BHT/RAS frontend, hazard/bypass modelling,
//!   multi-cycle mul/div, a write-back D-cache, and a tracer. Five defects
//!   from the paper's findings are injected (see [`rocket::BugConfig`]).
//! * [`boom::Boom`] — a superscalar out-of-order model adding rename/ROB/
//!   issue/LSQ conditions, with no injected defects.
//!
//! Both cores execute architecturally through [`arch::ArchExec`], which
//! shares its instruction semantics and CSR file with the golden model —
//! the central guarantee that any trace mismatch is an *injected* bug, not
//! interpreter drift. Both implement [`dut::Dut`], the interface the
//! fuzzing loop consumes.
//!
//! # Examples
//!
//! ```
//! use chatfuzz_rtl::rocket::{Rocket, RocketConfig};
//! use chatfuzz_rtl::dut::Dut;
//! use chatfuzz_isa::asm::Assembler;
//! use chatfuzz_isa::{Instr, SystemOp};
//!
//! let mut core = Rocket::new(RocketConfig::default());
//! let mut asm = Assembler::new();
//! asm.nop();
//! asm.push(Instr::System(SystemOp::Wfi));
//! let run = core.run(&asm.assemble_bytes().unwrap());
//! assert!(run.coverage.covered_bins() > 0);
//! ```

pub mod arch;
pub mod boom;
pub mod core_ids;
pub mod dcache;
pub mod dut;
pub mod icache;
pub mod muldiv;
pub mod predictor;
pub mod rocket;
pub mod tracer;

pub use boom::{Boom, BoomConfig};
pub use dut::{Dut, DutRun};
pub use rocket::{BugConfig, Rocket, RocketConfig};
pub use tracer::TracerBugs;
