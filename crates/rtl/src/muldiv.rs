//! Multi-cycle multiply/divide unit (timing + condition coverage).

use chatfuzz_coverage::{cover, CondId, CovMap, PointKind, SpaceBuilder};
use chatfuzz_isa::MulDivOp;

/// Latency parameters of the mul/div unit.
#[derive(Debug, Clone, Copy)]
pub struct MulDivConfig {
    /// Multiplier latency in cycles.
    pub mul_latency: u64,
    /// Full divider latency in cycles.
    pub div_latency: u64,
    /// Divider early-out latency for small dividends.
    pub div_early_latency: u64,
}

impl Default for MulDivConfig {
    fn default() -> Self {
        MulDivConfig { mul_latency: 4, div_latency: 33, div_early_latency: 8 }
    }
}

#[derive(Debug)]
struct Ids {
    is_div: CondId,
    div_by_zero: CondId,
    signed_overflow: CondId,
    early_out: CondId,
    word_op: CondId,
    busy_stall: CondId,
    high_half: CondId,
}

/// The multi-cycle unit: tracks when it is busy so back-to-back issues
/// observe a structural hazard.
#[derive(Debug)]
pub struct MulDiv {
    cfg: MulDivConfig,
    busy_until: u64,
    ids: Ids,
}

impl MulDiv {
    /// Builds the unit and registers its coverage points.
    pub fn new(cfg: MulDivConfig, prefix: &str, b: &mut SpaceBuilder) -> MulDiv {
        let ids = Ids {
            is_div: b.register(format!("{prefix}.is_div"), PointKind::MuxSelect),
            div_by_zero: b.register(format!("{prefix}.div_by_zero"), PointKind::Condition),
            signed_overflow: b.register(format!("{prefix}.signed_overflow"), PointKind::Condition),
            early_out: b.register(format!("{prefix}.early_out"), PointKind::Condition),
            word_op: b.register(format!("{prefix}.word_op"), PointKind::MuxSelect),
            busy_stall: b.register(format!("{prefix}.busy_stall"), PointKind::Condition),
            high_half: b.register(format!("{prefix}.high_half"), PointKind::MuxSelect),
        };
        MulDiv { cfg, busy_until: 0, ids }
    }

    /// Power-on reset (coverage registration is preserved).
    pub fn reset(&mut self) {
        self.busy_until = 0;
    }

    /// Issues an operation at absolute cycle `now`; returns the stall +
    /// execution cycles charged.
    pub fn issue(
        &mut self,
        op: MulDivOp,
        word: bool,
        a: u64,
        b: u64,
        now: u64,
        cov: &mut CovMap,
    ) -> u64 {
        let stall = if cover!(cov, self.ids.busy_stall, now < self.busy_until) {
            self.busy_until - now
        } else {
            0
        };
        cover!(cov, self.ids.word_op, word);
        cover!(
            cov,
            self.ids.high_half,
            matches!(op, MulDivOp::Mulh | MulDivOp::Mulhsu | MulDivOp::Mulhu)
        );
        let latency = if cover!(cov, self.ids.is_div, op.is_div_rem()) {
            let divisor = if word { u64::from(b as u32) } else { b };
            let dividend = if word { u64::from(a as u32) } else { a };
            cover!(cov, self.ids.div_by_zero, divisor == 0);
            let overflow = if word {
                a as u32 as i32 == i32::MIN && b as u32 as i32 == -1
            } else {
                a as i64 == i64::MIN && b as i64 == -1
            };
            cover!(cov, self.ids.signed_overflow, overflow);
            if cover!(cov, self.ids.early_out, dividend < 0x1_0000 && divisor != 0) {
                self.cfg.div_early_latency
            } else {
                self.cfg.div_latency
            }
        } else {
            cov.hit(self.ids.div_by_zero, false);
            self.cfg.mul_latency
        };
        self.busy_until = now + stall + latency;
        stall + latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (MulDiv, CovMap) {
        let mut b = SpaceBuilder::new("md-test");
        let md = MulDiv::new(MulDivConfig::default(), "md", &mut b);
        (md, CovMap::new(&b.build()))
    }

    #[test]
    fn mul_is_fast_div_is_slow() {
        let (mut md, mut cov) = setup();
        let mul = md.issue(MulDivOp::Mul, false, 3, 4, 0, &mut cov);
        let div = md.issue(MulDivOp::Div, false, u64::MAX / 2, 3, 1000, &mut cov);
        assert!(mul < div);
    }

    #[test]
    fn early_out_for_small_dividend() {
        let (mut md, mut cov) = setup();
        let fast = md.issue(MulDivOp::Divu, false, 100, 3, 0, &mut cov);
        let slow = md.issue(MulDivOp::Divu, false, u64::MAX, 3, 1000, &mut cov);
        assert!(fast < slow);
        assert!(cov.is_covered(md.ids.early_out, true));
        assert!(cov.is_covered(md.ids.early_out, false));
    }

    #[test]
    fn back_to_back_divs_stall() {
        let (mut md, mut cov) = setup();
        let first = md.issue(MulDivOp::Div, false, u64::MAX / 2, 3, 0, &mut cov);
        assert!(!cov.is_covered(md.ids.busy_stall, true));
        let second = md.issue(MulDivOp::Div, false, u64::MAX / 2, 3, 1, &mut cov);
        assert!(cov.is_covered(md.ids.busy_stall, true));
        assert!(second > first - 1, "second op pays the structural stall");
    }

    #[test]
    fn overflow_condition_detected() {
        let (mut md, mut cov) = setup();
        md.issue(MulDivOp::Div, false, i64::MIN as u64, u64::MAX, 0, &mut cov);
        assert!(cov.is_covered(md.ids.signed_overflow, true));
    }

    #[test]
    fn word_div_by_zero_detected_on_low_half() {
        let (mut md, mut cov) = setup();
        // Divisor has non-zero high bits but zero low 32 bits.
        md.issue(MulDivOp::Divu, true, 5, 0xffff_ffff_0000_0000, 0, &mut cov);
        assert!(cov.is_covered(md.ids.div_by_zero, true));
    }
}
