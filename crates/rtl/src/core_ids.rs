//! Condition points common to both core models, plus their instrumentation.
//!
//! These mirror the kinds of conditions VCS extracts from the RocketCore /
//! BOOM RTL: instruction-class decodes, operand specials, hazard detects,
//! ALU result properties, memory-stage checks, CSR access legality, trap
//! cause/delegation logic, and privilege transitions. A block of
//! structurally unreachable conditions (ECC, bus errors, debug, external
//! interrupts, PMP) models the RTL logic a bare-metal fuzzer can never
//! reach — the reason real designs saturate well below 100 %.

use chatfuzz_coverage::{cover, CondId, CovMap, PointKind, SpaceBuilder};
use chatfuzz_isa::{AluOp, CsrSrc, Exception, Instr, PrivLevel, SystemOp};
use chatfuzz_softcore::trace::CommitRecord;

/// Decode instruction-class conditions.
#[derive(Debug)]
pub struct ClassIds {
    lui: CondId,
    auipc: CondId,
    jal: CondId,
    jalr: CondId,
    branch: CondId,
    load: CondId,
    store: CondId,
    op_imm: CondId,
    op: CondId,
    muldiv: CondId,
    amo: CondId,
    lr: CondId,
    sc: CondId,
    csr: CondId,
    fence: CondId,
    fence_i: CondId,
    system: CondId,
    sfence: CondId,
    word_form: CondId,
    illegal: CondId,
}

/// All shared core conditions.
#[derive(Debug)]
pub struct CoreIds {
    /// Decode classes.
    pub class: ClassIds,
    // Operand specials.
    rd_x0: CondId,
    rs1_x0: CondId,
    rs2_x0: CondId,
    rd_eq_rs1: CondId,
    imm_negative: CondId,
    // ALU result properties.
    alu_zero: CondId,
    alu_negative: CondId,
    shift_ge_32: CondId,
    slt_outcome: CondId,
    // Branch resolution.
    br_taken: CondId,
    br_backward: CondId,
    // Memory stage.
    mem_misaligned: CondId,
    mem_fault: CondId,
    tohost_write: CondId,
    amo_ordered: CondId,
    sc_success: CondId,
    lr_armed: CondId,
    // CSR unit.
    csr_trap: CondId,
    csr_writes: CondId,
    csr_machine_level: CondId,
    csr_imm_form: CondId,
    // Trap unit.
    cause: Vec<CondId>,
    trap_delegated: CondId,
    trap_from_u: CondId,
    trap_from_s: CondId,
    tvec_unset_halt: CondId,
    // xret / privilege.
    xret_drops_priv: CondId,
    xret_illegal: CondId,
    wfi_retired: CondId,
    priv_is_u: CondId,
    priv_is_s: CondId,
    // Structurally unreachable logic (never fires on this testbench).
    dead: Vec<CondId>,
}

impl CoreIds {
    /// Registers the shared conditions under `prefix`. `dead_conds` sizes
    /// the unreachable block (larger for Rocket, smaller for BOOM, matching
    /// each design's share of fuzzer-unreachable RTL).
    pub fn register(prefix: &str, dead_conds: usize, b: &mut SpaceBuilder) -> CoreIds {
        let c = |b: &mut SpaceBuilder, n: &str| {
            b.register(format!("{prefix}.{n}"), PointKind::Condition)
        };
        let m = |b: &mut SpaceBuilder, n: &str| {
            b.register(format!("{prefix}.{n}"), PointKind::MuxSelect)
        };
        let class = ClassIds {
            lui: m(b, "dec.is_lui"),
            auipc: m(b, "dec.is_auipc"),
            jal: m(b, "dec.is_jal"),
            jalr: m(b, "dec.is_jalr"),
            branch: m(b, "dec.is_branch"),
            load: m(b, "dec.is_load"),
            store: m(b, "dec.is_store"),
            op_imm: m(b, "dec.is_op_imm"),
            op: m(b, "dec.is_op"),
            muldiv: m(b, "dec.is_muldiv"),
            amo: m(b, "dec.is_amo"),
            lr: m(b, "dec.is_lr"),
            sc: m(b, "dec.is_sc"),
            csr: m(b, "dec.is_csr"),
            fence: m(b, "dec.is_fence"),
            fence_i: m(b, "dec.is_fence_i"),
            system: m(b, "dec.is_system"),
            sfence: m(b, "dec.is_sfence"),
            word_form: m(b, "dec.word_form"),
            illegal: c(b, "dec.illegal"),
        };
        let cause = (0..12)
            .map(|i| b.register(format!("{prefix}.trap.cause{i}"), PointKind::Condition))
            .collect();
        let dead =
            b.register_array(&format!("{prefix}.unreachable"), dead_conds, PointKind::Condition);
        CoreIds {
            class,
            rd_x0: c(b, "dec.rd_is_x0"),
            rs1_x0: c(b, "dec.rs1_is_x0"),
            rs2_x0: c(b, "dec.rs2_is_x0"),
            rd_eq_rs1: c(b, "dec.rd_eq_rs1"),
            imm_negative: c(b, "dec.imm_negative"),
            alu_zero: c(b, "ex.alu_result_zero"),
            alu_negative: c(b, "ex.alu_result_negative"),
            shift_ge_32: c(b, "ex.shift_amount_ge_32"),
            slt_outcome: c(b, "ex.slt_outcome"),
            br_taken: c(b, "ex.branch_taken"),
            br_backward: c(b, "ex.branch_backward"),
            mem_misaligned: c(b, "mem.misaligned"),
            mem_fault: c(b, "mem.access_fault"),
            tohost_write: c(b, "mem.tohost_write"),
            amo_ordered: c(b, "mem.amo_aq_or_rl"),
            sc_success: c(b, "mem.sc_success"),
            lr_armed: c(b, "mem.lr_armed"),
            csr_trap: c(b, "csr.access_trap"),
            csr_writes: c(b, "csr.write_performed"),
            csr_machine_level: c(b, "csr.machine_level_addr"),
            csr_imm_form: m(b, "csr.imm_form"),
            cause,
            trap_delegated: c(b, "trap.delegated_to_s"),
            trap_from_u: c(b, "trap.from_user"),
            trap_from_s: c(b, "trap.from_supervisor"),
            tvec_unset_halt: c(b, "trap.tvec_unset_halt"),
            xret_drops_priv: c(b, "priv.xret_drops_priv"),
            xret_illegal: c(b, "priv.xret_illegal"),
            wfi_retired: c(b, "priv.wfi_retired"),
            priv_is_u: c(b, "priv.is_user"),
            priv_is_s: c(b, "priv.is_supervisor"),
            dead,
        }
    }

    /// Covers the decode-stage conditions for a fetched word.
    pub fn cover_decode(&self, decoded: Result<&Instr, ()>, cov: &mut CovMap) {
        let i = match decoded {
            Ok(i) => {
                cov.hit(self.class.illegal, false);
                i
            }
            Err(()) => {
                cov.hit(self.class.illegal, true);
                return;
            }
        };
        cover!(cov, self.class.lui, matches!(i, Instr::Lui { .. }));
        cover!(cov, self.class.auipc, matches!(i, Instr::Auipc { .. }));
        cover!(cov, self.class.jal, matches!(i, Instr::Jal { .. }));
        cover!(cov, self.class.jalr, matches!(i, Instr::Jalr { .. }));
        cover!(cov, self.class.branch, matches!(i, Instr::Branch { .. }));
        cover!(cov, self.class.load, matches!(i, Instr::Load { .. }));
        cover!(cov, self.class.store, matches!(i, Instr::Store { .. }));
        cover!(cov, self.class.op_imm, matches!(i, Instr::OpImm { .. }));
        cover!(cov, self.class.op, matches!(i, Instr::Op { .. }));
        cover!(cov, self.class.muldiv, matches!(i, Instr::MulDiv { .. }));
        cover!(cov, self.class.amo, matches!(i, Instr::Amo { .. }));
        cover!(cov, self.class.lr, matches!(i, Instr::LoadReserved { .. }));
        cover!(cov, self.class.sc, matches!(i, Instr::StoreConditional { .. }));
        cover!(cov, self.class.csr, matches!(i, Instr::Csr { .. }));
        cover!(cov, self.class.fence, matches!(i, Instr::Fence { .. }));
        cover!(cov, self.class.fence_i, matches!(i, Instr::FenceI));
        cover!(cov, self.class.system, matches!(i, Instr::System(_)));
        cover!(cov, self.class.sfence, matches!(i, Instr::SfenceVma { .. }));
        let word_form = matches!(
            i,
            Instr::OpImm { word: true, .. }
                | Instr::Op { word: true, .. }
                | Instr::MulDiv { word: true, .. }
        );
        cover!(cov, self.class.word_form, word_form);

        let rd = i.rd();
        cover!(cov, self.rd_x0, rd.is_none());
        let sources = i.sources();
        cover!(cov, self.rs1_x0, sources.first().is_some_and(|r| r.is_zero()));
        cover!(cov, self.rs2_x0, sources.get(1).is_some_and(|r| r.is_zero()));
        cover!(cov, self.rd_eq_rs1, rd.is_some() && sources.first() == rd.as_ref());
        let imm_neg = match *i {
            Instr::OpImm { imm, .. } => imm < 0,
            Instr::Load { offset, .. }
            | Instr::Store { offset, .. }
            | Instr::Jalr { offset, .. } => offset < 0,
            Instr::Lui { imm, .. } | Instr::Auipc { imm, .. } => imm < 0,
            _ => false,
        };
        cover!(cov, self.imm_negative, imm_neg);
        if let Instr::Csr { src, csr, .. } = *i {
            cover!(cov, self.csr_imm_form, matches!(src, CsrSrc::Imm(_)));
            cover!(cov, self.csr_machine_level, (csr >> 8) & 0b11 == 0b11);
        }
    }

    /// Covers execute/memory-stage conditions for a committed record.
    #[allow(clippy::too_many_arguments)]
    pub fn cover_retire(
        &self,
        instr: &Instr,
        record: &CommitRecord,
        next_pc: u64,
        reservation_armed: bool,
        cov: &mut CovMap,
    ) {
        match *instr {
            Instr::Op { op, .. } | Instr::OpImm { op, .. } => {
                if let Some((_, v)) = record.rd_write {
                    cover!(cov, self.alu_zero, v == 0);
                    cover!(cov, self.alu_negative, (v as i64) < 0);
                }
                if op.is_shift() {
                    let amount = match *instr {
                        Instr::OpImm { imm, .. } => imm as u64,
                        Instr::Op { .. } => 0, // covered via register value below
                        _ => 0,
                    };
                    cover!(cov, self.shift_ge_32, amount >= 32);
                }
                if matches!(op, AluOp::Slt | AluOp::Sltu) {
                    if let Some((_, v)) = record.rd_write {
                        cover!(cov, self.slt_outcome, v == 1);
                    }
                }
            }
            Instr::Branch { offset, .. } => {
                let taken = next_pc != record.pc.wrapping_add(4);
                cover!(cov, self.br_taken, taken);
                cover!(cov, self.br_backward, offset < 0);
            }
            Instr::LoadReserved { .. } => {
                cover!(cov, self.lr_armed, reservation_armed);
            }
            Instr::StoreConditional { .. } => {
                if let Some((_, v)) = record.rd_write {
                    cover!(cov, self.sc_success, v == 0);
                }
            }
            Instr::Amo { aq, rl, .. } => {
                cover!(cov, self.amo_ordered, aq || rl);
            }
            Instr::Csr { .. } => {
                cov.hit(self.csr_trap, false);
                cover!(cov, self.csr_writes, record.rd_write.is_some());
            }
            Instr::System(SystemOp::Wfi) => {
                cov.hit(self.wfi_retired, true);
            }
            Instr::System(SystemOp::Mret | SystemOp::Sret) => {
                cov.hit(self.xret_illegal, false);
            }
            _ => {}
        }
        if let Some(mem) = record.mem {
            cover!(cov, self.mem_misaligned, false);
            cover!(cov, self.mem_fault, false);
            cover!(cov, self.tohost_write, mem.is_store && !mem_in_ram_hint(record));
        }
        cover!(cov, self.priv_is_u, record.priv_level == PrivLevel::User);
        cover!(cov, self.priv_is_s, record.priv_level == PrivLevel::Supervisor);
    }

    /// Covers the trap-unit conditions for a raised exception.
    pub fn cover_trap(
        &self,
        e: &Exception,
        from: PrivLevel,
        delegated: bool,
        unset_halt: bool,
        cov: &mut CovMap,
    ) {
        let cause = e.cause() as usize;
        for (i, id) in self.cause.iter().enumerate() {
            cover!(cov, *id, i == cause);
        }
        cover!(cov, self.trap_delegated, delegated);
        cover!(cov, self.trap_from_u, from == PrivLevel::User);
        cover!(cov, self.trap_from_s, from == PrivLevel::Supervisor);
        cover!(cov, self.tvec_unset_halt, unset_halt);
        match e {
            Exception::LoadAddrMisaligned { .. } | Exception::StoreAddrMisaligned { .. } => {
                cov.hit(self.mem_misaligned, true);
            }
            Exception::LoadAccessFault { .. } | Exception::StoreAccessFault { .. } => {
                cov.hit(self.mem_fault, true);
            }
            _ => {}
        }
    }

    /// Covers an illegal xret / CSR-trap style event.
    pub fn cover_illegal_system(&self, is_csr: bool, cov: &mut CovMap) {
        if is_csr {
            cov.hit(self.csr_trap, true);
        } else {
            cov.hit(self.xret_illegal, true);
        }
    }

    /// Covers a successful privilege-dropping xret.
    pub fn cover_xret(&self, from: PrivLevel, to: PrivLevel, cov: &mut CovMap) {
        cover!(cov, self.xret_drops_priv, to < from);
    }

    /// Touches the "false" bins of the structurally unreachable block (the
    /// logic is simulated every cycle but its conditions never fire).
    pub fn tick_dead(&self, cov: &mut CovMap) {
        for id in &self.dead {
            cov.hit(*id, false);
        }
    }
}

/// Conditions that only *sustained, well-formed* execution can reach:
/// long trap-free retire streaks, hot loops, working-set growth, and
/// lower-privilege activity. These model the deep sequential RTL state
/// (replay queues, prefetch streams, performance counters, PMP/priv
/// datapaths) that random and mutational inputs rarely energise — the
/// structural reason the paper's entangled inputs win.
#[derive(Debug)]
pub struct DeepIds {
    streak_16: CondId,
    streak_64: CondId,
    hot_loop_8: CondId,
    lines_16: CondId,
    user_mem_access: CondId,
    user_amo: CondId,
    super_csr_write: CondId,
    sret_from_s: CondId,
    deleg_taken_twice: CondId,
    muldiv_pair: CondId,
}

impl DeepIds {
    /// Registers the deep-state conditions.
    pub fn register(prefix: &str, b: &mut SpaceBuilder) -> DeepIds {
        let c = |b: &mut SpaceBuilder, n: &str| {
            b.register(format!("{prefix}.deep.{n}"), PointKind::Condition)
        };
        DeepIds {
            streak_16: c(b, "retire_streak_16"),
            streak_64: c(b, "retire_streak_64"),
            hot_loop_8: c(b, "hot_loop_8_iters"),
            lines_16: c(b, "dlines_working_set_16"),
            user_mem_access: c(b, "user_mode_mem_access"),
            user_amo: c(b, "user_mode_amo"),
            super_csr_write: c(b, "supervisor_csr_write"),
            sret_from_s: c(b, "sret_from_supervisor"),
            deleg_taken_twice: c(b, "delegated_twice"),
            muldiv_pair: c(b, "muldiv_back_to_back"),
        }
    }
}

/// Per-run state backing the [`DeepIds`] conditions.
#[derive(Debug, Default)]
pub struct DeepState {
    streak: u32,
    branch_hits: std::collections::BTreeMap<u64, u32>,
    lines: std::collections::BTreeSet<u64>,
    delegations: u32,
    last_was_muldiv: bool,
}

impl DeepState {
    /// Fresh per-run state.
    pub fn new() -> DeepState {
        DeepState::default()
    }

    /// Observes one committed (non-trap) retire.
    #[allow(clippy::too_many_arguments)]
    pub fn on_retire(
        &mut self,
        ids: &DeepIds,
        instr: &Instr,
        priv_level: PrivLevel,
        taken_backward_branch_pc: Option<u64>,
        mem_line: Option<u64>,
        cov: &mut CovMap,
    ) {
        self.streak += 1;
        cover!(cov, ids.streak_16, self.streak >= 16);
        cover!(cov, ids.streak_64, self.streak >= 64);
        if let Some(pc) = taken_backward_branch_pc {
            let hits = self.branch_hits.entry(pc).or_insert(0);
            *hits += 1;
            cover!(cov, ids.hot_loop_8, *hits >= 8);
        } else {
            cov.hit(ids.hot_loop_8, false);
        }
        if let Some(line) = mem_line {
            if self.lines.len() < 64 {
                self.lines.insert(line);
            }
        }
        cover!(cov, ids.lines_16, self.lines.len() >= 16);
        let is_user = priv_level == PrivLevel::User;
        cover!(cov, ids.user_mem_access, is_user && instr.is_mem());
        cover!(cov, ids.user_amo, is_user && matches!(instr, Instr::Amo { .. }));
        cover!(
            cov,
            ids.super_csr_write,
            priv_level == PrivLevel::Supervisor && matches!(instr, Instr::Csr { .. })
        );
        cover!(
            cov,
            ids.sret_from_s,
            priv_level == PrivLevel::Supervisor && matches!(instr, Instr::System(SystemOp::Sret))
        );
        let is_muldiv = matches!(instr, Instr::MulDiv { .. });
        cover!(cov, ids.muldiv_pair, is_muldiv && self.last_was_muldiv);
        self.last_was_muldiv = is_muldiv;
        cov.hit(ids.deleg_taken_twice, self.delegations >= 2);
    }

    /// Observes a taken trap (resets the streak; counts delegations).
    pub fn on_trap(&mut self, ids: &DeepIds, delegated: bool, cov: &mut CovMap) {
        self.streak = 0;
        self.last_was_muldiv = false;
        if delegated {
            self.delegations += 1;
        }
        cover!(cov, ids.deleg_taken_twice, self.delegations >= 2);
    }
}

/// Whether a memory effect targeted RAM (vs the tohost device); trace
/// records do not carry the region, so use the address range convention.
fn mem_in_ram_hint(record: &CommitRecord) -> bool {
    record.mem.map(|m| m.addr >= 0x8000_0000).unwrap_or(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chatfuzz_coverage::CovMap;
    use chatfuzz_isa::Reg;

    fn setup() -> (CoreIds, CovMap) {
        let mut b = SpaceBuilder::new("coreids-test");
        let ids = CoreIds::register("c", 4, &mut b);
        (ids, CovMap::new(&b.build()))
    }

    #[test]
    fn decode_covers_class_both_ways() {
        let (ids, mut cov) = setup();
        let nop = Instr::NOP;
        ids.cover_decode(Ok(&nop), &mut cov);
        assert!(cov.is_covered(ids.class.op_imm, true));
        assert!(cov.is_covered(ids.class.lui, false));
        assert!(!cov.is_covered(ids.class.lui, true));
        ids.cover_decode(Err(()), &mut cov);
        assert!(cov.is_covered(ids.class.illegal, true));
    }

    #[test]
    fn trap_covers_exactly_one_cause_true() {
        let (ids, mut cov) = setup();
        ids.cover_trap(
            &Exception::IllegalInstr { word: 0 },
            PrivLevel::Machine,
            false,
            false,
            &mut cov,
        );
        assert!(cov.is_covered(ids.cause[2], true));
        for (i, id) in ids.cause.iter().enumerate() {
            if i != 2 {
                assert!(!cov.is_covered(*id, true), "cause {i} wrongly covered");
            }
            assert!(cov.is_covered(*id, false) || i == 2);
        }
    }

    #[test]
    fn dead_block_only_covers_false() {
        let (ids, mut cov) = setup();
        ids.tick_dead(&mut cov);
        for id in &ids.dead {
            assert!(cov.is_covered(*id, false));
            assert!(!cov.is_covered(*id, true));
        }
    }

    #[test]
    fn retire_covers_branch_direction() {
        let (ids, mut cov) = setup();
        let br = Instr::Branch {
            cond: chatfuzz_isa::BranchCond::Eq,
            rs1: Reg::X0,
            rs2: Reg::X0,
            offset: -8,
        };
        let rec = CommitRecord {
            pc: 0x8000_0010,
            word: 0,
            priv_level: PrivLevel::Machine,
            rd_write: None,
            mem: None,
            trap: None,
        };
        ids.cover_retire(&br, &rec, 0x8000_0008, false, &mut cov);
        assert!(cov.is_covered(ids.br_taken, true));
        assert!(cov.is_covered(ids.br_backward, true));
    }
}
