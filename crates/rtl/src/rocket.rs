//! The RocketCore-like in-order core model.
//!
//! A 5-stage-pipeline abstraction: I-cache + branch-predictor frontend,
//! decode with hazard detection (load-use stall, EX/MEM bypass), a
//! multi-cycle mul/div unit, a write-back D-cache, the shared CSR/trap
//! unit, and a tracer. Architectural execution is delegated to
//! [`ArchExec`], so with all bug injections disabled this core is
//! trace-equivalent to the golden model (verified by property test).
//!
//! Injected RocketCore defects (all default **on**, as evaluated in the
//! paper):
//!
//! * BUG1 — incoherent I-cache (stale fetch without `fence.i`, CWE-1202);
//! * BUG2 — tracer omits mul/div write-backs (CWE-440);
//! * F1 — PMA checked before alignment in the memory stage;
//! * F2 — tracer logs AMO load values for `rd = x0`;
//! * F3 — tracer logs `x0` writes for dependent ALU sequences.

use std::sync::Arc;

use chatfuzz_coverage::{cover, CondId, CovMap, PointKind, Space, SpaceBuilder};
use chatfuzz_isa::semantics::extend_loaded;
use chatfuzz_isa::{decode, DecodeCache, Instr, Reg, SystemOp};
use chatfuzz_softcore::mem::{Memory, DEFAULT_RAM_BASE, DEFAULT_RAM_SIZE};
use chatfuzz_softcore::trace::{CommitRecord, ExitReason, Trace, TrapRecord};

use crate::arch::{ArchExec, ArchOutcome};
use crate::core_ids::{CoreIds, DeepIds, DeepState};
use crate::dcache::{DCache, DCacheConfig};
use crate::dut::{Dut, DutRun};
use crate::icache::{ICache, ICacheConfig};
use crate::muldiv::{MulDiv, MulDivConfig};
use crate::predictor::{Predictor, PredictorConfig};
use crate::tracer::{Tracer, TracerBugs};

/// Which RocketCore defects are injected.
#[derive(Debug, Clone, Copy)]
pub struct BugConfig {
    /// BUG1: the I-cache does not snoop stores.
    pub bug1_incoherent_icache: bool,
    /// F1: memory stage checks PMA before alignment.
    pub f1_pma_before_align: bool,
    /// Tracer defects (BUG2, F2, F3).
    pub tracer: TracerBugs,
}

impl BugConfig {
    /// RocketCore as evaluated in the paper: everything injected.
    pub fn all_on() -> BugConfig {
        BugConfig {
            bug1_incoherent_icache: true,
            f1_pma_before_align: true,
            tracer: TracerBugs::all_on(),
        }
    }

    /// A hypothetical fixed RocketCore: no injected defects.
    pub fn all_off() -> BugConfig {
        BugConfig {
            bug1_incoherent_icache: false,
            f1_pma_before_align: false,
            tracer: TracerBugs::all_off(),
        }
    }
}

/// Full Rocket model configuration.
#[derive(Debug, Clone, Copy)]
pub struct RocketConfig {
    /// I-cache geometry (coherence is overridden by `bugs`).
    pub icache: ICacheConfig,
    /// D-cache geometry.
    pub dcache: DCacheConfig,
    /// Branch-predictor sizing.
    pub predictor: PredictorConfig,
    /// Mul/div latencies.
    pub muldiv: MulDivConfig,
    /// Injected defects.
    pub bugs: BugConfig,
    /// RAM base (= reset PC).
    pub ram_base: u64,
    /// RAM size in bytes.
    pub ram_size: u64,
    /// Committed-slot budget (must match the golden model's for
    /// differential runs).
    pub max_steps: usize,
    /// Trap budget before `TrapStorm`.
    pub max_traps: usize,
    /// Pipeline-flush cycles charged per taken trap.
    pub trap_penalty: u64,
    /// Number of structurally unreachable conditions to elaborate.
    pub dead_conds: usize,
}

impl Default for RocketConfig {
    fn default() -> Self {
        RocketConfig {
            icache: ICacheConfig::default(),
            dcache: DCacheConfig::default(),
            predictor: PredictorConfig::default(),
            muldiv: MulDivConfig::default(),
            bugs: BugConfig::all_on(),
            ram_base: DEFAULT_RAM_BASE,
            ram_size: DEFAULT_RAM_SIZE,
            max_steps: 4096,
            max_traps: 64,
            trap_penalty: 5,
            dead_conds: 24,
        }
    }
}

#[derive(Debug)]
struct PipelineIds {
    load_use_stall: CondId,
    bypass_ex_ex: CondId,
    bypass_mem_ex: CondId,
    csr_serialize: CondId,
    flush_on_xret: CondId,
}

/// The RocketCore-like DUT.
#[derive(Debug)]
pub struct Rocket {
    cfg: RocketConfig,
    space: Arc<Space>,
    ids: CoreIds,
    deep: DeepIds,
    pipe: PipelineIds,
    icache: ICache,
    dcache: DCache,
    predictor: Predictor,
    muldiv: MulDiv,
    tracer: Tracer,
    /// Word-validated decode cache for the hot path; hits are
    /// bit-identical to re-decoding the fetched word, including BUG1's
    /// stale-fetch words (the cache keys on whatever the I-cache served).
    /// `run` skips it so the one-shot path stays the honest pre-PR-3
    /// benchmark baseline.
    decode_cache: DecodeCache,
    /// Reusable architectural arena for [`Dut::run_into`] (registers,
    /// CSRs, RAM); `None` until the first hot-path run.
    arena: Option<ArchExec>,
}

impl Rocket {
    /// Elaborates the design: builds every unit and the coverage space.
    pub fn new(cfg: RocketConfig) -> Rocket {
        let mut b = SpaceBuilder::new("rocket");
        let icache_cfg = ICacheConfig { coherent: !cfg.bugs.bug1_incoherent_icache, ..cfg.icache };
        let icache = ICache::new(icache_cfg, "rocket.icache", &mut b);
        let dcache = DCache::new(cfg.dcache, "rocket.dcache", &mut b);
        let predictor = Predictor::new(cfg.predictor, "rocket.bpu", &mut b);
        let muldiv = MulDiv::new(cfg.muldiv, "rocket.muldiv", &mut b);
        let tracer = Tracer::new(cfg.bugs.tracer, "rocket.tracer", &mut b);
        let ids = CoreIds::register("rocket", cfg.dead_conds, &mut b);
        let deep = DeepIds::register("rocket", &mut b);
        let pipe = PipelineIds {
            load_use_stall: b.register("rocket.pipe.load_use_stall", PointKind::Condition),
            bypass_ex_ex: b.register("rocket.pipe.bypass_ex_ex", PointKind::Condition),
            bypass_mem_ex: b.register("rocket.pipe.bypass_mem_ex", PointKind::Condition),
            csr_serialize: b.register("rocket.pipe.csr_serialize", PointKind::Condition),
            flush_on_xret: b.register("rocket.pipe.flush_on_xret", PointKind::Condition),
        };
        let space = b.build();
        Rocket {
            cfg,
            space,
            ids,
            deep,
            pipe,
            icache,
            dcache,
            predictor,
            muldiv,
            tracer,
            decode_cache: DecodeCache::default(),
            arena: None,
        }
    }

    /// The configuration this core was elaborated with.
    pub fn config(&self) -> &RocketConfig {
        &self.cfg
    }

    fn reset_units(&mut self) {
        self.icache.reset();
        self.dcache.reset();
        self.predictor.reset();
        self.muldiv.reset();
        self.tracer.reset();
    }
}

impl Dut for Rocket {
    fn name(&self) -> &str {
        "rocket"
    }

    fn space(&self) -> &Arc<Space> {
        &self.space
    }

    fn run(&mut self, program: &[u8]) -> DutRun {
        // The one-shot path: a fresh arena and result per call, and no
        // decode cache. Kept exactly as allocating (and as decode-heavy)
        // as before PR 3, both for casual use and as the measurable
        // baseline the `throughput` bench compares `run_into` against.
        let mut out = DutRun::scratch(&self.space);
        let mut mem = Memory::new(self.cfg.ram_base, self.cfg.ram_size);
        let image_len = program.len().min(self.cfg.ram_size as usize);
        mem.load_image(self.cfg.ram_base, &program[..image_len]);
        let mut arch = ArchExec::new(mem, self.cfg.bugs.f1_pma_before_align);
        self.run_inner(&mut arch, &mut out, false);
        out
    }

    fn run_into(&mut self, program: &[u8], out: &mut DutRun) {
        out.reset_for(&self.space);
        let mut arch = self.arena.take().unwrap_or_else(|| {
            ArchExec::new(
                Memory::new(self.cfg.ram_base, self.cfg.ram_size),
                self.cfg.bugs.f1_pma_before_align,
            )
        });
        let image_len = program.len().min(self.cfg.ram_size as usize);
        arch.mem.reset_with_image(self.cfg.ram_base, &program[..image_len]);
        arch.reset();
        self.run_inner(&mut arch, out, true);
        self.arena = Some(arch);
    }
}

impl Rocket {
    /// The shared execution loop. `arch` must be reset with the program
    /// image loaded; `out` must be empty (scratch or `reset_for`). The
    /// decode cache is observationally transparent, so the flag only
    /// selects which *performance* profile runs.
    fn run_inner(&mut self, arch: &mut ArchExec, out: &mut DutRun, use_decode_cache: bool) {
        self.reset_units();
        let DutRun { trace, coverage: cov, cycles: out_cycles } = out;
        let Trace { records, exit: out_exit } = trace;

        let mut pc = self.cfg.ram_base;
        let mut cycles: u64 = 0;
        let mut traps = 0usize;
        let mut prev_alu_rd: Option<Reg> = None;
        let mut prev_prev_rd: Option<Reg> = None;
        let mut prev_load_rd: Option<Reg> = None;
        let mut deep = DeepState::new();

        for _ in 0..self.cfg.max_steps {
            self.ids.tick_dead(cov);
            arch.csrs.tick_cycle(1);
            cycles += 1;

            // ---- Fetch ----
            let fetch_exc = if !pc.is_multiple_of(4) {
                Some(chatfuzz_isa::Exception::InstrAddrMisaligned { addr: pc })
            } else if !arch.mem.in_ram(pc, 4) {
                Some(chatfuzz_isa::Exception::InstrAccessFault { addr: pc })
            } else {
                None
            };
            if let Some(e) = fetch_exc {
                match take_trap(
                    arch,
                    &self.ids,
                    &mut self.tracer,
                    e,
                    pc,
                    0,
                    None,
                    cov,
                    self.cfg.trap_penalty,
                ) {
                    TrapTaken::Handled { record, handler_pc, cost } => {
                        cycles += cost;
                        deep.on_trap(&self.deep, delegated_hint(arch, &record), cov);
                        records.push(record);
                        traps += 1;
                        if traps > self.cfg.max_traps {
                            *out_exit = ExitReason::TrapStorm;
                            *out_cycles = cycles;
                            return;
                        }
                        pc = handler_pc;
                        continue;
                    }
                    TrapTaken::Unhandled(reason) => {
                        *out_exit = reason;
                        *out_cycles = cycles;
                        return;
                    }
                }
            }

            let predicted = self.predictor.predict(pc, cov);
            let (word, ic_cycles) = self.icache.fetch(pc, &arch.mem, cov);
            cycles += ic_cycles;

            // ---- Decode ----
            let decoded =
                if use_decode_cache { self.decode_cache.decode(pc, word) } else { decode(word) };
            let instr = match decoded {
                Ok(i) => {
                    self.ids.cover_decode(Ok(&i), cov);
                    i
                }
                Err(_) => {
                    self.ids.cover_decode(Err(()), cov);
                    let e = chatfuzz_isa::Exception::IllegalInstr { word };
                    match take_trap(
                        arch,
                        &self.ids,
                        &mut self.tracer,
                        e,
                        pc,
                        word,
                        None,
                        cov,
                        self.cfg.trap_penalty,
                    ) {
                        TrapTaken::Handled { record, handler_pc, cost } => {
                            cycles += cost;
                            records.push(record);
                            traps += 1;
                            if traps > self.cfg.max_traps {
                                *out_exit = ExitReason::TrapStorm;
                                *out_cycles = cycles;
                                return;
                            }
                            pc = handler_pc;
                            continue;
                        }
                        TrapTaken::Unhandled(reason) => {
                            *out_exit = reason;
                            *out_cycles = cycles;
                            return;
                        }
                    }
                }
            };

            // ---- Hazard detection ----
            let sources = instr.sources();
            let load_use = prev_load_rd.is_some_and(|r| sources.contains(&r));
            if cover!(cov, self.pipe.load_use_stall, load_use) {
                cycles += 1;
            }
            cover!(cov, self.pipe.bypass_ex_ex, prev_alu_rd.is_some_and(|r| sources.contains(&r)));
            cover!(
                cov,
                self.pipe.bypass_mem_ex,
                prev_prev_rd.is_some_and(|r| sources.contains(&r))
            );
            if cover!(cov, self.pipe.csr_serialize, matches!(instr, Instr::Csr { .. })) {
                cycles += 2;
            }

            // ---- Pre-execute captures (timing operands, tracer side data) ----
            let muldiv_ops = match instr {
                Instr::MulDiv { op, rs1, rs2, word: w, .. } => {
                    Some((op, w, arch.reg(rs1), arch.reg(rs2)))
                }
                _ => None,
            };
            let amo_x0_old = match instr {
                Instr::Amo { rd, rs1, width, .. } if rd.is_zero() => {
                    let addr = arch.reg(rs1);
                    (addr.is_multiple_of(width.bytes()) && arch.mem.in_ram(addr, width.bytes()))
                        .then(|| {
                            let raw = arch.mem.read_raw(addr, width.bytes());
                            (Reg::X0, extend_loaded(raw, width, true))
                        })
                }
                _ => None,
            };
            let from_priv = arch.csrs.priv_level;

            // ---- Execute ----
            let outcome = arch.execute(instr, pc, word);
            let (next_pc, record, halt) = match outcome {
                ArchOutcome::Next(record) => (pc.wrapping_add(4), record, None),
                ArchOutcome::Jump { target, record } => (target, record, None),
                ArchOutcome::Halt(reason, record) => (pc.wrapping_add(4), record, Some(reason)),
                ArchOutcome::Trap(e) => {
                    // CSR/xret illegality conditions.
                    if matches!(e, chatfuzz_isa::Exception::IllegalInstr { .. }) {
                        match instr {
                            Instr::Csr { .. } => self.ids.cover_illegal_system(true, cov),
                            Instr::System(SystemOp::Mret | SystemOp::Sret) => {
                                self.ids.cover_illegal_system(false, cov)
                            }
                            _ => {}
                        }
                    }
                    match take_trap(
                        arch,
                        &self.ids,
                        &mut self.tracer,
                        e,
                        pc,
                        word,
                        Some(&instr),
                        cov,
                        self.cfg.trap_penalty,
                    ) {
                        TrapTaken::Handled { record, handler_pc, cost } => {
                            cycles += cost;
                            records.push(record);
                            traps += 1;
                            if traps > self.cfg.max_traps {
                                *out_exit = ExitReason::TrapStorm;
                                *out_cycles = cycles;
                                return;
                            }
                            pc = handler_pc;
                            prev_alu_rd = None;
                            prev_load_rd = None;
                            continue;
                        }
                        TrapTaken::Unhandled(reason) => {
                            *out_exit = reason;
                            *out_cycles = cycles;
                            return;
                        }
                    }
                }
            };
            arch.csrs.tick_instret();

            // ---- Unit timing + frontend resolution ----
            if let Some((op, w, a, b_)) = muldiv_ops {
                cycles += self.muldiv.issue(op, w, a, b_, cycles, cov);
            }
            if let Some(mem_eff) = record.mem {
                if arch.mem.in_ram(mem_eff.addr, u64::from(mem_eff.bytes)) {
                    let is_amo = matches!(instr, Instr::Amo { .. });
                    let access = self.dcache.access(mem_eff.addr, mem_eff.is_store, is_amo, cov);
                    cycles += access.cycles;
                }
                if mem_eff.is_store {
                    self.icache.on_store(mem_eff.addr, u64::from(mem_eff.bytes), cov);
                }
            }
            if matches!(instr, Instr::FenceI) {
                cycles += self.icache.flush(cov);
            }
            match instr {
                Instr::Branch { .. } => {
                    let taken = next_pc != pc.wrapping_add(4);
                    let res = self.predictor.resolve_branch(pc, taken, next_pc, predicted, cov);
                    cycles += res.cycles;
                }
                Instr::Jal { rd, .. } => {
                    let res = self.predictor.resolve_jump(
                        pc,
                        next_pc,
                        rd == Reg::RA,
                        false,
                        predicted,
                        cov,
                    );
                    cycles += res.cycles;
                }
                Instr::Jalr { rd, rs1, .. } => {
                    let is_ret = rs1 == Reg::RA && rd == Reg::X0;
                    let res = self.predictor.resolve_jump(
                        pc,
                        next_pc,
                        rd == Reg::RA,
                        is_ret,
                        predicted,
                        cov,
                    );
                    cycles += res.cycles;
                }
                Instr::System(SystemOp::Mret | SystemOp::Sret) => {
                    cover!(cov, self.pipe.flush_on_xret, true);
                    self.ids.cover_xret(from_priv, arch.csrs.priv_level, cov);
                    cycles += self.cfg.trap_penalty;
                }
                _ => {
                    cov.hit(self.pipe.flush_on_xret, false);
                }
            }

            // ---- Retire ----
            self.ids.cover_retire(&instr, &record, next_pc, arch.reservation.is_some(), cov);
            let taken_backward = match instr {
                Instr::Branch { offset, .. } if offset < 0 && next_pc != pc.wrapping_add(4) => {
                    Some(pc)
                }
                _ => None,
            };
            let mem_line = record.mem.map(|m| m.addr / 64);
            deep.on_retire(&self.deep, &instr, record.priv_level, taken_backward, mem_line, cov);
            let raw_wb = record.rd_write.or(amo_x0_old).or_else(|| {
                // Recompute ALU results discarded into x0 for the tracer's
                // Finding-3 port (registers are unchanged when rd = x0).
                match instr {
                    Instr::Op { op, rd, rs1, rs2, word: w } if rd.is_zero() => Some((
                        Reg::X0,
                        chatfuzz_isa::semantics::alu(op, arch.reg(rs1), arch.reg(rs2), w),
                    )),
                    Instr::OpImm { op, rd, rs1, imm, word: w } if rd.is_zero() => Some((
                        Reg::X0,
                        chatfuzz_isa::semantics::alu(op, arch.reg(rs1), imm as u64, w),
                    )),
                    _ => None,
                }
            });
            let final_record = self.tracer.emit(record, Some(&instr), raw_wb, cov);
            records.push(final_record);

            prev_prev_rd = prev_alu_rd;
            prev_alu_rd = instr.rd();
            prev_load_rd = match instr {
                Instr::Load { .. } | Instr::LoadReserved { .. } | Instr::Amo { .. } => instr.rd(),
                _ => None,
            };

            if let Some(reason) = halt {
                *out_exit = reason;
                *out_cycles = cycles;
                return;
            }
            pc = next_pc;
        }
        *out_exit = ExitReason::BudgetExhausted;
        *out_cycles = cycles;
    }
}

/// Whether the just-taken trap record landed in S-mode (delegated).
fn delegated_hint(_arch: &ArchExec, record: &CommitRecord) -> bool {
    record.trap.map(|t| t.to == chatfuzz_isa::PrivLevel::Supervisor).unwrap_or(false)
}

enum TrapTaken {
    Handled { record: CommitRecord, handler_pc: u64, cost: u64 },
    Unhandled(ExitReason),
}

/// Shared trap-taking path (fetch faults, decode faults, execute faults).
#[allow(clippy::too_many_arguments)]
fn take_trap(
    arch: &mut ArchExec,
    ids: &CoreIds,
    tracer: &mut Tracer,
    e: chatfuzz_isa::Exception,
    pc: u64,
    word: u32,
    instr: Option<&Instr>,
    cov: &mut CovMap,
    trap_penalty: u64,
) -> TrapTaken {
    let from = arch.csrs.priv_level;
    let delegated = arch.csrs.delegated_to_s(e.cause());
    let vec = if delegated { arch.csrs.stvec() } else { arch.csrs.mtvec() };
    if vec == 0 {
        ids.cover_trap(&e, from, delegated, true, cov);
        return TrapTaken::Unhandled(ExitReason::UnhandledTrap(e));
    }
    ids.cover_trap(&e, from, delegated, false, cov);
    arch.reservation = None;
    let (to, handler_pc) = arch.csrs.take_trap(&e, pc);
    let record = CommitRecord {
        pc,
        word,
        priv_level: from,
        rd_write: None,
        mem: None,
        trap: Some(TrapRecord { exception: e, from, to, handler_pc }),
    };
    let record = tracer.emit(record, instr, None, cov);
    TrapTaken::Handled { record, handler_pc, cost: trap_penalty }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chatfuzz_isa::asm::Assembler;
    use chatfuzz_isa::{AluOp, BranchCond, MemWidth, MulDivOp};
    use chatfuzz_softcore::{SoftCore, SoftCoreConfig};

    fn a(i: u8) -> Reg {
        Reg::new(i).unwrap()
    }

    fn golden(bytes: &[u8]) -> Trace {
        SoftCore::new(SoftCoreConfig::default()).run(bytes)
    }

    fn rocket(bugs: BugConfig) -> Rocket {
        Rocket::new(RocketConfig { bugs, ..Default::default() })
    }

    #[test]
    fn bug_free_rocket_matches_golden_on_loop_program() {
        let mut asm = Assembler::new();
        asm.li(a(10), 10);
        asm.label("loop");
        asm.push(Instr::OpImm { op: AluOp::Add, rd: a(10), rs1: a(10), imm: -1, word: false });
        asm.branch_to(BranchCond::Ne, a(10), Reg::X0, "loop");
        asm.push(Instr::System(SystemOp::Wfi));
        let bytes = asm.assemble_bytes().unwrap();
        let run = rocket(BugConfig::all_off()).run(&bytes);
        assert_eq!(run.trace, golden(&bytes));
        assert!(run.cycles as usize > run.trace.len(), "stalls make cycles > instructions");
    }

    #[test]
    fn bug1_self_modifying_code_diverges_without_fence_i() {
        // Program: overwrite the instruction at `patch` (initially
        // `addi a0, a0, 1`) with `addi a0, a0, 64`, then execute it.
        // Golden model executes the NEW instruction; buggy Rocket executes
        // the STALE one from its I-cache (it fetched the line earlier).
        let t0 = a(5);
        let t1 = a(6);
        let mut asm = Assembler::new();
        asm.push(Instr::Auipc { rd: t0, imm: 0 }); // t0 = base
                                                   // t1 = new instruction word for "addi a0, a0, 64"
        let new_word = chatfuzz_isa::encode(&Instr::OpImm {
            op: AluOp::Add,
            rd: a(10),
            rs1: a(10),
            imm: 64,
            word: false,
        })
        .unwrap();
        asm.li(t1, i64::from(new_word as i32));
        // Store to patch slot: compute patch address = base + patch_off.
        // Layout must be known: count instructions emitted so far + the
        // store + wfi below. li(t1, ..) expands to <=2 instrs for this value.
        // Slots: 0:auipc, 1..=2: li, 3: sw, 4: patch, 5: wfi
        asm.push(Instr::Store { width: MemWidth::W, rs2: t1, rs1: t0, offset: 16 });
        asm.push(Instr::OpImm { op: AluOp::Add, rd: a(10), rs1: a(10), imm: 1, word: false }); // patch slot @16
        asm.push(Instr::System(SystemOp::Wfi));
        let program = asm.assemble().unwrap();
        assert_eq!(program.len(), 6, "layout assumption");
        let bytes = chatfuzz_isa::encode_program(&program).unwrap();

        let golden_trace = golden(&bytes);
        // Golden executed the patched instruction: a0 = 64.
        let golden_a0 = golden_trace
            .records
            .iter()
            .rev()
            .find_map(|r| r.rd_write.filter(|(rd, _)| *rd == a(10)))
            .map(|(_, v)| v);
        assert_eq!(golden_a0, Some(64));

        let buggy = rocket(BugConfig::all_on()).run(&bytes);
        let rocket_a0 = buggy
            .trace
            .records
            .iter()
            .rev()
            .find_map(|r| r.rd_write.filter(|(rd, _)| *rd == a(10)))
            .map(|(_, v)| v);
        assert_eq!(rocket_a0, Some(1), "BUG1: stale instruction executed");

        // And with the bug disabled the traces agree again.
        let fixed = rocket(BugConfig::all_off()).run(&bytes);
        assert_eq!(fixed.trace, golden_trace);
    }

    #[test]
    fn fence_i_restores_coherence_on_buggy_rocket() {
        let t0 = a(5);
        let t1 = a(6);
        let mut asm = Assembler::new();
        asm.push(Instr::Auipc { rd: t0, imm: 0 });
        let new_word = chatfuzz_isa::encode(&Instr::OpImm {
            op: AluOp::Add,
            rd: a(10),
            rs1: a(10),
            imm: 64,
            word: false,
        })
        .unwrap();
        asm.li(t1, i64::from(new_word as i32));
        asm.push(Instr::Store { width: MemWidth::W, rs2: t1, rs1: t0, offset: 20 });
        asm.push(Instr::FenceI);
        asm.push(Instr::OpImm { op: AluOp::Add, rd: a(10), rs1: a(10), imm: 1, word: false }); // @20
        asm.push(Instr::System(SystemOp::Wfi));
        let program = asm.assemble().unwrap();
        assert_eq!(program.len(), 7, "layout assumption");
        let bytes = chatfuzz_isa::encode_program(&program).unwrap();
        let buggy = rocket(BugConfig::all_on()).run(&bytes);
        assert_eq!(buggy.trace, golden(&bytes), "fence.i hides BUG1");
    }

    #[test]
    fn bug2_muldiv_writeback_missing_from_trace() {
        let mut asm = Assembler::new();
        asm.li(a(10), 6);
        asm.li(a(11), 7);
        asm.push(Instr::MulDiv {
            op: MulDivOp::Mul,
            rd: a(12),
            rs1: a(10),
            rs2: a(11),
            word: false,
        });
        asm.push(Instr::System(SystemOp::Wfi));
        let bytes = asm.assemble_bytes().unwrap();
        let golden_trace = golden(&bytes);
        let golden_mul = golden_trace.records.iter().find(|r| r.rd_write == Some((a(12), 42)));
        assert!(golden_mul.is_some(), "golden trace shows mul result");
        let buggy = rocket(BugConfig::all_on()).run(&bytes);
        let rocket_mul = buggy.trace.records.iter().find(|r| r.rd_write == Some((a(12), 42)));
        assert!(rocket_mul.is_none(), "BUG2: mul write-back suppressed in trace");
    }

    #[test]
    fn finding1_exception_code_differs() {
        let mut asm = Assembler::new();
        asm.li(a(5), 0x3); // misaligned AND outside RAM
        asm.push(Instr::Load { width: MemWidth::W, signed: true, rd: a(10), rs1: a(5), offset: 0 });
        let bytes = asm.assemble_bytes().unwrap();
        let golden_trace = golden(&bytes);
        let buggy = rocket(BugConfig::all_on()).run(&bytes);
        match (golden_trace.exit, buggy.trace.exit) {
            (ExitReason::UnhandledTrap(g), ExitReason::UnhandledTrap(r)) => {
                assert_eq!(g.cause(), 4, "golden: load misaligned");
                assert_eq!(r.cause(), 5, "rocket: load access fault");
            }
            other => panic!("expected unhandled traps, got {other:?}"),
        }
    }

    #[test]
    fn coverage_accumulates_and_space_is_stable() {
        let mut core = rocket(BugConfig::all_on());
        let fp1 = core.space().fingerprint();
        let mut asm = Assembler::new();
        asm.li(a(10), 1);
        asm.push(Instr::System(SystemOp::Wfi));
        let run = core.run(&asm.assemble_bytes().unwrap());
        assert!(run.coverage.covered_bins() > 0);
        assert!(run.coverage.percent() < 100.0);
        // Re-elaborating yields the same space.
        let core2 = rocket(BugConfig::all_on());
        assert_eq!(core2.space().fingerprint(), fp1);
    }
}
