//! Frontend branch prediction: BTB + 2-bit BHT + return-address stack.

use chatfuzz_coverage::{cover, CondId, CovMap, PointKind, SpaceBuilder};

/// Predictor sizing.
#[derive(Debug, Clone, Copy)]
pub struct PredictorConfig {
    /// BTB entries (power of two).
    pub btb_entries: usize,
    /// BHT entries (power of two).
    pub bht_entries: usize,
    /// Return-address-stack depth.
    pub ras_depth: usize,
    /// Cycles charged on a misprediction.
    pub mispredict_penalty: u64,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        PredictorConfig { btb_entries: 16, bht_entries: 64, ras_depth: 2, mispredict_penalty: 3 }
    }
}

#[derive(Debug)]
struct Ids {
    btb_hit: CondId,
    btb_evict: CondId,
    bht_predict_taken: CondId,
    bht_sat_hi: CondId,
    bht_sat_lo: CondId,
    mispredict_dir: CondId,
    mispredict_target: CondId,
    ras_push_overflow: CondId,
    ras_pop_empty: CondId,
    ras_correct: CondId,
}

/// Outcome of resolving one control-flow instruction against the prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Resolution {
    /// Whether the frontend mispredicted (direction or target).
    pub mispredicted: bool,
    /// Cycles charged for the redirect.
    pub cycles: u64,
}

/// BTB + BHT + RAS frontend predictor.
#[derive(Debug)]
pub struct Predictor {
    cfg: PredictorConfig,
    btb: Vec<Option<(u64, u64)>>, // (pc, target)
    bht: Vec<u8>,                 // 2-bit counters
    ras: Vec<u64>,
    ids: Ids,
}

impl Predictor {
    /// Builds the predictor and registers its coverage points.
    pub fn new(cfg: PredictorConfig, prefix: &str, b: &mut SpaceBuilder) -> Predictor {
        assert!(cfg.btb_entries.is_power_of_two() && cfg.bht_entries.is_power_of_two());
        let ids = Ids {
            btb_hit: b.register(format!("{prefix}.btb_hit"), PointKind::Condition),
            btb_evict: b.register(format!("{prefix}.btb_evict"), PointKind::Condition),
            bht_predict_taken: b
                .register(format!("{prefix}.bht_predict_taken"), PointKind::MuxSelect),
            bht_sat_hi: b.register(format!("{prefix}.bht_saturated_taken"), PointKind::Condition),
            bht_sat_lo: b
                .register(format!("{prefix}.bht_saturated_not_taken"), PointKind::Condition),
            mispredict_dir: b
                .register(format!("{prefix}.mispredict_direction"), PointKind::Condition),
            mispredict_target: b
                .register(format!("{prefix}.mispredict_target"), PointKind::Condition),
            ras_push_overflow: b.register(format!("{prefix}.ras_overflow"), PointKind::Condition),
            ras_pop_empty: b.register(format!("{prefix}.ras_pop_empty"), PointKind::Condition),
            ras_correct: b.register(format!("{prefix}.ras_correct"), PointKind::Condition),
        };
        Predictor {
            cfg,
            btb: vec![None; cfg.btb_entries],
            bht: vec![1; cfg.bht_entries], // weakly not-taken
            ras: Vec::new(),
            ids,
        }
    }

    /// Power-on reset (coverage registration is preserved).
    pub fn reset(&mut self) {
        self.btb.fill(None);
        self.bht.fill(1);
        self.ras.clear();
    }

    fn btb_index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.cfg.btb_entries - 1)
    }

    fn bht_index(&self, pc: u64) -> usize {
        ((pc >> 2) as usize) & (self.cfg.bht_entries - 1)
    }

    /// Frontend guess for the next PC after `pc`.
    pub fn predict(&mut self, pc: u64, cov: &mut CovMap) -> Option<u64> {
        let entry = self.btb[self.btb_index(pc)];
        let hit = matches!(entry, Some((tag, _)) if tag == pc);
        cover!(cov, self.ids.btb_hit, hit);
        if !hit {
            return None;
        }
        let (_, target) = entry.unwrap();
        let counter = self.bht[self.bht_index(pc)];
        cover!(cov, self.ids.bht_sat_hi, counter == 3);
        cover!(cov, self.ids.bht_sat_lo, counter == 0);
        if cover!(cov, self.ids.bht_predict_taken, counter >= 2) {
            Some(target)
        } else {
            None
        }
    }

    /// Resolves a conditional branch at `pc`: actual direction `taken`
    /// toward `target`, given the earlier prediction `predicted`.
    pub fn resolve_branch(
        &mut self,
        pc: u64,
        taken: bool,
        target: u64,
        predicted: Option<u64>,
        cov: &mut CovMap,
    ) -> Resolution {
        let predicted_taken = predicted.is_some();
        let dir_wrong = cover!(cov, self.ids.mispredict_dir, predicted_taken != taken);
        let target_wrong = cover!(
            cov,
            self.ids.mispredict_target,
            taken && predicted_taken && predicted != Some(target)
        );
        // BHT update.
        let idx = self.bht_index(pc);
        if taken {
            self.bht[idx] = (self.bht[idx] + 1).min(3);
        } else {
            self.bht[idx] = self.bht[idx].saturating_sub(1);
        }
        // BTB update on taken.
        if taken {
            self.update_btb(pc, target, cov);
        }
        let mispredicted = dir_wrong || target_wrong;
        Resolution {
            mispredicted,
            cycles: if mispredicted { self.cfg.mispredict_penalty } else { 0 },
        }
    }

    /// Resolves an unconditional jump (`jal`/`jalr`), including RAS
    /// maintenance for calls and returns.
    pub fn resolve_jump(
        &mut self,
        pc: u64,
        target: u64,
        is_call: bool,
        is_ret: bool,
        predicted: Option<u64>,
        cov: &mut CovMap,
    ) -> Resolution {
        let mut guess = predicted;
        if is_ret {
            let empty = self.ras.is_empty();
            cover!(cov, self.ids.ras_pop_empty, empty);
            if let Some(top) = self.ras.pop() {
                cover!(cov, self.ids.ras_correct, top == target);
                guess = Some(top);
            }
        }
        if is_call {
            let overflow = self.ras.len() >= self.cfg.ras_depth;
            if cover!(cov, self.ids.ras_push_overflow, overflow) {
                self.ras.remove(0);
            }
            self.ras.push(pc.wrapping_add(4));
        }
        let wrong = cover!(cov, self.ids.mispredict_target, guess != Some(target));
        self.update_btb(pc, target, cov);
        Resolution {
            mispredicted: wrong,
            cycles: if wrong { self.cfg.mispredict_penalty } else { 0 },
        }
    }

    fn update_btb(&mut self, pc: u64, target: u64, cov: &mut CovMap) {
        let idx = self.btb_index(pc);
        let evicting = matches!(self.btb[idx], Some((tag, _)) if tag != pc);
        cover!(cov, self.ids.btb_evict, evicting);
        self.btb[idx] = Some((pc, target));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Predictor, CovMap) {
        let mut b = SpaceBuilder::new("pred-test");
        let p = Predictor::new(PredictorConfig::default(), "bp", &mut b);
        let space = b.build();
        (p, CovMap::new(&space))
    }

    #[test]
    fn cold_predict_returns_none() {
        let (mut p, mut cov) = setup();
        assert_eq!(p.predict(0x8000_0000, &mut cov), None);
    }

    #[test]
    fn repeated_taken_branch_becomes_predicted() {
        let (mut p, mut cov) = setup();
        let pc = 0x8000_0010;
        let target = 0x8000_0000;
        // First resolution installs the BTB entry and bumps the counter.
        let r1 = p.resolve_branch(pc, true, target, None, &mut cov);
        assert!(r1.mispredicted);
        let guess = p.predict(pc, &mut cov);
        let _ = p.resolve_branch(pc, true, target, guess, &mut cov);
        // After two taken outcomes the counter is ≥2 and the BTB hits.
        let guess = p.predict(pc, &mut cov);
        assert_eq!(guess, Some(target));
        let r3 = p.resolve_branch(pc, true, target, guess, &mut cov);
        assert!(!r3.mispredicted);
        assert_eq!(r3.cycles, 0);
    }

    #[test]
    fn direction_flip_mispredicts() {
        let (mut p, mut cov) = setup();
        let pc = 0x8000_0010;
        for _ in 0..3 {
            let guess = p.predict(pc, &mut cov);
            p.resolve_branch(pc, true, 0x8000_0000, guess, &mut cov);
        }
        let guess = p.predict(pc, &mut cov);
        assert!(guess.is_some());
        let r = p.resolve_branch(pc, false, 0x8000_0000, guess, &mut cov);
        assert!(r.mispredicted);
        assert!(r.cycles > 0);
    }

    #[test]
    fn ras_predicts_matched_call_return() {
        let (mut p, mut cov) = setup();
        let call_pc = 0x8000_0100;
        let callee = 0x8000_0200;
        // call: jal ra, callee
        p.resolve_jump(call_pc, callee, true, false, None, &mut cov);
        // ret: jalr x0, 0(ra) -> target = call_pc + 4
        let r = p.resolve_jump(callee + 0x10, call_pc + 4, false, true, None, &mut cov);
        assert!(!r.mispredicted, "RAS should predict the return");
        assert!(cov.is_covered(p.ids.ras_correct, true));
    }

    #[test]
    fn ras_overflow_and_underflow_conditions() {
        let (mut p, mut cov) = setup();
        for i in 0..4u64 {
            p.resolve_jump(0x8000_0000 + i * 8, 0x8000_1000, true, false, None, &mut cov);
        }
        assert!(cov.is_covered(p.ids.ras_push_overflow, true));
        // Drain plus one extra pop.
        for i in 0..3u64 {
            p.resolve_jump(0x8000_2000 + i * 8, 0x8000_0004, false, true, None, &mut cov);
        }
        assert!(cov.is_covered(p.ids.ras_pop_empty, true));
    }
}
