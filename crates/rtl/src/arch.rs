//! The architectural datapath shared by the Rocket-like and BOOM-like cores.
//!
//! [`ArchExec`] executes one decoded instruction against the architectural
//! state (registers, CSR file, memory, LR/SC reservation) using the same
//! [`chatfuzz_isa::semantics`] helpers as the golden model. The only
//! architectural deviation it can introduce is the configurable
//! PMA-before-alignment check order (the paper's Finding 1); everything
//! else that differs from the golden model (stale instruction fetch, tracer
//! omissions) is injected by the wrapping core models, not here.

use chatfuzz_isa::semantics::{alu, amo, branch_taken, extend_loaded, muldiv};
use chatfuzz_isa::{CsrSrc, Exception, Instr, MemWidth, Reg, SystemOp};
use chatfuzz_softcore::csr::CsrFile;
use chatfuzz_softcore::mem::{Memory, StoreEffect};
use chatfuzz_softcore::trace::{CommitRecord, ExitReason, MemEffect};

/// Result of executing one decoded instruction architecturally.
#[derive(Debug, Clone)]
pub enum ArchOutcome {
    /// Fall through to `pc + 4`.
    Next(CommitRecord),
    /// Control transfer to `target` (branch taken, jump, xret).
    Jump {
        /// The new PC.
        target: u64,
        /// The commit record.
        record: CommitRecord,
    },
    /// The instruction raised a synchronous exception (not yet taken).
    Trap(Exception),
    /// The run must halt after committing this record.
    Halt(ExitReason, CommitRecord),
}

/// Architectural core state (no microarchitecture).
#[derive(Debug, Clone)]
pub struct ArchExec {
    /// Integer register file.
    pub regs: [u64; 32],
    /// CSR file (shared implementation with the golden model).
    pub csrs: CsrFile,
    /// Physical memory.
    pub mem: Memory,
    /// LR/SC reservation.
    pub reservation: Option<u64>,
    /// Finding 1 injection: check PMA *before* alignment in the mem stage,
    /// so an access that is both misaligned and out of range reports an
    /// access fault (RocketCore behaviour) instead of misaligned (spec).
    pub pma_before_align: bool,
}

impl ArchExec {
    /// Creates the architectural state around `mem`.
    pub fn new(mem: Memory, pma_before_align: bool) -> ArchExec {
        ArchExec { regs: [0; 32], csrs: CsrFile::new(), mem, reservation: None, pma_before_align }
    }

    /// Power-on reset of the architectural state (registers, CSRs, LR/SC
    /// reservation). Memory and the Finding-1 flag are kept — pair with
    /// [`Memory::reset_with_image`] to recycle the whole arena per test.
    pub fn reset(&mut self) {
        self.regs = [0; 32];
        self.csrs = CsrFile::new();
        self.reservation = None;
    }

    /// Reads a register.
    #[inline]
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Writes a register (x0 writes discarded).
    #[inline]
    pub fn set_reg(&mut self, r: Reg, value: u64) {
        if !r.is_zero() {
            self.regs[r.index()] = value;
        }
    }

    fn check_data_addr(&self, addr: u64, width: MemWidth, is_store: bool) -> Result<(), Exception> {
        let len = width.bytes();
        let misaligned = !addr.is_multiple_of(len);
        // `tohost` is a valid store target outside RAM.
        let pma_ok =
            self.mem.in_ram(addr, len) || (is_store && !misaligned && self.mem.is_tohost(addr));
        let mis_exc = if is_store {
            Exception::StoreAddrMisaligned { addr }
        } else {
            Exception::LoadAddrMisaligned { addr }
        };
        let acc_exc = if is_store {
            Exception::StoreAccessFault { addr }
        } else {
            Exception::LoadAccessFault { addr }
        };
        if self.pma_before_align {
            // RocketCore (Finding 1): PMA first.
            if !pma_ok {
                return Err(acc_exc);
            }
            if misaligned {
                return Err(mis_exc);
            }
        } else {
            if misaligned {
                return Err(mis_exc);
            }
            if !pma_ok {
                return Err(acc_exc);
            }
        }
        Ok(())
    }

    /// Executes one decoded instruction fetched from `pc` as `word`.
    ///
    /// The caller (the core model) is responsible for the fetch itself —
    /// including any stale-instruction-cache behaviour — and for taking the
    /// trap if `ArchOutcome::Trap` is returned.
    pub fn execute(&mut self, instr: Instr, pc: u64, word: u32) -> ArchOutcome {
        let priv_level = self.csrs.priv_level;
        let record =
            |rd_write, mem| CommitRecord { pc, word, priv_level, rd_write, mem, trap: None };
        let vis = |rd: Reg, v: u64| (!rd.is_zero()).then_some((rd, v));
        match instr {
            Instr::Lui { rd, imm } => {
                self.set_reg(rd, imm as u64);
                ArchOutcome::Next(record(vis(rd, imm as u64), None))
            }
            Instr::Auipc { rd, imm } => {
                let v = pc.wrapping_add(imm as u64);
                self.set_reg(rd, v);
                ArchOutcome::Next(record(vis(rd, v), None))
            }
            Instr::Jal { rd, offset } => {
                let target = pc.wrapping_add(offset as u64);
                if !target.is_multiple_of(4) {
                    return ArchOutcome::Trap(Exception::InstrAddrMisaligned { addr: target });
                }
                let link = pc.wrapping_add(4);
                self.set_reg(rd, link);
                ArchOutcome::Jump { target, record: record(vis(rd, link), None) }
            }
            Instr::Jalr { rd, rs1, offset } => {
                let target = self.reg(rs1).wrapping_add(offset as u64) & !1;
                if !target.is_multiple_of(4) {
                    return ArchOutcome::Trap(Exception::InstrAddrMisaligned { addr: target });
                }
                let link = pc.wrapping_add(4);
                self.set_reg(rd, link);
                ArchOutcome::Jump { target, record: record(vis(rd, link), None) }
            }
            Instr::Branch { cond, rs1, rs2, offset } => {
                if branch_taken(cond, self.reg(rs1), self.reg(rs2)) {
                    let target = pc.wrapping_add(offset as u64);
                    if !target.is_multiple_of(4) {
                        return ArchOutcome::Trap(Exception::InstrAddrMisaligned { addr: target });
                    }
                    ArchOutcome::Jump { target, record: record(None, None) }
                } else {
                    ArchOutcome::Next(record(None, None))
                }
            }
            Instr::Load { width, signed, rd, rs1, offset } => {
                let addr = self.reg(rs1).wrapping_add(offset as u64);
                if let Err(e) = self.check_data_addr(addr, width, false) {
                    return ArchOutcome::Trap(e);
                }
                if !self.mem.in_ram(addr, width.bytes()) {
                    return ArchOutcome::Trap(Exception::LoadAccessFault { addr });
                }
                let raw = self.mem.read_raw(addr, width.bytes());
                let v = extend_loaded(raw, width, signed);
                self.set_reg(rd, v);
                let mem = MemEffect { addr, bytes: width.bytes() as u8, is_store: false, value: v };
                ArchOutcome::Next(record(vis(rd, v), Some(mem)))
            }
            Instr::Store { width, rs2, rs1, offset } => {
                let addr = self.reg(rs1).wrapping_add(offset as u64);
                if let Err(e) = self.check_data_addr(addr, width, true) {
                    return ArchOutcome::Trap(e);
                }
                let value = self.reg(rs2);
                match self.mem.store(addr, width, value) {
                    Ok(effect) => {
                        self.reservation = None;
                        let mem =
                            MemEffect { addr, bytes: width.bytes() as u8, is_store: true, value };
                        match effect {
                            StoreEffect::Ram => ArchOutcome::Next(record(None, Some(mem))),
                            StoreEffect::ToHost(v) => {
                                ArchOutcome::Halt(ExitReason::ToHost(v), record(None, Some(mem)))
                            }
                        }
                    }
                    Err(e) => ArchOutcome::Trap(e),
                }
            }
            Instr::OpImm { op, rd, rs1, imm, word: w } => {
                let v = alu(op, self.reg(rs1), imm as u64, w);
                self.set_reg(rd, v);
                ArchOutcome::Next(record(vis(rd, v), None))
            }
            Instr::Op { op, rd, rs1, rs2, word: w } => {
                let v = alu(op, self.reg(rs1), self.reg(rs2), w);
                self.set_reg(rd, v);
                ArchOutcome::Next(record(vis(rd, v), None))
            }
            Instr::MulDiv { op, rd, rs1, rs2, word: w } => {
                let v = muldiv(op, self.reg(rs1), self.reg(rs2), w);
                self.set_reg(rd, v);
                ArchOutcome::Next(record(vis(rd, v), None))
            }
            Instr::Amo { op, width, rd, rs1, rs2, .. } => {
                let addr = self.reg(rs1);
                if let Err(e) = self.check_data_addr_amo(addr, width) {
                    return ArchOutcome::Trap(e);
                }
                let old_raw = self.mem.read_raw(addr, width.bytes());
                let old = extend_loaded(old_raw, width, true);
                let new = amo(op, old_raw, self.reg(rs2), width);
                self.mem.write_raw(addr, width.bytes(), new);
                self.reservation = None;
                self.set_reg(rd, old);
                let mem =
                    MemEffect { addr, bytes: width.bytes() as u8, is_store: true, value: new };
                ArchOutcome::Next(record(vis(rd, old), Some(mem)))
            }
            Instr::LoadReserved { width, rd, rs1, .. } => {
                let addr = self.reg(rs1);
                if let Err(e) = self.check_lr_addr(addr, width) {
                    return ArchOutcome::Trap(e);
                }
                let raw = self.mem.read_raw(addr, width.bytes());
                let v = extend_loaded(raw, width, true);
                self.reservation = Some(addr);
                self.set_reg(rd, v);
                let mem = MemEffect { addr, bytes: width.bytes() as u8, is_store: false, value: v };
                ArchOutcome::Next(record(vis(rd, v), Some(mem)))
            }
            Instr::StoreConditional { width, rd, rs1, rs2, .. } => {
                let addr = self.reg(rs1);
                if let Err(e) = self.check_data_addr_amo(addr, width) {
                    return ArchOutcome::Trap(e);
                }
                let success = self.reservation == Some(addr);
                self.reservation = None;
                let result = u64::from(!success);
                self.set_reg(rd, result);
                let mem = if success {
                    let value = self.reg(rs2);
                    let stored = match width {
                        MemWidth::W => value & 0xffff_ffff,
                        _ => value,
                    };
                    self.mem.write_raw(addr, width.bytes(), stored);
                    Some(MemEffect { addr, bytes: width.bytes() as u8, is_store: true, value })
                } else {
                    None
                };
                ArchOutcome::Next(record(vis(rd, result), mem))
            }
            Instr::Csr { op, rd, csr, src } => {
                let (src_value, src_is_zero_arg) = match src {
                    CsrSrc::Reg(rs1) => (self.reg(rs1), rs1.is_zero()),
                    CsrSrc::Imm(imm) => (u64::from(imm), imm == 0),
                };
                match self.csrs.execute(op, csr, src_value, src_is_zero_arg) {
                    Ok(old) => {
                        self.set_reg(rd, old);
                        ArchOutcome::Next(record(vis(rd, old), None))
                    }
                    Err(_) => ArchOutcome::Trap(Exception::IllegalInstr { word }),
                }
            }
            Instr::Fence { .. } => ArchOutcome::Next(record(None, None)),
            Instr::FenceI => {
                self.reservation = None;
                ArchOutcome::Next(record(None, None))
            }
            Instr::System(SystemOp::Ecall) => {
                ArchOutcome::Trap(Exception::Ecall { from: self.csrs.priv_level })
            }
            Instr::System(SystemOp::Ebreak) => {
                ArchOutcome::Trap(Exception::Breakpoint { addr: pc })
            }
            Instr::System(SystemOp::Mret) => match self.csrs.mret() {
                Ok(target) => {
                    self.reservation = None;
                    ArchOutcome::Jump { target, record: record(None, None) }
                }
                Err(_) => ArchOutcome::Trap(Exception::IllegalInstr { word }),
            },
            Instr::System(SystemOp::Sret) => match self.csrs.sret() {
                Ok(target) => {
                    self.reservation = None;
                    ArchOutcome::Jump { target, record: record(None, None) }
                }
                Err(_) => ArchOutcome::Trap(Exception::IllegalInstr { word }),
            },
            Instr::System(SystemOp::Wfi) => {
                if self.csrs.wfi_is_illegal() {
                    ArchOutcome::Trap(Exception::IllegalInstr { word })
                } else {
                    ArchOutcome::Halt(ExitReason::Wfi, record(None, None))
                }
            }
            Instr::SfenceVma { .. } => {
                if self.csrs.sfence_is_illegal() {
                    ArchOutcome::Trap(Exception::IllegalInstr { word })
                } else {
                    ArchOutcome::Next(record(None, None))
                }
            }
        }
    }

    /// AMO/SC address check: both misaligned and faulting accesses raise
    /// *store* exceptions. Subject to the same Finding-1 ordering flag.
    fn check_data_addr_amo(&self, addr: u64, width: MemWidth) -> Result<(), Exception> {
        let len = width.bytes();
        let misaligned = !addr.is_multiple_of(len);
        let pma_ok = self.mem.in_ram(addr, len);
        self.order_checks(
            misaligned,
            pma_ok,
            Exception::StoreAddrMisaligned { addr },
            Exception::StoreAccessFault { addr },
        )
    }

    /// LR address check (load exception flavour).
    fn check_lr_addr(&self, addr: u64, width: MemWidth) -> Result<(), Exception> {
        let len = width.bytes();
        let misaligned = !addr.is_multiple_of(len);
        let pma_ok = self.mem.in_ram(addr, len);
        self.order_checks(
            misaligned,
            pma_ok,
            Exception::LoadAddrMisaligned { addr },
            Exception::LoadAccessFault { addr },
        )
    }

    fn order_checks(
        &self,
        misaligned: bool,
        pma_ok: bool,
        mis: Exception,
        acc: Exception,
    ) -> Result<(), Exception> {
        if self.pma_before_align {
            if !pma_ok {
                return Err(acc);
            }
            if misaligned {
                return Err(mis);
            }
        } else {
            if misaligned {
                return Err(mis);
            }
            if !pma_ok {
                return Err(acc);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chatfuzz_softcore::mem::DEFAULT_RAM_BASE;

    fn exec(pma_first: bool) -> ArchExec {
        ArchExec::new(Memory::new(DEFAULT_RAM_BASE, 4096), pma_first)
    }

    #[test]
    fn finding1_flag_flips_exception_priority() {
        let t0 = Reg::new(5).unwrap();
        let a0 = Reg::new(10).unwrap();
        let load = Instr::Load { width: MemWidth::W, signed: true, rd: a0, rs1: t0, offset: 0 };

        // Address 0x3: misaligned AND outside RAM.
        let mut spec = exec(false);
        spec.set_reg(t0, 3);
        match spec.execute(load, DEFAULT_RAM_BASE, 0) {
            ArchOutcome::Trap(Exception::LoadAddrMisaligned { addr: 3 }) => {}
            other => panic!("spec order: expected misaligned, got {other:?}"),
        }

        let mut rocket = exec(true);
        rocket.set_reg(t0, 3);
        match rocket.execute(load, DEFAULT_RAM_BASE, 0) {
            ArchOutcome::Trap(Exception::LoadAccessFault { addr: 3 }) => {}
            other => panic!("rocket order: expected access fault, got {other:?}"),
        }
    }

    #[test]
    fn finding1_no_effect_when_only_one_condition_holds() {
        let t0 = Reg::new(5).unwrap();
        let a0 = Reg::new(10).unwrap();
        let load = Instr::Load { width: MemWidth::W, signed: true, rd: a0, rs1: t0, offset: 0 };
        // Misaligned but inside RAM: both orders report misaligned.
        for pma_first in [false, true] {
            let mut e = exec(pma_first);
            e.set_reg(t0, DEFAULT_RAM_BASE + 1);
            match e.execute(load, DEFAULT_RAM_BASE, 0) {
                ArchOutcome::Trap(Exception::LoadAddrMisaligned { .. }) => {}
                other => panic!("expected misaligned, got {other:?}"),
            }
        }
    }

    #[test]
    fn store_exception_flavours_for_amo() {
        let t0 = Reg::new(5).unwrap();
        let a0 = Reg::new(10).unwrap();
        let amo_instr = Instr::Amo {
            op: chatfuzz_isa::AmoOp::Add,
            width: MemWidth::D,
            rd: a0,
            rs1: t0,
            rs2: a0,
            aq: false,
            rl: false,
        };
        let mut e = exec(false);
        e.set_reg(t0, DEFAULT_RAM_BASE + 4); // aligned to 4, not 8
        match e.execute(amo_instr, DEFAULT_RAM_BASE, 0) {
            ArchOutcome::Trap(Exception::StoreAddrMisaligned { .. }) => {}
            other => panic!("expected store-misaligned, got {other:?}"),
        }
    }
}
