//! The RocketCore tracer model, with the paper's trace-output bugs.
//!
//! The tracer sits between the architectural commit stream and the trace
//! log. RocketCore's (injected) defects live here:
//!
//! * **BUG2 (CWE-440)** — the tracer does not output the destination-register
//!   write-back of M-extension multiply/divide instructions.
//! * **Finding 2** — for AMOs with `rd = x0`, the trace shows the loaded
//!   value being "written" to `x0`.
//! * **Finding 3** — for back-to-back dependent ALU operations whose
//!   destination is `x0`, the trace emits an `x0` write record.
//!
//! All three are *trace-only*: architectural state is unaffected, exactly as
//! the paper describes.

use chatfuzz_coverage::{cover, CondId, CovMap, PointKind, SpaceBuilder};
use chatfuzz_isa::{Instr, Reg};
use chatfuzz_softcore::trace::CommitRecord;

/// Which tracer defects are active.
#[derive(Debug, Clone, Copy)]
pub struct TracerBugs {
    /// BUG2: omit rd write-back for mul/div in the trace.
    pub bug2_muldiv_omit: bool,
    /// Finding 2: report the AMO load value as an `x0` write.
    pub f2_amo_x0: bool,
    /// Finding 3: report `x0` writes for dependent back-to-back ALU ops.
    pub f3_x0_bypass: bool,
}

impl TracerBugs {
    /// All tracer defects enabled (RocketCore as evaluated in the paper).
    pub fn all_on() -> TracerBugs {
        TracerBugs { bug2_muldiv_omit: true, f2_amo_x0: true, f3_x0_bypass: true }
    }

    /// All tracer defects disabled (used by the equivalence property tests).
    pub fn all_off() -> TracerBugs {
        TracerBugs { bug2_muldiv_omit: false, f2_amo_x0: false, f3_x0_bypass: false }
    }
}

#[derive(Debug)]
struct Ids {
    muldiv_suppressed: CondId,
    amo_x0_emitted: CondId,
    bypass_x0_emitted: CondId,
    trap_slot: CondId,
}

/// The trace-emission stage.
#[derive(Debug)]
pub struct Tracer {
    bugs: TracerBugs,
    /// Destination of the previous ALU-class instruction (for Finding 3).
    prev_alu_rd: Option<Reg>,
    ids: Ids,
}

impl Tracer {
    /// Builds the tracer and registers its coverage points.
    pub fn new(bugs: TracerBugs, prefix: &str, b: &mut SpaceBuilder) -> Tracer {
        let ids = Ids {
            muldiv_suppressed: b
                .register(format!("{prefix}.muldiv_wb_suppressed"), PointKind::Condition),
            amo_x0_emitted: b.register(format!("{prefix}.amo_x0_emitted"), PointKind::Condition),
            bypass_x0_emitted: b
                .register(format!("{prefix}.bypass_x0_emitted"), PointKind::Condition),
            trap_slot: b.register(format!("{prefix}.trap_slot"), PointKind::Condition),
        };
        Tracer { bugs, prev_alu_rd: None, ids }
    }

    /// Clears sequence-tracking state (new program).
    pub fn reset(&mut self) {
        self.prev_alu_rd = None;
    }

    /// Transforms the architecturally-correct record into what RocketCore's
    /// tracer actually logs. `instr` is the decoded instruction (`None` when
    /// the fetch/decode itself trapped); `raw_wb` is the write-back value
    /// including suppressed-`x0` destinations.
    pub fn emit(
        &mut self,
        mut record: CommitRecord,
        instr: Option<&Instr>,
        raw_wb: Option<(Reg, u64)>,
        cov: &mut CovMap,
    ) -> CommitRecord {
        cover!(cov, self.ids.trap_slot, record.trap.is_some());
        let Some(instr) = instr else {
            self.prev_alu_rd = None;
            return record;
        };
        if record.trap.is_some() {
            self.prev_alu_rd = None;
            return record;
        }
        // BUG2: mul/div write-backs never reach the trace port.
        if let Instr::MulDiv { .. } = instr {
            if cover!(cov, self.ids.muldiv_suppressed, self.bugs.bug2_muldiv_omit) {
                record.rd_write = None;
            }
        }
        // Finding 2: AMO with rd = x0 logs the loaded value anyway.
        if let Instr::Amo { rd, .. } = instr {
            let fires = self.bugs.f2_amo_x0 && rd.is_zero();
            if cover!(cov, self.ids.amo_x0_emitted, fires) {
                if let Some((r, v)) = raw_wb {
                    record.rd_write = Some((r, v));
                }
            }
        }
        // Finding 3: dependent back-to-back ALU ops with rd = x0 leak an
        // x0 write record through the bypass-network trace port.
        let alu_rd_rs1 = match instr {
            Instr::Op { rd, rs1, .. } | Instr::OpImm { rd, rs1, .. } => Some((*rd, *rs1)),
            _ => None,
        };
        if let Some((rd, rs1)) = alu_rd_rs1 {
            let fires = self.bugs.f3_x0_bypass
                && rd.is_zero()
                && !rs1.is_zero()
                && self.prev_alu_rd == Some(rs1);
            if cover!(cov, self.ids.bypass_x0_emitted, fires) {
                if let Some((r, v)) = raw_wb {
                    record.rd_write = Some((r, v));
                }
            }
            self.prev_alu_rd = Some(rd);
        } else {
            self.prev_alu_rd = None;
        }
        record
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chatfuzz_coverage::CovMap;
    use chatfuzz_isa::{AluOp, AmoOp, MemWidth, MulDivOp, PrivLevel};

    fn setup(bugs: TracerBugs) -> (Tracer, CovMap) {
        let mut b = SpaceBuilder::new("tracer-test");
        let t = Tracer::new(bugs, "tr", &mut b);
        (t, CovMap::new(&b.build()))
    }

    fn record(rd_write: Option<(Reg, u64)>) -> CommitRecord {
        CommitRecord {
            pc: 0x8000_0000,
            word: 0,
            priv_level: PrivLevel::Machine,
            rd_write,
            mem: None,
            trap: None,
        }
    }

    #[test]
    fn bug2_suppresses_muldiv_writeback() {
        let (mut t, mut cov) = setup(TracerBugs::all_on());
        let a0 = Reg::new(10).unwrap();
        let instr = Instr::MulDiv { op: MulDivOp::Mul, rd: a0, rs1: a0, rs2: a0, word: false };
        let out = t.emit(record(Some((a0, 42))), Some(&instr), Some((a0, 42)), &mut cov);
        assert_eq!(out.rd_write, None);

        let (mut t, mut cov) = setup(TracerBugs::all_off());
        let out = t.emit(record(Some((a0, 42))), Some(&instr), Some((a0, 42)), &mut cov);
        assert_eq!(out.rd_write, Some((a0, 42)));
    }

    #[test]
    fn f2_emits_x0_write_for_amo() {
        let (mut t, mut cov) = setup(TracerBugs::all_on());
        let a0 = Reg::new(10).unwrap();
        let instr = Instr::Amo {
            op: AmoOp::Or,
            width: MemWidth::D,
            rd: Reg::X0,
            rs1: a0,
            rs2: a0,
            aq: false,
            rl: false,
        };
        // Architecturally rd_write is None (x0), but the tracer leaks it.
        let out = t.emit(record(None), Some(&instr), Some((Reg::X0, 0x77)), &mut cov);
        assert_eq!(out.rd_write, Some((Reg::X0, 0x77)));
    }

    #[test]
    fn f3_emits_x0_write_only_for_dependent_sequences() {
        let (mut t, mut cov) = setup(TracerBugs::all_on());
        let a1 = Reg::new(11).unwrap();
        let producer = Instr::OpImm { op: AluOp::Add, rd: a1, rs1: a1, imm: 1, word: false };
        let consumer = Instr::Op { op: AluOp::Add, rd: Reg::X0, rs1: a1, rs2: a1, word: false };
        let out = t.emit(record(Some((a1, 5))), Some(&producer), Some((a1, 5)), &mut cov);
        assert_eq!(out.rd_write, Some((a1, 5)));
        let out = t.emit(record(None), Some(&consumer), Some((Reg::X0, 10)), &mut cov);
        assert_eq!(out.rd_write, Some((Reg::X0, 10)), "dependent x0 write leaks");
        // Without the dependency (prev rd != rs1) no leak.
        t.reset();
        let indep = Instr::Op { op: AluOp::Add, rd: Reg::X0, rs1: a1, rs2: a1, word: false };
        let out = t.emit(record(None), Some(&indep), Some((Reg::X0, 10)), &mut cov);
        assert_eq!(out.rd_write, None);
    }

    #[test]
    fn trap_slots_pass_through_untouched() {
        let (mut t, mut cov) = setup(TracerBugs::all_on());
        let mut r = record(None);
        r.trap = Some(chatfuzz_softcore::trace::TrapRecord {
            exception: chatfuzz_isa::Exception::IllegalInstr { word: 0 },
            from: PrivLevel::Machine,
            to: PrivLevel::Machine,
            handler_pc: 0x100,
        });
        let out = t.emit(r.clone(), None, None, &mut cov);
        assert_eq!(out, r);
    }
}
