//! Data-cache model (metadata-only: tags, dirty bits, LRU, timing).
//!
//! Architectural data lives in the shared [`chatfuzz_softcore::Memory`];
//! the D-cache tracks hit/miss/writeback behaviour for cycle accounting and
//! condition coverage. No coherence bugs are injected here — the paper's
//! BUG1 is on the *instruction* side.

use chatfuzz_coverage::{cover, CondId, CovMap, PointKind, SpaceBuilder};

/// Data-cache geometry.
#[derive(Debug, Clone, Copy)]
pub struct DCacheConfig {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Extra cycles charged on a miss.
    pub miss_penalty: u64,
    /// Extra cycles charged when a dirty victim is written back.
    pub writeback_penalty: u64,
    /// Store-buffer depth (0 disables forwarding conditions).
    pub store_buffer_depth: usize,
}

impl Default for DCacheConfig {
    fn default() -> Self {
        DCacheConfig {
            sets: 16,
            ways: 4,
            line_bytes: 64,
            miss_penalty: 12,
            writeback_penalty: 4,
            store_buffer_depth: 2,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct LineMeta {
    tag: u64,
    valid: bool,
    dirty: bool,
}

#[derive(Debug)]
struct Ids {
    hit_way: Vec<CondId>,
    miss: CondId,
    writeback_dirty: CondId,
    store_marks_dirty: CondId,
    sb_forward: CondId,
    sb_full_stall: CondId,
    amo_path: CondId,
    replace_hi_way: CondId,
}

/// Result of one D-cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DCacheAccess {
    /// Whether the access hit.
    pub hit: bool,
    /// Extra cycles charged.
    pub cycles: u64,
}

/// The data cache.
#[derive(Debug)]
pub struct DCache {
    cfg: DCacheConfig,
    meta: Vec<LineMeta>,
    lru: Vec<u8>,
    store_buffer: Vec<u64>, // line addresses of pending stores
    ids: Ids,
}

impl DCache {
    /// Builds the cache and registers its coverage points.
    pub fn new(cfg: DCacheConfig, prefix: &str, b: &mut SpaceBuilder) -> DCache {
        assert!(cfg.sets.is_power_of_two() && cfg.line_bytes.is_power_of_two());
        let ids = Ids {
            hit_way: b.register_array(&format!("{prefix}.hit_way"), cfg.ways, PointKind::Condition),
            miss: b.register(format!("{prefix}.miss"), PointKind::Condition),
            writeback_dirty: b.register(format!("{prefix}.writeback_dirty"), PointKind::Condition),
            store_marks_dirty: b
                .register(format!("{prefix}.store_marks_dirty"), PointKind::Condition),
            sb_forward: b.register(format!("{prefix}.sb_forward"), PointKind::Condition),
            sb_full_stall: b.register(format!("{prefix}.sb_full"), PointKind::Condition),
            amo_path: b.register(format!("{prefix}.amo_path"), PointKind::MuxSelect),
            replace_hi_way: b.register(format!("{prefix}.replace_hi_way"), PointKind::MuxSelect),
        };
        DCache {
            cfg,
            meta: vec![LineMeta::default(); cfg.sets * cfg.ways],
            lru: vec![0; cfg.sets],
            store_buffer: Vec::new(),
            ids,
        }
    }

    fn set_index(&self, addr: u64) -> usize {
        ((addr / self.cfg.line_bytes) as usize) & (self.cfg.sets - 1)
    }

    fn tag_of(&self, addr: u64) -> u64 {
        addr / self.cfg.line_bytes / self.cfg.sets as u64
    }

    /// Power-on reset (coverage registration is preserved).
    pub fn reset(&mut self) {
        self.meta.fill(LineMeta::default());
        self.lru.fill(0);
        self.store_buffer.clear();
    }

    /// Performs one access for timing/coverage purposes.
    pub fn access(
        &mut self,
        addr: u64,
        is_store: bool,
        is_amo: bool,
        cov: &mut CovMap,
    ) -> DCacheAccess {
        cover!(cov, self.ids.amo_path, is_amo);
        let line_addr = addr / self.cfg.line_bytes;
        let set = self.set_index(addr);
        let tag = self.tag_of(addr);

        // Store-buffer forwarding for loads.
        if !is_store {
            let fwd = self.store_buffer.contains(&line_addr);
            cover!(cov, self.ids.sb_forward, fwd);
        }
        if is_store {
            let full = self.store_buffer.len() >= self.cfg.store_buffer_depth;
            if cover!(cov, self.ids.sb_full_stall, full) {
                self.store_buffer.clear(); // drain
            }
            self.store_buffer.push(line_addr);
            if self.store_buffer.len() > self.cfg.store_buffer_depth {
                self.store_buffer.remove(0);
            }
        }

        let mut hit_way = None;
        for way in 0..self.cfg.ways {
            let line = self.meta[set * self.cfg.ways + way];
            if cover!(cov, self.ids.hit_way[way], line.valid && line.tag == tag) {
                hit_way = Some(way);
            }
        }
        if let Some(way) = hit_way {
            cov.hit(self.ids.miss, false);
            let line = &mut self.meta[set * self.cfg.ways + way];
            cover!(cov, self.ids.store_marks_dirty, is_store && !line.dirty);
            if is_store {
                line.dirty = true;
            }
            self.lru[set] = way as u8;
            return DCacheAccess { hit: true, cycles: 0 };
        }

        cov.hit(self.ids.miss, true);
        let victim = (self.lru[set] as usize + 1) % self.cfg.ways.max(1);
        cover!(cov, self.ids.replace_hi_way, victim >= self.cfg.ways / 2);
        let mut cycles = self.cfg.miss_penalty;
        {
            let line = &mut self.meta[set * self.cfg.ways + victim];
            if cover!(cov, self.ids.writeback_dirty, line.valid && line.dirty) {
                cycles += self.cfg.writeback_penalty;
            }
            line.tag = tag;
            line.valid = true;
            line.dirty = is_store;
        }
        if is_store {
            cov.hit(self.ids.store_marks_dirty, true);
        }
        self.lru[set] = victim as u8;
        DCacheAccess { hit: false, cycles }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (DCache, CovMap) {
        let mut b = SpaceBuilder::new("dcache-test");
        let dc = DCache::new(DCacheConfig::default(), "dc", &mut b);
        let space = b.build();
        let cov = CovMap::new(&space);
        (dc, cov)
    }

    #[test]
    fn miss_then_hit() {
        let (mut dc, mut cov) = setup();
        let a = 0x8000_0000;
        let first = dc.access(a, false, false, &mut cov);
        assert!(!first.hit);
        assert!(first.cycles > 0);
        let second = dc.access(a, false, false, &mut cov);
        assert!(second.hit);
        assert_eq!(second.cycles, 0);
    }

    #[test]
    fn dirty_victim_costs_writeback() {
        let (mut dc, mut cov) = setup();
        let stride = 16 * 64; // same set
                              // Fill all 4 ways with dirty lines.
        for i in 0..4u64 {
            dc.access(0x8000_0000 + i * stride, true, false, &mut cov);
        }
        // Fifth line evicts a dirty victim.
        let miss = dc.access(0x8000_0000 + 4 * stride, false, false, &mut cov);
        assert!(!miss.hit);
        assert!(miss.cycles > DCacheConfig::default().miss_penalty);
    }

    #[test]
    fn clean_victim_is_cheaper() {
        let (mut dc, mut cov) = setup();
        let stride = 16 * 64;
        for i in 0..4u64 {
            dc.access(0x8000_0000 + i * stride, false, false, &mut cov);
        }
        let miss = dc.access(0x8000_0000 + 4 * stride, false, false, &mut cov);
        assert_eq!(miss.cycles, DCacheConfig::default().miss_penalty);
    }

    #[test]
    fn store_buffer_forwarding_condition_observed() {
        let (mut dc, mut cov) = setup();
        let a = 0x8000_0100;
        dc.access(a, true, false, &mut cov);
        dc.access(a, false, false, &mut cov); // load right after store: forward
        assert!(cov.is_covered(dc.ids.sb_forward, true));
    }
}
