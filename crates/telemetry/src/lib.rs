//! Low-overhead instrumentation for campaigns and fleets: a metrics
//! registry, a span/event tracer, and two exporters — with a hard
//! neutrality contract.
//!
//! Everything hangs off a [`TelemetrySink`], a cheaply clonable handle
//! that is either *enabled* (backed by a shared registry + per-thread
//! event rings) or *disabled* (a `None`; every operation is a single
//! branch). Structured code paths thread a sink explicitly
//! (`CampaignBuilder::telemetry(...)`, `FleetConfig::telemetry`); free
//! functions deep in the durability layer (`persist`, `faults`) and
//! out-of-process spool workers report through the process-global sink
//! installed with [`install_global`].
//!
//! # Neutrality contract
//!
//! Telemetry observes, it never participates:
//!
//! * it must never touch campaign RNG streams, scheduler decisions, or
//!   snapshot content — a campaign run with any sink (or none) stays
//!   `json_canonical`-bit-identical;
//! * wall-clock readings exist **only** in telemetry output (events,
//!   histograms), never in campaign results;
//! * telemetry file writes do **not** go through the
//!   `chatfuzz::faults::atomic_write` choke point, so they cannot
//!   consume fault-plan decisions or shift persist-op counters;
//! * the disabled path is a handful of branches/atomic no-ops — the
//!   `throughput --check` gate measures an enabled hot path within 3%
//!   of disabled rather than assuming it.
//!
//! # Metric naming scheme
//!
//! `chatfuzz_<area>_<name>[_<unit>][_total]`, Prometheus-style:
//! `_total` for monotone counters, `_us` for microsecond histograms,
//! bare names for gauges. The canonical names live in [`names`]:
//!
//! | metric | type | meaning |
//! |---|---|---|
//! | `chatfuzz_campaign_tests_total` | counter | tests executed |
//! | `chatfuzz_campaign_cycles_total` | counter | DUT cycles simulated |
//! | `chatfuzz_campaign_coverage_bins` | gauge | covered bins right now |
//! | `chatfuzz_campaign_mismatches_total` | counter | mismatching tests seen |
//! | `chatfuzz_campaign_batch_latency_us` | histogram | wall clock per batch |
//! | `chatfuzz_campaign_lm_tokens_total` | counter | instructions sampled by the LM arm |
//! | `chatfuzz_campaign_lm_publish_epochs` | gauge | actor weight-publish epochs |
//! | `chatfuzz_persist_write_us` | histogram | snapshot/checkpoint write duration |
//! | `chatfuzz_persist_writes_total` | counter | snapshot writes attempted |
//! | `chatfuzz_persist_recover_us` | histogram | `load_latest_valid` duration |
//! | `chatfuzz_persist_checksum_failures_total` | counter | corrupt documents stepped over |
//! | `chatfuzz_persist_quarantined_total` | counter | corpses renamed aside |
//! | `chatfuzz_faults_injected_total` | counter | fault-plan decisions that fired |
//! | `chatfuzz_fleet_heartbeat_gap_us` | histogram | gap between a lease's heartbeats |
//! | `chatfuzz_fleet_leases_issued_total` | counter | lease dispatches (incl. reissues) |
//! | `chatfuzz_fleet_leases_revoked_total` | counter | heartbeat-deadline revocations |
//! | `chatfuzz_fleet_leases_quarantined_total` | counter | terminally failed leases |
//! | `chatfuzz_fleet_merge_us` | histogram | merge + distill + re-split duration |
//! | `chatfuzz_fleet_phase_dispatch_us_total` | counter | cumulative lease-issue wall clock |
//! | `chatfuzz_fleet_phase_execute_us_total` | counter | cumulative worker-execution wall clock |
//! | `chatfuzz_fleet_phase_merge_us_total` | counter | cumulative merge wall clock |
//! | `chatfuzz_fleet_phase_idle_us_total` | counter | cumulative idle-poll wall clock |
//! | `chatfuzz_telemetry_events_dropped_total` | counter | ring-buffer drop-oldest evictions |
//!
//! # Tracer
//!
//! [`TelemetrySink::event`] records a structured [`Event`] (timestamp in
//! microseconds since the sink was created, a static `kind`, and typed
//! fields) into a bounded per-thread ring buffer. A full ring drops its
//! **oldest** event and bumps the drop counter, which is itself exported
//! as `chatfuzz_telemetry_events_dropped_total` — overload is visible,
//! never silent. A collector ([`TelemetrySink::drain_events`] /
//! [`TelemetrySink::flush_trace`]) empties every thread's ring and
//! merges the events in timestamp order.
//!
//! # Exporter formats
//!
//! * **JSONL timeline** ([`TelemetrySink::trace_to`] +
//!   [`flush_trace`](TelemetrySink::flush_trace)): one event per line,
//!   `{"ts_us":…,"kind":"…",…fields…}`, appended in complete lines
//!   only. A crash can tear at most the final line, which readers skip —
//!   the file is resume-safe the same way the spool artefacts are, and
//!   callers scope the filename by lease/attempt stem for the same
//!   reason.
//! * **Prometheus text exposition**
//!   ([`TelemetrySink::render_prometheus`] /
//!   [`write_prometheus`](TelemetrySink::write_prometheus)): the classic
//!   `# TYPE` + sample lines format, written atomically (temp +
//!   rename) on demand. Histograms are log₂-bucketed: bucket *i* holds
//!   values in `[2^(i-1), 2^i)`.

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

/// Canonical metric names (see the crate docs for the full table).
pub mod names {
    pub const CAMPAIGN_TESTS: &str = "chatfuzz_campaign_tests_total";
    pub const CAMPAIGN_CYCLES: &str = "chatfuzz_campaign_cycles_total";
    pub const CAMPAIGN_COVERAGE_BINS: &str = "chatfuzz_campaign_coverage_bins";
    pub const CAMPAIGN_MISMATCHES: &str = "chatfuzz_campaign_mismatches_total";
    pub const CAMPAIGN_BATCH_LATENCY_US: &str = "chatfuzz_campaign_batch_latency_us";
    pub const CAMPAIGN_LM_TOKENS: &str = "chatfuzz_campaign_lm_tokens_total";
    pub const CAMPAIGN_LM_PUBLISH_EPOCHS: &str = "chatfuzz_campaign_lm_publish_epochs";
    pub const PERSIST_WRITE_US: &str = "chatfuzz_persist_write_us";
    pub const PERSIST_WRITES: &str = "chatfuzz_persist_writes_total";
    pub const PERSIST_RECOVER_US: &str = "chatfuzz_persist_recover_us";
    pub const PERSIST_CHECKSUM_FAILURES: &str = "chatfuzz_persist_checksum_failures_total";
    pub const PERSIST_QUARANTINED: &str = "chatfuzz_persist_quarantined_total";
    pub const FAULTS_INJECTED: &str = "chatfuzz_faults_injected_total";
    pub const FLEET_HEARTBEAT_GAP_US: &str = "chatfuzz_fleet_heartbeat_gap_us";
    pub const FLEET_LEASES_ISSUED: &str = "chatfuzz_fleet_leases_issued_total";
    pub const FLEET_LEASES_REVOKED: &str = "chatfuzz_fleet_leases_revoked_total";
    pub const FLEET_LEASES_QUARANTINED: &str = "chatfuzz_fleet_leases_quarantined_total";
    pub const FLEET_MERGE_US: &str = "chatfuzz_fleet_merge_us";
    pub const FLEET_PHASE_DISPATCH_US: &str = "chatfuzz_fleet_phase_dispatch_us_total";
    pub const FLEET_PHASE_EXECUTE_US: &str = "chatfuzz_fleet_phase_execute_us_total";
    pub const FLEET_PHASE_MERGE_US: &str = "chatfuzz_fleet_phase_merge_us_total";
    pub const FLEET_PHASE_IDLE_US: &str = "chatfuzz_fleet_phase_idle_us_total";
    pub const EVENTS_DROPPED: &str = "chatfuzz_telemetry_events_dropped_total";
}

/// Default per-thread event-ring capacity.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// A typed field value carried by an [`Event`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// One structured timeline event: a microsecond timestamp relative to
/// the sink's creation, a static kind, and typed fields.
#[derive(Debug, Clone)]
pub struct Event {
    pub ts_us: u64,
    pub kind: &'static str,
    pub fields: Vec<(&'static str, Value)>,
}

fn escape_json(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

impl Event {
    /// Renders the event as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64);
        let _ = write!(out, "{{\"ts_us\":{},\"kind\":\"{}\"", self.ts_us, self.kind);
        for (key, value) in &self.fields {
            let _ = write!(out, ",\"{key}\":");
            match value {
                Value::U64(v) => {
                    let _ = write!(out, "{v}");
                }
                Value::I64(v) => {
                    let _ = write!(out, "{v}");
                }
                Value::F64(v) if v.is_finite() => {
                    let _ = write!(out, "{v}");
                }
                Value::F64(_) => out.push_str("null"),
                Value::Str(s) => {
                    out.push('"');
                    escape_json(&mut out, s);
                    out.push('"');
                }
            }
        }
        out.push('}');
        out
    }
}

/// A log₂-bucketed histogram: bucket `i` counts values in
/// `[2^(i-1), 2^i)` (bucket 0 holds exactly the value 0).
struct Histogram {
    buckets: [AtomicU64; 65],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    fn observe(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            sum: self.sum.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
        }
    }
}

/// The bucket a value lands in: 0 for 0, else the number of significant
/// bits (so 1→1, 2..4→2..3, 1024→11, …).
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// A read-only copy of a histogram's state.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Raw (non-cumulative) per-bucket counts, indexed by
    /// [`bucket_index`].
    pub buckets: Vec<u64>,
    pub sum: u64,
    pub count: u64,
}

impl HistogramSnapshot {
    /// Mean observed value, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

enum Metric {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicI64>),
    Histogram(Arc<Histogram>),
}

#[derive(Default)]
struct Ring {
    events: Mutex<VecDeque<Event>>,
}

struct Inner {
    id: usize,
    epoch: Instant,
    ring_capacity: usize,
    metrics: RwLock<BTreeMap<&'static str, Metric>>,
    rings: Mutex<Vec<Arc<Ring>>>,
    dropped: AtomicU64,
    trace: Mutex<Option<File>>,
    trace_path: Mutex<Option<PathBuf>>,
}

static NEXT_SINK_ID: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static TL_RINGS: RefCell<Vec<(usize, Arc<Ring>)>> = const { RefCell::new(Vec::new()) };
}

/// The instrumentation handle. Cloning is cheap (an `Arc` bump for
/// enabled sinks, a copy of `None` for disabled ones); every
/// operation on a disabled sink returns after a single branch.
#[derive(Clone)]
pub struct TelemetrySink {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for TelemetrySink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.inner.is_some() {
            "TelemetrySink(enabled)"
        } else {
            "TelemetrySink(disabled)"
        })
    }
}

impl Default for TelemetrySink {
    fn default() -> Self {
        TelemetrySink::disabled()
    }
}

impl TelemetrySink {
    /// The no-op sink: every operation is a branch on `None`.
    pub const fn disabled() -> Self {
        TelemetrySink { inner: None }
    }

    /// An enabled sink with the default per-thread ring capacity.
    pub fn enabled() -> Self {
        Self::with_ring_capacity(DEFAULT_RING_CAPACITY)
    }

    /// An enabled sink whose per-thread event rings hold at most
    /// `capacity` events (overflow drops the oldest and counts it).
    pub fn with_ring_capacity(capacity: usize) -> Self {
        TelemetrySink {
            inner: Some(Arc::new(Inner {
                id: NEXT_SINK_ID.fetch_add(1, Ordering::Relaxed),
                epoch: Instant::now(),
                ring_capacity: capacity.max(1),
                metrics: RwLock::new(BTreeMap::new()),
                rings: Mutex::new(Vec::new()),
                dropped: AtomicU64::new(0),
                trace: Mutex::new(None),
                trace_path: Mutex::new(None),
            })),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Microseconds since this sink was created (0 when disabled).
    pub fn elapsed_us(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.epoch.elapsed().as_micros() as u64,
            None => 0,
        }
    }

    /// `Some(Instant::now())` when enabled, `None` when disabled —
    /// the span-start half of [`observe_since`](Self::observe_since).
    /// Keeping the clock read behind the branch is what makes the
    /// disabled path free.
    pub fn now(&self) -> Option<Instant> {
        self.inner.as_ref().map(|_| Instant::now())
    }

    /// Closes a span opened with [`now`](Self::now): observes the
    /// elapsed microseconds into histogram `name` and returns them
    /// (0 when the sink is disabled or `start` is `None`).
    pub fn observe_since(&self, name: &'static str, start: Option<Instant>) -> u64 {
        match (&self.inner, start) {
            (Some(_), Some(start)) => {
                let us = start.elapsed().as_micros() as u64;
                self.observe(name, us);
                us
            }
            _ => 0,
        }
    }

    fn with_counter(&self, name: &'static str) -> Option<Arc<AtomicU64>> {
        let inner = self.inner.as_ref()?;
        if let Some(Metric::Counter(c)) = inner.metrics.read().unwrap().get(name) {
            return Some(c.clone());
        }
        let mut metrics = inner.metrics.write().unwrap();
        match metrics.entry(name).or_insert_with(|| Metric::Counter(Arc::new(AtomicU64::new(0)))) {
            Metric::Counter(c) => Some(c.clone()),
            _ => None,
        }
    }

    /// Adds `delta` to the named monotone counter.
    pub fn counter_add(&self, name: &'static str, delta: u64) {
        if let Some(counter) = self.with_counter(name) {
            counter.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Sets the named gauge to `value`.
    pub fn gauge_set(&self, name: &'static str, value: i64) {
        let Some(inner) = self.inner.as_ref() else { return };
        if let Some(Metric::Gauge(g)) = inner.metrics.read().unwrap().get(name) {
            g.store(value, Ordering::Relaxed);
            return;
        }
        let mut metrics = inner.metrics.write().unwrap();
        if let Metric::Gauge(g) =
            metrics.entry(name).or_insert_with(|| Metric::Gauge(Arc::new(AtomicI64::new(0))))
        {
            g.store(value, Ordering::Relaxed);
        }
    }

    /// Observes `value` into the named log₂-bucketed histogram.
    pub fn observe(&self, name: &'static str, value: u64) {
        let Some(inner) = self.inner.as_ref() else { return };
        if let Some(Metric::Histogram(h)) = inner.metrics.read().unwrap().get(name) {
            h.observe(value);
            return;
        }
        let mut metrics = inner.metrics.write().unwrap();
        if let Metric::Histogram(h) =
            metrics.entry(name).or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            h.observe(value);
        }
    }

    /// Records a structured timeline event into this thread's ring.
    /// A full ring evicts its oldest event and bumps the drop counter
    /// (exported as `chatfuzz_telemetry_events_dropped_total`).
    pub fn event(&self, kind: &'static str, fields: Vec<(&'static str, Value)>) {
        let Some(inner) = self.inner.as_ref() else { return };
        let event = Event { ts_us: inner.epoch.elapsed().as_micros() as u64, kind, fields };
        let ring = thread_ring(inner);
        let mut events = ring.events.lock().unwrap();
        if events.len() >= inner.ring_capacity {
            events.pop_front();
            inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
        events.push_back(event);
    }

    /// Collector: empties every thread's ring and returns the events
    /// merged in timestamp order.
    pub fn drain_events(&self) -> Vec<Event> {
        let Some(inner) = self.inner.as_ref() else { return Vec::new() };
        let rings = inner.rings.lock().unwrap();
        let mut all = Vec::new();
        for ring in rings.iter() {
            all.extend(ring.events.lock().unwrap().drain(..));
        }
        drop(rings);
        all.sort_by_key(|e| e.ts_us);
        all
    }

    /// Events evicted from full rings since the sink was created.
    pub fn dropped_events(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.dropped.load(Ordering::Relaxed),
            None => 0,
        }
    }

    /// Current value of a counter (the drop counter included), or 0.
    pub fn counter_value(&self, name: &str) -> u64 {
        let Some(inner) = self.inner.as_ref() else { return 0 };
        if name == names::EVENTS_DROPPED {
            return inner.dropped.load(Ordering::Relaxed);
        }
        match inner.metrics.read().unwrap().get(name) {
            Some(Metric::Counter(c)) => c.load(Ordering::Relaxed),
            _ => 0,
        }
    }

    /// Current value of a gauge, or 0.
    pub fn gauge_value(&self, name: &str) -> i64 {
        let Some(inner) = self.inner.as_ref() else { return 0 };
        match inner.metrics.read().unwrap().get(name) {
            Some(Metric::Gauge(g)) => g.load(Ordering::Relaxed),
            _ => 0,
        }
    }

    /// A read-only snapshot of the named histogram, if it exists.
    pub fn histogram(&self, name: &str) -> Option<HistogramSnapshot> {
        let inner = self.inner.as_ref()?;
        match inner.metrics.read().unwrap().get(name) {
            Some(Metric::Histogram(h)) => Some(h.snapshot()),
            _ => None,
        }
    }

    /// Renders every metric in the Prometheus text exposition format.
    /// The ring-buffer drop counter is always included, so overload is
    /// visible even if nothing else was recorded.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let Some(inner) = self.inner.as_ref() else { return out };
        let metrics = inner.metrics.read().unwrap();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "# TYPE {name} counter");
                    let _ = writeln!(out, "{name} {}", c.load(Ordering::Relaxed));
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "# TYPE {name} gauge");
                    let _ = writeln!(out, "{name} {}", g.load(Ordering::Relaxed));
                }
                Metric::Histogram(h) => {
                    let snap = h.snapshot();
                    let _ = writeln!(out, "# TYPE {name} histogram");
                    let mut cumulative = 0u64;
                    let top = snap.buckets.iter().rposition(|&c| c > 0).unwrap_or(0);
                    for (i, count) in snap.buckets.iter().enumerate().take(top + 1) {
                        cumulative += count;
                        // Bucket i spans [2^(i-1), 2^i): every value in
                        // it is <= 2^i - 1.
                        let le = if i >= 64 { u64::MAX } else { (1u64 << i) - 1 };
                        let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
                    }
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", snap.count);
                    let _ = writeln!(out, "{name}_sum {}", snap.sum);
                    let _ = writeln!(out, "{name}_count {}", snap.count);
                }
            }
        }
        drop(metrics);
        let dropped = names::EVENTS_DROPPED;
        let _ = writeln!(out, "# TYPE {dropped} counter");
        let _ = writeln!(out, "{dropped} {}", inner.dropped.load(Ordering::Relaxed));
        out
    }

    /// Attaches a JSONL trace file (created/appended) that
    /// [`flush_trace`](Self::flush_trace) drains into. Telemetry writes
    /// its own files — deliberately *not* through the fault-injected
    /// `atomic_write` choke point, so tracing can never perturb a fault
    /// plan's decision stream.
    pub fn trace_to(&self, path: &Path) -> io::Result<()> {
        let Some(inner) = self.inner.as_ref() else { return Ok(()) };
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        *inner.trace.lock().unwrap() = Some(file);
        *inner.trace_path.lock().unwrap() = Some(path.to_path_buf());
        Ok(())
    }

    /// The path attached with [`trace_to`](Self::trace_to), if any.
    pub fn trace_path(&self) -> Option<PathBuf> {
        self.inner.as_ref()?.trace_path.lock().unwrap().clone()
    }

    /// Drains every ring into the attached JSONL trace file, one
    /// complete line per event, and returns how many were written.
    /// Without an attached file this is a no-op that leaves the rings
    /// untouched. Lines are appended whole and flushed, so a crash can
    /// tear at most the trailing line — readers skip it on resume.
    pub fn flush_trace(&self) -> io::Result<usize> {
        let Some(inner) = self.inner.as_ref() else { return Ok(0) };
        let mut guard = inner.trace.lock().unwrap();
        let Some(file) = guard.as_mut() else { return Ok(0) };
        let events = {
            let rings = inner.rings.lock().unwrap();
            let mut all = Vec::new();
            for ring in rings.iter() {
                all.extend(ring.events.lock().unwrap().drain(..));
            }
            all
        };
        let mut sorted = events;
        sorted.sort_by_key(|e| e.ts_us);
        let mut buf = String::new();
        for event in &sorted {
            buf.push_str(&event.to_json());
            buf.push('\n');
        }
        file.write_all(buf.as_bytes())?;
        file.flush()?;
        Ok(sorted.len())
    }

    /// Writes the Prometheus exposition atomically (temp + rename).
    pub fn write_prometheus(&self, path: &Path) -> io::Result<()> {
        if self.inner.is_none() {
            return Ok(());
        }
        let rendered = self.render_prometheus();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        std::fs::write(&tmp, rendered.as_bytes())?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }
}

/// This thread's ring for `inner`, registering a fresh one on first
/// use. Dead sinks' cached entries are pruned opportunistically.
fn thread_ring(inner: &Arc<Inner>) -> Arc<Ring> {
    TL_RINGS.with(|cell| {
        let mut cached = cell.borrow_mut();
        if let Some((_, ring)) = cached.iter().find(|(id, _)| *id == inner.id) {
            return ring.clone();
        }
        if cached.len() >= 32 {
            // Entries whose only other owner was a dropped sink.
            cached.retain(|(_, ring)| Arc::strong_count(ring) > 2);
        }
        let ring = Arc::new(Ring::default());
        inner.rings.lock().unwrap().push(ring.clone());
        cached.push((inner.id, ring.clone()));
        ring
    })
}

static GLOBAL: OnceLock<TelemetrySink> = OnceLock::new();
static GLOBAL_DISABLED: TelemetrySink = TelemetrySink::disabled();

/// Installs the process-global sink used by code that cannot thread a
/// handle (the persist/faults free functions, spool worker processes).
/// First install wins; returns whether this call installed it.
pub fn install_global(sink: TelemetrySink) -> bool {
    GLOBAL.set(sink).is_ok()
}

/// The process-global sink; a disabled sink until
/// [`install_global`] is called.
pub fn global() -> &'static TelemetrySink {
    GLOBAL.get().unwrap_or(&GLOBAL_DISABLED)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);

        let sink = TelemetrySink::enabled();
        for v in [0u64, 1, 2, 3, 4, 1023, 1024] {
            sink.observe("chatfuzz_test_us", v);
        }
        let snap = sink.histogram("chatfuzz_test_us").expect("histogram exists");
        assert_eq!(snap.count, 7);
        assert_eq!(snap.sum, 2057);
        assert_eq!(snap.buckets[0], 1); // 0
        assert_eq!(snap.buckets[1], 1); // 1
        assert_eq!(snap.buckets[2], 2); // 2, 3
        assert_eq!(snap.buckets[3], 1); // 4
        assert_eq!(snap.buckets[10], 1); // 1023
        assert_eq!(snap.buckets[11], 1); // 1024
        let text = sink.render_prometheus();
        assert!(text.contains("# TYPE chatfuzz_test_us histogram"));
        assert!(text.contains("chatfuzz_test_us_bucket{le=\"0\"} 1"));
        assert!(text.contains("chatfuzz_test_us_bucket{le=\"3\"} 4"));
        assert!(text.contains("chatfuzz_test_us_bucket{le=\"+Inf\"} 7"));
        assert!(text.contains("chatfuzz_test_us_sum 2057"));
        assert!(text.contains("chatfuzz_test_us_count 7"));
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts() {
        let sink = TelemetrySink::with_ring_capacity(4);
        for i in 0..10u64 {
            sink.event("tick", vec![("i", i.into())]);
        }
        assert_eq!(sink.dropped_events(), 6);
        // The drop counter is a first-class metric of its own.
        assert_eq!(sink.counter_value(names::EVENTS_DROPPED), 6);
        assert!(sink.render_prometheus().contains("chatfuzz_telemetry_events_dropped_total 6"));
        let events = sink.drain_events();
        assert_eq!(events.len(), 4, "capacity bounds the ring");
        let kept: Vec<u64> = events
            .iter()
            .map(|e| match e.fields[0].1 {
                Value::U64(v) => v,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(kept, vec![6, 7, 8, 9], "oldest events were evicted first");
        assert!(sink.drain_events().is_empty(), "drain empties the ring");
    }

    #[test]
    fn counters_and_gauges_accumulate() {
        let sink = TelemetrySink::enabled();
        sink.counter_add(names::CAMPAIGN_TESTS, 16);
        sink.counter_add(names::CAMPAIGN_TESTS, 16);
        sink.gauge_set(names::CAMPAIGN_COVERAGE_BINS, 42);
        sink.gauge_set(names::CAMPAIGN_COVERAGE_BINS, 57);
        assert_eq!(sink.counter_value(names::CAMPAIGN_TESTS), 32);
        assert_eq!(sink.gauge_value(names::CAMPAIGN_COVERAGE_BINS), 57);
        let text = sink.render_prometheus();
        assert!(text.contains("# TYPE chatfuzz_campaign_tests_total counter"));
        assert!(text.contains("chatfuzz_campaign_tests_total 32"));
        assert!(text.contains("chatfuzz_campaign_coverage_bins 57"));
    }

    #[test]
    fn disabled_sink_is_inert() {
        let sink = TelemetrySink::disabled();
        assert!(!sink.is_enabled());
        assert!(sink.now().is_none());
        sink.counter_add(names::CAMPAIGN_TESTS, 5);
        sink.gauge_set(names::CAMPAIGN_COVERAGE_BINS, 5);
        sink.observe(names::CAMPAIGN_BATCH_LATENCY_US, 5);
        sink.event("noop", vec![]);
        assert_eq!(sink.counter_value(names::CAMPAIGN_TESTS), 0);
        assert!(sink.drain_events().is_empty());
        assert!(sink.render_prometheus().is_empty());
        assert_eq!(sink.flush_trace().unwrap(), 0);
    }

    #[test]
    fn events_merge_across_threads_in_timestamp_order() {
        let sink = TelemetrySink::enabled();
        sink.event("main", vec![("n", 0u64.into())]);
        let clone = sink.clone();
        std::thread::spawn(move || {
            clone.event("worker", vec![("n", 1u64.into())]);
        })
        .join()
        .unwrap();
        sink.event("main", vec![("n", 2u64.into())]);
        let events = sink.drain_events();
        assert_eq!(events.len(), 3);
        assert!(events.windows(2).all(|w| w[0].ts_us <= w[1].ts_us));
    }

    #[test]
    fn jsonl_trace_appends_complete_lines() {
        let dir = std::env::temp_dir().join(format!("chatfuzz-telemetry-{}", std::process::id()));
        let path = dir.join("trace.jsonl");
        let _ = std::fs::remove_file(&path);
        let sink = TelemetrySink::enabled();
        sink.trace_to(&path).expect("attach trace");
        sink.event("batch", vec![("arm", "random".into()), ("tests", 16u64.into())]);
        sink.event("odd", vec![("msg", "quote \" and\nnewline".into())]);
        assert_eq!(sink.flush_trace().unwrap(), 2);
        sink.event("late", vec![]);
        assert_eq!(sink.flush_trace().unwrap(), 1, "later flushes append");
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("{\"ts_us\":"));
        assert!(lines[0].contains("\"kind\":\"batch\""));
        assert!(lines[0].contains("\"arm\":\"random\""));
        assert!(lines[0].contains("\"tests\":16"));
        assert!(lines[1].contains("quote \\\" and\\nnewline"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn prometheus_dump_is_atomic() {
        let dir =
            std::env::temp_dir().join(format!("chatfuzz-telemetry-prom-{}", std::process::id()));
        let path = dir.join("metrics.prom");
        let sink = TelemetrySink::enabled();
        sink.counter_add(names::CAMPAIGN_TESTS, 7);
        sink.write_prometheus(&path).expect("write dump");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("chatfuzz_campaign_tests_total 7"));
        assert!(!path.with_extension("prom.tmp").exists(), "temp renamed away");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn global_defaults_to_disabled() {
        // install_global is first-wins and process-wide, so this test
        // only asserts the default; installation is covered by the
        // cross-process integration suite.
        assert!(!global().is_enabled() || GLOBAL.get().is_some());
    }
}
