//! Synthetic machine-language training corpus (paper §III-A).
//!
//! The paper statically extracts ~500 K per-function machine-code snippets
//! from a compiled Linux kernel; the property it relies on is that each
//! snippet is a self-contained unit with strong **instruction
//! inter-dependency** (data flow through registers and memory, loops,
//! compare-and-branch idioms, privilege-handling sequences). Compiling a
//! kernel is out of scope here, so this crate *manufactures* that property
//! directly: a seeded generator emits function-shaped RV64 bodies composed
//! of compiler-like idioms — stack prologue/epilogue, dependent arithmetic
//! chains, counted loops, guarded blocks, memory round-trips, atomics,
//! CSR accesses, a full trap-handler round-trip template, and occasional
//! self-modifying-code patterns (with and without `fence.i` — the BUG1
//! trigger).
//!
//! The ablation hook [`shuffle_bodies`] destroys the inter-dependency while
//! keeping the instruction multiset identical (experiment A3 in DESIGN.md).
//!
//! # Examples
//!
//! ```
//! use chatfuzz_corpus::{CorpusConfig, CorpusGenerator};
//!
//! let mut generator = CorpusGenerator::new(CorpusConfig::default());
//! let functions = generator.generate_words(8);
//! assert_eq!(functions.len(), 8);
//! for f in &functions {
//!     for w in f {
//!         chatfuzz_isa::decode(*w).unwrap(); // every word decodes
//!     }
//! }
//! ```

use chatfuzz_isa::asm::Assembler;
use chatfuzz_isa::{
    encode, AluOp, AmoOp, BranchCond, Csr, CsrOp, CsrSrc, Instr, MemWidth, MulDivOp, Reg, SystemOp,
};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Corpus-generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct CorpusConfig {
    /// RNG seed (the corpus is fully reproducible).
    pub seed: u64,
    /// Minimum instructions per function body.
    pub min_body: usize,
    /// Maximum instructions per function body.
    pub max_body: usize,
    /// Base address functions assume for scratch memory (must be RAM).
    pub scratch_base: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig { seed: 0xC0FFEE, min_body: 8, max_body: 28, scratch_base: 0x8008_0000 }
    }
}

/// Seeded generator of function-shaped instruction sequences.
#[derive(Debug)]
pub struct CorpusGenerator {
    cfg: CorpusConfig,
    rng: ChaCha8Rng,
    label_counter: usize,
}

impl CorpusGenerator {
    /// Creates a generator with the given configuration.
    pub fn new(cfg: CorpusConfig) -> CorpusGenerator {
        CorpusGenerator { cfg, rng: ChaCha8Rng::seed_from_u64(cfg.seed), label_counter: 0 }
    }

    /// Generates `n` function bodies as decoded instructions.
    pub fn generate(&mut self, n: usize) -> Vec<Vec<Instr>> {
        (0..n).map(|_| self.generate_function()).collect()
    }

    /// Generates `n` function bodies as encoded instruction words.
    pub fn generate_words(&mut self, n: usize) -> Vec<Vec<u32>> {
        self.generate(n)
            .iter()
            .map(|f| f.iter().map(|i| encode(i).expect("corpus emits encodable code")).collect())
            .collect()
    }

    fn fresh_label(&mut self, hint: &str) -> String {
        self.label_counter += 1;
        format!("{hint}_{}", self.label_counter)
    }

    /// One function: prologue, a run of idioms, epilogue.
    pub fn generate_function(&mut self) -> Vec<Instr> {
        let mut asm = Assembler::new();
        let mut live: Vec<Reg> = Vec::new();

        self.emit_prologue(&mut asm);
        // A base pointer into scratch memory is almost always live, like a
        // compiler's frame/global pointer.
        let base = Reg::new(8).unwrap(); // s0
        asm.li(base, self.cfg.scratch_base as i64 + i64::from(self.rng.gen_range(0..16)) * 8);
        live.push(base);

        let body_target = self.rng.gen_range(self.cfg.min_body..=self.cfg.max_body);
        while asm.len() < body_target {
            match self.rng.gen_range(0..100) {
                0..=21 => self.emit_arith_chain(&mut asm, &mut live),
                22..=35 => self.emit_counted_loop(&mut asm, &mut live),
                36..=46 => self.emit_memory_roundtrip(&mut asm, &mut live, base),
                47..=54 => self.emit_guarded_block(&mut asm, &mut live),
                55..=62 => self.emit_muldiv(&mut asm, &mut live),
                63..=69 => self.emit_atomic(&mut asm, &mut live, base),
                70..=76 => self.emit_csr_idiom(&mut asm, &mut live),
                77..=81 => self.emit_trap_roundtrip(&mut asm),
                82..=85 => self.emit_call(&mut asm, &mut live),
                86..=89 => self.emit_streaming_stores(&mut asm, &mut live, base),
                90..=93 => self.emit_fault_probe(&mut asm, &mut live, base),
                94..=96 => self.emit_div_corners(&mut asm, &mut live),
                _ => self.emit_smc(&mut asm, &mut live),
            }
        }
        // Occasionally end the function by descending to U- or S-mode and
        // exercising delegated traps there — the privilege-entangled tail
        // the paper's deep findings come from.
        let descended = if self.rng.gen_bool(0.25) {
            let to_supervisor = self.rng.gen_bool(0.5);
            self.emit_priv_descent(&mut asm, &mut live, base, to_supervisor);
            true
        } else {
            false
        };
        if descended {
            // Low-privilege code cannot restore the M-stack discipline;
            // terminate cleanly instead.
            asm.push(Instr::System(SystemOp::Wfi));
        } else {
            self.emit_epilogue(&mut asm);
        }
        asm.assemble().expect("corpus assembles")
    }

    fn emit_prologue(&mut self, asm: &mut Assembler) {
        let sp = Reg::SP;
        asm.push(Instr::OpImm { op: AluOp::Add, rd: sp, rs1: sp, imm: -32, word: false });
        asm.push(Instr::Store { width: MemWidth::D, rs2: Reg::RA, rs1: sp, offset: 24 });
        asm.push(Instr::Store {
            width: MemWidth::D,
            rs2: Reg::new(8).unwrap(),
            rs1: sp,
            offset: 16,
        });
    }

    fn emit_epilogue(&mut self, asm: &mut Assembler) {
        let sp = Reg::SP;
        asm.push(Instr::Load {
            width: MemWidth::D,
            signed: true,
            rd: Reg::RA,
            rs1: sp,
            offset: 24,
        });
        asm.push(Instr::Load {
            width: MemWidth::D,
            signed: true,
            rd: Reg::new(8).unwrap(),
            rs1: sp,
            offset: 16,
        });
        asm.push(Instr::OpImm { op: AluOp::Add, rd: sp, rs1: sp, imm: 32, word: false });
        if self.rng.gen_bool(0.8) {
            asm.push(Instr::Jalr { rd: Reg::X0, rs1: Reg::RA, offset: 0 }); // ret
        } else {
            asm.push(Instr::System(SystemOp::Wfi));
        }
    }

    fn pick_live(&mut self, live: &[Reg]) -> Reg {
        if live.is_empty() || self.rng.gen_bool(0.15) {
            Reg::X0
        } else {
            *live.choose(&mut self.rng).expect("non-empty")
        }
    }

    fn fresh_reg(&mut self, live: &mut Vec<Reg>) -> Reg {
        let candidates: Vec<Reg> = Reg::temps().chain(Reg::args()).collect();
        let r = *candidates.choose(&mut self.rng).expect("non-empty");
        if !live.contains(&r) {
            live.push(r);
        }
        r
    }

    /// Dependent arithmetic: each op consumes earlier results. A few
    /// percent of chains end by discarding a dependent result into `x0`
    /// (pseudo-random generated code does this; it is the paper's
    /// Finding-3 trigger sequence).
    fn emit_arith_chain(&mut self, asm: &mut Assembler, live: &mut Vec<Reg>) {
        if self.rng.gen_bool(0.12) {
            let rs1 = self.pick_live(live);
            let producer = self.fresh_reg(live);
            asm.push(Instr::OpImm {
                op: AluOp::Add,
                rd: producer,
                rs1,
                imm: self.rng.gen_range(-32..32),
                word: false,
            });
            asm.push(Instr::Op {
                op: AluOp::Add,
                rd: Reg::X0,
                rs1: producer,
                rs2: producer,
                word: false,
            });
        }
        let len = self.rng.gen_range(2..=4);
        for _ in 0..len {
            let rs1 = self.pick_live(live);
            let rd = self.fresh_reg(live);
            if self.rng.gen_bool(0.5) {
                let imm = self.rng.gen_range(-512..512);
                let ops = [AluOp::Add, AluOp::Xor, AluOp::Or, AluOp::And, AluOp::Slt];
                let op = *ops.choose(&mut self.rng).expect("non-empty");
                let word = op == AluOp::Add && self.rng.gen_bool(0.25);
                asm.push(Instr::OpImm { op, rd, rs1, imm, word });
            } else {
                let rs2 = self.pick_live(live);
                let ops = [
                    AluOp::Add,
                    AluOp::Sub,
                    AluOp::Sll,
                    AluOp::Srl,
                    AluOp::Sra,
                    AluOp::Xor,
                    AluOp::Sltu,
                ];
                let op = *ops.choose(&mut self.rng).expect("non-empty");
                let word = op.has_word_form() && self.rng.gen_bool(0.2);
                asm.push(Instr::Op { op, rd, rs1, rs2, word });
            }
        }
    }

    /// `li n; loop: body; addi n, n, -1; bne n, x0, loop`.
    ///
    /// Hot loops (up to 10 iterations) saturate the BHT counters and carry
    /// a never-taken guard inside the body so the not-taken side of the
    /// predictor state machine is exercised at a stable PC.
    fn emit_counted_loop(&mut self, asm: &mut Assembler, live: &mut Vec<Reg>) {
        let counter = self.fresh_reg(live);
        let mut acc = self.fresh_reg(live);
        if acc == counter {
            acc = Reg::new(28).unwrap(); // t3: guaranteed distinct fallback
        }
        let n = self.rng.gen_range(2..=10);
        let label = self.fresh_label("loop");
        asm.li(counter, n);
        asm.label(&label);
        let rs = self.pick_live(live);
        asm.push(Instr::Op { op: AluOp::Add, rd: acc, rs1: acc, rs2: rs, word: false });
        if self.rng.gen_bool(0.4) {
            // Never-taken guard: counter is non-zero inside the loop.
            let skip = self.fresh_label("nt");
            asm.branch_to(BranchCond::Eq, counter, Reg::X0, &skip);
            asm.push(Instr::OpImm { op: AluOp::Xor, rd: acc, rs1: acc, imm: 1, word: false });
            asm.label(&skip);
        }
        asm.push(Instr::OpImm { op: AluOp::Add, rd: counter, rs1: counter, imm: -1, word: false });
        asm.branch_to(BranchCond::Ne, counter, Reg::X0, &label);
    }

    /// A local call/return pair: exercises the return-address stack with a
    /// matched `jal ra` / `jalr x0, 0(ra)`.
    fn emit_call(&mut self, asm: &mut Assembler, live: &mut Vec<Reg>) {
        let callee = self.fresh_label("callee");
        let after = self.fresh_label("after");
        asm.jal_to(Reg::RA, &callee);
        // Return lands here; do one dependent op then skip the callee body.
        let rd = self.fresh_reg(live);
        asm.push(Instr::OpImm { op: AluOp::Add, rd, rs1: rd, imm: 3, word: false });
        asm.jal_to(Reg::X0, &after);
        asm.label(&callee);
        let rs = self.pick_live(live);
        asm.push(Instr::Op { op: AluOp::Xor, rd, rs1: rd, rs2: rs, word: false });
        asm.push(Instr::Jalr { rd: Reg::X0, rs1: Reg::RA, offset: 0 }); // ret
        asm.label(&after);
        asm.nop();
    }

    /// Strided stores across many cache lines (working-set growth, way
    /// conflicts, dirty evictions).
    fn emit_streaming_stores(&mut self, asm: &mut Assembler, live: &mut Vec<Reg>, base: Reg) {
        let src = self.pick_live(live);
        let lines = self.rng.gen_range(4..=8);
        let stride = 64 * self.rng.gen_range(1..=3);
        for i in 0..lines {
            let offset = i * stride + 8;
            if offset > 2047 {
                break;
            }
            asm.push(Instr::Store { width: MemWidth::D, rs2: src, rs1: base, offset });
        }
        let dst = self.fresh_reg(live);
        asm.push(Instr::Load { width: MemWidth::D, signed: true, rd: dst, rs1: base, offset: 8 });
    }

    /// Deliberate architectural corner cases: misaligned accesses,
    /// out-of-PMA accesses, misaligned jump targets, breakpoints — the
    /// fault surface the paper's generated tests keep poking (its Finding 1
    /// test cases are exactly simultaneous misaligned+faulting accesses).
    fn emit_fault_probe(&mut self, asm: &mut Assembler, live: &mut Vec<Reg>, base: Reg) {
        let rd = self.fresh_reg(live);
        match self.rng.gen_range(0..6) {
            // Misaligned load (in RAM): cause 4.
            0 => {
                let width = if self.rng.gen_bool(0.5) { MemWidth::W } else { MemWidth::H };
                asm.push(Instr::Load {
                    width,
                    signed: true,
                    rd,
                    rs1: base,
                    offset: self.rng.gen_range(0..4) * 2 + 1,
                });
            }
            // Misaligned store (in RAM): cause 6.
            1 => {
                let src = self.pick_live(live);
                asm.push(Instr::Store { width: MemWidth::W, rs2: src, rs1: base, offset: 2 });
            }
            // Access fault: low address, also misaligned half the time —
            // the Finding-1 double condition.
            2 => {
                let t = Reg::new(29).unwrap(); // t4
                let addr = if self.rng.gen_bool(0.5) { 0x103 } else { 0x100 };
                asm.li(t, addr);
                asm.push(Instr::Load { width: MemWidth::W, signed: false, rd, rs1: t, offset: 0 });
            }
            // Store access fault.
            3 => {
                let t = Reg::new(29).unwrap();
                asm.li(t, 0x41);
                asm.push(Instr::Store { width: MemWidth::D, rs2: base, rs1: t, offset: 0 });
            }
            // Misaligned jump target: cause 0 (trap taken at the jalr).
            4 => {
                asm.push(Instr::Jalr { rd: Reg::X0, rs1: base, offset: 2 });
            }
            // Breakpoint: cause 3.
            _ => {
                asm.push(Instr::System(SystemOp::Ebreak));
            }
        }
    }

    /// Divider corner cases: signed overflow (MIN / −1) and back-to-back
    /// divides (structural hazard on the mul/div unit).
    fn emit_div_corners(&mut self, asm: &mut Assembler, live: &mut Vec<Reg>) {
        let t = Reg::new(30).unwrap(); // t5
        let u = Reg::new(31).unwrap(); // t6
        let rd = self.fresh_reg(live);
        // t = i64::MIN; u = -1.
        asm.push(Instr::OpImm { op: AluOp::Add, rd: t, rs1: Reg::X0, imm: -1, word: false });
        asm.push(Instr::OpImm { op: AluOp::Sll, rd: t, rs1: t, imm: 63, word: false });
        asm.push(Instr::OpImm { op: AluOp::Add, rd: u, rs1: Reg::X0, imm: -1, word: false });
        asm.push(Instr::MulDiv { op: MulDivOp::Div, rd, rs1: t, rs2: u, word: false });
        // Back-to-back divide: structural stall.
        asm.push(Instr::MulDiv { op: MulDivOp::Rem, rd, rs1: t, rs2: u, word: false });
    }

    /// Descends to U- or S-mode with delegation installed, takes delegated
    /// traps there, and (for S) drops further privilege with `sret`.
    ///
    /// ```text
    ///     jal  t1, skip
    /// s_handler:                  ; delegated traps land here (S-mode)
    ///     csrrs t0, sepc, x0
    ///     addi  t0, t0, 4
    ///     csrrw x0, sepc, t0
    ///     sret
    /// skip:
    ///     csrw  stvec, t1
    ///     li    t2, 0x100         ; delegate ecall-from-U
    ///     csrw  medeleg, t2
    ///     li    t3, 0x1800
    ///     csrrc x0, mstatus, t3   ; MPP = U
    ///   [ li t4, 0x800 ; csrrs x0, mstatus, t4 ]  ; MPP = S variant
    ///     auipc t5, 0
    ///     addi  t5, t5, 16
    ///     csrw  mepc, t5
    ///     mret                    ; descend
    /// target:
    ///     …low-privilege memory / atomic / csr / ecall activity…
    /// ```
    fn emit_priv_descent(
        &mut self,
        asm: &mut Assembler,
        live: &mut Vec<Reg>,
        base: Reg,
        to_supervisor: bool,
    ) {
        let t0 = Reg::new(5).unwrap();
        let t1 = Reg::new(6).unwrap();
        let t2 = Reg::new(7).unwrap();
        let skip = self.fresh_label("sskip");
        asm.jal_to(t1, &skip);
        // s_handler:
        asm.push(Instr::Csr {
            op: CsrOp::Rs,
            rd: t0,
            csr: Csr::SEPC.addr(),
            src: CsrSrc::Reg(Reg::X0),
        });
        asm.push(Instr::OpImm { op: AluOp::Add, rd: t0, rs1: t0, imm: 4, word: false });
        asm.push(Instr::Csr {
            op: CsrOp::Rw,
            rd: Reg::X0,
            csr: Csr::SEPC.addr(),
            src: CsrSrc::Reg(t0),
        });
        asm.push(Instr::System(SystemOp::Sret));
        asm.label(&skip);
        asm.push(Instr::Csr {
            op: CsrOp::Rw,
            rd: Reg::X0,
            csr: Csr::STVEC.addr(),
            src: CsrSrc::Reg(t1),
        });
        asm.li(t2, 0x100); // ecall-from-U delegatable
        asm.push(Instr::Csr {
            op: CsrOp::Rw,
            rd: Reg::X0,
            csr: Csr::MEDELEG.addr(),
            src: CsrSrc::Reg(t2),
        });
        asm.li(t2, 0x1800);
        asm.push(Instr::Csr {
            op: CsrOp::Rc,
            rd: Reg::X0,
            csr: Csr::MSTATUS.addr(),
            src: CsrSrc::Reg(t2),
        });
        if to_supervisor {
            asm.li(t2, 0x800);
            asm.push(Instr::Csr {
                op: CsrOp::Rs,
                rd: Reg::X0,
                csr: Csr::MSTATUS.addr(),
                src: CsrSrc::Reg(t2),
            });
        }
        asm.push(Instr::Auipc { rd: t0, imm: 0 });
        asm.push(Instr::OpImm { op: AluOp::Add, rd: t0, rs1: t0, imm: 16, word: false });
        asm.push(Instr::Csr {
            op: CsrOp::Rw,
            rd: Reg::X0,
            csr: Csr::MEPC.addr(),
            src: CsrSrc::Reg(t0),
        });
        asm.push(Instr::System(SystemOp::Mret));
        // target: low-privilege activity.
        if to_supervisor {
            // S-mode: CSR writes, an ecall to M, then drop to U with sret.
            asm.push(Instr::Csr {
                op: CsrOp::Rw,
                rd: Reg::X0,
                csr: Csr::SSCRATCH.addr(),
                src: CsrSrc::Reg(base),
            });
            asm.push(Instr::System(SystemOp::Ecall)); // cause 9 -> M handler
                                                      // Return point for the eventual sret: reuse the trap handler's
                                                      // sepc bump by taking the delegated path later from U.
            asm.push(Instr::Auipc { rd: t0, imm: 0 });
            asm.push(Instr::OpImm { op: AluOp::Add, rd: t0, rs1: t0, imm: 16, word: false });
            asm.push(Instr::Csr {
                op: CsrOp::Rw,
                rd: Reg::X0,
                csr: Csr::SEPC.addr(),
                src: CsrSrc::Reg(t0),
            });
            asm.push(Instr::System(SystemOp::Sret)); // S -> U
        }
        // U-mode: memory, atomics and delegated ecalls.
        let rd = self.fresh_reg(live);
        asm.push(Instr::Store { width: MemWidth::D, rs2: rd, rs1: base, offset: 32 });
        asm.push(Instr::Load { width: MemWidth::D, signed: true, rd, rs1: base, offset: 32 });
        asm.push(Instr::Amo {
            op: AmoOp::Add,
            width: MemWidth::D,
            rd,
            rs1: base,
            rs2: rd,
            aq: false,
            rl: false,
        });
        asm.push(Instr::System(SystemOp::Ecall)); // delegated -> s_handler
        asm.push(Instr::OpImm { op: AluOp::Add, rd, rs1: rd, imm: 1, word: false });
        asm.push(Instr::System(SystemOp::Ecall)); // second delegation
        asm.push(Instr::OpImm { op: AluOp::Add, rd, rs1: rd, imm: 1, word: false });
    }

    /// Store then reload through scratch memory (dataflow through memory).
    fn emit_memory_roundtrip(&mut self, asm: &mut Assembler, live: &mut Vec<Reg>, base: Reg) {
        let src = self.pick_live(live);
        let dst = self.fresh_reg(live);
        let widths = [MemWidth::B, MemWidth::H, MemWidth::W, MemWidth::D];
        let width = *widths.choose(&mut self.rng).expect("non-empty");
        let offset = self.rng.gen_range(0..8i64) * 8; // aligned for every width
        asm.push(Instr::Store { width, rs2: src, rs1: base, offset });
        let signed = width == MemWidth::D || self.rng.gen_bool(0.5);
        asm.push(Instr::Load { width, signed, rd: dst, rs1: base, offset });
    }

    /// Forward branch guarding a short then-block.
    fn emit_guarded_block(&mut self, asm: &mut Assembler, live: &mut Vec<Reg>) {
        let a = self.pick_live(live);
        let b = self.pick_live(live);
        let label = self.fresh_label("skip");
        let conds = [BranchCond::Eq, BranchCond::Ne, BranchCond::Lt, BranchCond::Geu];
        let cond = *conds.choose(&mut self.rng).expect("non-empty");
        asm.branch_to(cond, a, b, &label);
        let len = self.rng.gen_range(1..=3);
        for _ in 0..len {
            let rd = self.fresh_reg(live);
            let rs1 = self.pick_live(live);
            asm.push(Instr::OpImm {
                op: AluOp::Add,
                rd,
                rs1,
                imm: self.rng.gen_range(-64..64),
                word: false,
            });
        }
        asm.label(&label);
        asm.nop(); // a landing slot so the label always resolves forward
    }

    fn emit_muldiv(&mut self, asm: &mut Assembler, live: &mut Vec<Reg>) {
        let rs1 = self.pick_live(live);
        let rs2 = self.pick_live(live);
        let rd = self.fresh_reg(live);
        let ops = [
            MulDivOp::Mul,
            MulDivOp::Mulh,
            MulDivOp::Mulhu,
            MulDivOp::Div,
            MulDivOp::Divu,
            MulDivOp::Rem,
            MulDivOp::Remu,
        ];
        let op = *ops.choose(&mut self.rng).expect("non-empty");
        let word = op.has_word_form() && self.rng.gen_bool(0.25);
        asm.push(Instr::MulDiv { op, rd, rs1, rs2, word });
    }

    /// LR/SC pair or a read-modify-write AMO on scratch memory.
    fn emit_atomic(&mut self, asm: &mut Assembler, live: &mut Vec<Reg>, base: Reg) {
        let width = if self.rng.gen_bool(0.5) { MemWidth::W } else { MemWidth::D };
        if self.rng.gen_bool(0.4) {
            let old = self.fresh_reg(live);
            let flag = self.fresh_reg(live);
            let val = self.pick_live(live);
            asm.push(Instr::LoadReserved { width, rd: old, rs1: base, aq: true, rl: false });
            asm.push(Instr::StoreConditional {
                width,
                rd: flag,
                rs1: base,
                rs2: val,
                aq: false,
                rl: true,
            });
        } else {
            let ops = [
                AmoOp::Swap,
                AmoOp::Add,
                AmoOp::Xor,
                AmoOp::And,
                AmoOp::Or,
                AmoOp::Min,
                AmoOp::Maxu,
            ];
            let op = *ops.choose(&mut self.rng).expect("non-empty");
            // Sometimes rd = x0: the paper's Finding 2 corner.
            let rd = if self.rng.gen_bool(0.2) { Reg::X0 } else { self.fresh_reg(live) };
            let rs2 = self.pick_live(live);
            asm.push(Instr::Amo {
                op,
                width,
                rd,
                rs1: base,
                rs2,
                aq: self.rng.gen_bool(0.3),
                rl: self.rng.gen_bool(0.3),
            });
        }
    }

    fn emit_csr_idiom(&mut self, asm: &mut Assembler, live: &mut Vec<Reg>) {
        let rd = self.fresh_reg(live);
        let csrs = [
            Csr::MSCRATCH,
            Csr::MSTATUS,
            Csr::MEPC,
            Csr::MCAUSE,
            Csr::MTVAL,
            Csr::MISA,
            Csr::MHARTID,
            Csr::MCYCLE,
            Csr::MEDELEG,
            Csr::MIE,
            Csr::SSCRATCH,
            Csr::STVEC,
        ];
        let csr = *csrs.choose(&mut self.rng).expect("non-empty");
        // Writes are restricted to CSRs whose corruption cannot strand the
        // run (no mtvec/medeleg garbage); compiled code behaves the same.
        let write_safe =
            matches!(csr, Csr::MSCRATCH | Csr::SSCRATCH | Csr::MCAUSE | Csr::MTVAL | Csr::MCYCLE);
        if !write_safe || self.rng.gen_bool(0.5) {
            // Read (csrrs rd, csr, x0) — legal even on read-only CSRs.
            asm.push(Instr::Csr { op: CsrOp::Rs, rd, csr: csr.addr(), src: CsrSrc::Reg(Reg::X0) });
        } else {
            let src = if self.rng.gen_bool(0.5) {
                CsrSrc::Imm(self.rng.gen_range(0..32))
            } else {
                CsrSrc::Reg(self.pick_live(live))
            };
            let op = if self.rng.gen_bool(0.5) { CsrOp::Rw } else { CsrOp::Rc };
            asm.push(Instr::Csr { op, rd, csr: csr.addr(), src });
        }
    }

    /// Install a trap handler, `ecall` into it, `mret` back — the
    /// privilege-entanglement template no random generator stumbles into.
    ///
    /// Layout (also *executes* correctly when reached):
    ///
    /// ```text
    ///     jal  t1, skip      ; t1 = address of `handler` (pc+4)
    /// handler:
    ///     csrrs t0, mepc, x0
    ///     addi  t0, t0, 4
    ///     csrrw x0, mepc, t0
    ///     mret
    /// skip:
    ///     csrrw x0, mtvec, t1
    ///     ecall              ; round-trips through the handler
    /// ```
    fn emit_trap_roundtrip(&mut self, asm: &mut Assembler) {
        let t0 = Reg::new(5).unwrap();
        let t1 = Reg::new(6).unwrap();
        let skip = self.fresh_label("skip");
        asm.jal_to(t1, &skip);
        // handler body (t1 points here):
        asm.push(Instr::Csr {
            op: CsrOp::Rs,
            rd: t0,
            csr: Csr::MEPC.addr(),
            src: CsrSrc::Reg(Reg::X0),
        });
        asm.push(Instr::OpImm { op: AluOp::Add, rd: t0, rs1: t0, imm: 4, word: false });
        asm.push(Instr::Csr {
            op: CsrOp::Rw,
            rd: Reg::X0,
            csr: Csr::MEPC.addr(),
            src: CsrSrc::Reg(t0),
        });
        asm.push(Instr::System(SystemOp::Mret));
        asm.label(&skip);
        asm.push(Instr::Csr {
            op: CsrOp::Rw,
            rd: Reg::X0,
            csr: Csr::MTVEC.addr(),
            src: CsrSrc::Reg(t1),
        });
        asm.push(Instr::System(SystemOp::Ecall));
    }

    /// Self-modifying code: write an instruction word ahead, optionally
    /// `fence.i`, then fall through to the patched slot (paper §V-B.1).
    fn emit_smc(&mut self, asm: &mut Assembler, live: &mut Vec<Reg>) {
        let t0 = Reg::new(5).unwrap();
        let t1 = Reg::new(6).unwrap();
        // The patch destination must not collide with the template's own
        // scratch registers (t0 holds the base address, t1 the patch word).
        let args: Vec<Reg> = Reg::args().collect();
        let rd = *args.choose(&mut self.rng).expect("non-empty");
        if !live.contains(&rd) {
            live.push(rd);
        }
        let patch = encode(&Instr::OpImm { op: AluOp::Add, rd, rs1: rd, imm: 2, word: false })
            .expect("encodable patch");
        asm.push(Instr::Auipc { rd: t0, imm: 0 }); // t0 = this pc
        let before_li = asm.len();
        asm.li(t1, i64::from(patch as i32));
        let li_slots = (asm.len() - before_li) as i64;
        let with_fence = self.rng.gen_bool(0.5);
        // Slots after the auipc: li (li_slots), store (1), fence.i (0|1),
        // then the patch slot.
        let patch_offset = (1 + li_slots + 1 + i64::from(with_fence)) * 4;
        asm.push(Instr::Store { width: MemWidth::W, rs2: t1, rs1: t0, offset: patch_offset });
        if with_fence {
            asm.push(Instr::FenceI);
        }
        asm.push(Instr::OpImm { op: AluOp::Add, rd, rs1: rd, imm: 1, word: false });
        // patched
    }
}

/// Destroys instruction inter-dependency while preserving the instruction
/// multiset: shuffles every body with the given seed (ablation A3).
pub fn shuffle_bodies(corpus: &[Vec<u32>], seed: u64) -> Vec<Vec<u32>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    corpus
        .iter()
        .map(|body| {
            let mut b = body.clone();
            b.shuffle(&mut rng);
            b
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use chatfuzz_isa::decode;

    #[test]
    fn corpus_is_fully_decodable() {
        let mut g = CorpusGenerator::new(CorpusConfig::default());
        for body in g.generate_words(64) {
            assert!(!body.is_empty());
            for w in body {
                decode(w).unwrap();
            }
        }
    }

    #[test]
    fn corpus_is_reproducible_per_seed() {
        let mut a = CorpusGenerator::new(CorpusConfig::default());
        let mut b = CorpusGenerator::new(CorpusConfig::default());
        assert_eq!(a.generate_words(16), b.generate_words(16));
        let mut c = CorpusGenerator::new(CorpusConfig { seed: 1, ..Default::default() });
        assert_ne!(a.generate_words(16), c.generate_words(16));
    }

    #[test]
    fn functions_have_prologue_and_control_flow() {
        let mut g = CorpusGenerator::new(CorpusConfig::default());
        let bodies = g.generate(64);
        for body in &bodies {
            match body[0] {
                Instr::OpImm { rd, rs1, imm, .. } => {
                    assert_eq!(rd, Reg::SP);
                    assert_eq!(rs1, Reg::SP);
                    assert!(imm < 0);
                }
                ref other => panic!("expected prologue, got {other}"),
            }
        }
        let with_branches =
            bodies.iter().filter(|b| b.iter().any(|i| matches!(i, Instr::Branch { .. }))).count();
        assert!(with_branches * 2 > bodies.len(), "{with_branches}/{} have branches", bodies.len());
    }

    #[test]
    fn corpus_instruction_mix_is_diverse() {
        let mut g = CorpusGenerator::new(CorpusConfig::default());
        let bodies = g.generate(128);
        let all: Vec<&Instr> = bodies.iter().flatten().collect();
        let count = |f: fn(&&&Instr) -> bool| all.iter().filter(f).count();
        assert!(count(|i| matches!(***i, Instr::Load { .. })) > 0);
        assert!(count(|i| matches!(***i, Instr::Store { .. })) > 0);
        assert!(count(|i| matches!(***i, Instr::MulDiv { .. })) > 0);
        assert!(count(|i| matches!(***i, Instr::Amo { .. })) > 0);
        assert!(count(|i| matches!(***i, Instr::Csr { .. })) > 0);
        assert!(count(|i| matches!(***i, Instr::System(SystemOp::Mret))) > 0);
        assert!(count(|i| matches!(***i, Instr::FenceI)) > 0);
    }

    /// The trap round-trip template must actually execute cleanly on the
    /// golden model (handler installed, ecall taken, mret returns).
    #[test]
    fn trap_roundtrip_template_executes() {
        use chatfuzz_softcore::{trace::ExitReason, SoftCore, SoftCoreConfig};
        let mut g = CorpusGenerator::new(CorpusConfig::default());
        let mut asm = Assembler::new();
        g.emit_trap_roundtrip(&mut asm);
        asm.push(Instr::System(SystemOp::Wfi));
        let bytes = asm.assemble_bytes().unwrap();
        let trace = SoftCore::new(SoftCoreConfig::default()).run(&bytes);
        assert_eq!(trace.exit, ExitReason::Wfi, "template must survive the round trip");
        assert_eq!(trace.trap_count(), 1, "exactly the ecall trap");
    }

    /// The SMC template must execute and actually patch the next slot.
    #[test]
    fn smc_template_executes_on_golden_model() {
        use chatfuzz_softcore::{trace::ExitReason, SoftCore, SoftCoreConfig};
        let mut g = CorpusGenerator::new(CorpusConfig::default());
        for _ in 0..8 {
            let mut asm = Assembler::new();
            let mut live = Vec::new();
            g.emit_smc(&mut asm, &mut live);
            asm.push(Instr::System(SystemOp::Wfi));
            let bytes = asm.assemble_bytes().unwrap();
            let trace = SoftCore::new(SoftCoreConfig::default()).run(&bytes);
            assert_eq!(trace.exit, ExitReason::Wfi);
            // The patched instruction (`addi rd, rd, 2`) must have executed:
            // its write-back value is 2 (rd starts at 0).
            let patched = trace.records.iter().any(|r| r.rd_write.is_some_and(|(_, v)| v == 2));
            assert!(patched, "golden model executes the patched instruction");
        }
    }

    #[test]
    fn shuffle_preserves_multiset() {
        let mut g = CorpusGenerator::new(CorpusConfig::default());
        let corpus = g.generate_words(8);
        let shuffled = shuffle_bodies(&corpus, 7);
        assert_eq!(corpus.len(), shuffled.len());
        for (a, b) in corpus.iter().zip(&shuffled) {
            let mut a2 = a.clone();
            let mut b2 = b.clone();
            a2.sort_unstable();
            b2.sort_unstable();
            assert_eq!(a2, b2);
        }
        assert!(corpus.iter().zip(&shuffled).any(|(a, b)| a != b));
    }
}
