//! Property tests for the coverage substrate: merge algebra, calculator
//! monotonicity, and batch-order invariance.

use chatfuzz_coverage::{Calculator, CondId, CovMap, PointKind, Space, SpaceBuilder};
use proptest::prelude::*;
use std::sync::Arc;

fn space(n: usize) -> (Arc<Space>, Vec<CondId>) {
    let mut b = SpaceBuilder::new("prop");
    let ids = (0..n)
        .map(|i| {
            let kind = if i % 3 == 0 { PointKind::MuxSelect } else { PointKind::Condition };
            b.register(format!("c{i}"), kind)
        })
        .collect();
    (b.build(), ids)
}

fn map_from(space: &Arc<Space>, ids: &[CondId], hits: &[(u8, bool)]) -> CovMap {
    let mut m = CovMap::new(space);
    for &(i, o) in hits {
        m.hit(ids[usize::from(i) % ids.len()], o);
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Merge is commutative, associative and idempotent (a bin union).
    #[test]
    fn merge_is_a_semilattice(
        a in proptest::collection::vec((any::<u8>(), any::<bool>()), 0..32),
        b in proptest::collection::vec((any::<u8>(), any::<bool>()), 0..32),
        c in proptest::collection::vec((any::<u8>(), any::<bool>()), 0..32),
    ) {
        let (s, ids) = space(24);
        let (ma, mb, mc) =
            (map_from(&s, &ids, &a), map_from(&s, &ids, &b), map_from(&s, &ids, &c));

        // commutative
        let mut ab = ma.clone();
        ab.merge_from(&mb);
        let mut ba = mb.clone();
        ba.merge_from(&ma);
        prop_assert_eq!(ab.covered_bins(), ba.covered_bins());

        // associative
        let mut ab_c = ab.clone();
        ab_c.merge_from(&mc);
        let mut bc = mb.clone();
        bc.merge_from(&mc);
        let mut a_bc = ma.clone();
        a_bc.merge_from(&bc);
        prop_assert_eq!(ab_c.covered_bins(), a_bc.covered_bins());

        // idempotent
        let before = ab.covered_bins();
        let snapshot = ab.clone();
        ab.merge_from(&snapshot);
        prop_assert_eq!(ab.covered_bins(), before);
    }

    /// count_new_vs is exactly the union-gain: |A ∪ B| = |B| + new(A vs B).
    #[test]
    fn new_vs_equals_union_gain(
        a in proptest::collection::vec((any::<u8>(), any::<bool>()), 0..32),
        b in proptest::collection::vec((any::<u8>(), any::<bool>()), 0..32),
    ) {
        let (s, ids) = space(24);
        let (ma, mb) = (map_from(&s, &ids, &a), map_from(&s, &ids, &b));
        let mut union = mb.clone();
        union.merge_from(&ma);
        prop_assert_eq!(union.covered_bins(), mb.covered_bins() + ma.count_new_vs(&mb));
    }

    /// The calculator's total is invariant to input order within a batch,
    /// and monotone across batches.
    #[test]
    fn calculator_total_is_order_invariant_and_monotone(
        batches in proptest::collection::vec(
            proptest::collection::vec(
                proptest::collection::vec((any::<u8>(), any::<bool>()), 0..16),
                1..5
            ),
            1..4
        ),
    ) {
        let (s, ids) = space(16);
        let mut forward = Calculator::new(&s);
        let mut reversed = Calculator::new(&s);
        let mut last_total = 0;
        for batch in &batches {
            let maps: Vec<CovMap> = batch.iter().map(|h| map_from(&s, &ids, h)).collect();
            let mut rev = maps.clone();
            rev.reverse();
            let f = forward.score_batch(&maps);
            let r = reversed.score_batch(&rev);
            prop_assert_eq!(f.total_after, r.total_after, "batch total is order-invariant");
            prop_assert!(f.total_after >= last_total, "totals are monotone");
            // Stand-alone and incremental per input are permutation-mapped.
            let mut fs: Vec<_> = f.inputs.iter().map(|i| (i.standalone, i.incremental)).collect();
            let mut rs: Vec<_> = r.inputs.iter().map(|i| (i.standalone, i.incremental)).collect();
            fs.sort_unstable();
            rs.sort_unstable();
            prop_assert_eq!(fs, rs);
            last_total = f.total_after;
        }
    }

    /// Kind-filtered counts always partition the full count.
    #[test]
    fn kind_counts_partition(
        hits in proptest::collection::vec((any::<u8>(), any::<bool>()), 0..64),
    ) {
        let (s, ids) = space(24);
        let m = map_from(&s, &ids, &hits);
        let total = m.covered_bins();
        let mux = m.covered_bins_of_kind(PointKind::MuxSelect);
        let cond = m.covered_bins_of_kind(PointKind::Condition);
        prop_assert_eq!(total, mux + cond);
    }
}
