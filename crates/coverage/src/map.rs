//! Per-run coverage bitmaps.

use std::sync::Arc;

use crate::space::{CondId, PointKind, Space};

/// A bitmap over one space's coverage bins (two bins per condition:
/// observed-true and observed-false).
///
/// Maps are cheap to clone and merge; parallel fuzzing workers each fill a
/// private map per input and the coordinator merges them into the campaign
/// total.
#[derive(Debug)]
pub struct CovMap {
    space: Arc<Space>,
    words: Vec<u64>,
}

impl Clone for CovMap {
    fn clone(&self) -> CovMap {
        CovMap { space: Arc::clone(&self.space), words: self.words.clone() }
    }

    /// Allocation-free when the word counts match (same-space maps always
    /// do) — the batch-boundary copy in `Calculator::score_batch` relies
    /// on this to avoid cloning the full cumulative map every batch.
    fn clone_from(&mut self, source: &CovMap) {
        if self.words.len() == source.words.len() {
            self.words.copy_from_slice(&source.words);
        } else {
            self.words.clear();
            self.words.extend_from_slice(&source.words);
        }
        self.space = Arc::clone(&source.space);
    }
}

impl CovMap {
    /// Creates an empty map over `space`.
    pub fn new(space: &Arc<Space>) -> CovMap {
        let bins = space.total_bins();
        CovMap { space: Arc::clone(space), words: vec![0; bins.div_ceil(64)] }
    }

    /// The space this map covers.
    pub fn space(&self) -> &Arc<Space> {
        &self.space
    }

    #[inline]
    fn bin_index(id: CondId, outcome: bool) -> usize {
        id.index() * 2 + usize::from(outcome)
    }

    /// Records one observation of the condition with the given outcome.
    #[inline]
    pub fn hit(&mut self, id: CondId, outcome: bool) {
        let bin = Self::bin_index(id, outcome);
        self.words[bin / 64] |= 1 << (bin % 64);
    }

    /// Whether a given `(condition, outcome)` bin has been observed.
    pub fn is_covered(&self, id: CondId, outcome: bool) -> bool {
        let bin = Self::bin_index(id, outcome);
        self.words[bin / 64] & (1 << (bin % 64)) != 0
    }

    /// Number of covered bins.
    pub fn covered_bins(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Total bins in the space (the fixed denominator).
    pub fn total_bins(&self) -> usize {
        self.space.total_bins()
    }

    /// Covered percentage in `0.0..=100.0`.
    pub fn percent(&self) -> f64 {
        if self.space.total_bins() == 0 {
            return 0.0;
        }
        100.0 * self.covered_bins() as f64 / self.space.total_bins() as f64
    }

    /// Number of covered bins restricted to points of `kind`
    /// (the DifuzzRTL-style control-register subset uses
    /// [`PointKind::MuxSelect`]).
    pub fn covered_bins_of_kind(&self, kind: PointKind) -> usize {
        self.space
            .iter()
            .filter(|(_, _, k)| *k == kind)
            .map(|(id, _, _)| {
                usize::from(self.is_covered(id, false)) + usize::from(self.is_covered(id, true))
            })
            .sum()
    }

    /// Merges another worker's map into this one.
    ///
    /// # Panics
    ///
    /// Panics if the maps were built over structurally different spaces
    /// (different [`Space::fingerprint`]), which would silently corrupt
    /// coverage accounting.
    pub fn merge_from(&mut self, other: &CovMap) {
        assert_eq!(
            self.space.fingerprint(),
            other.space.fingerprint(),
            "merging coverage maps from different spaces"
        );
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// The bin-set union of any number of maps over the same space — the
    /// merge operation sharded campaigns use to combine per-shard
    /// cumulative coverage. Returns `None` for an empty iterator (there is
    /// no space to build the result over).
    ///
    /// # Panics
    ///
    /// Panics if the maps span different spaces (see
    /// [`CovMap::merge_from`]).
    pub fn union<'a>(maps: impl IntoIterator<Item = &'a CovMap>) -> Option<CovMap> {
        let mut maps = maps.into_iter();
        let mut out = maps.next()?.clone();
        for map in maps {
            out.merge_from(map);
        }
        Some(out)
    }

    /// Whether every bin covered here is also covered by `other`.
    pub fn is_subset_of(&self, other: &CovMap) -> bool {
        assert_eq!(
            self.space.fingerprint(),
            other.space.fingerprint(),
            "comparing coverage maps from different spaces"
        );
        self.words.iter().zip(&other.words).all(|(a, b)| a & !b == 0)
    }

    /// The raw bitmap words (64 bins per word, bin `i` at word `i / 64`
    /// bit `i % 64`). The serialisation view campaign snapshots persist.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuilds a map from [`CovMap::words`] output over the given space
    /// (the deserialisation path; snapshots store words plus the space
    /// fingerprint, and the loader supplies the re-elaborated space).
    ///
    /// Returns `None` if the word count does not match the space or if
    /// bits beyond the space's last bin are set — both indicate the blob
    /// belongs to a different design.
    pub fn from_words(space: &Arc<Space>, words: Vec<u64>) -> Option<CovMap> {
        let bins = space.total_bins();
        if words.len() != bins.div_ceil(64) {
            return None;
        }
        if let Some(last) = words.last() {
            let used = bins % 64;
            if used != 0 && *last >> used != 0 {
                return None;
            }
        }
        Some(CovMap { space: Arc::clone(space), words })
    }

    /// A 64-bit FNV-1a-style hash of the bitmap contents — the *coverage
    /// fingerprint* of one input's standalone coverage set. Two inputs
    /// with identical fingerprints exercised the same bin set (modulo
    /// hash collisions), which is what the evolutionary corpus dedupes
    /// on. Stable across processes and platforms (pure integer folding
    /// over [`CovMap::words`]), and cheap enough for the campaign's
    /// per-test path: one xor+multiply per bitmap word.
    pub fn content_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &w in &self.words {
            h ^= w;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Number of bins covered by `self` that `base` has not covered.
    pub fn count_new_vs(&self, base: &CovMap) -> usize {
        assert_eq!(
            self.space.fingerprint(),
            base.space.fingerprint(),
            "comparing coverage maps from different spaces"
        );
        self.words.iter().zip(&base.words).map(|(a, b)| (a & !b).count_ones() as usize).sum()
    }

    /// Clears all observations (map reuse between inputs).
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Iterates over the names of conditions with at least one uncovered
    /// bin — the "coverage holes" report.
    pub fn holes(&self) -> impl Iterator<Item = &str> {
        self.space
            .iter()
            .filter(|(id, _, _)| !self.is_covered(*id, false) || !self.is_covered(*id, true))
            .map(|(_, name, _)| name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::SpaceBuilder;

    fn space3() -> Arc<Space> {
        let mut b = SpaceBuilder::new("t");
        b.register("a", PointKind::Condition);
        b.register("b", PointKind::MuxSelect);
        b.register("c", PointKind::Condition);
        b.build()
    }

    #[test]
    fn hits_accumulate_idempotently() {
        let space = space3();
        let mut m = CovMap::new(&space);
        let a = CondId(0);
        m.hit(a, true);
        m.hit(a, true);
        assert_eq!(m.covered_bins(), 1);
        assert!(m.is_covered(a, true));
        assert!(!m.is_covered(a, false));
    }

    #[test]
    fn percent_uses_fixed_denominator() {
        let space = space3();
        let mut m = CovMap::new(&space);
        assert_eq!(m.total_bins(), 6);
        m.hit(CondId(0), true);
        m.hit(CondId(0), false);
        m.hit(CondId(1), true);
        assert!((m.percent() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn merge_is_union() {
        let space = space3();
        let mut m1 = CovMap::new(&space);
        let mut m2 = CovMap::new(&space);
        m1.hit(CondId(0), true);
        m2.hit(CondId(2), false);
        m1.merge_from(&m2);
        assert_eq!(m1.covered_bins(), 2);
        // Merging again changes nothing.
        m1.merge_from(&m2);
        assert_eq!(m1.covered_bins(), 2);
    }

    #[test]
    fn count_new_vs_counts_only_novel_bins() {
        let space = space3();
        let mut base = CovMap::new(&space);
        let mut m = CovMap::new(&space);
        base.hit(CondId(0), true);
        m.hit(CondId(0), true); // already known
        m.hit(CondId(1), false); // new
        assert_eq!(m.count_new_vs(&base), 1);
        assert_eq!(base.count_new_vs(&m), 0); // base has nothing new wrt m? it has (0,true) which m also has
    }

    #[test]
    fn union_merges_all_maps() {
        let space = space3();
        let mut m1 = CovMap::new(&space);
        let mut m2 = CovMap::new(&space);
        let mut m3 = CovMap::new(&space);
        m1.hit(CondId(0), true);
        m2.hit(CondId(1), false);
        m3.hit(CondId(2), true);
        let u = CovMap::union([&m1, &m2, &m3]).unwrap();
        assert_eq!(u.covered_bins(), 3);
        assert!(m1.is_subset_of(&u) && m2.is_subset_of(&u) && m3.is_subset_of(&u));
        assert!(!u.is_subset_of(&m1));
        assert!(CovMap::union([]).is_none());
    }

    #[test]
    fn words_round_trip_through_from_words() {
        let space = space3();
        let mut m = CovMap::new(&space);
        m.hit(CondId(0), true);
        m.hit(CondId(2), false);
        let words = m.words().to_vec();
        let rebuilt = CovMap::from_words(&space, words).unwrap();
        assert_eq!(rebuilt.covered_bins(), m.covered_bins());
        assert!(rebuilt.is_subset_of(&m) && m.is_subset_of(&rebuilt));
    }

    #[test]
    fn from_words_rejects_malformed_blobs() {
        let space = space3(); // 6 bins → 1 word, bits 0..6 valid
        assert!(CovMap::from_words(&space, vec![]).is_none(), "wrong length");
        assert!(CovMap::from_words(&space, vec![0, 0]).is_none(), "wrong length");
        assert!(CovMap::from_words(&space, vec![1 << 6]).is_none(), "stray bit");
        assert!(CovMap::from_words(&space, vec![0x3f]).is_some(), "all valid bits");
    }

    #[test]
    #[should_panic(expected = "different spaces")]
    fn merge_rejects_foreign_space() {
        let mut b = SpaceBuilder::new("x");
        b.register("only", PointKind::Condition);
        let other = b.build();
        let mut m1 = CovMap::new(&space3());
        let m2 = CovMap::new(&other);
        m1.merge_from(&m2);
    }

    #[test]
    fn kind_filtered_counts() {
        let space = space3();
        let mut m = CovMap::new(&space);
        m.hit(CondId(1), true);
        m.hit(CondId(1), false);
        m.hit(CondId(0), true);
        assert_eq!(m.covered_bins_of_kind(PointKind::MuxSelect), 2);
        assert_eq!(m.covered_bins_of_kind(PointKind::Condition), 1);
    }

    #[test]
    fn holes_lists_partially_covered_points() {
        let space = space3();
        let mut m = CovMap::new(&space);
        m.hit(CondId(0), true);
        m.hit(CondId(1), true);
        m.hit(CondId(1), false);
        let holes: Vec<_> = m.holes().collect();
        assert_eq!(holes, vec!["a", "c"]);
    }

    #[test]
    fn content_hash_tracks_bin_sets() {
        let space = space3();
        let mut a = CovMap::new(&space);
        let mut b = CovMap::new(&space);
        assert_eq!(a.content_hash(), b.content_hash(), "empty maps agree");
        a.hit(CondId(0), true);
        assert_ne!(a.content_hash(), b.content_hash(), "a bin changes the hash");
        b.hit(CondId(0), true);
        assert_eq!(a.content_hash(), b.content_hash(), "same bin set, same hash");
        a.hit(CondId(2), false);
        assert_ne!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn clear_resets() {
        let space = space3();
        let mut m = CovMap::new(&space);
        m.hit(CondId(0), true);
        m.clear();
        assert_eq!(m.covered_bins(), 0);
    }
}
