//! The condition-point registry ("elaborated design" view).

use std::fmt;
use std::sync::Arc;

/// Classification of a coverage point.
///
/// All points count toward the paper's condition-coverage metric;
/// [`PointKind::MuxSelect`] points additionally form the control-register
/// subset used by the DifuzzRTL-style baseline feedback.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PointKind {
    /// A boolean condition in control logic (branch, enable, exception…).
    Condition,
    /// A multiplexer-select / control-register condition.
    MuxSelect,
}

/// Identifier of a registered condition point, valid for one [`Space`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CondId(pub(crate) u32);

impl CondId {
    /// The point's index within its space.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone)]
pub(crate) struct PointMeta {
    pub(crate) name: String,
    pub(crate) kind: PointKind,
}

/// An immutable, fully-enumerated coverage space.
///
/// A simulator builds its space once at construction; the space then fixes
/// the denominator of every coverage percentage, exactly as RTL elaboration
/// fixes the set of conditions VCS reports on.
#[derive(Debug)]
pub struct Space {
    pub(crate) design: String,
    pub(crate) points: Vec<PointMeta>,
    pub(crate) fingerprint: u64,
}

impl Space {
    /// Name of the design that registered this space.
    pub fn design(&self) -> &str {
        &self.design
    }

    /// Number of registered condition points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the space has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Total number of coverage bins (two per condition).
    pub fn total_bins(&self) -> usize {
        self.points.len() * 2
    }

    /// Name of a condition point.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this space.
    pub fn name(&self, id: CondId) -> &str {
        &self.points[id.index()].name
    }

    /// Kind of a condition point.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this space.
    pub fn kind(&self, id: CondId) -> PointKind {
        self.points[id.index()].kind
    }

    /// Iterates over `(id, name, kind)` for all points.
    pub fn iter(&self) -> impl Iterator<Item = (CondId, &str, PointKind)> {
        self.points.iter().enumerate().map(|(i, p)| (CondId(i as u32), p.name.as_str(), p.kind))
    }

    /// A structural hash of the space (names + kinds, order-sensitive).
    ///
    /// Two simulator instances built the same way produce equal
    /// fingerprints; [`crate::CovMap::merge_from`] checks this before
    /// merging maps from parallel workers.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Number of points of the given kind.
    pub fn count_of_kind(&self, kind: PointKind) -> usize {
        self.points.iter().filter(|p| p.kind == kind).count()
    }
}

impl fmt::Display for Space {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} conditions, {} bins)", self.design, self.len(), self.total_bins())
    }
}

/// Incremental builder for a [`Space`].
#[derive(Debug)]
pub struct SpaceBuilder {
    design: String,
    points: Vec<PointMeta>,
}

impl SpaceBuilder {
    /// Starts a new space for the named design.
    pub fn new(design: impl Into<String>) -> SpaceBuilder {
        SpaceBuilder { design: design.into(), points: Vec::new() }
    }

    /// Registers one condition point and returns its id.
    pub fn register(&mut self, name: impl Into<String>, kind: PointKind) -> CondId {
        let id = CondId(self.points.len() as u32);
        self.points.push(PointMeta { name: name.into(), kind });
        id
    }

    /// Registers a family of points `prefix[0] .. prefix[n-1]`.
    pub fn register_array(&mut self, prefix: &str, n: usize, kind: PointKind) -> Vec<CondId> {
        (0..n).map(|i| self.register(format!("{prefix}[{i}]"), kind)).collect()
    }

    /// Finalises the space.
    pub fn build(self) -> Arc<Space> {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut hasher = DefaultHasher::new();
        self.design.hash(&mut hasher);
        for p in &self.points {
            p.name.hash(&mut hasher);
            (p.kind == PointKind::MuxSelect).hash(&mut hasher);
        }
        let fingerprint = hasher.finish();
        Arc::new(Space { design: self.design, points: self.points, fingerprint })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut b = SpaceBuilder::new("d");
        let a = b.register("a", PointKind::Condition);
        let c = b.register("c", PointKind::MuxSelect);
        let space = b.build();
        assert_eq!(a.index(), 0);
        assert_eq!(c.index(), 1);
        assert_eq!(space.len(), 2);
        assert_eq!(space.total_bins(), 4);
        assert_eq!(space.name(a), "a");
        assert_eq!(space.kind(c), PointKind::MuxSelect);
    }

    #[test]
    fn register_array_names() {
        let mut b = SpaceBuilder::new("d");
        let ids = b.register_array("icache.way_hit", 4, PointKind::Condition);
        let space = b.build();
        assert_eq!(ids.len(), 4);
        assert_eq!(space.name(ids[3]), "icache.way_hit[3]");
    }

    #[test]
    fn fingerprint_is_structural() {
        let build = |names: &[&str]| {
            let mut b = SpaceBuilder::new("d");
            for n in names {
                b.register(*n, PointKind::Condition);
            }
            b.build()
        };
        let s1 = build(&["a", "b"]);
        let s2 = build(&["a", "b"]);
        let s3 = build(&["b", "a"]);
        assert_eq!(s1.fingerprint(), s2.fingerprint());
        assert_ne!(s1.fingerprint(), s3.fingerprint());
    }

    #[test]
    fn kind_counts() {
        let mut b = SpaceBuilder::new("d");
        b.register("a", PointKind::Condition);
        b.register("b", PointKind::MuxSelect);
        b.register("c", PointKind::MuxSelect);
        let s = b.build();
        assert_eq!(s.count_of_kind(PointKind::MuxSelect), 2);
        assert_eq!(s.count_of_kind(PointKind::Condition), 1);
    }
}
