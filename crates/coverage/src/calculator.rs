//! The paper's Coverage Calculator (§IV-B).
//!
//! For each test input the RTL simulator produces a [`CovMap`]; the
//! calculator derives three values per input:
//!
//! * **stand-alone coverage** — bins attained by this input alone;
//! * **incremental coverage** — bins newly achieved by this input compared
//!   with the total recorded *at the end of the previous batch*;
//! * **total coverage** — cumulative bins attained so far.
//!
//! These feed the reward function of the model-optimisation RL step and the
//! input scoring of the fuzzing loop.

use crate::map::CovMap;
use crate::space::Space;
use std::sync::Arc;

/// Per-input coverage summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InputCoverage {
    /// Bins attained by this input alone.
    pub standalone: usize,
    /// Bins newly attained relative to the previous batch's total.
    pub incremental: usize,
    /// Cumulative covered bins after folding this input in.
    pub total_after: usize,
    /// The space's fixed bin count (denominator).
    pub total_bins: usize,
}

impl InputCoverage {
    /// Total coverage percentage after this input.
    pub fn total_percent(&self) -> f64 {
        if self.total_bins == 0 {
            return 0.0;
        }
        100.0 * self.total_after as f64 / self.total_bins as f64
    }
}

/// Summary of one committed batch.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchScores {
    /// Per-input coverage values, in batch order.
    pub inputs: Vec<InputCoverage>,
    /// Covered bins after the whole batch.
    pub total_after: usize,
    /// Bins gained by the batch as a whole.
    pub batch_gain: usize,
}

/// Stateful cumulative-coverage tracker.
#[derive(Debug, Clone)]
pub struct Calculator {
    cumulative: CovMap,
    /// Total frozen at the end of the previous batch; incremental coverage
    /// for every input of the current batch is measured against this.
    previous_batch_total: CovMap,
}

impl Calculator {
    /// Creates a calculator with empty cumulative coverage.
    pub fn new(space: &Arc<Space>) -> Calculator {
        Calculator { cumulative: CovMap::new(space), previous_batch_total: CovMap::new(space) }
    }

    /// The cumulative coverage map.
    pub fn total(&self) -> &CovMap {
        &self.cumulative
    }

    /// The total frozen at the previous batch boundary (the incremental
    /// baseline). Exposed so snapshots can persist the calculator's full
    /// state, not just the cumulative map.
    pub fn previous_batch_total(&self) -> &CovMap {
        &self.previous_batch_total
    }

    /// Rebuilds a calculator from persisted maps (the deserialisation
    /// path; pair with [`Calculator::total`] and
    /// [`Calculator::previous_batch_total`]).
    ///
    /// # Panics
    ///
    /// Panics if the maps span different spaces or the previous-batch
    /// baseline covers bins the cumulative map does not — states no real
    /// calculator can reach.
    pub fn from_parts(cumulative: CovMap, previous_batch_total: CovMap) -> Calculator {
        assert!(
            previous_batch_total.is_subset_of(&cumulative),
            "previous-batch total exceeds the cumulative map"
        );
        Calculator { cumulative, previous_batch_total }
    }

    /// Cumulative covered bins.
    pub fn total_covered(&self) -> usize {
        self.cumulative.covered_bins()
    }

    /// Cumulative coverage percentage.
    pub fn total_percent(&self) -> f64 {
        self.cumulative.percent()
    }

    /// Scores one batch of per-input maps and commits them.
    ///
    /// Incremental coverage for *every* input in the batch is measured
    /// against the total recorded at the end of the previous batch, per the
    /// paper; the cumulative map is then advanced input by input so
    /// `total_after` is monotone within the batch.
    pub fn score_batch(&mut self, batch: &[CovMap]) -> BatchScores {
        self.score_batch_iter(batch)
    }

    /// [`Calculator::score_batch`] over borrowed maps — lets the fuzzing
    /// loop score worker-owned scratch buffers without collecting them
    /// into an owned slice first.
    pub fn score_batch_iter<'a>(
        &mut self,
        batch: impl IntoIterator<Item = &'a CovMap>,
    ) -> BatchScores {
        let before = self.cumulative.covered_bins();
        let batch = batch.into_iter();
        let mut inputs = Vec::with_capacity(batch.size_hint().0);
        for map in batch {
            let standalone = map.covered_bins();
            let incremental = map.count_new_vs(&self.previous_batch_total);
            self.cumulative.merge_from(map);
            inputs.push(InputCoverage {
                standalone,
                incremental,
                total_after: self.cumulative.covered_bins(),
                total_bins: self.cumulative.total_bins(),
            });
        }
        // Freeze the batch boundary by copying words into the existing
        // baseline buffer (allocation-free) instead of cloning the map.
        self.previous_batch_total.clone_from(&self.cumulative);
        let total_after = self.cumulative.covered_bins();
        BatchScores { inputs, total_after, batch_gain: total_after - before }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::{CondId, PointKind, SpaceBuilder};

    fn space(n: usize) -> Arc<Space> {
        let mut b = SpaceBuilder::new("t");
        for i in 0..n {
            b.register(format!("c{i}"), PointKind::Condition);
        }
        b.build()
    }

    fn map_with(space: &Arc<Space>, bins: &[(u32, bool)]) -> CovMap {
        let mut m = CovMap::new(space);
        for &(i, o) in bins {
            m.hit(CondId(i), o);
        }
        m
    }

    #[test]
    fn standalone_and_incremental_within_one_batch() {
        let s = space(4);
        let mut calc = Calculator::new(&s);
        let m1 = map_with(&s, &[(0, true), (1, true)]);
        let m2 = map_with(&s, &[(0, true), (2, false)]);
        let scores = calc.score_batch(&[m1, m2]);
        assert_eq!(scores.inputs[0].standalone, 2);
        assert_eq!(scores.inputs[0].incremental, 2);
        // m2's (0,true) is NOT subtracted: incremental is vs the previous
        // batch (empty), not vs earlier inputs of the same batch.
        assert_eq!(scores.inputs[1].standalone, 2);
        assert_eq!(scores.inputs[1].incremental, 2);
        assert_eq!(scores.total_after, 3);
        assert_eq!(scores.batch_gain, 3);
    }

    #[test]
    fn incremental_resets_only_at_batch_boundary() {
        let s = space(4);
        let mut calc = Calculator::new(&s);
        calc.score_batch(&[map_with(&s, &[(0, true)])]);
        let scores = calc.score_batch(&[map_with(&s, &[(0, true), (1, false)])]);
        assert_eq!(scores.inputs[0].standalone, 2);
        assert_eq!(scores.inputs[0].incremental, 1); // only (1,false) is new
        assert_eq!(scores.total_after, 2);
    }

    #[test]
    fn totals_are_monotone() {
        let s = space(8);
        let mut calc = Calculator::new(&s);
        let mut last = 0;
        for i in 0..8u32 {
            let scores = calc.score_batch(&[map_with(&s, &[(i, true)])]);
            assert!(scores.total_after >= last);
            last = scores.total_after;
        }
        assert_eq!(calc.total_covered(), 8);
        assert!((calc.total_percent() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let s = space(2);
        let mut calc = Calculator::new(&s);
        let scores = calc.score_batch(&[]);
        assert!(scores.inputs.is_empty());
        assert_eq!(scores.batch_gain, 0);
    }

    #[test]
    fn from_parts_restores_incremental_baseline() {
        let s = space(4);
        let mut calc = Calculator::new(&s);
        calc.score_batch(&[map_with(&s, &[(0, true)])]);
        let restored =
            Calculator::from_parts(calc.total().clone(), calc.previous_batch_total().clone());
        // The restored calculator scores the next batch identically.
        let mut a = calc.clone();
        let mut b = restored;
        let batch = [map_with(&s, &[(0, true), (1, false)])];
        assert_eq!(a.score_batch(&batch), b.score_batch(&batch));
    }

    #[test]
    #[should_panic(expected = "previous-batch total exceeds")]
    fn from_parts_rejects_impossible_state() {
        let s = space(2);
        let baseline = map_with(&s, &[(0, true)]);
        Calculator::from_parts(CovMap::new(&s), baseline);
    }

    #[test]
    fn input_percent() {
        let ic = InputCoverage { standalone: 1, incremental: 1, total_after: 5, total_bins: 10 };
        assert!((ic.total_percent() - 50.0).abs() < 1e-12);
    }
}
