//! VCS-style condition-coverage infrastructure.
//!
//! The paper measures *condition coverage* reported by Synopsys VCS: every
//! boolean condition in the RTL contributes two coverage bins (observed
//! true, observed false). This crate reproduces that model for the Rust
//! microarchitectural simulators:
//!
//! * a [`Space`] enumerates every condition point a design registers at
//!   construction time (fixed denominator, like an RTL elaboration);
//! * a [`CovMap`] is one run's bitmap over the space's bins;
//! * a [`Calculator`] implements the paper's Coverage Calculator, computing
//!   **stand-alone**, **incremental** and **total** coverage per generated
//!   input, batch by batch (§IV-B of the paper).
//!
//! # Examples
//!
//! ```
//! use chatfuzz_coverage::{CovMap, PointKind, SpaceBuilder};
//!
//! let mut builder = SpaceBuilder::new("demo");
//! let c0 = builder.register("alu.is_zero", PointKind::Condition);
//! let space = builder.build();
//!
//! let mut map = CovMap::new(&space);
//! map.hit(c0, true);
//! assert_eq!(map.covered_bins(), 1);
//! map.hit(c0, false);
//! assert_eq!(map.covered_bins(), 2);
//! assert_eq!(map.percent(), 100.0);
//! ```

pub mod calculator;
pub mod map;
pub mod space;

pub use calculator::{BatchScores, Calculator, InputCoverage};
pub use map::CovMap;
pub use space::{CondId, PointKind, Space, SpaceBuilder};

/// Records the boolean `$cond` into `$map` under `$id` and evaluates to the
/// condition's value, so instrumentation can wrap `if` expressions in place:
///
/// ```
/// use chatfuzz_coverage::{cover, CovMap, PointKind, SpaceBuilder};
///
/// let mut b = SpaceBuilder::new("demo");
/// let id = b.register("fetch.hit", PointKind::Condition);
/// let space = b.build();
/// let mut map = CovMap::new(&space);
///
/// let tag_match = true;
/// if cover!(map, id, tag_match) {
///     // hit path
/// }
/// assert_eq!(map.covered_bins(), 1);
/// ```
#[macro_export]
macro_rules! cover {
    ($map:expr, $id:expr, $cond:expr) => {{
        let outcome: bool = $cond;
        $map.hit($id, outcome);
        outcome
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cover_macro_returns_condition_value() {
        let mut b = SpaceBuilder::new("t");
        let id = b.register("x", PointKind::Condition);
        let space = b.build();
        let mut map = CovMap::new(&space);
        assert!(cover!(map, id, 1 + 1 == 2));
        assert!(!cover!(map, id, 1 + 1 == 3));
        assert_eq!(map.covered_bins(), 2);
    }
}
