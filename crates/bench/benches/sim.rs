//! Component benchmarks: decoder/encoder throughput and simulator
//! instructions-per-second (golden model, Rocket, BOOM, coverage overhead).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use chatfuzz_corpus::{CorpusConfig, CorpusGenerator};
use chatfuzz_isa::{decode, encode, encode_program};
use chatfuzz_rtl::{Boom, BoomConfig, BugConfig, Dut, Rocket, RocketConfig};
use chatfuzz_softcore::{SoftCore, SoftCoreConfig};

/// A deterministic, loop-heavy program image (wrapped for trap safety).
fn workload() -> Vec<u8> {
    let mut corpus = CorpusGenerator::new(CorpusConfig { seed: 3, ..Default::default() });
    let mut body = Vec::new();
    for f in corpus.generate(8) {
        body.extend_from_slice(&encode_program(&f).unwrap());
    }
    chatfuzz::harness::wrap(&body, chatfuzz::harness::HarnessConfig::default())
}

fn bench_codec(c: &mut Criterion) {
    let mut corpus = CorpusGenerator::new(CorpusConfig::default());
    let instrs: Vec<_> = corpus.generate(32).into_iter().flatten().collect();
    let words: Vec<u32> = instrs.iter().map(|i| encode(i).unwrap()).collect();

    let mut group = c.benchmark_group("codec");
    group.throughput(Throughput::Elements(words.len() as u64));
    group.bench_function("decode", |b| {
        b.iter(|| {
            let mut ok = 0usize;
            for w in &words {
                ok += usize::from(decode(std::hint::black_box(*w)).is_ok());
            }
            ok
        })
    });
    group.throughput(Throughput::Elements(instrs.len() as u64));
    group.bench_function("encode", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in &instrs {
                acc = acc.wrapping_add(u64::from(encode(std::hint::black_box(i)).unwrap()));
            }
            acc
        })
    });
    group.finish();
}

fn bench_simulators(c: &mut Criterion) {
    let image = workload();
    let mut group = c.benchmark_group("simulators");

    let golden = SoftCore::new(SoftCoreConfig::default());
    let steps = golden.run(&image).len() as u64;
    group.throughput(Throughput::Elements(steps));
    group.bench_function("golden_model", |b| b.iter(|| golden.run(std::hint::black_box(&image))));

    let mut rocket = Rocket::new(RocketConfig::default());
    group.bench_function("rocket_buggy", |b| b.iter(|| rocket.run(std::hint::black_box(&image))));

    let mut fixed = Rocket::new(RocketConfig { bugs: BugConfig::all_off(), ..Default::default() });
    group.bench_function("rocket_bugfree", |b| b.iter(|| fixed.run(std::hint::black_box(&image))));

    let mut boom = Boom::new(BoomConfig::default());
    group.bench_function("boom", |b| b.iter(|| boom.run(std::hint::black_box(&image))));
    group.finish();
}

fn bench_budgets(c: &mut Criterion) {
    // Cycle cost versus instruction budget: how the per-test cost scales.
    let image = workload();
    let mut group = c.benchmark_group("rocket_budget");
    for budget in [256usize, 1024, 4096] {
        let mut dut = Rocket::new(RocketConfig { max_steps: budget, ..Default::default() });
        group.bench_with_input(BenchmarkId::from_parameter(budget), &budget, |b, _| {
            b.iter(|| dut.run(std::hint::black_box(&image)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_codec, bench_simulators, bench_budgets);
criterion_main!(benches);
