//! ML-stack benchmarks: tokenizer, transformer forward/backward, sampling,
//! and one PPO optimisation step.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;

use chatfuzz_autograd::Tape;
use chatfuzz_corpus::{CorpusConfig, CorpusGenerator};
use chatfuzz_lm::{Gpt, GptConfig, Tokenizer};
use chatfuzz_rl::{PpoConfig, PpoTrainer};

fn setup() -> (Tokenizer, Vec<Vec<u32>>) {
    let mut corpus = CorpusGenerator::new(CorpusConfig::default());
    let programs = corpus.generate_words(64);
    let tokenizer = Tokenizer::train(&programs, 256);
    (tokenizer, programs)
}

fn bench_tokenizer(c: &mut Criterion) {
    let (tokenizer, programs) = setup();
    let mut group = c.benchmark_group("tokenizer");
    let total_words: u64 = programs.iter().map(|p| p.len() as u64).sum();
    group.throughput(Throughput::Elements(total_words));
    group.bench_function("encode_corpus", |b| {
        b.iter(|| {
            programs.iter().map(|p| tokenizer.encode(std::hint::black_box(p)).len()).sum::<usize>()
        })
    });
    let encoded: Vec<Vec<u32>> = programs.iter().map(|p| tokenizer.encode(p)).collect();
    group.bench_function("decode_corpus", |b| {
        b.iter(|| {
            encoded
                .iter()
                .map(|t| tokenizer.decode_to_bytes(std::hint::black_box(t)).len())
                .sum::<usize>()
        })
    });
    group.finish();
}

fn bench_transformer(c: &mut Criterion) {
    let (tokenizer, programs) = setup();
    let mut rng = StdRng::seed_from_u64(0);
    let model = Gpt::new(GptConfig::small(tokenizer.vocab_size() as usize), &mut rng);
    let seq: Vec<u32> =
        tokenizer.encode(&programs[0])[..48.min(tokenizer.encode(&programs[0]).len())].to_vec();

    let mut group = c.benchmark_group("transformer");
    group.bench_function("forward_48tok", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            model.forward(&mut tape, std::hint::black_box(&seq))
        })
    });
    group.bench_function("forward_backward_48tok", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let (loss, _) = model.lm_loss(&mut tape, std::hint::black_box(&seq));
            tape.backward(loss);
        })
    });
    group.bench_function("sample_16_new_tokens", |b| {
        b.iter(|| model.generate(std::hint::black_box(&seq[..8]), 16, 1.0, 16, &mut rng))
    });
    group.finish();
}

fn bench_ppo(c: &mut Criterion) {
    let (tokenizer, _) = setup();
    let mut rng = StdRng::seed_from_u64(0);
    let model = Gpt::new(GptConfig::tiny(tokenizer.vocab_size() as usize), &mut rng);
    let mut trainer =
        PpoTrainer::new(model, PpoConfig { max_new_tokens: 24, epochs: 1, ..Default::default() });
    let rollouts: Vec<_> = (0..4)
        .map(|i| {
            let tokens = trainer.sample(&[1], &mut rng);
            trainer.score(tokens, 1, i as f32 * 0.5)
        })
        .collect();
    c.bench_function("ppo_step_4rollouts", |b| {
        b.iter(|| trainer.step(std::hint::black_box(&rollouts)))
    });
}

criterion_group!(benches, bench_tokenizer, bench_transformer, bench_ppo);
criterion_main!(benches);
