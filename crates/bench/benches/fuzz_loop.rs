//! End-to-end loop benchmarks: the mismatch detector, the coverage
//! calculator, and a complete small fuzzing round (generate → simulate →
//! diff → score → feedback).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use chatfuzz::campaign::{CampaignBuilder, StopCondition};
use chatfuzz::harness::{wrap, HarnessConfig};
use chatfuzz::mismatch::diff_traces;
use chatfuzz_baselines::{MutatorConfig, TheHuzz};
use chatfuzz_corpus::{CorpusConfig, CorpusGenerator};
use chatfuzz_coverage::Calculator;
use chatfuzz_isa::encode_program;
use chatfuzz_rtl::{Dut, Rocket, RocketConfig};
use chatfuzz_softcore::{SoftCore, SoftCoreConfig};

fn bench_mismatch_detector(c: &mut Criterion) {
    let mut corpus = CorpusGenerator::new(CorpusConfig { seed: 5, ..Default::default() });
    let mut body = Vec::new();
    for f in corpus.generate(8) {
        body.extend_from_slice(&encode_program(&f).unwrap());
    }
    let image = wrap(&body, HarnessConfig::default());
    let golden = SoftCore::new(SoftCoreConfig::default()).run(&image);
    let mut rocket = Rocket::new(RocketConfig::default());
    let dut = rocket.run(&image);

    let mut group = c.benchmark_group("mismatch");
    group.throughput(Throughput::Elements(golden.len() as u64));
    group.bench_function("diff_traces", |b| {
        b.iter(|| diff_traces(std::hint::black_box(&golden), std::hint::black_box(&dut.trace)))
    });
    group.finish();
}

fn bench_coverage_calculator(c: &mut Criterion) {
    let mut rocket = Rocket::new(RocketConfig::default());
    let mut corpus = CorpusGenerator::new(CorpusConfig { seed: 9, ..Default::default() });
    let maps: Vec<_> = corpus
        .generate(16)
        .into_iter()
        .map(|f| {
            let image = wrap(&encode_program(&f).unwrap(), HarnessConfig::default());
            rocket.run(&image).coverage
        })
        .collect();
    c.bench_function("coverage_score_batch_16", |b| {
        b.iter(|| {
            let mut calc = Calculator::new(rocket.space());
            calc.score_batch(std::hint::black_box(&maps))
        })
    });
}

fn bench_fuzz_round(c: &mut Criterion) {
    c.bench_function("campaign_32_tests_thehuzz", |b| {
        b.iter(|| {
            let mut campaign = CampaignBuilder::new(|| {
                Box::new(Rocket::new(RocketConfig::default())) as Box<dyn Dut>
            })
            .batch_size(16)
            .workers(4)
            .generator(TheHuzz::new(MutatorConfig::default()))
            .build();
            campaign.run_until(std::hint::black_box(&[StopCondition::Tests(32)]))
        })
    });

    // The session amortises worker/DUT spawn-up across batches; measure a
    // pre-built session stepping one batch at a time.
    let mut campaign =
        CampaignBuilder::new(|| Box::new(Rocket::new(RocketConfig::default())) as Box<dyn Dut>)
            .batch_size(16)
            .workers(4)
            .generator(TheHuzz::new(MutatorConfig::default()))
            .build();
    c.bench_function("campaign_step_batch_16", |b| {
        b.iter(|| std::hint::black_box(campaign.step_batch()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_mismatch_detector, bench_coverage_calculator, bench_fuzz_round
}
criterion_main!(benches);
