//! Shared support for the experiment binaries (`src/bin/*`) and Criterion
//! benches: standard configurations, a trained-generator factory, and
//! CSV/markdown/JSON result writers.
//!
//! Every experiment binary regenerates one table or figure of the paper's
//! evaluation and writes its rows to stdout, to `results/<name>.csv`, and
//! — through the library's single JSON code path — to
//! `results/<name>.json`.

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::Arc;

use chatfuzz::campaign::{CampaignBuilder, CampaignReport, DutFactory, StopCondition};
use chatfuzz::generator::{LmGenerator, LmGeneratorConfig};
use chatfuzz::persist;
use chatfuzz::pipeline::{train_chatfuzz, ChatFuzzModel, PipelineConfig, PipelineReport};
use chatfuzz::report;
use chatfuzz_baselines::InputGenerator;
use chatfuzz_rl::PpoConfig;
use chatfuzz_rtl::{Boom, BoomConfig, BugConfig, Dut, Rocket, RocketConfig};

/// Experiment effort level, selected with the `CHATFUZZ_SCALE` env var
/// (`quick` | `full`, default `quick`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Minutes-scale runs; shapes hold, absolute counts are small.
    Quick,
    /// The configuration used for the committed EXPERIMENTS.md numbers.
    Full,
}

impl Scale {
    /// Reads the scale from the environment.
    pub fn from_env() -> Scale {
        match std::env::var("CHATFUZZ_SCALE").as_deref() {
            Ok("full") => Scale::Full,
            _ => Scale::Quick,
        }
    }

    /// Total tests for campaign-style experiments.
    pub fn campaign_tests(self) -> usize {
        match self {
            Scale::Quick => 1200,
            Scale::Full => 6000,
        }
    }

    /// The pipeline configuration for this scale.
    pub fn pipeline(self, seed: u64) -> PipelineConfig {
        match self {
            Scale::Quick => PipelineConfig::quick(seed),
            Scale::Full => PipelineConfig::experiment(seed),
        }
    }
}

/// Training seed for the experiment binaries. Retuned for the vendored
/// offline RNG streams (see `vendor/README.md`): the upstream-tuned seed
/// no longer reproduced the ChatFuzz-leads shape, this one does.
pub const TRAIN_SEED: u64 = 11;

/// Builds a buggy-Rocket factory (the paper's RocketCore target).
pub fn rocket_factory() -> DutFactory {
    Arc::new(|| Box::new(Rocket::new(RocketConfig::default())) as Box<dyn Dut>)
}

/// Builds a bug-free-Rocket factory (for sanity baselines).
pub fn fixed_rocket_factory() -> DutFactory {
    Arc::new(|| {
        Box::new(Rocket::new(RocketConfig { bugs: BugConfig::all_off(), ..Default::default() }))
            as Box<dyn Dut>
    })
}

/// Builds a BOOM factory.
pub fn boom_factory() -> DutFactory {
    Arc::new(|| Box::new(Boom::new(BoomConfig::default())) as Box<dyn Dut>)
}

/// The standard experiment session: 32-input batches on 10 workers (the
/// paper's VCS instance count). Add generators/observers/scheduler and
/// `build()`.
pub fn session<'g>(factory: &DutFactory) -> CampaignBuilder<'g> {
    CampaignBuilder::from_factory(Arc::clone(factory)).batch_size(32).workers(10)
}

/// Runs one generator to a test budget with the standard session — the
/// one-liner most experiments need.
pub fn run_budget<'g>(
    factory: &DutFactory,
    generator: impl InputGenerator + 'g,
    tests: usize,
) -> CampaignReport {
    session(factory).generator(generator).build().run_until(&[StopCondition::Tests(tests)])
}

/// The `--snapshot-path <file>` / `--resume` flags every campaign
/// experiment binary accepts (see [`run_budget_durable`]).
#[derive(Debug, Clone, Default)]
pub struct SnapshotArgs {
    /// Where to persist the campaign snapshot (and look for one when
    /// resuming). `None` disables persistence.
    pub path: Option<PathBuf>,
    /// Resume from the snapshot at `path` if it exists.
    pub resume: bool,
}

impl SnapshotArgs {
    /// Parses the process arguments.
    ///
    /// # Panics
    ///
    /// Panics if `--snapshot-path` has no value, `--resume` was given
    /// without `--snapshot-path`, or an unrecognised flag appears — a
    /// typo like `-resume` must fail loudly rather than silently run
    /// without resuming (and overwrite the checkpoint it was meant to
    /// continue).
    pub fn from_env_args() -> SnapshotArgs {
        let mut out = SnapshotArgs::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--snapshot-path" => {
                    let value = args.next().expect("--snapshot-path needs a file argument");
                    out.path = Some(PathBuf::from(value));
                }
                "--resume" => out.resume = true,
                other => panic!("unknown argument `{other}` (expected --snapshot-path/--resume)"),
            }
        }
        assert!(
            !out.resume || out.path.is_some(),
            "--resume needs --snapshot-path to know where the snapshot lives"
        );
        out
    }

    /// The snapshot path for one named campaign of a multi-campaign
    /// binary: `--snapshot-path results/fig2.json` plus name `thehuzz`
    /// gives `results/fig2-thehuzz.json`.
    pub fn path_for(&self, name: &str) -> Option<PathBuf> {
        let path = self.path.as_ref()?;
        let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("snapshot");
        let ext = path.extension().and_then(|s| s.to_str()).unwrap_or("json");
        Some(path.with_file_name(format!("{stem}-{name}.{ext}")))
    }
}

/// Prints what a snapshot recovery had to step over, so silent
/// degradation (quarantined corpses, lineage fallback) is visible in
/// the bench logs.
fn report_degradation(recovery: &persist::Recovery) {
    for path in &recovery.quarantined {
        println!("[resume] quarantined corrupt snapshot: {}", path.display());
    }
    for (path, error) in &recovery.skipped {
        println!("[resume] skipped {}: {error}", path.display());
    }
    if recovery.snapshot.is_some() && recovery.fallback_depth > 0 {
        println!(
            "[resume] fell back {} lineage entries to the last good one",
            recovery.fallback_depth
        );
    }
}

/// The finished report of an already-complete snapshot: `Some` when
/// `--resume` was given and the snapshot for `name` has reached the
/// budget, so the caller can skip expensive campaign setup (notably the
/// ~minutes of LM pipeline training) whose run would execute zero
/// batches anyway.
pub fn completed_report(
    factory: &DutFactory,
    name: &str,
    tests: usize,
    args: &SnapshotArgs,
) -> Option<CampaignReport> {
    if !args.resume {
        return None;
    }
    let path = args.path_for(name)?;
    if !path.exists() {
        return None;
    }
    let space = factory().space().clone();
    let recovery = persist::load_latest_valid(&path, &space);
    report_degradation(&recovery);
    let snapshot = recovery.snapshot?;
    if snapshot.tests_run() < tests {
        return None;
    }
    println!(
        "[resume] {}: already complete at {} tests, {:.2}% coverage",
        path.display(),
        snapshot.tests_run(),
        snapshot.coverage_pct()
    );
    Some(snapshot.report())
}

/// [`run_budget`] with durable snapshots: with `--resume` and an existing
/// snapshot the campaign continues where the file left off (coverage,
/// history, mismatch clusters, scheduler state), and with
/// `--snapshot-path` the final state is persisted for the next
/// invocation.
///
/// On a mid-budget resume the rebuilt generator is fast-forwarded past
/// the `snapshot.tests_run()` inputs the interrupted run already
/// consumed. For feedback-free generators (random regression, corpus
/// replay) that continues the exact input stream. Feedback-*driven*
/// generators (TheHuzz's mutation pool, the ChatFuzz LM's online
/// training) cannot be restored this way — their `observe` history died
/// with the process — so their resumed tail explores from a reset
/// feedback state: accumulated coverage is exact, the remaining inputs
/// are a fresh exploration rather than a replay of the lost run's.
pub fn run_budget_durable<'g>(
    factory: &DutFactory,
    mut generator: impl InputGenerator + 'g,
    tests: usize,
    name: &str,
    args: &SnapshotArgs,
) -> CampaignReport {
    let path = args.path_for(name);
    let mut resume_from = None;
    if args.resume {
        let path = path.as_ref().expect("resume implies a snapshot path");
        let space = factory().space().clone();
        // Last-good fallback: a torn or corrupted-in-place snapshot is
        // quarantined and the freshest valid lineage entry (the rotated
        // `.1`, `.2`, … auto-checkpoints) resumes instead; with nothing
        // valid anywhere, the campaign restarts from scratch rather
        // than dying on a bad file.
        let recovery = persist::load_latest_valid(path, &space);
        report_degradation(&recovery);
        if let Some(snapshot) = recovery.snapshot {
            println!(
                "[resume] {}: {} tests, {:.2}% coverage",
                path.display(),
                snapshot.tests_run(),
                snapshot.coverage_pct()
            );
            // Skip the (possibly expensive) fast-forward when the budget
            // is already met and no batch will run anyway.
            if snapshot.tests_run() > 0 && snapshot.tests_run() < tests {
                let _ = generator.next_batch(snapshot.tests_run());
            }
            resume_from = Some(snapshot);
        }
    }
    let mut builder = session(factory).generator(generator);
    if let Some(snapshot) = resume_from {
        builder = builder.resume(snapshot);
    }
    let mut campaign = builder.build();
    let save = |campaign: &chatfuzz::campaign::Campaign<'_>, path: &PathBuf| {
        persist::save_snapshot(path, &campaign.snapshot())
            .unwrap_or_else(|e| panic!("cannot write snapshot {}: {e}", path.display()));
    };
    if let Some(path) = &path {
        // Probe the destination before fuzzing — an unwritable path must
        // surface in milliseconds, not after the whole budget ran. The
        // probe writes a sibling file so an existing checkpoint is never
        // touched before the campaign has produced something newer.
        let probe = path.with_extension("probe");
        save(&campaign, &probe);
        let _ = std::fs::remove_file(&probe);
    }
    let report = campaign.run_until(&[StopCondition::Tests(tests)]);
    if let Some(path) = &path {
        save(&campaign, path);
        println!("[snapshot] {}", path.display());
    }
    report
}

/// Trains the full ChatFuzz pipeline against a fresh Rocket and wraps the
/// result as the fuzzing-loop generator (online step-3 training enabled).
pub fn trained_chatfuzz_generator(scale: Scale, seed: u64) -> (LmGenerator, PipelineReport) {
    let factory = rocket_factory();
    let cfg = scale.pipeline(seed);
    let (model, report) = train_chatfuzz(&cfg, &factory);
    let total_bins = factory().space().total_bins();
    let generator = generator_from_model(model, seed, total_bins);
    (generator, report)
}

/// Wraps a trained model as the campaign generator.
pub fn generator_from_model(model: ChatFuzzModel, seed: u64, total_bins: usize) -> LmGenerator {
    let ppo = PpoConfig {
        max_new_tokens: 56,
        lr: 3e-4,
        temperature: 0.9,
        top_k: 24,
        ..Default::default()
    };
    let cfg = LmGeneratorConfig { seed, total_bins, ..Default::default() };
    LmGenerator::new(model.tokenizer, model.policy, ppo, model.prompt_pool, cfg)
}

fn results_path(name: &str, ext: &str) -> PathBuf {
    let dir = PathBuf::from("results");
    let _ = fs::create_dir_all(&dir);
    dir.join(format!("{name}.{ext}"))
}

/// Writes rows to `results/<name>.csv` (and echoes the path).
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) {
    let path = results_path(name, "csv");
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    fs::write(&path, out).expect("write results csv");
    println!("[written] {}", path.display());
}

/// Writes a campaign report to `results/<name>.json` through the
/// library's JSON code path (and echoes the path).
pub fn write_report_json(name: &str, report: &CampaignReport) {
    let path = results_path(name, "json");
    fs::write(&path, report::json(report)).expect("write results json");
    println!("[written] {}", path.display());
}

/// Prints a markdown table to stdout.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    println!("| {} |", header.join(" | "));
    println!("|{}|", header.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
    let mut stdout = std::io::stdout();
    let _ = stdout.flush();
}

/// Formats a campaign's history as CSV rows (`tests,pct,cycles,wall_s`).
pub fn history_rows(report: &CampaignReport) -> Vec<Vec<String>> {
    report
        .history
        .iter()
        .map(|p| {
            vec![
                p.tests.to_string(),
                format!("{:.2}", p.coverage_pct),
                p.sim_cycles.to_string(),
                format!("{:.2}", p.wall.as_secs_f64()),
            ]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use chatfuzz_baselines::{MutatorConfig, TheHuzz};

    #[test]
    fn scale_env_defaults_to_quick() {
        assert_eq!(Scale::from_env(), Scale::Quick);
        assert!(Scale::Quick.campaign_tests() < Scale::Full.campaign_tests());
    }

    #[test]
    fn factories_elaborate_consistent_spaces() {
        let f = rocket_factory();
        assert_eq!(f().space().fingerprint(), f().space().fingerprint());
        let b = boom_factory();
        assert_ne!(f().space().fingerprint(), b().space().fingerprint());
    }

    #[test]
    fn run_budget_hits_the_budget() {
        let factory = rocket_factory();
        let report = run_budget(&factory, TheHuzz::new(MutatorConfig::default()), 32);
        assert_eq!(report.tests_run, 32);
        assert!(report.final_coverage_pct > 0.0);
    }
}
