//! Shared support for the experiment binaries (`src/bin/*`) and Criterion
//! benches: standard configurations, a trained-generator factory, and
//! CSV/markdown result writers.
//!
//! Every experiment binary regenerates one table or figure of the paper's
//! evaluation (see DESIGN.md §4 for the index) and writes its rows both to
//! stdout and to `results/<name>.csv`.

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

use chatfuzz::fuzz::{CampaignConfig, CampaignReport};
use chatfuzz::generator::{LmGenerator, LmGeneratorConfig};
use chatfuzz::pipeline::{train_chatfuzz, ChatFuzzModel, PipelineConfig, PipelineReport};
use chatfuzz_rl::PpoConfig;
use chatfuzz_rtl::{Boom, BoomConfig, BugConfig, Dut, Rocket, RocketConfig};

/// Experiment effort level, selected with the `CHATFUZZ_SCALE` env var
/// (`quick` | `full`, default `quick`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Minutes-scale runs; shapes hold, absolute counts are small.
    Quick,
    /// The configuration used for the committed EXPERIMENTS.md numbers.
    Full,
}

impl Scale {
    /// Reads the scale from the environment.
    pub fn from_env() -> Scale {
        match std::env::var("CHATFUZZ_SCALE").as_deref() {
            Ok("full") => Scale::Full,
            _ => Scale::Quick,
        }
    }

    /// Total tests for campaign-style experiments.
    pub fn campaign_tests(self) -> usize {
        match self {
            Scale::Quick => 1200,
            Scale::Full => 6000,
        }
    }

    /// The pipeline configuration for this scale.
    pub fn pipeline(self, seed: u64) -> PipelineConfig {
        match self {
            Scale::Quick => PipelineConfig::quick(seed),
            Scale::Full => PipelineConfig::experiment(seed),
        }
    }
}

/// Builds a buggy-Rocket factory (the paper's RocketCore target).
pub fn rocket_factory() -> impl Fn() -> Box<dyn Dut> + Sync {
    || Box::new(Rocket::new(RocketConfig::default())) as Box<dyn Dut>
}

/// Builds a bug-free-Rocket factory (for sanity baselines).
pub fn fixed_rocket_factory() -> impl Fn() -> Box<dyn Dut> + Sync {
    || {
        Box::new(Rocket::new(RocketConfig { bugs: BugConfig::all_off(), ..Default::default() }))
            as Box<dyn Dut>
    }
}

/// Builds a BOOM factory.
pub fn boom_factory() -> impl Fn() -> Box<dyn Dut> + Sync {
    || Box::new(Boom::new(BoomConfig::default())) as Box<dyn Dut>
}

/// Standard campaign configuration for a given test budget.
pub fn campaign(total_tests: usize) -> CampaignConfig {
    CampaignConfig {
        total_tests,
        batch_size: 32,
        workers: 10,
        history_every: 50,
        ..Default::default()
    }
}

/// Trains the full ChatFuzz pipeline against a fresh Rocket and wraps the
/// result as the fuzzing-loop generator (online step-3 training enabled).
pub fn trained_chatfuzz_generator(scale: Scale, seed: u64) -> (LmGenerator, PipelineReport) {
    let mut dut = Rocket::new(RocketConfig::default());
    let cfg = scale.pipeline(seed);
    let (model, report) = train_chatfuzz(&cfg, &mut dut);
    let total_bins = dut.space().total_bins();
    let generator = generator_from_model(model, seed, total_bins);
    (generator, report)
}

/// Wraps a trained model as the campaign generator.
pub fn generator_from_model(model: ChatFuzzModel, seed: u64, total_bins: usize) -> LmGenerator {
    let ppo = PpoConfig {
        max_new_tokens: 56,
        lr: 3e-4,
        temperature: 0.9,
        top_k: 24,
        ..Default::default()
    };
    let cfg = LmGeneratorConfig { seed, total_bins, ..Default::default() };
    LmGenerator::new(model.tokenizer, model.policy, ppo, model.prompt_pool, cfg)
}

/// Writes rows to `results/<name>.csv` (and echoes the path).
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) {
    let dir = PathBuf::from("results");
    let _ = fs::create_dir_all(&dir);
    let path = dir.join(format!("{name}.csv"));
    let mut out = String::new();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    fs::write(&path, out).expect("write results csv");
    println!("[written] {}", path.display());
}

/// Prints a markdown table to stdout.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    println!("| {} |", header.join(" | "));
    println!("|{}|", header.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
    let mut stdout = std::io::stdout();
    let _ = stdout.flush();
}

/// Formats a campaign's history as CSV rows (`tests,pct,cycles,wall_s`).
pub fn history_rows(report: &CampaignReport) -> Vec<Vec<String>> {
    report
        .history
        .iter()
        .map(|p| {
            vec![
                p.tests.to_string(),
                format!("{:.2}", p.coverage_pct),
                p.sim_cycles.to_string(),
                format!("{:.2}", p.wall.as_secs_f64()),
            ]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_env_defaults_to_quick() {
        assert_eq!(Scale::from_env(), Scale::Quick);
        assert!(Scale::Quick.campaign_tests() < Scale::Full.campaign_tests());
    }

    #[test]
    fn factories_elaborate_consistent_spaces() {
        let f = rocket_factory();
        assert_eq!(f().space().fingerprint(), f().space().fingerprint());
        let b = boom_factory();
        assert_ne!(f().space().fingerprint(), b().space().fingerprint());
    }
}
