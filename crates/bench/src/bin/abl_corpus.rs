//! **Ablation A3** — corpus entanglement: trains the LM on the normal
//! function-shaped corpus vs the *shuffled* corpus (identical instruction
//! multiset, destroyed inter-dependency). The paper's central thesis is
//! that interdependent data/control-flow training data is what lets the
//! model reach deep states; shuffling should cost coverage.

use chatfuzz::generator::{LmGenerator, LmGeneratorConfig};
use chatfuzz_bench::{
    print_table, rocket_factory, run_budget, write_csv, write_report_json, Scale, TRAIN_SEED,
};
use chatfuzz_corpus::{shuffle_bodies, CorpusConfig, CorpusGenerator};
use chatfuzz_lm::{train_lm, Gpt, GptConfig, Tokenizer};
use chatfuzz_rl::PpoConfig;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let scale = Scale::from_env();
    let tests = scale.campaign_tests();
    let factory = rocket_factory();
    let pcfg = scale.pipeline(TRAIN_SEED);

    let mut corpus = CorpusGenerator::new(CorpusConfig { seed: 42, ..Default::default() });
    let entangled = corpus.generate_words(pcfg.corpus_functions);
    let shuffled = shuffle_bodies(&entangled, 99);

    let run_with = |programs: &[Vec<u32>], label: &str| {
        println!("[{label}] training LM…");
        let tokenizer = Tokenizer::train(programs, pcfg.vocab_size);
        let token_seqs: Vec<Vec<u32>> = programs.iter().map(|p| tokenizer.encode(p)).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let mut policy = match scale {
            Scale::Quick => Gpt::new(GptConfig::compact(tokenizer.vocab_size() as usize), &mut rng),
            Scale::Full => Gpt::new(GptConfig::small(tokenizer.vocab_size() as usize), &mut rng),
        };
        train_lm(&mut policy, &token_seqs, pcfg.lm_train, &mut rng);
        let total_bins = factory().space().total_bins();
        let ppo = PpoConfig {
            max_new_tokens: 56,
            lr: 3e-4,
            temperature: 0.9,
            top_k: 24,
            ..Default::default()
        };
        let gcfg = LmGeneratorConfig { seed: 42, total_bins, ..Default::default() };
        let generator = LmGenerator::new(tokenizer, policy, ppo, programs.to_vec(), gcfg);
        println!("[{label}] fuzzing…");
        run_budget(&factory, generator, tests)
    };

    let with_structure = run_with(&entangled, "entangled corpus");
    let without = run_with(&shuffled, "shuffled corpus");

    let rows = vec![
        vec![
            "function-shaped (entangled)".into(),
            format!("{:.2}", with_structure.final_coverage_pct),
        ],
        vec!["shuffled (same multiset)".into(), format!("{:.2}", without.final_coverage_pct)],
    ];
    print_table("A3 — corpus-entanglement ablation (RocketCore)", &["corpus", "coverage %"], &rows);
    write_csv("abl_corpus", &["corpus", "coverage_pct"], &rows);
    write_report_json("abl_corpus_entangled", &with_structure);
    write_report_json("abl_corpus_shuffled", &without);
    println!(
        "\ndelta: {:+.2} points for interdependent training data",
        with_structure.final_coverage_pct - without.final_coverage_pct
    );
}
