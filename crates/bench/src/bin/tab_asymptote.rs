//! **Experiment E4 (paper §V-A, row 3)** — asymptotic coverage at a large
//! test budget. Paper: 199 K tests give ChatFuzz 79.14 % vs TheHuzz
//! 76.7 %. We run a scaled budget (the simulator saturates earlier than a
//! full VCS testbed) and check the same ordering with a narrowing gap.

use chatfuzz_baselines::{MutatorConfig, TheHuzz};
use chatfuzz_bench::{
    print_table, rocket_factory, run_budget, trained_chatfuzz_generator, write_csv,
    write_report_json, Scale, TRAIN_SEED,
};

fn main() {
    let scale = Scale::from_env();
    let tests = scale.campaign_tests() * 2; // the long-run budget
    let factory = rocket_factory();

    println!("== Asymptotic coverage on RocketCore ({tests} tests/generator) ==");
    println!("[1/2] training + fuzzing ChatFuzz…");
    let (mut chatfuzz_gen, _) = trained_chatfuzz_generator(scale, TRAIN_SEED);
    let chatfuzz = run_budget(&factory, &mut chatfuzz_gen, tests);
    println!("[2/2] fuzzing TheHuzz…");
    let thehuzz = run_budget(&factory, TheHuzz::new(MutatorConfig::default()), tests);

    let rows = vec![
        vec!["paper (199K tests)".into(), "79.14".into(), "76.7".into()],
        vec![
            format!("measured ({tests} tests)"),
            format!("{:.2}", chatfuzz.final_coverage_pct),
            format!("{:.2}", thehuzz.final_coverage_pct),
        ],
    ];
    print_table(
        "E4 — asymptotic condition coverage (RocketCore)",
        &["row", "ChatFuzz %", "TheHuzz %"],
        &rows,
    );
    write_csv(
        "tab_asymptote",
        &["tests", "chatfuzz_pct", "thehuzz_pct"],
        &[vec![
            tests.to_string(),
            format!("{:.2}", chatfuzz.final_coverage_pct),
            format!("{:.2}", thehuzz.final_coverage_pct),
        ]],
    );
    write_report_json("tab_asymptote_chatfuzz", &chatfuzz);
    write_report_json("tab_asymptote_thehuzz", &thehuzz);
    assert!(
        chatfuzz.final_coverage_pct >= thehuzz.final_coverage_pct,
        "paper shape violated: ChatFuzz keeps the asymptotic lead"
    );
}
