//! **Experiment E3 (paper §V-A, row 2)** — effort to reach a fixed
//! coverage level. Paper: ChatFuzz reaches ~75 % in <1 h where TheHuzz
//! needs ~30 h (34.6× faster).
//!
//! Our testbed has no 30-hour wall clock; the anchor level is TheHuzz's
//! end-of-budget coverage, and effort is measured both in tests and in
//! simulated DUT cycles. The session history records the exact first
//! crossing, so these numbers are input-precise.

use chatfuzz_baselines::{MutatorConfig, TheHuzz};
use chatfuzz_bench::{
    completed_report, print_table, rocket_factory, run_budget_durable, trained_chatfuzz_generator,
    write_csv, write_report_json, Scale, SnapshotArgs, TRAIN_SEED,
};

fn main() {
    let scale = Scale::from_env();
    let tests = scale.campaign_tests();
    let factory = rocket_factory();
    let snapshots = SnapshotArgs::from_env_args();

    println!("== Time-to-coverage on RocketCore ({tests} tests/generator) ==");
    let chatfuzz = completed_report(&factory, "chatfuzz", tests, &snapshots).unwrap_or_else(|| {
        println!("[1/2] training + fuzzing ChatFuzz…");
        let (mut chatfuzz_gen, _) = trained_chatfuzz_generator(scale, TRAIN_SEED);
        run_budget_durable(&factory, &mut chatfuzz_gen, tests, "chatfuzz", &snapshots)
    });
    println!("[2/2] fuzzing TheHuzz…");
    let thehuzz = run_budget_durable(
        &factory,
        TheHuzz::new(MutatorConfig::default()),
        tests,
        "thehuzz",
        &snapshots,
    );
    write_report_json("tab_time_to_coverage_chatfuzz", &chatfuzz);
    write_report_json("tab_time_to_coverage_thehuzz", &thehuzz);

    // Anchor: TheHuzz's end-of-budget coverage — the analogue of the
    // paper's "the level TheHuzz needs ~30 hours for".
    let level = thehuzz.final_coverage_pct;

    let cf_tests = chatfuzz.tests_to_reach(level).unwrap_or(tests);
    let th_tests = thehuzz.tests_to_reach(level);
    let cf_cycles = chatfuzz.cycles_to_reach(level).unwrap_or(u64::MAX);
    let th_cycles = thehuzz.cycles_to_reach(level);

    let speedup_tests = th_tests.map(|t| t as f64 / cf_tests as f64).map(|s| format!("{s:.1}x"));
    let speedup_cycles = th_cycles.map(|c| c as f64 / cf_cycles as f64).map(|s| format!("{s:.1}x"));

    let fmt_opt_usize =
        |v: Option<usize>| v.map(|x| x.to_string()).unwrap_or_else(|| format!(">{tests}"));
    let fmt_opt_u64 =
        |v: Option<u64>| v.map(|x| x.to_string()).unwrap_or_else(|| "not reached".to_string());

    let rows = vec![
        vec![
            format!("{level:.2}% coverage"),
            cf_tests.to_string(),
            fmt_opt_usize(th_tests),
            speedup_tests.clone().unwrap_or_else(|| "not reached".into()),
        ],
        vec![
            "(simulated cycles)".into(),
            cf_cycles.to_string(),
            fmt_opt_u64(th_cycles),
            speedup_cycles.clone().unwrap_or_else(|| "not reached".into()),
        ],
    ];
    print_table(
        "E3 — effort to reach the ChatFuzz early-run coverage level (paper: 34.6x)",
        &["anchor", "ChatFuzz", "TheHuzz", "TheHuzz/ChatFuzz"],
        &rows,
    );
    write_csv(
        "tab_time_to_coverage",
        &["level_pct", "chatfuzz_tests", "thehuzz_tests", "chatfuzz_cycles", "thehuzz_cycles"],
        &[vec![
            format!("{level:.2}"),
            cf_tests.to_string(),
            fmt_opt_usize(th_tests),
            cf_cycles.to_string(),
            fmt_opt_u64(th_cycles),
        ]],
    );

    if let Some(s) = th_tests {
        assert!(
            s as f64 / cf_tests as f64 >= 1.0,
            "paper shape violated: ChatFuzz must not need MORE effort than TheHuzz \
             for TheHuzz's own final level"
        );
    }
    println!(
        "\nheadline: TheHuzz needs {} the tests / {} the cycles of ChatFuzz for {level:.2}%",
        speedup_tests.unwrap_or_else(|| "∞ (never reached)".into()),
        speedup_cycles.unwrap_or_else(|| "∞ (never reached)".into()),
    );
}
