//! **Experiment E7 (paper §III-B.2 / §IV-C.2)** — the model-cleanup RL
//! step. The disassembler reward of Eq. (1), `r = N − 5·Invalid`, must
//! raise the valid-instruction rate of the model's generations over the
//! PPO iterations (the paper monitors exactly this along with the KL and
//! mean rewards).

use chatfuzz_bench::{print_table, trained_chatfuzz_generator, write_csv, Scale, TRAIN_SEED};

fn main() {
    let scale = Scale::from_env();
    println!("== Cleanup-RL training curve ==");
    let (_, report) = trained_chatfuzz_generator(scale, TRAIN_SEED);

    let rows: Vec<Vec<String>> = report
        .cleanup_curve
        .iter()
        .map(|p| {
            vec![
                p.iter.to_string(),
                format!("{:.3}", p.mean_reward),
                format!("{:.1}", p.valid_fraction * 100.0),
            ]
        })
        .collect();
    print_table(
        "E7 — cleanup PPO: Eq.(1) reward and valid-instruction rate",
        &["iteration", "mean reward", "valid %"],
        &rows,
    );
    write_csv("tab_cleanup_training", &["iter", "mean_reward", "valid_pct"], &rows);

    // Also report the unsupervised loss curve end points.
    let lm_first = report.lm_curve.first().expect("lm curve");
    let lm_last = report.lm_curve.last().expect("lm curve");
    println!(
        "\nLM pre-training: loss {:.3} -> {:.3} over {} steps",
        lm_first.loss,
        lm_last.loss,
        report.lm_curve.len()
    );

    let first = report.cleanup_curve.first().expect("cleanup curve");
    let last = report.cleanup_curve.last().expect("cleanup curve");
    println!(
        "cleanup RL: valid rate {:.1}% -> {:.1}%, reward {:.3} -> {:.3}",
        first.valid_fraction * 100.0,
        last.valid_fraction * 100.0,
        first.mean_reward,
        last.mean_reward
    );
    // Note on shape: the paper's cleanup step repairs a model that commits
    // "numerous errors" after initial training. With the fixed byte-parcel
    // framing, initial training already lands near-clean (≥90 % valid), so
    // the step's job here is to *hold* validity under PPO exploration
    // pressure rather than to lift it.
    assert!(
        last.valid_fraction >= 0.80,
        "paper shape violated: generations must remain predominantly valid \
         after cleanup (got {:.1}%)",
        last.valid_fraction * 100.0
    );
    assert!(
        last.mean_reward > 0.0,
        "paper shape violated: Eq.(1) reward must be positive after cleanup"
    );
}
