//! Sharded campaign driver — the horizontal-scaling half of the
//! "fast as the hardware allows" roadmap item.
//!
//! Splits one RocketCore fuzzing campaign into N shards with disjoint
//! RNG streams (`chatfuzz::shard_seed`), runs them in parallel, and
//! merges coverage, history, and mismatch clusters into one report under
//! `results/shard_campaign.{csv,json}`.
//!
//! ```text
//! shard_campaign [--shards N] [--tests-per-shard T] [--seed S] [--process]
//!                [--snapshot-path <file>]
//! ```
//!
//! * default: shards run as in-process [`Campaign`]s on threads;
//! * `--process`: each shard is a spawned copy of this binary
//!   (`ProcessShardRunner`), exercising the cross-process protocol —
//!   the worker role is selected by the `CHATFUZZ_SHARD_*` environment
//!   variables the parent sets, and the worker writes its snapshot where
//!   `CHATFUZZ_SHARD_OUT` points;
//! * `--snapshot-path`: additionally persists the merged, resume-ready
//!   snapshot.

use std::path::PathBuf;

use chatfuzz::campaign::{Campaign, CampaignBuilder, StopCondition};
use chatfuzz::persist;
use chatfuzz::report;
use chatfuzz::shard::{
    InProcessRunner, ProcessShardRunner, ShardSpec, ShardedCampaign, ShardedOutcome, WorkerRequest,
};
use chatfuzz_baselines::{MutatorConfig, TheHuzz};
use chatfuzz_bench::{history_rows, print_table, rocket_factory, write_csv, write_report_json};

struct Args {
    shards: usize,
    tests_per_shard: usize,
    seed: u64,
    process: bool,
    snapshot_path: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut out =
        Args { shards: 4, tests_per_shard: 256, seed: 1, process: false, snapshot_path: None };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| args.next().unwrap_or_else(|| panic!("{what} needs a value"));
        match arg.as_str() {
            "--shards" => out.shards = value("--shards").parse().expect("bad --shards"),
            "--tests-per-shard" => {
                out.tests_per_shard =
                    value("--tests-per-shard").parse().expect("bad --tests-per-shard")
            }
            "--seed" => out.seed = value("--seed").parse().expect("bad --seed"),
            "--process" => out.process = true,
            "--snapshot-path" => out.snapshot_path = Some(PathBuf::from(value("--snapshot-path"))),
            other => panic!("unknown argument `{other}`"),
        }
    }
    out
}

/// One shard's campaign: TheHuzz seeded from the shard's derived stream.
fn build_shard(spec: ShardSpec, tests: usize) -> (Campaign<'static>, Vec<StopCondition>) {
    let campaign = CampaignBuilder::from_factory(rocket_factory())
        .batch_size(32)
        .workers(4)
        .generator(TheHuzz::new(MutatorConfig { seed: spec.seed, ..Default::default() }))
        .build();
    (campaign, vec![StopCondition::Tests(tests)])
}

fn main() {
    let args = parse_args();

    // Worker role: the parent (this same binary with --process) points us
    // at a shard via the environment.
    if let Some(request) = WorkerRequest::from_env() {
        let (mut campaign, stops) = build_shard(request.spec, args.tests_per_shard);
        campaign.run_until(&stops);
        request.fulfil(&campaign.snapshot()).expect("write shard snapshot");
        return;
    }

    println!(
        "== Sharded campaign: {} shards × {} tests ({}) ==",
        args.shards,
        args.tests_per_shard,
        if args.process { "sub-processes" } else { "in-process" }
    );

    let tests = args.tests_per_shard;
    let mut scratch = None;
    let outcome: ShardedOutcome = if args.process {
        let exe = std::env::current_exe().expect("own path");
        // Per-invocation scratch dir: concurrent runs on one machine must
        // never load each other's shard snapshots (the merge validation
        // cannot tell same-lineup shards of a different run apart).
        let out_dir =
            std::env::temp_dir().join(format!("chatfuzz-shard-campaign-{}", std::process::id()));
        scratch = Some(out_dir.clone());
        let space = rocket_factory()().space().clone();
        let runner = ProcessShardRunner::new(exe, out_dir, space)
            .arg("--tests-per-shard")
            .arg(tests.to_string());
        ShardedCampaign::new(runner, args.shards, args.seed).run()
    } else {
        let runner = InProcessRunner::new(move |spec| build_shard(spec, tests));
        ShardedCampaign::new(runner, args.shards, args.seed).run()
    }
    .unwrap_or_else(|e| panic!("sharded run failed: {e}"));
    if let Some(dir) = scratch {
        let _ = std::fs::remove_dir_all(dir);
    }

    let merged = outcome.merged_report();
    let rows: Vec<Vec<String>> = outcome
        .shard_snapshots()
        .iter()
        .enumerate()
        .map(|(i, s)| {
            vec![
                i.to_string(),
                s.tests_run().to_string(),
                format!("{:.2}", s.coverage_pct()),
                s.coverage().covered_bins().to_string(),
            ]
        })
        .chain(std::iter::once(vec![
            "merged".to_string(),
            merged.tests_run.to_string(),
            format!("{:.2}", merged.final_coverage_pct),
            outcome.merged_coverage().covered_bins().to_string(),
        ]))
        .collect();
    print_table(
        "Sharded campaign — per-shard and merged coverage",
        &["shard", "tests", "coverage %", "covered bins"],
        &rows,
    );

    write_csv(
        "shard_campaign",
        &["tests", "coverage_pct", "sim_cycles", "wall_s"],
        &history_rows(&merged),
    );
    write_report_json("shard_campaign", &merged);
    if let Some(path) = &args.snapshot_path {
        persist::save_snapshot(path, &outcome.merged_snapshot())
            .unwrap_or_else(|e| panic!("cannot write snapshot {}: {e}", path.display()));
        println!("[snapshot] {}", path.display());
    }
    println!("\n{}", report::digest(&merged));
}
