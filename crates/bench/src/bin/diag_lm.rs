//! Diagnostic: what does the trained quick-scale model generate?

use chatfuzz::campaign::DutFactory;
use chatfuzz::pipeline::{train_chatfuzz, PipelineConfig};
use chatfuzz_baselines::valid_fraction;
use chatfuzz_isa::disasm::disassemble;
use chatfuzz_lm::tokenizer::{BOS, SEP};
use chatfuzz_rtl::{Dut, Rocket, RocketConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let factory: DutFactory =
        std::sync::Arc::new(|| Box::new(Rocket::new(RocketConfig::default())) as Box<dyn Dut>);
    let cfg = PipelineConfig::quick(42);
    let (model, report) = train_chatfuzz(&cfg, &factory);
    println!(
        "LM loss: {:.3} -> {:.3}",
        report.lm_curve.first().unwrap().loss,
        report.lm_curve.last().unwrap().loss
    );
    for p in &report.cleanup_curve {
        println!(
            "cleanup iter {}: reward {:.3} valid {:.1}%",
            p.iter,
            p.mean_reward,
            p.valid_fraction * 100.0
        );
    }
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    for i in 0..6 {
        // Prompt with 2 corpus instructions.
        let program = &model.prompt_pool[i * 3];
        let mut prompt = vec![BOS];
        for w in &program[..2] {
            prompt.extend(model.tokenizer.encode_word(*w));
            prompt.push(SEP);
        }
        let plen = prompt.len();
        let full = model.policy.generate(&prompt, 48, 1.0, 32, &mut rng);
        let bytes = model.tokenizer.decode_to_bytes(&full);
        println!(
            "\n--- sample {i}: {} prompt tokens, {} generated, {} instrs, valid {:.0}% ---",
            plen,
            full.len() - plen,
            bytes.len() / 4,
            valid_fraction(&bytes) * 100.0
        );
        for line in disassemble(&bytes).iter().take(14) {
            println!("  {line}");
        }
    }
}
