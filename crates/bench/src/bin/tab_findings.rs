//! **Experiment E6 (paper §V-B)** — differential bug findings on
//! RocketCore. Paper: 5,866 raw mismatches → >100 unique after automated
//! filtration → BUG1 (fence.i/CWE-1202), BUG2 (tracer/CWE-440) and three
//! ISA-deviation findings. All five defects are injected in the Rocket
//! model; this experiment checks the fuzzer rediscovers them.

use chatfuzz::mismatch::KnownBug;
use chatfuzz_bench::{
    print_table, rocket_factory, run_budget, trained_chatfuzz_generator, write_csv,
    write_report_json, Scale, TRAIN_SEED,
};

fn main() {
    let scale = Scale::from_env();
    let tests = scale.campaign_tests() * 2;

    println!("== Findings on RocketCore ({tests} tests) ==");
    println!("[1/1] training + fuzzing ChatFuzz…");
    let (mut generator, _) = trained_chatfuzz_generator(scale, TRAIN_SEED);
    let report = run_budget(&rocket_factory(), &mut generator, tests);

    let mut rows = vec![
        vec!["raw mismatches".into(), "5866".into(), report.raw_mismatches.to_string()],
        vec!["unique mismatches".into(), ">100".into(), report.unique_mismatches.len().to_string()],
        vec![
            "distinct defects".into(),
            "5 (2 bugs + 3 findings)".into(),
            report.bugs.len().to_string(),
        ],
    ];
    for bug in &report.bugs {
        rows.push(vec!["found".into(), "-".into(), bug.to_string()]);
    }
    print_table(
        "E6 — mismatch findings (paper vs measured)",
        &["metric", "paper", "measured"],
        &rows,
    );

    let unique_rows: Vec<Vec<String>> = report
        .unique_mismatches
        .iter()
        .map(|u| {
            vec![
                u.signature.clone(),
                u.count.to_string(),
                u.bug.map(|b| b.to_string()).unwrap_or_else(|| "-".into()),
            ]
        })
        .collect();
    print_table(
        "E6 — unique mismatch clusters",
        &["signature", "count", "classified"],
        &unique_rows,
    );
    write_csv("tab_findings", &["signature", "count", "bug"], &unique_rows);
    write_report_json("tab_findings", &report);

    assert!(report.raw_mismatches > 0, "the buggy Rocket must produce mismatches");
    for expected in [KnownBug::Bug2TracerMulDiv, KnownBug::Finding3X0Bypass] {
        assert!(
            report.bugs.contains(&expected),
            "paper shape violated: {expected} must be rediscovered within the budget"
        );
    }
    println!(
        "\nfound {}/5 injected defects in {} tests ({} raw, {} unique mismatches)",
        report.bugs.len(),
        report.tests_run,
        report.raw_mismatches,
        report.unique_mismatches.len()
    );
}
