//! **Ablation A2** — coverage-reward shaping: the paper's reward gives an
//! incremental-coverage bonus and penalises non-improving inputs. This
//! ablation removes those terms (leaving only the stand-alone term) and
//! compares campaign coverage with online training enabled.

use chatfuzz::fuzz::run_campaign;
use chatfuzz::generator::{CoverageReward, LmGenerator, LmGeneratorConfig};
use chatfuzz::pipeline::train_chatfuzz;
use chatfuzz_bench::{campaign, print_table, rocket_factory, write_csv, Scale};
use chatfuzz_rl::PpoConfig;
use chatfuzz_rtl::{Dut, Rocket, RocketConfig};

fn main() {
    let scale = Scale::from_env();
    let tests = scale.campaign_tests();
    let cfg = campaign(tests);
    let factory = rocket_factory();

    let run_with = |reward: CoverageReward, label: &str| {
        println!("[{label}] training pipeline…");
        let mut dut = Rocket::new(RocketConfig::default());
        let pcfg = scale.pipeline(42);
        let (model, _) = train_chatfuzz(&pcfg, &mut dut);
        let total_bins = dut.space().total_bins();
        let ppo = PpoConfig {
            max_new_tokens: 56,
            lr: 3e-4,
            temperature: 0.9,
            top_k: 24,
            ..Default::default()
        };
        let gcfg = LmGeneratorConfig { seed: 42, total_bins, reward, ..Default::default() };
        let mut generator =
            LmGenerator::new(model.tokenizer, model.policy, ppo, model.prompt_pool, gcfg);
        println!("[{label}] fuzzing…");
        run_campaign(&mut generator, &factory, &cfg)
    };

    let full = run_with(CoverageReward::default(), "full reward");
    let no_shaping = run_with(
        CoverageReward { incremental_weight: 0.0, no_improve_penalty: 0.0, standalone_weight: 2.0 },
        "standalone only",
    );

    let rows = vec![
        vec!["incremental bonus + penalty (paper)".into(), format!("{:.2}", full.final_coverage_pct)],
        vec!["stand-alone term only".into(), format!("{:.2}", no_shaping.final_coverage_pct)],
    ];
    print_table("A2 — reward-shaping ablation (RocketCore)", &["reward", "coverage %"], &rows);
    write_csv("abl_reward", &["reward", "coverage_pct"], &rows);
    println!(
        "\ndelta: {:+.2} points for the paper's shaping",
        full.final_coverage_pct - no_shaping.final_coverage_pct
    );
}
