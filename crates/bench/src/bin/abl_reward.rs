//! **Ablation A2** — coverage-reward shaping: the paper's reward gives an
//! incremental-coverage bonus and penalises non-improving inputs. This
//! ablation removes those terms (leaving only the stand-alone term) and
//! compares campaign coverage with online training enabled.

use chatfuzz::generator::{CoverageReward, LmGenerator, LmGeneratorConfig};
use chatfuzz::pipeline::train_chatfuzz;
use chatfuzz_bench::{
    print_table, rocket_factory, run_budget, write_csv, write_report_json, Scale, TRAIN_SEED,
};
use chatfuzz_rl::PpoConfig;

fn main() {
    let scale = Scale::from_env();
    let tests = scale.campaign_tests();
    let factory = rocket_factory();

    let run_with = |reward: CoverageReward, label: &str| {
        println!("[{label}] training pipeline…");
        let pcfg = scale.pipeline(TRAIN_SEED);
        let (model, _) = train_chatfuzz(&pcfg, &factory);
        let total_bins = factory().space().total_bins();
        let ppo = PpoConfig {
            max_new_tokens: 56,
            lr: 3e-4,
            temperature: 0.9,
            top_k: 24,
            ..Default::default()
        };
        let gcfg = LmGeneratorConfig { seed: 42, total_bins, reward, ..Default::default() };
        let generator =
            LmGenerator::new(model.tokenizer, model.policy, ppo, model.prompt_pool, gcfg);
        println!("[{label}] fuzzing…");
        run_budget(&factory, generator, tests)
    };

    let full = run_with(CoverageReward::default(), "full reward");
    let no_shaping = run_with(
        CoverageReward { incremental_weight: 0.0, no_improve_penalty: 0.0, standalone_weight: 2.0 },
        "standalone only",
    );

    let rows = vec![
        vec![
            "incremental bonus + penalty (paper)".into(),
            format!("{:.2}", full.final_coverage_pct),
        ],
        vec!["stand-alone term only".into(), format!("{:.2}", no_shaping.final_coverage_pct)],
    ];
    print_table("A2 — reward-shaping ablation (RocketCore)", &["reward", "coverage %"], &rows);
    write_csv("abl_reward", &["reward", "coverage_pct"], &rows);
    write_report_json("abl_reward_full", &full);
    write_report_json("abl_reward_standalone", &no_shaping);
    println!(
        "\ndelta: {:+.2} points for the paper's shaping",
        full.final_coverage_pct - no_shaping.final_coverage_pct
    );
}
