//! **Ablation A1** — generator backend: the PPO-refined GPT vs a plain
//! n-gram model trained on the same corpus tokens. Tests whether the
//! transformer + RL stack earns its keep over cheap sequence statistics.

use chatfuzz::generator::NgramGenerator;
use chatfuzz_bench::{
    print_table, rocket_factory, run_budget, trained_chatfuzz_generator, write_csv,
    write_report_json, Scale, TRAIN_SEED,
};
use chatfuzz_corpus::{CorpusConfig, CorpusGenerator};
use chatfuzz_lm::{NgramLm, Tokenizer};

fn main() {
    let scale = Scale::from_env();
    let tests = scale.campaign_tests();
    let factory = rocket_factory();

    println!("== Ablation A1: GPT+PPO vs n-gram generator ({tests} tests) ==");
    println!("[1/2] GPT backend…");
    let (mut gpt_gen, _) = trained_chatfuzz_generator(scale, TRAIN_SEED);
    let gpt = run_budget(&factory, &mut gpt_gen, tests);

    println!("[2/2] n-gram backend…");
    let mut corpus = CorpusGenerator::new(CorpusConfig { seed: 42, ..Default::default() });
    let programs = corpus.generate_words(scale.pipeline(TRAIN_SEED).corpus_functions);
    let tokenizer = Tokenizer::train(&programs, scale.pipeline(TRAIN_SEED).vocab_size);
    let token_seqs: Vec<Vec<u32>> = programs.iter().map(|p| tokenizer.encode(p)).collect();
    let ngram = NgramLm::train(&token_seqs, tokenizer.vocab_size());
    let ngram_gen = NgramGenerator::new(tokenizer, ngram, programs, 42, 40);
    let ng = run_budget(&factory, ngram_gen, tests);

    let rows = vec![
        vec!["GPT + PPO (ChatFuzz)".into(), format!("{:.2}", gpt.final_coverage_pct)],
        vec!["trigram LM".into(), format!("{:.2}", ng.final_coverage_pct)],
    ];
    print_table("A1 — generator backend ablation (RocketCore)", &["backend", "coverage %"], &rows);
    write_csv("abl_lm_backend", &["backend", "coverage_pct"], &rows);
    write_report_json("abl_lm_backend_gpt", &gpt);
    write_report_json("abl_lm_backend_ngram", &ng);
    println!(
        "\ndelta: {:+.2} points for the transformer+RL stack",
        gpt.final_coverage_pct - ng.final_coverage_pct
    );
}
