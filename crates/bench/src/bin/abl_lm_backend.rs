//! **Ablation A1** — generator backend: the PPO-refined GPT vs a plain
//! n-gram model trained on the same corpus tokens. Tests whether the
//! transformer + RL stack earns its keep over cheap sequence statistics.

use chatfuzz::fuzz::run_campaign;
use chatfuzz::generator::NgramGenerator;
use chatfuzz_bench::{campaign, print_table, rocket_factory, trained_chatfuzz_generator, write_csv, Scale};
use chatfuzz_corpus::{CorpusConfig, CorpusGenerator};
use chatfuzz_lm::{NgramLm, Tokenizer};

fn main() {
    let scale = Scale::from_env();
    let tests = scale.campaign_tests();
    let cfg = campaign(tests);
    let factory = rocket_factory();

    println!("== Ablation A1: GPT+PPO vs n-gram generator ({tests} tests) ==");
    println!("[1/2] GPT backend…");
    let (mut gpt_gen, _) = trained_chatfuzz_generator(scale, 42);
    let gpt = run_campaign(&mut gpt_gen, &factory, &cfg);

    println!("[2/2] n-gram backend…");
    let mut corpus = CorpusGenerator::new(CorpusConfig { seed: 42, ..Default::default() });
    let programs = corpus.generate_words(scale.pipeline(42).corpus_functions);
    let tokenizer = Tokenizer::train(&programs, scale.pipeline(42).vocab_size);
    let token_seqs: Vec<Vec<u32>> = programs.iter().map(|p| tokenizer.encode(p)).collect();
    let ngram = NgramLm::train(&token_seqs, tokenizer.vocab_size());
    let mut ngram_gen = NgramGenerator::new(tokenizer, ngram, programs, 42, 40);
    let ng = run_campaign(&mut ngram_gen, &factory, &cfg);

    let rows = vec![
        vec!["GPT + PPO (ChatFuzz)".into(), format!("{:.2}", gpt.final_coverage_pct)],
        vec!["trigram LM".into(), format!("{:.2}", ng.final_coverage_pct)],
    ];
    print_table("A1 — generator backend ablation (RocketCore)", &["backend", "coverage %"], &rows);
    write_csv("abl_lm_backend", &["backend", "coverage_pct"], &rows);
    println!(
        "\ndelta: {:+.2} points for the transformer+RL stack",
        gpt.final_coverage_pct - ng.final_coverage_pct
    );
}
