//! **Experiment E5 (paper §V-A, row 4)** — ChatFuzz on the BOOM core.
//! Paper: 97.02 % condition coverage in 49 minutes. Our BOOM model exposes
//! far fewer fuzzer-unreachable conditions than the Rocket model, so its
//! coverage saturates much higher — the same structural reason as on the
//! real designs.

use chatfuzz_bench::{
    boom_factory, history_rows, print_table, rocket_factory, run_budget,
    trained_chatfuzz_generator, write_csv, write_report_json, Scale, TRAIN_SEED,
};

fn main() {
    let scale = Scale::from_env();
    let tests = scale.campaign_tests();

    println!("== ChatFuzz on BOOM ({tests} tests) ==");
    println!("[1/2] training ChatFuzz pipeline (against Rocket, as in the paper)…");
    let (mut generator, _) = trained_chatfuzz_generator(scale, TRAIN_SEED);
    println!("[2/2] fuzzing BOOM…");
    let boom = run_budget(&boom_factory(), &mut generator, tests);

    // For context: the same generator's coverage on Rocket.
    let (mut generator2, _) = trained_chatfuzz_generator(scale, TRAIN_SEED);
    let rocket = run_budget(&rocket_factory(), &mut generator2, tests);

    write_csv("tab_boom", &["tests", "coverage_pct", "sim_cycles", "wall_s"], &history_rows(&boom));
    write_report_json("tab_boom", &boom);
    let rows = vec![
        vec!["paper BOOM (49 min)".into(), "97.02".into()],
        vec![format!("measured BOOM ({tests} tests)"), format!("{:.2}", boom.final_coverage_pct)],
        vec![
            format!("measured RocketCore ({tests} tests, context)"),
            format!("{:.2}", rocket.final_coverage_pct),
        ],
    ];
    print_table("E5 — ChatFuzz condition coverage on BOOM", &["row", "coverage %"], &rows);

    assert!(
        boom.final_coverage_pct > 85.0,
        "paper shape violated: BOOM saturates well above Rocket's band (got {:.2}%)",
        boom.final_coverage_pct
    );
    assert!(
        boom.final_coverage_pct > rocket.final_coverage_pct,
        "paper shape violated: BOOM coverage exceeds RocketCore's"
    );
    assert!(boom.raw_mismatches == 0, "BOOM has no injected bugs");
}
