//! Live fleet driver: registers a tenant campaign on the orchestrator
//! and renders the streaming status endpoint in the terminal — the
//! merge-then-continue generation, pooled coverage, fleet throughput,
//! per-arm bandit statistics, lease lifecycle states, and live/dead
//! workers, refreshed as the fleet runs.
//!
//! The campaign template is the two-arm line-up (random + evolutionary
//! corpus under a cost-normalised UCB1 bandit), so the per-arm half of
//! [`OrchestratorStatus`] has something to show. `--distill` installs
//! the corpus-distillation hook: after every merge, each retained seed
//! is re-executed standalone on a fresh DUT and the pooled corpus is
//! minimised before the next generation fans out.
//!
//! The run is fully instrumented through `chatfuzz_telemetry`: the
//! status refresh prints a per-generation wall-clock breakdown
//! (dispatch vs execute vs merge vs idle), `--trace-path` streams the
//! structured fleet timeline as JSONL, and `--metrics-path` keeps a
//! Prometheus-style text dump current. Telemetry never perturbs the
//! campaign: the merged result is bit-identical with or without it.
//!
//! ```text
//! orchestrate [--workers N] [--fan-out N] [--lease-tests N]
//!             [--total-tests N] [--seed N] [--target PCT] [--distill]
//!             [--metrics-path PATH] [--trace-path PATH] [--help]
//! ```

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use chatfuzz::campaign::{CampaignBuilder, CampaignSnapshot};
use chatfuzz::harness::{wrap, HarnessConfig};
use chatfuzz::report;
use chatfuzz::shard::ShardSpec;
use chatfuzz_baselines::{RandomRegression, Ucb1};
use chatfuzz_bench::rocket_factory;
use chatfuzz_coverage::CovMap;
use chatfuzz_evolve::{Corpus, EvolveConfig, EvolveGenerator};
use chatfuzz_orchestrate::{
    DistillHook, FleetConfig, LeaseState, LocalPoolTransport, Orchestrator, OrchestratorStatus,
};
use chatfuzz_telemetry::{names, TelemetrySink};

struct Args {
    workers: usize,
    fan_out: usize,
    lease_tests: usize,
    total_tests: usize,
    seed: u64,
    target: Option<f64>,
    distill: bool,
    metrics_path: Option<PathBuf>,
    trace_path: Option<PathBuf>,
}

fn print_help() {
    println!(
        "orchestrate — live merge-then-continue fleet driver\n\
         \n\
         USAGE: orchestrate [OPTIONS]\n\
         \n\
         OPTIONS:\n\
           --workers N        worker threads in the local pool (default 4)\n\
           --fan-out N        leases per generation (default 4)\n\
           --lease-tests N    test budget per lease (default 256)\n\
           --total-tests N    overall campaign budget (default 2048)\n\
           --seed N           fleet base seed (default 5)\n\
           --target PCT       stop at this pooled coverage percentage\n\
           --distill          minimise pooled corpora at merge boundaries\n\
           --metrics-path P   keep a Prometheus-style text dump current at P\n\
           --trace-path P     stream the structured fleet timeline to P (JSONL)\n\
           --help             this message\n\
         \n\
         METRICS (exposed via --metrics-path, counted whether or not it is set):\n\
           chatfuzz_campaign_tests_total              tests executed\n\
           chatfuzz_campaign_cycles_total             DUT cycles simulated\n\
           chatfuzz_campaign_coverage_bins            covered bins (gauge)\n\
           chatfuzz_campaign_mismatches_total         new unique mismatches\n\
           chatfuzz_campaign_batch_latency_us         per-batch wall clock (histogram)\n\
           chatfuzz_campaign_lm_tokens_total          tokens sampled by the LM arms\n\
           chatfuzz_campaign_lm_publish_epochs        newest published weight epoch (gauge)\n\
           chatfuzz_persist_write_us                  checkpoint write latency (histogram)\n\
           chatfuzz_persist_writes_total              checkpoint writes\n\
           chatfuzz_persist_recover_us                checkpoint recovery latency (histogram)\n\
           chatfuzz_persist_checksum_failures_total   corrupt snapshots stepped over\n\
           chatfuzz_persist_quarantined_total         corrupt snapshots quarantined on disk\n\
           chatfuzz_faults_injected_total             injected faults that fired\n\
           chatfuzz_fleet_heartbeat_gap_us            gap between lease heartbeats (histogram)\n\
           chatfuzz_fleet_leases_issued_total         lease attempts dispatched\n\
           chatfuzz_fleet_leases_revoked_total        lease attempts revoked\n\
           chatfuzz_fleet_leases_quarantined_total    leases quarantined (terminal)\n\
           chatfuzz_fleet_merge_us                    merge + re-split latency (histogram)\n\
           chatfuzz_fleet_phase_dispatch_us_total     wall clock spent dispatching\n\
           chatfuzz_fleet_phase_execute_us_total      wall clock spent executing leases\n\
           chatfuzz_fleet_phase_merge_us_total        wall clock spent merging\n\
           chatfuzz_fleet_phase_idle_us_total         wall clock spent idle-polling\n\
           chatfuzz_telemetry_events_dropped_total    timeline events lost to ring overflow"
    );
}

fn parse_args() -> Args {
    let mut out = Args {
        workers: 4,
        fan_out: 4,
        lease_tests: 256,
        total_tests: 2048,
        seed: 5,
        target: None,
        distill: false,
        metrics_path: None,
        trace_path: None,
    };
    let mut args = std::env::args().skip(1);
    let next = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().unwrap_or_else(|| panic!("{flag} needs a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workers" => out.workers = next(&mut args, "--workers").parse().expect("--workers"),
            "--fan-out" => out.fan_out = next(&mut args, "--fan-out").parse().expect("--fan-out"),
            "--lease-tests" => {
                out.lease_tests = next(&mut args, "--lease-tests").parse().expect("--lease-tests")
            }
            "--total-tests" => {
                out.total_tests = next(&mut args, "--total-tests").parse().expect("--total-tests")
            }
            "--seed" => out.seed = next(&mut args, "--seed").parse().expect("--seed"),
            "--target" => out.target = Some(next(&mut args, "--target").parse().expect("--target")),
            "--distill" => out.distill = true,
            "--metrics-path" => out.metrics_path = Some(next(&mut args, "--metrics-path").into()),
            "--trace-path" => out.trace_path = Some(next(&mut args, "--trace-path").into()),
            "--help" | "-h" => {
                print_help();
                std::process::exit(0);
            }
            other => panic!("unknown argument `{other}` (try --help)"),
        }
    }
    out
}

/// The lease template: every shard lease runs the two-arm bandit
/// campaign, seeded from its shard spec so arms never share streams.
fn lease_template() -> chatfuzz_orchestrate::LeaseBuilder {
    Arc::new(|spec: ShardSpec| {
        CampaignBuilder::from_factory(rocket_factory())
            .batch_size(32)
            .generator(RandomRegression::new(spec.seed, 16))
            .generator(EvolveGenerator::new(EvolveConfig { seed: spec.seed, ..Default::default() }))
            .scheduler(Ucb1::new(0.5).cost_normalised())
    })
}

/// The merge-time corpus minimiser: re-executes every retained seed of
/// every pooled corpus standalone on a fresh DUT and lets
/// [`Corpus::distill`] drop the seeds whose coverage is subsumed, so
/// the re-split fan-out inherits the smallest corpus with the same
/// pooled union.
fn distill_hook() -> DistillHook {
    let factory = rocket_factory();
    Arc::new(move |snapshot: &mut CampaignSnapshot| {
        let mut dut = factory();
        for state in snapshot.generator_states_mut() {
            let Some(state) = state else { continue };
            let Some(corpus_state) = state.corpus.as_mut() else { continue };
            if corpus_state.seeds.is_empty() {
                continue;
            }
            let mut corpus = Corpus::new(corpus_state.seeds.len());
            corpus.import(corpus_state);
            let standalone: Vec<CovMap> = corpus
                .seeds()
                .iter()
                .map(|seed| {
                    let body: Vec<u8> =
                        seed.state.words.iter().flat_map(|w| w.to_le_bytes()).collect();
                    dut.run(&wrap(&body, HarnessConfig::default())).coverage
                })
                .collect();
            if corpus.distill(&standalone) > 0 {
                corpus.export_into(corpus_state);
            }
        }
    })
}

/// One status line per campaign, plus a fleet-health line. Leases that
/// were revoked or quarantined carry *why* — heartbeat miss vs crash
/// loop vs transport failure — so degradation is diagnosable from the
/// dashboard, not just countable.
fn render(status: &OrchestratorStatus, telemetry: &TelemetrySink) {
    for campaign in &status.campaigns {
        let count = |want: LeaseState| campaign.leases.iter().filter(|l| l.state == want).count();
        let arms = campaign
            .arms
            .iter()
            .map(|(name, arm)| format!("{name} p={} r={:.4}", arm.pulls, arm.mean_reward))
            .collect::<Vec<_>>()
            .join(", ");
        let degradation = if campaign.quarantined_leases > 0
            || campaign.max_fallback_depth > 0
            || campaign.checksum_failures > 0
        {
            format!(
                " | DEGRADED q:{} fb:{} ck:{}",
                campaign.quarantined_leases,
                campaign.max_fallback_depth,
                campaign.checksum_failures
            )
        } else {
            String::new()
        };
        println!(
            "[{}] gen {} | cov {:6.2}% | {:>6} tests ({:.0}/s) | leases i:{} h:{} c:{} r:{} q:{} \
             | revoked {} | arms: {}{}{}",
            campaign.name,
            campaign.generation,
            campaign.coverage_pct,
            campaign.tests_run,
            campaign.tests_per_sec,
            count(LeaseState::Issued),
            count(LeaseState::Heartbeating),
            count(LeaseState::Completed),
            count(LeaseState::Revoked),
            count(LeaseState::Quarantined),
            campaign.revoked_leases,
            if arms.is_empty() { "(awaiting first merge)" } else { &arms },
            degradation,
            if campaign.done { " | DONE" } else { "" },
        );
    }
    // The reasons behind the revocation/quarantine counts. Live leases
    // carry their latest failure; quarantines are permanent degradation,
    // so their reasons persist past the generation's lease list.
    for campaign in &status.campaigns {
        for lease in &campaign.leases {
            if lease.state == LeaseState::Quarantined {
                continue; // reported below, from the persistent log
            }
            if let Some(reason) = &lease.last_failure {
                println!("  {} [{}] a{}: {reason}", lease.id, lease.state, lease.attempt);
            }
        }
        for (lease, reason) in &campaign.quarantine_reasons {
            println!("  {lease} [quarantined]: {reason}");
        }
    }
    let live = status.workers.iter().filter(|w| w.alive).count();
    let swept = if status.swept_tmp_files > 0 {
        format!(", {} orphaned tmp files swept", status.swept_tmp_files)
    } else {
        String::new()
    };
    println!("workers: {live} live, {} dead{swept}", status.workers.len() - live);
    render_phases(telemetry);
}

/// The per-generation wall-clock breakdown: where the fleet's time
/// actually went, from the cumulative phase counters.
fn render_phases(telemetry: &TelemetrySink) {
    let phase = |name| telemetry.counter_value(name) as f64 / 1e6;
    let (dispatch, execute, merge, idle) = (
        phase(names::FLEET_PHASE_DISPATCH_US),
        phase(names::FLEET_PHASE_EXECUTE_US),
        phase(names::FLEET_PHASE_MERGE_US),
        phase(names::FLEET_PHASE_IDLE_US),
    );
    let total = dispatch + execute + merge + idle;
    if total > 0.0 {
        println!(
            "phases: dispatch {dispatch:.2}s ({:.0}%) | execute {execute:.2}s ({:.0}%) \
             | merge {merge:.2}s ({:.0}%) | idle {idle:.2}s ({:.0}%)",
            100.0 * dispatch / total,
            100.0 * execute / total,
            100.0 * merge / total,
            100.0 * idle / total,
        );
    }
}

fn main() {
    let args = parse_args();
    // One sink serves the whole process: threaded into the fleet config
    // for the orchestrator and its in-process workers, and installed
    // globally so persist/fault instrumentation lands in the same place.
    let telemetry = TelemetrySink::enabled();
    if let Some(path) = &args.trace_path {
        telemetry.trace_to(path).expect("opening --trace-path");
    }
    chatfuzz_telemetry::install_global(telemetry.clone());
    let space = rocket_factory()().space().clone();
    let mut config = FleetConfig {
        fan_out: args.fan_out,
        lease_tests: args.lease_tests,
        total_tests: args.total_tests,
        coverage_target_pct: args.target,
        heartbeat_deadline: Duration::from_secs(30),
        telemetry: telemetry.clone(),
        ..FleetConfig::new("rocket", args.seed, space, lease_template())
    };
    if args.distill {
        config.distill = Some(distill_hook());
    }

    println!(
        "== Orchestrated fleet: {} workers, {} leases x {} tests/generation, {} total ==",
        args.workers, args.fan_out, args.lease_tests, args.total_tests
    );
    let ckpt = std::env::temp_dir().join(format!("chatfuzz-orchestrate-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&ckpt);
    let mut orchestrator = Orchestrator::new(LocalPoolTransport::new(args.workers, &ckpt));
    let campaign = orchestrator.register(config);

    let mut last = Instant::now() - Duration::from_secs(1);
    orchestrator
        .run_streaming(|status| {
            let done = status.campaigns.iter().all(|c| c.done);
            if !done && last.elapsed() < Duration::from_millis(250) {
                return;
            }
            last = Instant::now();
            render(status, &telemetry);
            // Keep the exports current at the render cadence: the trace
            // file tails cleanly and the metrics dump is scrape-fresh.
            let _ = telemetry.flush_trace();
            if let Some(path) = &args.metrics_path {
                let _ = telemetry.write_prometheus(path);
            }
        })
        .expect("fleet run");

    let merged = orchestrator.final_snapshot(campaign).expect("finished campaign");
    println!();
    println!("{}", report::markdown_summary(&merged.report()));
    let _ = telemetry.flush_trace();
    if let Some(path) = &args.metrics_path {
        telemetry.write_prometheus(path).expect("writing --metrics-path");
        println!("metrics: {}", path.display());
    }
    if let Some(path) = &args.trace_path {
        println!("trace: {}", path.display());
    }
    let _ = std::fs::remove_dir_all(&ckpt);
}
