//! Live fleet driver: registers a tenant campaign on the orchestrator
//! and renders the streaming status endpoint in the terminal — the
//! merge-then-continue generation, pooled coverage, fleet throughput,
//! per-arm bandit statistics, lease lifecycle states, and live/dead
//! workers, refreshed as the fleet runs.
//!
//! The campaign template is the two-arm line-up (random + evolutionary
//! corpus under a cost-normalised UCB1 bandit), so the per-arm half of
//! [`OrchestratorStatus`] has something to show. `--distill` installs
//! the corpus-distillation hook: after every merge, each retained seed
//! is re-executed standalone on a fresh DUT and the pooled corpus is
//! minimised before the next generation fans out.
//!
//! ```text
//! orchestrate [--workers N] [--fan-out N] [--lease-tests N]
//!             [--total-tests N] [--seed N] [--target PCT] [--distill]
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use chatfuzz::campaign::{CampaignBuilder, CampaignSnapshot};
use chatfuzz::harness::{wrap, HarnessConfig};
use chatfuzz::report;
use chatfuzz::shard::ShardSpec;
use chatfuzz_baselines::{RandomRegression, Ucb1};
use chatfuzz_bench::rocket_factory;
use chatfuzz_coverage::CovMap;
use chatfuzz_evolve::{Corpus, EvolveConfig, EvolveGenerator};
use chatfuzz_orchestrate::{
    DistillHook, FleetConfig, LeaseState, LocalPoolTransport, Orchestrator, OrchestratorStatus,
};

struct Args {
    workers: usize,
    fan_out: usize,
    lease_tests: usize,
    total_tests: usize,
    seed: u64,
    target: Option<f64>,
    distill: bool,
}

fn parse_args() -> Args {
    let mut out = Args {
        workers: 4,
        fan_out: 4,
        lease_tests: 256,
        total_tests: 2048,
        seed: 5,
        target: None,
        distill: false,
    };
    let mut args = std::env::args().skip(1);
    let next = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().unwrap_or_else(|| panic!("{flag} needs a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workers" => out.workers = next(&mut args, "--workers").parse().expect("--workers"),
            "--fan-out" => out.fan_out = next(&mut args, "--fan-out").parse().expect("--fan-out"),
            "--lease-tests" => {
                out.lease_tests = next(&mut args, "--lease-tests").parse().expect("--lease-tests")
            }
            "--total-tests" => {
                out.total_tests = next(&mut args, "--total-tests").parse().expect("--total-tests")
            }
            "--seed" => out.seed = next(&mut args, "--seed").parse().expect("--seed"),
            "--target" => out.target = Some(next(&mut args, "--target").parse().expect("--target")),
            "--distill" => out.distill = true,
            other => panic!("unknown argument `{other}`"),
        }
    }
    out
}

/// The lease template: every shard lease runs the two-arm bandit
/// campaign, seeded from its shard spec so arms never share streams.
fn lease_template() -> chatfuzz_orchestrate::LeaseBuilder {
    Arc::new(|spec: ShardSpec| {
        CampaignBuilder::from_factory(rocket_factory())
            .batch_size(32)
            .generator(RandomRegression::new(spec.seed, 16))
            .generator(EvolveGenerator::new(EvolveConfig { seed: spec.seed, ..Default::default() }))
            .scheduler(Ucb1::new(0.5).cost_normalised())
    })
}

/// The merge-time corpus minimiser: re-executes every retained seed of
/// every pooled corpus standalone on a fresh DUT and lets
/// [`Corpus::distill`] drop the seeds whose coverage is subsumed, so
/// the re-split fan-out inherits the smallest corpus with the same
/// pooled union.
fn distill_hook() -> DistillHook {
    let factory = rocket_factory();
    Arc::new(move |snapshot: &mut CampaignSnapshot| {
        let mut dut = factory();
        for state in snapshot.generator_states_mut() {
            let Some(state) = state else { continue };
            let Some(corpus_state) = state.corpus.as_mut() else { continue };
            if corpus_state.seeds.is_empty() {
                continue;
            }
            let mut corpus = Corpus::new(corpus_state.seeds.len());
            corpus.import(corpus_state);
            let standalone: Vec<CovMap> = corpus
                .seeds()
                .iter()
                .map(|seed| {
                    let body: Vec<u8> =
                        seed.state.words.iter().flat_map(|w| w.to_le_bytes()).collect();
                    dut.run(&wrap(&body, HarnessConfig::default())).coverage
                })
                .collect();
            if corpus.distill(&standalone) > 0 {
                corpus.export_into(corpus_state);
            }
        }
    })
}

/// One status line per campaign, plus a fleet-health line.
fn render(status: &OrchestratorStatus) {
    for campaign in &status.campaigns {
        let count = |want: LeaseState| campaign.leases.iter().filter(|l| l.state == want).count();
        let arms = campaign
            .arms
            .iter()
            .map(|(name, arm)| format!("{name} p={} r={:.4}", arm.pulls, arm.mean_reward))
            .collect::<Vec<_>>()
            .join(", ");
        let degradation = if campaign.quarantined_leases > 0
            || campaign.max_fallback_depth > 0
            || campaign.checksum_failures > 0
        {
            format!(
                " | DEGRADED q:{} fb:{} ck:{}",
                campaign.quarantined_leases,
                campaign.max_fallback_depth,
                campaign.checksum_failures
            )
        } else {
            String::new()
        };
        println!(
            "[{}] gen {} | cov {:6.2}% | {:>6} tests ({:.0}/s) | leases i:{} h:{} c:{} r:{} q:{} \
             | revoked {} | arms: {}{}{}",
            campaign.name,
            campaign.generation,
            campaign.coverage_pct,
            campaign.tests_run,
            campaign.tests_per_sec,
            count(LeaseState::Issued),
            count(LeaseState::Heartbeating),
            count(LeaseState::Completed),
            count(LeaseState::Revoked),
            count(LeaseState::Quarantined),
            campaign.revoked_leases,
            if arms.is_empty() { "(awaiting first merge)" } else { &arms },
            degradation,
            if campaign.done { " | DONE" } else { "" },
        );
    }
    let live = status.workers.iter().filter(|w| w.alive).count();
    let swept = if status.swept_tmp_files > 0 {
        format!(", {} orphaned tmp files swept", status.swept_tmp_files)
    } else {
        String::new()
    };
    println!("workers: {live} live, {} dead{swept}", status.workers.len() - live);
}

fn main() {
    let args = parse_args();
    let space = rocket_factory()().space().clone();
    let mut config = FleetConfig {
        fan_out: args.fan_out,
        lease_tests: args.lease_tests,
        total_tests: args.total_tests,
        coverage_target_pct: args.target,
        heartbeat_deadline: Duration::from_secs(30),
        ..FleetConfig::new("rocket", args.seed, space, lease_template())
    };
    if args.distill {
        config.distill = Some(distill_hook());
    }

    println!(
        "== Orchestrated fleet: {} workers, {} leases x {} tests/generation, {} total ==",
        args.workers, args.fan_out, args.lease_tests, args.total_tests
    );
    let ckpt = std::env::temp_dir().join(format!("chatfuzz-orchestrate-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&ckpt);
    let mut orchestrator = Orchestrator::new(LocalPoolTransport::new(args.workers, &ckpt));
    let campaign = orchestrator.register(config);

    let mut last = Instant::now() - Duration::from_secs(1);
    orchestrator
        .run_streaming(|status| {
            let done = status.campaigns.iter().all(|c| c.done);
            if !done && last.elapsed() < Duration::from_millis(250) {
                return;
            }
            last = Instant::now();
            render(status);
        })
        .expect("fleet run");

    let merged = orchestrator.final_snapshot(campaign).expect("finished campaign");
    println!();
    println!("{}", report::markdown_summary(&merged.report()));
    let _ = std::fs::remove_dir_all(&ckpt);
}
