//! **Experiment E1 (paper Fig. 2)** — condition coverage over time for
//! ChatFuzz vs TheHuzz (plus random regression) fuzzing the RocketCore
//! model. Writes one CSV per generator under `results/` and prints the
//! curves as a combined table.
//!
//! Paper shape to reproduce: ChatFuzz's curve dominates TheHuzz's from the
//! start and reaches TheHuzz's late-run coverage with a fraction of the
//! effort (34.6× in the paper's wall-clock terms).

use chatfuzz::fuzz::run_campaign;
use chatfuzz_baselines::{MutatorConfig, RandomRegression, TheHuzz};
use chatfuzz_bench::{
    campaign, history_rows, print_table, rocket_factory, trained_chatfuzz_generator, write_csv,
    Scale,
};

fn main() {
    let scale = Scale::from_env();
    let tests = scale.campaign_tests();
    let cfg = campaign(tests);
    let factory = rocket_factory();

    println!("== Fig. 2: coverage over time on RocketCore ({tests} tests/generator) ==");

    println!("[1/3] training ChatFuzz pipeline…");
    let (mut chatfuzz_gen, _) = trained_chatfuzz_generator(scale, 42);
    println!("[1/3] fuzzing with ChatFuzz…");
    let chatfuzz = run_campaign(&mut chatfuzz_gen, &factory, &cfg);

    println!("[2/3] fuzzing with TheHuzz…");
    let mut thehuzz_gen = TheHuzz::new(MutatorConfig::default());
    let thehuzz = run_campaign(&mut thehuzz_gen, &factory, &cfg);

    println!("[3/3] fuzzing with random regression…");
    let mut random_gen = RandomRegression::new(7, 24);
    let random = run_campaign(&mut random_gen, &factory, &cfg);

    for (name, report) in
        [("chatfuzz", &chatfuzz), ("thehuzz", &thehuzz), ("random", &random)]
    {
        write_csv(
            &format!("fig2_{name}"),
            &["tests", "coverage_pct", "sim_cycles", "wall_s"],
            &history_rows(report),
        );
    }

    // Combined table at shared checkpoints.
    let mut rows = Vec::new();
    for point in &chatfuzz.history {
        let at = |r: &chatfuzz::fuzz::CampaignReport| {
            r.history
                .iter()
                .filter(|p| p.tests <= point.tests)
                .next_back()
                .map(|p| format!("{:.2}", p.coverage_pct))
                .unwrap_or_else(|| "-".into())
        };
        rows.push(vec![
            point.tests.to_string(),
            format!("{:.2}", point.coverage_pct),
            at(&thehuzz),
            at(&random),
        ]);
    }
    print_table(
        "Fig. 2 — % condition points covered vs tests (RocketCore)",
        &["tests", "ChatFuzz", "TheHuzz", "random"],
        &rows,
    );

    println!(
        "\nfinal: ChatFuzz {:.2}%  TheHuzz {:.2}%  random {:.2}%",
        chatfuzz.final_coverage_pct, thehuzz.final_coverage_pct, random.final_coverage_pct
    );
    assert!(
        chatfuzz.final_coverage_pct > thehuzz.final_coverage_pct,
        "paper shape violated: ChatFuzz must dominate TheHuzz"
    );
    assert!(
        thehuzz.final_coverage_pct > random.final_coverage_pct,
        "paper shape violated: TheHuzz must dominate random regression"
    );
}
