//! **Experiment E1 (paper Fig. 2)** — condition coverage over time for
//! ChatFuzz vs TheHuzz (plus random regression) fuzzing the RocketCore
//! model. Writes one CSV + JSON per generator under `results/` and prints
//! the curves as a combined table.
//!
//! Paper shape to reproduce: ChatFuzz's curve dominates TheHuzz's from the
//! start and reaches TheHuzz's late-run coverage with a fraction of the
//! effort (34.6× in the paper's wall-clock terms).

use chatfuzz::campaign::CampaignReport;
use chatfuzz_baselines::{MutatorConfig, RandomRegression, TheHuzz};
use chatfuzz_bench::{
    completed_report, history_rows, print_table, rocket_factory, run_budget_durable,
    trained_chatfuzz_generator, write_csv, write_report_json, Scale, SnapshotArgs, TRAIN_SEED,
};

fn main() {
    let scale = Scale::from_env();
    let tests = scale.campaign_tests();
    let factory = rocket_factory();
    // `--snapshot-path results/fig2.json` checkpoints each generator's
    // campaign (as fig2-<generator>.json); `--resume` continues them.
    let snapshots = SnapshotArgs::from_env_args();

    println!("== Fig. 2: coverage over time on RocketCore ({tests} tests/generator) ==");

    // A complete `--resume` snapshot short-circuits the expensive LM
    // pipeline training — the campaign would run zero batches anyway.
    let chatfuzz = completed_report(&factory, "chatfuzz", tests, &snapshots).unwrap_or_else(|| {
        println!("[1/3] training ChatFuzz pipeline…");
        let (mut chatfuzz_gen, _) = trained_chatfuzz_generator(scale, TRAIN_SEED);
        println!("[1/3] fuzzing with ChatFuzz…");
        run_budget_durable(&factory, &mut chatfuzz_gen, tests, "chatfuzz", &snapshots)
    });

    println!("[2/3] fuzzing with TheHuzz…");
    let thehuzz = run_budget_durable(
        &factory,
        TheHuzz::new(MutatorConfig::default()),
        tests,
        "thehuzz",
        &snapshots,
    );

    println!("[3/3] fuzzing with random regression…");
    let random =
        run_budget_durable(&factory, RandomRegression::new(7, 24), tests, "random", &snapshots);

    for (name, report) in [("chatfuzz", &chatfuzz), ("thehuzz", &thehuzz), ("random", &random)] {
        write_csv(
            &format!("fig2_{name}"),
            &["tests", "coverage_pct", "sim_cycles", "wall_s"],
            &history_rows(report),
        );
        write_report_json(&format!("fig2_{name}"), report);
    }

    // Combined table at shared checkpoints.
    let mut rows = Vec::new();
    for point in &chatfuzz.history {
        let at = |r: &CampaignReport| {
            r.history
                .iter()
                .rfind(|p| p.tests <= point.tests)
                .map(|p| format!("{:.2}", p.coverage_pct))
                .unwrap_or_else(|| "-".into())
        };
        rows.push(vec![
            point.tests.to_string(),
            format!("{:.2}", point.coverage_pct),
            at(&thehuzz),
            at(&random),
        ]);
    }
    print_table(
        "Fig. 2 — % condition points covered vs tests (RocketCore)",
        &["tests", "ChatFuzz", "TheHuzz", "random"],
        &rows,
    );

    println!(
        "\nfinal: ChatFuzz {:.2}%  TheHuzz {:.2}%  random {:.2}%",
        chatfuzz.final_coverage_pct, thehuzz.final_coverage_pct, random.final_coverage_pct
    );
    assert!(
        chatfuzz.final_coverage_pct > thehuzz.final_coverage_pct,
        "paper shape violated: ChatFuzz must dominate TheHuzz"
    );
    assert!(
        thehuzz.final_coverage_pct > random.final_coverage_pct,
        "paper shape violated: TheHuzz must dominate random regression"
    );
}
