//! Diagnostic: coverage ceilings and holes per input source.
//!
//! Compares (a) corpus functions replayed directly (the LM's ideal
//! target), (b) TheHuzz, (c) random regression — and prints the condition
//! holes each leaves, to calibrate the coverage space.

use chatfuzz::campaign::{DutFactory, StopCondition};
use chatfuzz_baselines::{Feedback, InputGenerator, MutatorConfig, RandomRegression, TheHuzz};
use chatfuzz_bench::{rocket_factory, session};
use chatfuzz_corpus::{CorpusConfig, CorpusGenerator};
use chatfuzz_coverage::CovMap;
use chatfuzz_isa::encode_program;
use chatfuzz_rtl::{Dut, Rocket, RocketConfig};

/// Replays corpus functions verbatim — the quality ceiling for an LM that
/// perfectly imitates its training data.
struct CorpusReplay {
    generator: CorpusGenerator,
}

impl InputGenerator for CorpusReplay {
    fn name(&self) -> &str {
        "corpus-replay"
    }
    fn next_batch(&mut self, n: usize) -> Vec<Vec<u8>> {
        self.generator
            .generate(n)
            .into_iter()
            .map(|f| encode_program(&f).expect("corpus encodes"))
            .collect()
    }
    fn observe(&mut self, _b: &[Vec<u8>], _f: &[Feedback]) {}
}

/// A pure coverage race: no mismatch detection, 8 workers.
fn ceiling(factory: &DutFactory, generator: impl InputGenerator, tests: usize) -> f64 {
    session(factory)
        .workers(8)
        .detect_mismatches(false)
        .generator(generator)
        .build()
        .run_until(&[StopCondition::Tests(tests)])
        .final_coverage_pct
}

fn main() {
    let tests = 1024;
    let factory = rocket_factory();

    let corpus = CorpusReplay {
        generator: CorpusGenerator::new(CorpusConfig { seed: 1, ..Default::default() }),
    };
    let corpus_pct = ceiling(&factory, corpus, tests);
    let thehuzz_pct = ceiling(&factory, TheHuzz::new(MutatorConfig::default()), tests);
    let random_pct = ceiling(&factory, RandomRegression::new(3, 24), tests);

    println!("corpus-replay ceiling: {corpus_pct:.2}%");
    println!("thehuzz:               {thehuzz_pct:.2}%");
    println!("random:                {random_pct:.2}%");

    // Union-map hole dump for corpus replay and TheHuzz.
    let mut dut = Rocket::new(RocketConfig::default());
    let space = dut.space().clone();
    let dump = |label: &str, generator: &mut dyn InputGenerator, dut: &mut Rocket| {
        let mut union = CovMap::new(&space);
        for _ in 0..8 {
            for body in generator.next_batch(32) {
                let image = chatfuzz::harness::wrap(&body, Default::default());
                union.merge_from(&dut.run(&image).coverage);
            }
        }
        let holes: Vec<&str> = union.holes().collect();
        println!("\n[{label}] {:.2}% — {} holes:", union.percent(), holes.len());
        for h in holes {
            println!("  {h}");
        }
    };
    let mut corpus2 = CorpusReplay {
        generator: CorpusGenerator::new(CorpusConfig { seed: 2, ..Default::default() }),
    };
    dump("corpus-replay", &mut corpus2, &mut dut);
    let mut thehuzz2 = TheHuzz::new(MutatorConfig { seed: 4, ..Default::default() });
    dump("thehuzz", &mut thehuzz2, &mut dut);
}
