//! Tracked throughput benchmark for the execution hot path.
//!
//! Measures tests/sec and simulated-cycles/sec on the Rocket and BOOM
//! models at three levels:
//!
//! 1. **per-test hot path** — the PR-3 optimised path (precompiled
//!    harness, `Dut::run_into` + `SoftCoreRunner` arenas, decode cache)
//!    against the naive allocating path (`wrap` + `Dut::run` +
//!    `SoftCore::run` per test), which is the pre-PR-3 hot path kept
//!    alive exactly so this comparison stays honest;
//! 2. **campaign** — the full worker-pool loop, single worker and
//!    multi-worker;
//! 3. **sharded** — in-process sharding over the campaign loop;
//! 4. **orchestrated** — the PR-6 merge-then-continue fleet over
//!    `LocalPoolTransport`, merged tests/sec at 4 workers vs 1 on
//!    identical work (the merged result is asserted worker-count
//!    independent), plus the deterministic coverage gate: the fleet
//!    must reach the one-shot 4-shard plateau in no more tests.
//!
//! It also tracks the **evolve arm's time-to-coverage**: a random-only
//! campaign runs to the budget and sets the plateau target, then the
//! same-seed campaign with the evolutionary-corpus arm (scheduled by a
//! cost-normalised UCB1 bandit) runs the same budget, and the JSON
//! records how many tests each needed to reach that coverage. Both runs
//! are deterministic per seed, so the comparison is a gateable fact, not
//! a timing.
//!
//! And the **LM sampling path**: tokens/sec of the naive per-token
//! full-forward sampler (`Gpt::generate`, the PR-5 equality baseline)
//! against the KV-cached incremental decoder (`Gpt::generate_batch_into`)
//! on identical work (same RNG ⇒ token-identical output, asserted), plus
//! tests/sec of a full online-training LM-arm campaign — once with the
//! serialized in-line trainer and once with the PR-7 actor/learner
//! split (frozen-snapshot sampling, batched publishes), the latter
//! re-run to assert it is deterministic per seed.
//!
//! Writes `BENCH_throughput.json` (repo root by default) so every PR
//! carries a perf trajectory. `--smoke` shrinks budgets for CI; `--check`
//! fails the run if the optimised per-test path on Rocket is not at least
//! 2× the naive baseline (the PR-3 acceptance bar), if the evolve-arm
//! campaign fails to reach the random plateau in fewer tests (the PR-4
//! bar), if KV-cached sampling is not at least 3× the naive sampler
//! (the PR-5 bar), if the orchestrated merge-then-continue fleet
//! needs more tests than the one-shot 4-shard campaign to reach the
//! one-shot's plateau coverage (the PR-6 bar), if the actor/learner
//! LM campaign is not at least 5× the serialized in-line trainer
//! (the PR-7 bar), or if running a campaign with a fully enabled
//! telemetry sink costs more than 3% of wall clock over the same
//! campaign with telemetry disabled (the PR-9 bar — the two results
//! are also asserted bit-identical, telemetry's neutrality contract).
//!
//! ```text
//! throughput [--smoke] [--check] [--out PATH]
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use chatfuzz::campaign::{CampaignBuilder, StopCondition};
use chatfuzz::generator::{LmGenerator, LmGeneratorConfig};
use chatfuzz::harness::{wrap, HarnessConfig, PrecompiledHarness};
use chatfuzz::shard::{InProcessRunner, ShardSpec, ShardedCampaign};
use chatfuzz_baselines::{InputGenerator, RandomRegression, Ucb1};
use chatfuzz_bench::{boom_factory, print_table, rocket_factory};
use chatfuzz_corpus::{CorpusConfig, CorpusGenerator};
use chatfuzz_evolve::{EvolveConfig, EvolveGenerator};
use chatfuzz_lm::{Gpt, GptConfig, KvCache, Tokenizer};
use chatfuzz_orchestrate::{FleetConfig, LocalPoolTransport, Orchestrator};
use chatfuzz_rl::PpoConfig;
use chatfuzz_rtl::{Dut, DutRun};
use chatfuzz_softcore::trace::Trace;
use chatfuzz_softcore::{Hart, Memory, SoftCore, SoftCoreConfig, SoftCoreRunner};
use chatfuzz_telemetry::TelemetrySink;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

struct Args {
    smoke: bool,
    check: bool,
    out: String,
}

fn parse_args() -> Args {
    let mut out = Args { smoke: false, check: false, out: "BENCH_throughput.json".into() };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => out.smoke = true,
            "--check" => out.check = true,
            "--out" => out.out = args.next().expect("--out needs a value"),
            other => panic!("unknown argument `{other}`"),
        }
    }
    out
}

#[derive(Debug, Clone, Copy)]
struct Measure {
    tests_per_sec: f64,
    cycles_per_sec: f64,
    /// Checksums folded over the run, used to pin naive == optimised.
    total_cycles: u64,
    covered_bins: usize,
}

/// Best-of-`reps` timing of `work`, which runs the whole body list once
/// and returns (simulated cycles, covered bins).
fn time_best(tests: usize, reps: usize, mut work: impl FnMut() -> (u64, usize)) -> Measure {
    let mut best = f64::INFINITY;
    let mut sums = (0u64, 0usize);
    for _ in 0..reps {
        let start = Instant::now();
        sums = work();
        best = best.min(start.elapsed().as_secs_f64());
    }
    Measure {
        tests_per_sec: tests as f64 / best,
        cycles_per_sec: sums.0 as f64 / best,
        total_cycles: sums.0,
        covered_bins: sums.1,
    }
}

/// The pre-PR-3 per-test hot path: assemble the harness, allocate a fresh
/// result, and allocate a fresh golden-model arena, for every input.
/// `Dut::run` skips the DUT decode cache, and the golden hart is built by
/// hand with its decode cache disabled, so both halves decode-from-scratch
/// and allocate exactly as the pre-PR-3 code did.
fn naive_path(dut: &mut dyn Dut, bodies: &[Vec<u8>], reps: usize) -> Measure {
    let golden_cfg = SoftCoreConfig::default();
    let golden = SoftCore::new(golden_cfg);
    time_best(bodies.len(), reps, || {
        let mut cycles = 0u64;
        let mut bins = 0usize;
        for body in bodies {
            let image = wrap(body, HarnessConfig::default());
            let run = dut.run(&image);
            let mut mem = Memory::new(golden_cfg.ram_base, golden_cfg.ram_size);
            let image_len = image.len().min(golden_cfg.ram_size as usize);
            mem.load_image(golden_cfg.ram_base, &image[..image_len]);
            let mut hart = Hart::new(mem, golden_cfg.ram_base);
            hart.disable_decode_cache();
            let golden_trace = golden.run_hart(&mut hart);
            cycles += run.cycles;
            bins += run.coverage.covered_bins();
            std::hint::black_box(&golden_trace);
        }
        (cycles, bins)
    })
}

/// The PR-3 per-test hot path: precompiled harness into a reused image
/// buffer, `run_into` into a reused scratch, reused golden arena.
fn optimized_path(dut: &mut dyn Dut, bodies: &[Vec<u8>], reps: usize) -> Measure {
    let harness = PrecompiledHarness::new(HarnessConfig::default());
    let mut golden = SoftCoreRunner::new(SoftCoreConfig::default());
    let mut image = Vec::new();
    let mut scratch = DutRun::scratch(dut.space());
    let mut golden_trace = Trace::scratch();
    time_best(bodies.len(), reps, || {
        let mut cycles = 0u64;
        let mut bins = 0usize;
        for body in bodies {
            harness.build_into(body, &mut image);
            dut.run_into(&image, &mut scratch);
            golden.run_into(&image, &mut golden_trace);
            cycles += scratch.cycles;
            bins += scratch.coverage.covered_bins();
            std::hint::black_box(&golden_trace);
        }
        (cycles, bins)
    })
}

/// Campaign throughput: the full scheduler → workers → calculator loop.
fn campaign_throughput(
    factory: &chatfuzz::campaign::DutFactory,
    workers: usize,
    tests: usize,
) -> Measure {
    let mut campaign = CampaignBuilder::from_factory(std::sync::Arc::clone(factory))
        .batch_size(32)
        .workers(workers)
        .generator(RandomRegression::new(5, 16))
        .build();
    let start = Instant::now();
    let report = campaign.run_until(&[StopCondition::Tests(tests)]);
    let dt = start.elapsed().as_secs_f64();
    Measure {
        tests_per_sec: tests as f64 / dt,
        cycles_per_sec: report.total_cycles as f64 / dt,
        total_cycles: report.total_cycles,
        covered_bins: 0,
    }
}

/// Sharded campaign throughput (in-process shards, 2 workers each).
fn sharded_throughput(shards: usize, tests_per_shard: usize) -> Measure {
    let runner = InProcessRunner::new(move |spec: chatfuzz::shard::ShardSpec| {
        let campaign = CampaignBuilder::from_factory(rocket_factory())
            .batch_size(32)
            .workers(2)
            .generator(RandomRegression::new(spec.seed, 16))
            .build();
        (campaign, vec![StopCondition::Tests(tests_per_shard)])
    });
    let start = Instant::now();
    let outcome = ShardedCampaign::new(runner, shards, 5).run().expect("sharded run");
    let dt = start.elapsed().as_secs_f64();
    let merged = outcome.merged_report();
    Measure {
        tests_per_sec: (shards * tests_per_shard) as f64 / dt,
        cycles_per_sec: merged.total_cycles as f64 / dt,
        total_cycles: merged.total_cycles,
        covered_bins: 0,
    }
}

/// The evolve-arm time-to-coverage comparison (deterministic per seed).
struct EvolveComparison {
    budget: usize,
    plateau_pct: f64,
    random_tests: usize,
    evolve_tests: Option<usize>,
    evolve_final_pct: f64,
}

/// Runs the random-only campaign to `budget` tests, takes its final
/// (plateau) coverage as the target, then runs the same-seed campaign
/// with the evolutionary arm added (cost-normalised UCB1 over the two
/// arms) and reports how many tests each needed to reach the target.
fn evolve_comparison(budget: usize) -> EvolveComparison {
    let seed = 5;
    let random = CampaignBuilder::from_factory(rocket_factory())
        .batch_size(32)
        .workers(4)
        .generator(RandomRegression::new(seed, 16))
        .build()
        .run_until(&[StopCondition::Tests(budget)]);
    let plateau_pct = random.final_coverage_pct;
    let random_tests =
        random.tests_to_reach(plateau_pct).expect("random reaches its own final coverage");

    let evolve = CampaignBuilder::from_factory(rocket_factory())
        .batch_size(32)
        .workers(4)
        .generator(RandomRegression::new(seed, 16))
        .generator(EvolveGenerator::new(EvolveConfig { seed, ..Default::default() }))
        .scheduler(Ucb1::new(0.5).cost_normalised())
        .build()
        .run_until(&[StopCondition::Tests(budget)]);

    EvolveComparison {
        budget,
        plateau_pct,
        random_tests,
        evolve_tests: evolve.tests_to_reach(plateau_pct),
        evolve_final_pct: evolve.final_coverage_pct,
    }
}

/// The orchestrated-fleet comparison (PR 6): merged throughput of the
/// same merge-then-continue fleet at 4 workers vs 1, plus the
/// deterministic coverage-vs-tests gate against the one-shot 4-shard
/// campaign with the same template and budget.
struct OrchestratorComparison {
    total_tests: usize,
    fan_out: usize,
    generations: u64,
    workers1_tests_per_sec: f64,
    workers4_tests_per_sec: f64,
    workers4_cycles_per_sec: f64,
    parallel_speedup: f64,
    total_cycles: u64,
    plateau_pct: f64,
    oneshot_tests: Option<usize>,
    oneshot_final_pct: f64,
    fleet_tests: Option<usize>,
    fleet_final_pct: f64,
}

/// The shared per-shard campaign template: the orchestrated fleet's
/// leases and the one-shot reference shards both build through this, so
/// the coverage comparison is template-identical (generation-0 lease
/// seeds equal the one-shot shard seeds by the orchestrator's seed law).
fn fleet_lease(spec: ShardSpec) -> CampaignBuilder<'static> {
    CampaignBuilder::from_factory(rocket_factory())
        .batch_size(32)
        .generator(RandomRegression::new(spec.seed, 16))
}

/// Runs one fleet to completion on a `workers`-wide local pool and
/// returns (final merged snapshot, generations run, wall seconds).
fn orchestrated_fleet(
    config: &FleetConfig,
    workers: usize,
    tag: &str,
) -> (chatfuzz::campaign::CampaignSnapshot, u64, f64) {
    let dir =
        std::env::temp_dir().join(format!("chatfuzz-bench-orch-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut orchestrator = Orchestrator::new(LocalPoolTransport::new(workers, &dir));
    let campaign = orchestrator.register(config.clone());
    let start = Instant::now();
    orchestrator.run_to_completion().expect("orchestrated fleet");
    let dt = start.elapsed().as_secs_f64();
    let generations = orchestrator.status().campaigns[0].generation + 1;
    let snapshot = orchestrator.final_snapshot(campaign).expect("finished fleet").clone();
    let _ = std::fs::remove_dir_all(&dir);
    (snapshot, generations, dt)
}

/// `plateau_pct` is the PR-4 random-arm plateau (the random-only
/// campaign's final coverage at the same budget): both the fleet and
/// the one-shot sharded run are measured by how many merged tests they
/// need to reach it.
fn orchestrator_throughput(total_tests: usize, plateau_pct: f64) -> OrchestratorComparison {
    // Fixed bench seed for the fleet/one-shot pair; both runs derive all
    // their streams from it, so the comparison is deterministic.
    let base_seed = 4;
    let fan_out = 4;
    let shard_tests = total_tests / fan_out;
    // Half-budget leases: the fleet merges and re-splits once mid-run,
    // so the comparison actually exercises merge-then-continue.
    let lease_tests = shard_tests / 2;

    // One-shot reference: the same per-shard template run straight to
    // the full budget with a single final merge.
    let runner = InProcessRunner::new(move |spec: ShardSpec| {
        (fleet_lease(spec).build(), vec![StopCondition::Tests(shard_tests)])
    });
    let oneshot = ShardedCampaign::new(runner, fan_out, base_seed)
        .run()
        .expect("one-shot sharded run")
        .merged_report();

    let space = rocket_factory()().space().clone();
    let config = FleetConfig {
        fan_out,
        lease_tests,
        total_tests,
        checkpoint_every: 8,
        heartbeat_deadline: std::time::Duration::from_secs(120),
        ..FleetConfig::new("rocket-fleet", base_seed, space, std::sync::Arc::new(fleet_lease))
    };
    let (merged4, generations, dt4) = orchestrated_fleet(&config, 4, "w4");
    let (merged1, _, dt1) = orchestrated_fleet(&config, 1, "w1");
    assert_eq!(
        chatfuzz::report::json_canonical(&merged4.report()),
        chatfuzz::report::json_canonical(&merged1.report()),
        "the fleet's merged result must not depend on the worker count"
    );

    let fleet = merged4.report();
    OrchestratorComparison {
        total_tests,
        fan_out,
        generations,
        workers1_tests_per_sec: total_tests as f64 / dt1,
        workers4_tests_per_sec: total_tests as f64 / dt4,
        workers4_cycles_per_sec: fleet.total_cycles as f64 / dt4,
        parallel_speedup: dt1 / dt4,
        total_cycles: fleet.total_cycles,
        plateau_pct,
        oneshot_tests: oneshot.tests_to_reach(plateau_pct),
        oneshot_final_pct: oneshot.final_coverage_pct,
        fleet_tests: fleet.tests_to_reach(plateau_pct),
        fleet_final_pct: fleet.final_coverage_pct,
    }
}

/// The telemetry overhead gate (PR 9): the same two-arm campaign run
/// with a disabled sink and with a fully enabled one (metrics + events
/// firing on every batch), best-of-`reps` each. The results must be
/// bit-identical — telemetry observes, never perturbs — and the enabled
/// run must stay within a few percent of the disabled wall clock.
struct TelemetryOverhead {
    tests: usize,
    disabled_tests_per_sec: f64,
    enabled_tests_per_sec: f64,
    /// enabled wall clock / disabled wall clock (1.0 = free).
    overhead: f64,
}

fn telemetry_overhead(tests: usize, reps: usize) -> TelemetryOverhead {
    let seed = 5;
    let run = |sink: TelemetrySink| {
        let mut best = f64::INFINITY;
        let mut canonical = String::new();
        for _ in 0..reps {
            let mut campaign = CampaignBuilder::from_factory(rocket_factory())
                .batch_size(32)
                .workers(4)
                .generator(RandomRegression::new(seed, 16))
                .generator(EvolveGenerator::new(EvolveConfig { seed, ..Default::default() }))
                .scheduler(Ucb1::new(0.5).cost_normalised())
                .telemetry(sink.clone())
                .build();
            let start = Instant::now();
            let report = campaign.run_until(&[StopCondition::Tests(tests)]);
            best = best.min(start.elapsed().as_secs_f64());
            canonical = chatfuzz::report::json_canonical(&report);
        }
        (best, canonical)
    };
    let (disabled_dt, disabled_json) = run(TelemetrySink::disabled());
    let (enabled_dt, enabled_json) = run(TelemetrySink::enabled());
    assert_eq!(
        disabled_json, enabled_json,
        "PR-9 neutrality: an installed telemetry sink must not change the campaign result"
    );
    TelemetryOverhead {
        tests,
        disabled_tests_per_sec: tests as f64 / disabled_dt,
        enabled_tests_per_sec: tests as f64 / enabled_dt,
        overhead: enabled_dt / disabled_dt,
    }
}

/// The LM sampling-path comparison (PR 5): naive per-token full forwards
/// vs the KV-cached incremental decoder on identical work, plus an
/// online-training LM-arm campaign.
struct LmMeasure {
    prompts: usize,
    generated_tokens: usize,
    naive_tokens_per_sec: f64,
    cached_tokens_per_sec: f64,
    speedup: f64,
    campaign_tests: usize,
    campaign_tests_per_sec: f64,
    /// Actor/learner split (PR 7): same campaign with frozen-snapshot
    /// sampling and batched publishes, vs the serialized trainer above.
    al_publish_every: usize,
    al_learner_batch: usize,
    al_tests_per_sec: f64,
    al_speedup: f64,
    al_publish_epochs: u64,
}

fn lm_throughput(smoke: bool) -> LmMeasure {
    let (n_prompts, reps, campaign_tests) = if smoke { (48, 3, 256) } else { (96, 5, 1024) };
    let seed = 7u64;

    // Deterministic setup: seeded corpus, BPE tokenizer, compact GPT —
    // the quick-experiment scale.
    let mut corpus = CorpusGenerator::new(CorpusConfig { seed, ..Default::default() });
    let programs = corpus.generate_words(64);
    let tokenizer = Tokenizer::train(&programs, 192);
    let mut init = ChaCha8Rng::seed_from_u64(seed);
    let model = Gpt::new(GptConfig::compact(tokenizer.vocab_size() as usize), &mut init);
    let prompts: Vec<Vec<u32>> = (0..n_prompts)
        .map(|i| {
            let program = &programs[i % programs.len()];
            tokenizer.encode_prompt(&program[..(2 + i % 4).min(program.len())])
        })
        .collect();
    let (max_new, temp, top_k) = (48, 0.9, 24);

    // Naive: one full forward per sampled token (the equality baseline).
    let mut naive_tokens = 0usize;
    let mut naive_best = f64::INFINITY;
    let mut naive_outs: Vec<Vec<u32>> = Vec::new();
    for _ in 0..reps {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5a);
        let start = Instant::now();
        naive_outs =
            prompts.iter().map(|p| model.generate(p, max_new, temp, top_k, &mut rng)).collect();
        naive_best = naive_best.min(start.elapsed().as_secs_f64());
        // Prompts are non-empty (BOS-framed), so generated = total − prompt.
        naive_tokens = prompts.iter().zip(&naive_outs).map(|(p, o)| o.len() - p.len()).sum();
    }

    // KV-cached: one shared arena, incremental rows only.
    let mut cache = KvCache::new(*model.config());
    let mut cached_outs: Vec<Vec<u32>> = Vec::new();
    let mut cached_best = f64::INFINITY;
    for _ in 0..reps {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5a);
        let start = Instant::now();
        model.generate_batch_into(
            &prompts,
            max_new,
            temp,
            top_k,
            &mut rng,
            &mut cache,
            &mut cached_outs,
        );
        cached_best = cached_best.min(start.elapsed().as_secs_f64());
    }
    assert_eq!(cached_outs, naive_outs, "KV-cached and naive samplers must emit identical tokens");

    // The LM arm inside a real campaign: tests/sec of the whole
    // sample → simulate → reinforce loop, once with the serialized
    // in-line trainer (train every batch, `publish_every == 0`) and
    // once with the PR-7 actor/learner split (frozen-snapshot sampling,
    // train only at publish boundaries on a bounded replay batch).
    let total_bins = rocket_factory()().space().total_bins();
    // Publish cadence scaled to the budget so both modes cross at least
    // one publish boundary (smoke: 8 batches, full: 32).
    let (publish_every, learner_batch) = if smoke { (8, 8) } else { (16, 16) };
    let lm_campaign = |publish_every: usize, learner_batch: usize| {
        let generator = LmGenerator::new(
            tokenizer.clone(),
            model.clone(),
            PpoConfig { max_new_tokens: max_new, top_k, temperature: temp, ..Default::default() },
            programs.clone(),
            LmGeneratorConfig {
                seed,
                total_bins,
                samples_per_input: 1,
                publish_every,
                learner_batch,
                ..Default::default()
            },
        );
        let mut campaign = CampaignBuilder::from_factory(rocket_factory())
            .batch_size(32)
            .workers(4)
            .generator(generator)
            .build();
        let start = Instant::now();
        campaign.run_until(&[StopCondition::Tests(campaign_tests)]);
        (start.elapsed().as_secs_f64(), campaign.snapshot())
    };
    let (campaign_dt, _serialized) = lm_campaign(0, 0);
    let (al_dt, al_snapshot) = lm_campaign(publish_every, learner_batch);
    // Determinism gate: the actor/learner campaign is a pure function
    // of its seed, so a re-run must reproduce it bit-for-bit.
    let (al_dt2, al_snapshot2) = lm_campaign(publish_every, learner_batch);
    assert_eq!(
        chatfuzz::report::json_canonical(&al_snapshot.report()),
        chatfuzz::report::json_canonical(&al_snapshot2.report()),
        "the actor/learner campaign must be deterministic per seed"
    );
    let al_best = al_dt.min(al_dt2);
    let al_publish_epochs = al_snapshot.generator_states()[0]
        .as_ref()
        .and_then(|state| state.model.as_ref())
        .map_or(0, |model| model.publish_epoch);

    LmMeasure {
        prompts: n_prompts,
        generated_tokens: naive_tokens,
        naive_tokens_per_sec: naive_tokens as f64 / naive_best,
        cached_tokens_per_sec: naive_tokens as f64 / cached_best,
        speedup: naive_best / cached_best,
        campaign_tests,
        campaign_tests_per_sec: campaign_tests as f64 / campaign_dt,
        al_publish_every: publish_every,
        al_learner_batch: learner_batch,
        al_tests_per_sec: campaign_tests as f64 / al_best,
        al_speedup: campaign_dt / al_best,
        al_publish_epochs,
    }
}

fn main() {
    let args = parse_args();
    let (hot_tests, reps, campaign_tests, shard_tests) =
        if args.smoke { (600, 3, 1024, 256) } else { (4000, 5, 8192, 2048) };

    let mut generator = RandomRegression::new(5, 16);
    let bodies = generator.next_batch(hot_tests);

    println!(
        "== Execution hot-path throughput ({} mode) ==",
        if args.smoke { "smoke" } else { "full" }
    );

    let mut rocket = rocket_factory()();
    let rocket_naive = naive_path(rocket.as_mut(), &bodies, reps);
    let rocket_hot = optimized_path(rocket.as_mut(), &bodies, reps);
    assert_eq!(
        rocket_naive.total_cycles, rocket_hot.total_cycles,
        "naive and optimised Rocket paths must simulate identical work"
    );
    assert_eq!(rocket_naive.covered_bins, rocket_hot.covered_bins);

    let mut boom = boom_factory()();
    let boom_naive = naive_path(boom.as_mut(), &bodies, reps);
    let boom_hot = optimized_path(boom.as_mut(), &bodies, reps);
    assert_eq!(
        boom_naive.total_cycles, boom_hot.total_cycles,
        "naive and optimised BOOM paths must simulate identical work"
    );
    assert_eq!(boom_naive.covered_bins, boom_hot.covered_bins);

    let rocket_w1 = campaign_throughput(&rocket_factory(), 1, campaign_tests);
    let rocket_w4 = campaign_throughput(&rocket_factory(), 4, campaign_tests);
    let boom_w4 = campaign_throughput(&boom_factory(), 4, campaign_tests);
    let sharded = sharded_throughput(4, shard_tests);
    let evolve = evolve_comparison(campaign_tests);
    let orch = orchestrator_throughput(campaign_tests, evolve.plateau_pct);
    let lm = lm_throughput(args.smoke);
    let tele = telemetry_overhead(campaign_tests, reps);

    let rocket_speedup = rocket_hot.tests_per_sec / rocket_naive.tests_per_sec;
    let boom_speedup = boom_hot.tests_per_sec / boom_naive.tests_per_sec;

    let fmt_row = |name: &str, m: &Measure| {
        vec![
            name.to_string(),
            format!("{:.0}", m.tests_per_sec),
            format!("{:.3e}", m.cycles_per_sec),
        ]
    };
    print_table(
        "Throughput (tests/sec, sim-cycles/sec)",
        &["workload", "tests/s", "cycles/s"],
        &[
            fmt_row("rocket per-test naive (pre-PR3)", &rocket_naive),
            fmt_row("rocket per-test optimised", &rocket_hot),
            fmt_row("boom per-test naive (pre-PR3)", &boom_naive),
            fmt_row("boom per-test optimised", &boom_hot),
            fmt_row("rocket campaign w=1", &rocket_w1),
            fmt_row("rocket campaign w=4", &rocket_w4),
            fmt_row("boom campaign w=4", &boom_w4),
            fmt_row("rocket sharded 4×(w=2)", &sharded),
            vec![
                "rocket fleet 4 leases (w=4)".to_string(),
                format!("{:.0}", orch.workers4_tests_per_sec),
                format!("{:.3e}", orch.workers4_cycles_per_sec),
            ],
        ],
    );
    println!("rocket per-test speedup: {rocket_speedup:.2}x, boom: {boom_speedup:.2}x");
    let fmt_tests = |t: Option<usize>| t.map_or_else(|| "∞".to_string(), |t| t.to_string());
    println!(
        "orchestrated fleet ({} leases, {} generations): merged {:.0} tests/s at 4 workers \
         vs {:.0} at 1 ({:.2}x); random plateau ({:.2}%) in {} tests vs one-shot's {}",
        orch.fan_out,
        orch.generations,
        orch.workers4_tests_per_sec,
        orch.workers1_tests_per_sec,
        orch.parallel_speedup,
        orch.plateau_pct,
        fmt_tests(orch.fleet_tests),
        fmt_tests(orch.oneshot_tests),
    );
    println!(
        "lm sampling ({} prompts, {} tokens): naive {:.0} tok/s, kv-cached {:.0} tok/s \
         ({:.2}x); lm-arm campaign {:.0} tests/s over {} tests",
        lm.prompts,
        lm.generated_tokens,
        lm.naive_tokens_per_sec,
        lm.cached_tokens_per_sec,
        lm.speedup,
        lm.campaign_tests_per_sec,
        lm.campaign_tests,
    );
    println!(
        "lm actor/learner (publish every {}, replay ≤{}): {:.0} tests/s vs serialized \
         {:.0} ({:.2}x), {} published epochs",
        lm.al_publish_every,
        lm.al_learner_batch,
        lm.al_tests_per_sec,
        lm.campaign_tests_per_sec,
        lm.al_speedup,
        lm.al_publish_epochs,
    );
    println!(
        "telemetry overhead over {} tests: enabled {:.0} tests/s vs disabled {:.0} \
         ({:+.2}%), results bit-identical",
        tele.tests,
        tele.enabled_tests_per_sec,
        tele.disabled_tests_per_sec,
        100.0 * (tele.overhead - 1.0),
    );
    match evolve.evolve_tests {
        Some(tests) => println!(
            "evolve arm reached the random plateau ({:.2}%) in {tests} tests vs random's {} \
             ({:.1}x fewer); evolve final {:.2}%",
            evolve.plateau_pct,
            evolve.random_tests,
            evolve.random_tests as f64 / tests as f64,
            evolve.evolve_final_pct,
        ),
        None => println!(
            "evolve arm did NOT reach the random plateau ({:.2}%) within {} tests",
            evolve.plateau_pct, evolve.budget
        ),
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": 6,");
    let _ = writeln!(json, "  \"mode\": \"{}\",", if args.smoke { "smoke" } else { "full" });
    let _ = writeln!(json, "  \"per_test_hot_path\": {{");
    let pair =
        |json: &mut String, dut: &str, naive: &Measure, hot: &Measure, speedup: f64, last: bool| {
            let _ = writeln!(json, "    \"{dut}\": {{");
            let _ = writeln!(json, "      \"tests\": {hot_tests},");
            let _ = writeln!(json, "      \"before_tests_per_sec\": {:.1},", naive.tests_per_sec);
            let _ = writeln!(json, "      \"after_tests_per_sec\": {:.1},", hot.tests_per_sec);
            let _ = writeln!(json, "      \"before_cycles_per_sec\": {:.1},", naive.cycles_per_sec);
            let _ = writeln!(json, "      \"after_cycles_per_sec\": {:.1},", hot.cycles_per_sec);
            let _ = writeln!(json, "      \"speedup\": {speedup:.3}");
            let _ = writeln!(json, "    }}{}", if last { "" } else { "," });
        };
    pair(&mut json, "rocket", &rocket_naive, &rocket_hot, rocket_speedup, false);
    pair(&mut json, "boom", &boom_naive, &boom_hot, boom_speedup, true);
    json.push_str("  },\n");
    let _ = writeln!(json, "  \"campaign\": {{");
    let camp = |json: &mut String, name: &str, tests: usize, m: &Measure, last: bool| {
        let _ = writeln!(json, "    \"{name}\": {{");
        let _ = writeln!(json, "      \"tests\": {tests},");
        let _ = writeln!(json, "      \"tests_per_sec\": {:.1},", m.tests_per_sec);
        let _ = writeln!(json, "      \"cycles_per_sec\": {:.1},", m.cycles_per_sec);
        let _ = writeln!(json, "      \"total_cycles\": {}", m.total_cycles);
        let _ = writeln!(json, "    }}{}", if last { "" } else { "," });
    };
    camp(&mut json, "rocket_workers_1", campaign_tests, &rocket_w1, false);
    camp(&mut json, "rocket_workers_4", campaign_tests, &rocket_w4, false);
    camp(&mut json, "boom_workers_4", campaign_tests, &boom_w4, false);
    camp(&mut json, "rocket_sharded_4x2", 4 * shard_tests, &sharded, true);
    json.push_str("  },\n");
    let _ = writeln!(json, "  \"orchestrator_throughput\": {{");
    let _ = writeln!(json, "    \"total_tests\": {},", orch.total_tests);
    let _ = writeln!(json, "    \"fan_out\": {},", orch.fan_out);
    let _ = writeln!(json, "    \"generations\": {},", orch.generations);
    let _ = writeln!(json, "    \"workers_1_tests_per_sec\": {:.1},", orch.workers1_tests_per_sec);
    let _ = writeln!(json, "    \"workers_4_tests_per_sec\": {:.1},", orch.workers4_tests_per_sec);
    let _ = writeln!(json, "    \"parallel_speedup\": {:.3},", orch.parallel_speedup);
    let _ = writeln!(json, "    \"total_cycles\": {},", orch.total_cycles);
    let _ = writeln!(json, "    \"plateau_pct\": {:.4},", orch.plateau_pct);
    let opt = |json: &mut String, key: &str, value: Option<usize>| {
        let _ = match value {
            Some(v) => writeln!(json, "    \"{key}\": {v},"),
            None => writeln!(json, "    \"{key}\": null,"),
        };
    };
    opt(&mut json, "oneshot_tests_to_plateau", orch.oneshot_tests);
    opt(&mut json, "fleet_tests_to_plateau", orch.fleet_tests);
    let _ = writeln!(json, "    \"oneshot_final_pct\": {:.4},", orch.oneshot_final_pct);
    let _ = writeln!(json, "    \"fleet_final_pct\": {:.4}", orch.fleet_final_pct);
    json.push_str("  },\n");
    let _ = writeln!(json, "  \"evolve_time_to_coverage\": {{");
    let _ = writeln!(json, "    \"budget\": {},", evolve.budget);
    let _ = writeln!(json, "    \"plateau_pct\": {:.4},", evolve.plateau_pct);
    let _ = writeln!(json, "    \"random_tests_to_plateau\": {},", evolve.random_tests);
    match evolve.evolve_tests {
        Some(tests) => {
            let _ = writeln!(json, "    \"evolve_tests_to_plateau\": {tests},");
            let _ = writeln!(
                json,
                "    \"tests_saved_factor\": {:.3},",
                evolve.random_tests as f64 / tests as f64
            );
        }
        None => {
            let _ = writeln!(json, "    \"evolve_tests_to_plateau\": null,");
            let _ = writeln!(json, "    \"tests_saved_factor\": null,");
        }
    }
    let _ = writeln!(json, "    \"evolve_final_pct\": {:.4}", evolve.evolve_final_pct);
    json.push_str("  },\n");
    let _ = writeln!(json, "  \"lm_throughput\": {{");
    let _ = writeln!(json, "    \"prompts\": {},", lm.prompts);
    let _ = writeln!(json, "    \"generated_tokens\": {},", lm.generated_tokens);
    let _ = writeln!(json, "    \"naive_tokens_per_sec\": {:.1},", lm.naive_tokens_per_sec);
    let _ = writeln!(json, "    \"cached_tokens_per_sec\": {:.1},", lm.cached_tokens_per_sec);
    let _ = writeln!(json, "    \"speedup\": {:.3},", lm.speedup);
    let _ = writeln!(json, "    \"campaign_tests\": {},", lm.campaign_tests);
    let _ = writeln!(json, "    \"campaign_tests_per_sec\": {:.1}", lm.campaign_tests_per_sec);
    json.push_str("  },\n");
    let _ = writeln!(json, "  \"lm_actor_learner\": {{");
    let _ = writeln!(json, "    \"campaign_tests\": {},", lm.campaign_tests);
    let _ = writeln!(json, "    \"publish_every\": {},", lm.al_publish_every);
    let _ = writeln!(json, "    \"learner_batch\": {},", lm.al_learner_batch);
    let _ = writeln!(json, "    \"serialized_tests_per_sec\": {:.1},", lm.campaign_tests_per_sec);
    let _ = writeln!(json, "    \"actor_learner_tests_per_sec\": {:.1},", lm.al_tests_per_sec);
    let _ = writeln!(json, "    \"speedup\": {:.3},", lm.al_speedup);
    let _ = writeln!(json, "    \"published_epochs\": {}", lm.al_publish_epochs);
    json.push_str("  },\n");
    let _ = writeln!(json, "  \"telemetry_overhead\": {{");
    let _ = writeln!(json, "    \"tests\": {},", tele.tests);
    let _ = writeln!(json, "    \"disabled_tests_per_sec\": {:.1},", tele.disabled_tests_per_sec);
    let _ = writeln!(json, "    \"enabled_tests_per_sec\": {:.1},", tele.enabled_tests_per_sec);
    let _ = writeln!(json, "    \"overhead\": {:.4}", tele.overhead);
    json.push_str("  }\n}\n");

    std::fs::write(&args.out, &json).expect("write BENCH_throughput.json");
    println!("wrote {}", args.out);

    if args.check {
        assert!(
            rocket_speedup >= 2.0,
            "PR-3 acceptance: optimised Rocket hot path must be ≥ 2× the naive \
             baseline (got {rocket_speedup:.2}x)"
        );
        let evolve_tests = evolve.evolve_tests.unwrap_or_else(|| {
            panic!(
                "PR-4 acceptance: the evolve-arm campaign never reached the random \
                 plateau ({:.2}%) within {} tests",
                evolve.plateau_pct, evolve.budget
            )
        });
        assert!(
            evolve_tests < evolve.random_tests,
            "PR-4 acceptance: the evolve-arm campaign must reach the random plateau \
             in fewer tests (evolve {evolve_tests}, random {})",
            evolve.random_tests
        );
        assert!(
            lm.speedup >= 3.0,
            "PR-5 acceptance: KV-cached sampling must be ≥ 3× the naive per-token \
             forward (got {:.2}x)",
            lm.speedup
        );
        let fleet_tests = orch.fleet_tests.unwrap_or_else(|| {
            panic!(
                "PR-6 acceptance: the merge-then-continue fleet never reached the \
                 random-arm plateau ({:.2}%) within {} tests",
                orch.plateau_pct, orch.total_tests
            )
        });
        assert!(
            orch.oneshot_tests.is_none_or(|oneshot| fleet_tests <= oneshot),
            "PR-6 acceptance: the 4-worker merge-then-continue fleet must reach the \
             random-arm plateau in no more tests than the one-shot 4-shard campaign \
             (fleet {fleet_tests}, one-shot {:?})",
            orch.oneshot_tests
        );
        assert!(
            lm.al_speedup >= 5.0,
            "PR-7 acceptance: the actor/learner LM campaign must be ≥ 5× the \
             serialized in-line trainer (got {:.2}x)",
            lm.al_speedup
        );
        assert!(
            lm.al_publish_epochs >= 1,
            "PR-7 acceptance: the actor/learner LM campaign must have published at \
             least one weight epoch"
        );
        assert!(
            tele.overhead <= 1.03,
            "PR-9 acceptance: an enabled telemetry sink must cost ≤ 3% of campaign \
             wall clock (got {:+.2}%)",
            100.0 * (tele.overhead - 1.0)
        );
    }
}
