//! **Experiment E2 (paper §V-A, row 1)** — condition coverage at an equal
//! number of generated tests. Paper: at 1.8 K tests ChatFuzz reaches
//! 74.96 % vs TheHuzz 67.4 % on RocketCore.

use chatfuzz_baselines::{MutatorConfig, TheHuzz};
use chatfuzz_bench::{
    print_table, rocket_factory, run_budget, trained_chatfuzz_generator, write_csv,
    write_report_json, Scale, TRAIN_SEED,
};

fn main() {
    let scale = Scale::from_env();
    // The paper's equal-tests point is 1.8 K; we keep that budget exactly.
    let tests = 1800;
    let factory = rocket_factory();

    println!("== Equal-tests comparison on RocketCore ({tests} tests) ==");
    println!("[1/2] training + fuzzing ChatFuzz…");
    let (mut chatfuzz_gen, _) = trained_chatfuzz_generator(scale, TRAIN_SEED);
    let chatfuzz = run_budget(&factory, &mut chatfuzz_gen, tests);
    println!("[2/2] fuzzing TheHuzz…");
    let thehuzz = run_budget(&factory, TheHuzz::new(MutatorConfig::default()), tests);

    let rows = vec![
        vec!["paper (1.8K tests)".into(), "74.96".into(), "67.4".into(), "+7.56".into()],
        vec![
            format!("measured ({tests} tests)"),
            format!("{:.2}", chatfuzz.final_coverage_pct),
            format!("{:.2}", thehuzz.final_coverage_pct),
            format!("{:+.2}", chatfuzz.final_coverage_pct - thehuzz.final_coverage_pct),
        ],
    ];
    print_table(
        "E2 — coverage at equal test count (RocketCore)",
        &["row", "ChatFuzz %", "TheHuzz %", "delta"],
        &rows,
    );
    write_csv(
        "tab_equal_tests",
        &["row", "chatfuzz_pct", "thehuzz_pct"],
        &[vec![
            tests.to_string(),
            format!("{:.2}", chatfuzz.final_coverage_pct),
            format!("{:.2}", thehuzz.final_coverage_pct),
        ]],
    );
    write_report_json("tab_equal_tests_chatfuzz", &chatfuzz);
    write_report_json("tab_equal_tests_thehuzz", &thehuzz);
    assert!(
        chatfuzz.final_coverage_pct > thehuzz.final_coverage_pct,
        "paper shape violated: ChatFuzz must lead at equal tests"
    );
}
