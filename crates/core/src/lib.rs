//! ChatFuzz — ML-based hardware fuzzing (DATE 2024 reproduction).
//!
//! This crate is the system of the paper *Beyond Random Inputs: A Novel
//! ML-Based Hardware Fuzzing*: a processor fuzzer whose input generator is
//! a GPT-style language model trained on machine code and refined with two
//! PPO phases (a deterministic disassembler reward, then an RTL
//! condition-coverage reward), driving a differential fuzzing loop against
//! a RocketCore-like or BOOM-like core and a golden-model ISA simulator.
//!
//! The pieces:
//!
//! * [`pipeline`] — the three-step training pipeline (paper Fig. 1b);
//! * [`generator`] — the LLM-based Input Generator with online
//!   coverage-reward training (paper Fig. 1a), plus the n-gram ablation;
//! * [`fuzz`] — the batched, multi-worker fuzzing loop with the Coverage
//!   Calculator feedback;
//! * [`mismatch`] — the Mismatch Detector: trace diffing, unique-mismatch
//!   clustering, and classification against the known RocketCore defects;
//! * [`harness`] — the bare-metal wrapper (trap handler + stack) around
//!   every generated test.
//!
//! # Examples
//!
//! Fuzz a buggy RocketCore with the TheHuzz baseline for a quick smoke run:
//!
//! ```
//! use chatfuzz::fuzz::{run_campaign, CampaignConfig};
//! use chatfuzz_baselines::{MutatorConfig, TheHuzz};
//! use chatfuzz_rtl::{Dut, Rocket, RocketConfig};
//!
//! let mut generator = TheHuzz::new(MutatorConfig::default());
//! let factory = || Box::new(Rocket::new(RocketConfig::default())) as Box<dyn Dut>;
//! let cfg = CampaignConfig { total_tests: 32, batch_size: 16, workers: 2, ..Default::default() };
//! let report = run_campaign(&mut generator, &factory, &cfg);
//! assert!(report.final_coverage_pct > 0.0);
//! ```

pub mod fuzz;
pub mod generator;
pub mod harness;
pub mod mismatch;
pub mod pipeline;
pub mod report;

pub use fuzz::{run_campaign, CampaignConfig, CampaignReport, CoveragePoint};
pub use generator::{CoverageReward, LmGenerator, LmGeneratorConfig, NgramGenerator};
pub use harness::{wrap, HarnessConfig};
pub use mismatch::{
    classify, diff_traces, KnownBug, Mismatch, MismatchFilter, MismatchLog, UniqueMismatch,
};
pub use pipeline::{
    train_chatfuzz, ChatFuzzModel, CleanupPoint, ModelScale, OptimizePoint, PipelineConfig,
    PipelineReport,
};
