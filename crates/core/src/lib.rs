//! ChatFuzz — ML-based hardware fuzzing (DATE 2024 reproduction).
//!
//! This crate is the system of the paper *Beyond Random Inputs: A Novel
//! ML-Based Hardware Fuzzing*: a processor fuzzer whose input generator is
//! a GPT-style language model trained on machine code and refined with two
//! PPO phases (a deterministic disassembler reward, then an RTL
//! condition-coverage reward), driving a differential fuzzing loop against
//! a RocketCore-like or BOOM-like core and a golden-model ISA simulator.
//!
//! The pieces:
//!
//! * [`campaign`] — the fuzzing loop as a resumable session:
//!   [`CampaignBuilder`] → [`Campaign`] with `step_batch`/`run_until`,
//!   stop conditions, per-batch observers, snapshot/resume,
//!   auto-checkpointing, and multi-generator scheduling (round-robin,
//!   the MABFuzz-style epsilon-greedy bandit, or UCB1 with per-arm
//!   cycle-cost normalisation, all from `chatfuzz_baselines::schedule`).
//!   Per-input feedback carries coverage fingerprints and mismatch
//!   flags, closing the loop for the evolutionary corpus arm in
//!   `chatfuzz_evolve`; a per-batch cross-arm seed exchange feeds the
//!   evolve arm's retained seeds into the LM arm's prompt pool;
//! * [`persist`] — versioned on-disk JSON serialisation of
//!   [`CampaignSnapshot`], so long campaigns survive their process and
//!   resume elsewhere — including the LM arm's trained weights and
//!   optimiser moments, stored as exact f32-bit hex blobs; since v5
//!   every document carries a content checksum, auto-checkpoints keep a
//!   rotated lineage, and [`persist::load_latest_valid`] falls back
//!   through it past torn or corrupt files (quarantining, not deleting);
//! * [`faults`] — seeded, reproducible fault injection (torn writes,
//!   crash boundaries, transient io errors, dropped heartbeats,
//!   duplicated/reordered events) behind the one atomic-write choke
//!   point the durability layer uses;
//! * [`shard`] — horizontal scaling: split one campaign into N shard
//!   sub-campaigns with disjoint RNG streams (in-process or spawned
//!   sub-processes) and merge the results — coverage maps union,
//!   evolutionary corpora pool as a fingerprint-deduped union, model
//!   state carries over from shard 0;
//! * [`pipeline`] — the three-step training pipeline (paper Fig. 1b);
//! * [`generator`] — the LLM-based Input Generator with online
//!   coverage-reward training (paper Fig. 1a) and KV-cached sampling,
//!   plus the n-gram ablation (which also learns online from coverage
//!   winners);
//! * [`mismatch`] — the Mismatch Detector: trace diffing, unique-mismatch
//!   clustering, and classification against the known RocketCore defects;
//! * [`harness`] — the bare-metal wrapper (trap handler + stack) around
//!   every generated test;
//! * [`report`] — CSV/markdown/JSON renderings of campaign results.
//!
//! Campaigns are observable without being perturbable: a
//! `chatfuzz_telemetry::TelemetrySink` attached via
//! [`CampaignBuilder::telemetry`] receives batch spans, scheduler
//! pick/reward events, checkpoint and recovery durations, and fault
//! injections — while results stay bit-identical to an uninstrumented
//! run (wall clock lives only in telemetry output).
//!
//! # Examples
//!
//! Fuzz a buggy RocketCore with two baseline generators multiplexed by an
//! epsilon-greedy bandit, stopping at either a test budget or a coverage
//! plateau, and watch progress per batch:
//!
//! ```
//! use chatfuzz::campaign::{BatchOutcome, CampaignBuilder, StopCondition};
//! use chatfuzz_baselines::{EpsilonGreedy, MutatorConfig, RandomRegression, TheHuzz};
//! use chatfuzz_rtl::{Dut, Rocket, RocketConfig};
//!
//! let mut campaign = CampaignBuilder::new(|| {
//!     Box::new(Rocket::new(RocketConfig::default())) as Box<dyn Dut>
//! })
//! .batch_size(16)
//! .workers(2)
//! .generator(TheHuzz::new(MutatorConfig::default()))
//! .generator(RandomRegression::new(7, 24))
//! .scheduler(EpsilonGreedy::new(1, 0.2))
//! .observer(|outcome: &BatchOutcome| {
//!     println!(
//!         "batch {} [{}]: {:.2}% (+{} bins)",
//!         outcome.batch_index, outcome.generator, outcome.coverage_pct, outcome.new_bins
//!     );
//! })
//! .build();
//!
//! let report = campaign.run_until(&[
//!     StopCondition::Tests(64),
//!     StopCondition::Plateau(16),
//! ]);
//! assert!(report.final_coverage_pct > 0.0);
//! assert_eq!(report.generator, "thehuzz+random");
//!
//! // Sessions are resumable: keep going to a larger budget…
//! let extended = campaign.run_until(&[StopCondition::Tests(96)]);
//! assert!(extended.tests_run >= report.tests_run);
//! // …or checkpoint and continue elsewhere via CampaignBuilder::resume.
//! let snapshot = campaign.snapshot();
//! assert_eq!(snapshot.tests_run(), extended.tests_run);
//! ```

pub mod campaign;
pub mod faults;
pub mod generator;
pub mod harness;
pub mod mismatch;
pub mod persist;
pub mod pipeline;
pub mod report;
pub mod shard;

pub use campaign::{
    BatchOutcome, Campaign, CampaignBuilder, CampaignConfig, CampaignObserver, CampaignReport,
    CampaignSnapshot, CoveragePoint, DutFactory, GeneratorStats, StopCondition,
};
pub use faults::{FaultConfig, FaultPlan};
pub use generator::{CoverageReward, LmGenerator, LmGeneratorConfig, NgramGenerator};
pub use harness::{wrap, HarnessConfig};
pub use mismatch::{
    classify, diff_traces, KnownBug, Mismatch, MismatchFilter, MismatchLog, UniqueMismatch,
};
pub use persist::{
    load_latest_valid, load_snapshot, parse_snapshot, save_snapshot, save_snapshot_rotated,
    snapshot_json, PersistError, Recovery,
};
pub use pipeline::{
    train_chatfuzz, ChatFuzzModel, CleanupPoint, ModelScale, OptimizePoint, PipelineConfig,
    PipelineReport,
};
pub use shard::{
    resplit_snapshot, shard_seed, InProcessRunner, ProcessShardRunner, ShardError, ShardRunner,
    ShardSpec, ShardedCampaign, ShardedOutcome, WorkerRequest,
};
