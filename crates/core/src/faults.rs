//! Seeded, reproducible fault injection for the durability layer.
//!
//! Long fleets die in uglier ways than a clean SIGKILL: a checkpoint
//! write torn mid-`rename`, a transient `EINTR` from a networked
//! filesystem, a worker whose heartbeats stop arriving, a spool that
//! delivers the same completion twice. This module is the single seam
//! through which those failures are *injected on purpose*, so the
//! recovery machinery in [`crate::persist`] and the orchestrator can be
//! tested against every one of them deterministically.
//!
//! # Design
//!
//! A [`FaultPlan`] couples a [`FaultConfig`] (what to inject, and when)
//! with a [`ChaCha8Rng`] decision stream and a persist-operation
//! counter. Every probabilistic decision (transient io errors, dropped
//! heartbeats, duplicated or reordered spool events) is drawn from the
//! ChaCha stream, and every counted decision (torn write at op N, crash
//! at boundary B) is driven by the operation counter — so a fault
//! schedule replays **bit-exactly** from its seed, in the same process
//! or a re-spawned one.
//!
//! Each atomic persist operation has two *crash boundaries*: boundary
//! `2·op − 1` fires after the temp file is written but before the
//! rename (the final path still holds the previous generation), and
//! boundary `2·op` fires just after the rename (the new file is
//! durable, but nothing downstream has observed it). A crash-point
//! sweep that walks `1..=2·ops` therefore crashes at *every* persist
//! boundary of a campaign.
//!
//! # Activation
//!
//! Production code consults [`active`], which reads the plan exactly
//! once: either a plan previously installed in-process via [`install`],
//! or — the cross-process path — one decoded from the
//! [`ENV_VAR`] environment variable (see [`FaultConfig::env_value`]),
//! which is how a test hands a fault schedule to a spawned worker.
//! With no plan installed and no env var set, every choke point
//! ([`atomic_write`], [`FaultPlan::drop_heartbeat`],
//! [`FaultPlan::mangle_events`]) collapses to the plain fast path.

use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Environment variable a spawned process reads its fault plan from.
/// The value is the [`FaultConfig::env_value`] encoding.
pub const ENV_VAR: &str = "CHATFUZZ_FAULT_PLAN";

/// What to inject, and when. The zero value (see [`FaultConfig::benign`])
/// injects nothing; each field arms one fault independently.
///
/// Rates are expressed per myriad (per 10 000) so configs stay integral
/// and encode losslessly through the env var.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultConfig {
    /// Seed of the ChaCha decision stream.
    pub seed: u64,
    /// Abort the process at this persist boundary (`2·op − 1` = after
    /// the temp write, before the rename; `2·op` = after the rename).
    /// 0 disarms.
    pub crash_at_boundary: u64,
    /// Tear the Nth atomic write: only [`FaultConfig::torn_keep_bytes`]
    /// bytes of the document reach the disk, and the rename still
    /// happens — simulating filesystem data loss that `rename`
    /// atomicity cannot save you from. 0 disarms.
    pub torn_at_op: u64,
    /// How many bytes of a torn write survive.
    pub torn_keep_bytes: u64,
    /// Per-myriad rate of transient (`io::ErrorKind::Interrupted`)
    /// errors returned from atomic writes.
    pub io_error_per_myriad: u32,
    /// Per-myriad rate of heartbeat writes silently dropped (a dropped
    /// heartbeat is indistinguishable from one delayed past the next —
    /// the observer's sequence number just arrives late).
    pub heartbeat_drop_per_myriad: u32,
    /// Per-myriad rate of a polled transport event batch having one
    /// event duplicated.
    pub event_dup_per_myriad: u32,
    /// Per-myriad rate of a polled transport event batch having two
    /// events swapped out of order.
    pub event_swap_per_myriad: u32,
}

impl FaultConfig {
    /// A plan that injects nothing (but still counts persist ops).
    pub fn benign(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            crash_at_boundary: 0,
            torn_at_op: 0,
            torn_keep_bytes: 0,
            io_error_per_myriad: 0,
            heartbeat_drop_per_myriad: 0,
            event_dup_per_myriad: 0,
            event_swap_per_myriad: 0,
        }
    }

    /// Encodes the config for [`ENV_VAR`]; [`FaultConfig::parse`] is the
    /// inverse. The encoding is a flat `key=value` list, stable enough
    /// to paste into a shell to replay a CI failure locally:
    /// `seed=7,crash_at=3,torn_at=0,torn_keep=0,io_err=0,hb_drop=0,dup=0,swap=0`.
    pub fn env_value(&self) -> String {
        format!(
            "seed={},crash_at={},torn_at={},torn_keep={},io_err={},hb_drop={},dup={},swap={}",
            self.seed,
            self.crash_at_boundary,
            self.torn_at_op,
            self.torn_keep_bytes,
            self.io_error_per_myriad,
            self.heartbeat_drop_per_myriad,
            self.event_dup_per_myriad,
            self.event_swap_per_myriad,
        )
    }

    /// Decodes [`FaultConfig::env_value`]. Unknown keys and malformed
    /// numbers are errors — a mistyped fault plan must not silently run
    /// a fault-free test.
    pub fn parse(text: &str) -> Result<FaultConfig, String> {
        let mut cfg = FaultConfig::benign(0);
        for part in text.split(',').filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault plan: `{part}` is not key=value"))?;
            let num = |what: &str| -> Result<u64, String> {
                value
                    .trim()
                    .parse::<u64>()
                    .map_err(|_| format!("fault plan: `{value}` is not a number (key `{what}`)"))
            };
            match key.trim() {
                "seed" => cfg.seed = num("seed")?,
                "crash_at" => cfg.crash_at_boundary = num("crash_at")?,
                "torn_at" => cfg.torn_at_op = num("torn_at")?,
                "torn_keep" => cfg.torn_keep_bytes = num("torn_keep")?,
                "io_err" => cfg.io_error_per_myriad = num("io_err")? as u32,
                "hb_drop" => cfg.heartbeat_drop_per_myriad = num("hb_drop")? as u32,
                "dup" => cfg.event_dup_per_myriad = num("dup")? as u32,
                "swap" => cfg.event_swap_per_myriad = num("swap")? as u32,
                other => return Err(format!("fault plan: unknown key `{other}`")),
            }
        }
        Ok(cfg)
    }
}

/// A live fault schedule: config + ChaCha decision stream + persist-op
/// counter. Construct one per process (or per transport) and replay it
/// by constructing another from the same config.
#[derive(Debug)]
pub struct FaultPlan {
    cfg: FaultConfig,
    rng: Mutex<ChaCha8Rng>,
    persist_ops: AtomicU64,
}

impl FaultPlan {
    pub fn new(cfg: FaultConfig) -> FaultPlan {
        FaultPlan {
            cfg,
            rng: Mutex::new(ChaCha8Rng::seed_from_u64(cfg.seed)),
            persist_ops: AtomicU64::new(0),
        }
    }

    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Atomic persist operations counted so far (the sweep uses this to
    /// enumerate crash boundaries: a run with N ops has `2·N` of them).
    pub fn persist_ops(&self) -> u64 {
        self.persist_ops.load(Ordering::SeqCst)
    }

    /// One Bernoulli decision off the ChaCha stream. Rate 0 never draws
    /// (so disarmed faults don't perturb the stream of armed ones).
    fn draw(&self, per_myriad: u32) -> bool {
        if per_myriad == 0 {
            return false;
        }
        let mut rng = self.rng.lock().expect("fault rng poisoned");
        rng.next_u32() % 10_000 < per_myriad
    }

    /// An index draw for event mangling, also off the ChaCha stream.
    fn index(&self, len: usize) -> usize {
        let mut rng = self.rng.lock().expect("fault rng poisoned");
        rng.next_u32() as usize % len
    }

    /// Should this heartbeat write be dropped?
    pub fn drop_heartbeat(&self) -> bool {
        self.draw(self.cfg.heartbeat_drop_per_myriad)
    }

    /// Duplicates and/or reorders events in a polled batch, per the
    /// configured rates. The orchestrator must absorb both without
    /// double-counting — exactly the at-least-once, unordered delivery a
    /// real spool directory gives after an NFS hiccup.
    pub fn mangle_events<T: Clone>(&self, events: &mut Vec<T>) {
        if events.is_empty() {
            return;
        }
        if self.draw(self.cfg.event_dup_per_myriad) {
            let dup = events[self.index(events.len())].clone();
            events.push(dup);
        }
        if events.len() >= 2 && self.draw(self.cfg.event_swap_per_myriad) {
            let a = self.index(events.len());
            let b = self.index(events.len());
            events.swap(a, b);
        }
    }

    /// The faulted atomic write (see [`atomic_write`] for the plan-less
    /// entry point). Decides for the next persist op whether to return a
    /// transient error, tear the payload, and/or abort the process at
    /// one of the op's two crash boundaries.
    pub fn atomic_write(&self, path: &Path, tmp: &Path, contents: &[u8]) -> io::Result<()> {
        let op = self.persist_ops.fetch_add(1, Ordering::SeqCst) + 1;
        if self.draw(self.cfg.io_error_per_myriad) {
            fault_fired("io_error", op, path);
            return Err(io::Error::new(
                io::ErrorKind::Interrupted,
                format!("injected transient io error at persist op {op}"),
            ));
        }
        let body = if self.cfg.torn_at_op == op {
            fault_fired("torn_write", op, path);
            &contents[..contents.len().min(self.cfg.torn_keep_bytes as usize)]
        } else {
            contents
        };
        std::fs::write(tmp, body)?;
        if self.cfg.crash_at_boundary == 2 * op - 1 {
            fault_fired("crash", op, path);
            crash(op, "temp written, before rename");
        }
        std::fs::rename(tmp, path)?;
        if self.cfg.crash_at_boundary == 2 * op {
            fault_fired("crash", op, path);
            crash(op, "after rename");
        }
        Ok(())
    }
}

/// Reports a fired fault-plan decision to the process-global telemetry
/// sink. The trace is flushed eagerly: a fault is rare, and the next
/// decision may be an abort that would otherwise take the timeline with
/// it. Telemetry only *observes* the plan — the decision stream and the
/// persist-op counter are untouched, so an instrumented schedule
/// replays bit-exactly.
fn fault_fired(fault: &'static str, op: u64, path: &Path) {
    let sink = chatfuzz_telemetry::global();
    if sink.is_enabled() {
        sink.counter_add(chatfuzz_telemetry::names::FAULTS_INJECTED, 1);
        sink.event(
            "fault_injected",
            vec![
                ("fault", fault.into()),
                ("op", op.into()),
                ("path", path.display().to_string().into()),
            ],
        );
        let _ = sink.flush_trace();
    }
}

fn crash(op: u64, boundary: &str) -> ! {
    // Deliberately not a panic: catch_unwind must not be able to absorb
    // an injected crash, and a real power loss doesn't run destructors.
    eprintln!("fault plan: crashing at persist op {op} ({boundary})");
    std::process::abort();
}

static ACTIVE: OnceLock<Option<FaultPlan>> = OnceLock::new();

/// Installs a process-global fault plan. Returns `false` if one was
/// already resolved (installed, read from the environment, or observed
/// absent) — the first resolution wins for the life of the process, so
/// a schedule can never change mid-run.
pub fn install(cfg: FaultConfig) -> bool {
    let mut fresh = false;
    ACTIVE.get_or_init(|| {
        fresh = true;
        Some(FaultPlan::new(cfg))
    });
    fresh
}

/// The process-global fault plan, if any: the one [`install`]ed, else
/// one decoded from [`ENV_VAR`], else `None` (the common production
/// case). A malformed env value aborts loudly — see
/// [`FaultConfig::parse`].
pub fn active() -> Option<&'static FaultPlan> {
    ACTIVE
        .get_or_init(|| {
            std::env::var(ENV_VAR).ok().map(|text| {
                let cfg =
                    FaultConfig::parse(&text).unwrap_or_else(|e| panic!("{ENV_VAR}={text}: {e}"));
                FaultPlan::new(cfg)
            })
        })
        .as_ref()
}

/// Atomic temp-file + rename write, routed through the process-global
/// fault plan when one is active. This is the single choke point for
/// every durable write in the workspace — [`crate::persist`] snapshots
/// and the spool transport's protocol files both land through here, so
/// one armed plan faults them all.
pub fn atomic_write(path: &Path, tmp: &Path, contents: &[u8]) -> io::Result<()> {
    atomic_write_with(active(), path, tmp, contents)
}

/// [`atomic_write`] with an explicit (possibly absent) plan — for
/// components that carry their own plan instead of the process-global
/// one, like a transport faulted on the orchestrator side only.
pub fn atomic_write_with(
    plan: Option<&FaultPlan>,
    path: &Path,
    tmp: &Path,
    contents: &[u8],
) -> io::Result<()> {
    match plan {
        Some(plan) => plan.atomic_write(path, tmp, contents),
        None => {
            std::fs::write(tmp, contents)?;
            std::fs::rename(tmp, path)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_encoding_round_trips() {
        let cfg = FaultConfig {
            seed: 0xDEAD_BEEF,
            crash_at_boundary: 7,
            torn_at_op: 3,
            torn_keep_bytes: 128,
            io_error_per_myriad: 250,
            heartbeat_drop_per_myriad: 1000,
            event_dup_per_myriad: 42,
            event_swap_per_myriad: 9999,
        };
        assert_eq!(FaultConfig::parse(&cfg.env_value()), Ok(cfg));
        assert_eq!(FaultConfig::parse(""), Ok(FaultConfig::benign(0)));
        assert!(FaultConfig::parse("bogus=1").is_err(), "unknown key");
        assert!(FaultConfig::parse("seed").is_err(), "missing value");
        assert!(FaultConfig::parse("seed=x").is_err(), "bad number");
    }

    #[test]
    fn decision_streams_replay_bit_exactly_from_the_seed() {
        let cfg = FaultConfig {
            heartbeat_drop_per_myriad: 3000,
            event_dup_per_myriad: 2500,
            event_swap_per_myriad: 2500,
            ..FaultConfig::benign(41)
        };
        let a = FaultPlan::new(cfg);
        let b = FaultPlan::new(cfg);
        let beats_a: Vec<bool> = (0..256).map(|_| a.drop_heartbeat()).collect();
        let beats_b: Vec<bool> = (0..256).map(|_| b.drop_heartbeat()).collect();
        assert_eq!(beats_a, beats_b);
        assert!(beats_a.iter().any(|&d| d) && beats_a.iter().any(|&d| !d), "rate is partial");

        let mut evs_a: Vec<u32> = (0..8).collect();
        let mut evs_b = evs_a.clone();
        for _ in 0..64 {
            a.mangle_events(&mut evs_a);
            b.mangle_events(&mut evs_b);
        }
        assert_eq!(evs_a, evs_b);
        assert!(evs_a.len() > 8, "duplicates were injected");
    }

    #[test]
    fn disarmed_faults_do_not_perturb_the_stream() {
        // A plan with only heartbeat drops armed must make the same
        // decisions whether or not other (disarmed) fault kinds are
        // consulted in between — rate-0 draws must not consume words.
        let cfg = FaultConfig { heartbeat_drop_per_myriad: 5000, ..FaultConfig::benign(11) };
        let a = FaultPlan::new(cfg);
        let b = FaultPlan::new(cfg);
        let mut noise: Vec<u32> = (0..4).collect();
        let beats_a: Vec<bool> = (0..64).map(|_| a.drop_heartbeat()).collect();
        let beats_b: Vec<bool> = (0..64)
            .map(|_| {
                b.mangle_events(&mut noise); // both rates 0: no draw
                b.drop_heartbeat()
            })
            .collect();
        assert_eq!(beats_a, beats_b);
        assert_eq!(noise, (0..4).collect::<Vec<u32>>());
    }

    #[test]
    fn torn_writes_truncate_and_transient_errors_surface() {
        let dir = std::env::temp_dir().join(format!("chatfuzz-faults-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create dir");
        let path = dir.join("doc.json");
        let tmp = dir.join("doc.json.tmp");

        let torn = FaultPlan::new(FaultConfig {
            torn_at_op: 2,
            torn_keep_bytes: 4,
            ..FaultConfig::benign(0)
        });
        torn.atomic_write(&path, &tmp, b"first document").expect("op 1 clean");
        assert_eq!(std::fs::read(&path).expect("read"), b"first document");
        torn.atomic_write(&path, &tmp, b"second document").expect("op 2 torn but 'succeeds'");
        assert_eq!(std::fs::read(&path).expect("read"), b"seco", "torn at byte 4");
        assert_eq!(torn.persist_ops(), 2);

        let flaky =
            FaultPlan::new(FaultConfig { io_error_per_myriad: 10_000, ..FaultConfig::benign(0) });
        let err = flaky.atomic_write(&path, &tmp, b"never lands").expect_err("always errors");
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        assert_eq!(std::fs::read(&path).expect("read"), b"seco", "file untouched");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_plan_means_a_plain_atomic_write() {
        let dir = std::env::temp_dir().join(format!("chatfuzz-faults-off-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create dir");
        let path = dir.join("doc.json");
        let tmp = dir.join("doc.json.tmp");
        atomic_write_with(None, &path, &tmp, b"payload").expect("write");
        assert_eq!(std::fs::read(&path).expect("read"), b"payload");
        assert!(!tmp.exists(), "temp renamed away");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
