//! The LLM-based Input Generator (paper Fig. 1a) and the coverage reward.
//!
//! [`LmGenerator`] is a first-class campaign arm on par with the evolve
//! arm:
//!
//! * **fast** — sampling runs through the KV-cached incremental decoder
//!   ([`chatfuzz_lm::KvCache`], `PpoTrainer::sample_into`), token-pinned
//!   equal to the naive path but `O(T)` per token, and the actor/learner
//!   mode below amortises the PPO cost across a whole publish interval;
//! * **durable** — `InputGenerator::export_state` captures the whole
//!   accumulated state (tokenizer merges, policy weights, Adam moments,
//!   refreshed prompt pool, pending rollouts, learner queue and publish
//!   epoch, exact ChaCha stream) as a [`GeneratorState`], so an LM-arm
//!   campaign SIGKILL-resumes bit-identically like any other;
//! * **corpus-coupled** — `InputGenerator::absorb_seeds` refreshes the
//!   prompt pool from the campaign's cross-arm seed exchange, so the LM
//!   prompts from the *self-grown* evolve corpus (paper §III-A's corpus,
//!   discovered rather than pre-built) on top of its static training
//!   corpus.
//!
//! # Actor/learner split
//!
//! With [`LmGeneratorConfig::publish_every`] `== 0` the arm is the
//! original *serialized* generator: every `observe` scores the batch's
//! rollouts and runs a PPO step in line, so sampling always sees the
//! newest weights. That path is deliberately kept as the equality
//! baseline (the PR-3/PR-5 pattern).
//!
//! With `publish_every >= 1` the arm splits into an **actor** and a
//! **learner**:
//!
//! * the [`LmActor`] holds a *frozen, versioned copy* of the policy (the
//!   published snapshot) and does all sampling from it — test execution
//!   and rollout scoring still flow through the campaign's ordinary
//!   worker channels (`image_pool`/`scratch_pool`), there is no side
//!   loop;
//! * the [`LmLearner`] consumes completed, reward-stamped rollouts into
//!   a queue and trains **only at deterministic publish boundaries**
//!   (every `publish_every` observed batches): it replays up to
//!   [`LmGeneratorConfig::learner_batch`] of the queued rollouts —
//!   selected by reward, ties broken by arrival — through one PPO step,
//!   then publishes the new weights to the actor and bumps the epoch.
//!
//! Because the learner's policy only ever changes inside a publish, the
//! actor snapshot and the learner policy are bit-identical *between*
//! boundaries; with `publish_every == 1` and an unbounded learner batch
//! the whole construction is token-identical to the serialized baseline
//! under the same RNG (pinned by proptest in
//! `tests/tests/it_actor_learner.rs`). The queue, the boundary counter,
//! and the epoch ride in [`ModelState`] (persist schema v4), so the
//! SIGKILL-resume bit-identity law holds at any point of the cycle.

use chatfuzz_autograd::Tensor;
use chatfuzz_baselines::{
    Feedback, GeneratorState, InputGenerator, ModelSample, ModelState, PendingRollout,
};
use chatfuzz_lm::tokenizer::TokenizerKind;
use chatfuzz_lm::{Gpt, KvCache, NgramLm, Tokenizer};
use chatfuzz_rl::{PpoConfig, PpoTrainer, Rollout};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The coverage-based reward of the model-optimisation step (paper
/// §IV-C.3): a bonus proportional to incremental coverage, a small
/// stand-alone term, and a penalty when the input improved nothing.
#[derive(Debug, Clone, Copy)]
pub struct CoverageReward {
    /// Weight per newly-covered bin.
    pub incremental_weight: f32,
    /// Weight on the stand-alone coverage fraction.
    pub standalone_weight: f32,
    /// Negative reward when `incremental == 0`.
    pub no_improve_penalty: f32,
}

impl Default for CoverageReward {
    fn default() -> Self {
        CoverageReward { incremental_weight: 0.5, standalone_weight: 2.0, no_improve_penalty: -0.5 }
    }
}

impl CoverageReward {
    /// Scores one input's coverage feedback.
    pub fn reward(&self, feedback: &Feedback, total_bins: usize) -> f32 {
        let standalone_frac =
            if total_bins == 0 { 0.0 } else { feedback.standalone as f32 / total_bins as f32 };
        let base = self.standalone_weight * standalone_frac;
        if feedback.incremental > 0 {
            base + self.incremental_weight * (1.0 + (feedback.incremental as f32).ln())
        } else {
            base + self.no_improve_penalty
        }
    }
}

/// Configuration of the LM-based generator.
#[derive(Debug, Clone, Copy)]
pub struct LmGeneratorConfig {
    /// RNG seed for prompt choice and sampling.
    pub seed: u64,
    /// Minimum prompt length in instructions (paper: 2).
    pub prompt_min: usize,
    /// Maximum prompt length in instructions (paper: 5).
    pub prompt_max: usize,
    /// Whether coverage feedback triggers online PPO updates (the paper's
    /// step-3 loop runs *inside* the fuzzing loop).
    pub online_training: bool,
    /// Coverage reward shaping.
    pub reward: CoverageReward,
    /// Total coverage bins of the target (normalises stand-alone rewards).
    pub total_bins: usize,
    /// Independent generations concatenated per test input. The paper's
    /// tests have "the same number of instructions" as TheHuzz's; stitching
    /// a few windowed generations reaches that length without growing the
    /// transformer's context.
    pub samples_per_input: usize,
    /// Publish cadence of the actor/learner split, in observed batches.
    /// `0` keeps the serialized in-line trainer (score + PPO step every
    /// batch — the equality baseline); `k >= 1` samples from the frozen
    /// actor snapshot and trains/publishes only every `k` batches.
    pub publish_every: usize,
    /// Maximum rollouts the learner replays per publish boundary,
    /// selected by reward (ties broken by arrival order). `0` replays
    /// everything queued. Only meaningful when `publish_every >= 1`.
    pub learner_batch: usize,
}

impl Default for LmGeneratorConfig {
    fn default() -> Self {
        LmGeneratorConfig {
            seed: 0x11,
            prompt_min: 2,
            prompt_max: 5,
            online_training: true,
            reward: CoverageReward::default(),
            total_bins: 1,
            samples_per_input: 3,
            publish_every: 0,
            learner_batch: 0,
        }
    }
}

/// The sampling half of the actor/learner split: a frozen, versioned
/// copy of the policy weights. Actors only ever read `policy`; the
/// learner overwrites it (and bumps `epoch`) at publish boundaries.
#[derive(Debug)]
struct LmActor {
    /// The published snapshot all sampling runs against.
    policy: Gpt,
    /// Snapshot version: number of publishes so far.
    epoch: u64,
}

/// The training half of the actor/learner split: the PPO trainer plus
/// the queue of completed, reward-stamped rollouts awaiting the next
/// publish boundary.
#[derive(Debug)]
struct LmLearner {
    trainer: PpoTrainer,
    /// Rollouts accepted since the last publish, in arrival order.
    queue: Vec<PendingRollout>,
    /// Observed batches since the last publish boundary.
    batches_since_publish: u64,
}

/// The trained-model input generator: prompts with corpus prefixes,
/// samples continuations through the KV-cached decoder, decodes them to
/// instruction images, and (when online training is enabled) folds
/// coverage feedback back into the policy with PPO — in line every batch
/// (serialized baseline) or through the actor/learner split (see the
/// module docs).
#[derive(Debug)]
pub struct LmGenerator {
    tokenizer: Tokenizer,
    /// The learner: PPO trainer + queued rollouts + boundary counter.
    learner: LmLearner,
    /// The actor: frozen published policy snapshot + epoch.
    actor: LmActor,
    /// Static prompt programs from the training corpus (a construction
    /// parameter; rebuilt identically on resume).
    base_pool: Vec<Vec<u32>>,
    /// Cross-arm refreshed prompt programs (accumulated state: the
    /// campaign's seed exchange replaces this wholesale after every
    /// batch).
    shared_pool: Vec<Vec<u32>>,
    cfg: LmGeneratorConfig,
    rng: ChaCha8Rng,
    /// Reusable KV arena for incremental sampling.
    cache: KvCache,
    /// Recycled sample buffer (`PpoTrainer::sample_into` target).
    sample_buf: Vec<u32>,
    /// Per input: the stitched samples awaiting feedback (the shape
    /// [`ModelState::pending`] serialises verbatim).
    pending: Vec<Vec<ModelSample>>,
}

impl LmGenerator {
    /// Builds the generator around a (pre-trained) policy.
    ///
    /// # Panics
    ///
    /// Panics if `prompt_pool` is empty.
    pub fn new(
        tokenizer: Tokenizer,
        policy: Gpt,
        ppo: PpoConfig,
        prompt_pool: Vec<Vec<u32>>,
        cfg: LmGeneratorConfig,
    ) -> LmGenerator {
        assert!(!prompt_pool.is_empty(), "prompt pool must not be empty");
        let cache = KvCache::new(*policy.config());
        let actor = LmActor { policy: policy.clone(), epoch: 0 };
        LmGenerator {
            tokenizer,
            learner: LmLearner {
                trainer: PpoTrainer::new(policy, ppo),
                queue: Vec::new(),
                batches_since_publish: 0,
            },
            actor,
            base_pool: prompt_pool,
            shared_pool: Vec::new(),
            cfg,
            rng: ChaCha8Rng::seed_from_u64(cfg.seed),
            cache,
            sample_buf: Vec::new(),
            pending: Vec::new(),
        }
    }

    /// Access to the underlying policy (for checkpointing / inspection).
    pub fn policy(&self) -> &Gpt {
        self.learner.trainer.policy()
    }

    /// The actor's published-snapshot version: how many publish
    /// boundaries the learner has crossed. Stays `0` in serialized mode.
    pub fn publish_epoch(&self) -> u64 {
        self.actor.epoch
    }

    /// Rollouts currently queued for the learner's next publish.
    pub fn queued_rollouts(&self) -> usize {
        self.learner.queue.len()
    }

    /// Number of cross-arm programs currently in the prompt pool (on top
    /// of the static training corpus).
    pub fn shared_prompt_count(&self) -> usize {
        self.shared_pool.len()
    }

    /// Dismantles the generator back into its trained artefacts
    /// (tokenizer, policy, static prompt pool) — e.g. to package a
    /// [`ChatFuzzModel`](crate::pipeline::ChatFuzzModel) after an
    /// online-training campaign.
    pub fn into_parts(self) -> (Tokenizer, Gpt, Vec<Vec<u32>>) {
        (self.tokenizer, self.learner.trainer.into_policy(), self.base_pool)
    }

    /// Copies the learner's current policy weights into the actor's
    /// frozen snapshot (the publish itself; epoch bookkeeping is the
    /// caller's).
    fn sync_actor(&mut self) {
        let src = self.learner.trainer.policy();
        let mut dst = self.actor.policy.params_mut();
        for (tensor, source) in dst.iter_mut().zip(src.params()) {
            tensor.data_mut().copy_from_slice(source.data());
        }
    }

    /// A publish boundary: replay the reward-selected queued rollouts
    /// through one PPO step, drop the rest (they were sampled under the
    /// now-superseded snapshot), publish the new weights to the actor
    /// and bump the epoch. Runs entirely on the campaign thread at a
    /// deterministic batch index, so resume bit-identity is preserved.
    fn publish(&mut self) {
        let max_seq = self.learner.trainer.policy().config().max_seq;
        let selected = select_replay(&self.learner.queue, self.cfg.learner_batch, max_seq);
        if !selected.is_empty() {
            let rollouts: Vec<Rollout> = selected
                .into_iter()
                .map(|i| {
                    let r = &self.learner.queue[i];
                    self.learner.trainer.score(r.tokens.clone(), r.prompt_len, r.reward)
                })
                .collect();
            self.learner.trainer.step(&rollouts);
        }
        self.learner.queue.clear();
        self.learner.batches_since_publish = 0;
        self.actor.epoch += 1;
        self.sync_actor();
    }

    /// Builds a prompt from the first 2–5 instructions of a pool program
    /// (paper §IV-C.2), framed per the tokenizer's mode. The pool is the
    /// static corpus plus the cross-arm seeds; with an empty shared half
    /// the RNG draw sequence is identical to indexing the static pool
    /// alone.
    fn make_prompt(&mut self) -> Vec<u32> {
        let total = self.base_pool.len() + self.shared_pool.len();
        let index = self.rng.gen_range(0..total);
        let program = if index < self.base_pool.len() {
            &self.base_pool[index]
        } else {
            &self.shared_pool[index - self.base_pool.len()]
        };
        let take = self.rng.gen_range(self.cfg.prompt_min..=self.cfg.prompt_max).min(program.len());
        self.tokenizer.encode_prompt(&program[..take])
    }
}

/// Reward-weighted replay selection: indices of the queued rollouts the
/// learner trains on at a publish boundary, in arrival order. Rollouts
/// that cannot be scored (nothing generated, or a merged-in sequence
/// longer than the context window) are skipped; when `cap > 0` only the
/// `cap` highest-reward rollouts survive, ties broken by arrival order —
/// a fully deterministic selection, as resume bit-identity requires.
fn select_replay(queue: &[PendingRollout], cap: usize, max_seq: usize) -> Vec<usize> {
    let mut indices: Vec<usize> = (0..queue.len())
        .filter(|&i| {
            let r = &queue[i];
            r.prompt_len >= 1 && r.tokens.len() > r.prompt_len && r.tokens.len() <= max_seq
        })
        .collect();
    if cap > 0 && indices.len() > cap {
        indices.sort_by(|&a, &b| {
            queue[b]
                .reward
                .partial_cmp(&queue[a].reward)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        indices.truncate(cap);
        indices.sort_unstable();
    }
    indices
}

impl InputGenerator for LmGenerator {
    fn name(&self) -> &str {
        "chatfuzz"
    }

    fn next_batch(&mut self, n: usize) -> Vec<Vec<u8>> {
        self.pending.clear();
        let actor_mode = self.cfg.publish_every >= 1;
        // Both samplers apply the same window clamp; the serialized path
        // samples from the live trainer policy, the actor path from the
        // frozen published snapshot (bit-identical between publishes).
        let ppo = *self.learner.trainer.config();
        (0..n)
            .map(|_| {
                let mut bytes = Vec::new();
                let mut samples = Vec::with_capacity(self.cfg.samples_per_input);
                for _ in 0..self.cfg.samples_per_input.max(1) {
                    let prompt = self.make_prompt();
                    let prompt_len = prompt.len();
                    if actor_mode {
                        let window = self.actor.policy.config().max_seq;
                        let budget = window.saturating_sub(prompt.len()).min(ppo.max_new_tokens);
                        if budget == 0 {
                            self.sample_buf.clear();
                            self.sample_buf.extend_from_slice(&prompt);
                        } else {
                            self.actor.policy.generate_into(
                                &prompt,
                                budget,
                                ppo.temperature,
                                ppo.top_k,
                                &mut self.rng,
                                &mut self.cache,
                                &mut self.sample_buf,
                            );
                        }
                    } else {
                        self.learner.trainer.sample_into(
                            &prompt,
                            &mut self.rng,
                            &mut self.cache,
                            &mut self.sample_buf,
                        );
                    }
                    bytes.extend(self.tokenizer.decode_to_bytes(&self.sample_buf));
                    samples.push(ModelSample { tokens: self.sample_buf.clone(), prompt_len });
                }
                self.pending.push(samples);
                bytes
            })
            .collect()
    }

    fn observe(&mut self, _batch: &[Vec<u8>], feedback: &[Feedback]) {
        if !self.cfg.online_training {
            self.pending.clear();
            return;
        }
        if self.cfg.publish_every == 0 {
            // Serialized in-line trainer (the equality baseline): score
            // the batch and run a PPO step right here, every batch.
            let mut rollouts = Vec::new();
            for (samples, fb) in self.pending.drain(..).zip(feedback) {
                // All samples stitched into the input share its reward
                // (coarse but unbiased credit assignment).
                let reward = self.cfg.reward.reward(fb, self.cfg.total_bins);
                for ModelSample { tokens, prompt_len } in samples {
                    if tokens.len() <= prompt_len {
                        continue; // nothing was generated; nothing to reinforce
                    }
                    rollouts.push(self.learner.trainer.score(tokens, prompt_len, reward));
                }
            }
            if !rollouts.is_empty() {
                self.learner.trainer.step(&rollouts);
            }
            return;
        }
        // Actor/learner: the scored feedback arrives here off the same
        // worker channels every arm uses; the learner just queues the
        // reward-stamped rollouts and defers training to the boundary.
        for (samples, fb) in self.pending.drain(..).zip(feedback) {
            let reward = self.cfg.reward.reward(fb, self.cfg.total_bins);
            for ModelSample { tokens, prompt_len } in samples {
                if tokens.len() <= prompt_len {
                    continue;
                }
                self.learner.queue.push(PendingRollout { tokens, prompt_len, reward });
            }
        }
        self.learner.batches_since_publish += 1;
        if self.learner.batches_since_publish >= self.cfg.publish_every as u64 {
            self.publish();
        }
    }

    fn export_state(&self) -> Option<GeneratorState> {
        let policy = self.learner.trainer.policy();
        let (m, v) = self.learner.trainer.optimizer().moments();
        // The actor snapshot is not serialised separately: between
        // publishes it is bit-identical to the learner policy (the
        // learner only steps inside `publish`), so import re-derives it.
        let model = ModelState {
            bpe: self.tokenizer.kind() == TokenizerKind::Bpe,
            merges: self.tokenizer.merges().to_vec(),
            params: policy.params().iter().map(|t| t.data().to_vec()).collect(),
            opt_m: m.iter().map(|t| t.data().to_vec()).collect(),
            opt_v: v.iter().map(|t| t.data().to_vec()).collect(),
            opt_steps: self.learner.trainer.optimizer().steps(),
            prompt_pool: self.shared_pool.clone(),
            pending: self.pending.clone(),
            publish_epoch: self.actor.epoch,
            batches_since_publish: self.learner.batches_since_publish,
            learner_queue: self.learner.queue.clone(),
        };
        Some(GeneratorState {
            generator: self.name().to_string(),
            rng_words: self.rng.export_words(),
            corpus: None,
            model: Some(model),
        })
    }

    fn import_state(&mut self, state: &GeneratorState) {
        assert_eq!(state.generator, self.name(), "generator state kind mismatch");
        let model = state.model.as_ref().expect("chatfuzz state carries a model");
        let kind = if model.bpe { TokenizerKind::Bpe } else { TokenizerKind::FixedByte };
        self.tokenizer = Tokenizer::from_parts(kind, model.merges.clone());
        assert_eq!(
            self.tokenizer.vocab_size() as usize,
            self.learner.trainer.policy().config().vocab,
            "snapshot tokenizer disagrees with the rebuilt policy's vocabulary"
        );

        // Policy weights: shapes are fixed by the constructor's policy;
        // only the values moved.
        {
            let mut params = self.learner.trainer.policy_mut().params_mut();
            assert_eq!(params.len(), model.params.len(), "snapshot parameter count mismatch");
            for (tensor, data) in params.iter_mut().zip(&model.params) {
                assert_eq!(tensor.len(), data.len(), "snapshot parameter shape mismatch");
                tensor.data_mut().copy_from_slice(data);
            }
        }

        // Adam moments (empty when the optimiser never stepped).
        if model.opt_m.is_empty() {
            assert!(model.opt_v.is_empty(), "first/second moment lists disagree");
            self.learner.trainer.optimizer_mut().restore(model.opt_steps, Vec::new(), Vec::new());
        } else {
            let shapes: Vec<(usize, usize)> = self
                .learner
                .trainer
                .policy()
                .params()
                .iter()
                .map(|t| (t.rows(), t.cols()))
                .collect();
            assert_eq!(model.opt_m.len(), shapes.len(), "snapshot moment count mismatch");
            assert_eq!(model.opt_v.len(), shapes.len(), "snapshot moment count mismatch");
            let rebuild = |blobs: &[Vec<f32>]| -> Vec<Tensor> {
                shapes
                    .iter()
                    .zip(blobs)
                    .map(|(&(rows, cols), data)| Tensor::new(rows, cols, data.clone()))
                    .collect()
            };
            self.learner.trainer.optimizer_mut().restore(
                model.opt_steps,
                rebuild(&model.opt_m),
                rebuild(&model.opt_v),
            );
        }

        self.shared_pool = model.prompt_pool.clone();
        self.pending = model.pending.clone();
        self.learner.queue = model.learner_queue.clone();
        self.learner.batches_since_publish = model.batches_since_publish;
        self.actor.epoch = model.publish_epoch;
        // Re-derive the actor snapshot: at rest it always equals the
        // learner policy (see `export_state`).
        self.sync_actor();
        self.rng = ChaCha8Rng::from_words(&state.rng_words).expect("corrupt generator RNG state");
    }

    fn weight_epoch(&self) -> Option<u64> {
        Some(self.actor.epoch)
    }

    fn absorb_seeds(&mut self, seeds: &[Vec<u32>]) {
        // Wholesale replacement keeps the refresh idempotent and
        // deterministic: the pool mirrors the contributing corpora (which
        // are bounded and fingerprint-deduped) instead of growing without
        // bound.
        self.shared_pool.clear();
        self.shared_pool.extend(seeds.iter().filter(|s| !s.is_empty()).cloned());
    }
}

/// N-gram ablation generator (same prompting, no transformer, no RL).
///
/// The arm learns online at n-gram fidelity: coverage-advancing inputs
/// fold back into the counts ([`NgramLm::absorb`]), so the ablation
/// isolates the *model class* (transformer + PPO vs counting) rather than
/// conflating it with online-vs-frozen learning.
#[derive(Debug)]
pub struct NgramGenerator {
    tokenizer: Tokenizer,
    /// Counts as trained at construction (the baseline every resume
    /// replays the absorbed inputs onto).
    base_lm: NgramLm,
    /// Working counts: `base_lm` plus everything absorbed online.
    lm: NgramLm,
    /// Coverage-advancing inputs absorbed so far, in absorption order —
    /// the accumulated state (bounded in practice: each entry advanced
    /// cumulative coverage, and the bin count is finite).
    absorbed: Vec<Vec<u32>>,
    prompt_pool: Vec<Vec<u32>>,
    rng: ChaCha8Rng,
    prompt_min: usize,
    prompt_max: usize,
    max_new: usize,
}

impl NgramGenerator {
    /// Builds the ablation generator.
    ///
    /// # Panics
    ///
    /// Panics if `prompt_pool` is empty.
    pub fn new(
        tokenizer: Tokenizer,
        lm: NgramLm,
        prompt_pool: Vec<Vec<u32>>,
        seed: u64,
        max_new: usize,
    ) -> NgramGenerator {
        assert!(!prompt_pool.is_empty(), "prompt pool must not be empty");
        NgramGenerator {
            tokenizer,
            base_lm: lm.clone(),
            lm,
            absorbed: Vec::new(),
            prompt_pool,
            rng: ChaCha8Rng::seed_from_u64(seed),
            prompt_min: 2,
            prompt_max: 5,
            max_new,
        }
    }
}

/// FNV-1a over the little-endian bytes of a word program — the content
/// fingerprint the n-gram arm stamps its absorbed inputs with, so shard
/// merges dedupe identical inputs across shards.
fn program_hash(words: &[u32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &w in words {
        for b in w.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

impl InputGenerator for NgramGenerator {
    fn name(&self) -> &str {
        "chatfuzz-ngram"
    }

    fn next_batch(&mut self, n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|_| {
                let program = self.prompt_pool.choose(&mut self.rng).expect("non-empty");
                let take = self.rng.gen_range(self.prompt_min..=self.prompt_max).min(program.len());
                let tokens = self.tokenizer.encode_prompt(&program[..take]);
                let full = self.lm.generate(&tokens, self.max_new, &mut self.rng);
                self.tokenizer.decode_to_bytes(&full)
            })
            .collect()
    }

    fn observe(&mut self, batch: &[Vec<u8>], feedback: &[Feedback]) {
        for (bytes, fb) in batch.iter().zip(feedback) {
            if fb.incremental == 0 {
                continue;
            }
            // Whole-word images only (this generator's own outputs always
            // are; a foreign batch may not be).
            if bytes.is_empty() || !bytes.len().is_multiple_of(4) {
                continue;
            }
            let words: Vec<u32> = bytes
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect();
            self.lm.absorb(&self.tokenizer.encode(&words));
            self.absorbed.push(words);
        }
    }

    fn export_state(&self) -> Option<GeneratorState> {
        // The absorbed inputs (plus the RNG stream) *are* the accumulated
        // state: the working counts are a pure function of base counts +
        // absorbed sequence, so import replays them instead of
        // serialising hash maps.
        let seeds = self
            .absorbed
            .iter()
            .enumerate()
            .map(|(i, words)| chatfuzz_baselines::CorpusSeedState {
                fingerprint: program_hash(words),
                words: words.clone(),
                found_at: i as u64,
                ..Default::default()
            })
            .collect::<Vec<_>>();
        Some(GeneratorState {
            generator: self.name().to_string(),
            rng_words: self.rng.export_words(),
            corpus: Some(chatfuzz_baselines::CorpusState {
                next_found_at: seeds.len() as u64,
                seeds,
            }),
            model: None,
        })
    }

    fn import_state(&mut self, state: &GeneratorState) {
        assert_eq!(state.generator, self.name(), "generator state kind mismatch");
        let corpus = state.corpus.as_ref().expect("chatfuzz-ngram state carries a corpus");
        self.lm = self.base_lm.clone();
        self.absorbed.clear();
        for seed in &corpus.seeds {
            self.lm.absorb(&self.tokenizer.encode(&seed.words));
            self.absorbed.push(seed.words.clone());
        }
        self.rng = ChaCha8Rng::from_words(&state.rng_words).expect("corrupt generator RNG state");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chatfuzz_corpus::{CorpusConfig, CorpusGenerator};
    use chatfuzz_lm::GptConfig;

    fn setup() -> (Tokenizer, Gpt, Vec<Vec<u32>>) {
        let mut corpus = CorpusGenerator::new(CorpusConfig::default());
        let programs = corpus.generate_words(16);
        let tokenizer = Tokenizer::train(&programs, 128);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let model = Gpt::new(GptConfig::tiny(tokenizer.vocab_size() as usize), &mut rng);
        (tokenizer, model, programs)
    }

    #[test]
    fn batches_decode_to_word_aligned_images() {
        let (tok, model, pool) = setup();
        let ppo = PpoConfig { max_new_tokens: 12, ..Default::default() };
        let mut generator = LmGenerator::new(tok, model, ppo, pool, LmGeneratorConfig::default());
        let batch = generator.next_batch(4);
        assert_eq!(batch.len(), 4);
        for input in &batch {
            assert_eq!(input.len() % 4, 0, "whole instruction slots");
            assert!(!input.is_empty(), "prompt instructions are included");
        }
    }

    #[test]
    fn online_observe_runs_a_ppo_step() {
        let (tok, model, pool) = setup();
        let ppo = PpoConfig { max_new_tokens: 8, lr: 1e-3, ..Default::default() };
        let cfg =
            LmGeneratorConfig { online_training: true, total_bins: 100, ..Default::default() };
        let mut generator = LmGenerator::new(tok, model, ppo, pool, cfg);
        let batch = generator.next_batch(3);
        let feedback: Vec<Feedback> = (0..3)
            .map(|i| Feedback {
                standalone: 10 + i,
                incremental: i,
                mux_covered: 2,
                ..Default::default()
            })
            .collect();
        // Must not panic, and must clear pending state.
        generator.observe(&batch, &feedback);
        assert!(generator.pending.is_empty());
        // A second round still works (fresh pending).
        let batch2 = generator.next_batch(2);
        generator.observe(&batch2, &feedback[..2]);
    }

    #[test]
    fn reward_shape_matches_paper_semantics() {
        let r = CoverageReward::default();
        let improving = Feedback { standalone: 50, incremental: 10, ..Default::default() };
        let stagnant = Feedback { standalone: 50, incremental: 0, ..Default::default() };
        let total = 200;
        assert!(r.reward(&improving, total) > 0.0, "improvement earns a bonus");
        assert!(
            r.reward(&stagnant, total) < r.reward(&improving, total),
            "no improvement is penalised relative to improvement"
        );
        // Penalty dominates a weak standalone term.
        let weak = Feedback { standalone: 5, incremental: 0, ..Default::default() };
        assert!(r.reward(&weak, total) < 0.0);
    }

    #[test]
    fn ngram_generator_produces_images() {
        let (tok, _, pool) = setup();
        let token_corpus: Vec<Vec<u32>> = pool.iter().map(|p| tok.encode(p)).collect();
        let lm = NgramLm::train(&token_corpus, tok.vocab_size());
        let mut generator = NgramGenerator::new(tok, lm, pool, 3, 24);
        let batch = generator.next_batch(4);
        assert_eq!(batch.len(), 4);
        for input in &batch {
            assert_eq!(input.len() % 4, 0);
        }
    }

    #[test]
    fn ngram_generator_learns_from_coverage_feedback() {
        let (tok, _, pool) = setup();
        let token_corpus: Vec<Vec<u32>> = pool.iter().map(|p| tok.encode(p)).collect();
        let lm = NgramLm::train(&token_corpus, tok.vocab_size());
        let build = || NgramGenerator::new(tok.clone(), lm.clone(), pool.clone(), 3, 24);

        let mut learner = build();
        let mut frozen = build();
        let batch = learner.next_batch(4);
        let advancing: Vec<Feedback> =
            (0..4).map(|i| Feedback { incremental: i + 1, ..Default::default() }).collect();
        let stagnant = vec![Feedback::default(); 4];
        learner.observe(&batch, &advancing);
        frozen.observe(&batch, &stagnant);
        // Same RNG position either way (observe draws nothing), but the
        // learner's counts shifted — the continuations diverge.
        assert_ne!(
            learner.next_batch(8),
            frozen.next_batch(8),
            "absorbed coverage winners change future sampling"
        );
    }

    #[test]
    fn ngram_state_round_trips_and_resumes_the_exact_stream() {
        let (tok, _, pool) = setup();
        let token_corpus: Vec<Vec<u32>> = pool.iter().map(|p| tok.encode(p)).collect();
        let lm = NgramLm::train(&token_corpus, tok.vocab_size());
        let build = || NgramGenerator::new(tok.clone(), lm.clone(), pool.clone(), 3, 24);

        let mut live = build();
        for round in 0..3 {
            let batch = live.next_batch(6);
            let feedback: Vec<Feedback> = (0..6)
                .map(|i| Feedback { incremental: (i + round) % 2, ..Default::default() })
                .collect();
            live.observe(&batch, &feedback);
        }
        let state = live.export_state().expect("ngram exports state");
        assert_eq!(state.generator, "chatfuzz-ngram");
        let corpus = state.corpus.as_ref().expect("absorbed inputs ride in the corpus half");
        assert!(!corpus.seeds.is_empty(), "coverage winners were absorbed");

        // A fresh rebuild + import replays the absorbed inputs onto the
        // base counts and restores the RNG, so the continuation is
        // bit-identical — the invariant every stateful arm upholds.
        let mut restored = build();
        restored.import_state(&state);
        for round in 0..2 {
            let a = live.next_batch(5);
            let b = restored.next_batch(5);
            assert_eq!(a, b, "round {round} diverged after state import");
            let feedback: Vec<Feedback> =
                (0..5).map(|i| Feedback { incremental: i % 2, ..Default::default() }).collect();
            live.observe(&a, &feedback);
            restored.observe(&b, &feedback);
        }
        assert_eq!(live.export_state(), restored.export_state());
    }

    #[test]
    fn lm_state_round_trips_and_resumes_the_exact_stream() {
        let (tok, model, pool) = setup();
        let ppo = PpoConfig { max_new_tokens: 8, lr: 1e-3, ..Default::default() };
        let cfg = LmGeneratorConfig {
            online_training: true,
            total_bins: 100,
            samples_per_input: 1,
            ..Default::default()
        };
        let build = || LmGenerator::new(tok.clone(), model.clone(), ppo, pool.clone(), cfg);

        let mut live = build();
        for round in 0..3 {
            let batch = live.next_batch(4);
            let feedback: Vec<Feedback> = (0..4)
                .map(|i| Feedback {
                    standalone: 5 + i,
                    incremental: (i + round) % 3,
                    ..Default::default()
                })
                .collect();
            live.observe(&batch, &feedback);
        }
        live.absorb_seeds(&[vec![0x0010_0093, 0x0000_0533]]);

        let state = live.export_state().expect("chatfuzz exports state");
        assert_eq!(state.generator, "chatfuzz");
        assert!(state.corpus.is_none(), "the LM arm keeps no corpus");
        let model_state = state.model.as_ref().expect("model half present");
        assert!(model_state.opt_steps > 0, "online PPO stepped the optimiser");
        assert!(!model_state.opt_m.is_empty(), "Adam moments exported");
        assert_eq!(model_state.prompt_pool.len(), 1, "shared pool exported");

        let mut restored = build();
        restored.import_state(&state);
        assert_eq!(restored.shared_prompt_count(), 1);
        // Bit-identical continuation: same batches, same PPO updates,
        // same state afterwards.
        for round in 0..2 {
            let a = live.next_batch(3);
            let b = restored.next_batch(3);
            assert_eq!(a, b, "round {round} diverged after state import");
            let feedback: Vec<Feedback> = (0..3)
                .map(|i| Feedback { standalone: 9, incremental: i, ..Default::default() })
                .collect();
            live.observe(&a, &feedback);
            restored.observe(&b, &feedback);
        }
        assert_eq!(live.export_state(), restored.export_state());
    }

    #[test]
    fn absorbed_seeds_extend_the_prompt_pool_deterministically() {
        let (tok, model, pool) = setup();
        let ppo = PpoConfig { max_new_tokens: 8, ..Default::default() };
        let cfg = LmGeneratorConfig { online_training: false, ..Default::default() };
        let mut with_seeds = LmGenerator::new(tok.clone(), model.clone(), ppo, pool.clone(), cfg);
        let mut without = LmGenerator::new(tok, model, ppo, pool, cfg);

        // An empty exchange leaves the RNG stream untouched: identical
        // batches with and without the (no-op) refresh.
        with_seeds.absorb_seeds(&[]);
        assert_eq!(with_seeds.next_batch(4), without.next_batch(4));

        // A real refresh widens the pool; empty programs are dropped.
        with_seeds.absorb_seeds(&[vec![0x0010_0093; 4], Vec::new(), vec![0x0000_0533; 3]]);
        assert_eq!(with_seeds.shared_prompt_count(), 2);
        // Refresh is wholesale: a smaller next exchange shrinks it again.
        with_seeds.absorb_seeds(&[vec![0x0010_0093; 2]]);
        assert_eq!(with_seeds.shared_prompt_count(), 1);
    }

    #[test]
    #[should_panic(expected = "generator state kind mismatch")]
    fn lm_import_rejects_foreign_state() {
        let (tok, model, pool) = setup();
        let cfg = LmGeneratorConfig::default();
        let mut generator = LmGenerator::new(tok, model, PpoConfig::default(), pool, cfg);
        let state = chatfuzz_baselines::GeneratorState {
            generator: "evolve".to_string(),
            ..Default::default()
        };
        generator.import_state(&state);
    }
}
